package main

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

// recordFig10b runs fig10b with -fingerprint -series into dir and returns
// the artifact path.
func recordFig10b(t *testing.T, dir string, perturb uint64) string {
	t.Helper()
	o := obsOpts{dir: dir, fingerprint: true, perturb: perturb}
	if err := runExperiment("fig10b", runOpts{seed: 1, obs: o}, io.Discard); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "fig10b__incast__seed1.jsonl")
}

// TestDiffPinpointsPerturbedDraw is the divergence-diagnosis acceptance
// test: record an artifact, rerun with a single delay-noise draw inflated,
// and diff must localize a checkpoint window and then name the exact first
// divergent event inside it, with kind and clock context on both sides.
func TestDiffPinpointsPerturbedDraw(t *testing.T) {
	path := recordFig10b(t, t.TempDir(), 0)

	res, err := diffRerun(path, "fig10b", 1, false, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.identical {
		t.Fatal("perturbed rerun reported identical")
	}
	if !res.haveHi {
		t.Fatal("no divergent checkpoint found; window not localized")
	}
	if res.baseNote != "" {
		t.Fatalf("base rerun failed to reproduce the artifact: %s", res.baseNote)
	}
	if res.recA == nil || res.recB == nil {
		t.Fatalf("exact divergent event not pinned: recA=%v recB=%v", res.recA, res.recB)
	}
	// Both windows record every dispatch in [lo+1, hi+1), so the first
	// divergent pair sits at the same dispatch count on both sides, inside
	// the localized window.
	if res.recA.Count != res.recB.Count {
		t.Fatalf("divergent recs at different dispatch counts: %d vs %d", res.recA.Count, res.recB.Count)
	}
	if res.recA.Count <= res.winLo || res.recA.Count > res.winHi {
		t.Fatalf("divergent event %d outside window (%d, %d]", res.recA.Count, res.winLo, res.winHi)
	}
	if *res.recA == *res.recB {
		t.Fatal("pinned events are identical")
	}

	var buf bytes.Buffer
	res.render(&buf)
	out := buf.String()
	for _, want := range []string{"DIVERGED", "first divergent event: dispatch #", "kind=", "t="} {
		if !strings.Contains(out, want) {
			t.Errorf("diff report missing %q:\n%s", want, out)
		}
	}

	// The unperturbed rerun must reproduce the artifact exactly.
	same, err := diffRerun(path, "fig10b", 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !same.identical {
		t.Fatal("unperturbed rerun did not reproduce the recorded artifact")
	}
}

// TestFingerprintFigureBytes pins the "-fingerprint never changes figure
// output" contract at the CLI layer: the fingerprinted run's output minus
// its `# fingerprint` lines must be byte-identical to a plain run.
func TestFingerprintFigureBytes(t *testing.T) {
	var plain, fp bytes.Buffer
	if err := runExperiment("fig10b", runOpts{seed: 1}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := runExperiment("fig10b", runOpts{seed: 1, obs: obsOpts{fingerprint: true}}, &fp); err != nil {
		t.Fatal(err)
	}
	var stripped strings.Builder
	found := false
	for _, line := range strings.SplitAfter(fp.String(), "\n") {
		if strings.HasPrefix(line, "# fingerprint ") {
			found = true
			continue
		}
		stripped.WriteString(line)
	}
	if !found {
		t.Fatal("fingerprinted run printed no # fingerprint line")
	}
	if plain.String() != stripped.String() {
		t.Errorf("figure bytes changed under -fingerprint:\nplain:\n%s\nfingerprinted (stripped):\n%s",
			plain.String(), stripped.String())
	}
}

// TestDiffArtifacts covers the two-artifact mode: identical recordings
// compare clean, a perturbed recording diverges with a localized window.
func TestDiffArtifacts(t *testing.T) {
	base := recordFig10b(t, t.TempDir(), 0)
	baseCopy := recordFig10b(t, t.TempDir(), 0)
	pert := recordFig10b(t, t.TempDir(), 10)

	res, err := diffArtifacts(base, baseCopy)
	if err != nil {
		t.Fatal(err)
	}
	if !res.identical {
		t.Fatal("two identical recordings reported as diverged")
	}

	res, err = diffArtifacts(base, pert)
	if err != nil {
		t.Fatal(err)
	}
	if res.identical {
		t.Fatal("perturbed recording reported as identical")
	}
	if !res.haveHi {
		t.Fatal("no divergent checkpoint localized")
	}
	var buf bytes.Buffer
	res.render(&buf)
	if !strings.Contains(buf.String(), "DIVERGED") {
		t.Errorf("report missing DIVERGED:\n%s", buf.String())
	}
}

// TestDiffRejectsUnfingerprintedArtifact: an artifact recorded without
// -fingerprint is a loud error pointing at the flag.
func TestDiffRejectsUnfingerprintedArtifact(t *testing.T) {
	dir := t.TempDir()
	o := obsOpts{dir: dir}
	if err := runExperiment("fig10b", runOpts{seed: 1, obs: o}, io.Discard); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fig10b__incast__seed1.jsonl")
	_, err := diffArtifacts(path, path)
	if err == nil || !strings.Contains(err.Error(), "-fingerprint") {
		t.Fatalf("err = %v, want a -fingerprint hint", err)
	}
}

// TestManifestCheck pins the fingerprint-gate contract: a written manifest
// verifies, a flipped hash fails naming the run, and a run missing from the
// manifest fails too.
func TestManifestCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fp.json")
	fps := map[string]string{"fig9/seed=1": "00aabb", "fig10b/seed=1": "ccdd33"}
	if err := writeManifest(path, fps); err != nil {
		t.Fatal(err)
	}
	if err := checkManifest(path, fps); err != nil {
		t.Fatalf("clean check failed: %v", err)
	}
	bad := map[string]string{"fig9/seed=1": "00aabb", "fig10b/seed=1": "ffffff"}
	err := checkManifest(path, bad)
	if err == nil || !strings.Contains(err.Error(), "fig10b/seed=1") {
		t.Fatalf("mismatch err = %v, want it to name fig10b/seed=1", err)
	}
	extra := map[string]string{"fig9/seed=1": "00aabb", "fig99/seed=1": "123456"}
	err = checkManifest(path, extra)
	if err == nil || !strings.Contains(err.Error(), "not in manifest") {
		t.Fatalf("missing-run err = %v, want a not-in-manifest message", err)
	}
	// A subset batch (e.g. -only) ignores manifest entries it didn't run.
	if err := checkManifest(path, map[string]string{"fig9/seed=1": "00aabb"}); err != nil {
		t.Fatalf("subset check failed: %v", err)
	}
}
