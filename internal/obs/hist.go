package obs

import "math/bits"

// Histogram bucket geometry: values 0..15 get exact unit buckets; above
// that, every power-of-two octave is split into 16 sub-buckets, giving a
// worst-case relative error of 1/16 (~6%) per recorded value — HDR-style
// resolution at a fixed 960-slot footprint, wide enough for any int64.
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits
	histBuckets  = (64 - histSubBits) * histSubCount
)

// histBucketOf maps a non-negative value to its dense bucket index.
func histBucketOf(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := uint(bits.Len64(uint64(v))) - 1 - histSubBits
	return int(exp)<<histSubBits + int(v>>exp)
}

// histBucketBounds returns the inclusive value range of a bucket.
func histBucketBounds(idx int) (lo, hi int64) {
	if idx < histSubCount {
		return int64(idx), int64(idx)
	}
	exp := uint(idx>>histSubBits) - 1
	lo = int64(histSubCount+idx&(histSubCount-1)) << exp
	return lo, lo + (1 << exp) - 1
}

// Histogram is a streaming log-bucketed histogram: fixed memory, zero-alloc
// Observe, deterministic quantiles with bounded (~6%) relative error. It
// replaces collect-then-sort percentile math for high-volume signals
// (fabric delay, FCT, ACK RTT) where storing every sample is too costly.
// Like the rest of the package it is single-goroutine: one run, one
// histogram.
type Histogram struct {
	// Name and Unit identify the histogram in artifacts and reports
	// ("transport/ack_rtt", "ns").
	Name string
	Unit string

	n        int64
	sum      int64
	min, max int64
	counts   [histBuckets]int64
}

// NewHistogram returns an empty histogram with the given identity.
func NewHistogram(name, unit string) *Histogram {
	return &Histogram{Name: name, Unit: unit}
}

// Observe records one value. Negative values clamp to zero (the signals
// recorded here — durations, sizes — are non-negative by construction; a
// negative sample indicates clock noise, not a meaningful quantity).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.counts[histBucketOf(v)]++
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the mean recorded value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0..1): the upper edge
// of the bucket holding the q*Count()-th value, clamped to Max(). The true
// quantile lies within one bucket width (~6%) below the returned value.
//
// An empty histogram returns 0 for every q — the same "no data" value the
// other accessors use — so report paths may query quantiles without a
// Count() guard. q outside [0, 1] (including NaN) clamps into range.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 || q != q { // q != q: NaN also clamps low
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target value, 1-based, matching the nearest-rank method.
	rank := int64(q * float64(h.n))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for idx := 0; idx < histBuckets; idx++ {
		cum += h.counts[idx]
		if cum >= rank {
			_, hi := histBucketBounds(idx)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// Buckets calls fn for every non-empty bucket in ascending value order with
// the bucket's inclusive bounds and count.
func (h *Histogram) Buckets(fn func(lo, hi, count int64)) {
	for idx := 0; idx < histBuckets; idx++ {
		if c := h.counts[idx]; c > 0 {
			lo, hi := histBucketBounds(idx)
			fn(lo, hi, c)
		}
	}
}

// Reset clears the histogram for reuse.
func (h *Histogram) Reset() {
	*h = Histogram{Name: h.Name, Unit: h.Unit}
}

// HistSet is the standard per-run latency histogram trio, installed on a
// run by harness.Net.Observe when Recorder.Hist is non-nil. The fields are
// value types so enabling histograms costs one allocation per run, and hot
// paths hold direct pointers (one nil check, no map lookup per sample).
type HistSet struct {
	// AckRTT is the sender-side measured RTT of every data ACK, in
	// nanoseconds (includes injected measurement noise, like the CC sees).
	AckRTT Histogram
	// FabricDelay is the receiver-side one-way delay of every delivered
	// data packet, in nanoseconds (SentAt to delivery; no noise).
	FabricDelay Histogram
	// FCT is the completion time of every finished flow, in nanoseconds.
	FCT Histogram
}

// NewHistSet returns the standard trio with canonical names.
func NewHistSet() *HistSet {
	return &HistSet{
		AckRTT:      Histogram{Name: "transport/ack_rtt", Unit: "ns"},
		FabricDelay: Histogram{Name: "transport/fabric_delay", Unit: "ns"},
		FCT:         Histogram{Name: "transport/fct", Unit: "ns"},
	}
}

// All returns the set's histograms in canonical order.
func (s *HistSet) All() []*Histogram {
	return []*Histogram{&s.AckRTT, &s.FabricDelay, &s.FCT}
}
