package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"prioplus/internal/exp"
	"prioplus/internal/obs/stream"
	"prioplus/internal/runner"
	"prioplus/internal/serve"
	"prioplus/internal/sim"
)

// runAll is the `prioplus-sim all` subcommand: it fans (experiment, seed)
// runs across a worker pool and reports per-run wall-clock plus batch
// events/sec. Every run owns a private engine, so per-run output is
// byte-identical whatever -parallel is. Returns the process exit code.
func runAll(args []string) int {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent runs (1 = serial)")
	seedsArg := fs.String("seeds", "1", "comma-separated seeds; every experiment runs once per seed")
	onlyArg := fs.String("only", "", "comma-separated subset of experiment ids (default: all)")
	jsonOut := fs.String("json", "", "write per-run results to this file as JSON")
	timeout := fs.Duration("timeout", 0, "per-run wall-clock limit (0 = none)")
	full := fs.Bool("full", false, "run at the paper's full scale")
	progress := fs.Bool("progress", true, "write a live progress line to stderr as runs complete")
	fpOut := fs.String("fp-out", "", "write a fingerprint manifest (run name -> output hash) to this file; implies -fingerprint")
	fpCheck := fs.String("fp-check", "", "check every run's output hash against this manifest; implies -fingerprint")
	obsFlags := addObsFlags(fs)
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Parse(args)

	obsOpt, err := obsFlags.resolve()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *fpOut != "" || *fpCheck != "" {
		obsOpt.fingerprint = true
	}

	ids := exp.IDs()
	if *onlyArg != "" {
		ids = strings.Split(*onlyArg, ",")
		for _, id := range ids {
			if err := validExperiment(id); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
		}
	}
	seeds, err := parseSeeds(*seedsArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	stop, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// -listen: register every run up front so /runs shows pending tasks,
	// and tee artifact lines into the server's hub for /events.
	var srv *stream.Server
	var reg *runner.Registry
	if obsOpt.listen != "" {
		reg = &runner.Registry{}
		srv = stream.NewServer(reg)
		if err := srv.Start(obsOpt.listen); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "live endpoints on http://%s (/metrics /runs /events)\n", srv.Addr())
	}

	var tasks []runner.Task
	var states []*runner.RunState // parallel to tasks; nil without -listen
	for _, id := range ids {
		for _, seed := range seeds {
			id, seed := id, seed
			name := fmt.Sprintf("%s/seed=%d", id, seed)
			taskObs := obsOpt
			if reg != nil {
				st := reg.Add(name, id, seed)
				states = append(states, st)
				taskObs.hub = srv.Hub
				taskObs.live = st
			}
			tasks = append(tasks, runner.Task{
				Name: name,
				Run: func() (string, map[string]float64) {
					if taskObs.live != nil {
						taskObs.live.Start()
					}
					var buf bytes.Buffer
					// Ids are validated above, so the only errors left are
					// artifact writes; the panic lands in Result.Err and
					// fails just this run.
					if err := runExperiment(id, runOpts{full: *full, seed: seed, obs: taskObs}, &buf); err != nil {
						panic(err)
					}
					return buf.String(), nil
				},
			})
		}
	}

	opts := runner.Options{Workers: *parallel, Timeout: *timeout}
	// OnResult calls are serialized by the runner, so the counter and
	// the stderr line need no extra locking. Run states finish here, not
	// in the task closure, so timed-out runs are marked failed too.
	done := 0
	opts.OnResult = func(r runner.Result) {
		if states != nil {
			msg := ""
			if r.Err != nil {
				msg = r.Err.Error()
			}
			states[r.Index].Finish(msg)
		}
		if !*progress {
			return
		}
		done++
		status := "ok"
		if r.Err != nil {
			status = "FAIL"
		}
		fmt.Fprintf(os.Stderr, "\r[%d/%d] %-24s %-4s", done, len(tasks), r.Name, status)
	}
	startEvents := sim.TotalEvents()
	startDispatched := sim.TotalProcessed()
	startWall := time.Now()
	results := runner.Run(tasks, opts)
	wall := time.Since(startWall)
	if *progress {
		fmt.Fprintf(os.Stderr, "\r%*s\r", 40, "")
	}
	// Two event bases (see sim.TotalEvents): "events" is the logical count,
	// stable across engine optimizations; "dispatched" is raw dispatches,
	// which elision optimizations shrink. Rates use the logical basis.
	events := sim.TotalEvents() - startEvents
	dispatched := sim.TotalProcessed() - startDispatched

	failures := 0
	fps := map[string]string{} // run name -> output fingerprint (with -fingerprint)
	for _, r := range results {
		status := "ok"
		if r.Err != nil {
			status = "FAIL: " + r.Err.Error()
			failures++
		}
		fp := ""
		if obsOpt.fingerprint && r.Err == nil {
			fps[r.Name] = serve.OutputFingerprint(r.Output)
			fp = " fp=" + fps[r.Name]
		}
		fmt.Printf("== %-20s %10.2fms  %s%s\n", r.Name, float64(r.Wall.Microseconds())/1000, status, fp)
		if r.Output != "" {
			fmt.Print(indent(r.Output))
		}
	}
	fmt.Printf("\n%d/%d runs ok, %d workers, wall %.2fs, %d logical events (%d dispatched), %.3gM events/sec (logical basis)\n",
		len(results)-failures, len(results), *parallel, wall.Seconds(),
		events, dispatched, float64(events)/wall.Seconds()/1e6)

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, results, seeds, *parallel, *full, wall, events, dispatched, fps); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *fpOut != "" {
		if err := writeManifest(*fpOut, fps); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("fingerprint manifest: %d runs written to %s\n", len(fps), *fpOut)
	}
	if *fpCheck != "" {
		if err := checkManifest(*fpCheck, fps); err != nil {
			fmt.Fprintln(os.Stderr, "fingerprint check FAILED:", err)
			return 1
		}
		fmt.Printf("fingerprint check: all %d runs match %s\n", len(fps), *fpCheck)
	}
	if err := stop(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// fpManifest is the on-disk fingerprint manifest (testdata/fingerprints.json):
// one output hash per (experiment, seed) run of the quick suite.
type fpManifest struct {
	Note string            `json:"note"`
	Runs map[string]string `json:"runs"`
}

const manifestNote = "FNV-64a over each run's captured output, which includes its '# fingerprint' digest-chain lines; " +
	"regenerate with: prioplus-sim all -fp-out testdata/fingerprints.json"

func writeManifest(path string, fps map[string]string) error {
	data, err := json.MarshalIndent(fpManifest{Note: manifestNote, Runs: fps}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// checkManifest compares this batch's fingerprints against the recorded
// manifest. Runs absent from the manifest fail the check (the manifest must
// be regenerated when experiments are added); manifest entries not run this
// batch (a -only or -seeds subset) are ignored.
func checkManifest(path string, fps map[string]string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var m fpManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var bad []string
	for name, fp := range fps {
		want, ok := m.Runs[name]
		switch {
		case !ok:
			bad = append(bad, fmt.Sprintf("%s: not in manifest (regenerate with -fp-out)", name))
		case want != fp:
			bad = append(bad, fmt.Sprintf("%s: got %s, manifest has %s", name, fp, want))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("%d of %d runs diverged:\n  %s\n(bisect one with: prioplus-sim diff -exp ID -seed N ARTIFACT.jsonl)",
			len(bad), len(fps), strings.Join(bad, "\n  "))
	}
	return nil
}

// validExperiment resolves id against the exp registry — the single
// source of truth for experiment ids since the spec-registry refactor.
func validExperiment(id string) error {
	if _, ok := exp.Lookup(id); !ok {
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}

func parseSeeds(s string) ([]int64, error) {
	var seeds []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds value %q: %v", part, err)
		}
		seeds = append(seeds, v)
	}
	return seeds, nil
}

func indent(s string) string {
	out := "   " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n   ")
	return out + "\n"
}

// runJSON is one run in the -json report. Output is the run's full text,
// byte-identical for any -parallel value.
type runJSON struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
	Output string  `json:"output,omitempty"`
	Error  string  `json:"error,omitempty"`
	// Fingerprint is the FNV-64a hash of Output, present with -fingerprint
	// (see the fingerprint manifest); the per-run digest chains are inside
	// Output as '# fingerprint' lines.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// eventsBasis documents the two event counters in batchJSON, so readers of
// archived batch reports know which numbers are comparable across builds.
const eventsBasis = "events counts logical events (dispatched + elided transmitter wake-ups), stable across engine optimizations; events_dispatched counts raw dispatches, which elision shrinks; events_per_sec uses the logical basis"

type batchJSON struct {
	Full     bool    `json:"full"`
	Parallel int     `json:"parallel"`
	Seeds    []int64 `json:"seeds"`
	WallMS   float64 `json:"wall_ms"`
	// Events is the logical event count; EventsDispatched the raw dispatch
	// count; EventsBasis explains the difference (see sim.TotalEvents).
	Events           uint64    `json:"events"`
	EventsDispatched uint64    `json:"events_dispatched"`
	EventsBasis      string    `json:"events_basis"`
	EventsPerSec     float64   `json:"events_per_sec"`
	Runs             []runJSON `json:"runs"`
}

func writeJSON(path string, results []runner.Result, seeds []int64, parallel int, full bool, wall time.Duration, events, dispatched uint64, fps map[string]string) error {
	doc := batchJSON{
		Full:             full,
		Parallel:         parallel,
		Seeds:            seeds,
		WallMS:           float64(wall.Microseconds()) / 1000,
		Events:           events,
		EventsDispatched: dispatched,
		EventsBasis:      eventsBasis,
		EventsPerSec:     float64(events) / wall.Seconds(),
	}
	for _, r := range results {
		rj := runJSON{Name: r.Name, WallMS: float64(r.Wall.Microseconds()) / 1000, Output: r.Output,
			Fingerprint: fps[r.Name]}
		if r.Err != nil {
			rj.Error = r.Err.Error()
		}
		doc.Runs = append(doc.Runs, rj)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// startProfiles starts CPU profiling and/or arranges a heap profile; the
// returned function stops the CPU profile and writes the heap profile.
func startProfiles(cpu, mem string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
