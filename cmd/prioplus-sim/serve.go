package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prioplus/internal/obs/stream"
	"prioplus/internal/runner"
	"prioplus/internal/serve"
)

// runServe implements the serve subcommand: the simulator as a service.
// It stands up the streaming server (so /metrics, /runs, and /events work
// exactly as in batch mode) and mounts the job API on the same listener:
// clients POST experiment specs to /jobs, poll status, and fetch
// byte-stable results. Identical specs are served from the deterministic
// result cache. See docs/API.md for the API reference.
func runServe(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "listen address for the job and streaming endpoints")
	workers := fs.Int("workers", 0, "concurrent job runs (0 = GOMAXPROCS)")
	queue := fs.Int("queue", serve.DefaultQueueDepth, "queued-job bound; submissions beyond it get HTTP 429")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job wall-clock ceiling (0 = none)")
	cacheSize := fs.Int("cache", serve.DefaultCacheSize, "result cache entries (FIFO eviction)")
	manifestPath := fs.String("manifest", "", "fingerprint manifest to cross-check results against (e.g. testdata/fingerprints.json)")
	once := fs.Duration("for", 0, "exit after this duration (0 = run until signaled; for smoke tests)")
	fs.Parse(args)

	var manifest *serve.Manifest
	if *manifestPath != "" {
		var err error
		manifest, err = serve.LoadManifest(*manifestPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "manifest %s: %d runs under cross-check\n", *manifestPath, len(manifest.Runs))
	}

	reg := &runner.Registry{}
	srv := stream.NewServer(reg)
	sched := serve.New(serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		Timeout:    *jobTimeout,
		CacheSize:  *cacheSize,
		Manifest:   manifest,
		Registry:   reg,
		Hub:        srv.Hub,
	})
	serve.NewAPI(sched).Mount(srv)
	if err := srv.Start(*listen); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "job server on http://%s (/jobs /experiments /metrics /runs /events)\n", srv.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	if *once > 0 {
		select {
		case <-sigc:
		case <-time.After(*once):
		}
	} else {
		<-sigc
	}
	fmt.Fprintln(os.Stderr, "shutting down: draining jobs")
	sched.Close()
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
