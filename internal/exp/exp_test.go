package exp

import (
	"testing"

	"prioplus/internal/sim"
	"prioplus/internal/stats"
)

func TestFig3aD2TCPNotStrict(t *testing.T) {
	t.Parallel()
	r := Fig3a(8<<20, Options{})
	// D2TCP favors the tight-deadline flow but does not give it the link.
	if r.HighShare < 0.5 || r.HighShare > 0.95 {
		t.Errorf("D2TCP high share = %.2f, want weighted (0.5..0.95)", r.HighShare)
	}
	// Strict priority would finish at ~1x ideal; D2TCP cannot.
	if r.HighFCTvsIdeal < 1.15 {
		t.Errorf("D2TCP tight-deadline FCT = %.2fx ideal; unexpectedly strict", r.HighFCTvsIdeal)
	}
}

func TestFig3bSwiftScalingWeighted(t *testing.T) {
	t.Parallel()
	r := Fig3b(Options{})
	if r.HighShare < 0.5 || r.HighShare > 0.95 {
		t.Errorf("Swift+scaling high share = %.2f, want weighted sharing (violating O1), not strict", r.HighShare)
	}
}

func TestFig3cSwiftNoScalingFluctuates(t *testing.T) {
	t.Parallel()
	r := Fig3c(100, Options{})
	// With many flows and no scaling, fluctuations cross the high flow's
	// target, so the high flow cannot take the whole link (O1 violation).
	if r.HighShareAfter > 0.9 {
		t.Errorf("high flow share = %.2f; expected fluctuation to suppress it", r.HighShareAfter)
	}
	if r.OverLimitFrac < 0.05 {
		t.Errorf("delay over high target in %.0f%% of samples; expected frequent excursions", r.OverLimitFrac*100)
	}
}

func TestFig3dTradeoffs(t *testing.T) {
	t.Parallel()
	r := Fig3d(Options{})
	// Line-rate start of the low pair creates a large queue transient.
	if r.ExtraQueueOnStart < 50_000 {
		t.Errorf("line-rate start added only %d B of queue; expected a large transient", r.ExtraQueueOnStart)
	}
	// After the high flows stop, the low pair needs noticeable time to
	// reclaim (min-rate ACK clock).
	if r.ReclaimDelay < 50*sim.Microsecond {
		t.Errorf("reclaim delay = %v; expected a visible stall", r.ReclaimDelay)
	}
}

func TestFig8PrioPlusBeatsMultiTargetSwift(t *testing.T) {
	t.Parallel()
	pp := Fig8(true, 2*sim.Millisecond, Options{})
	sw := Fig8(false, 2*sim.Millisecond, Options{})
	if pp.DominanceFrac < 0.75 {
		t.Errorf("PrioPlus dominance = %.2f, want > 0.75", pp.DominanceFrac)
	}
	if pp.DominanceFrac <= sw.DominanceFrac {
		t.Errorf("PrioPlus dominance %.2f <= Swift multi-target %.2f", pp.DominanceFrac, sw.DominanceFrac)
	}
}

func TestFig9CardinalityEstimationContainsDelay(t *testing.T) {
	t.Parallel()
	pp := Fig9(true, Options{})
	sw := Fig9(false, Options{})
	if pp.OverLimitFrac >= sw.OverLimitFrac {
		t.Errorf("PrioPlus over-limit %.2f >= Swift %.2f; estimation should help", pp.OverLimitFrac, sw.OverLimitFrac)
	}
	if pp.OverLimitFrac > 0.25 {
		t.Errorf("PrioPlus delay above limit %.0f%% of the time, want mostly contained", pp.OverLimitFrac*100)
	}
	if sw.OverLimitFrac < 0.08 {
		t.Errorf("Swift with inflated AI only %.0f%% over limit; the contrast scenario is too easy", sw.OverLimitFrac*100)
	}
}

func TestFig10bIncastContained(t *testing.T) {
	t.Parallel()
	r := Fig10b(60, Options{})
	if r.WithinFrac < 0.7 {
		t.Errorf("delay within channel %.0f%% of samples, want mostly contained", r.WithinFrac*100)
	}
	if r.MeanDelay > r.Target+6*sim.Microsecond {
		t.Errorf("mean delay %v far above target %v", r.MeanDelay, r.Target)
	}
}

func TestFig10cDualRTTAvoidsOverreaction(t *testing.T) {
	t.Parallel()
	r := Fig10c(Options{})
	if r.DualRTT.TakeoverTime == 0 {
		t.Fatal("dual-RTT never took over the link")
	}
	if r.EveryRTT.RateStdev <= r.DualRTT.RateStdev {
		t.Errorf("every-RTT variance %.1f <= dual-RTT %.1f; expected overreaction without the dual-RTT gate",
			r.EveryRTT.RateStdev, r.DualRTT.RateStdev)
	}
}

func TestFig10dWiderChannelToleratesMoreNoise(t *testing.T) {
	t.Parallel()
	pts := Fig10d(Fig10dConfig{Scales: []float64{1, 6}, WidthsUS: []float64{1, 12}}, Options{})
	util := func(scale, width float64) float64 {
		for _, p := range pts {
			if p.NoiseScale == scale && p.WidthUS == width {
				return p.Util
			}
		}
		t.Fatalf("missing point %v/%v", scale, width)
		return 0
	}
	// Small noise, any width: high utilization. Large noise needs the
	// wide channel.
	if u := util(1, 12); u < 0.9 {
		t.Errorf("scale 1 width 12us: util %.2f, want > 0.9", u)
	}
	if narrow, wide := util(6, 1), util(6, 12); wide <= narrow {
		t.Errorf("scale 6: widening channel did not help (%.2f -> %.2f)", narrow, wide)
	}
}

func TestTable2StartStrategies(t *testing.T) {
	t.Parallel()
	rows := Table2(Options{})
	var line, exp8, lin float64
	for _, r := range rows {
		switch r.Strategy {
		case "line-rate":
			line = r.SimExtraBDP
		case "exponential":
			exp8 = r.SimExtraBDP
		case "linear":
			lin = r.SimExtraBDP
		}
	}
	if !(lin < exp8 && exp8 < line) {
		t.Errorf("extra buffer order wrong: linear %.2f, exponential %.2f, line-rate %.2f", lin, exp8, line)
	}
	// Theorem 4.1 / Table 2: linear start's extra buffer ~1/(2n) BDP vs
	// ~1 BDP for line-rate (n=8 here).
	if lin > 0.35 {
		t.Errorf("linear-start extra buffer %.2f BDP, want ~1/8", lin)
	}
	if line < 0.5 {
		t.Errorf("line-rate extra buffer %.2f BDP, want ~1", line)
	}
}

func TestAppDFluctuationBound(t *testing.T) {
	t.Parallel()
	for _, r := range AppD([]int{10, 40}) {
		if !r.WithinBound {
			t.Errorf("n=%d: measured fluctuation %.2fus exceeds bound %.2fus", r.N, r.MeasuredUS, r.BoundUS)
		}
		if r.MeasuredUS == 0 {
			t.Errorf("n=%d: zero measured fluctuation; measurement broken", r.N)
		}
	}
}

func TestFig2Ratios(t *testing.T) {
	t.Parallel()
	rows := Fig2(Options{})
	// The paper's point: ratios decline across generations; Trident2 at
	// ~9.4, Tomahawk4 at ~4.4.
	var t2, t4 float64
	for _, r := range rows {
		switch r.Chip {
		case "Trident2":
			t2 = r.RatioMBpT
		case "Tomahawk4":
			t4 = r.RatioMBpT
		}
	}
	if t2 < 9 || t2 > 10 {
		t.Errorf("Trident2 ratio %.1f, want ~9.4", t2)
	}
	if t4 < 4 || t4 > 5 {
		t.Errorf("Tomahawk4 ratio %.1f, want ~4.4", t4)
	}
	if t4 >= t2/2+0.3 {
		t.Errorf("Tomahawk4 ratio should be about half of Trident2 (%v vs %v)", t4, t2)
	}
}

func TestFig7NoiseCDF(t *testing.T) {
	t.Parallel()
	cdf, st := Fig7(Fig7Config{Samples: 50_000}, Options{})
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	if st.Mean < 200*sim.Nanosecond || st.Mean > 400*sim.Nanosecond {
		t.Errorf("noise mean %v, want ~0.3us", st.Mean)
	}
}

func TestFig13ToleranceAbsorbsNCDelay(t *testing.T) {
	t.Parallel()
	pts := Fig13(Fig13Config{TolerancesUS: []float64{10}, RangesUS: []float64{0, 6, 40}}, Options{})
	gap := func(rng float64) float64 {
		for _, p := range pts {
			if p.RangeUS == rng {
				return p.GapPerFlow
			}
		}
		t.Fatalf("missing range %v", rng)
		return 0
	}
	// Within tolerance: small gap. Far beyond tolerance: clearly larger.
	if g := gap(6); g > 0.4 {
		t.Errorf("gap at range 6us (tolerance 10us) = %.2f, want small", g)
	}
	if g0, g40 := gap(6), gap(40); g40 <= g0 {
		t.Errorf("gap did not grow beyond tolerance: %.2f -> %.2f", g0, g40)
	}
}

func shortFlowSched(s Scheme, nprios int) FlowSchedConfig {
	cfg := DefaultFlowSchedConfig(s, nprios)
	cfg.K = 4
	cfg.Duration = 5 * sim.Millisecond
	cfg.Drain = 15 * sim.Millisecond
	return cfg
}

func TestFig11ShapeSmall(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("flow-scheduling run in -short mode")
	}
	phys := RunFlowSched(shortFlowSched(SwiftPhysicalIdeal(), 8))
	pp := RunFlowSched(shortFlowSched(PrioPlusSwift(), 8))
	if phys.Flows.Count() < 100 || pp.Flows.Count() < 100 {
		t.Fatalf("too few flows completed: phys %d, pp %d", phys.Flows.Count(), pp.Flows.Count())
	}
	pr, qr := rowFrom(phys), rowFrom(pp)
	// Headline: PrioPlus's large (low-priority) flows beat Physical*'s
	// because of linear-start reclamation (paper: 25-41% better).
	if qr.AvgLarge >= pr.AvgLarge*1.05 {
		t.Errorf("PrioPlus large-flow slowdown %.2f not better than Physical* %.2f", qr.AvgLarge, pr.AvgLarge)
	}
	// High-priority flows degrade at most modestly: the paper's claim is
	// on the combined small+middle average FCT (<= 9% worse; allow slack
	// at this reduced scale).
	combined := func(r Fig11Row, nS, nM int) float64 {
		return (r.AvgSmall*float64(nS) + r.AvgMid*float64(nM)) / float64(nS+nM)
	}
	nS := phys.Flows.ByClass(stats.Small).Count()
	nM := phys.Flows.ByClass(stats.Middle).Count()
	pc, qc := combined(pr, nS, nM), combined(qr, nS, nM)
	if qc > pc*1.25 {
		t.Errorf("PrioPlus small+middle slowdown %.2f vs Physical* %.2f; degradation too large", qc, pc)
	}
	// All launched flows must complete: virtual priority is work
	// conserving (O2).
	if pp.Unfinished > 0 {
		t.Errorf("%d PrioPlus flows unfinished", pp.Unfinished)
	}
}

func TestFig12CoflowShapeSmall(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("coflow run in -short mode")
	}
	cfg := DefaultCoflowConfig(PrioPlusSwift(), 0.4)
	cfg.Duration = 8 * sim.Millisecond
	cfg.Drain = 40 * sim.Millisecond
	rows := Fig12Coflow(cfg, false)
	var phys, pp CoflowSpeedups
	for _, r := range rows {
		switch r.Scheme {
		case "Physical+Swift":
			phys = r
		case "PrioPlus+Swift":
			pp = r
		}
	}
	if pp.Overall <= 0 || phys.Overall <= 0 {
		t.Fatalf("missing speedups: %+v", rows)
	}
	// Both scheduling schemes should beat the no-priority baseline, and
	// PrioPlus should be at least comparable to physical priority.
	if pp.Overall < 1.0 {
		t.Errorf("PrioPlus overall speedup %.2f < 1 (worse than no scheduling)", pp.Overall)
	}
	if pp.Overall < phys.Overall*0.9 {
		t.Errorf("PrioPlus speedup %.2f well below physical %.2f", pp.Overall, phys.Overall)
	}
}

func TestFig12MLShapeSmall(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("ML run in -short mode")
	}
	cfg := DefaultMLConfig(PrioPlusSwift())
	cfg.Duration = 60 * sim.Millisecond // enough iterations for the coarse contrast below
	rows := Fig12ML(cfg)
	var phys, pp MLSpeedups
	for _, r := range rows {
		switch r.Scheme {
		case "Physical+Swift":
			phys = r
		case "PrioPlus+Swift":
			pp = r
		}
	}
	if pp.Overall == 0 || phys.Overall == 0 {
		t.Fatalf("missing results: %+v", rows)
	}
	// The paper's Fig 12c contrast: physical priority speeds ResNet but
	// collapses VGG (-18% in the paper); PrioPlus keeps VGG near parity
	// and wins overall.
	if pp.VGG < 0.7 {
		t.Errorf("PrioPlus VGG speedup %.2f; interleaving should not starve VGG", pp.VGG)
	}
	if pp.VGG <= phys.VGG+0.1 {
		t.Errorf("PrioPlus VGG %.2f not clearly above Physical VGG %.2f; PrioPlus should avoid the starvation", pp.VGG, phys.VGG)
	}
	if pp.Overall <= phys.Overall {
		t.Errorf("PrioPlus overall %.2f <= Physical %.2f", pp.Overall, phys.Overall)
	}
	if pp.Overall < 0.9 {
		t.Errorf("PrioPlus overall speedup %.2f, want >= ~baseline", pp.Overall)
	}
}
