package exp

import "testing"

func TestAblationFilter(t *testing.T) {
	t.Parallel()
	rows := AblationFilter()
	var noFilter, filter AblationFilterResult
	for _, r := range rows {
		if r.ConsecLimit == 1 {
			noFilter = r
		} else {
			filter = r
		}
	}
	if filter.Yields >= noFilter.Yields {
		t.Errorf("filter yields %d >= no-filter yields %d; the 2-consecutive filter should absorb noise spikes",
			filter.Yields, noFilter.Yields)
	}
	if filter.Util < 0.85 {
		t.Errorf("utilization with filter %.2f, want high", filter.Util)
	}
}

func TestAblationCardinality(t *testing.T) {
	t.Parallel()
	rows := AblationCardinality(40)
	var on, off AblationCardinalityResult
	for _, r := range rows {
		if r.Estimation {
			on = r
		} else {
			off = r
		}
	}
	if on.OverLimitFrac >= off.OverLimitFrac {
		t.Errorf("estimation over-limit %.2f >= without %.2f; estimation should contain the delay",
			on.OverLimitFrac, off.OverLimitFrac)
	}
	if off.OverLimitFrac < 0.2 {
		t.Errorf("without estimation only %.0f%% over limit; the ablation contrast is too weak", off.OverLimitFrac*100)
	}
}

func TestAblationProbe(t *testing.T) {
	t.Parallel()
	rows := AblationProbe()
	var ca, naive AblationProbeResult
	for _, r := range rows {
		if r.Scheme == "naive" {
			naive = r
		} else {
			ca = r
		}
	}
	// The schedule policy itself (CA waits out delay - D_target, naive
	// waits one base RTT) is verified by unit tests in internal/core; at
	// the system level the observable claims are that collision
	// avoidance does not cost more probe bandwidth...
	if ca.ProbeGbps > naive.ProbeGbps*1.1 {
		t.Errorf("CA probe load %.3f Gb/s above naive %.3f", ca.ProbeGbps, naive.ProbeGbps)
	}
	if ca.ProbeGbps <= 0 || naive.ProbeGbps <= 0 {
		t.Errorf("no probe traffic measured (ca %.3f, naive %.3f)", ca.ProbeGbps, naive.ProbeGbps)
	}
	// ...nor a large penalty in reclaim latency.
	if ca.ReclaimUS > naive.ReclaimUS*4+400 {
		t.Errorf("CA reclaim %.0fus vs naive %.0fus; detection latency degraded too much",
			ca.ReclaimUS, naive.ReclaimUS)
	}
}

func TestECNPrioExtension(t *testing.T) {
	t.Parallel()
	r := ECNPrio()
	// Priority-dependent marking turns out to approximate strict
	// priority: the standing queue settles above the low threshold, so
	// low-vprio flows are marked on every round trip and collapse to
	// their minimum rate. (This validates Appendix B's direction — with
	// the caveat that it needs a switch change.)
	if r.HighShare < 0.9 {
		t.Errorf("high-vprio share %.2f; per-priority ECN thresholds should strongly prioritize", r.HighShare)
	}
	if r.Util < 0.85 {
		t.Errorf("utilization %.2f, want high", r.Util)
	}
}

func TestWeightedVPExtension(t *testing.T) {
	t.Parallel()
	r := WeightedVP()
	if r.ShareRatio < 2 || r.ShareRatio > 8 {
		t.Errorf("weight-4:weight-1 share ratio %.2f, want ~4", r.ShareRatio)
	}
	if r.HighStrict < 0.85 {
		t.Errorf("higher channel holds %.2f of the link; weights must not break cross-channel strictness", r.HighStrict)
	}
}
