package exp

import (
	"prioplus/internal/core"
	"prioplus/internal/fault"
	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/obs"
	"prioplus/internal/sim"
	"prioplus/internal/stats"
	"prioplus/internal/topo"
	"prioplus/internal/transport"
)

// FaultSweepConfig drives the fault-injection experiment family: a
// cross-pod permutation workload on a fat-tree with a mid-transfer flap of
// one edge-to-agg uplink, run once per scheme. The paper validates
// PrioPlus only on a healthy fabric; this sweep measures how its
// delay-channel behavior (yields, containment) and FCT tails degrade when
// the fabric misbehaves, against the physical-queue baselines.
type FaultSweepConfig struct {
	K        int      // fat-tree arity (default 4 -> 16 hosts)
	NPrios   int      // virtual priorities (default 4)
	FlowSize int64    // bytes per flow (default 8 MB)
	Horizon  sim.Time // run cutoff, generous for RTO recovery (default 20 ms)
	Seed     int64    // workload seed (default 5); Options.Seed overrides
	// FlapAt/FlapDur shape the default fault plan: the p0e0-p0a0 uplink
	// goes down at FlapAt for FlapDur, mid-transfer for the default flow
	// size. Options.Faults replaces the default plan entirely.
	FlapAt  sim.Time
	FlapDur sim.Time
	Schemes []Scheme
	// ObsFor, when non-nil, supplies a fresh recorder per scheme run,
	// keyed by the scheme name. The sweep runs one engine per scheme, so a
	// single Options.Recorder can only serve a single-scheme config.
	ObsFor func(tag string) *obs.Recorder
}

// DefaultFaultSweepConfig returns the standard sweep: PrioPlus+Swift
// against the physical-queue Swift, DCQCN, and HPCC baselines.
func DefaultFaultSweepConfig() FaultSweepConfig {
	return FaultSweepConfig{
		K:        4,
		NPrios:   4,
		FlowSize: 8 << 20,
		Horizon:  20 * sim.Millisecond,
		Seed:     5,
		FlapAt:   200 * sim.Microsecond,
		FlapDur:  300 * sim.Microsecond,
		Schemes: []Scheme{
			PrioPlusSwift(),
			SwiftPhysical(4),
			DCQCNPhysical(4),
			HPCCPhysical(4),
		},
	}
}

// FaultSweepRow is one scheme's outcome under the fault plan.
type FaultSweepRow struct {
	Scheme       string
	Launched     int
	Completed    int
	Stuck        int // flows unfinished at the horizon — must be 0
	MeanSlowdown float64
	P99Slowdown  float64
	Retransmits  int64
	RTOs         int64
	FaultDrops   int64 // packets dropped by downed links (queued + in-flight)
	CorruptDrops int64
	NoRouteDrops int64 // packets caught mid-flight with no surviving route
	FaultEvents  int   // executed fault actions (flap edges, reboots)
	PeakQueueKB  int   // max egress queue HWM across the fabric, containment proxy
	Yields       int64 // PrioPlus delay-channel yields (0 for baselines)
}

// FaultSweep runs every scheme of the config through the same fault plan
// and workload. The default plan is a single mid-transfer flap of the
// p0e0-p0a0 uplink; Options.Faults substitutes any plan, Options.Seed
// reseeds the workload, and Options.Recorder instruments the run when the
// config has a single scheme (use ObsFor for per-scheme recorders).
func FaultSweep(cfg FaultSweepConfig, o Options) []FaultSweepRow {
	if cfg.K == 0 {
		cfg = DefaultFaultSweepConfig()
	}
	seed := o.seedOr(cfg.Seed)
	plan := o.Faults
	if plan == nil {
		plan = fault.NewPlan(seed).Flap(cfg.FlapAt, cfg.FlapDur, fault.Link("p0e0", "p0a0"))
	}
	rows := make([]FaultSweepRow, 0, len(cfg.Schemes))
	for _, s := range cfg.Schemes {
		ro := Options{Seed: seed, Faults: plan, Recorder: o.Recorder}
		if cfg.ObsFor != nil {
			ro.Recorder = cfg.ObsFor(s.Name)
		}
		rows = append(rows, faultSweepOne(s, cfg, ro))
	}
	return rows
}

// faultSweepOne runs one scheme: cross-pod permutation flows (every host
// sends FlowSize to the host half the fabric away, so every flow crosses
// the core) with priorities striped across senders.
func faultSweepOne(s Scheme, cfg FaultSweepConfig, o Options) FaultSweepRow {
	eng := sim.NewEngine()
	tc := topo.DefaultConfig()
	tc.LinkDelay = 1 * sim.Microsecond
	tc.Seed = o.Seed
	tc.Buffer = netsim.DefaultBufferConfig()
	tc.Buffer.TotalBytes = int(4.4e6 * float64(cfg.K) * 100 / 1000)
	linkBDP := tc.HostRate.BDP(2 * tc.LinkDelay)
	tc.Buffer.HeadroomBytes = int(2*linkBDP) + 8*(netsim.DefaultMTU+netsim.HeaderBytes)
	s.Fabric(&tc, cfg.NPrios)
	nw := topo.FatTree(eng, cfg.K, tc)
	opts := append(s.NetOptions(), harness.WithFaults(o.Faults))
	net := harness.New(nw, o.Seed, opts...)
	rec := o.Recorder
	if rec != nil {
		net.Observe(rec)
		if rec.Series != nil {
			rec.Series.ReserveUntil(cfg.Horizon)
		}
	}

	row := FaultSweepRow{Scheme: s.Name}
	// Observe owns OnFlowDone when a recorder is attached; chain behind it
	// so the sweep's per-flow recovery counters coexist with telemetry.
	for _, st := range net.Stacks {
		inner := st.OnFlowDone
		st.OnFlowDone = func(fs transport.FlowStats) {
			row.Retransmits += fs.Retransmits
			row.RTOs += fs.RTOs
			if inner != nil {
				inner(fs)
			}
		}
	}

	nHosts := len(nw.Hosts)
	flows := &stats.Collector{}
	var pps []*core.PrioPlus
	for src := 0; src < nHosts; src++ {
		dst := (src + nHosts/2) % nHosts
		prio := src % cfg.NPrios
		base := nw.BaseRTT(src, dst)
		env := FlowEnv{
			Prio:    prio,
			NPrios:  cfg.NPrios,
			BaseRTT: base,
			BDPPkts: tc.HostRate.BDP(base) / netsim.DefaultMTU,
			Size:    cfg.FlowSize,
			Ideal:   IdealFCT(cfg.FlowSize, tc.HostRate, base),
		}
		algo := s.NewAlgo(env)
		if pp, ok := algo.(*core.PrioPlus); ok {
			pps = append(pps, pp)
		}
		size := cfg.FlowSize
		ideal := env.Ideal
		row.Launched++
		net.AddFlow(harness.Flow{
			Src: src, Dst: dst, Size: size,
			Prio: s.QueueFor(prio, cfg.NPrios, tc.Queues),
			Algo: algo,
			OnComplete: func(fct sim.Time) {
				flows.Add(stats.FlowRecord{Size: size, FCT: fct, Ideal: ideal, Prio: prio})
			},
		})
	}
	eng.RunUntil(cfg.Horizon)

	row.Completed = flows.Count()
	row.Stuck = row.Launched - row.Completed
	row.MeanSlowdown = flows.MeanSlowdown()
	row.P99Slowdown = flows.PercentileSlowdown(0.99)
	for _, sw := range nw.Switches {
		row.NoRouteDrops += sw.NoRouteDrop
		for _, p := range sw.Ports {
			row.FaultDrops += p.FaultDrops
			row.CorruptDrops += p.CorruptDrops
			if kb := p.QueueHWM / 1024; kb > row.PeakQueueKB {
				row.PeakQueueKB = kb
			}
		}
	}
	for _, h := range nw.Hosts {
		row.FaultDrops += h.NIC.FaultDrops
		row.CorruptDrops += h.NIC.CorruptDrops
	}
	if net.Faults != nil {
		row.FaultEvents = len(net.Faults.Events())
	}
	for _, pp := range pps {
		row.Yields += pp.Yields
	}
	if rec != nil {
		net.CollectMetrics(rec)
	}
	return row
}
