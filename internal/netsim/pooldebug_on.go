//go:build simdebug

package netsim

// poolDebug gates the packet-pool poison checks. Build (or test) with
// -tags simdebug to panic on double-Put and on any recycled packet
// re-entering the simulation, instead of silently corrupting results.
const poolDebug = true
