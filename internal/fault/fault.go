// Package fault implements deterministic, seed-driven fault injection for
// the simulator: scheduled link down/up (flaps), per-link random loss and
// corruption, and switch reboots, all executed on the engine clock.
//
// A Plan is an immutable schedule built once and installed per run.
// Determinism rules:
//
//   - Every fault action is an engine event at a fixed simulated time, so
//     the interleaving with traffic is reproduced exactly on replay.
//   - Loss and corruption draws come from per-link RNG streams derived
//     from Plan.Seed and the link's (device, port) identity — never from a
//     shared or global source — so the drop pattern of one link does not
//     depend on what other links carry.
//   - Install touches only the run's private topology and engine; nothing
//     is shared across runs, so batch runs are byte-identical whatever the
//     -parallel setting.
//
// A link event downs/ups both ends of the cable: queued packets drop back
// into the packet pool immediately (Port.SetDown), in-flight packets drop
// on arrival at the downed receiving port, and the routing tables are
// recomputed so surviving paths carry the traffic (ECMP re-hash handles
// the instants in between). See docs/ARCHITECTURE.md, "Fault layer".
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"prioplus/internal/netsim"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
)

// LinkRef names one end of a cable. Dev is a device name as reported by
// DeviceName() — "p0e0", "core1", "host3". When Peer is non-empty the port
// is resolved as the first Dev port wired to that device (the natural way
// to name a fabric link); otherwise Port indexes Dev's port list directly.
type LinkRef struct {
	Dev  string
	Port int
	Peer string
}

// String renders the link as "device[port]" for artifacts and errors.
func (l LinkRef) String() string {
	if l.Peer != "" {
		return l.Dev + "->" + l.Peer
	}
	return fmt.Sprintf("%s:%d", l.Dev, l.Port)
}

// Link is shorthand for a LinkRef naming the cable between two devices.
func Link(dev, peer string) LinkRef { return LinkRef{Dev: dev, Peer: peer} }

type eventKind int

const (
	linkDown eventKind = iota
	linkUp
	rebootSwitch
)

type planEvent struct {
	at   sim.Time
	kind eventKind
	link LinkRef // Dev only, for rebootSwitch
}

type impairment struct {
	link    LinkRef
	loss    float64
	corrupt float64
}

// Plan is an immutable fault schedule. Build it once (the builders return
// the plan for chaining), then Install it on each run's topology; a Plan
// holds no per-run state and may be shared across the runs of a sweep.
type Plan struct {
	// Seed drives every random draw the plan's impairments make; per-link
	// streams are derived from it so a given (seed, link) always sees the
	// same drop pattern.
	Seed int64

	events      []planEvent
	impairments []impairment
}

// NewPlan returns an empty plan with the given seed.
func NewPlan(seed int64) *Plan { return &Plan{Seed: seed} }

// LinkDown schedules both ends of a cable to go down at the given time.
func (p *Plan) LinkDown(at sim.Time, l LinkRef) *Plan {
	p.events = append(p.events, planEvent{at: at, kind: linkDown, link: l})
	return p
}

// LinkUp schedules both ends of a cable to come back up.
func (p *Plan) LinkUp(at sim.Time, l LinkRef) *Plan {
	p.events = append(p.events, planEvent{at: at, kind: linkUp, link: l})
	return p
}

// Flap schedules a link to go down at `at` and come back after `dur`.
func (p *Plan) Flap(at, dur sim.Time, l LinkRef) *Plan {
	return p.LinkDown(at, l).LinkUp(at+dur, l)
}

// Reboot schedules an instantaneous restart of the named switch: all
// queues drained into the pool, all PFC state cleared.
func (p *Plan) Reboot(at sim.Time, dev string) *Plan {
	p.events = append(p.events, planEvent{at: at, kind: rebootSwitch, link: LinkRef{Dev: dev}})
	return p
}

// Impair sets random loss and corruption rates on both directions of a
// cable for the whole run. Each direction draws from its own RNG stream
// derived from the plan seed and the receiving port's identity.
func (p *Plan) Impair(l LinkRef, lossRate, corruptRate float64) *Plan {
	p.impairments = append(p.impairments, impairment{link: l, loss: lossRate, corrupt: corruptRate})
	return p
}

// Empty reports whether the plan contains no events and no impairments.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.events) == 0 && len(p.impairments) == 0)
}

// Event is the observable record of one executed fault action.
type Event struct {
	T    sim.Time
	Kind string // "link_down", "link_up", "reboot"
	Dev  string
	Port int // -1 for reboot
}

func (k eventKind) label() string {
	switch k {
	case linkDown:
		return "link_down"
	case linkUp:
		return "link_up"
	default:
		return "reboot"
	}
}

// Injector is one run's live fault state: it executes a plan's events on
// the run's engine and records what happened.
type Injector struct {
	topo *topo.Network

	// Notify, when non-nil, receives every executed fault event at the
	// moment it fires; harness.Net.Observe points it at the recorder's
	// fault log. The injector keeps its own Events list regardless.
	Notify func(Event)

	events    []Event
	downLinks int
}

// Install resolves the plan against a topology and schedules its events on
// the topology's engine. Call once per run, before traffic starts; link
// references that resolve to nothing panic immediately rather than firing
// into the void mid-run.
func (p *Plan) Install(t *topo.Network) *Injector {
	inj := &Injector{topo: t}
	// Any plan may partition a destination; packets already in flight
	// toward the partition must be dropped, not panic the run.
	for _, sw := range t.Switches {
		sw.AllowNoRoute = true
	}
	for _, im := range p.impairments {
		a := inj.resolve(im.link)
		for _, port := range []*netsim.Port{a, a.Peer} {
			f := port.Fault()
			f.LossRate = im.loss
			f.CorruptRate = im.corrupt
			f.Rng = rand.New(rand.NewSource(p.Seed ^ linkSeed(port.Owner.DeviceName(), port.Index)))
		}
	}
	for _, ev := range p.events {
		ev := ev
		switch ev.kind {
		case linkDown:
			port := inj.resolve(ev.link)
			t.Eng.AtK(ev.at, func() { inj.setLink(port, true) }, sim.EKFault)
		case linkUp:
			port := inj.resolve(ev.link)
			t.Eng.AtK(ev.at, func() { inj.setLink(port, false) }, sim.EKFault)
		case rebootSwitch:
			sw := inj.findSwitch(ev.link.Dev)
			t.Eng.AtK(ev.at, func() {
				sw.Reboot()
				inj.emit(rebootSwitch, ev.link.Dev, -1)
			}, sim.EKFault)
		}
	}
	return inj
}

// setLink flips both ends of a cable and reconverges routing.
func (inj *Injector) setLink(port *netsim.Port, down bool) {
	if port.IsDown() == down {
		return
	}
	port.SetDown(down)
	port.Peer.SetDown(down)
	if down {
		inj.downLinks++
	} else {
		inj.downLinks--
	}
	inj.topo.RecomputeRoutes()
	kind := linkUp
	if down {
		kind = linkDown
	}
	inj.emit(kind, port.Owner.DeviceName(), port.Index)
}

func (inj *Injector) emit(kind eventKind, dev string, portIdx int) {
	ev := Event{T: inj.topo.Eng.Now(), Kind: kind.label(), Dev: dev, Port: portIdx}
	inj.events = append(inj.events, ev)
	if inj.Notify != nil {
		inj.Notify(ev)
	}
}

// DownLinks returns how many links are currently down (a series source).
func (inj *Injector) DownLinks() int { return inj.downLinks }

// Events returns the fault actions executed so far, in firing order.
func (inj *Injector) Events() []Event { return inj.events }

// resolve maps a LinkRef to the named end's *netsim.Port.
func (inj *Injector) resolve(l LinkRef) *netsim.Port {
	ports := inj.devicePorts(l.Dev)
	if l.Peer != "" {
		for _, p := range ports {
			if p.Peer != nil && p.Peer.Owner.DeviceName() == l.Peer {
				return p
			}
		}
		panic(fmt.Sprintf("fault: no link %s", l))
	}
	if l.Port < 0 || l.Port >= len(ports) {
		panic(fmt.Sprintf("fault: %s has no port %d", l.Dev, l.Port))
	}
	return ports[l.Port]
}

func (inj *Injector) devicePorts(dev string) []*netsim.Port {
	for _, sw := range inj.topo.Switches {
		if sw.Name == dev {
			return sw.Ports
		}
	}
	for _, h := range inj.topo.Hosts {
		if h.DeviceName() == dev {
			return []*netsim.Port{h.NIC}
		}
	}
	panic(fmt.Sprintf("fault: unknown device %q", dev))
}

func (inj *Injector) findSwitch(dev string) *netsim.Switch {
	for _, sw := range inj.topo.Switches {
		if sw.Name == dev {
			return sw
		}
	}
	panic(fmt.Sprintf("fault: unknown switch %q", dev))
}

// linkSeed derives a stable per-port seed component from the port's
// identity, so per-link RNG streams are independent of installation order.
func linkSeed(dev string, port int) int64 {
	h := fnv.New64a()
	h.Write([]byte(dev))
	return int64(h.Sum64() ^ uint64(port)*0x9e3779b97f4a7c15)
}
