package exp

import (
	"bytes"
	"fmt"
	"testing"

	"prioplus/internal/fault"
	"prioplus/internal/obs"
	"prioplus/internal/runner"
	"prioplus/internal/sim"
)

// quickFaultSweepConfig is a reduced sweep for tests: two schemes, 1 MB
// flows, a flap timed to land mid-transfer.
func quickFaultSweepConfig(seed int64) FaultSweepConfig {
	cfg := DefaultFaultSweepConfig()
	cfg.FlowSize = 1 << 20
	cfg.Horizon = 10 * sim.Millisecond
	cfg.FlapAt = 50 * sim.Microsecond
	cfg.FlapDur = 100 * sim.Microsecond
	cfg.Seed = seed
	cfg.Schemes = []Scheme{PrioPlusSwift(), SwiftPhysical(4)}
	return cfg
}

// TestFaultSweepRecoversAllFlows is the headline guarantee: a mid-transfer
// link failure on the fat-tree leaves zero stuck flows, and the recovery
// is real — packets died and came back via retransmission.
func TestFaultSweepRecoversAllFlows(t *testing.T) {
	rows := FaultSweep(quickFaultSweepConfig(5), Options{})
	var drops, recoveries int64
	for _, r := range rows {
		if r.Stuck != 0 {
			t.Errorf("%s: %d/%d flows stuck at horizon", r.Scheme, r.Stuck, r.Launched)
		}
		if r.FaultEvents != 2 {
			t.Errorf("%s: %d fault events, want 2 (down + up)", r.Scheme, r.FaultEvents)
		}
		if r.Scheme == "PrioPlus+Swift" && r.Yields == 0 {
			t.Error("PrioPlus stopped yielding under the fault plan")
		}
		drops += r.FaultDrops
		recoveries += r.Retransmits + r.RTOs
	}
	// PrioPlus's linear start may have nothing in flight on the flapped
	// uplink this early, so the drop/recovery assertions are aggregate:
	// the flap must have been destructive for the sweep as a whole.
	if drops == 0 {
		t.Error("flap dropped no packets in any scheme; it missed the transfer")
	}
	if recoveries == 0 {
		t.Error("no retransmits or RTOs anywhere; the fault was inert")
	}
}

// faultSweepTask wraps a full sweep — fault plan, per-scheme recorders,
// serialized artifacts — as one batch-runner task, with every byte of
// output in the comparison.
func faultSweepTask(name string, seed int64) runner.Task {
	return runner.Task{
		Name: name,
		Run: func() (string, map[string]float64) {
			cfg := quickFaultSweepConfig(seed)
			var tags []string
			recs := map[string]*obs.Recorder{}
			cfg.ObsFor = func(tag string) *obs.Recorder {
				rec := obs.NewRecorder()
				rec.Series = obs.NewSeriesSet(10 * sim.Microsecond)
				tags = append(tags, tag)
				recs[tag] = rec
				return rec
			}
			rows := FaultSweep(cfg, Options{})
			var buf bytes.Buffer
			fmt.Fprintf(&buf, "%+v\n", rows)
			for _, tag := range tags {
				if err := obs.WriteArtifact(&buf, tag, recs[tag]); err != nil {
					panic(err)
				}
			}
			return buf.String(), map[string]float64{"schemes": float64(len(rows))}
		},
	}
}

// TestFaultSweepDeterministicAcrossWorkers extends the batch-runner
// contract to fault injection: sweep results and telemetry artifacts
// (fault events, links_down series, drop counters included) must be
// byte-identical between -parallel 1 and -parallel 8.
func TestFaultSweepDeterministicAcrossWorkers(t *testing.T) {
	tasks := make([]runner.Task, 4)
	for i := range tasks {
		tasks[i] = faultSweepTask(fmt.Sprintf("run%d", i), int64(i+1))
	}
	serial := runner.Run(tasks, runner.Options{Workers: 1})
	parallel := runner.Run(tasks, runner.Options{Workers: 8})
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("run %d errored: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Output != parallel[i].Output {
			t.Errorf("run %d sweep output differs between -parallel 1 and 8", i)
		}
		if !bytes.Contains([]byte(serial[i].Output), []byte(`"type":"fault"`)) {
			t.Errorf("run %d artifact has no fault events", i)
		}
		if !bytes.Contains([]byte(serial[i].Output), []byte("Stuck:0")) {
			t.Errorf("run %d had stuck flows", i)
		}
	}
}

// TestFaultSweepCustomPlan: Options.Faults replaces the default flap and
// Options.Seed reseeds the workload, so callers can script arbitrary
// outage scenarios through the same entry point.
func TestFaultSweepCustomPlan(t *testing.T) {
	cfg := quickFaultSweepConfig(5)
	cfg.Schemes = cfg.Schemes[:1]
	plan := fault.NewPlan(42).
		Flap(50*sim.Microsecond, 80*sim.Microsecond, fault.Link("p0e0", "p0a0")).
		Flap(300*sim.Microsecond, 80*sim.Microsecond, fault.Link("p1e0", "p1a0"))
	rows := FaultSweep(cfg, Options{Seed: 9, Faults: plan})
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.FaultEvents != 4 {
		t.Errorf("FaultEvents = %d, want 4 (two flaps)", r.FaultEvents)
	}
	if r.Stuck != 0 {
		t.Errorf("%d flows stuck under the two-flap plan", r.Stuck)
	}
}
