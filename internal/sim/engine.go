package sim

import (
	"sync/atomic"
	"time"
)

// totalProcessed accumulates events executed across every engine in the
// process, for batch-level events/sec reporting (internal/runner fans
// engines across goroutines, so the counter is atomic). It is updated once
// per RunUntil call, not per event, so the hot loop stays free of atomics.
var totalProcessed atomic.Uint64

// TotalProcessed returns the number of events executed by all engines in
// this process since it started. Sample it before and after a batch to
// compute an events/sec rate. This is the raw dispatch count: optimizations
// that elide events (e.g. the lazy transmitter wake-up) lower it without
// changing simulation behavior, so it is not comparable across builds — use
// TotalEvents for a build-independent basis.
func TotalProcessed() uint64 { return totalProcessed.Load() }

// totalEvents accumulates the logical event count: dispatched events plus
// reserved-seq positions that were never filed (elided events that earlier
// engine generations would have dispatched). Signed because a seq reserved
// in one RunUntil may be filed in a later one, making individual deltas
// negative; the running sum is exact.
var totalEvents atomic.Int64

// TotalEvents returns the logical event count for all engines in this
// process: every dispatched event plus every elided one (a seq reserved
// via ReserveSeq and never filed stands for an event the eager scheduling
// scheme would have dispatched). Unlike TotalProcessed, this basis is
// stable across engine optimizations, so events/sec computed from it is
// comparable across builds.
func TotalEvents() uint64 {
	v := totalEvents.Load()
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// Event kinds, carried as a tag on each scheduled event for cost
// attribution (SetCostSampler). Tags are advisory — they never affect
// dispatch order or simulation behavior. Untagged events are EKOther.
const (
	EKOther uint8 = iota
	EKTransmit      // port transmitter wake-up (serialization done)
	EKDeliverSwitch // packet delivery into a switch port
	EKDeliverHost   // packet delivery into a host NIC
	EKPause         // PFC pause/resume frame delivery
	EKRTO           // transport retransmission timeout
	EKSampler       // clock-driven sampling hook (SetSampler)
	EKFault         // fault-injection timeline event
	NumEventKinds
)

// eventKindNames maps kind tags to the stable snake_case names used in
// artifacts and the /metrics endpoint.
var eventKindNames = [NumEventKinds]string{
	"other", "transmit", "deliver_switch", "deliver_host",
	"pause", "rto", "sampler", "fault",
}

// EventKindName returns the stable name for a kind tag; out-of-range tags
// report as "other".
func EventKindName(k uint8) string {
	if k >= NumEventKinds {
		return "other"
	}
	return eventKindNames[k]
}

// Event states. An event is pending from scheduling until it is dispatched;
// dispatch moves it to fired (executed) or lets a canceled event drain.
const (
	evPending uint8 = iota
	evFired
	evCanceled
)

// Event is a scheduled callback. It is returned by At and After so callers
// can cancel it; a zero Event must not be constructed directly.
//
// Ownership: once an event has fired or been canceled, the engine reclaims
// the object for reuse — the caller must drop its reference at that point
// (the idiomatic pattern is to nil the field as the first statement of the
// callback, and to nil it right after Cancel). Calling Cancel on a stale
// pointer may cancel an unrelated future event.
type Event struct {
	at    Time
	seq   uint64
	state uint8
	kind  uint8 // cost-attribution tag (EK*); fits existing struct padding
	fn    func()
	// Closure-free delivery payload (Post2): fn2 is a preallocated function
	// and a0/a1 its arguments. Pointers boxed in any do not allocate.
	fn2    func(a, b any)
	a0, a1 any
}

// At returns the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event while it was
// still pending.
func (e *Event) Canceled() bool { return e.state == evCanceled }

// entry is one queue slot. The ordering key lives in the entry itself so
// comparisons never chase the Event pointer.
type entry struct {
	at  Time
	seq uint64
	ev  *Event
}

func (a entry) less(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq // FIFO among simultaneous events
}

// Engine is a single-threaded discrete-event scheduler. The zero value is
// not usable; create one with NewEngine.
//
// The event queue is a hierarchical timing wheel (see wheel.go): O(1)
// insertion for the short-horizon events that dominate the simulator,
// strict (time, seq) dispatch order restored by a small per-slot heap, and
// a far-future overflow heap so any timestamp schedules. Same-timestamp
// events are dispatched as one batch without re-consulting the queue
// between callbacks.
//
// Cancellation is lazy: Cancel marks the event and the queue drops it when
// its slot drains (or at the next compaction), so Cancel is O(1) and no
// structure needs per-event index bookkeeping.
type Engine struct {
	now       Time
	seq       uint64
	stopped   bool
	processed uint64
	free      []*Event // recycled fired/canceled events

	// Event queue: hierarchical timing wheel + due/overflow heaps
	// (wheel.go). due holds every event at or behind the cursor's current
	// level-0 slot in (time, seq) order; batch is the same-timestamp
	// dispatch buffer, reused across batches.
	due       entryHeap
	overflow  entryHeap
	levels    [numLevels]wheelLevel
	wheelTick uint64 // absolute level-0 slot number of the wheel cursor
	nwheel    int    // entries resident in wheel slots (canceled included)
	batch     []entry
	npending  int // scheduled, not yet fired or canceled
	ncanceled int // canceled entries still occupying queue slots

	// Dispatch-position tracking for reserved-seq events (ReserveSeq /
	// PostAtSeq). inBatch and batchPos locate the running batch so a
	// reserved-seq event filed at the current timestamp can be spliced in
	// at its seq position; lastAt/lastSeq record the most recently
	// reached batch entry so callers can ask whether a reserved position
	// has already been passed (ReachedSeq).
	inBatch  bool
	batchPos int
	lastAt   Time
	lastSeq  uint64

	// Clock-driven sampler (SetSampler). sampleAt is the next sampling
	// instant, maxTime when disabled, so the hot loop pays one always-false
	// comparison per event when no sampler is installed.
	sampleAt    Time
	sampleEvery Time
	sampleFn    func()

	// Sampled cost attribution (SetCostSampler). One in costEvery
	// dispatches is wall-clock stamped and reported to costFn with the
	// event's kind tag; nil costFn costs the hot loop a single
	// always-false nil check.
	costFn    func(kind uint8, nanos int64)
	costEvery int64
	costSkip  int64

	// Per-event digest chain (SetDigest). Nil when fingerprinting is off;
	// the dispatch loop pays one always-false nil check.
	dig *Digest

	// Logical-event accounting: seqs reserved (ReserveSeq) and later filed
	// (PostAtSeq). reserved-minus-filed counts elided events — see
	// TotalEvents. The acc* fields are the portion already flushed into
	// the global counter (RunUntil flushes on exit, covering calls made
	// between runs as well).
	nreserved   uint64
	nfiled      uint64
	accReserved uint64
	accFiled    uint64
}

// maxTime is the largest representable simulated time; it doubles as the
// "never" sentinel for the sampler.
const maxTime = Time(1<<63 - 1)

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{sampleAt: maxTime}
	e.initWheel()
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled (canceled
// events awaiting lazy removal are not counted).
func (e *Engine) Pending() int { return e.npending }

// schedule allocates (or recycles) an event at absolute time t and files
// its queue entry.
func (e *Engine) schedule(t Time) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.at = t
	ev.seq = e.seq
	ev.state = evPending
	ev.kind = EKOther
	e.place(entry{at: t, seq: e.seq, ev: ev})
	e.seq++
	e.npending++
	return ev
}

// recycle returns a dispatched event to the free list, clearing anything
// it could pin.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.fn2 = nil
	ev.a0, ev.a1 = nil, nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a logic error in the caller.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	ev := e.schedule(t)
	ev.fn = fn
	return ev
}

// AtK is At with a cost-attribution kind tag (see SetCostSampler).
func (e *Engine) AtK(t Time, fn func(), kind uint8) *Event {
	ev := e.At(t, fn)
	ev.kind = kind
	return ev
}

// After schedules fn to run d after the current time. A negative d is
// treated as zero.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Post schedules fn to run d after the current time without returning the
// event. Use for fire-and-forget scheduling; events posted this way cannot
// be canceled. (All events are recycled once they fire; Post merely
// documents that the caller keeps no handle.)
func (e *Engine) Post(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now + d).fn = fn
}

// Post2 schedules fn(a, b) to run d after the current time, without
// allocating a closure: fn is expected to be preallocated (a package-level
// function or a func value created once), and a/b are boxed arguments.
// Boxing pointers (and integers below 256) in any does not allocate, so a
// Post2 with a warm free list performs zero heap allocations. This is the
// per-packet scheduling primitive of the netsim hot path.
func (e *Engine) Post2(d Time, fn func(a, b any), a, b any) {
	if d < 0 {
		d = 0
	}
	ev := e.schedule(e.now + d)
	ev.fn2 = fn
	ev.a0, ev.a1 = a, b
}

// Post2K is Post2 with a cost-attribution kind tag (see SetCostSampler).
func (e *Engine) Post2K(d Time, fn func(a, b any), a, b any, kind uint8) {
	if d < 0 {
		d = 0
	}
	ev := e.schedule(e.now + d)
	ev.fn2 = fn
	ev.a0, ev.a1 = a, b
	ev.kind = kind
}

// ReserveSeq allocates and returns a dispatch sequence number without
// scheduling anything. An event later filed under it with PostAtSeq gets
// the FIFO rank it would have had if it had been scheduled at reservation
// time. The port transmitter uses this to arm its wake event lazily — only
// when something actually needs one — while keeping every same-timestamp
// tie-break bit-identical to the former scheme that eagerly scheduled a
// completion event per transmission. A reserved seq that is never used
// simply leaves a harmless gap in the sequence space.
func (e *Engine) ReserveSeq() uint64 {
	s := e.seq
	e.seq++
	e.nreserved++
	return s
}

// PostAtSeq schedules fn at absolute time t under a seq previously
// obtained from ReserveSeq. If t is the current timestamp and the batch
// running at it has not yet passed the reserved position, the event is
// spliced into the running batch at that position — exactly as if it had
// been in the queue when the batch was collected. Each reserved seq must
// be filed at most once, and only at a (t, seq) position not yet reached
// (ReachedSeq reports that).
func (e *Engine) PostAtSeq(t Time, fn func(), seq uint64) {
	e.PostAtSeqK(t, fn, seq, EKOther)
}

// PostAtSeqK is PostAtSeq with a cost-attribution kind tag (see
// SetCostSampler).
func (e *Engine) PostAtSeqK(t Time, fn func(), seq uint64, kind uint8) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.at = t
	ev.seq = seq
	ev.state = evPending
	ev.kind = kind
	ev.fn = fn
	e.npending++
	e.nfiled++
	ent := entry{at: t, seq: seq, ev: ev}
	if t == e.now && e.inBatch && seq > e.batch[e.batchPos].seq {
		e.spliceBatch(ent)
		return
	}
	e.place(ent)
}

// spliceBatch inserts ent into the undispatched remainder of the running
// batch at its seq position.
func (e *Engine) spliceBatch(ent entry) {
	i := e.batchPos + 1
	for i < len(e.batch) && e.batch[i].seq < ent.seq {
		i++
	}
	e.batch = append(e.batch, entry{})
	copy(e.batch[i+1:], e.batch[i:])
	e.batch[i] = ent
}

// ReachedSeq reports whether dispatch has reached or passed position
// (t, seq): a later batch has started, or the batch at t has dispatched
// (or skipped) an entry with that seq or higher. Callers holding a
// reserved seq use this to decide between acting inline (the position is
// behind us, as if the reserved event had already fired finding nothing
// to do) and filing the event with PostAtSeq.
func (e *Engine) ReachedSeq(t Time, seq uint64) bool {
	return e.lastAt > t || (e.lastAt == t && e.lastSeq >= seq)
}

// Cancel removes ev from the schedule in O(1) by marking it; the queue
// slot is reclaimed lazily. Canceling an already-fired or already-canceled
// event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.state != evPending {
		return
	}
	ev.state = evCanceled
	e.ncanceled++
	e.npending--
	// If canceled entries dominate the queue (e.g. a pathological
	// cancel/re-schedule loop with far-future deadlines), compact so memory
	// stays proportional to the live event count. Amortized O(1) per Cancel.
	if e.ncanceled > 64 && e.ncanceled*2 > e.queuedEntries() {
		e.compact()
	}
}

// SetSampler installs a clock-driven sampling hook: fn runs every `every`
// of simulated time, starting at Now()+every, interleaved deterministically
// with the event stream — all events with timestamps <= a sampling instant
// execute before the sample is taken, so fn observes the state "just after"
// that instant. The hook consumes no queue events: RunUntil fires it by
// comparing the next event's timestamp against the sampling deadline, and
// drains any remaining instants up to the horizon before returning.
//
// fn must not schedule events in the past; it may call Stop. Passing a nil
// fn (or every <= 0) removes the sampler.
func (e *Engine) SetSampler(every Time, fn func()) {
	if fn == nil || every <= 0 {
		e.sampleAt = maxTime
		e.sampleEvery = 0
		e.sampleFn = nil
		return
	}
	e.sampleEvery = every
	e.sampleFn = fn
	e.sampleAt = e.now + every
}

// SetCostSampler installs a sampled cost-attribution hook: one in every
// `every` dispatched callbacks (sampling-hook firings included, tagged
// EKSampler) is wall-clock stamped, and fn receives the event's kind tag
// plus the measured nanoseconds. The shared 1-in-N countdown across all
// dispatch paths keeps per-kind time shares unbiased. fn runs after the
// stamped callback returns and must not mutate simulation state — stamps
// are observation only, so enabling the sampler cannot perturb results.
// Passing a nil fn (or every <= 0) removes the hook; with no hook the
// dispatch loop pays a single nil check.
func (e *Engine) SetCostSampler(every int64, fn func(kind uint8, nanos int64)) {
	if fn == nil || every <= 0 {
		e.costFn = nil
		e.costEvery, e.costSkip = 0, 0
		return
	}
	e.costFn = fn
	e.costEvery = every
	e.costSkip = every
}

// Stop makes the current Run or RunUntil return after the executing event
// completes. Any same-timestamp events batched with the executing one stay
// pending and dispatch on the next run.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the schedule is empty or Stop is called.
func (e *Engine) Run() { e.RunUntil(maxTime) }

// RunUntil executes events with timestamps <= end, then sets the clock to
// end (unless the run was stopped early or ran out of events beyond end).
func (e *Engine) RunUntil(end Time) {
	start := e.processed
	defer func() {
		d := e.processed - start
		totalProcessed.Add(d)
		// Logical basis: dispatched plus reserved-but-unfiled (elided)
		// events. A seq reserved in an earlier run and filed in this one
		// makes the reserve/file part negative; the running sum is exact.
		totalEvents.Add(int64(d) + int64(e.nreserved-e.accReserved) - int64(e.nfiled-e.accFiled))
		e.accReserved, e.accFiled = e.nreserved, e.nfiled
	}()
	e.stopped = false
	for !e.stopped && e.refillDue() {
		top := e.due[0]
		if top.ev.state == evCanceled {
			// Lazy deletion: drain without advancing the clock or the
			// processed count.
			e.due.pop()
			e.ncanceled--
			e.recycle(top.ev)
			continue
		}
		if top.at > e.sampleAt && e.sampleAt <= end {
			// A sampling instant falls strictly before the next event: take
			// the sample, then re-read the queue (the hook may Stop or
			// Cancel). Strict ordering means events AT the instant ran first.
			e.fireSampler()
			continue
		}
		if top.at > end {
			break
		}
		e.runBatch(top.at)
	}
	// Drain sampling instants between the last event and the horizon. Only
	// for a finite horizon: Run() must still terminate on an empty schedule.
	if end < maxTime {
		for !e.stopped && e.sampleAt <= end {
			e.fireSampler()
		}
	}
	if !e.stopped && e.now < end && end < maxTime {
		e.now = end
	}
}

// runBatch dispatches every event scheduled at exactly time at in one
// pass: the whole batch is popped off the due heap up front (in seq order
// — the heap yields equal-timestamp entries FIFO), then dispatched without
// re-consulting the queue between callbacks. Events a callback schedules
// at the same timestamp carry higher seqs and fire right after the batch —
// except reserved-seq events (PostAtSeq), which are spliced into the
// undispatched remainder at their seq position, so the loop re-reads
// e.batch and its length each step. A callback canceling a later batch
// member takes effect because each member's state is checked at dispatch.
// On Stop, the undispatched remainder is pushed back so a later run
// resumes exactly where this one ended.
func (e *Engine) runBatch(at Time) {
	b := e.batch[:0]
	for len(e.due) > 0 && e.due[0].at == at {
		b = append(b, e.due.pop())
	}
	e.batch = b
	e.now = at
	e.inBatch = true
	for i := 0; i < len(e.batch); i++ {
		e.batchPos = i
		ent := e.batch[i]
		e.lastAt, e.lastSeq = ent.at, ent.seq
		ev := ent.ev
		if ev.state == evCanceled {
			e.ncanceled--
			e.recycle(ev)
			continue
		}
		e.processed++
		e.npending--
		// Copy the payload out before recycling: the callback may schedule
		// new events, which can reuse this very object.
		fn, fn2, a0, a1, kind := ev.fn, ev.fn2, ev.a0, ev.a1, ev.kind
		ev.state = evFired
		e.recycle(ev)
		if e.costFn != nil {
			e.dispatchCost(kind, fn, fn2, a0, a1)
		} else if fn2 != nil {
			fn2(a0, a1)
		} else {
			fn()
		}
		if e.dig != nil {
			e.dig.fold(at, ent.seq, kind)
		}
		if e.stopped {
			for _, rest := range e.batch[i+1:] {
				e.due.push(rest)
			}
			break
		}
	}
	e.inBatch = false
	e.batch = e.batch[:0]
}

// fireSampler advances the clock to the pending sampling instant and runs
// the hook, stamping it through the cost sampler like any other dispatch.
func (e *Engine) fireSampler() {
	e.now = e.sampleAt
	e.sampleAt += e.sampleEvery
	if e.costFn != nil {
		e.samplerCost()
		return
	}
	e.sampleFn()
}

// dispatchCost is the profiled dispatch path, outlined so the unprofiled
// loop body stays small and branch-predictable. The countdown makes the
// common case (skip) a decrement and compare; only 1-in-costEvery
// dispatches pay two monotonic clock reads.
//
//go:noinline
func (e *Engine) dispatchCost(kind uint8, fn func(), fn2 func(a, b any), a0, a1 any) {
	e.costSkip--
	if e.costSkip > 0 {
		if fn2 != nil {
			fn2(a0, a1)
		} else {
			fn()
		}
		return
	}
	e.costSkip = e.costEvery
	t0 := time.Now()
	if fn2 != nil {
		fn2(a0, a1)
	} else {
		fn()
	}
	e.costFn(kind, int64(time.Since(t0)))
}

// samplerCost stamps a sampling-hook firing through the same countdown as
// event dispatch, so EKSampler shares are sampled at the same rate.
//
//go:noinline
func (e *Engine) samplerCost() {
	e.costSkip--
	if e.costSkip > 0 {
		e.sampleFn()
		return
	}
	e.costSkip = e.costEvery
	t0 := time.Now()
	e.sampleFn()
	e.costFn(EKSampler, int64(time.Since(t0)))
}
