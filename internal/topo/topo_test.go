package topo

import (
	"testing"

	"prioplus/internal/netsim"
	"prioplus/internal/sim"
)

func TestStarBaseRTT(t *testing.T) {
	// The paper's micro-benchmark: 100 Gb/s links with 3 us latency gives
	// a ~12 us RTT through one switch (4 propagation legs).
	cfg := DefaultConfig()
	cfg.LinkDelay = 3 * sim.Microsecond
	n := Star(sim.NewEngine(), 4, cfg)
	rtt := n.BaseRTT(0, 3)
	if rtt < 12*sim.Microsecond || rtt > 13*sim.Microsecond {
		t.Errorf("star base RTT = %v, want ~12us", rtt)
	}
}

func TestStarDelivery(t *testing.T) {
	eng := sim.NewEngine()
	n := Star(eng, 5, DefaultConfig())
	got := 0
	n.Hosts[4].Sink = func(pkt *netsim.Packet) { got++ }
	for src := 0; src < 4; src++ {
		n.Hosts[src].Send(netsim.NewData(int64(src), src, 4, 0, 0, 1000))
	}
	eng.Run()
	if got != 4 {
		t.Errorf("delivered %d, want 4", got)
	}
}

func TestFatTreeShape(t *testing.T) {
	n := FatTree(sim.NewEngine(), 4, DefaultConfig())
	if len(n.Hosts) != 16 {
		t.Errorf("k=4 fat-tree has %d hosts, want 16", len(n.Hosts))
	}
	// 4 cores + 4 pods x (2 edge + 2 agg) = 20 switches.
	if len(n.Switches) != 20 {
		t.Errorf("k=4 fat-tree has %d switches, want 20", len(n.Switches))
	}
}

func TestFatTreeK6Shape(t *testing.T) {
	n := FatTree(sim.NewEngine(), 6, DefaultConfig())
	if len(n.Hosts) != 54 {
		t.Errorf("k=6 fat-tree has %d hosts, want 54", len(n.Hosts))
	}
	if len(n.Switches) != 9+6*6 {
		t.Errorf("k=6 fat-tree has %d switches, want 45", len(n.Switches))
	}
}

func TestFatTreeAllPairsReachable(t *testing.T) {
	eng := sim.NewEngine()
	n := FatTree(eng, 4, DefaultConfig())
	received := make([]int, len(n.Hosts))
	for i, h := range n.Hosts {
		i := i
		h.Sink = func(pkt *netsim.Packet) { received[i]++ }
	}
	sent := 0
	for src := range n.Hosts {
		for dst := range n.Hosts {
			if src == dst {
				continue
			}
			n.Hosts[src].Send(netsim.NewData(int64(src*100+dst), src, dst, 0, 0, 1000))
			sent++
		}
	}
	eng.Run()
	total := 0
	for i, r := range received {
		total += r
		if r != len(n.Hosts)-1 {
			t.Errorf("host %d received %d packets, want %d", i, r, len(n.Hosts)-1)
		}
	}
	if total != sent {
		t.Errorf("delivered %d, want %d", total, sent)
	}
}

func TestFatTreeECMPUsesMultiplePaths(t *testing.T) {
	n := FatTree(sim.NewEngine(), 4, DefaultConfig())
	// An edge switch routing to a host in another pod should have 2
	// equal-cost uplinks.
	edge := n.Switches[4] // first non-core switch is pod0 edge0 (4 cores first)
	foundMulti := false
	for dst := 0; dst < edge.RouteDests(); dst++ {
		if dst >= 4 && len(edge.Route(dst)) > 1 { // host in another pod
			foundMulti = true
		}
	}
	if !foundMulti {
		t.Error("no ECMP route with multiple next-hops on an edge switch")
	}
}

func TestFatTreeIntraPodLocality(t *testing.T) {
	// Hosts under the same edge switch must have a 2-hop (host-edge-host)
	// path: base RTT strictly below cross-pod RTT.
	n := FatTree(sim.NewEngine(), 4, DefaultConfig())
	same := n.BaseRTT(0, 1)   // same edge
	cross := n.BaseRTT(0, 15) // different pod
	if same >= cross {
		t.Errorf("same-edge RTT %v >= cross-pod RTT %v", same, cross)
	}
}

func TestCoflowClosShape(t *testing.T) {
	cfg := DefaultConfig()
	n := CoflowClos(sim.NewEngine(), cfg)
	if len(n.Hosts) != 320 {
		t.Errorf("coflow Clos has %d hosts, want 320", len(n.Hosts))
	}
	// 8 cores + 5 pods x (2 agg + 8 edge) = 58 switches.
	if len(n.Switches) != 58 {
		t.Errorf("coflow Clos has %d switches, want 58", len(n.Switches))
	}
}

func TestCoflowClosCrossPodDelivery(t *testing.T) {
	eng := sim.NewEngine()
	n := CoflowClos(eng, DefaultConfig())
	got := 0
	n.Hosts[300].Sink = func(pkt *netsim.Packet) { got++ }
	n.Hosts[0].Send(netsim.NewData(1, 0, 300, 0, 0, 1000))
	eng.Run()
	if got != 1 {
		t.Errorf("cross-pod delivery failed")
	}
}

func TestSpineLeafShape(t *testing.T) {
	n := SpineLeaf(sim.NewEngine(), 2, 6, 12, DefaultConfig())
	if len(n.Hosts) != 24 {
		t.Errorf("spine-leaf has %d hosts, want 24", len(n.Hosts))
	}
	if len(n.Switches) != 8 {
		t.Errorf("spine-leaf has %d switches, want 8", len(n.Switches))
	}
	// Cross-leaf reachability.
	eng := sim.NewEngine()
	n = SpineLeaf(eng, 2, 6, 12, DefaultConfig())
	got := 0
	n.Hosts[23].Sink = func(pkt *netsim.Packet) { got++ }
	n.Hosts[0].Send(netsim.NewData(1, 0, 23, 0, 0, 1000))
	eng.Run()
	if got != 1 {
		t.Error("cross-leaf delivery failed")
	}
}

func TestBaseRTTSymmetric(t *testing.T) {
	n := FatTree(sim.NewEngine(), 4, DefaultConfig())
	for _, pair := range [][2]int{{0, 1}, {0, 5}, {3, 12}} {
		a := n.BaseRTT(pair[0], pair[1])
		b := n.BaseRTT(pair[1], pair[0])
		if a != b {
			t.Errorf("BaseRTT(%d,%d)=%v != BaseRTT(%d,%d)=%v", pair[0], pair[1], a, pair[1], pair[0], b)
		}
	}
}
