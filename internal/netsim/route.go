package netsim

import "math/bits"

// This file holds the switch's dense route table: a flat []int32 arena of
// ECMP port sets plus one routeEntry per destination host, replacing the
// former map[int][]int32. Host IDs are contiguous 0..N-1, so the per-packet
// route lookup is two array indexes with no map probe; ECMP selection uses
// a precomputed 2^64 reciprocal instead of an integer divide.

// routeEntry locates one destination's ECMP port set inside the switch's
// route arena and carries the reciprocal that replaces the per-packet
// `hash % n` divide.
type routeEntry struct {
	off   int32  // start of the set within the arena
	n     int32  // set size; 0 = no route to this destination
	magic uint64 // ecmpMagic(n); meaningless when n == 0
}

// ecmpMagic returns the 2^64 reciprocal of d used by ecmpMod: ⌈2^64/d⌉
// computed without 128-bit arithmetic. For d == 1 the addition wraps to 0,
// which ecmpMod handles correctly (x % 1 == 0 for every x).
func ecmpMagic(d uint32) uint64 {
	return ^uint64(0)/uint64(d) + 1
}

// ecmpMod returns x % d for any uint32 x, given magic == ecmpMagic(d).
// This is the Lemire–Kaser "fastmod" identity: with m = ⌈2^64/d⌉, the low
// 64 bits of m*x carry the fractional part of x/d scaled by 2^64, and the
// high half of (m*x mod 2^64) * d recovers the remainder exactly — proven
// exact for every 32-bit x and every d in [1, 2^32) ("Faster remainders
// when the divisor is a constant", arXiv:1902.01961). ECMP path selection
// is therefore bit-identical to the former `int(hash) % len(ports)` (the
// int was non-negative, so signed and unsigned remainders agree).
// TestECMPModMatchesModulo pins the identity across boundary hashes.
func ecmpMod(x uint32, magic uint64, d uint32) uint32 {
	hi, _ := bits.Mul64(magic*uint64(x), uint64(d))
	return uint32(hi)
}

// ResetRoutes clears the route table and sizes it for destinations
// 0..ndests-1, keeping the arena's capacity so a rebuild (topo's
// RecomputeRoutes on every fault-plan link event) allocates nothing in
// steady state. Every destination starts with no route; install sets with
// SetRoute.
func (s *Switch) ResetRoutes(ndests int) {
	s.routeArena = s.routeArena[:0]
	if cap(s.routes) < ndests {
		s.routes = make([]routeEntry, ndests)
		return
	}
	s.routes = s.routes[:ndests]
	clear(s.routes)
}

// SetRoute installs ports as the ECMP set for destination host dst, copied
// into the route arena. The table grows to cover dst if needed. Replacing
// an existing set appends a fresh copy and abandons the old arena region;
// full rebuilds should go through ResetRoutes, which reclaims it.
func (s *Switch) SetRoute(dst int, ports []int32) {
	if dst >= len(s.routes) {
		if dst >= cap(s.routes) {
			grown := make([]routeEntry, dst+1)
			copy(grown, s.routes)
			s.routes = grown
		} else {
			old := len(s.routes)
			s.routes = s.routes[:dst+1]
			clear(s.routes[old:])
		}
	}
	if len(ports) == 0 {
		s.routes[dst] = routeEntry{}
		return
	}
	off := int32(len(s.routeArena))
	s.routeArena = append(s.routeArena, ports...)
	s.routes[dst] = routeEntry{
		off:   off,
		n:     int32(len(ports)),
		magic: ecmpMagic(uint32(len(ports))),
	}
}

// ClearRoute removes the route to dst, so forwarding to it becomes a
// no-route drop (or panic, per AllowNoRoute).
func (s *Switch) ClearRoute(dst int) {
	if dst >= 0 && dst < len(s.routes) {
		s.routes[dst] = routeEntry{}
	}
}

// Route returns dst's ECMP port set as a read-only view into the route
// arena (nil when there is no route). Callers must not mutate or retain it
// across a ResetRoutes/SetRoute.
func (s *Switch) Route(dst int) []int32 {
	if dst < 0 || dst >= len(s.routes) {
		return nil
	}
	e := s.routes[dst]
	if e.n == 0 {
		return nil
	}
	return s.routeArena[e.off : e.off+e.n : e.off+e.n]
}

// RouteDests returns the size of the dense destination space (one past the
// highest destination ever installed).
func (s *Switch) RouteDests() int { return len(s.routes) }
