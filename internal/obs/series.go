package obs

import "prioplus/internal/sim"

// Series is one fixed-interval time series: sample i was taken at
// simulated time Start + (i+1)*Interval of its owning SeriesSet. Values are
// appended by SeriesSet.Sample; the slice grows amortized, so a warm series
// samples without allocating.
type Series struct {
	// Name and Unit identify the series ("net/inflight_bytes", "bytes").
	Name string
	Unit string
	// V holds one value per sampling tick, in tick order.
	V []float64
}

// Len returns the number of samples taken.
func (s *Series) Len() int { return len(s.V) }

// Last returns the most recent sample (0 when empty).
func (s *Series) Last() float64 {
	if len(s.V) == 0 {
		return 0
	}
	return s.V[len(s.V)-1]
}

// SeriesSet is a run's time-series sampler: a fixed sampling interval and
// an ordered set of series, each backed by a source function read at every
// tick. Install it via Recorder.Series and harness.Net.Observe, which
// drives Sample from the engine clock (sim.Engine.SetSampler); the set
// itself is engine-agnostic so tests can tick it directly.
//
// Registration order is preserved, making artifact output deterministic.
// Sampling is zero-alloc in steady state: sources are prebuilt closures and
// Append only reallocates on slice growth.
type SeriesSet struct {
	// Interval is the simulated-time spacing between samples.
	Interval sim.Time
	// Start is the simulated time sampling began (set by the harness when
	// it installs the engine hook; samples land at Start+Interval, ...).
	Start sim.Time

	series  []*Series
	sources []func() float64
	ticks   int
}

// NewSeriesSet returns an empty sampler with the given interval; interval
// must be positive.
func NewSeriesSet(interval sim.Time) *SeriesSet {
	if interval <= 0 {
		panic("obs: series interval must be positive")
	}
	return &SeriesSet{Interval: interval}
}

// Add registers a series backed by source, returning it. Sources must be
// cheap, read-only views of simulator state (a counter read, a queue-bytes
// field); they run at every tick.
func (ss *SeriesSet) Add(name, unit string, source func() float64) *Series {
	s := &Series{Name: name, Unit: unit}
	ss.series = append(ss.series, s)
	ss.sources = append(ss.sources, source)
	return s
}

// Reserve pre-sizes every registered column for n total ticks, backed by a
// single shared slab. Without it the columns grow by amortized append —
// correct, but in a long run with a few hundred series the regrown copies
// become megabytes of garbage interleaved with the simulator's packet hot
// path, and the extra GC cycles cost far more than the sampling itself.
// Callers that know the run horizon (every experiment entry point does)
// should reserve right after the sources are registered. Sampling past the
// reservation falls back to append growth.
func (ss *SeriesSet) Reserve(n int) {
	if n <= 0 || len(ss.series) == 0 {
		return
	}
	slab := make([]float64, len(ss.series)*n)
	for i, s := range ss.series {
		if cap(s.V) >= n {
			continue
		}
		col := slab[i*n : i*n : (i+1)*n][:0]
		s.V = append(col, s.V...)
	}
}

// ReserveUntil is Reserve for sampling from Start through end at the set's
// interval.
func (ss *SeriesSet) ReserveUntil(end sim.Time) {
	if end <= ss.Start {
		return
	}
	ss.Reserve(int((end-ss.Start)/ss.Interval) + 1)
}

// Sample takes one sample of every registered series.
func (ss *SeriesSet) Sample() {
	for i, src := range ss.sources {
		s := ss.series[i]
		s.V = append(s.V, src())
	}
	ss.ticks++
}

// Ticks returns the number of samples taken.
func (ss *SeriesSet) Ticks() int { return ss.ticks }

// All returns the registered series in registration order.
func (ss *SeriesSet) All() []*Series { return ss.series }

// TimeAt returns the simulated time of sample i.
func (ss *SeriesSet) TimeAt(i int) sim.Time {
	return ss.Start + sim.Time(i+1)*ss.Interval
}
