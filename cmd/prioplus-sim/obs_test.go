package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"0": 0, "1024": 1024,
		"4k": 4 << 10, "4K": 4 << 10,
		"128m": 128 << 20, "2G": 2 << 30,
	}
	for in, want := range cases {
		got, err := parseBytes(in)
		if err != nil || got != want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "-1", "-4k", "1t", "k"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q) accepted", bad)
		}
	}
}

func TestSanitizeTag(t *testing.T) {
	cases := map[string]string{
		"incast":           "incast",
		"Physical* w/o CC": "Physical--w-o-CC",
		"baseline/Swift":   "baseline-Swift",
		"pp/np=8":          "pp-np-8",
		"a.b_c-D9":         "a.b_c-D9",
	}
	for in, want := range cases {
		if got := sanitizeTag(in); got != want {
			t.Errorf("sanitizeTag(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestObsSinkArtifactNaming: one artifact per recorder, deduped stems, and
// flush writes them where -series pointed.
func TestObsSinkArtifactNaming(t *testing.T) {
	dir := t.TempDir()
	sink := newObsSink(obsOpts{dir: dir}, "fig99", 7)
	if sink == nil {
		t.Fatal("sink disabled despite -series dir")
	}
	sink.recorder("a/b")
	sink.recorder("a/b") // same tag twice: must not clobber
	var out bytes.Buffer
	if err := sink.flush(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig99__a-b__seed7.jsonl", "fig99__a-b__seed7-2.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("artifact %s not written: %v", want, err)
		}
	}
}

func TestObsSinkDisabled(t *testing.T) {
	if s := newObsSink(obsOpts{}, "fig99", 1); s != nil {
		t.Error("sink created with no obs flags set")
	}
}

// TestReportRoundTrip: an artifact written by the sink renders through the
// report path without error and mentions its run and series.
func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sink := newObsSink(obsOpts{dir: dir, hist: true}, "figX", 1)
	rec := sink.recorder("tag")
	rec.Series.Add("net/test_series", "bytes", func() float64 { return 42 })
	for i := 0; i < 5; i++ {
		rec.Series.Sample()
	}
	rec.Hist.FCT.Observe(1000)
	rec.Metrics.Counter("net/things").Add(3)
	var out bytes.Buffer
	if err := sink.flush(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "transport/fct") {
		t.Errorf("-hist summary missing from flush output:\n%s", out.String())
	}

	var rep bytes.Buffer
	path := filepath.Join(dir, "figX__tag__seed1.jsonl")
	if err := reportFile(&rep, path, 40); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`run "tag"`, "net/test_series", "net/things", "transport/fct"} {
		if !strings.Contains(rep.String(), want) {
			t.Errorf("report missing %q:\n%s", want, rep.String())
		}
	}
}
