package transport_test

import (
	"testing"

	"prioplus/internal/cc"
	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
)

func TestAckPrioDefaultHighest(t *testing.T) {
	net, eng := newStar(3)
	var ackPrio = -1
	inner := net.Topo.Hosts[0].Sink
	net.Topo.Hosts[0].Sink = func(pkt *netsim.Packet) {
		if pkt.Type == netsim.Ack {
			ackPrio = pkt.Prio
		}
		inner(pkt)
	}
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 5000, Prio: 0, Algo: swiftFor(net, 0, 2)})
	eng.RunUntil(sim.Millisecond)
	want := net.Topo.Cfg.Queues - 1
	if ackPrio != want {
		t.Errorf("ACK priority = %d, want %d (highest queue, §4.4)", ackPrio, want)
	}
}

func TestAckPrioDataVariant(t *testing.T) {
	// The PrioPlus* ablation: ACKs ride at the data packet's priority.
	net, eng := newStar(3, harness.WithAckPrioData())
	var ackPrio = -1
	inner := net.Topo.Hosts[0].Sink
	net.Topo.Hosts[0].Sink = func(pkt *netsim.Packet) {
		if pkt.Type == netsim.Ack {
			ackPrio = pkt.Prio
		}
		inner(pkt)
	}
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 5000, Prio: 2, Algo: swiftFor(net, 0, 2)})
	eng.RunUntil(sim.Millisecond)
	if ackPrio != 2 {
		t.Errorf("ACK priority = %d, want 2 (data priority)", ackPrio)
	}
}

func TestMinRateFloorKeepsSignalAlive(t *testing.T) {
	// A flow clamped to a tiny window must still emit roughly one packet
	// per MinRateGap (the §3.3 minimum rate), not stall.
	net, eng := newStar(3)
	algo := &fixedWindow{cwndPkts: 0.01} // absurdly small
	var delivered int
	inner := net.Topo.Hosts[2].Sink
	net.Topo.Hosts[2].Sink = func(pkt *netsim.Packet) {
		if pkt.Type == netsim.Data {
			delivered++
		}
		inner(pkt)
	}
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 20, Prio: 0, Algo: algo})
	dur := 4 * sim.Millisecond
	eng.RunUntil(dur)
	// One packet per 80 us over 4 ms: ~50 packets (not ~3, which a
	// cwnd-proportional gap would give).
	if delivered < 30 {
		t.Errorf("delivered %d packets, want ~50 (min-rate floor)", delivered)
	}
}

func TestSRTTResetOnProbeAfterIdle(t *testing.T) {
	net, eng := newStar(3)
	p := &probeAfterStall{}
	s := net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 20, Prio: 0, Algo: p})
	eng.RunUntil(2 * sim.Millisecond)
	if !p.probed {
		t.Fatal("probe never completed")
	}
	// The polluted srtt (artificially seeded below) must have been
	// replaced by the fresh probe sample, not EWMA-blended.
	base := net.Topo.BaseRTT(0, 2)
	if s.SRTT() > base+2*sim.Microsecond {
		t.Errorf("srtt = %v after idle probe, want ~base %v (reset semantics)", s.SRTT(), base)
	}
}

// probeAfterStall sends a little data, stops, then probes; its ack path
// feeds absurd RTTs into srtt first by delaying its own resume.
type probeAfterStall struct {
	drv    cc.Driver
	acks   int
	probed bool
}

func (p *probeAfterStall) Start(drv cc.Driver) { p.drv = drv }
func (p *probeAfterStall) OnAck(fb cc.Feedback) {
	p.acks++
	if p.acks == 5 {
		p.drv.StopSending()
		p.drv.SendProbeAfter(sim.Millisecond)
	}
}
func (p *probeAfterStall) OnProbeAck(fb cc.Feedback) {
	p.probed = true
	p.drv.ResumeSending()
}
func (p *probeAfterStall) OnRTO() {}
func (p *probeAfterStall) CwndBytes() float64 {
	return 8000
}
func (p *probeAfterStall) WantsECT() bool { return false }
func (p *probeAfterStall) Name() string   { return "stall" }

func TestDuplicateDataTolerated(t *testing.T) {
	// Force a retransmission of already-delivered data via an RTO (tiny
	// RTOMin) and verify completion is unaffected.
	eng := sim.NewEngine()
	cfg := topo.DefaultConfig()
	cfg.LinkDelay = 3 * sim.Microsecond
	nw := topo.Star(eng, 3, cfg)
	net := harness.New(nw, 9)
	done := false
	s := net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 200_000, Prio: 0,
		Algo:       swiftFor(net, 0, 2),
		OnComplete: func(sim.Time) { done = true }})
	eng.RunUntil(5 * sim.Millisecond)
	if !done {
		t.Fatal("flow did not complete")
	}
	_ = s
}

func TestPacedFlagSpreadsBurst(t *testing.T) {
	// An unpaced 32-packet window goes out back-to-back; a paced one
	// spreads over the RTT. Compare first-packet..last-packet spans.
	span := func(paced bool) sim.Time {
		net, eng := newStar(3)
		var first, last sim.Time
		seen := 0
		inner := net.Topo.Hosts[2].Sink
		net.Topo.Hosts[2].Sink = func(pkt *netsim.Packet) {
			if pkt.Type == netsim.Data {
				if seen == 0 {
					first = eng.Now()
				}
				seen++
				last = eng.Now()
			}
			inner(pkt)
		}
		net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 32_000, Prio: 0,
			Algo: &fixedWindow{cwndPkts: 32}, Paced: paced})
		eng.RunUntil(200 * sim.Microsecond)
		if seen != 32 {
			t.Fatalf("delivered %d packets, want 32", seen)
		}
		return last - first
	}
	unpaced, paced := span(false), span(true)
	if paced <= unpaced*2 {
		t.Errorf("paced span %v not clearly wider than unpaced %v", paced, unpaced)
	}
}

func TestFlowSpecValidation(t *testing.T) {
	net, _ := newStar(3)
	defer func() {
		if recover() == nil {
			t.Error("zero-size flow did not panic")
		}
	}()
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 0, Prio: 0, Algo: swiftFor(net, 0, 2)})
}
