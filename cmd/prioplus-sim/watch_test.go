package main

import (
	"strings"
	"testing"

	"prioplus/internal/obs/stream"
	"prioplus/internal/runner"
	"prioplus/internal/serve"
)

// TestWatchOnceAgainstLiveServer drives `watch -once` end to end against a
// real -listen server that has zero runs registered: one frame, exit 0,
// no panic. An unreachable address exits 1 immediately under -once.
func TestWatchOnceAgainstLiveServer(t *testing.T) {
	reg := &runner.Registry{}
	srv := stream.NewServer(reg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code := runWatch([]string{"-once", srv.Addr()}); code != 0 {
		t.Errorf("watch -once against empty server exited %d, want 0", code)
	}

	if code := runWatch([]string{"-once", "127.0.0.1:1"}); code != 1 {
		t.Errorf("watch -once against dead address exited %d, want 1", code)
	}
	if code := runWatch([]string{"-once"}); code != 2 {
		t.Errorf("watch -once without ADDR exited %d, want 2", code)
	}
}

// TestWatchRenderJobsLine: a /jobs snapshot adds the jobs/cache line; a
// nil snapshot (server without the endpoint) omits it — the degradation
// path for watching a pre-serve server.
func TestWatchRenderJobsLine(t *testing.T) {
	var st watchState
	jobs := &serve.JobsSnapshot{
		Jobs:   make([]serve.JobSnapshot, 3),
		Counts: serve.JobCounts{Queued: 1, Done: 2},
		Queue:  serve.QueueStats{Depth: 1, Capacity: 64},
		Cache:  serve.CacheStats{Entries: 2, Hits: 1, Misses: 2},
	}
	frame := renderWatch(&st, "http://x", stream.MetricsSnapshot{}, stream.RunsSnapshot{}, jobs)
	for _, want := range []string{
		"jobs    3 total: 1 queued, 0 running, 2 done, 0 failed, 0 canceled",
		"queue 1/64",
		"cache 2 entries, 1 hits / 2 misses",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}

	st = watchState{}
	frame = renderWatch(&st, "http://x", stream.MetricsSnapshot{}, stream.RunsSnapshot{}, nil)
	if strings.Contains(frame, "jobs ") {
		t.Errorf("nil jobs snapshot still rendered a jobs line:\n%s", frame)
	}
}

// TestWatchRenderZeroRuns pins the metrics-only frame: with no runs and
// zeroed snapshots the frame renders the gauges, omits the run table, and
// never divides by a zero poll window.
func TestWatchRenderZeroRuns(t *testing.T) {
	var st watchState
	frame := renderWatch(&st, "http://x", stream.MetricsSnapshot{}, stream.RunsSnapshot{}, nil)
	if strings.Contains(frame, "RUN") {
		t.Errorf("frame has a run table with zero runs:\n%s", frame)
	}
	if !strings.Contains(frame, "0 ev/s") {
		t.Errorf("frame missing zero rate:\n%s", frame)
	}

	// A second poll with the identical wall clock must not record a rate
	// sample (dt would be zero) or render NaN/Inf.
	frame = renderWatch(&st, "http://x", stream.MetricsSnapshot{}, stream.RunsSnapshot{}, nil)
	if len(st.rates) != 0 {
		t.Errorf("rate recorded across a zero-length poll window: %v", st.rates)
	}
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(frame, bad) {
			t.Errorf("frame contains %s:\n%s", bad, frame)
		}
	}
}

// TestWatchRenderCounterReset: a batch whose event counter goes backwards
// (server restarted between polls) skips the negative-rate sample instead
// of underflowing the unsigned delta.
func TestWatchRenderCounterReset(t *testing.T) {
	var st watchState
	m := stream.MetricsSnapshot{WallUnixMS: 1000}
	runs := stream.RunsSnapshot{}
	runs.Batch.Events = 1_000_000
	renderWatch(&st, "http://x", m, runs, nil)

	m.WallUnixMS = 2000
	runs.Batch.Events = 500 // restarted server: counter reset
	frame := renderWatch(&st, "http://x", m, runs, nil)
	if len(st.rates) != 0 {
		t.Errorf("negative delta recorded as a rate: %v", st.rates)
	}
	if !strings.Contains(frame, "0 ev/s") {
		t.Errorf("frame missing zero rate after reset:\n%s", frame)
	}

	// The next well-ordered poll resumes rate math from the reset base.
	m.WallUnixMS = 3000
	runs.Batch.Events = 1_000_500
	renderWatch(&st, "http://x", m, runs, nil)
	if len(st.rates) != 1 || st.rates[0] != 1e6 {
		t.Errorf("rates after recovery = %v, want [1e6]", st.rates)
	}
}
