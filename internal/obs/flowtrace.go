package obs

import (
	"prioplus/internal/sim"
)

// SpanKind identifies one record in a flow's causal timeline. The journey
// kinds come from the fabric and the transport (where was the packet, when,
// and how long did it wait); the decision kinds come from the congestion
// controllers (what did the flow decide, and which sensed delay caused it).
// Together they answer "why did this flow stop sending at t" — the question
// aggregate telemetry cannot.
type SpanKind uint8

// Journey kinds.
const (
	// SpanHop: a traced packet left an egress queue. Dev names the device,
	// Delay is the time the packet waited in that queue, Seq the byte
	// offset, A the queue occupancy (bytes) at dequeue.
	SpanHop SpanKind = iota
	// SpanDeliver: the data packet reached the receiver. Delay is the
	// one-way fabric delay (SentAt to delivery, no noise).
	SpanDeliver
	// SpanAcked: the sender processed the ACK. Delay is the measured RTT
	// (the exact value the CC saw), A the post-decision window in bytes,
	// B the bytes still in flight.
	SpanAcked
	// SpanProbeAcked: the sender processed a probe ACK. Delay is the probe
	// RTT, A the post-decision window in bytes.
	SpanProbeAcked
	// SpanRetx: a segment was retransmitted. A is the segment length.
	SpanRetx
	// SpanRTO: the retransmission timer fired. A is the bytes in flight.
	SpanRTO
	// SpanDrop: the fabric refused a packet of this flow (buffer admission).
	SpanDrop
	// SpanMark: a packet of this flow was ECN-marked in the fabric.
	SpanMark
	// SpanDone: the flow completed. A is its size, B its retransmit count.
	SpanDone
)

// CC decision-audit kinds.
const (
	// SpanDecStart: the controller started. For PrioPlus, A/B carry the
	// channel [D_target, D_limit] in microseconds.
	SpanDecStart SpanKind = iota + 16
	// SpanDecYield: the flow relinquished bandwidth (channel exit). Delay
	// is the sensed delay that crossed D_limit, A the #flow estimate, B the
	// consecutive over-limit count that armed the filter.
	SpanDecYield
	// SpanDecProbe: a probe was scheduled. Delay is the sensed delay that
	// drove the wait, A the computed wait in microseconds.
	SpanDecProbe
	// SpanDecProbeAns: a probe was answered while stopped. Delay is the
	// probed delay, A encodes the outcome (0 re-probe, 1 resume at the
	// linear-start window, 2 resume with one packet).
	SpanDecProbeAns
	// SpanDecResume: the flow re-entered its channel (transmission
	// resumed). Delay is the probed delay, A the restored window in packets.
	SpanDecResume
	// SpanDecCardEst: #flow was re-estimated from delay*LineRate/cwnd.
	// Delay is the sensed delay, A the new estimate, B the rescaled AI step.
	SpanDecCardEst
	// SpanDecCardDecay: the idle countdown halved #flow. A is the new
	// estimate, B the reset countdown.
	SpanDecCardDecay
	// SpanDecLinearStart: a linear-start window increment was applied.
	// Delay is the sensed delay, A the window (packets) after the step.
	SpanDecLinearStart
	// SpanDecAdaptiveInc: the dual-RTT adaptive increase raised the AI
	// step. Delay is the sensed delay, A the new AI step, B the increment.
	SpanDecAdaptiveInc
	// SpanDecAIRestore: the AI step was restored at the end of a dual-RTT
	// period. A is the restored step.
	SpanDecAIRestore
	// SpanDecCut: the wrapped/underlying controller applied a structural
	// decrease (Swift MD, DCTCP alpha cut, TIMELY gradient or THigh
	// decrease, DCQCN CNP cut, HPCC above-eta shrink, any controller's
	// RTO backoff). Delay is the triggering feedback's delay, A the window
	// or rate after the cut, B the cut factor or auxiliary value.
	SpanDecCut
	// SpanDecGrow: a structural increase beyond plain per-ACK additive
	// growth (TIMELY HAI, DCQCN hyper increase). A is the rate or window
	// after, B an auxiliary value.
	SpanDecGrow
)

var spanKindNames = map[SpanKind]string{
	SpanHop:            "hop",
	SpanDeliver:        "deliver",
	SpanAcked:          "acked",
	SpanProbeAcked:     "probe-acked",
	SpanRetx:           "retx",
	SpanRTO:            "rto",
	SpanDrop:           "drop",
	SpanMark:           "mark",
	SpanDone:           "done",
	SpanDecStart:       "start",
	SpanDecYield:       "yield",
	SpanDecProbe:       "probe",
	SpanDecProbeAns:    "probe-ans",
	SpanDecResume:      "resume",
	SpanDecCardEst:     "card-est",
	SpanDecCardDecay:   "card-decay",
	SpanDecLinearStart: "linear-start",
	SpanDecAdaptiveInc: "adaptive-inc",
	SpanDecAIRestore:   "ai-restore",
	SpanDecCut:         "cc-cut",
	SpanDecGrow:        "cc-grow",
}

var spanKindByName = func() map[string]SpanKind {
	m := make(map[string]SpanKind, len(spanKindNames))
	for k, n := range spanKindNames {
		m[n] = k
	}
	return m
}()

// String returns the span kind's artifact label (hop, deliver, yield, ...).
func (k SpanKind) String() string {
	if n, ok := spanKindNames[k]; ok {
		return n
	}
	return "unknown"
}

// SpanKindByName resolves the artifact encoding of a span kind. ok is false
// for names written by a newer encoder.
func SpanKindByName(name string) (SpanKind, bool) {
	k, ok := spanKindByName[name]
	return k, ok
}

// Decision reports whether a kind belongs to the CC decision audit (as
// opposed to the packet journey).
func (k SpanKind) Decision() bool { return k >= SpanDecStart }

// Span is one record in a flow's causal timeline. Field meaning varies by
// Kind (documented on the constants); unused fields are zero.
type Span struct {
	T     sim.Time
	Kind  SpanKind
	Seq   int64
	Delay sim.Time
	Dev   string
	A, B  float64
}

// DefaultMaxSpans bounds one flow's ring: with the default packet sampling
// (every 16th packet's journey) this holds several milliseconds of a
// line-rate flow without wrapping, at ~2 MB per traced flow.
const DefaultMaxSpans = 32768

// DefaultPacketEvery is the journey sampling stride: hop/deliver/acked
// spans are recorded for every Nth data packet of a traced flow (probes and
// retransmissions are always recorded). Decisions are never sampled.
const DefaultPacketEvery = 16

// FlowLog is one sampled flow's bounded span ring. Spans are appended in
// recording order (ACK-time journey spans arrive retroactively stamped with
// their fabric timestamps, so the ring is not globally time-sorted; readers
// sort by T). When the ring is full the oldest span is overwritten and
// Dropped counts the loss.
type FlowLog struct {
	Flow    int64
	Dropped int64 // spans overwritten after the ring filled

	spans []Span
	head  int // next overwrite position once len(spans) == cap
	max   int
}

func newFlowLog(flow int64, maxSpans int) *FlowLog {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &FlowLog{Flow: flow, max: maxSpans}
}

// Add appends one span, overwriting the oldest when the ring is full.
func (l *FlowLog) Add(sp Span) {
	if l == nil {
		return
	}
	if len(l.spans) < l.max {
		l.spans = append(l.spans, sp)
		return
	}
	l.spans[l.head] = sp
	l.head++
	if l.head == len(l.spans) {
		l.head = 0
	}
	l.Dropped++
}

// Len returns the number of spans currently held.
func (l *FlowLog) Len() int { return len(l.spans) }

// Spans calls fn for every held span in recording order (oldest first).
func (l *FlowLog) Spans(fn func(sp Span)) {
	for i := l.head; i < len(l.spans); i++ {
		fn(l.spans[i])
	}
	for i := 0; i < l.head; i++ {
		fn(l.spans[i])
	}
}

// FlowTracer records causal timelines for a deterministic sample of flows.
// Admission is first-come under a MaxFlows cap (flow start order is
// deterministic in the engine-per-run model), optionally filtered to an
// explicit Match list or thinned by a hash stride (Every). The tracer also
// implements Tracer so the harness can chain it in front of the switch
// trace hook: per-flow drop and ECN-mark events of sampled flows become
// journey spans, everything is forwarded to Inner.
//
// Like the rest of the package, a FlowTracer belongs to one run and one
// goroutine. All hot-path hooks are nil-guarded: with no tracer installed
// the packet path costs one branch, and unsampled flows cost a nil FlowLog
// check per event.
type FlowTracer struct {
	// MaxFlows caps how many flows are admitted (<= 0 admits none, so the
	// zero value records nothing).
	MaxFlows int
	// Match, when non-empty, restricts admission to these flow IDs
	// (still subject to MaxFlows).
	Match []int64
	// Every, when > 1, admits only flows whose ID hash falls on the
	// stride — a deterministic 1-in-N sample for big runs.
	Every int
	// MaxSpans bounds each flow's ring (0 = DefaultMaxSpans).
	MaxSpans int
	// PacketEvery samples packet journeys: hop/deliver/acked spans are
	// recorded for every Nth data packet (0 = DefaultPacketEvery, 1 =
	// every packet). Probes, retransmissions, and decisions are always
	// recorded.
	PacketEvery int
	// Inner, when non-nil, receives every trace event after the tracer
	// inspects it (set by Recorder.SwitchTracer so flight recording and
	// full event traces compose with flow tracing).
	Inner Tracer

	logs  map[int64]*FlowLog
	order []int64
}

// NewFlowTracer returns a tracer admitting up to maxFlows flows.
func NewFlowTracer(maxFlows int) *FlowTracer {
	return &FlowTracer{MaxFlows: maxFlows}
}

// traceHash mixes a flow ID for the Every stride (the same 64→32 finalizer
// netsim uses for ECMP, duplicated here to keep obs import-free of netsim).
func traceHash(flow int64) uint32 {
	x := uint64(flow)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return uint32(x)
}

func (t *FlowTracer) wants(flow int64) bool {
	if t.MaxFlows <= 0 || len(t.logs) >= t.MaxFlows {
		return false
	}
	if len(t.Match) > 0 {
		for _, id := range t.Match {
			if id == flow {
				return true
			}
		}
		return false
	}
	if t.Every > 1 && traceHash(flow)%uint32(t.Every) != 0 {
		return false
	}
	return true
}

// Admit returns the flow's log, admitting it if the sampling policy allows
// and the cap has room; nil means the flow is not traced. Call it once per
// flow at sender start — admission order is the deterministic sample.
func (t *FlowTracer) Admit(flow int64) *FlowLog {
	if t == nil {
		return nil
	}
	if fl, ok := t.logs[flow]; ok {
		return fl
	}
	if !t.wants(flow) {
		return nil
	}
	if t.logs == nil {
		t.logs = make(map[int64]*FlowLog)
	}
	fl := newFlowLog(flow, t.MaxSpans)
	t.logs[flow] = fl
	t.order = append(t.order, flow)
	return fl
}

// Log returns the flow's log without admitting it (nil when unsampled).
func (t *FlowTracer) Log(flow int64) *FlowLog {
	if t == nil {
		return nil
	}
	return t.logs[flow]
}

// JourneyStride resolves the effective packet-journey sampling stride.
func (t *FlowTracer) JourneyStride() int64 {
	if t == nil || t.PacketEvery == 1 {
		return 1
	}
	if t.PacketEvery <= 0 {
		return DefaultPacketEvery
	}
	return int64(t.PacketEvery)
}

// Logs returns every admitted flow's log in admission order (deterministic
// for a given run).
func (t *FlowTracer) Logs() []*FlowLog {
	if t == nil {
		return nil
	}
	out := make([]*FlowLog, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, t.logs[id])
	}
	return out
}

// Trace implements Tracer: per-flow drop and mark events of sampled flows
// become journey spans; every event is forwarded to Inner. Installed on
// switches (drop/mark sources) by harness.Net.Observe — not on ports, whose
// per-packet enqueue/dequeue volume is covered by the INT piggyback instead.
func (t *FlowTracer) Trace(ev Event) {
	switch ev.Kind {
	case Drop:
		if fl := t.logs[ev.Flow]; fl != nil {
			fl.Add(Span{T: ev.T, Kind: SpanDrop, Seq: ev.Seq, Dev: ev.Dev, A: float64(ev.Bytes)})
		}
	case Mark:
		if fl := t.logs[ev.Flow]; fl != nil {
			fl.Add(Span{T: ev.T, Kind: SpanMark, Seq: ev.Seq, Dev: ev.Dev, A: float64(ev.QLen)})
		}
	}
	if t.Inner != nil {
		t.Inner.Trace(ev)
	}
}
