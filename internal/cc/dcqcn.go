package cc

import (
	"math"

	"prioplus/internal/netsim"
	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// DCQCNConfig parameterizes DCQCN [Zhu et al., SIGCOMM'15], the ECN-based
// congestion controller deployed for RoCEv2. It is not part of the paper's
// comparison set but is the de-facto RDMA baseline a user of this library
// will want; the paper cites it among the fair-convergence CCs that cannot
// provide prioritization (§7).
type DCQCNConfig struct {
	// G is the EWMA gain for the marking estimate alpha (1/256 in the
	// paper's recommended setting).
	G float64
	// RateAIMbps is the additive-increase step of the standard phase.
	RateAI netsim.Rate
	// RateHAI is the hyper-increase step after several unmarked periods.
	RateHAI netsim.Rate
	// AlphaTimer is the alpha update period (55 us in the paper).
	AlphaTimer sim.Time
	// IncreaseTimer drives rate increases (55 us default here).
	IncreaseTimer sim.Time
	// MinRate floors the sending rate.
	MinRate netsim.Rate
	// LineRate caps the sending rate.
	LineRate netsim.Rate
	// HyperThreshold is the number of consecutive increase periods
	// without marks before hyper increase engages (F = 5).
	HyperThreshold int
}

// DefaultDCQCNConfig returns the paper-recommended parameters for the
// given line rate.
func DefaultDCQCNConfig(lineRate netsim.Rate) DCQCNConfig {
	return DCQCNConfig{
		G:              1.0 / 256,
		RateAI:         lineRate / 20, // reach line rate in ~20 periods
		RateHAI:        lineRate / 4,
		AlphaTimer:     55 * sim.Microsecond,
		IncreaseTimer:  55 * sim.Microsecond,
		MinRate:        lineRate / 1000,
		LineRate:       lineRate,
		HyperThreshold: 5,
	}
}

// DCQCN implements the DCQCN rate controller on top of the window
// transport: the rate is expressed as a window (rate * RTT) and the flow
// should run paced. Timers are emulated from ACK arrival times, which is
// accurate under per-packet ACKs.
type DCQCN struct {
	cfg  DCQCNConfig
	drv  Driver
	dlog DecisionLogger

	targetRate  float64 // Rt, bytes/s
	currentRate float64 // Rc, bytes/s
	alpha       float64

	lastAlphaUpdate sim.Time
	lastIncrease    sim.Time
	lastCut         sim.Time
	sinceMark       int // increase periods without a mark
	markedInPeriod  bool
	srtt            sim.Time
}

// NewDCQCN returns a DCQCN instance.
func NewDCQCN(cfg DCQCNConfig) *DCQCN { return &DCQCN{cfg: cfg, alpha: 1} }

// Name implements Algorithm.
func (d *DCQCN) Name() string { return "dcqcn" }

// WantsECT implements Algorithm.
func (d *DCQCN) WantsECT() bool { return true }

// Start implements Algorithm: DCQCN starts at line rate.
func (d *DCQCN) Start(drv Driver) {
	d.drv = drv
	d.dlog = DecisionLoggerOf(drv)
	d.currentRate = d.cfg.LineRate.BytesPerSec()
	d.targetRate = d.currentRate
	d.srtt = drv.BaseRTT()
}

// OnAck implements Algorithm. A CE-marked ACK stands in for a CNP.
func (d *DCQCN) OnAck(fb Feedback) {
	if fb.Delay > 0 {
		d.srtt = (7*d.srtt + fb.Delay) / 8
	}
	now := fb.Now
	if fb.CE {
		d.markedInPeriod = true
		// Rate cut at most once per alpha period.
		if now-d.lastCut >= d.cfg.AlphaTimer {
			d.targetRate = d.currentRate
			d.currentRate *= 1 - d.alpha/2
			d.sinceMark = 0
			d.lastCut = now
			if d.dlog != nil {
				d.dlog.LogDecision(obs.SpanDecCut, fb.Delay, d.currentRate, d.alpha)
			}
		}
	}
	if now-d.lastAlphaUpdate >= d.cfg.AlphaTimer {
		f := 0.0
		if d.markedInPeriod {
			f = 1
		}
		d.alpha = (1-d.cfg.G)*d.alpha + d.cfg.G*f
		d.markedInPeriod = false
		d.lastAlphaUpdate = now
	}
	if now-d.lastIncrease >= d.cfg.IncreaseTimer {
		d.lastIncrease = now
		if d.markedInPeriod {
			return
		}
		d.sinceMark++
		switch {
		case d.sinceMark < d.cfg.HyperThreshold:
			// Fast recovery: Rc -> (Rc+Rt)/2, target unchanged.
		case d.sinceMark == d.cfg.HyperThreshold:
			d.targetRate += d.cfg.RateAI.BytesPerSec()
		default:
			d.targetRate += d.cfg.RateHAI.BytesPerSec()
			if d.dlog != nil && d.sinceMark == d.cfg.HyperThreshold+1 {
				d.dlog.LogDecision(obs.SpanDecGrow, fb.Delay, d.targetRate, float64(d.sinceMark))
			}
		}
		line := d.cfg.LineRate.BytesPerSec()
		d.targetRate = math.Min(d.targetRate, line)
		d.currentRate = (d.currentRate + d.targetRate) / 2
	}
	d.clampRate()
}

func (d *DCQCN) clampRate() {
	d.currentRate = math.Max(d.currentRate, d.cfg.MinRate.BytesPerSec())
	d.currentRate = math.Min(d.currentRate, d.cfg.LineRate.BytesPerSec())
}

// OnProbeAck implements Algorithm.
func (d *DCQCN) OnProbeAck(fb Feedback) {}

// OnRTO implements Algorithm.
func (d *DCQCN) OnRTO() {
	d.currentRate /= 2
	d.targetRate = d.currentRate
	d.clampRate()
}

// CwndBytes implements Algorithm: the rate expressed as a window over the
// smoothed RTT. Run the flow paced for faithful rate behavior.
func (d *DCQCN) CwndBytes() float64 {
	rtt := d.srtt
	if rtt <= 0 {
		rtt = d.drv.BaseRTT()
	}
	return d.currentRate * rtt.Seconds()
}

// RateBps returns the current rate in bits/s, for tests.
func (d *DCQCN) RateBps() float64 { return d.currentRate * 8 }
