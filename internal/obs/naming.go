package obs

import (
	"strconv"

	"prioplus/internal/sim"
)

// DefaultSeriesInterval is the sampling period for timeline series: fine
// enough to resolve PFC pause episodes (tens of microseconds) while
// keeping a 50 ms run to a few thousand samples per gauge. The CLI's
// -series artifacts and the serve layer's job artifacts both sample at
// this period, so their bytes agree for the same run.
const DefaultSeriesInterval = 10 * sim.Microsecond

// SanitizeTag maps a run tag to a filesystem-safe name: letters, digits,
// dot, underscore, and dash pass through; everything else ('/', '*', '+',
// spaces) becomes '-'.
func SanitizeTag(tag string) string {
	out := make([]byte, len(tag))
	for i := 0; i < len(tag); i++ {
		c := tag[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			out[i] = c
		default:
			out[i] = '-'
		}
	}
	return string(out)
}

// ArtifactStem is the canonical basename for one run's artifacts:
// "<exp>__<sanitized tag>__seed<seed>". Every producer (the CLI's -series
// writer, batch mode, the job server) uses this shape, so stream ids on
// /events and on-disk filenames always correspond.
func ArtifactStem(exp, tag string, seed int64) string {
	return exp + "__" + SanitizeTag(tag) + "__seed" + strconv.FormatInt(seed, 10)
}
