package serve

import (
	"bytes"
	"fmt"
	"io"
	"strconv"

	"prioplus/internal/obs"
	"prioplus/internal/obs/stream"
	"prioplus/internal/runner"
	"prioplus/internal/sim"
)

// jobSink is the serve-side exp.Sink: it hands recorders to the experiment
// being computed and captures their products for the job result. Every
// recorder arms the event digest, so the job's output carries the same
// "# fingerprint" lines the CLI prints with -fingerprint — that is what
// makes server output byte-identical to the CLI and lets the scheduler
// cross-check the manifest. When the spec asked for an artifact the series
// instrument is armed too, lines tee to the hub live, and the captured
// bytes ride back in the result. One jobSink belongs to one compute call;
// no locking needed.
type jobSink struct {
	exp      string
	seed     int64
	artifact bool
	hub      *stream.Hub
	live     *runner.RunState

	runs []jobRun
	seen map[string]int // issued stems, for dedupe
}

type jobRun struct {
	tag string
	rec *obs.Recorder
}

// Recorder implements exp.Sink.
func (s *jobSink) Recorder(tag string) *obs.Recorder {
	rec := obs.NewRecorder()
	rec.Digest = sim.NewDigest()
	if s.artifact {
		rec.Series = obs.NewSeriesSet(obs.DefaultSeriesInterval)
	}
	if s.live != nil {
		rec.Live = &s.live.Live
		s.live.SetPhase(tag)
	}
	s.runs = append(s.runs, jobRun{tag: tag, rec: rec})
	return rec
}

// stem returns a unique artifact basename for one run, matching the CLI's
// naming (obs.ArtifactStem plus a numeric suffix on collision).
func (s *jobSink) stem(tag string) string {
	if s.seen == nil {
		s.seen = map[string]int{}
	}
	base := obs.ArtifactStem(s.exp, tag, s.seed)
	s.seen[base]++
	if n := s.seen[base]; n > 1 {
		base += "-" + strconv.Itoa(n)
	}
	return base
}

// flush finalizes the sink after the experiment returns: per run, write
// the artifact (captured for the result and teed to the hub for /events
// subscribers) and print the fingerprint line to w. The per-run
// artifact-then-fingerprint order matches the CLI sink, keeping output
// bytes identical.
func (s *jobSink) flush(w io.Writer) ([]Artifact, error) {
	var arts []Artifact
	for _, r := range s.runs {
		if s.artifact && r.rec.Series != nil {
			stem := s.stem(r.tag)
			var buf bytes.Buffer
			var ws []io.Writer
			ws = append(ws, &buf)
			var lw *stream.LineWriter
			if s.hub != nil {
				lw = s.hub.ArtifactWriter(stem)
				ws = append(ws, lw)
			}
			err := obs.WriteArtifact(io.MultiWriter(ws...), r.tag, r.rec)
			if lw != nil {
				lw.Close()
			}
			if err != nil {
				return nil, err
			}
			arts = append(arts, Artifact{Stem: stem, Lines: buf.String()})
		}
		if d := r.rec.Digest; d != nil {
			fmt.Fprintf(w, "# fingerprint %s chain=%016x events=%d\n", r.tag, d.Chain, d.Count)
		}
	}
	return arts, nil
}
