package core_test

import (
	"math/rand"
	"testing"
)

// Theorem 4.1 (Appendix C) claims the linear ramp minimizes the potential
// buffer backlog when raising the rate from 0 to line rate in time T with
// detection lag tau. The paper proves it for the aggregate functional
// B = int_a int_t (r(t)-r(a)); numerically that functional is linear in r
// and therefore degenerate in the interior, so these tests verify the two
// claims that actually carry Table 2:
//
//  1. Linear start's backlog is far below exponential and line-rate
//     starts' (the Table 2 ranking).
//  2. The worst-case single-window backlog max_a b(a) — the "maximum
//     extra buffer" column — is minimized by the linear ramp: any ramp
//     reaching line rate in the same time has a window somewhere with at
//     least the linear ramp's backlog.

// windowBacklog computes b(a) = int_{a}^{a+tau} (r(t) - r(a)) dt for a
// discretized rate curve, returning the max over a and the total over a.
func windowBacklog(r []float64, tau int) (maxB, totalB float64) {
	n := len(r) - 1
	for a := 0; a+tau <= n; a++ {
		inner := 0.0
		for t := a; t < a+tau; t++ {
			inner += (r[t]+r[t+1])/2 - r[a]
		}
		if inner > maxB {
			maxB = inner
		}
		totalB += inner
	}
	return maxB, totalB
}

func linearRamp(n int) []float64 {
	r := make([]float64, n+1)
	for i := range r {
		r[i] = float64(i) / float64(n)
	}
	return r
}

func TestTheorem41LinearBeatsAlternatives(t *testing.T) {
	const n = 200
	const tau = 25
	maxLin, totLin := windowBacklog(linearRamp(n), tau)

	// Analytic check: for slope 1/T, b(a) = tau^2/(2T) everywhere.
	want := float64(tau) * float64(tau) / (2 * float64(n))
	if maxLin < want*0.9 || maxLin > want*1.1 {
		t.Errorf("linear max backlog %.4f, want ~tau^2/2T = %.4f", maxLin, want)
	}

	// Exponential (doubling) ramp: worse on both metrics.
	exp := make([]float64, n+1)
	for i := range exp {
		exp[i] = 1.0 / float64(int(1)<<((n-i)/25))
	}
	exp[n] = 1
	maxExp, totExp := windowBacklog(exp, tau)
	if maxExp <= maxLin || totExp <= totLin {
		t.Errorf("exponential backlog (max %.3f total %.3f) not worse than linear (max %.3f total %.3f)",
			maxExp, totExp, maxLin, totLin)
	}

	// Line-rate step: worst.
	step := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		step[i] = 1
	}
	// The "max extra buffer" column of Table 2: ~1 BDP (tau here) for
	// line-rate, ~0.5 BDP for exponential, ~tau/2T of a BDP for linear.
	maxStep, _ := windowBacklog(step, tau)
	if !(maxLin < maxExp && maxExp < maxStep) {
		t.Errorf("max-backlog ordering wrong: linear %.3f, exponential %.3f, line-rate %.3f",
			maxLin, maxExp, maxStep)
	}
	if maxStep < float64(tau)*0.9 {
		t.Errorf("line-rate max backlog %.3f, want ~tau (1 BDP analog)", maxStep)
	}
}

func TestTheorem41LinearMinimizesWorstWindow(t *testing.T) {
	const n = 120
	const tau = 15
	base := linearRamp(n)
	maxLin, _ := windowBacklog(base, tau)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		// Random nonneg-rate curve from 0 to 1: perturb the linear ramp,
		// clamp to [0,1], keep endpoints.
		r := append([]float64(nil), base...)
		for k := 0; k < 3; k++ {
			i := 1 + rng.Intn(n-2)
			j := 1 + rng.Intn(n-2)
			if i > j {
				i, j = j, i
			}
			eps := (rng.Float64() - 0.5) * 0.6
			for m := i; m <= j; m++ {
				r[m] += eps
				if r[m] < 0 {
					r[m] = 0
				}
				if r[m] > 1 {
					r[m] = 1
				}
			}
		}
		if maxP, _ := windowBacklog(r, tau); maxP < maxLin-1e-9 {
			t.Fatalf("trial %d: perturbed ramp's worst window %.6f < linear %.6f", trial, maxP, maxLin)
		}
	}
}
