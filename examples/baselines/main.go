// Baselines tour: every congestion controller in the library shares a
// single 100 Gb/s bottleneck in turn (two flows each), printing steady
// throughput, fairness, and the standing queue it keeps. A quick way to
// see how the delay-based, ECN-based, gradient-based, and uncontrolled
// families differ before layering PrioPlus on top.
//
// Run: go run ./examples/baselines
package main

import (
	"fmt"

	"prioplus/internal/cc"
	"prioplus/internal/core"
	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
)

func main() {
	type entry struct {
		name  string
		algo  func(net *harness.Net, src int) cc.Algorithm
		paced bool
		ecnK  int
	}
	mk := func(f func(base sim.Time, bdp float64) cc.Algorithm) func(*harness.Net, int) cc.Algorithm {
		return func(net *harness.Net, src int) cc.Algorithm {
			base := net.Topo.BaseRTT(src, 2)
			return f(base, net.BDPPackets(src, 2))
		}
	}
	entries := []entry{
		{"swift", mk(func(b sim.Time, bdp float64) cc.Algorithm {
			return cc.NewSwift(cc.DefaultSwiftConfig(b, bdp))
		}), false, 0},
		{"prioplus+swift", mk(func(b sim.Time, bdp float64) cc.Algorithm {
			plan := core.DefaultPlan(b)
			return core.New(cc.NewSwift(cc.DefaultSwiftConfig(b, bdp)), core.DefaultConfig(plan.Channel(1), 8))
		}), false, 0},
		{"ledbat", mk(func(b sim.Time, bdp float64) cc.Algorithm {
			return cc.NewLEDBAT(cc.DefaultLEDBATConfig(b, bdp))
		}), false, 0},
		{"dctcp", mk(func(b sim.Time, bdp float64) cc.Algorithm {
			return cc.NewDCTCP(cc.DefaultDCTCPConfig(bdp))
		}), false, 100_000},
		{"dcqcn", mk(func(b sim.Time, bdp float64) cc.Algorithm {
			return cc.NewDCQCN(cc.DefaultDCQCNConfig(100 * netsim.Gbps))
		}), true, 100_000},
		{"timely", mk(func(b sim.Time, bdp float64) cc.Algorithm {
			return cc.NewTIMELY(cc.DefaultTIMELYConfig(b, 100e9))
		}), true, 0},
		{"hpcc", mk(func(b sim.Time, bdp float64) cc.Algorithm {
			return cc.NewHPCC(cc.DefaultHPCCConfig(bdp))
		}), false, 0},
		{"nocc", mk(func(b sim.Time, bdp float64) cc.Algorithm {
			return cc.NewNoCC()
		}), false, 0},
	}

	fmt.Printf("%-16s %10s %10s %12s\n", "cc", "Gb/s", "fairness", "queue (us)")
	for _, e := range entries {
		eng := sim.NewEngine()
		cfg := topo.DefaultConfig()
		cfg.LinkDelay = 3 * sim.Microsecond
		if e.ecnK > 0 {
			cfg.Buffer.ECNKMin = e.ecnK
			cfg.Buffer.ECNKMax = e.ecnK
		}
		nw := topo.Star(eng, 3, cfg)
		var opts []harness.Option
		if e.name == "hpcc" {
			opts = append(opts, harness.WithINT())
		}
		net := harness.New(nw, 7, opts...)
		for src := 0; src < 2; src++ {
			net.AddFlow(harness.Flow{Src: src, Dst: 2, Size: 1 << 30, Prio: 0,
				Algo: e.algo(net, src), Paced: e.paced})
		}
		rs := net.SampleRates(2, func(p *netsim.Packet) int { return p.Src }, 100*sim.Microsecond, 4*sim.Millisecond)
		var qsum float64
		var qn int
		for i := 0; i < 100; i++ {
			eng.At(2*sim.Millisecond+sim.Time(i)*20*sim.Microsecond, func() {
				qsum += float64(nw.Switches[0].Ports[2].TotalQueuedBytes()) / (100e9 / 8) * 1e6
				qn++
			})
		}
		eng.RunUntil(4 * sim.Millisecond)
		a := rs.Between(2*sim.Millisecond, 4*sim.Millisecond, 0)
		b := rs.Between(2*sim.Millisecond, 4*sim.Millisecond, 1)
		fair := min(a, b) / max(a, b)
		fmt.Printf("%-16s %10.1f %10.2f %12.1f\n", e.name, a+b, fair, qsum/float64(qn))
	}
	fmt.Println("\nfairness = min/max share of the two flows; queue = mean standing bottleneck queue")
}
