// Package runner executes independent simulation runs in parallel. It is
// the batch layer behind `prioplus-sim all`: a worker pool fans tasks —
// one per (experiment, seed) pair — across GOMAXPROCS goroutines.
//
// Parallelism is safe because of the simulator's engine-per-run design:
// every task builds its own sim.Engine, topo.Network, and random sources
// from its seed, so tasks share no mutable state and the hot path needs no
// locking. The pool guarantees:
//
//   - Deterministic results: Run returns results indexed by task position,
//     and each task's output depends only on its own inputs, so the result
//     slice is byte-identical whatever the worker count.
//   - Panic isolation: a panicking task fails only its own result (the
//     panic value and stack land in Result.Err); the rest of the batch
//     completes.
//   - Per-run timeouts: a task that exceeds Options.Timeout is abandoned
//     and reported as timed out. Simulation runs are uninterruptible
//     CPU-bound loops, so the abandoned goroutine finishes (or the process
//     exits) on its own; the worker moves on either way.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Task is one independent unit of work: typically one experiment at one
// seed. Run must be self-contained — it builds its own engine and
// randomness and touches no shared state — or batch determinism is lost.
type Task struct {
	// Name identifies the task in results and error messages
	// (e.g. "fig11/seed=3").
	Name string
	// Run executes the task, returning its rendered output and optional
	// named metrics.
	Run func() (output string, metrics map[string]float64)
}

// Result is the outcome of one task. Exactly one of Output or Err is
// meaningful: Err is non-nil if the task panicked or timed out.
type Result struct {
	// Name and Index echo the task's identity and position in the batch.
	Name  string
	Index int
	// Output is the task's rendered text (empty on failure).
	Output string
	// Metrics are the task's named quantities (nil on failure).
	Metrics map[string]float64
	// Err is non-nil if the task panicked (wrapping the panic value and
	// stack) or timed out (wrapping ErrTimeout).
	Err error
	// Wall is the task's wall-clock duration; for a timed-out task it is
	// the timeout.
	Wall time.Duration
}

// ErrTimeout is wrapped by Result.Err when a run exceeds the pool timeout.
var ErrTimeout = errors.New("run exceeded timeout")

// Options configures a batch.
type Options struct {
	// Workers is the number of concurrent runs; <= 0 means GOMAXPROCS.
	// Workers == 1 executes the batch serially in submission order.
	Workers int
	// Timeout bounds each run's wall-clock time; 0 means no limit.
	Timeout time.Duration
	// OnResult, when non-nil, is called as each task completes (in
	// completion order, not task order — use Result.Index to locate the
	// task). Calls are serialized under an internal mutex, so the callback
	// may touch shared state (a progress line, a log) without locking.
	// It must be fast: it runs on the worker goroutine.
	OnResult func(Result)
}

// Run executes every task and returns one Result per task, in task order,
// regardless of worker count or completion order.
func Run(tasks []Task, opt Options) []Result {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	results := make([]Result, len(tasks))
	var mu sync.Mutex // serializes OnResult
	notify := func(r Result) {
		if opt.OnResult == nil {
			return
		}
		mu.Lock()
		opt.OnResult(r)
		mu.Unlock()
	}
	if workers <= 1 {
		for i := range tasks {
			results[i] = execute(tasks[i], i, opt.Timeout)
			notify(results[i])
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = execute(tasks[i], i, opt.Timeout)
				notify(results[i])
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// execute runs one task with panic capture and an optional deadline. The
// task body runs in its own goroutine so a hung run can be abandoned; the
// done channel is buffered so an abandoned run's final send never blocks.
func execute(t Task, i int, timeout time.Duration) Result {
	start := time.Now()
	done := make(chan Result, 1)
	go func() {
		res := Result{Name: t.Name, Index: i}
		defer func() {
			if r := recover(); r != nil {
				res.Output, res.Metrics = "", nil
				res.Err = fmt.Errorf("run %q panicked: %v", t.Name, r)
			}
			res.Wall = time.Since(start)
			done <- res
		}()
		res.Output, res.Metrics = t.Run()
	}()
	if timeout <= 0 {
		return <-done
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-done:
		return res
	case <-timer.C:
		return Result{
			Name:  t.Name,
			Index: i,
			Err:   fmt.Errorf("run %q: %w after %v", t.Name, ErrTimeout, timeout),
			Wall:  timeout,
		}
	}
}
