package netsim

import (
	"testing"

	"prioplus/internal/sim"
)

func TestPacketTypeString(t *testing.T) {
	cases := map[PacketType]string{
		Data: "data", Ack: "ack", Probe: "probe", ProbeAck: "probeack", PacketType(9): "unknown",
	}
	for pt, want := range cases {
		if got := pt.String(); got != want {
			t.Errorf("PacketType(%d).String() = %q, want %q", pt, got, want)
		}
	}
}

func TestECNPerVPrioThresholds(t *testing.T) {
	eng := sim.NewEngine()
	cfg := lossyConfig()
	cfg.ECNKByVPrio = []int{2000, 20_000} // vprio 0 marks early, vprio 1 late
	_, hosts := star(eng, 3, 10*Gbps, 0, 1, cfg)
	marked := map[int16]int{}
	total := map[int16]int{}
	hosts[2].Sink = func(pkt *Packet) {
		total[pkt.VPrio]++
		if pkt.CE {
			marked[pkt.VPrio]++
		}
	}
	for i := 0; i < 10; i++ {
		for v := int16(0); v <= 1; v++ {
			d := NewData(int64(v)+1, int(v), 2, 0, int64(i)*1000, 1000)
			d.ECT = true
			d.VPrio = v
			hosts[v].Send(d)
		}
	}
	eng.Run()
	if marked[0] == 0 {
		t.Error("low vprio never marked despite queue above its threshold")
	}
	if marked[1] != 0 {
		t.Errorf("high vprio marked %d times below its threshold", marked[1])
	}
}

func TestPFCHeadroomExhaustionDrops(t *testing.T) {
	// With near-zero headroom, in-flight data after a pause must be
	// dropped: lossless operation genuinely requires the headroom.
	eng := sim.NewEngine()
	cfg := DefaultBufferConfig()
	cfg.TotalBytes = 32 * 1048
	cfg.LosslessPrios = 1
	cfg.HeadroomBytes = 1048 // one packet of headroom: not enough
	cfg.PFCAlpha = 0.03
	sw, hosts := star(eng, 3, 100*Gbps, 2*sim.Microsecond, 1, cfg)
	hosts[2].Sink = func(*Packet) {}
	for i := 0; i < 200; i++ {
		hosts[0].Send(NewData(1, 0, 2, 0, int64(i)*1000, 1000))
		hosts[1].Send(NewData(2, 1, 2, 0, int64(i)*1000, 1000))
	}
	eng.Run()
	if sw.Drops() == 0 {
		t.Error("no drops despite exhausted headroom on a long line")
	}
}

func TestPauseResumeTrafficContinues(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultBufferConfig()
	cfg.TotalBytes = 48 * 1048
	cfg.LosslessPrios = 1
	cfg.HeadroomBytes = 16 * 1048
	cfg.PFCAlpha = 0.1
	sw, hosts := star(eng, 3, 10*Gbps, 100*sim.Nanosecond, 1, cfg)
	got := 0
	hosts[2].Sink = func(*Packet) { got++ }
	const n = 300
	for i := 0; i < n; i++ {
		hosts[0].Send(NewData(1, 0, 2, 0, int64(i)*1000, 1000))
		hosts[1].Send(NewData(2, 1, 2, 0, int64(i)*1000, 1000))
	}
	eng.Run()
	if got != 2*n {
		t.Fatalf("delivered %d/%d under pause/resume cycling", got, 2*n)
	}
	if sw.PausesSent() < 2 {
		t.Errorf("expected repeated pause/resume cycles, got %d transitions", sw.PausesSent())
	}
	// All pauses must have been released: sender NICs unpaused at the end.
	if hosts[0].NIC.Paused(0) || hosts[1].NIC.Paused(0) {
		t.Error("sender NIC left paused after the buffer drained")
	}
}

func TestINTOnlyOnECTData(t *testing.T) {
	eng := sim.NewEngine()
	_, hosts := star(eng, 3, 10*Gbps, 0, 1, lossyConfig())
	var withINT, withoutINT int
	hosts[2].Sink = func(pkt *Packet) {
		if len(pkt.INT) > 0 {
			withINT++
		} else {
			withoutINT++
		}
	}
	// Enable INT on every port.
	for _, h := range hosts {
		h.NIC.INTEnabled = true
	}
	ect := NewData(1, 0, 2, 0, 0, 1000)
	ect.ECT = true
	hosts[0].Send(ect)
	hosts[0].Send(NewData(2, 0, 2, 0, 0, 1000)) // not ECT
	eng.Run()
	if withINT != 1 || withoutINT != 1 {
		t.Errorf("INT stamped on %d packets, absent on %d; want 1/1", withINT, withoutINT)
	}
}

func TestINTRecordsPerHop(t *testing.T) {
	eng := sim.NewEngine()
	sw, hosts := star(eng, 3, 10*Gbps, 0, 1, lossyConfig())
	_ = sw
	for _, h := range hosts {
		h.NIC.INTEnabled = true
	}
	for _, p := range sw.Ports {
		p.INTEnabled = true
	}
	var hops int
	hosts[2].Sink = func(pkt *Packet) { hops = len(pkt.INT) }
	d := NewData(1, 0, 2, 0, 0, 1000)
	d.ECT = true
	hosts[0].Send(d)
	eng.Run()
	// NIC + switch egress = 2 stamps.
	if hops != 2 {
		t.Errorf("INT records = %d, want 2 (one per hop)", hops)
	}
}

func TestPortClampsPriority(t *testing.T) {
	eng := sim.NewEngine()
	_, hosts := star(eng, 3, 10*Gbps, 0, 2, lossyConfig())
	got := 0
	hosts[2].Sink = func(pkt *Packet) { got++ }
	// Priority far beyond the queue count must not panic.
	hosts[0].Send(NewData(1, 0, 2, 99, 0, 1000))
	hosts[0].Send(NewData(2, 0, 2, -3, 0, 1000))
	eng.Run()
	if got != 2 {
		t.Errorf("delivered %d, want 2 (clamped priorities)", got)
	}
}

func TestAckEchoFields(t *testing.T) {
	data := NewData(7, 1, 2, 0, 5000, 1000)
	data.SentAt = 42 * sim.Microsecond
	data.CE = true
	ack := NewAck(data, 3, 6000)
	if ack.Src != 2 || ack.Dst != 1 {
		t.Error("ACK addressing not reversed")
	}
	if ack.SentAt != data.SentAt {
		t.Error("ACK does not echo the data timestamp")
	}
	if !ack.CE {
		t.Error("ACK does not echo CE")
	}
	if ack.Seq != 5000 || ack.AckSeq != 6000 {
		t.Error("ACK sequence fields wrong")
	}
	if ack.Prio != 3 {
		t.Error("ACK priority not applied")
	}
}
