package runner

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPoolRunsTasks: submitted tasks execute and deliver results through
// the done callback.
func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(2, 4, 0)
	var mu sync.Mutex
	got := map[string]string{}
	var wg sync.WaitGroup
	for _, name := range []string{"a", "b", "c"} {
		name := name
		wg.Add(1)
		ok := p.TrySubmit(Task{Name: name, Run: func() (string, map[string]float64) {
			return "out-" + name, nil
		}}, func(r Result) {
			mu.Lock()
			got[r.Name] = r.Output
			mu.Unlock()
			wg.Done()
		})
		if !ok {
			t.Fatalf("submit %s refused", name)
		}
	}
	wg.Wait()
	p.Close()
	for _, name := range []string{"a", "b", "c"} {
		if got[name] != "out-"+name {
			t.Errorf("task %s output %q", name, got[name])
		}
	}
}

// TestPoolPanicIsolation: a panicking task fails only itself; the pool
// keeps serving.
func TestPoolPanicIsolation(t *testing.T) {
	p := NewPool(1, 2, 0)
	defer p.Close()
	results := make(chan Result, 2)
	p.TrySubmit(Task{Name: "boom", Run: func() (string, map[string]float64) {
		panic("kaboom")
	}}, func(r Result) { results <- r })
	p.TrySubmit(Task{Name: "fine", Run: func() (string, map[string]float64) {
		return "ok", nil
	}}, func(r Result) { results <- r })

	byName := map[string]Result{}
	for i := 0; i < 2; i++ {
		r := <-results
		byName[r.Name] = r
	}
	if r := byName["boom"]; r.Err == nil || !strings.Contains(r.Err.Error(), "kaboom") {
		t.Errorf("panicking task result: %+v", r)
	}
	if r := byName["fine"]; r.Err != nil || r.Output != "ok" {
		t.Errorf("task after panic: %+v", r)
	}
}

// TestPoolBackpressure: with the single worker blocked and the one queue
// slot filled, further submissions are refused, then accepted again after
// the drain.
func TestPoolBackpressure(t *testing.T) {
	gate := make(chan struct{})
	p := NewPool(1, 1, 0)
	running := make(chan struct{})
	done := make(chan Result, 2)
	blockTask := func(name string) Task {
		return Task{Name: name, Run: func() (string, map[string]float64) {
			if name == "first" {
				close(running)
			}
			<-gate
			return name, nil
		}}
	}
	if !p.TrySubmit(blockTask("first"), func(r Result) { done <- r }) {
		t.Fatal("first submit refused")
	}
	<-running // worker occupied, queue empty
	if !p.TrySubmit(blockTask("second"), func(r Result) { done <- r }) {
		t.Fatal("second submit refused with an empty queue slot")
	}
	if p.TrySubmit(blockTask("third"), nil) {
		t.Fatal("third submit accepted with a full queue")
	}
	close(gate)
	<-done
	<-done
	if !p.TrySubmit(Task{Name: "after", Run: func() (string, map[string]float64) { return "", nil }}, nil) {
		t.Error("submit after drain refused")
	}
	p.Close()
}

// TestPoolTimeout: a task exceeding the pool timeout is abandoned and
// reported with ErrTimeout.
func TestPoolTimeout(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	p := NewPool(1, 1, 10*time.Millisecond)
	defer p.Close()
	done := make(chan Result, 1)
	p.TrySubmit(Task{Name: "hang", Run: func() (string, map[string]float64) {
		<-gate
		return "", nil
	}}, func(r Result) { done <- r })
	r := <-done
	if !errors.Is(r.Err, ErrTimeout) {
		t.Errorf("hung task err = %v, want ErrTimeout", r.Err)
	}
}

// TestPoolClose: Close drains queued work, waits for it, and refuses
// later submissions.
func TestPoolClose(t *testing.T) {
	p := NewPool(1, 4, 0)
	var ran int
	var mu sync.Mutex
	for i := 0; i < 3; i++ {
		p.TrySubmit(Task{Name: "t", Run: func() (string, map[string]float64) {
			mu.Lock()
			ran++
			mu.Unlock()
			return "", nil
		}}, nil)
	}
	p.Close()
	mu.Lock()
	if ran != 3 {
		t.Errorf("%d tasks ran before Close returned, want 3", ran)
	}
	mu.Unlock()
	if p.TrySubmit(Task{Name: "late", Run: func() (string, map[string]float64) { return "", nil }}, nil) {
		t.Error("submit after Close accepted")
	}
	p.Close() // idempotent
}
