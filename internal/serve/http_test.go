package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"prioplus/internal/obs/stream"
	"prioplus/internal/runner"
)

// startTestServer stands up the full stack: registry, streaming server,
// scheduler, and the job API mounted on one listener.
func startTestServer(t *testing.T, cfg Config) (base string, s *Scheduler) {
	t.Helper()
	reg := &runner.Registry{}
	srv := stream.NewServer(reg)
	cfg.Registry = reg
	cfg.Hub = srv.Hub
	s = New(cfg)
	NewAPI(s).Mount(srv)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); srv.Close() })
	return "http://" + srv.Addr(), s
}

func httpJSON(t *testing.T, method, url string, body []byte, out any) (code int) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPJobLifecycle drives the full API over a real listener: submit a
// registered experiment, poll to done, fetch the result both as JSON and
// as raw text, resubmit for a cache hit with the same fingerprint, and
// confirm /runs shows the computed job.
func TestHTTPJobLifecycle(t *testing.T) {
	base, _ := startTestServer(t, Config{Workers: 2, QueueDepth: 8})

	// /experiments lists the registry, fig2 included.
	var exps struct {
		Experiments []ExperimentInfo `json:"experiments"`
	}
	if code := httpJSON(t, "GET", base+"/experiments", nil, &exps); code != 200 {
		t.Fatalf("GET /experiments: %d", code)
	}
	found := false
	for _, e := range exps.Experiments {
		if e.ID == "fig2" {
			found = true
			if e.Defaults.Seed != 1 {
				t.Errorf("fig2 defaults %+v, want seed 1", e.Defaults)
			}
		}
	}
	if !found {
		t.Fatal("/experiments does not list fig2")
	}

	// Submit and poll.
	var snap JobSnapshot
	code := httpJSON(t, "POST", base+"/jobs", []byte(`{"experiment": "fig2", "params": {"seed": 1}}`), &snap)
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for snap.Status != JobDone && snap.Status != JobFailed && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		if code := httpJSON(t, "GET", base+"/jobs/"+snap.ID, nil, &snap); code != 200 {
			t.Fatalf("GET /jobs/%s: %d", snap.ID, code)
		}
	}
	if snap.Status != JobDone || snap.Cache != "miss" || snap.FP == "" {
		t.Fatalf("job end state %+v", snap)
	}

	// JSON result and raw text agree.
	var res JobResult
	if code := httpJSON(t, "GET", base+"/jobs/"+snap.ID+"/result", nil, &res); code != 200 {
		t.Fatalf("GET result: %d", code)
	}
	resp, err := http.Get(base + "/jobs/" + snap.ID + "/result?format=text")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(raw) != res.Output {
		t.Errorf("format=text (%d) differs from JSON output", resp.StatusCode)
	}
	if OutputFingerprint(res.Output) != snap.FP {
		t.Error("output does not hash to the reported fp")
	}

	// Identical resubmit: immediate cache hit, same fp.
	var snap2 JobSnapshot
	if code := httpJSON(t, "POST", base+"/jobs", []byte(`{"experiment": "fig2", "params": {"seed": 1}}`), &snap2); code != http.StatusAccepted {
		t.Fatalf("re-POST /jobs: %d", code)
	}
	if snap2.Status != JobDone || snap2.Cache != "hit" || snap2.FP != snap.FP {
		t.Errorf("resubmit %+v, want immediate hit with fp %s", snap2, snap.FP)
	}

	// /jobs table sees both; /runs saw one computation.
	var table JobsSnapshot
	httpJSON(t, "GET", base+"/jobs", nil, &table)
	if len(table.Jobs) != 2 || table.Cache.Hits != 1 || table.Cache.Misses != 1 {
		t.Errorf("jobs table %+v, want 2 jobs, 1 hit, 1 miss", table)
	}
	var runs stream.RunsSnapshot
	httpJSON(t, "GET", base+"/runs", nil, &runs)
	if len(runs.Runs) != 1 || runs.Runs[0].Experiment != "fig2" {
		t.Errorf("/runs %+v, want the one computed fig2 job", runs.Runs)
	}
}

// TestHTTPErrors pins the error contract: 400 for bad specs, 404 for
// unknown jobs, 409 for results of unfinished jobs and bad cancels.
func TestHTTPErrors(t *testing.T) {
	base, _ := startTestServer(t, Config{Workers: 1})

	var e struct {
		Error string `json:"error"`
	}
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/jobs", `{"experiment": "fig99"}`, 400},
		{"POST", "/jobs", `{"experiment": "fig2", "params": {"sede": 1}}`, 400},
		{"POST", "/jobs", `{"experiment": "fig2", "bogus": true}`, 400},
		{"POST", "/jobs", `not json`, 400},
		{"GET", "/jobs/j999", "", 404},
		{"GET", "/jobs/j999/result", "", 404},
		{"DELETE", "/jobs/j999", "", 404},
		{"GET", "/jobs/j1/bogus", "", 404},
		{"PUT", "/jobs", "", 405},
	} {
		e.Error = ""
		code := httpJSON(t, tc.method, base+tc.path, []byte(tc.body), &e)
		if code != tc.want || e.Error == "" {
			t.Errorf("%s %s: code=%d error=%q, want %d with a JSON error", tc.method, tc.path, code, e.Error, tc.want)
		}
	}
}

// TestHTTPArtifactJob: a job submitted with artifact=true returns the
// captured artifact lines in its result, under the canonical stem.
func TestHTTPArtifactJob(t *testing.T) {
	base, _ := startTestServer(t, Config{Workers: 1})
	var snap JobSnapshot
	code := httpJSON(t, "POST", base+"/jobs", []byte(`{"experiment": "testblock", "params": {"seed": 400}, "artifact": true}`), &snap)
	if code != http.StatusAccepted {
		t.Fatalf("POST: %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for snap.Status != JobDone && snap.Status != JobFailed && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		httpJSON(t, "GET", base+"/jobs/"+snap.ID, nil, &snap)
	}
	if snap.Status != JobDone {
		t.Fatalf("artifact job: %+v", snap)
	}
	var res JobResult
	httpJSON(t, "GET", base+"/jobs/"+snap.ID+"/result", nil, &res)
	if len(res.Artifacts) != 1 {
		t.Fatalf("artifact count %d, want 1", len(res.Artifacts))
	}
	a := res.Artifacts[0]
	if want := fmt.Sprintf("testblock__t__seed%d", 400); a.Stem != want {
		t.Errorf("artifact stem %q, want %q", a.Stem, want)
	}
	if a.Lines == "" {
		t.Error("artifact has no lines")
	}
}
