// Incast: 120 same-priority PrioPlus flows start simultaneously into one
// receiver (the paper's Fig 10b stress test). Delay-based flow-cardinality
// estimation (§4.3.1) scales every flow's aggressiveness by the estimated
// flow count, keeping the fabric delay pinned near D_target instead of
// oscillating past D_limit.
//
// Run: go run ./examples/incast
package main

import (
	"fmt"
	"math/rand"

	"prioplus/internal/cc"
	"prioplus/internal/core"
	"prioplus/internal/harness"
	"prioplus/internal/noise"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
)

func main() {
	const n = 120
	eng := sim.NewEngine()
	cfg := topo.DefaultConfig()
	cfg.LinkDelay = 3 * sim.Microsecond
	nw := topo.Star(eng, n+1, cfg)
	nm := noise.NewLongTail(rand.New(rand.NewSource(7)), 1)
	net := harness.New(nw, 7, harness.WithNoise(nm.Sample))

	recv := n
	base := nw.BaseRTT(0, recv)
	ch := core.DefaultPlan(base).Channel(4) // D_target = base + 20 us

	flows := make([]*core.PrioPlus, n)
	for i := 0; i < n; i++ {
		swift := cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(i, recv)))
		flows[i] = core.New(swift, core.DefaultConfig(ch, 8))
		net.AddFlow(harness.Flow{Src: i, Dst: recv, Size: 1 << 30, Prio: 0, Algo: flows[i]})
	}

	fmt.Printf("%d flows, channel [%v, %v]\n\n   time    queue delay   max #flow estimate\n", n, ch.Target, ch.Limit)
	for i := 1; i <= 30; i++ {
		eng.At(sim.Time(i)*100*sim.Microsecond, func() {
			q := nw.Switches[0].Ports[recv].TotalQueuedBytes()
			delay := base + sim.Time(float64(q)/(100e9/8)*1e12)
			maxEst := 0.0
			for _, f := range flows {
				if f.FlowEstimate() > maxEst {
					maxEst = f.FlowEstimate()
				}
			}
			fmt.Printf("%7.1f ms %10.1f us %12.0f\n", eng.Now().Millis(), delay.Micros(), maxEst)
		})
	}
	eng.RunUntil(3100 * sim.Microsecond)
	fmt.Printf("\ntarget %v: the delay settles near it despite %dx oversubscription\n", ch.Target, n)
}
