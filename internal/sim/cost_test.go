package sim

import "testing"

// TestCostSamplerStride verifies the 1-in-N countdown: with stride k, every
// k-th dispatched callback (sampler firings included) produces exactly one
// stamp.
func TestCostSamplerStride(t *testing.T) {
	e := NewEngine()
	var stamps int
	e.SetCostSampler(4, func(kind uint8, nanos int64) {
		stamps++
		if nanos < 0 {
			t.Fatalf("negative cost stamp: %d", nanos)
		}
	})
	const n = 40
	for i := 0; i < n; i++ {
		e.Post(Time(i), func() {})
	}
	e.Run()
	if stamps != n/4 {
		t.Fatalf("stamps = %d, want %d", stamps, n/4)
	}
}

// TestCostSamplerKinds verifies that kind tags set at scheduling time reach
// the hook: every dispatch path (Post2K, AtK, PostAtSeqK, sampler firing,
// untagged Post) reports its tag.
func TestCostSamplerKinds(t *testing.T) {
	e := NewEngine()
	var got []uint8
	e.SetCostSampler(1, func(kind uint8, nanos int64) { got = append(got, kind) })

	e.Post2K(1, func(a, b any) {}, nil, nil, EKDeliverHost)
	e.AtK(2, func() {}, EKRTO)
	seq := e.ReserveSeq()
	e.PostAtSeqK(3, func() {}, seq, EKTransmit)
	e.Post(4, func() {}) // untagged → EKOther
	e.SetSampler(5, func() {})
	e.RunUntil(5)

	want := []uint8{EKDeliverHost, EKRTO, EKTransmit, EKOther, EKSampler}
	if len(got) != len(want) {
		t.Fatalf("got %d stamps (%v), want %d", len(got), got, len(want))
	}
	for i, k := range want {
		if got[i] != k {
			t.Fatalf("stamp %d kind = %s, want %s", i, EventKindName(got[i]), EventKindName(k))
		}
	}
}

// TestCostSamplerZeroAllocDisabled pins the obs-off contract: with the
// cost sampler compiled in but not installed, the schedule/dispatch cycle
// performs zero heap allocations.
func TestCostSamplerZeroAllocDisabled(t *testing.T) {
	e := NewEngine()
	fn2 := func(a, b any) {}
	// Warm the free list.
	for i := 0; i < 64; i++ {
		e.Post2K(Time(i), fn2, nil, nil, EKTransmit)
	}
	e.Run()
	if avg := testing.AllocsPerRun(200, func() {
		e.Post2K(1, fn2, nil, nil, EKTransmit)
		e.Run()
	}); avg != 0 {
		t.Fatalf("Post2K+Run allocates %.1f times per op with cost sampling off", avg)
	}
}

// TestCostSamplerZeroAllocEnabled pins that the stamping path itself does
// not allocate either: time.Now/time.Since and the hook invocation stay on
// the stack (the hook here only sums into captured locals).
func TestCostSamplerZeroAllocEnabled(t *testing.T) {
	e := NewEngine()
	var n, ns int64
	e.SetCostSampler(2, func(kind uint8, nanos int64) { n++; ns += nanos })
	fn2 := func(a, b any) {}
	for i := 0; i < 64; i++ {
		e.Post2K(Time(i), fn2, nil, nil, EKTransmit)
	}
	e.Run()
	if avg := testing.AllocsPerRun(200, func() {
		e.Post2K(1, fn2, nil, nil, EKTransmit)
		e.Post2K(1, fn2, nil, nil, EKDeliverHost)
		e.Run()
	}); avg != 0 {
		t.Fatalf("profiled dispatch allocates %.1f times per op", avg)
	}
	if n == 0 {
		t.Fatal("cost hook never fired")
	}
}

// TestCostSamplerRemove verifies nil/zero disables the hook.
func TestCostSamplerRemove(t *testing.T) {
	e := NewEngine()
	fired := false
	e.SetCostSampler(1, func(uint8, int64) { fired = true })
	e.SetCostSampler(0, nil)
	e.Post(1, func() {})
	e.Run()
	if fired {
		t.Fatal("cost hook fired after removal")
	}
}

// TestEventKindName covers the stable names and the out-of-range fallback.
func TestEventKindName(t *testing.T) {
	cases := map[uint8]string{
		EKOther:         "other",
		EKTransmit:      "transmit",
		EKDeliverSwitch: "deliver_switch",
		EKDeliverHost:   "deliver_host",
		EKPause:         "pause",
		EKRTO:           "rto",
		EKSampler:       "sampler",
		EKFault:         "fault",
		255:             "other",
	}
	for k, want := range cases {
		if got := EventKindName(k); got != want {
			t.Errorf("EventKindName(%d) = %q, want %q", k, got, want)
		}
	}
}

// TestTotalEventsLogicalBasis verifies that reserved-but-never-filed seqs
// count as (elided) logical events while filed ones are not double-counted:
// logical = dispatched + reserved − filed.
func TestTotalEventsLogicalBasis(t *testing.T) {
	e := NewEngine()
	p0, l0 := TotalProcessed(), TotalEvents()

	// Two plain events, one reserved seq that is filed (and dispatches),
	// one reserved seq that never is (elided).
	e.Post(1, func() {})
	e.Post(2, func() {})
	filed := e.ReserveSeq()
	e.PostAtSeq(3, func() {}, filed)
	e.ReserveSeq() // elided
	e.RunUntil(10)

	if d := TotalProcessed() - p0; d != 3 {
		t.Fatalf("dispatched delta = %d, want 3", d)
	}
	if d := TotalEvents() - l0; d != 4 {
		t.Fatalf("logical delta = %d, want 4 (3 dispatched + 1 elided)", d)
	}
}

// TestTotalEventsCrossRunFile verifies the signed accounting: a seq
// reserved in one RunUntil and filed in a later one is counted exactly
// once overall.
func TestTotalEventsCrossRunFile(t *testing.T) {
	e := NewEngine()
	l0 := TotalEvents()
	var seq uint64
	e.Post(1, func() { seq = e.ReserveSeq() })
	e.RunUntil(5) // run A: 1 dispatched + 1 reserved → +2
	e.PostAtSeq(8, func() {}, seq)
	e.RunUntil(10) // run B: 1 dispatched + 1 filed → +0... net +1
	if d := TotalEvents() - l0; d != 2 {
		t.Fatalf("logical delta = %d, want 2 (each event counted once)", d)
	}
}
