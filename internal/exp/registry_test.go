package exp

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
)

// TestRegistryComplete: the registry holds the full 27-experiment suite,
// lookups resolve every listed id, and ids are unique (Register would have
// panicked otherwise, but the count pins accidental deletions too).
func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 27 {
		t.Fatalf("registry has %d experiments, want 27: %v", len(ids), ids)
	}
	for _, id := range ids {
		sp, ok := Lookup(id)
		if !ok {
			t.Fatalf("IDs() lists %q but Lookup misses it", id)
		}
		if sp.ID != id || sp.Describe == "" || sp.Run == nil {
			t.Errorf("spec %q incomplete: id=%q describe=%q run-nil=%v", id, sp.ID, sp.Describe, sp.Run == nil)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup accepted an unknown id")
	}
	// The first and last ids pin suite order (registration order).
	if ids[0] != "fig2" || ids[len(ids)-1] != "faultsweep" {
		t.Errorf("suite order changed: first=%q last=%q", ids[0], ids[len(ids)-1])
	}
}

// TestSpecDefaultsRoundTrip: every spec's default params survive a JSON
// round trip — the serializability contract the job server relies on.
func TestSpecDefaultsRoundTrip(t *testing.T) {
	for _, sp := range Specs() {
		enc, err := json.Marshal(sp.Defaults)
		if err != nil {
			t.Fatalf("%s: marshal defaults: %v", sp.ID, err)
		}
		got, err := DecodeParams(enc, RunParams{})
		if err != nil {
			t.Fatalf("%s: decode own defaults: %v", sp.ID, err)
		}
		if got != sp.Defaults {
			t.Errorf("%s: defaults round trip %+v -> %+v", sp.ID, sp.Defaults, got)
		}
	}
}

// TestCanonicalInvariance: the canonical form (and therefore the cache
// key) is identical whether params arrive with fields reordered, defaults
// spelled out, or omitted entirely.
func TestCanonicalInvariance(t *testing.T) {
	base := RunParams{Seed: 1}
	variants := []string{
		`{"seed": 1}`,
		`{"seed": 1, "full": false, "series": false, "perturb": 0}`,
		`{"perturb": 0, "seed": 1}`,
		`{}`,
		`null`,
		``,
	}
	want := base.Canonical()
	for _, v := range variants {
		p, err := DecodeParams([]byte(v), base)
		if err != nil {
			t.Fatalf("decode %q: %v", v, err)
		}
		if got := p.Canonical(); got != want {
			t.Errorf("Canonical(%q) = %q, want %q", v, got, want)
		}
	}
	// A genuinely different spec must canonicalize differently.
	p, err := DecodeParams([]byte(`{"seed": 2}`), base)
	if err != nil {
		t.Fatal(err)
	}
	if p.Canonical() == want {
		t.Error("seed=2 canonicalized identically to seed=1")
	}
}

// TestDecodeParamsStrict: unknown fields and malformed JSON are rejected
// with the "bad params" prefix, and the base is used for omitted fields.
func TestDecodeParamsStrict(t *testing.T) {
	base := RunParams{Seed: 7, Full: true}
	for _, bad := range []string{`{"sede": 1}`, `{"seed": "x"}`, `{"seed": 1`, `42`} {
		if _, err := DecodeParams([]byte(bad), base); err == nil {
			t.Errorf("DecodeParams(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "bad params") {
			t.Errorf("DecodeParams(%q) error %q lacks the bad-params prefix", bad, err)
		}
	}
	p, err := DecodeParams([]byte(`{"series": true}`), base)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || !p.Full || !p.Series {
		t.Errorf("partial decode over base = %+v, want base fields preserved", p)
	}
}

// TestRegisterRejectsDuplicates: double registration is a programming
// error and panics at init time, not a silent overwrite at serve time.
func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(Spec{ID: "fig2", Describe: "dup", Run: func(RunParams, Sink, io.Writer) error { return nil }})
}
