#!/bin/sh
# benchtrend.sh — render the per-PR benchmark trajectory as a markdown
# table from the committed BENCH_<pr>.json files.
#
# Each PR records its numbers under slightly different keys (ns_per_op vs
# ns_per_op_mean vs best-of, one-off batch throughput keys), so every
# metric is picked through a fallback chain; a PR that did not measure a
# metric renders "-". Output goes to stdout; the current table is pasted
# into docs/PERFORMANCE.md ("Benchmark trajectory") when it changes.
#
#   sh scripts/benchtrend.sh
set -eu
cd "$(dirname "$0")/.."

command -v jq >/dev/null 2>&1 || { echo "benchtrend.sh: jq not found" >&2; exit 1; }

files=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n)
[ -n "$files" ] || { echo "benchtrend.sh: no BENCH_*.json files" >&2; exit 1; }

echo "| PR | date | EngineScheduleRun ns/op | PacketPath ns/op | Fig10bIncast ms/op | batch Mev/s |"
echo "|---:|------|------------------------:|-----------------:|-------------------:|------------:|"
for f in $files; do
    jq -r '
        def pick(p): p // "-";
        def mev: if . == "-" then . else (. / 1e6 * 100 | round / 100) end;
        "| \(.pr) | \(.date) " +
        "| \(pick(.engine_schedule_run | (.ns_per_op // .ns_per_op_mean // .ns_per_op_median // .ns_per_op_best))) " +
        "| \(pick(.packet_path | (.ns_per_op // .ns_per_op_mean // .ns_per_op_median // .best_of_5_ns_per_op // .ns_per_op_best))) " +
        "| \(pick(.fig10b_incast | (.ms_per_op // .ms_per_op_mean // .ms_per_op_median))) " +
        "| \((.batch // {} |
             (.events_per_sec // .events_per_sec_head_basis // .events_per_sec_parallel1))
           // (.live_streaming // {} | .events_per_sec_logical) // "-" | mev) |"
    ' "$f"
done
