package cc_test

import (
	"math/rand"
	"testing"

	"prioplus/internal/cc"
	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
)

func microCfg() topo.Config {
	cfg := topo.DefaultConfig()
	cfg.LinkDelay = 3 * sim.Microsecond
	return cfg
}

func newStar(nHosts int, mod func(*topo.Config), opts ...harness.Option) (*harness.Net, *sim.Engine) {
	eng := sim.NewEngine()
	cfg := microCfg()
	if mod != nil {
		mod(&cfg)
	}
	net := harness.New(topo.Star(eng, nHosts, cfg), 11, opts...)
	return net, eng
}

// throughput measures per-key delivered Gb/s at the receiver over [from, to].
func throughput(net *harness.Net, eng *sim.Engine, recv int, key func(*netsim.Packet) int,
	from, to sim.Time) map[int]float64 {
	m := harness.NewThroughputMeter()
	net.SinkCounter(recv, m, key)
	var snapFrom map[int]int64
	eng.At(from, func() { snapFrom = m.Snapshot() })
	eng.RunUntil(to)
	out := make(map[int]float64)
	for k, v := range m.Snapshot() {
		out[k] = float64(v-snapFrom[k]) * 8 / (to - from).Seconds() / 1e9
	}
	return out
}

func TestSwiftConvergesToTarget(t *testing.T) {
	net, eng := newStar(3, nil)
	base := net.Topo.BaseRTT(0, 2)
	cfg := cc.DefaultSwiftConfig(base, net.BDPPackets(0, 2))
	sw := cc.NewSwift(cfg)
	s := net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 30, Prio: 0, Algo: sw})
	var delays []sim.Time
	for i := 0; i < 50; i++ {
		eng.At(2*sim.Millisecond+sim.Time(i)*20*sim.Microsecond, func() {
			delays = append(delays, s.SRTT())
		})
	}
	eng.RunUntil(4 * sim.Millisecond)
	// Steady-state smoothed RTT should sit near the target.
	var avg sim.Time
	for _, d := range delays {
		avg += d
	}
	avg /= sim.Time(len(delays))
	if avg < base || avg > cfg.Target+4*sim.Microsecond {
		t.Errorf("steady-state SRTT = %v, want in [base %v, target+4us %v]", avg, base, cfg.Target+4*sim.Microsecond)
	}
}

func TestSwiftWorkConserving(t *testing.T) {
	net, eng := newStar(3, nil)
	base := net.Topo.BaseRTT(0, 2)
	sw := cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(0, 2)))
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 30, Prio: 0, Algo: sw})
	tp := throughput(net, eng, 2, func(*netsim.Packet) int { return 0 }, sim.Millisecond, 3*sim.Millisecond)
	if tp[0] < 85 {
		t.Errorf("single Swift flow at %.1f Gb/s, want ~100", tp[0])
	}
}

func TestSwiftFairAmongEquals(t *testing.T) {
	net, eng := newStar(5, nil)
	for i := 0; i < 4; i++ {
		base := net.Topo.BaseRTT(i, 4)
		sw := cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(i, 4)))
		net.AddFlow(harness.Flow{Src: i, Dst: 4, Size: 1 << 30, Prio: 0, Algo: sw})
	}
	tp := throughput(net, eng, 4, func(p *netsim.Packet) int { return p.Src }, 3*sim.Millisecond, 6*sim.Millisecond)
	total := 0.0
	for i := 0; i < 4; i++ {
		total += tp[i]
		if tp[i] < 12 || tp[i] > 40 {
			t.Errorf("flow %d at %.1f Gb/s, want ~25 (fair quarter)", i, tp[i])
		}
	}
	if total < 85 {
		t.Errorf("aggregate %.1f Gb/s, want ~100", total)
	}
}

func TestSwiftTargetScalingRaisesTarget(t *testing.T) {
	base := 12 * sim.Microsecond
	cfg := cc.DefaultSwiftConfig(base, 150)
	cfg.TargetScaling = true
	sw := cc.NewSwift(cfg)
	drv := &stubDriver{base: base, rate: 100 * netsim.Gbps, mtu: 1000}
	sw.Start(drv)
	sw.SetCwndPackets(100)
	big := sw.TargetNow()
	sw.SetCwndPackets(0.5)
	small := sw.TargetNow()
	if small <= big {
		t.Errorf("target with cwnd 0.5 (%v) should exceed target with cwnd 100 (%v)", small, big)
	}
	if small > cfg.Target+cfg.FSRange {
		t.Errorf("scaled target %v exceeds FSRange cap %v", small, cfg.Target+cfg.FSRange)
	}
	// SetTarget must disable scaling (PrioPlus integration requirement).
	sw.SetTarget(base + 8*sim.Microsecond)
	sw.SetCwndPackets(0.5)
	if got := sw.TargetNow(); got != base+8*sim.Microsecond {
		t.Errorf("after SetTarget, TargetNow = %v, want pinned %v", got, base+8*sim.Microsecond)
	}
}

func TestSwiftDecreaseOncePerRTT(t *testing.T) {
	base := 12 * sim.Microsecond
	cfg := cc.DefaultSwiftConfig(base, 150)
	sw := cc.NewSwift(cfg)
	drv := &stubDriver{base: base, rate: 100 * netsim.Gbps, mtu: 1000}
	sw.Start(drv)
	sw.SetCwndPackets(100)
	high := cfg.Target + 20*sim.Microsecond
	// Many over-target ACKs within one RTT: only one decrease applies.
	sw.OnAck(cc.Feedback{Now: base, Delay: high, AckedBytes: 1000})
	after1 := sw.CwndPackets()
	for i := 0; i < 10; i++ {
		sw.OnAck(cc.Feedback{Now: base + sim.Time(i), Delay: high, AckedBytes: 1000})
	}
	if got := sw.CwndPackets(); got != after1 {
		t.Errorf("cwnd decreased again within the same RTT: %v -> %v", after1, got)
	}
	// After a full RTT, another decrease is allowed.
	sw.OnAck(cc.Feedback{Now: base + high + sim.Microsecond, Delay: high, AckedBytes: 1000})
	if got := sw.CwndPackets(); got >= after1 {
		t.Errorf("no decrease after a full RTT elapsed: %v", got)
	}
}

func TestSwiftMDBounded(t *testing.T) {
	base := 12 * sim.Microsecond
	cfg := cc.DefaultSwiftConfig(base, 150)
	sw := cc.NewSwift(cfg)
	drv := &stubDriver{base: base, rate: 100 * netsim.Gbps, mtu: 1000}
	sw.Start(drv)
	sw.SetCwndPackets(100)
	// Enormous delay: decrease capped at MaxMDF.
	sw.OnAck(cc.Feedback{Now: base, Delay: base * 100, AckedBytes: 1000})
	if got := sw.CwndPackets(); got < 100*(1-cfg.MaxMDF)-1e-9 {
		t.Errorf("cwnd %v dropped below the MaxMDF floor %v", got, 100*(1-cfg.MaxMDF))
	}
}

// stubDriver satisfies cc.Driver for direct unit tests.
type stubDriver struct {
	base    sim.Time
	rate    netsim.Rate
	mtu     int
	now     sim.Time
	stopped bool
	probes  int
	sndNxt  int64
}

func (d *stubDriver) Now() sim.Time             { return d.now }
func (d *stubDriver) BaseRTT() sim.Time         { return d.base }
func (d *stubDriver) LineRate() netsim.Rate     { return d.rate }
func (d *stubDriver) MTU() int                  { return d.mtu }
func (d *stubDriver) SndNxt() int64             { return d.sndNxt }
func (d *stubDriver) RemainingBytes() int64     { return 1 << 20 }
func (d *stubDriver) StopSending()              { d.stopped = true }
func (d *stubDriver) ResumeSending()            { d.stopped = false }
func (d *stubDriver) SendProbeAfter(t sim.Time) { d.probes++ }
func (d *stubDriver) ResetRTO()                 {}
func (d *stubDriver) Rand() *rand.Rand          { return rand.New(rand.NewSource(1)) }

func TestDCTCPConvergesUnderECN(t *testing.T) {
	net, eng := newStar(3, func(cfg *topo.Config) {
		cfg.Buffer.ECNKMin = 100 * 1000 // ~100 packets, DCTCP K for 100G
		cfg.Buffer.ECNKMax = 100 * 1000
	})
	for i := 0; i < 2; i++ {
		d := cc.NewDCTCP(cc.DefaultDCTCPConfig(net.BDPPackets(i, 2)))
		net.AddFlow(harness.Flow{Src: i, Dst: 2, Size: 1 << 30, Prio: 0, Algo: d})
	}
	tp := throughput(net, eng, 2, func(p *netsim.Packet) int { return p.Src }, 2*sim.Millisecond, 5*sim.Millisecond)
	if tp[0]+tp[1] < 80 {
		t.Errorf("DCTCP aggregate %.1f Gb/s, want ~100", tp[0]+tp[1])
	}
	ratio := tp[0] / tp[1]
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("DCTCP share ratio %.2f, want ~1", ratio)
	}
	// The standing queue must stay bounded near K: check via switch marks.
	if net.Topo.Switches[0].ECNMarks == 0 {
		t.Error("no ECN marks: DCTCP had no congestion signal")
	}
}

func TestD2TCPDeadlineGetsMoreBandwidth(t *testing.T) {
	// The Fig 3a setup: a tight-deadline and a loose-deadline D2TCP flow
	// share one queue; the tight one should get a larger share, but not
	// strict priority (the paper's Observation 1).
	net, eng := newStar(3, func(cfg *topo.Config) {
		cfg.Buffer.ECNKMin = 100 * 1000
		cfg.Buffer.ECNKMax = 100 * 1000
	})
	size := int64(8 << 20)
	ideal := sim.FromSeconds(float64(size) / (100e9 / 8))
	var fct [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		ccfg := cc.DefaultDCTCPConfig(net.BDPPackets(i, 2))
		if i == 0 {
			ccfg.Deadline = ideal // tight: 1x ideal FCT
		} else {
			ccfg.Deadline = 2 * ideal // loose: 2x
		}
		net.AddFlow(harness.Flow{
			Src: i, Dst: 2, Size: size, Prio: 0,
			Algo:       cc.NewDCTCP(ccfg),
			OnComplete: func(d sim.Time) { fct[i] = d },
		})
	}
	eng.RunUntil(20 * sim.Millisecond)
	if fct[0] == 0 || fct[1] == 0 {
		t.Fatalf("flows did not finish: %v %v", fct[0], fct[1])
	}
	if fct[0] >= fct[1] {
		t.Errorf("tight-deadline FCT %v >= loose FCT %v", fct[0], fct[1])
	}
	// But D2TCP is weighted, not strict: the tight flow cannot finish at
	// its ideal FCT because the loose flow keeps transmitting (the paper's
	// Observation 1).
	if fct[0] < ideal*11/10 {
		t.Errorf("tight FCT %v is near ideal %v: unexpectedly strict prioritization", fct[0], ideal)
	}
}

func TestLEDBATConvergesToTarget(t *testing.T) {
	net, eng := newStar(3, nil)
	base := net.Topo.BaseRTT(0, 2)
	l := cc.NewLEDBAT(cc.DefaultLEDBATConfig(base, net.BDPPackets(0, 2)))
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 30, Prio: 0, Algo: l})
	tp := throughput(net, eng, 2, func(*netsim.Packet) int { return 0 }, 2*sim.Millisecond, 4*sim.Millisecond)
	if tp[0] < 80 {
		t.Errorf("LEDBAT at %.1f Gb/s, want ~100 (keeps delay at target, fully using the link)", tp[0])
	}
}

func TestHPCCHighUtilizationLowQueue(t *testing.T) {
	net, eng := newStar(3, nil, harness.WithINT())
	for i := 0; i < 2; i++ {
		h := cc.NewHPCC(cc.DefaultHPCCConfig(net.BDPPackets(i, 2)))
		net.AddFlow(harness.Flow{Src: i, Dst: 2, Size: 1 << 30, Prio: 0, Algo: h})
	}
	// Sample the bottleneck queue in steady state.
	var maxq int
	for i := 0; i < 100; i++ {
		eng.At(2*sim.Millisecond+sim.Time(i)*10*sim.Microsecond, func() {
			if q := net.Topo.Switches[0].Ports[2].TotalQueuedBytes(); q > maxq {
				maxq = q
			}
		})
	}
	tp := throughput(net, eng, 2, func(p *netsim.Packet) int { return p.Src }, 2*sim.Millisecond, 4*sim.Millisecond)
	total := tp[0] + tp[1]
	if total < 75 || total > 101 {
		t.Errorf("HPCC aggregate %.1f Gb/s, want near eta*line rate (95)", total)
	}
	// HPCC's near-zero-queue property: steady-state queue well below 1 BDP.
	if maxq > 150000 {
		t.Errorf("HPCC steady-state queue %d B, want < 1 BDP (150 KB)", maxq)
	}
}

func TestNoCCFloodsAtLineRate(t *testing.T) {
	net, eng := newStar(3, nil)
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 26, Prio: 0, Algo: cc.NewNoCC()})
	tp := throughput(net, eng, 2, func(*netsim.Packet) int { return 0 }, 100*sim.Microsecond, 2*sim.Millisecond)
	if tp[0] < 90 {
		t.Errorf("NoCC at %.1f Gb/s, want line rate", tp[0])
	}
}
