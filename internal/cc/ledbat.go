package cc

import (
	"math"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// LEDBATConfig parameterizes LEDBAT [RFC 6817], the scavenger delay-based
// controller the paper integrates PrioPlus with as a second base CC. The
// target here is an absolute delay (base RTT + queuing budget) so the same
// channel assignment code drives Swift and LEDBAT.
type LEDBATConfig struct {
	Target  sim.Time // absolute target delay
	Gain    float64  // window gain per off-target unit
	MinCwnd float64
	MaxCwnd float64
}

// DefaultLEDBATConfig returns LEDBAT parameters adapted to data-center
// RTTs: the RFC's 100 ms target is replaced with a microsecond-scale
// queuing budget, as the paper does when assigning per-priority targets.
func DefaultLEDBATConfig(baseRTT sim.Time, bdpPkts float64) LEDBATConfig {
	return LEDBATConfig{
		Target:  baseRTT + 4*sim.Microsecond,
		Gain:    1,
		MinCwnd: 0.1,
		MaxCwnd: math.Max(bdpPkts*8, 8), // see SwiftConfig.MaxCwnd
	}
}

// LEDBAT implements the LEDBAT controller.
type LEDBAT struct {
	cfg   LEDBATConfig
	drv   Driver
	dlog  DecisionLogger
	cwnd  float64
	ai    float64 // gain multiplier PrioPlus can adjust
	above bool    // last sample was over target (audit edge detector)
}

// NewLEDBAT returns a LEDBAT instance.
func NewLEDBAT(cfg LEDBATConfig) *LEDBAT { return &LEDBAT{cfg: cfg, ai: cfg.Gain} }

// Name implements Algorithm.
func (l *LEDBAT) Name() string { return "ledbat" }

// WantsECT implements Algorithm.
func (l *LEDBAT) WantsECT() bool { return false }

// Start implements Algorithm.
func (l *LEDBAT) Start(drv Driver) {
	l.drv = drv
	l.dlog = DecisionLoggerOf(drv)
	if l.cwnd == 0 {
		l.cwnd = l.clamp(2)
	}
}

func (l *LEDBAT) clamp(w float64) float64 {
	return math.Min(math.Max(w, l.cfg.MinCwnd), l.cfg.MaxCwnd)
}

// OnAck implements Algorithm: the linear controller from RFC 6817 §2.4.2,
// with queuing delay measured against the known base RTT.
func (l *LEDBAT) OnAck(fb Feedback) {
	queuing := fb.Delay - l.drv.BaseRTT()
	budget := l.cfg.Target - l.drv.BaseRTT()
	if budget <= 0 {
		budget = sim.Microsecond
	}
	off := float64(budget-queuing) / float64(budget) // >0 below target
	if off > 1 {
		off = 1
	}
	ackedPkts := float64(fb.AckedBytes) / float64(l.drv.MTU())
	l.cwnd += l.ai * off * ackedPkts / math.Max(l.cwnd, l.cfg.MinCwnd)
	l.cwnd = l.clamp(l.cwnd)
	// Audit the proportional controller's sign edges only: the per-ACK
	// window drift is reconstructable from the acked spans, the moment it
	// turned into backoff is the decision worth a timeline entry.
	if off < 0 && !l.above {
		l.above = true
		if l.dlog != nil {
			l.dlog.LogDecision(obs.SpanDecCut, fb.Delay, l.cwnd, off)
		}
	} else if off >= 0 {
		l.above = false
	}
}

// OnProbeAck implements Algorithm.
func (l *LEDBAT) OnProbeAck(fb Feedback) { l.OnAck(fb) }

// OnRTO implements Algorithm.
func (l *LEDBAT) OnRTO() { l.cwnd = l.clamp(l.cwnd / 2) }

// CwndBytes implements Algorithm.
func (l *LEDBAT) CwndBytes() float64 { return l.cwnd * float64(l.drv.MTU()) }

// CwndPackets implements DelayBased.
func (l *LEDBAT) CwndPackets() float64 { return l.cwnd }

// SetCwndPackets implements DelayBased.
func (l *LEDBAT) SetCwndPackets(w float64) { l.cwnd = l.clamp(w) }

// AIStep implements DelayBased.
func (l *LEDBAT) AIStep() float64 { return l.ai }

// SetAIStep implements DelayBased.
func (l *LEDBAT) SetAIStep(w float64) { l.ai = w }

// BaseAIStep implements DelayBased.
func (l *LEDBAT) BaseAIStep() float64 { return l.cfg.Gain }

// SetTarget implements DelayBased.
func (l *LEDBAT) SetTarget(t sim.Time) { l.cfg.Target = t }
