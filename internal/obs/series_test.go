package obs_test

import (
	"testing"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

func TestSeriesSetSampling(t *testing.T) {
	ss := obs.NewSeriesSet(10 * sim.Microsecond)
	ss.Start = 5 * sim.Microsecond
	var a, b float64
	sa := ss.Add("net/a", "bytes", func() float64 { return a })
	sb := ss.Add("net/b", "packets", func() float64 { return b })

	a, b = 1, 10
	ss.Sample()
	a, b = 2, 20
	ss.Sample()

	if ss.Ticks() != 2 {
		t.Errorf("Ticks = %d, want 2", ss.Ticks())
	}
	if sa.Len() != 2 || sb.Len() != 2 {
		t.Errorf("series lengths = %d/%d, want 2/2", sa.Len(), sb.Len())
	}
	if sa.V[0] != 1 || sa.V[1] != 2 || sb.V[0] != 10 || sb.V[1] != 20 {
		t.Errorf("sampled values a=%v b=%v", sa.V, sb.V)
	}
	if sa.Last() != 2 {
		t.Errorf("Last = %v, want 2", sa.Last())
	}
	// Sample i lands at Start + (i+1)*Interval.
	if got := ss.TimeAt(0); got != 15*sim.Microsecond {
		t.Errorf("TimeAt(0) = %v, want 15us", got)
	}
	if got := ss.TimeAt(1); got != 25*sim.Microsecond {
		t.Errorf("TimeAt(1) = %v, want 25us", got)
	}
	all := ss.All()
	if len(all) != 2 || all[0] != sa || all[1] != sb {
		t.Error("All() does not preserve registration order")
	}
}

func TestSeriesSetBadIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSeriesSet(0) did not panic")
		}
	}()
	obs.NewSeriesSet(0)
}

func TestEmptySeriesLast(t *testing.T) {
	s := &obs.Series{Name: "x"}
	if s.Last() != 0 || s.Len() != 0 {
		t.Error("empty series Last/Len not zero")
	}
}

// TestSeriesSampleZeroAllocWarm pins the hot-path contract: once the value
// slices have grown to their working size, Sample performs no allocations.
func TestSeriesSampleZeroAllocWarm(t *testing.T) {
	ss := obs.NewSeriesSet(sim.Microsecond)
	for i := 0; i < 8; i++ {
		ss.Add("s", "v", func() float64 { return 1 })
	}
	// Warm: push every value slice just past a capacity boundary (4096 ->
	// ~5120) so the measured window below fits in the spare capacity.
	for i := 0; i < 4200; i++ {
		ss.Sample()
	}
	if allocs := testing.AllocsPerRun(100, ss.Sample); allocs != 0 {
		t.Errorf("warm Sample allocates %v per op, want 0", allocs)
	}
}

func TestSeriesReserve(t *testing.T) {
	ss := obs.NewSeriesSet(10 * sim.Microsecond)
	ss.Start = 5 * sim.Microsecond
	var v float64
	sa := ss.Add("a", "x", func() float64 { return v })
	sb := ss.Add("b", "x", func() float64 { return -v })
	// Reserve mid-stream: existing samples must survive the slab move.
	v = 1
	ss.Sample()
	ss.ReserveUntil(105 * sim.Microsecond) // (105-5)/10 + 1 = 11 ticks
	if cap(sa.V) < 11 || cap(sb.V) < 11 {
		t.Fatalf("caps after ReserveUntil = %d/%d, want >= 11", cap(sa.V), cap(sb.V))
	}
	if sa.V[0] != 1 || sb.V[0] != -1 {
		t.Fatalf("Reserve lost existing samples: %v %v", sa.V, sb.V)
	}
	// Sampling within the reservation allocates nothing and columns stay
	// independent despite the shared slab.
	preA, preB := cap(sa.V), cap(sb.V)
	for i := 2; i <= 11; i++ {
		v = float64(i)
		ss.Sample()
	}
	if cap(sa.V) != preA || cap(sb.V) != preB {
		t.Error("sampling within the reservation regrew a column")
	}
	for i := 0; i < 11; i++ {
		want := float64(i + 1)
		if sa.V[i] != want || sb.V[i] != -want {
			t.Fatalf("tick %d = %v/%v, want %v/%v: slab columns bled into each other", i, sa.V[i], sb.V[i], want, -want)
		}
	}
	// Past the reservation, growth falls back to append.
	v = 99
	ss.Sample()
	if sa.Last() != 99 || sb.Last() != -99 || sa.Len() != 12 {
		t.Error("sampling past the reservation broke")
	}
	// Degenerate calls are no-ops.
	ss.Reserve(0)
	ss.ReserveUntil(0)
	obs.NewSeriesSet(sim.Second).Reserve(5)
}
