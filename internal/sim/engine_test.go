package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{80 * Nanosecond, "80ns"},
		{12 * Microsecond, "12us"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Microsecond).Millis(); got != 1.5 {
		t.Errorf("Millis = %v, want 1.5", got)
	}
	if got := FromSeconds(0.5); got != 500*Millisecond {
		t.Errorf("FromSeconds(0.5) = %v, want 500ms", got)
	}
	if got := (250 * Nanosecond).Micros(); got != 0.25 {
		t.Errorf("Micros = %v, want 0.25", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*Nanosecond, func() { order = append(order, 3) })
	e.At(10*Nanosecond, func() { order = append(order, 1) })
	e.At(20*Nanosecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30*Nanosecond {
		t.Errorf("Now() = %v, want 30ns", e.Now())
	}
}

func TestEngineSimultaneousFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5*Microsecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: order[%d] = %d", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.After(Microsecond, tick)
		}
	}
	e.After(0, tick)
	e.Run()
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	if e.Now() != 9*Microsecond {
		t.Errorf("Now() = %v, want 9us", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(Microsecond, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
}

func TestEngineCancelFromEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	var victim *Event
	e.At(Microsecond, func() { e.Cancel(victim) })
	victim = e.At(2*Microsecond, func() { fired = true })
	e.Run()
	if fired {
		t.Error("event canceled mid-run still fired")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{Microsecond, 2 * Microsecond, 3 * Microsecond} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(2 * Microsecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 2*Microsecond {
		t.Errorf("Now() = %v, want 2us", e.Now())
	}
	e.RunUntil(10 * Microsecond)
	if len(fired) != 3 {
		t.Fatalf("fired %d events after second run, want 3", len(fired))
	}
	if e.Now() != 10*Microsecond {
		t.Errorf("Now() = %v, want 10us (clock advances to end)", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i)*Microsecond, func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Errorf("count = %d, want 2 (stopped after second event)", count)
	}
	// The remaining events are still pending and can be resumed.
	e.Run()
	if count != 5 {
		t.Errorf("count after resume = %d, want 5", count)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestEngineNegativeAfterClamped(t *testing.T) {
	e := NewEngine()
	e.At(Microsecond, func() {
		e.After(-5*Microsecond, func() {
			if e.Now() != Microsecond {
				t.Errorf("negative After fired at %v, want 1us", e.Now())
			}
		})
	})
	e.Run()
}

// Property: for any set of scheduled delays, events fire in nondecreasing
// time order and all events fire exactly once.
func TestEngineHeapProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			d := Time(d) * Nanosecond
			e.At(d, func() { fired = append(fired, d) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEnginePostRecycles(t *testing.T) {
	e := NewEngine()
	fired := 0
	// Interleave Post and Run so events recycle; all must fire exactly
	// once and in order.
	var last Time = -1
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			e.Post(Time(i)*Nanosecond, func() {
				fired++
				if e.Now() < last {
					t.Fatal("recycled event fired out of order")
				}
				last = e.Now()
			})
		}
		e.Run()
	}
	if fired != 1000 {
		t.Errorf("fired %d events, want 1000", fired)
	}
}

func TestEnginePostAndAtInterleaved(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Post(2*Nanosecond, func() { order = append(order, 2) })
	ev := e.At(1*Nanosecond, func() { order = append(order, 1) })
	e.Post(3*Nanosecond, func() { order = append(order, 3) })
	_ = ev
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%64)*Nanosecond, fn)
		if e.Pending() > 1024 {
			e.RunUntil(e.Now() + 64*Nanosecond)
		}
	}
	e.Run()
}

func TestTotalProcessedAccumulates(t *testing.T) {
	before := TotalProcessed()
	e := NewEngine()
	const n = 100
	for i := 0; i < n; i++ {
		e.Post(Time(i), func() {})
	}
	e.RunUntil(Time(n))
	if e.Processed() != n {
		t.Fatalf("engine processed %d events, want %d", e.Processed(), n)
	}
	// Other tests may run engines concurrently, so the global can grow by
	// more than n — but never less.
	if got := TotalProcessed() - before; got < n {
		t.Errorf("TotalProcessed grew by %d, want >= %d", got, n)
	}
}
