package obs

import "prioplus/internal/sim"

// FaultEvent is one executed fault action (link down/up, switch reboot),
// as recorded by the fault injector via harness.Net.Observe.
type FaultEvent struct {
	T    sim.Time
	Kind string // "link_down", "link_up", "reboot"
	Dev  string
	Port int // -1 for reboot
}

// FaultLog accumulates the run's fault events in firing order. Fault
// events are rare (a handful per run, not per packet), so the log is a
// plain slice with no ring or sampling.
type FaultLog struct {
	Events []FaultEvent
}

// Record appends one event.
func (l *FaultLog) Record(ev FaultEvent) { l.Events = append(l.Events, ev) }
