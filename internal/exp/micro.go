package exp

import (
	"math/rand"

	"prioplus/internal/cc"
	"prioplus/internal/core"
	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/noise"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
)

// microNet builds the paper's micro-benchmark fabric: a star of 100 Gb/s,
// 3 us links (base RTT ~12 us through the switch), with long-tail
// measurement noise installed. Options thread the cross-cutting knobs in:
// a seed override, an observability recorder (attached before traffic),
// and a fault plan.
func microNet(nHosts int, seed int64, mod func(*topo.Config), o Options) (*harness.Net, *sim.Engine) {
	seed = o.seedOr(seed)
	eng := sim.NewEngine()
	cfg := topo.DefaultConfig()
	cfg.LinkDelay = 3 * sim.Microsecond
	cfg.Seed = seed
	if mod != nil {
		mod(&cfg)
	}
	nm := noise.NewLongTail(rand.New(rand.NewSource(seed+7)), 1)
	net := harness.New(topo.Star(eng, nHosts, cfg), seed,
		harness.WithNoise(o.noiseFn(nm.Sample)),
		harness.WithFaults(o.Faults))
	if o.Recorder != nil {
		net.Observe(o.Recorder)
	}
	return net, eng
}

// Series is a labeled rate-over-time trace for figure output.
type Series struct {
	Label string
	T     []float64 // milliseconds
	V     []float64 // Gb/s (or us, for delay series)
}

func seriesFrom(rs *harness.RateSampler, key int, label string) Series {
	s := Series{Label: label}
	for i, t := range rs.Times {
		s.T = append(s.T, t.Millis())
		s.V = append(s.V, rs.Rates[i][key])
	}
	return s
}

// Fig3aResult quantifies D2TCP's failure to provide strict priority.
type Fig3aResult struct {
	Series []Series
	// HighShare is the tight-deadline flow's bandwidth share while both
	// flows are active; strict priority would be ~1.0.
	HighShare float64
	// HighFCTvsIdeal is the tight flow's FCT over its ideal FCT; strict
	// priority would give ~1.0.
	HighFCTvsIdeal float64
}

// Fig3a reproduces the D2TCP micro-benchmark: two flows with deadlines 1x
// and 2x the ideal FCT. D2TCP slows both on ECN, so the tight flow neither
// monopolizes bandwidth nor finishes at its ideal FCT (Observation 1).
func Fig3a(size int64, o Options) Fig3aResult {
	net, eng := microNet(3, 3, func(cfg *topo.Config) {
		cfg.Buffer.ECNKMin = 100_000
		cfg.Buffer.ECNKMax = 100_000
	}, o)
	base := net.Topo.BaseRTT(0, 2)
	ideal := IdealFCT(size, 100*netsim.Gbps, base)
	var fctHigh sim.Time
	for i := 0; i < 2; i++ {
		i := i
		cfg := cc.DefaultDCTCPConfig(net.BDPPackets(i, 2))
		cfg.Deadline = sim.Time(i+1) * ideal
		fl := harness.Flow{Src: i, Dst: 2, Size: size, Prio: 0, Algo: cc.NewDCTCP(cfg)}
		if i == 0 {
			fl.OnComplete = func(d sim.Time) { fctHigh = d }
		}
		net.AddFlow(fl)
	}
	dur := 8 * ideal
	rs := net.SampleRates(2, func(p *netsim.Packet) int { return p.Src }, dur/100, dur)
	eng.RunUntil(dur)
	mid := fctHigh * 8 / 10
	hi := rs.Between(fctHigh/10, mid, 0)
	lo := rs.Between(fctHigh/10, mid, 1)
	return Fig3aResult{
		Series:         []Series{seriesFrom(rs, 0, "high(DDL=1x)"), seriesFrom(rs, 1, "low(DDL=2x)")},
		HighShare:      hi / (hi + lo),
		HighFCTvsIdeal: float64(fctHigh) / float64(ideal),
	}
}

// Fig3bResult quantifies Swift-with-target-scaling's weighted (not strict)
// sharing.
type Fig3bResult struct {
	Series []Series
	// HighShare is the high-target pair's share in steady state; strict
	// priority would be ~1.0, Swift gives weighted sharing well below.
	HighShare float64
}

// Fig3b runs 2 high-priority (target base+15us) and 2 low-priority (target
// base+5us) Swift flows with target scaling: scaling re-inflates the low
// flows' targets as they shrink, yielding weighted sharing (§3.2).
func Fig3b(o Options) Fig3bResult {
	net, eng := microNet(5, 5, nil, o)
	mk := func(src int, off sim.Time) *cc.Swift {
		base := net.Topo.BaseRTT(src, 4)
		cfg := cc.DefaultSwiftConfig(base, net.BDPPackets(src, 4))
		cfg.Target = base + off
		cfg.TargetScaling = true
		return cc.NewSwift(cfg)
	}
	for i := 0; i < 2; i++ {
		net.AddFlow(harness.Flow{Src: i, Dst: 4, Size: 1 << 30, Prio: 0, Algo: mk(i, 15*sim.Microsecond)})
		net.AddFlow(harness.Flow{Src: i + 2, Dst: 4, Size: 1 << 30, Prio: 0, Algo: mk(i+2, 5*sim.Microsecond)})
	}
	dur := 4 * sim.Millisecond
	rs := net.SampleRates(4, func(p *netsim.Packet) int { return p.Src / 2 }, 50*sim.Microsecond, dur)
	eng.RunUntil(dur)
	hi := rs.Between(dur/2, dur, 0)
	lo := rs.Between(dur/2, dur, 1)
	return Fig3bResult{
		Series:    []Series{seriesFrom(rs, 0, "high pair"), seriesFrom(rs, 1, "low pair")},
		HighShare: hi / (hi + lo),
	}
}

// Fig3cResult quantifies Swift-without-scaling under 300 flows.
type Fig3cResult struct {
	// UtilBefore is link utilization while only the 300 low flows run;
	// fluctuation above the low target causes underutilization (O2).
	UtilBefore float64
	// HighShareAfter is the single high flow's share once it starts; the
	// fluctuations push it to decelerate (O1).
	HighShareAfter float64
	// OverLimitFrac is the fraction of delay samples beyond the high
	// flow's target while only low flows run.
	OverLimitFrac float64
}

// Fig3c runs 300 low-priority Swift flows (no scaling, target base+5us)
// against one high flow (target base+15us) starting at 2 ms.
func Fig3c(nLow int, o Options) Fig3cResult {
	net, eng := microNet(nLow+2, 7, nil, o)
	recv := nLow + 1
	mk := func(src int, off sim.Time) *cc.Swift {
		base := net.Topo.BaseRTT(src, recv)
		cfg := cc.DefaultSwiftConfig(base, net.BDPPackets(src, recv))
		// The paper's queue-fluctuation argument assumes Swift's stock AI
		// step (~1 packet); the fluctuation of n flows is n*AI/LineRate.
		cfg.AI = 1
		cfg.Target = base + off
		return cc.NewSwift(cfg)
	}
	for i := 0; i < nLow; i++ {
		net.AddFlow(harness.Flow{Src: i, Dst: recv, Size: 1 << 30, Prio: 0, Algo: mk(i, 5*sim.Microsecond)})
	}
	net.AddFlow(harness.Flow{Src: nLow, Dst: recv, Size: 1 << 30, Prio: 0,
		Algo: mk(nLow, 15*sim.Microsecond), StartAt: 2 * sim.Millisecond})
	var over, samples int
	base := net.Topo.BaseRTT(0, recv)
	for i := 0; i < 300; i++ {
		eng.At(sim.Millisecond+sim.Time(i)*5*sim.Microsecond, func() {
			q := net.Topo.Switches[0].Ports[recv].TotalQueuedBytes()
			delay := base + sim.Time(float64(q)/(100e9/8)*1e12)
			samples++
			if delay > base+15*sim.Microsecond {
				over++
			}
		})
	}
	dur := 4 * sim.Millisecond
	rs := net.SampleRates(recv, func(p *netsim.Packet) int {
		if p.Src == nLow {
			return 1
		}
		return 0
	}, 50*sim.Microsecond, dur)
	eng.RunUntil(dur)
	lowBefore := rs.Between(sim.Millisecond, 2*sim.Millisecond, 0)
	hiAfter := rs.Between(3*sim.Millisecond, dur, 1)
	loAfter := rs.Between(3*sim.Millisecond, dur, 0)
	return Fig3cResult{
		UtilBefore:     lowBefore / 100,
		HighShareAfter: hiAfter / (hiAfter + loAfter),
		OverLimitFrac:  float64(over) / float64(samples),
	}
}

// Fig3dResult quantifies the §3.3 trade-offs.
type Fig3dResult struct {
	// ExtraQueueOnStart is the additional queue (bytes) caused by the low
	// flows' line-rate start into a busy link.
	ExtraQueueOnStart int
	// ReclaimDelay is how long after the high flows stop the low flow
	// needs to reach 50% of the link (the min-rate/ack-clock stall).
	ReclaimDelay sim.Time
}

// Fig3d runs 2+2 Swift flows without scaling: the low pair starts at
// 100 us (line-rate start hurts the high pair), the high pair stops at
// 2 ms (the low pair reclaims slowly from its minimum rate).
func Fig3d(o Options) Fig3dResult {
	net, eng := microNet(5, 9, nil, o)
	mk := func(src int, off sim.Time) *cc.Swift {
		base := net.Topo.BaseRTT(src, 4)
		cfg := cc.DefaultSwiftConfig(base, net.BDPPackets(src, 4))
		cfg.Target = base + off
		return cc.NewSwift(cfg)
	}
	stopAt := 2 * sim.Millisecond
	// High pair: finite flows sized to finish right around stopAt.
	sizeHigh := int64(float64(stopAt.Seconds()) * 100e9 / 8 / 2)
	var highEnd sim.Time
	for i := 0; i < 2; i++ {
		net.AddFlow(harness.Flow{Src: i, Dst: 4, Size: sizeHigh, Prio: 0,
			Algo:       mk(i, 15*sim.Microsecond),
			OnComplete: func(sim.Time) { highEnd = eng.Now() }})
	}
	for i := 2; i < 4; i++ {
		net.AddFlow(harness.Flow{Src: i, Dst: 4, Size: 1 << 30, Prio: 0,
			Algo: mk(i, 5*sim.Microsecond), StartAt: 100 * sim.Microsecond})
	}
	// Queue just before and shortly after the low flows' line-rate start.
	var qBefore, qPeak int
	eng.At(99*sim.Microsecond, func() { qBefore = net.Topo.Switches[0].Ports[4].TotalQueuedBytes() })
	for i := 0; i < 40; i++ {
		eng.At(100*sim.Microsecond+sim.Time(i)*2*sim.Microsecond, func() {
			if q := net.Topo.Switches[0].Ports[4].TotalQueuedBytes(); q > qPeak {
				qPeak = q
			}
		})
	}
	// Swift's additive increase is slow: reclaiming the link from the
	// minimum rate takes many milliseconds (the §3.3 signal-frequency
	// trade-off), so the horizon is generous.
	dur := 30 * sim.Millisecond
	rs := net.SampleRates(4, func(p *netsim.Packet) int { return p.Src / 2 }, 20*sim.Microsecond, dur)
	eng.RunUntil(dur)
	reclaim := dur - highEnd // pessimistic: never reclaimed in-horizon
	for i, t := range rs.Times {
		if t > highEnd && rs.Rates[i][1] >= 50 {
			reclaim = t - highEnd
			break
		}
	}
	return Fig3dResult{ExtraQueueOnStart: qPeak - qBefore, ReclaimDelay: reclaim}
}

// Fig8Result compares PrioPlus+Swift with multi-target Swift on the
// staggered 4-priority ladder of the testbed experiment.
type Fig8Result struct {
	Scheme string
	Series []Series
	// DominanceFrac is the mean share the expected-dominant priority
	// holds over the measurement phases.
	DominanceFrac float64
}

// Fig8 runs the testbed experiment in simulation: priorities 3-6, two
// flows each, starting low-to-high at `interval` and ending in the same
// order (modeled by finite sizes). 10 Gb/s links as in the testbed.
//
// With a recorder carrying a FlowTracer this is the canonical
// yield/reclaim tracing scenario: flow IDs are assigned in start order, so
// flows 1-2 are the lowest priority (channel 2, start t=0) and flows 7-8
// the highest (channel 5, start 3*interval); `prioplus-sim trace -flows
// 1,7` renders the paper's Fig 8 interleaving. Instrumentation does not
// change figure output.
func Fig8(usePrioPlus bool, interval sim.Time, o Options) Fig8Result {
	rec := o.Recorder
	net, eng := microNet(9, 11, func(cfg *topo.Config) {
		cfg.HostRate = 10 * netsim.Gbps
	}, o)
	if rec != nil && rec.Series != nil {
		rec.Series.ReserveUntil(8 * interval)
	}
	recv := 8
	base := net.Topo.BaseRTT(0, recv)
	plan := core.DefaultPlan(base)
	name := "Swift-multi-target"
	if usePrioPlus {
		name = "PrioPlus+Swift"
	}
	// Four adjacent priorities (the paper's 1-indexed 3,4,5,6 = channel
	// indices 2..5), two flows each; flow sizes chosen so each priority
	// transmits for several intervals after all have started.
	for pi, prio := range []int{2, 3, 4, 5} {
		start := sim.Time(pi) * interval
		lifetime := sim.Time(8-pi) * interval
		size := int64(float64(lifetime.Seconds()) * 10e9 / 8) // would fill the link alone
		for j := 0; j < 2; j++ {
			src := pi*2 + j
			bdp := net.BDPPackets(src, recv)
			scfg := cc.DefaultSwiftConfig(base, bdp)
			var algo cc.Algorithm
			if usePrioPlus {
				algo = core.New(cc.NewSwift(scfg), core.DefaultConfig(plan.Channel(prio), 8))
			} else {
				scfg.Target = plan.Channel(prio).Target
				algo = cc.NewSwift(scfg)
			}
			net.AddFlow(harness.Flow{Src: src, Dst: recv, Size: size / 3, Prio: 0, Algo: algo, StartAt: start})
		}
	}
	dur := 8 * interval
	rs := net.SampleRates(recv, func(p *netsim.Packet) int { return p.Src / 2 }, interval/40, dur)
	eng.RunUntil(dur)
	if rec != nil {
		net.CollectMetrics(rec)
	}
	// While priorities are starting (phases 1-3), the newest (highest)
	// should dominate.
	var dom float64
	n := 0
	for pi := 1; pi < 4; pi++ {
		from := sim.Time(pi)*interval + interval/2
		to := sim.Time(pi+1) * interval
		var total float64
		for k := 0; k < 4; k++ {
			total += rs.Between(from, to, k)
		}
		if total > 0 {
			dom += rs.Between(from, to, pi) / total
			n++
		}
	}
	res := Fig8Result{Scheme: name, DominanceFrac: dom / float64(n)}
	for k, prio := range []int{3, 4, 5, 6} {
		res.Series = append(res.Series, seriesFrom(rs, k, map[bool]string{true: "pp", false: "swift"}[usePrioPlus]+"-prio"+string(rune('0'+prio))))
	}
	return res
}

// Fig9Result compares delay containment with inflated AI steps.
type Fig9Result struct {
	Scheme        string
	OverLimitFrac float64 // fraction of queue-delay samples above D_limit
}

// Fig9 reproduces the delay-fluctuation experiment: four flows with
// W_AI inflated to ~5x the recommended value (0.75 KB) and W_LS of half
// the base BDP. PrioPlus's cardinality estimation contains the delay;
// Swift's fluctuations repeatedly exceed the threshold. 10 Gb/s links.
func Fig9(usePrioPlus bool, o Options) Fig9Result {
	net, eng := microNet(6, 13, func(cfg *topo.Config) {
		cfg.HostRate = 10 * netsim.Gbps
	}, o)
	recv := 5
	base := net.Topo.BaseRTT(0, recv)
	// The paper's testbed uses priority 6 (1-indexed): target base+24 us,
	// quoted as 37/39.4 us absolute with its 13 us RTT. That is channel
	// index 5 here.
	plan := core.DefaultPlan(base)
	ch := plan.Channel(5)
	for i := 0; i < 4; i++ {
		bdp := net.BDPPackets(i, recv)
		scfg := cc.DefaultSwiftConfig(base, bdp)
		scfg.AI = 0.75 // ~0.75 KB per RTT, ~5x recommended
		scfg.Target = ch.Target
		var algo cc.Algorithm
		if usePrioPlus {
			ppc := core.DefaultConfig(ch, 8)
			ppc.WLSFraction = 0.5 // half base BDP, per the testbed setup
			algo = core.New(cc.NewSwift(scfg), ppc)
		} else {
			algo = cc.NewSwift(scfg)
		}
		net.AddFlow(harness.Flow{Src: i, Dst: recv, Size: 1 << 30, Prio: 0, Algo: algo})
	}
	var over, samples int
	for i := 0; i < 800; i++ {
		eng.At(sim.Millisecond+sim.Time(i)*5*sim.Microsecond, func() {
			q := net.Topo.Switches[0].Ports[recv].TotalQueuedBytes()
			delay := base + sim.Time(float64(q)/(10e9/8)*1e12)
			samples++
			if delay > ch.Limit {
				over++
			}
		})
	}
	eng.RunUntil(5 * sim.Millisecond)
	name := "Swift"
	if usePrioPlus {
		name = "PrioPlus+Swift"
	}
	return Fig9Result{Scheme: name, OverLimitFrac: float64(over) / float64(samples)}
}

// Fig10bResult reports delay containment in the 300-flow incast.
type Fig10bResult struct {
	WithinFrac float64 // fraction of steady-state samples within the channel
	MeanDelay  sim.Time
	Target     sim.Time
}

// Fig10b starts n same-priority PrioPlus flows simultaneously (incast)
// with D_target = base+20us and measures delay containment. An Options
// recorder instruments the run (time series, histograms, trace — whatever
// it enables) without changing figure output: the sampler and histograms
// only read simulator state.
func Fig10b(n int, o Options) Fig10bResult {
	rec := o.Recorder
	net, eng := microNet(n+2, 17, nil, o)
	if rec != nil && rec.Series != nil {
		rec.Series.ReserveUntil(4 * sim.Millisecond)
	}
	recv := n + 1
	base := net.Topo.BaseRTT(0, recv)
	plan := core.DefaultPlan(base)
	ch := plan.Channel(4) // target = base + 20 us, as in Fig 10b
	for i := 0; i < n; i++ {
		sw := cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(i, recv)))
		net.AddFlow(harness.Flow{Src: i, Dst: recv, Size: 1 << 30, Prio: 0,
			Algo: core.New(sw, core.DefaultConfig(ch, 8))})
	}
	var within, samples int
	var sum sim.Time
	for i := 0; i < 600; i++ {
		eng.At(sim.Millisecond+sim.Time(i)*5*sim.Microsecond, func() {
			q := net.Topo.Switches[0].Ports[recv].TotalQueuedBytes()
			delay := base + sim.Time(float64(q)/(100e9/8)*1e12)
			samples++
			sum += delay
			if delay <= ch.Limit+2*sim.Microsecond {
				within++
			}
		})
	}
	eng.RunUntil(4 * sim.Millisecond)
	if rec != nil {
		net.CollectMetrics(rec)
	}
	res := Fig10bResult{Target: ch.Target}
	// A tripped watchdog can stop the run before any sample fires.
	if samples > 0 {
		res.WithinFrac = float64(within) / float64(samples)
		res.MeanDelay = sum / sim.Time(samples)
	}
	return res
}

// Fig10cResult compares dual-RTT with every-RTT adaptive increase.
type Fig10cResult struct {
	DualRTT  TakeoverStats
	EveryRTT TakeoverStats
}

// TakeoverStats quantifies a preemption transient.
type TakeoverStats struct {
	// TakeoverTime is when the high group first reaches 90% of the link.
	TakeoverTime sim.Time
	// RateStdev is the high group's rate standard deviation after
	// takeover; overreaction shows up as large swings.
	RateStdev float64
}

// Fig10c runs 10 high-priority flows preempting 10 low-priority flows,
// with dual-RTT gating on and off. Each variant is its own engine, so a
// caller-supplied Recorder is not attached (one recorder cannot span two
// runs); Seed, Faults, and Perturb thread through per variant.
func Fig10c(o Options) Fig10cResult {
	o.Recorder = nil
	run := func(everyRTT bool) TakeoverStats {
		net, eng := microNet(21, 19, nil, o)
		recv := 20
		base := net.Topo.BaseRTT(0, recv)
		plan := core.DefaultPlan(base)
		for i := 0; i < 10; i++ {
			sw := cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(i, recv)))
			net.AddFlow(harness.Flow{Src: i, Dst: recv, Size: 1 << 30, Prio: 0,
				Algo: core.New(sw, core.DefaultConfig(plan.Channel(1), 8))})
		}
		for i := 10; i < 20; i++ {
			sw := cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(i, recv)))
			ppc := core.DefaultConfig(plan.Channel(6), 8)
			ppc.AdaptiveEveryRTT = everyRTT
			net.AddFlow(harness.Flow{Src: i, Dst: recv, Size: 1 << 30, Prio: 0,
				Algo: core.New(sw, ppc), StartAt: sim.Millisecond})
		}
		dur := 4 * sim.Millisecond
		rs := net.SampleRates(recv, func(p *netsim.Packet) int { return p.Src / 10 }, 20*sim.Microsecond, dur)
		eng.RunUntil(dur)
		st := TakeoverStats{}
		for i, t := range rs.Times {
			if t > sim.Millisecond && rs.Rates[i][1] >= 90 {
				st.TakeoverTime = t - sim.Millisecond
				break
			}
		}
		var vals []float64
		for i, t := range rs.Times {
			if st.TakeoverTime > 0 && t > sim.Millisecond+st.TakeoverTime+200*sim.Microsecond {
				vals = append(vals, rs.Rates[i][1])
			}
		}
		if len(vals) > 1 {
			var mean, ss float64
			for _, v := range vals {
				mean += v
			}
			mean /= float64(len(vals))
			for _, v := range vals {
				ss += (v - mean) * (v - mean)
			}
			st.RateStdev = ss / float64(len(vals)-1)
		}
		return st
	}
	return Fig10cResult{DualRTT: run(false), EveryRTT: run(true)}
}

// Fig10dPoint is one (noise scale, channel width) utilization measurement.
type Fig10dPoint struct {
	NoiseScale float64
	WidthUS    float64 // channel width A+B in microseconds
	Util       float64
}

// Fig10dConfig is the sweep grid for the noise-vs-channel-width study.
type Fig10dConfig struct {
	// Scales multiplies the long-tail noise model's amplitude.
	Scales []float64
	// WidthsUS is the channel width A+B in microseconds.
	WidthsUS []float64
}

// DefaultFig10dConfig returns the suite's sweep grid.
func DefaultFig10dConfig() Fig10dConfig {
	return Fig10dConfig{Scales: []float64{1, 2, 4, 8}, WidthsUS: []float64{1, 2, 4, 8, 12, 16}}
}

// Fig10d sweeps noise scale x channel width for 5 same-priority flows and
// reports utilization; the paper shows the width needed for >98%
// utilization grows linearly with the noise. Every cell is a private
// engine, so a caller-supplied Recorder is not attached; the published
// topology seed (21) and noise seed (29) hold unless o overrides the seed,
// in which case the noise RNG follows at Seed+8.
func Fig10d(fc Fig10dConfig, o Options) []Fig10dPoint {
	seed := o.seedOr(21)
	noiseSeed := int64(29)
	if o.Seed != 0 {
		noiseSeed = o.Seed + 8
	}
	var out []Fig10dPoint
	for _, sc := range fc.Scales {
		for _, w := range fc.WidthsUS {
			eng := sim.NewEngine()
			cfg := topo.DefaultConfig()
			cfg.LinkDelay = 3 * sim.Microsecond
			cfg.Seed = seed
			nm := noise.NewLongTail(rand.New(rand.NewSource(noiseSeed)), sc)
			net := harness.New(topo.Star(eng, 7, cfg), seed,
				harness.WithNoise(o.noiseFn(nm.Sample)),
				harness.WithFaults(o.Faults))
			recv := 6
			base := net.Topo.BaseRTT(0, recv)
			plan := core.ChannelPlan{
				BaseRTT:     base,
				Fluctuation: sim.Time(w * 0.8 * float64(sim.Microsecond)),
				Noise:       sim.Time(w * 0.2 * float64(sim.Microsecond)),
			}
			for i := 0; i < 5; i++ {
				sw := cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(i, recv)))
				net.AddFlow(harness.Flow{Src: i, Dst: recv, Size: 1 << 30, Prio: 0,
					Algo: core.New(sw, core.DefaultConfig(plan.Channel(1), 8))})
			}
			dur := 3 * sim.Millisecond
			rs := net.SampleRates(recv, func(*netsim.Packet) int { return 0 }, 100*sim.Microsecond, dur)
			eng.RunUntil(dur)
			out = append(out, Fig10dPoint{
				NoiseScale: sc,
				WidthUS:    w,
				Util:       rs.Between(sim.Millisecond, dur, 0) / 100,
			})
		}
	}
	return out
}

// Fig10a runs the 8-priority, 30-flows-each staggered ladder and returns
// the per-interval dominance of the newest priority.
func Fig10a(perPrio int, interval sim.Time, o Options) []float64 {
	net, eng := microNet(8*perPrio+2, 23, nil, o)
	recv := 8 * perPrio
	base := net.Topo.BaseRTT(0, recv)
	plan := core.DefaultPlan(base)
	for prio := 0; prio < 8; prio++ {
		for j := 0; j < perPrio; j++ {
			src := prio*perPrio + j
			sw := cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(src, recv)))
			net.AddFlow(harness.Flow{Src: src, Dst: recv, Size: 1 << 30, Prio: 0,
				Algo:    core.New(sw, core.DefaultConfig(plan.Channel(prio), 8)),
				StartAt: sim.Time(prio) * interval})
		}
	}
	dur := 8 * interval
	rs := net.SampleRates(recv, func(p *netsim.Packet) int { return p.Src / perPrio }, interval/20, dur)
	eng.RunUntil(dur)
	shares := make([]float64, 8)
	for prio := 0; prio < 8; prio++ {
		from := sim.Time(prio)*interval + interval*3/4
		to := sim.Time(prio+1) * interval
		var total float64
		for k := 0; k < 8; k++ {
			total += rs.Between(from, to, k)
		}
		if total > 0 {
			shares[prio] = rs.Between(from, to, prio) / total
		}
	}
	return shares
}

// Fig13Point is one (tolerable noise setting, non-congestive range) cell.
type Fig13Point struct {
	ToleranceUS float64
	RangeUS     float64
	GapPerFlow  float64 // normalized FCT gap vs Physical, averaged per flow
}

// Fig13Config is the sweep grid for the non-congestive-delay study.
type Fig13Config struct {
	// TolerancesUS is the channel noise budget B, in microseconds.
	TolerancesUS []float64
	// RangesUS is the injected non-congestive jitter range, in microseconds.
	RangesUS []float64
}

// DefaultFig13Config returns the suite's sweep grid.
func DefaultFig13Config() Fig13Config {
	return Fig13Config{
		TolerancesUS: []float64{10, 20, 30},
		RangesUS:     []float64{0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40},
	}
}

// Fig13 evaluates PrioPlus under non-congestive delay: uniform jitter of
// the given range is injected at the bottleneck, with the channel noise
// budget B set to each tolerance. The gap vs an ideal-physical run of the
// same workload stays small until the range exceeds the tolerance. Each
// cell is a private engine, so a caller-supplied Recorder is not attached;
// the published seeds (31 topology, 37 jitter) hold unless o overrides the
// seed, in which case the jitter RNG follows at Seed+6. Perturb does not
// apply — this scenario injects jitter instead of the measurement-noise
// model the perturbation hooks into.
func Fig13(fc Fig13Config, o Options) []Fig13Point {
	tolerancesUS, rangesUS := fc.TolerancesUS, fc.RangesUS
	topoSeed := o.seedOr(31)
	jitterSeed := int64(37)
	if o.Seed != 0 {
		jitterSeed = o.Seed + 6
	}
	// Workload: the Fig 8 testbed ladder (10G, four adjacent priorities,
	// two flows each, staggered 4 ms) with finite flows. The physical
	// baseline also runs under the non-congestive delay; its Swift target
	// is widened by the NC range, since an operator deploying plain Swift
	// in such a network must budget the known non-congestive delay too
	// (§4.3.2's "incorporate the fixed part into the base RTT and the
	// variable part into delay noise").
	const horizon = 60 * sim.Millisecond
	runOne := func(tolUS, rngUS float64, usePP bool) []sim.Time {
		eng := sim.NewEngine()
		cfg := topo.DefaultConfig()
		cfg.HostRate = 10 * netsim.Gbps
		cfg.LinkDelay = 3 * sim.Microsecond
		cfg.Seed = topoSeed
		if !usePP {
			cfg.Queues = 9
			cfg.Buffer.HeadroomFree = true
		}
		net := harness.New(topo.Star(eng, 9, cfg), topoSeed, harness.WithFaults(o.Faults))
		jrng := rand.New(rand.NewSource(jitterSeed))
		recv := 8
		if rngUS > 0 {
			width := sim.Time(rngUS * float64(sim.Microsecond))
			net.Topo.Switches[0].Ports[recv].Jitter = func() sim.Time {
				return sim.Time(jrng.Int63n(int64(width)))
			}
		}
		base := net.Topo.BaseRTT(0, recv)
		plan := core.ChannelPlan{
			BaseRTT:     base,
			Fluctuation: 3200 * sim.Nanosecond,
			Noise:       sim.Time(tolUS * float64(sim.Microsecond)),
		}
		fcts := make([]sim.Time, 8)
		starts := make([]sim.Time, 8)
		interval := 4 * sim.Millisecond
		for pi, prio := range []int{2, 3, 4, 5} {
			start := sim.Time(pi) * interval
			// Each pair carries two intervals' worth of service (5 MB per
			// flow = 8 ms per pair at 10G), reproducing the paper's
			// "start at 4 ms intervals and end at 4 ms intervals"
			// schedule, with FCTs of 8-32 ms that amortize takeover
			// transients.
			size := int64(5e6)
			for j := 0; j < 2; j++ {
				src := pi*2 + j
				idx := pi*2 + j
				scfg := cc.DefaultSwiftConfig(base, net.BDPPackets(src, recv))
				var algo cc.Algorithm
				var queue int
				if usePP {
					algo = core.New(cc.NewSwift(scfg), core.DefaultConfig(plan.Channel(prio), 8))
				} else {
					scfg.Target += sim.Time(rngUS * float64(sim.Microsecond))
					algo = cc.NewSwift(scfg)
					queue = prio
				}
				starts[idx] = start
				net.AddFlow(harness.Flow{Src: src, Dst: recv, Size: size, Prio: queue, Algo: algo,
					StartAt: start, OnComplete: func(d sim.Time) { fcts[idx] = d }})
			}
		}
		eng.RunUntil(horizon)
		for i := range fcts {
			if fcts[i] == 0 {
				fcts[i] = horizon - starts[i] // pessimistic: unfinished
			}
		}
		return fcts
	}
	var out []Fig13Point
	// The reference is the clean (no non-congestive delay) physical run:
	// a fixed denominator isolates how PrioPlus itself degrades as the
	// non-congestive range grows, rather than conflating it with plain
	// Swift's own sensitivity to the same jitter.
	phys := runOne(0, 0, false)
	for _, tol := range tolerancesUS {
		for _, rng := range rangesUS {
			pp := runOne(tol, rng, true)
			gap := 0.0
			n := 0
			for i := range pp {
				if phys[i] > 0 && pp[i] > 0 {
					d := float64(pp[i]-phys[i]) / float64(phys[i])
					if d < 0 {
						d = -d
					}
					gap += d
					n++
				}
			}
			if n > 0 {
				gap /= float64(n)
			}
			out = append(out, Fig13Point{ToleranceUS: tol, RangeUS: rng, GapPerFlow: gap})
		}
	}
	return out
}

// Table2Row is one start strategy's analytic and simulated cost.
type Table2Row struct {
	Strategy       string
	BytesDelayed   string // analytic, in BDP
	MaxExtraBuffer string // analytic, in BDP
	SimExtraBDP    float64
}

// Table2 reproduces the start-strategy comparison: analytic values from
// §4.2.2 plus a simulated "extra buffer" measurement of a flow starting
// into a 50%-utilized link (n = 8 RTTs to line rate for the ramped
// strategies). The published seed (41) holds unless o overrides it; the
// scenario runs without the noise model by design (see below), so Perturb
// does not apply, and each strategy is a private engine, so a
// caller-supplied Recorder is not attached.
func Table2(o Options) []Table2Row {
	seed := o.seedOr(41)
	simulate := func(kind string) float64 {
		// The Table 2 analysis is an idealized start-transient argument;
		// measurement noise would blur the freeze threshold, so this
		// scenario builds the micro star directly, without the noise model
		// microNet installs.
		eng := sim.NewEngine()
		cfg := topo.DefaultConfig()
		cfg.LinkDelay = 3 * sim.Microsecond
		cfg.Seed = seed
		net := harness.New(topo.Star(eng, 4, cfg), seed, harness.WithFaults(o.Faults))
		recv := 3
		base := net.Topo.BaseRTT(0, recv)
		bdp := 100e9 / 8 * base.Seconds()
		// Background: one flow pinned at 50% utilization. Both flows are
		// paced, as the fluid analysis (and real NICs) assume.
		net.AddFlow(harness.Flow{Src: 0, Dst: recv, Size: 1 << 30, Prio: 0,
			Algo: &fixedRate{cwndPkts: bdp / 2000}, Paced: true})
		var algo cc.Algorithm
		switch kind {
		case "line-rate":
			// RDMA-style: a full window immediately; inflight is bounded
			// by the window, so at most ~1 BDP of extra queue.
			algo = &fixedRate{cwndPkts: bdp / 1000}
		case "exponential":
			algo = &rampStart{exponential: true, n: 8}
		case "linear":
			algo = &rampStart{n: 8}
		}
		net.AddFlow(harness.Flow{Src: 1, Dst: recv, Size: 1 << 30, Prio: 0,
			Algo: algo, StartAt: sim.Millisecond, Paced: true})
		var qBefore, qPeak int
		eng.At(sim.Millisecond-sim.Microsecond, func() {
			qBefore = net.Topo.Switches[0].Ports[recv].TotalQueuedBytes()
		})
		for i := 0; i < 400; i++ {
			eng.At(sim.Millisecond+sim.Time(i)*sim.Microsecond, func() {
				if q := net.Topo.Switches[0].Ports[recv].TotalQueuedBytes(); q > qPeak {
					qPeak = q
				}
			})
		}
		eng.RunUntil(sim.Millisecond + 400*sim.Microsecond)
		return float64(qPeak-qBefore) / bdp
	}
	return []Table2Row{
		{"line-rate", "0", "1 BDP", simulate("line-rate")},
		{"exponential", "n-3/2 BDP", "0.5 BDP", simulate("exponential")},
		{"linear", "n/2 BDP", "1/n BDP", simulate("linear")},
	}
}

// fixedRate holds a constant window (background traffic for Table 2).
type fixedRate struct {
	drv      cc.Driver
	cwndPkts float64
}

func (f *fixedRate) Start(drv cc.Driver)    { f.drv = drv }
func (f *fixedRate) OnAck(cc.Feedback)      {}
func (f *fixedRate) OnProbeAck(cc.Feedback) {}
func (f *fixedRate) OnRTO()                 {}
func (f *fixedRate) CwndBytes() float64     { return f.cwndPkts * float64(f.drv.MTU()) }
func (f *fixedRate) WantsECT() bool         { return false }
func (f *fixedRate) Name() string           { return "fixed" }

// rampStart reaches one BDP in n RTTs, linearly or exponentially — the
// sender model behind Table 2's analysis. Queue buildup is detected from
// the per-RTT minimum delay (transient bursts drain within the RTT; only a
// standing queue survives the minimum), one RTT late by construction —
// exactly the lag that creates the overshoot. On detection the sender
// reacts once (halves its window) and stops ramping.
type rampStart struct {
	frozen      bool
	drv         cc.Driver
	exponential bool
	n           int
	rttEnd      int64
	rtts        int
	cwnd        float64
	minDelay    sim.Time
}

func (r *rampStart) Start(drv cc.Driver) {
	r.drv = drv
	bdp := drv.LineRate().BDP(drv.BaseRTT()) / float64(drv.MTU())
	if r.exponential {
		r.cwnd = bdp / float64(int(1)<<r.n)
	} else {
		r.cwnd = bdp / float64(r.n)
	}
}

func (r *rampStart) OnAck(fb cc.Feedback) {
	if r.minDelay == 0 || fb.Delay < r.minDelay {
		r.minDelay = fb.Delay
	}
	// Queue buildup is observed through the ACK of a packet that crossed
	// the queue — inherently about one RTT after the sender caused it,
	// which is exactly the detection lag of the §4.2.2 analysis. React
	// once, then hold.
	if !r.frozen && fb.Delay > r.drv.BaseRTT()+400*sim.Nanosecond {
		r.frozen = true
		r.cwnd /= 2
	}
	if fb.Seq >= r.rttEnd {
		r.rttEnd = r.drv.SndNxt()
		r.rtts++
	}
	if r.frozen || r.rtts > r.n {
		return
	}
	// Ack-paced growth spreads each RTT's increase across the RTT, as the
	// fluid analysis assumes.
	ackedPkts := float64(fb.AckedBytes) / float64(r.drv.MTU())
	bdp := r.drv.LineRate().BDP(r.drv.BaseRTT()) / float64(r.drv.MTU())
	if r.exponential {
		r.cwnd += ackedPkts // doubles once per RTT
	} else {
		r.cwnd += bdp / float64(r.n) * ackedPkts / r.cwnd
	}
	if r.cwnd > bdp {
		r.cwnd = bdp
	}
}
func (r *rampStart) OnProbeAck(cc.Feedback) {}
func (r *rampStart) OnRTO()                 {}
func (r *rampStart) CwndBytes() float64     { return r.cwnd * float64(r.drv.MTU()) }
func (r *rampStart) WantsECT() bool         { return false }
func (r *rampStart) Name() string           { return "ramp" }

// AppDResult compares measured Swift delay fluctuation with the Appendix D
// bound.
type AppDResult struct {
	N           int
	MeasuredUS  float64
	BoundUS     float64
	WithinBound bool
}

// AppD measures the steady-state delay fluctuation of n synchronized
// Swift flows against the analytic bound n*W_AI/R + max(n*beta*W_AI /
// (R*T), mdf)*T.
func AppD(ns []int) []AppDResult {
	var out []AppDResult
	for _, n := range ns {
		net, eng := microNet(n+2, 43, nil, Options{})
		recv := n + 1
		base := net.Topo.BaseRTT(0, recv)
		var scfg cc.SwiftConfig
		for i := 0; i < n; i++ {
			scfg = cc.DefaultSwiftConfig(base, net.BDPPackets(i, recv))
			net.AddFlow(harness.Flow{Src: i, Dst: recv, Size: 1 << 30, Prio: 0,
				Algo: cc.NewSwift(scfg)})
		}
		minD, maxD := sim.Time(1<<62), sim.Time(0)
		for i := 0; i < 400; i++ {
			eng.At(2*sim.Millisecond+sim.Time(i)*5*sim.Microsecond, func() {
				q := net.Topo.Switches[0].Ports[recv].TotalQueuedBytes()
				d := sim.Time(float64(q) / (100e9 / 8) * 1e12)
				if d < minD {
					minD = d
				}
				if d > maxD {
					maxD = d
				}
			})
		}
		eng.RunUntil(4 * sim.Millisecond)
		target := float64(scfg.Target-base) / float64(sim.Microsecond)
		wai := scfg.AI * 1000 // bytes
		r := 100e9 / 8
		bound := float64(n)*wai/r*1e6 + max(float64(n)*scfg.Beta*wai/(r*target*1e-6)*1e-6, scfg.MaxMDF)*target
		measured := float64(maxD-minD) / float64(sim.Microsecond)
		out = append(out, AppDResult{
			N:          n,
			MeasuredUS: measured,
			BoundUS:    bound,
			// The bound is worst-case (synchronized flows); measured
			// fluctuation must not exceed it by more than jitter.
			WithinBound: measured <= bound*1.25+1,
		})
	}
	return out
}

// ChipRatio is one switch generation's buffer/bandwidth ratio (Fig 2).
type ChipRatio struct {
	Chip      string
	Year      int
	BufferMB  float64
	BandTbps  float64
	RatioMBpT float64
}

// Fig2 returns the buffer-per-bandwidth data of representative Broadcom
// switch chips, the paper's motivation for scarce lossless priorities.
// The data is static; Options is accepted for the uniform driver shape
// every registered spec shares and is otherwise unused.
func Fig2(o Options) []ChipRatio {
	_ = o
	data := []ChipRatio{
		{"Trident+", 2010, 9, 0.64, 0},
		{"Trident2", 2013, 12, 1.28, 0},
		{"Tomahawk", 2015, 16, 3.2, 0},
		{"Tomahawk2", 2016, 22, 6.4, 0},
		{"Tomahawk3", 2018, 64, 12.8, 0},
		{"Tomahawk4", 2020, 113, 25.6, 0},
	}
	for i := range data {
		data[i].RatioMBpT = data[i].BufferMB / data[i].BandTbps
	}
	return data
}

// Fig7Config sizes the delay-noise measurement.
type Fig7Config struct {
	// Samples is the number of noise draws for the CDF and the summary
	// statistics.
	Samples int
}

// DefaultFig7Config returns the suite's sampling size.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{Samples: 200_000}
}

// Fig7 returns the delay-noise CDF and summary statistics of the noise
// model, matching the paper's testbed measurement. The published RNG seed
// (47) holds unless o overrides it; Perturb does not apply (the draws are
// the measurement itself, not simulation inputs).
func Fig7(cfg Fig7Config, o Options) ([][2]float64, noise.Stats) {
	seed := o.seedOr(47)
	m := noise.NewLongTail(rand.New(rand.NewSource(seed)), 1)
	cdf := noise.CDF(m, cfg.Samples, 40)
	m2 := noise.NewLongTail(rand.New(rand.NewSource(seed)), 1)
	return cdf, noise.Measure(m2, cfg.Samples)
}
