package topo_test

import (
	"fmt"
	"testing"

	"prioplus/internal/fault"
	"prioplus/internal/netsim"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
)

// referenceRoutes is an independent reimplementation of the pre-dense-table
// routing algorithm: per-destination BFS over the current link state with a
// map-based result, exactly as switches stored routes before the arena
// rewrite. It shares no code with computeRoutes so the two can check each
// other.
func referenceRoutes(n *topo.Network) []map[int][]int32 {
	nh := len(n.Hosts)
	total := nh + len(n.Switches)
	swOf := make(map[*netsim.Switch]int, len(n.Switches))
	for i, sw := range n.Switches {
		swOf[sw] = nh + i
	}
	nodeOf := func(d netsim.Device) int {
		if h, ok := d.(*netsim.Host); ok {
			return h.ID
		}
		return swOf[d.(*netsim.Switch)]
	}
	type refEdge struct {
		peer int
		port int32
	}
	adj := make([][]refEdge, total)
	for i, sw := range n.Switches {
		for pi, p := range sw.Ports {
			if p.IsDown() || p.Peer.IsDown() {
				continue
			}
			adj[nh+i] = append(adj[nh+i], refEdge{peer: nodeOf(p.Peer.Owner), port: int32(pi)})
		}
	}
	for _, h := range n.Hosts {
		if h.NIC.IsDown() || h.NIC.Peer.IsDown() {
			continue
		}
		adj[h.ID] = append(adj[h.ID], refEdge{peer: nodeOf(h.NIC.Peer.Owner)})
	}

	out := make([]map[int][]int32, len(n.Switches))
	for i := range out {
		out[i] = make(map[int][]int32)
	}
	for dst := 0; dst < nh; dst++ {
		dist := make([]int, total)
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue := []int{dst}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range adj[u] {
				if dist[e.peer] < 0 {
					dist[e.peer] = dist[u] + 1
					queue = append(queue, e.peer)
				}
			}
		}
		for i := range n.Switches {
			si := nh + i
			if dist[si] < 0 {
				continue
			}
			var ports []int32
			for _, e := range adj[si] {
				if dist[e.peer] == dist[si]-1 {
					ports = append(ports, e.port)
				}
			}
			if len(ports) > 0 {
				out[i][dst] = ports
			}
		}
	}
	return out
}

// assertRoutesMatchReference diffs every switch's dense table against the
// reference map, both directions (no missing and no extra entries).
func assertRoutesMatchReference(t *testing.T, n *topo.Network) {
	t.Helper()
	ref := referenceRoutes(n)
	for i, sw := range n.Switches {
		for dst := 0; dst < len(n.Hosts); dst++ {
			got := sw.Route(dst)
			want := ref[i][dst]
			if len(got) != len(want) {
				t.Fatalf("switch %s dst %d: dense %v != reference %v", sw.Name, dst, got, want)
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("switch %s dst %d: dense %v != reference %v", sw.Name, dst, got, want)
				}
			}
		}
		if sw.RouteDests() > len(n.Hosts) {
			t.Fatalf("switch %s table covers %d dests, only %d hosts exist", sw.Name, sw.RouteDests(), len(n.Hosts))
		}
	}
}

// TestDenseRoutesMatchReference checks the arena-backed tables against the
// independent map-based BFS on every topology builder.
func TestDenseRoutesMatchReference(t *testing.T) {
	builders := []struct {
		name  string
		build func() *topo.Network
	}{
		{"star", func() *topo.Network { return topo.Star(sim.NewEngine(), 8, topo.DefaultConfig()) }},
		{"fattree-k4", func() *topo.Network { return topo.FatTree(sim.NewEngine(), 4, topo.DefaultConfig()) }},
		{"fattree-k6", func() *topo.Network { return topo.FatTree(sim.NewEngine(), 6, topo.DefaultConfig()) }},
		{"coflow-clos", func() *topo.Network { return topo.CoflowClos(sim.NewEngine(), topo.DefaultConfig()) }},
		{"spine-leaf", func() *topo.Network { return topo.SpineLeaf(sim.NewEngine(), 2, 6, 12, topo.DefaultConfig()) }},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			assertRoutesMatchReference(t, b.build())
		})
	}
}

// TestDenseRoutesMatchReferenceAfterRecompute downs links (both ends, as
// the fault layer does) and verifies the rebuilt dense tables still match
// the reference under the degraded link state, then again after recovery.
func TestDenseRoutesMatchReferenceAfterRecompute(t *testing.T) {
	n := topo.FatTree(sim.NewEngine(), 4, topo.DefaultConfig())
	// Down a couple of fabric links: pod0 edge0's first uplink and one
	// core-facing aggregation link.
	var downed []*netsim.Port
	for _, sw := range n.Switches {
		if sw.Name == "p0e0" || sw.Name == "p1a1" {
			for _, p := range sw.Ports {
				if _, isHost := p.Peer.Owner.(*netsim.Host); !isHost {
					p.SetDown(true)
					p.Peer.SetDown(true)
					downed = append(downed, p)
					break
				}
			}
		}
	}
	if len(downed) != 2 {
		t.Fatalf("downed %d links, want 2", len(downed))
	}
	n.RecomputeRoutes()
	assertRoutesMatchReference(t, n)

	// Recover and recompute: tables must converge back to the full set.
	for _, p := range downed {
		p.SetDown(false)
		p.Peer.SetDown(false)
	}
	n.RecomputeRoutes()
	assertRoutesMatchReference(t, n)
	pristine := topo.FatTree(sim.NewEngine(), 4, topo.DefaultConfig())
	for i, sw := range n.Switches {
		for dst := range n.Hosts {
			a, b := sw.Route(dst), pristine.Switches[i].Route(dst)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("switch %s dst %d: post-recovery %v != pristine %v", sw.Name, dst, a, b)
			}
		}
	}
}

// TestRecomputeRoutesZeroAlloc pins the control-plane cost: after the
// first build, recomputes reuse all scratch and every switch's arena.
func TestRecomputeRoutesZeroAlloc(t *testing.T) {
	n := topo.FatTree(sim.NewEngine(), 4, topo.DefaultConfig())
	n.RecomputeRoutes() // warm scratch
	if allocs := testing.AllocsPerRun(50, n.RecomputeRoutes); allocs != 0 {
		t.Errorf("RecomputeRoutes allocates %.1f objects/run, want 0", allocs)
	}
}

// TestRecomputeRoutesUnderFaultPlan runs an actual flap through the fault
// layer and checks the dense tables stay consistent with the reference at
// both edges of the flap window (mirrors how production recomputes fire).
func TestRecomputeRoutesUnderFaultPlan(t *testing.T) {
	eng := sim.NewEngine()
	cfg := topo.DefaultConfig()
	cfg.LinkDelay = 1 * sim.Microsecond
	n := topo.FatTree(eng, 4, cfg)
	plan := fault.NewPlan(1).Flap(50*sim.Microsecond, 100*sim.Microsecond,
		fault.Link("p0e0", "p0a0"))
	inj := plan.Install(n)
	if inj == nil {
		t.Fatal("plan did not install")
	}
	eng.RunUntil(100 * sim.Microsecond) // mid-flap
	assertRoutesMatchReference(t, n)
	eng.RunUntil(200 * sim.Microsecond) // recovered
	assertRoutesMatchReference(t, n)
}
