package obs

import "io"

// FlightRecorder keeps the last N trace events in a fixed-size ring. It
// implements Tracer, so it installs anywhere a trace sink does, but unlike
// JSONLSink it costs no I/O while the run is healthy: events overwrite the
// oldest slot, and the ring is only read out when something goes wrong
// (typically a Watchdog trip). Recording is zero-alloc: events are value
// copies into a preallocated buffer.
type FlightRecorder struct {
	buf   []Event
	next  int
	total int64

	// Inner, when non-nil, also receives every event (chaining lets a run
	// keep a full JSONL trace and a crash ring at once).
	Inner Tracer
}

// NewFlightRecorder returns a ring holding the most recent size events.
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		panic("obs: flight recorder size must be positive")
	}
	return &FlightRecorder{buf: make([]Event, 0, size)}
}

// Trace implements Tracer.
func (f *FlightRecorder) Trace(ev Event) {
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, ev)
	} else {
		f.buf[f.next] = ev
	}
	f.next++
	if f.next == cap(f.buf) {
		f.next = 0
	}
	f.total++
	if f.Inner != nil {
		f.Inner.Trace(ev)
	}
}

// Total returns the number of events recorded over the ring's lifetime
// (including overwritten ones).
func (f *FlightRecorder) Total() int64 { return f.total }

// Events returns the retained events, oldest first.
func (f *FlightRecorder) Events() []Event {
	if len(f.buf) < cap(f.buf) {
		return append([]Event(nil), f.buf...)
	}
	out := make([]Event, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	return append(out, f.buf[:f.next]...)
}

// Dump writes the retained events to w as JSONL (same schema as JSONLSink),
// oldest first, and returns the number written.
func (f *FlightRecorder) Dump(w io.Writer) (int, error) {
	sink := NewJSONLSink(w)
	evs := f.Events()
	for _, ev := range evs {
		sink.Trace(ev)
	}
	return len(evs), sink.Flush()
}

// Watchdog trips when a run's resource gauges exceed configured ceilings.
// It exists for runs like fig18's "Physical* w/o CC", where an uncontrolled
// sender can grow in-flight state without bound: instead of the process
// dying on an OOM minutes later, the watchdog fires at a defined threshold,
// the flight recorder's recent events are dumped for diagnosis, and the run
// stops with partial results.
//
// The harness checks the watchdog at every sampler tick (simulated-time
// driven, so trips are deterministic and independent of wall clock or
// worker count).
type Watchdog struct {
	// MaxInflightBytes trips on the run's live packet bytes (every packet
	// currently held by queues, the event heap, or the network). 0 disables.
	MaxInflightBytes int64
	// MaxHeapEvents trips on the engine's pending-event count. 0 disables.
	MaxHeapEvents int64
	// OnTrip, when non-nil, runs once at the trip (dump the flight
	// recorder, write a note). The run is stopped after it returns unless
	// KeepRunning is set.
	OnTrip func(reason string, value, limit int64)
	// KeepRunning makes a trip record-and-continue instead of stopping the
	// run.
	KeepRunning bool

	tripped string
}

// Check evaluates the gauges, firing the trip logic the first time a
// ceiling is exceeded. It returns true while the watchdog is tripped.
func (w *Watchdog) Check(inflightBytes, heapEvents int64) bool {
	if w.tripped != "" {
		return true
	}
	switch {
	case w.MaxInflightBytes > 0 && inflightBytes > w.MaxInflightBytes:
		w.trip("inflight_bytes", inflightBytes, w.MaxInflightBytes)
	case w.MaxHeapEvents > 0 && heapEvents > w.MaxHeapEvents:
		w.trip("heap_events", heapEvents, w.MaxHeapEvents)
	}
	return w.tripped != ""
}

func (w *Watchdog) trip(reason string, value, limit int64) {
	w.tripped = reason
	if w.OnTrip != nil {
		w.OnTrip(reason, value, limit)
	}
}

// Tripped returns the trip reason ("inflight_bytes", "heap_events"), or ""
// while the watchdog is healthy.
func (w *Watchdog) Tripped() string { return w.tripped }
