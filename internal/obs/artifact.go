package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Artifact is the on-disk record of one run's telemetry: metric snapshot,
// time series, and histogram summaries, serialized as JSONL (one typed
// record per line) so large timelines stream without a giant in-memory
// document. WriteArtifact emits it after a run; ReadArtifact loads it back
// for `prioplus-sim report`. This is a post-run format — it uses
// encoding/json, not the hand-rolled trace encoder, because it is written
// once per run, not once per packet.
//
// Line types:
//
//	{"type":"meta","v":2,"run":...,"interval_us":...,"start_us":...,"watchdog":...,"fp":...,"fp_events":N}
//	{"type":"sample","i":0,"t_us":...,"v":[...]}          // one per tick
//	{"type":"hist","name":...,"unit":...,"count":...,...}  // one per histogram
//	{"type":"metric","name":...,"v":...}                   // one per metric
//	{"type":"fault","t_us":...,"kind":...,"dev":...,"port":N} // one per fault event
//	{"type":"flow","flow":...,"spans":N,"dropped":D}       // one per traced flow
//	{"type":"span","flow":...,"t_us":...,"kind":...,...}   // one per span
//	{"type":"ckpt","n":...,"t_us":...,"h":"<16-hex>"}      // one per digest checkpoint
//
// The meta line declares the series column order; every sample line's "v"
// array aligns with it. Span lines follow their flow line, in recording
// order (not globally time-sorted; renderers sort by t_us).
//
// Versioning: the meta line carries a schema version ("v", see
// ArtifactVersion). Readers must tolerate forward evolution — unknown JSON
// fields are ignored (encoding/json semantics) and unknown line types are
// skipped, counted in Artifact.Unknown — so streamed and on-disk artifacts
// from newer writers still load.
type Artifact struct {
	Run         string
	Version     int // meta-line schema version; 0 for pre-versioned artifacts
	Unknown     int // lines with an unrecognized type, skipped on read
	IntervalUS  float64
	StartUS     float64
	Watchdog    string // watchdog trip reason, "" when healthy
	Fingerprint string // final digest chain (16 hex digits), "" when off
	FPEvents    uint64 // events folded into the fingerprint
	Series      []ArtifactSeries
	Hists       []ArtifactHist
	Metrics     []ArtifactMetric
	Faults      []ArtifactFault
	Flows       []ArtifactFlow
	Ckpts       []ArtifactCkpt
}

// ArtifactCkpt is one digest checkpoint: the chain value after N events
// with the simulated clock at TUS. prioplus-sim diff aligns two runs'
// checkpoints by N to localize the first divergent event window.
type ArtifactCkpt struct {
	N     uint64  // dispatched events folded so far
	TUS   float64 // simulated time of the N-th event
	Chain string  // chain hash after it, 16 hex digits
}

// ArtifactFault is one executed fault event (link flap edge or reboot).
type ArtifactFault struct {
	TUS  float64
	Kind string
	Dev  string
	Port int
}

// ArtifactSeries is one reconstructed time-series column.
type ArtifactSeries struct {
	Name string    `json:"name"`
	Unit string    `json:"unit"`
	V    []float64 `json:"-"`
}

// ArtifactHist is one histogram summary.
type ArtifactHist struct {
	Name    string     `json:"name"`
	Unit    string     `json:"unit"`
	Count   int64      `json:"count"`
	Mean    float64    `json:"mean"`
	Min     int64      `json:"min"`
	Max     int64      `json:"max"`
	P50     int64      `json:"p50"`
	P90     int64      `json:"p90"`
	P99     int64      `json:"p99"`
	P999    int64      `json:"p999"`
	Buckets [][3]int64 `json:"buckets,omitempty"` // [lo, hi, count]
}

// ArtifactMetric is one end-of-run metric value.
type ArtifactMetric struct {
	Name string  `json:"name"`
	V    float64 `json:"v"`
}

// ArtifactFlow is one traced flow's reconstructed timeline.
type ArtifactFlow struct {
	ID      int64
	Dropped int64 // spans lost to ring overflow
	Spans   []ArtifactSpan
}

// ArtifactSpan is one serialized timeline span; field semantics follow the
// SpanKind documentation in flowtrace.go.
type ArtifactSpan struct {
	TUS     float64
	Kind    string
	Seq     int64
	DelayUS float64
	Dev     string
	A, B    float64
}

// ArtifactVersion is the schema version stamped on every meta line ("v").
// Bump it when a change would confuse an old reader; additive fields and
// new line types do not require a bump (readers skip what they don't know).
// v2 added the execution fingerprint: "fp"/"fp_events" on the meta line
// and "ckpt" checkpoint lines.
const ArtifactVersion = 2

// artifactMeta is the meta line's own shape. It is separate from
// artifactLine because both use the "v" key — schema version here, the
// sample value array there.
type artifactMeta struct {
	Type       string           `json:"type"`
	V          int              `json:"v"`
	Run        string           `json:"run,omitempty"`
	IntervalUS float64          `json:"interval_us,omitempty"`
	StartUS    float64          `json:"start_us,omitempty"`
	Watchdog   string           `json:"watchdog,omitempty"`
	FP         string           `json:"fp,omitempty"`
	FPEvents   uint64           `json:"fp_events,omitempty"`
	Series     []ArtifactSeries `json:"series,omitempty"`
}

type artifactLine struct {
	Type       string           `json:"type"`
	Run        string           `json:"run,omitempty"`
	IntervalUS float64          `json:"interval_us,omitempty"`
	StartUS    float64          `json:"start_us,omitempty"`
	Watchdog   string           `json:"watchdog,omitempty"`
	Series     []ArtifactSeries `json:"series,omitempty"`
	I          int              `json:"i,omitempty"`
	TUS        float64          `json:"t_us,omitempty"`
	V          []float64        `json:"v,omitempty"`
	Hist       *ArtifactHist    `json:"hist,omitempty"`
	Metric     *ArtifactMetric  `json:"metric,omitempty"`
	Flow       int64            `json:"flow,omitempty"`
	Spans      int              `json:"spans,omitempty"`
	Dropped    int64            `json:"dropped,omitempty"`
	Kind       string           `json:"kind,omitempty"`
	Seq        int64            `json:"seq,omitempty"`
	DelayUS    float64          `json:"delay_us,omitempty"`
	Dev        string           `json:"dev,omitempty"`
	Port       int              `json:"port,omitempty"`
	A          float64          `json:"a,omitempty"`
	B          float64          `json:"b,omitempty"`
	N          uint64           `json:"n,omitempty"`
	H          string           `json:"h,omitempty"`
}

// WriteArtifact serializes a run's telemetry to w. Series, histograms, and
// metrics are each optional: whatever the recorder has enabled is emitted.
func WriteArtifact(w io.Writer, run string, rec *Recorder) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)

	meta := artifactMeta{Type: "meta", V: ArtifactVersion, Run: run}
	if rec.Watchdog != nil {
		meta.Watchdog = rec.Watchdog.Tripped()
	}
	if rec.Digest != nil {
		meta.FP = fmt.Sprintf("%016x", rec.Digest.Chain)
		meta.FPEvents = rec.Digest.Count
	}
	if rec.Series != nil {
		meta.IntervalUS = rec.Series.Interval.Micros()
		meta.StartUS = rec.Series.Start.Micros()
		for _, s := range rec.Series.All() {
			meta.Series = append(meta.Series, ArtifactSeries{Name: s.Name, Unit: s.Unit})
		}
	}
	if err := enc.Encode(meta); err != nil {
		return err
	}

	if rec.Digest != nil {
		// Checkpoints go right after the meta line so diff can localize a
		// divergence window without scanning past a large series body.
		for _, c := range rec.Digest.Ckpts {
			line := artifactLine{
				Type: "ckpt", N: c.Count, TUS: c.Clock.Micros(),
				H: fmt.Sprintf("%016x", c.Chain),
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	if rec.Series != nil {
		all := rec.Series.All()
		row := make([]float64, len(all))
		for i := 0; i < rec.Series.Ticks(); i++ {
			for j, s := range all {
				row[j] = s.V[i]
			}
			line := artifactLine{Type: "sample", I: i, TUS: rec.Series.TimeAt(i).Micros(), V: row}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	if rec.Hist != nil {
		for _, h := range rec.Hist.All() {
			if err := enc.Encode(artifactLine{Type: "hist", Hist: summarizeHist(h)}); err != nil {
				return err
			}
		}
	}
	if rec.Metrics != nil {
		for _, name := range rec.Metrics.Names() {
			v, _ := rec.Metrics.Value(name)
			if err := enc.Encode(artifactLine{Type: "metric", Metric: &ArtifactMetric{Name: name, V: v}}); err != nil {
				return err
			}
		}
	}
	if rec.Faults != nil {
		for _, ev := range rec.Faults.Events {
			line := artifactLine{
				Type: "fault", TUS: ev.T.Micros(),
				Kind: ev.Kind, Dev: ev.Dev, Port: ev.Port,
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	if rec.FlowTrace != nil {
		for _, fl := range rec.FlowTrace.Logs() {
			head := artifactLine{Type: "flow", Flow: fl.Flow, Spans: fl.Len(), Dropped: fl.Dropped}
			if err := enc.Encode(head); err != nil {
				return err
			}
			var encErr error
			fl.Spans(func(sp Span) {
				if encErr != nil {
					return
				}
				encErr = enc.Encode(artifactLine{
					Type: "span", Flow: fl.Flow, TUS: sp.T.Micros(),
					Kind: sp.Kind.String(), Seq: sp.Seq, DelayUS: sp.Delay.Micros(),
					Dev: sp.Dev, A: sp.A, B: sp.B,
				})
			})
			if encErr != nil {
				return encErr
			}
		}
	}
	return bw.Flush()
}

// summarizeHist flattens a histogram into its artifact form.
func summarizeHist(h *Histogram) *ArtifactHist {
	out := &ArtifactHist{
		Name:  h.Name,
		Unit:  h.Unit,
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
	h.Buckets(func(lo, hi, count int64) {
		out.Buckets = append(out.Buckets, [3]int64{lo, hi, count})
	})
	return out
}

// ReadArtifact parses an artifact stream written by WriteArtifact,
// reassembling the per-sample rows into per-series columns.
func ReadArtifact(r io.Reader) (*Artifact, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	art := &Artifact{}
	n := 0
	for sc.Scan() {
		n++
		if len(sc.Bytes()) == 0 {
			continue
		}
		// The "v" key is polymorphic (version on meta, value array on
		// sample), so probe the type before committing to a shape. Unknown
		// types and unknown fields are skipped, not errors: artifacts from
		// newer writers must stay readable.
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return nil, fmt.Errorf("artifact line %d: %w", n, err)
		}
		if probe.Type == "meta" {
			var m artifactMeta
			if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
				return nil, fmt.Errorf("artifact line %d: %w", n, err)
			}
			art.Run = m.Run
			art.Version = m.V
			art.IntervalUS = m.IntervalUS
			art.StartUS = m.StartUS
			art.Watchdog = m.Watchdog
			art.Fingerprint = m.FP
			art.FPEvents = m.FPEvents
			art.Series = m.Series
			continue
		}
		switch probe.Type {
		case "sample", "hist", "metric", "fault", "flow", "span", "ckpt":
		default:
			// A line type from a newer writer: skip it without attempting
			// to decode (its fields may not fit this schema), keep count.
			art.Unknown++
			continue
		}
		var line artifactLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("artifact line %d: %w", n, err)
		}
		switch line.Type {
		case "sample":
			if len(line.V) != len(art.Series) {
				return nil, fmt.Errorf("artifact line %d: sample has %d values for %d series", n, len(line.V), len(art.Series))
			}
			for j := range line.V {
				art.Series[j].V = append(art.Series[j].V, line.V[j])
			}
		case "hist":
			if line.Hist != nil {
				art.Hists = append(art.Hists, *line.Hist)
			}
		case "metric":
			if line.Metric != nil {
				art.Metrics = append(art.Metrics, *line.Metric)
			}
		case "fault":
			art.Faults = append(art.Faults, ArtifactFault{
				TUS: line.TUS, Kind: line.Kind, Dev: line.Dev, Port: line.Port,
			})
		case "flow":
			art.Flows = append(art.Flows, ArtifactFlow{ID: line.Flow, Dropped: line.Dropped})
			if line.Spans > 0 {
				art.Flows[len(art.Flows)-1].Spans = make([]ArtifactSpan, 0, line.Spans)
			}
		case "span":
			fl := art.flow(line.Flow)
			if fl == nil {
				return nil, fmt.Errorf("artifact line %d: span for undeclared flow %d", n, line.Flow)
			}
			fl.Spans = append(fl.Spans, ArtifactSpan{
				TUS: line.TUS, Kind: line.Kind, Seq: line.Seq,
				DelayUS: line.DelayUS, Dev: line.Dev, A: line.A, B: line.B,
			})
		case "ckpt":
			art.Ckpts = append(art.Ckpts, ArtifactCkpt{N: line.N, TUS: line.TUS, Chain: line.H})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return art, nil
}

// flow returns the declared flow record with the given ID, nil if absent.
// Writers emit span lines right after their flow line, so the linear scan
// almost always hits the last element.
func (a *Artifact) flow(id int64) *ArtifactFlow {
	for i := len(a.Flows) - 1; i >= 0; i-- {
		if a.Flows[i].ID == id {
			return &a.Flows[i]
		}
	}
	return nil
}

// TimeAtUS returns the microsecond timestamp of sample i.
func (a *Artifact) TimeAtUS(i int) float64 {
	return a.StartUS + float64(i+1)*a.IntervalUS
}
