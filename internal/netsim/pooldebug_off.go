//go:build !simdebug

package netsim

// poolDebug gates the packet-pool poison checks. In the default build it is
// a false constant, so every check compiles away to nothing.
const poolDebug = false
