package obs

import (
	"os"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync/atomic"
	"time"

	"prioplus/internal/sim"
)

// DefaultRuntimeEvery is the default host-gauge refresh stride: the
// RuntimeSampler re-reads process state every this many series ticks and
// holds the values in between. Series ticks fire every ~10 µs of simulated
// time; refreshing each tick would cost more than the simulation itself
// (runtime/metrics + /proc reads are microseconds each), so the gauges are
// step functions by design.
const DefaultRuntimeEvery = 64

// HostGauges is one snapshot of the simulator process itself.
type HostGauges struct {
	// RSSBytes is the resident set size from /proc/self/statm (0 when the
	// proc filesystem is unavailable, e.g. non-Linux hosts).
	RSSBytes float64
	// HeapBytes is the live heap (runtime/metrics heap objects bytes).
	HeapBytes float64
	// GCCycles is the completed GC cycle count.
	GCCycles float64
	// GCPauseUS is the cumulative stop-the-world pause time, microseconds.
	GCPauseUS float64
	// Goroutines is the current goroutine count.
	Goroutines float64
}

// NewHostGaugeReader returns a snapshot function over warm, reusable
// reader state (for callers outside the sampler, e.g. the stream server's
// /metrics endpoint). The returned function is not safe for concurrent
// use.
func NewHostGaugeReader() func() HostGauges {
	h := newHostReader()
	return h.Read
}

// hostReader reads HostGauges with warm, reusable state: the
// runtime/metrics sample slice, the GC pause history buffer, and an open
// /proc/self/statm handle (read via ReadAt, so no seek state).
type hostReader struct {
	samples  []metrics.Sample
	gc       debug.GCStats
	statm    *os.File
	statmErr bool
	buf      [80]byte
	pageSize float64
}

// newHostReader prepares the runtime/metrics sample set.
func newHostReader() *hostReader {
	return &hostReader{
		samples: []metrics.Sample{
			{Name: "/memory/classes/heap/objects:bytes"},
			{Name: "/gc/cycles/total:gc-cycles"},
		},
		pageSize: float64(os.Getpagesize()),
	}
}

// Read takes one snapshot.
func (h *hostReader) Read() HostGauges {
	var g HostGauges
	metrics.Read(h.samples)
	if v := h.samples[0].Value; v.Kind() == metrics.KindUint64 {
		g.HeapBytes = float64(v.Uint64())
	}
	if v := h.samples[1].Value; v.Kind() == metrics.KindUint64 {
		g.GCCycles = float64(v.Uint64())
	}
	debug.ReadGCStats(&h.gc)
	g.GCPauseUS = float64(h.gc.PauseTotal) / 1e3
	g.Goroutines = float64(runtime.NumGoroutine())
	g.RSSBytes = h.readRSS()
	return g
}

// readRSS parses the resident-pages field of /proc/self/statm.
func (h *hostReader) readRSS() float64 {
	if h.statmErr {
		return 0
	}
	if h.statm == nil {
		f, err := os.Open("/proc/self/statm")
		if err != nil {
			h.statmErr = true
			return 0
		}
		h.statm = f
	}
	n, err := h.statm.ReadAt(h.buf[:], 0)
	if n <= 0 && err != nil {
		return 0
	}
	// statm: "size resident shared ..." in pages; take field 2.
	b := h.buf[:n]
	i := 0
	for i < len(b) && b[i] != ' ' {
		i++
	}
	i++
	var pages float64
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		pages = pages*10 + float64(b[i]-'0')
		i++
	}
	return pages * h.pageSize
}

// RuntimeSampler merges host-process gauges into a run's SeriesSet so the
// artifact carries the simulator's own runtime behavior next to the
// simulated gauges: RSS, heap, GC activity, goroutines, instantaneous
// events/sec, and the wall-vs-sim time ratio.
//
// The sampler piggybacks on the existing engine sampling clock: the
// harness calls Tick before each SeriesSet.Sample, and every Every ticks
// (DefaultRuntimeEvery when zero) the snapshot is refreshed; between
// refreshes the registered sources repeat the held values. The rate gauges
// (events/sec, wall-per-sim) are measured over the refresh window.
//
// Host gauges are wall-clock facts, so enabling the sampler makes the
// artifact nondeterministic across machines and runs — it is opt-in
// (`-runtime`) and never part of the determinism-checked default series.
type RuntimeSampler struct {
	// Every is the refresh stride in series ticks; 0 means
	// DefaultRuntimeEvery.
	Every int

	host *hostReader
	tick int

	// Refresh-window state for the rate gauges.
	lastWall   time.Time
	lastSim    sim.Time
	lastEvents uint64

	// Held snapshot, repeated between refreshes.
	cur        HostGauges
	evPerSec   float64
	wallPerSim float64
}

// Register adds the runtime series to ss, reading engine progress from
// eng. Call once, after the simulated sources, so the deterministic
// columns keep their positions.
func (r *RuntimeSampler) Register(ss *SeriesSet, eng *sim.Engine) {
	r.host = newHostReader()
	ss.Add("runtime/rss_bytes", "bytes", func() float64 { return r.cur.RSSBytes })
	ss.Add("runtime/heap_bytes", "bytes", func() float64 { return r.cur.HeapBytes })
	ss.Add("runtime/gc_cycles", "cycles", func() float64 { return r.cur.GCCycles })
	ss.Add("runtime/gc_pause_us", "us", func() float64 { return r.cur.GCPauseUS })
	ss.Add("runtime/goroutines", "goroutines", func() float64 { return r.cur.Goroutines })
	ss.Add("runtime/events_per_sec", "events/s", func() float64 { return r.evPerSec })
	ss.Add("runtime/wall_per_sim", "ratio", func() float64 { return r.wallPerSim })
	// Prime the window so the first refresh reports rates over real time.
	r.lastWall = time.Now()
	r.lastSim = eng.Now()
	r.lastEvents = eng.Processed()
	r.cur = r.host.Read()
}

// Tick advances the refresh countdown; the harness calls it right before
// SeriesSet.Sample on every sampling tick.
func (r *RuntimeSampler) Tick(eng *sim.Engine) {
	every := r.Every
	if every <= 0 {
		every = DefaultRuntimeEvery
	}
	r.tick++
	if r.tick%every != 0 {
		return
	}
	r.cur = r.host.Read()
	wall := time.Now()
	dWall := wall.Sub(r.lastWall).Seconds()
	if dWall > 0 {
		ev := eng.Processed()
		r.evPerSec = float64(ev-r.lastEvents) / dWall
		r.lastEvents = ev
		if dSim := (eng.Now() - r.lastSim).Seconds(); dSim > 0 {
			r.wallPerSim = dWall / dSim
		}
		r.lastSim = eng.Now()
		r.lastWall = wall
	}
}

// LiveRun is the lock-free bridge between a running simulation and the
// live endpoints: the harness sampling hook stores into these atomics from
// the run's goroutine, and the stream server reads them from HTTP handler
// goroutines. One LiveRun belongs to one runner.RunState.
type LiveRun struct {
	// Events is the number of engine events dispatched so far across the
	// run's engine (accumulated, so multi-phase runs keep counting).
	Events atomic.Uint64
	// SimPS is the simulated clock in picoseconds.
	SimPS atomic.Int64
	// InflightBytes is the current in-flight byte gauge (packets alive in
	// the fabric).
	InflightBytes atomic.Int64
	// HeapEvents is the engine's pending-event count.
	HeapEvents atomic.Int64
	// WatchdogLimit is the watchdog's in-flight byte ceiling, 0 when no
	// watchdog is armed; with InflightBytes it gives watchdog proximity.
	WatchdogLimit atomic.Int64
}
