package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prioplus/internal/obs"
)

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"0": 0, "1024": 1024,
		"4k": 4 << 10, "4K": 4 << 10,
		"128m": 128 << 20, "2G": 2 << 30,
	}
	for in, want := range cases {
		got, err := parseBytes(in)
		if err != nil || got != want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "-1", "-4k", "1t", "k"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q) accepted", bad)
		}
	}
}

func TestSanitizeTag(t *testing.T) {
	cases := map[string]string{
		"incast":           "incast",
		"Physical* w/o CC": "Physical--w-o-CC",
		"baseline/Swift":   "baseline-Swift",
		"pp/np=8":          "pp-np-8",
		"a.b_c-D9":         "a.b_c-D9",
	}
	for in, want := range cases {
		if got := obs.SanitizeTag(in); got != want {
			t.Errorf("obs.SanitizeTag(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestObsSinkArtifactNaming: one artifact per recorder, deduped stems, and
// flush writes them where -series pointed.
func TestObsSinkArtifactNaming(t *testing.T) {
	dir := t.TempDir()
	sink := newObsSink(obsOpts{dir: dir}, "fig99", 7)
	if sink == nil {
		t.Fatal("sink disabled despite -series dir")
	}
	sink.Recorder("a/b")
	sink.Recorder("a/b") // same tag twice: must not clobber
	var out bytes.Buffer
	if err := sink.flush(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig99__a-b__seed7.jsonl", "fig99__a-b__seed7-2.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("artifact %s not written: %v", want, err)
		}
	}
}

func TestObsSinkDisabled(t *testing.T) {
	if s := newObsSink(obsOpts{}, "fig99", 1); s != nil {
		t.Error("sink created with no obs flags set")
	}
}

// TestReportRoundTrip: an artifact written by the sink renders through the
// report path without error and mentions its run and series.
func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sink := newObsSink(obsOpts{dir: dir, hist: true}, "figX", 1)
	rec := sink.Recorder("tag")
	rec.Series.Add("net/test_series", "bytes", func() float64 { return 42 })
	for i := 0; i < 5; i++ {
		rec.Series.Sample()
	}
	rec.Hist.FCT.Observe(1000)
	rec.Metrics.Counter("net/things").Add(3)
	var out bytes.Buffer
	if err := sink.flush(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "transport/fct") {
		t.Errorf("-hist summary missing from flush output:\n%s", out.String())
	}

	var rep bytes.Buffer
	path := filepath.Join(dir, "figX__tag__seed1.jsonl")
	if err := reportFile(&rep, path, 40); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`run "tag"`, "net/test_series", "net/things", "transport/fct"} {
		if !strings.Contains(rep.String(), want) {
			t.Errorf("report missing %q:\n%s", want, rep.String())
		}
	}
}

// TestExpandArtifactArgs pins the report/trace argument contract: missing
// paths and artifact-less directories are loud errors, never an empty
// report; directories expand to their artifacts in sorted order.
func TestExpandArtifactArgs(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"b.jsonl", "a.jsonl"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := expandArtifactArgs([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("expanded %v, want %v", got, want)
	}

	if _, err := expandArtifactArgs([]string{filepath.Join(dir, "missing.jsonl")}); err == nil {
		t.Error("missing file accepted")
	}
	empty := t.TempDir()
	_, err = expandArtifactArgs([]string{empty})
	if err == nil || !strings.Contains(err.Error(), "no artifacts") {
		t.Errorf("empty dir error = %v, want a no-artifacts message", err)
	}
}

// TestReportAndTraceExitNonZeroOnBadDir drives the subcommands end to end:
// a missing directory and an empty directory both exit 1 with a message,
// instead of rendering an empty table.
func TestReportAndTraceExitNonZeroOnBadDir(t *testing.T) {
	empty := t.TempDir()
	missing := filepath.Join(empty, "nope")
	for _, args := range [][]string{{missing}, {empty}} {
		if code := runReport(args); code == 0 {
			t.Errorf("report %v exited 0", args)
		}
		if code := runTrace(args); code == 0 {
			t.Errorf("trace %v exited 0", args)
		}
	}
}

// TestTraceNoFlowsInArtifact: an artifact recorded without -trace-flows
// renders as an error pointing at the flag, not as an empty timeline.
func TestTraceNoFlowsInArtifact(t *testing.T) {
	dir := t.TempDir()
	sink := newObsSink(obsOpts{dir: dir}, "figX", 1)
	sink.Recorder("tag")
	if err := sink.flush(io.Discard); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := traceFile(&out, filepath.Join(dir, "figX__tag__seed1.jsonl"), nil, 3)
	if err == nil || !strings.Contains(err.Error(), "-trace-flows") {
		t.Fatalf("err = %v, want a hint to record with -trace-flows", err)
	}
}

// TestTraceRendersFlowTimeline: a sink-written artifact with flow spans
// renders journeys and decisions, and selecting an untraced flow errors.
func TestTraceRendersFlowTimeline(t *testing.T) {
	dir := t.TempDir()
	sink := newObsSink(obsOpts{dir: dir, traceFlows: 4}, "figX", 1)
	rec := sink.Recorder("tag")
	fl := rec.FlowTrace.Admit(3)
	fl.Add(obs.Span{T: 0, Kind: obs.SpanDecStart, A: 25.8, B: 28.2})
	fl.Add(obs.Span{T: 2_000_000, Kind: obs.SpanHop, Seq: 1500, Delay: 400_000, Dev: "star", A: 4096})
	fl.Add(obs.Span{T: 3_000_000, Kind: obs.SpanDeliver, Seq: 1500, Delay: 1_000_000})
	fl.Add(obs.Span{T: 4_000_000, Kind: obs.SpanAcked, Seq: 1500, Delay: 2_000_000, A: 9000, B: 4500})
	fl.Add(obs.Span{T: 5_000_000, Kind: obs.SpanDecYield, Delay: 28_500_000, A: 2.2, B: 2})
	fl.Add(obs.Span{T: 6_000_000, Kind: obs.SpanDecResume, Delay: 14_000_000, A: 1})
	if err := sink.flush(io.Discard); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "figX__tag__seed1.jsonl")
	var out bytes.Buffer
	if err := traceFile(&out, path, nil, -1); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"flow 3", "journey seq=1500", "hop star", "rtt=2.00us",
		"yield", "stop sending", "yielded 1 time(s)", "channel [25.8us, 28.2us]",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("trace output missing %q:\n%s", want, out.String())
		}
	}
	if err := traceFile(io.Discard, path, []int64{99}, 3); err == nil {
		t.Error("selecting an untraced flow did not error")
	}
}

// TestResolveTraceNeedsSeries: flow tracing without -series has nowhere to
// deliver spans, so resolve rejects it up front.
func TestResolveTraceNeedsSeries(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	flags := addObsFlags(fs)
	if err := fs.Parse([]string{"-trace-flows", "4"}); err != nil {
		t.Fatal(err)
	}
	if _, err := flags.resolve(); err == nil || !strings.Contains(err.Error(), "-series") {
		t.Fatalf("resolve = %v, want a -series requirement error", err)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	flags = addObsFlags(fs)
	dir := t.TempDir()
	if err := fs.Parse([]string{"-trace-match", "1, 7", "-series", dir}); err != nil {
		t.Fatal(err)
	}
	o, err := flags.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(o.traceMatch) != 2 || o.traceMatch[0] != 1 || o.traceMatch[1] != 7 {
		t.Errorf("traceMatch = %v, want [1 7]", o.traceMatch)
	}
	// -trace-match alone sizes the tracer cap to the match list.
	sink := newObsSink(o, "figX", 1)
	rec := sink.Recorder("tag")
	if rec.FlowTrace == nil || rec.FlowTrace.MaxFlows != 2 {
		t.Fatalf("FlowTrace cap = %+v, want MaxFlows 2", rec.FlowTrace)
	}
}
