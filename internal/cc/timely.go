package cc

import (
	"math"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// TIMELYConfig parameterizes TIMELY [Mittal et al., SIGCOMM'15], the
// RTT-gradient rate controller the paper cites as the other delay-signal
// family (§3.2 mentions delay gradient as a multi-bit signal). TIMELY
// reacts to the *slope* of the RTT rather than its distance to a target,
// with hard thresholds Tlow/Thigh guarding the gradient regime.
type TIMELYConfig struct {
	// Alpha is the EWMA weight for the RTT-difference filter.
	Alpha float64
	// Beta is the multiplicative-decrease factor.
	Beta float64
	// AddStep is the additive increase per completion event, bytes/s.
	AddStep float64
	// TLow/THigh bound the gradient regime: below TLow always increase,
	// above THigh always decrease.
	TLow, THigh sim.Time
	// MinRTT normalizes the gradient.
	MinRTT sim.Time
	// MinRate/MaxRate bound the rate in bytes/s.
	MinRate, MaxRate float64
	// HAIThreshold: consecutive gradient-negative completions before
	// hyper-active increase (5 in the paper).
	HAIThreshold int
}

// DefaultTIMELYConfig returns TIMELY parameters scaled to the path.
func DefaultTIMELYConfig(baseRTT sim.Time, lineBps float64) TIMELYConfig {
	return TIMELYConfig{
		Alpha:        0.875,
		Beta:         0.8,
		AddStep:      lineBps / 8 / 100, // 1% of line rate per event
		TLow:         baseRTT + 2*sim.Microsecond,
		THigh:        baseRTT + 24*sim.Microsecond,
		MinRTT:       baseRTT,
		MinRate:      lineBps / 8 / 1000,
		MaxRate:      lineBps / 8,
		HAIThreshold: 5,
	}
}

// TIMELY implements the TIMELY controller; run flows paced.
type TIMELY struct {
	cfg  TIMELYConfig
	drv  Driver
	dlog DecisionLogger

	rate     float64 // bytes/s
	prevRTT  sim.Time
	rttDiff  float64 // EWMA of RTT differences, seconds
	negCount int
	srtt     sim.Time
}

// NewTIMELY returns a TIMELY instance.
func NewTIMELY(cfg TIMELYConfig) *TIMELY { return &TIMELY{cfg: cfg} }

// Name implements Algorithm.
func (t *TIMELY) Name() string { return "timely" }

// WantsECT implements Algorithm: TIMELY is delay-based.
func (t *TIMELY) WantsECT() bool { return false }

// Start implements Algorithm: line-rate start, like the paper's RDMA
// deployment.
func (t *TIMELY) Start(drv Driver) {
	t.drv = drv
	t.dlog = DecisionLoggerOf(drv)
	t.rate = t.cfg.MaxRate
	t.srtt = drv.BaseRTT()
}

// OnAck implements Algorithm, following the TIMELY pseudocode per
// completion event (here: per ACK).
func (t *TIMELY) OnAck(fb Feedback) {
	rtt := fb.Delay
	if rtt <= 0 {
		return
	}
	t.srtt = (7*t.srtt + rtt) / 8
	if t.prevRTT == 0 {
		t.prevRTT = rtt
		return
	}
	newDiff := (rtt - t.prevRTT).Seconds()
	t.prevRTT = rtt
	t.rttDiff = (1-t.cfg.Alpha)*t.rttDiff + t.cfg.Alpha*newDiff
	gradient := t.rttDiff / t.cfg.MinRTT.Seconds()

	switch {
	case rtt < t.cfg.TLow:
		t.negCount = 0
		t.rate += t.cfg.AddStep
	case rtt > t.cfg.THigh:
		t.negCount = 0
		// Decrease proportional to how far above THigh the RTT sits.
		t.rate *= 1 - t.cfg.Beta*(1-float64(t.cfg.THigh)/float64(rtt))
		if t.dlog != nil {
			t.dlog.LogDecision(obs.SpanDecCut, rtt, t.rate, gradient)
		}
	case gradient <= 0:
		t.negCount++
		n := 1.0
		if t.negCount >= t.cfg.HAIThreshold {
			n = 5
			if t.dlog != nil && t.negCount == t.cfg.HAIThreshold {
				t.dlog.LogDecision(obs.SpanDecGrow, rtt, t.rate, n)
			}
		}
		t.rate += n * t.cfg.AddStep
	default:
		t.negCount = 0
		t.rate *= 1 - t.cfg.Beta*gradient
		if t.dlog != nil {
			t.dlog.LogDecision(obs.SpanDecCut, rtt, t.rate, gradient)
		}
	}
	t.rate = math.Min(math.Max(t.rate, t.cfg.MinRate), t.cfg.MaxRate)
}

// OnProbeAck implements Algorithm.
func (t *TIMELY) OnProbeAck(fb Feedback) {}

// OnRTO implements Algorithm.
func (t *TIMELY) OnRTO() {
	t.rate = math.Max(t.rate/2, t.cfg.MinRate)
}

// CwndBytes implements Algorithm: rate expressed as a window.
func (t *TIMELY) CwndBytes() float64 {
	rtt := t.srtt
	if rtt <= 0 {
		rtt = t.drv.BaseRTT()
	}
	return t.rate * rtt.Seconds()
}

// RateBps returns the current rate in bits/s, for tests.
func (t *TIMELY) RateBps() float64 { return t.rate * 8 }
