package exp

import (
	"testing"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// TestRunFlowSchedObs: a flow-scheduling run with an attached recorder
// emits the live flow aggregates and the post-run device metrics.
func TestRunFlowSchedObs(t *testing.T) {
	t.Parallel()
	cfg := DefaultFlowSchedConfig(PrioPlusSwift(), 4)
	cfg.K = 4
	cfg.Duration = 2 * sim.Millisecond
	cfg.Drain = 5 * sim.Millisecond
	cfg.Obs = obs.NewRecorder()
	res := RunFlowSched(cfg)
	if res.Flows.Count() == 0 {
		t.Fatal("no flows completed")
	}
	snap := cfg.Obs.Metrics.Snapshot()
	if got := snap["net/flows_completed"]; got != float64(res.Flows.Count()) {
		t.Errorf("net/flows_completed = %v, want %d", got, res.Flows.Count())
	}
	if snap["net/tx_packets"] <= 0 || snap["net/rx_packets"] <= 0 {
		t.Errorf("device aggregates missing: tx=%v rx=%v", snap["net/tx_packets"], snap["net/rx_packets"])
	}
	if snap["net/queue_hwm_bytes"] <= 0 {
		t.Errorf("net/queue_hwm_bytes = %v, want > 0 under 0.7 load", snap["net/queue_hwm_bytes"])
	}
}

// TestFig10bWatchdogEarlyStop: a watchdog that trips before the first
// delay sample must yield a zero result, not a divide-by-zero panic.
func TestFig10bWatchdogEarlyStop(t *testing.T) {
	t.Parallel()
	rec := obs.NewRecorder()
	rec.Watchdog = &obs.Watchdog{MaxInflightBytes: 64 << 10}
	rec.Series = obs.NewSeriesSet(10 * sim.Microsecond)
	res := Fig10b(80, Options{Recorder: rec})
	if rec.Watchdog.Tripped() != "inflight_bytes" {
		t.Fatalf("Tripped = %q, want inflight_bytes", rec.Watchdog.Tripped())
	}
	if res.WithinFrac != 0 || res.MeanDelay != 0 {
		t.Errorf("early-stopped run reported WithinFrac=%v MeanDelay=%v, want zeros", res.WithinFrac, res.MeanDelay)
	}
}
