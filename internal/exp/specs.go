package exp

import (
	"fmt"
	"io"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
	"prioplus/internal/stats"
)

// This file registers every experiment as a Spec, in suite order — the
// single source of truth the CLI dispatch, the `all` batch runner, usage
// text, and the serve layer's /experiments endpoint all derive from. The
// Run bodies are the former cmd/prioplus-sim switch cases, moved verbatim:
// the figure bytes they produce are pinned by testdata/fingerprints.json,
// so a change here is a behavioral change to the suite.
//
// Seed discipline (the invariant that keeps the manifest stable): the
// micro experiments are called with their published baked-in seeds — the
// caller's Seed parameter deliberately does not reach them — while the
// config-driven scenarios (fig11..fig18, faultsweep) take cfg.Seed from
// the parameters. This mirrors what the CLI's -seed flag has always done.

// defaults are the parameter values shared by every spec: seed 1, quick
// scale.
var defaults = RunParams{Seed: 1}

func init() {
	reg := func(id, describe string, run func(p RunParams, sink Sink, w io.Writer) error) {
		Register(Spec{ID: id, Describe: describe, Defaults: defaults, Run: run})
	}

	reg("fig2", "switch-chip buffer/bandwidth ratios", func(p RunParams, sink Sink, w io.Writer) error {
		tb := stats.NewTable("chip", "year", "buffer(MB)", "bandwidth(Tbps)", "MB/Tbps")
		for _, r := range Fig2(Options{}) {
			tb.AddRow(r.Chip, r.Year, r.BufferMB, r.BandTbps, r.RatioMBpT)
		}
		tb.Render(w)
		return nil
	})

	reg("fig3a", "motivation: D2TCP deadline flows on one queue", func(p RunParams, sink Sink, w io.Writer) error {
		r := Fig3a(8<<20, Options{Perturb: p.Perturb})
		fmt.Fprintf(w, "D2TCP, deadlines 1x/2x ideal FCT on one queue\n")
		fmt.Fprintf(w, "  high-priority share during contention: %.2f (strict would be ~1.0)\n", r.HighShare)
		fmt.Fprintf(w, "  high-priority FCT vs ideal: %.2fx (strict would be ~1.0x)\n", r.HighFCTvsIdeal)
		printSeries(w, p.Series, r.Series)
		return nil
	})

	reg("fig3b", "motivation: Swift with scaled targets", func(p RunParams, sink Sink, w io.Writer) error {
		r := Fig3b(Options{Perturb: p.Perturb})
		fmt.Fprintf(w, "Swift + target scaling, targets base+15us vs base+5us\n")
		fmt.Fprintf(w, "  high-target share: %.2f (weighted sharing, violates O1)\n", r.HighShare)
		printSeries(w, p.Series, r.Series)
		return nil
	})

	reg("fig3c", "motivation: Swift w/o scaling, many low flows + one high", func(p RunParams, sink Sink, w io.Writer) error {
		n := 300
		if !p.Full {
			n = 100
		}
		r := Fig3c(n, Options{Perturb: p.Perturb})
		fmt.Fprintf(w, "Swift w/o scaling, %d low flows + 1 high flow\n", n)
		fmt.Fprintf(w, "  utilization before high flow: %.2f (fluctuation causes waste, violates O2)\n", r.UtilBefore)
		fmt.Fprintf(w, "  delay above high target: %.0f%% of samples\n", r.OverLimitFrac*100)
		fmt.Fprintf(w, "  high flow share after start: %.2f (decelerates, violates O1)\n", r.HighShareAfter)
		return nil
	})

	reg("fig3d", "motivation: Swift w/o scaling trade-offs", func(p RunParams, sink Sink, w io.Writer) error {
		r := Fig3d(Options{Perturb: p.Perturb})
		fmt.Fprintf(w, "Swift w/o scaling trade-offs (§3.3)\n")
		fmt.Fprintf(w, "  extra queue from line-rate start: %d B\n", r.ExtraQueueOnStart)
		fmt.Fprintf(w, "  reclaim delay after high flows stop: %v\n", r.ReclaimDelay)
		return nil
	})

	reg("fig7", "delay-noise CDF", func(p RunParams, sink Sink, w io.Writer) error {
		cdf, st := Fig7(DefaultFig7Config(), Options{})
		fmt.Fprintf(w, "delay noise: mean %v, P99 %v, P99.85 %v, P(>1us) %.4f\n",
			st.Mean, st.P99, st.P9985, st.FracGt1)
		if p.Series {
			for _, pt := range cdf {
				fmt.Fprintf(w, "  %.3fus %.4f\n", pt[0], pt[1])
			}
		}
		return nil
	})

	reg("fig8", "testbed ladder: PrioPlus vs multi-target Swift (10G)", func(p RunParams, sink Sink, w io.Writer) error {
		interval := 4 * sim.Millisecond
		if !p.Full {
			interval = 2 * sim.Millisecond
		}
		var ppRec, swRec *obs.Recorder
		if sink != nil {
			ppRec = sink.Recorder("pp")
			swRec = sink.Recorder("swift")
		}
		pp := Fig8(true, interval, Options{Recorder: ppRec, Perturb: p.Perturb})
		sw := Fig8(false, interval, Options{Recorder: swRec, Perturb: p.Perturb})
		tb := stats.NewTable("scheme", "dominance of newest priority")
		tb.AddRow(pp.Scheme, pp.DominanceFrac)
		tb.AddRow(sw.Scheme, sw.DominanceFrac)
		tb.Render(w)
		printSeries(w, p.Series, pp.Series)
		return nil
	})

	reg("fig9", "delay containment with inflated AI steps (10G)", func(p RunParams, sink Sink, w io.Writer) error {
		pp := Fig9(true, Options{Perturb: p.Perturb})
		sw := Fig9(false, Options{Perturb: p.Perturb})
		tb := stats.NewTable("scheme", "frac of samples above D_limit")
		tb.AddRow(pp.Scheme, pp.OverLimitFrac)
		tb.AddRow(sw.Scheme, sw.OverLimitFrac)
		tb.Render(w)
		return nil
	})

	reg("fig10a", "PrioPlus staggered priority ladder", func(p RunParams, sink Sink, w io.Writer) error {
		// Adjacent-priority takeover needs a few ms (probe + one-packet
		// resume + capped adaptive increase), which is why the paper's
		// intervals are 5 ms.
		per, interval := 30, 5*sim.Millisecond
		if !p.Full {
			per, interval = 6, 5*sim.Millisecond
		}
		shares := Fig10a(per, interval, Options{Perturb: p.Perturb})
		tb := stats.NewTable("priority", "share in own interval")
		for pr, s := range shares {
			tb.AddRow(pr, s)
		}
		tb.Render(w)
		return nil
	})

	reg("fig10b", "incast delay containment", func(p RunParams, sink Sink, w io.Writer) error {
		n := 300
		if !p.Full {
			n = 80
		}
		var rec *obs.Recorder
		if sink != nil {
			rec = sink.Recorder("incast")
		}
		r := Fig10b(n, Options{Recorder: rec, Perturb: p.Perturb})
		fmt.Fprintf(w, "%d-flow incast, D_target %v\n", n, r.Target)
		fmt.Fprintf(w, "  delay within channel: %.0f%% of samples; mean delay %v\n", r.WithinFrac*100, r.MeanDelay)
		return nil
	})

	reg("fig10c", "dual-RTT vs every-RTT adaptive increase", func(p RunParams, sink Sink, w io.Writer) error {
		r := Fig10c(Options{Perturb: p.Perturb})
		tb := stats.NewTable("variant", "takeover time", "rate variance after")
		tb.AddRow("dual-RTT", r.DualRTT.TakeoverTime, r.DualRTT.RateStdev)
		tb.AddRow("every-RTT", r.EveryRTT.TakeoverTime, r.EveryRTT.RateStdev)
		tb.Render(w)
		return nil
	})

	reg("fig10d", "noise scale vs channel width utilization", func(p RunParams, sink Sink, w io.Writer) error {
		tb := stats.NewTable("noise scale", "channel width (us)", "utilization")
		for _, pt := range Fig10d(DefaultFig10dConfig(), Options{Perturb: p.Perturb}) {
			tb.AddRow(pt.NoiseScale, pt.WidthUS, pt.Util)
		}
		tb.Render(w)
		return nil
	})

	reg("fig11", "flow scheduling FCT vs #priorities (fat-tree)", func(p RunParams, sink Sink, w io.Writer) error {
		counts := []int{1, 2, 4, 6, 8, 12}
		base := DefaultFlowSchedConfig(PrioPlusSwift(), 8)
		base.Seed = p.Seed
		if !p.Full {
			base.K = 4
			base.Duration = 5 * sim.Millisecond
			base.Drain = 20 * sim.Millisecond
			counts = []int{2, 4, 8}
		}
		if sink != nil {
			base.ObsFor = sink.Recorder
		}
		printFig11(w, Fig11(counts, base, Options{}))
		return nil
	})

	reg("fig12ab", "coflow CCT speedups at 40%/70% load", func(p RunParams, sink Sink, w io.Writer) error {
		for _, load := range []float64{0.4, 0.7} {
			cfg := DefaultCoflowConfig(PrioPlusSwift(), load)
			cfg.Seed = p.Seed
			if p.Full {
				cfg = cfg.PaperScale()
				cfg.Duration = 100 * sim.Millisecond
				cfg.Drain = 400 * sim.Millisecond
			}
			if sink != nil {
				cfg.ObsFor = sink.Recorder
			}
			fmt.Fprintf(w, "coflow CCT speedup vs Swift baseline, load %.0f%%\n", load*100)
			printCoflow(w, Fig12Coflow(cfg, false))
		}
		return nil
	})

	reg("fig12c", "ML training speedups (ResNet/VGG)", func(p RunParams, sink Sink, w io.Writer) error {
		cfg := DefaultMLConfig(PrioPlusSwift())
		cfg.Seed = p.Seed
		if p.Full {
			cfg.GradScale = 1
			cfg.Duration = sim.Second
		}
		tb := stats.NewTable("scheme", "ResNet speedup", "VGG speedup", "overall")
		for _, r := range Fig12ML(cfg) {
			tb.AddRow(r.Scheme, r.ResNet, r.VGG, r.Overall)
		}
		tb.Render(w)
		return nil
	})

	reg("fig13", "non-congestive delay tolerance", func(p RunParams, sink Sink, w io.Writer) error {
		tb := stats.NewTable("tolerance(us)", "nc-delay range(us)", "normalized FCT gap")
		for _, pt := range Fig13(DefaultFig13Config(), Options{}) {
			tb.AddRow(pt.ToleranceUS, pt.RangeUS, pt.GapPerFlow)
		}
		tb.Render(w)
		return nil
	})

	reg("fig14", "per-priority FCT breakdown (12 priorities)", func(p RunParams, sink Sink, w io.Writer) error {
		base := DefaultFlowSchedConfig(PrioPlusSwift(), 12)
		base.Seed = p.Seed
		base.Load = 0.5
		if !p.Full {
			base.K = 4
			base.Duration = 5 * sim.Millisecond
			base.Drain = 20 * sim.Millisecond
		}
		if sink != nil {
			base.ObsFor = sink.Recorder
		}
		rows := Fig14(base, []Scheme{PrioPlusSwift(), SwiftPhysicalIdeal(), D2TCP(), NoCCPhysicalIdeal()}, Options{})
		tb := stats.NewTable("scheme", "priority band", "size class", "FCT / Physical*")
		for _, r := range rows {
			tb.AddRow(r.Scheme, r.Band, r.Class, r.Norm)
		}
		tb.Render(w)
		return nil
	})

	reg("fig15", "tail CCT speedup", func(p RunParams, sink Sink, w io.Writer) error {
		cfg := DefaultCoflowConfig(PrioPlusSwift(), 0.7)
		cfg.Seed = p.Seed
		if p.Full {
			cfg = cfg.PaperScale()
			cfg.Duration = 100 * sim.Millisecond
			cfg.Drain = 400 * sim.Millisecond
		}
		if sink != nil {
			cfg.ObsFor = sink.Recorder
		}
		fmt.Fprintln(w, "tail (p99) CCT speedup vs Swift baseline, load 70%")
		printCoflow(w, Fig12Coflow(cfg, true))
		return nil
	})

	reg("fig16", "HPCC and PrioPlus* comparison", func(p RunParams, sink Sink, w io.Writer) error {
		base := DefaultFlowSchedConfig(PrioPlusSwift(), 8)
		base.Seed = p.Seed
		if !p.Full {
			base.K = 4
			base.Duration = 5 * sim.Millisecond
			base.Drain = 20 * sim.Millisecond
		}
		if sink != nil {
			base.ObsFor = sink.Recorder
		}
		printFig11(w, Fig16(8, base, Options{}))
		return nil
	})

	reg("fig17", "lossy fabric (IRN) coflow speedup", func(p RunParams, sink Sink, w io.Writer) error {
		cfg := DefaultCoflowConfig(PrioPlusSwift(), 0.7)
		cfg.Seed = p.Seed
		cfg.Lossy = true
		if p.Full {
			cfg = cfg.PaperScale()
			cfg.Duration = 100 * sim.Millisecond
			cfg.Drain = 400 * sim.Millisecond
		}
		if sink != nil {
			cfg.ObsFor = sink.Recorder
		}
		fmt.Fprintln(w, "coflow CCT speedup, lossy fabric (PFC off, IRN recovery), load 70%")
		printCoflow(w, Fig12Coflow(cfg, false))
		return nil
	})

	reg("fig18", "coflow speedup with HPCC / no-CC baselines", func(p RunParams, sink Sink, w io.Writer) error {
		cfg := DefaultCoflowConfig(PrioPlusSwift(), 0.7)
		cfg.Seed = p.Seed
		// The "Physical* w/o CC" run is armed with an in-flight-bytes
		// watchdog: uncapped it materializes tens of GB of packets in
		// PFC-paused queues and never finishes (see CoflowConfig.MaxInflight).
		// Healthy schemes peak around 21 MB in flight at this scale, so the
		// ceiling only ever cuts the uncontrolled baseline.
		cfg.MaxInflight = 128 << 20
		if p.Full {
			cfg = cfg.PaperScale()
			cfg.Duration = 100 * sim.Millisecond
			cfg.Drain = 400 * sim.Millisecond
			cfg.MaxInflight = 1 << 30
		}
		if sink != nil {
			cfg.ObsFor = sink.Recorder
		}
		fmt.Fprintln(w, "coflow CCT speedup with HPCC and Physical w/o CC, load 70%")
		printCoflow(w, Fig12Coflow(cfg, false, HPCCPhysical(8), NoCCPhysicalIdeal()))
		return nil
	})

	reg("tab2", "start-strategy comparison", func(p RunParams, sink Sink, w io.Writer) error {
		tb := stats.NewTable("strategy", "bytes delayed (analytic)", "max extra buffer (analytic)", "measured extra buffer (BDP)")
		for _, r := range Table2(Options{}) {
			tb.AddRow(r.Strategy, r.BytesDelayed, r.MaxExtraBuffer, r.SimExtraBDP)
		}
		tb.Render(w)
		return nil
	})

	reg("appd", "Swift fluctuation bound check", func(p RunParams, sink Sink, w io.Writer) error {
		ns := []int{10, 40, 150}
		if !p.Full {
			ns = []int{10, 40}
		}
		tb := stats.NewTable("flows", "measured fluctuation (us)", "bound (us)", "within bound")
		for _, r := range AppD(ns) {
			tb.AddRow(r.N, r.MeasuredUS, r.BoundUS, r.WithinBound)
		}
		tb.Render(w)
		return nil
	})

	reg("ablation", "design-choice ablations (filter, cardinality, probe)", func(p RunParams, sink Sink, w io.Writer) error {
		fmt.Fprintln(w, "== filter (two-consecutive) vs none, 2x noise ==")
		tb := stats.NewTable("consec limit", "spurious yields", "utilization")
		for _, r := range AblationFilter() {
			tb.AddRow(r.ConsecLimit, r.Yields, r.Util)
		}
		tb.Render(w)
		fmt.Fprintln(w, "\n== flow-cardinality estimation on/off, 40-flow incast ==")
		tb = stats.NewTable("estimation", "frac above D_limit")
		for _, r := range AblationCardinality(40) {
			tb.AddRow(r.Estimation, r.OverLimitFrac)
		}
		tb.Render(w)
		fmt.Fprintln(w, "\n== probe schedule: collision avoidance vs naive per-RTT ==")
		tb = stats.NewTable("schedule", "probe load (Gb/s)", "reclaim (us)")
		for _, r := range AblationProbe() {
			tb.AddRow(r.Scheme, r.ProbeGbps, r.ReclaimUS)
		}
		tb.Render(w)
		return nil
	})

	reg("ext-ecn", "Appendix B extension: per-priority ECN marking", func(p RunParams, sink Sink, w io.Writer) error {
		r := ECNPrio()
		fmt.Fprintln(w, "Appendix B extension: per-virtual-priority ECN thresholds, DCTCP flows in one queue")
		fmt.Fprintf(w, "  high-vprio share %.2f, utilization %.2f\n", r.HighShare, r.Util)
		return nil
	})

	reg("ext-weighted", "§7 extension: weighted virtual priority", func(p RunParams, sink Sink, w io.Writer) error {
		r := WeightedVP()
		fmt.Fprintln(w, "§7 extension: weighted sharing within one channel, strict across channels")
		fmt.Fprintf(w, "  weight-4 : weight-1 share ratio %.2f (ideal 4)\n", r.ShareRatio)
		fmt.Fprintf(w, "  higher-channel flow share while active %.2f (strictness preserved)\n", r.HighStrict)
		return nil
	})

	reg("faultsweep", "mid-transfer link flap on a fat-tree: recovery per scheme", func(p RunParams, sink Sink, w io.Writer) error {
		cfg := DefaultFaultSweepConfig()
		cfg.Seed = p.Seed
		if sink != nil {
			cfg.ObsFor = sink.Recorder
		}
		rows := FaultSweep(cfg, Options{})
		fmt.Fprintf(w, "mid-transfer link flap (down %v at %v), fat-tree k=%d, %d cross-pod flows\n",
			cfg.FlapDur, cfg.FlapAt, cfg.K, cfg.K*cfg.K*cfg.K/4)
		tb := stats.NewTable("scheme", "done", "stuck", "mean-slow", "p99-slow",
			"retx", "rtos", "fault-drops", "no-route", "peak-q-kb", "yields")
		stuck := 0
		for _, r := range rows {
			tb.AddRow(r.Scheme, fmt.Sprintf("%d/%d", r.Completed, r.Launched), r.Stuck,
				r.MeanSlowdown, r.P99Slowdown, r.Retransmits, r.RTOs,
				r.FaultDrops, r.NoRouteDrops, r.PeakQueueKB, r.Yields)
			stuck += r.Stuck
		}
		tb.Render(w)
		if stuck == 0 {
			fmt.Fprintln(w, "all flows completed: every scheme recovered from the flap")
		} else {
			fmt.Fprintf(w, "WARNING: %d flows stuck at horizon\n", stuck)
		}
		return nil
	})
}

// printSeries prints inline time-series data when the caller asked for it.
func printSeries(w io.Writer, enabled bool, series []Series) {
	if !enabled {
		return
	}
	for _, s := range series {
		fmt.Fprintf(w, "# %s\n", s.Label)
		for i := range s.T {
			fmt.Fprintf(w, "%.3f %.2f\n", s.T[i], s.V[i])
		}
	}
}

// printFig11 renders a Fig11/Fig16 row set as the FCT-slowdown table.
func printFig11(w io.Writer, rows []Fig11Row) {
	tb := stats.NewTable("scheme", "prios", "avg", "p99", "avg-small", "p99-small", "avg-mid", "p99-mid", "avg-large", "p99-large")
	for _, r := range rows {
		tb.AddRow(r.Scheme, r.NPrios, r.AvgAll, r.P99All, r.AvgSmall, r.P99Small, r.AvgMid, r.P99Mid, r.AvgLarge, r.P99Large)
	}
	fmt.Fprintln(w, "FCT slowdown (x ideal) by scheme and priority count")
	tb.Render(w)
}

// printCoflow renders coflow speedup rows, with watchdog annotations for
// runs the in-flight ceiling stopped early.
func printCoflow(w io.Writer, rows []CoflowSpeedups) {
	tb := stats.NewTable("scheme", "high-4 groups", "low-4 groups", "overall")
	for _, r := range rows {
		name := r.Scheme
		if r.Watchdog != "" {
			name += " [watchdog: " + r.Watchdog + "]"
		}
		tb.AddRow(name, r.High4, r.Low4, r.Overall)
	}
	tb.Render(w)
	for _, r := range rows {
		if r.Watchdog != "" {
			fmt.Fprintf(w, "note: %s tripped the %s watchdog and was stopped early;\n"+
				"      its speedups cover only the coflows that finished before the stop\n",
				r.Scheme, r.Watchdog)
		}
	}
}
