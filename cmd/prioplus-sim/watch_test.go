package main

import (
	"strings"
	"testing"

	"prioplus/internal/obs/stream"
	"prioplus/internal/runner"
)

// TestWatchOnceAgainstLiveServer drives `watch -once` end to end against a
// real -listen server that has zero runs registered: one frame, exit 0,
// no panic. An unreachable address exits 1 immediately under -once.
func TestWatchOnceAgainstLiveServer(t *testing.T) {
	reg := &runner.Registry{}
	srv := stream.NewServer(reg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code := runWatch([]string{"-once", srv.Addr()}); code != 0 {
		t.Errorf("watch -once against empty server exited %d, want 0", code)
	}

	if code := runWatch([]string{"-once", "127.0.0.1:1"}); code != 1 {
		t.Errorf("watch -once against dead address exited %d, want 1", code)
	}
	if code := runWatch([]string{"-once"}); code != 2 {
		t.Errorf("watch -once without ADDR exited %d, want 2", code)
	}
}

// TestWatchRenderZeroRuns pins the metrics-only frame: with no runs and
// zeroed snapshots the frame renders the gauges, omits the run table, and
// never divides by a zero poll window.
func TestWatchRenderZeroRuns(t *testing.T) {
	var st watchState
	frame := renderWatch(&st, "http://x", stream.MetricsSnapshot{}, stream.RunsSnapshot{})
	if strings.Contains(frame, "RUN") {
		t.Errorf("frame has a run table with zero runs:\n%s", frame)
	}
	if !strings.Contains(frame, "0 ev/s") {
		t.Errorf("frame missing zero rate:\n%s", frame)
	}

	// A second poll with the identical wall clock must not record a rate
	// sample (dt would be zero) or render NaN/Inf.
	frame = renderWatch(&st, "http://x", stream.MetricsSnapshot{}, stream.RunsSnapshot{})
	if len(st.rates) != 0 {
		t.Errorf("rate recorded across a zero-length poll window: %v", st.rates)
	}
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(frame, bad) {
			t.Errorf("frame contains %s:\n%s", bad, frame)
		}
	}
}

// TestWatchRenderCounterReset: a batch whose event counter goes backwards
// (server restarted between polls) skips the negative-rate sample instead
// of underflowing the unsigned delta.
func TestWatchRenderCounterReset(t *testing.T) {
	var st watchState
	m := stream.MetricsSnapshot{WallUnixMS: 1000}
	runs := stream.RunsSnapshot{}
	runs.Batch.Events = 1_000_000
	renderWatch(&st, "http://x", m, runs)

	m.WallUnixMS = 2000
	runs.Batch.Events = 500 // restarted server: counter reset
	frame := renderWatch(&st, "http://x", m, runs)
	if len(st.rates) != 0 {
		t.Errorf("negative delta recorded as a rate: %v", st.rates)
	}
	if !strings.Contains(frame, "0 ev/s") {
		t.Errorf("frame missing zero rate after reset:\n%s", frame)
	}

	// The next well-ordered poll resumes rate math from the reset base.
	m.WallUnixMS = 3000
	runs.Batch.Events = 1_000_500
	renderWatch(&st, "http://x", m, runs)
	if len(st.rates) != 1 || st.rates[0] != 1e6 {
		t.Errorf("rates after recovery = %v, want [1e6]", st.rates)
	}
}
