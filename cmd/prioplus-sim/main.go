// Command prioplus-sim runs the paper's experiments from the command line:
//
//	prioplus-sim <experiment> [flags]
//	prioplus-sim all [-parallel N] [-seeds a,b,c] [-json out.json]
//	prioplus-sim report out/*.jsonl
//
// Experiments (ids match DESIGN.md and the paper's figures/tables):
//
//	fig2 fig3a fig3b fig3c fig3d fig7 fig8 fig9 fig10a fig10b fig10c
//	fig10d fig11 fig12ab fig12c fig13 fig14 fig15 fig16 fig17 fig18
//	tab2 appd ablation ext-ecn ext-weighted faultsweep
//
// Use -full for paper-scale runs (slower); the default scale preserves the
// comparisons at a fraction of the runtime. The `all` subcommand fans every
// experiment across a worker pool (one private engine per run, so results
// are byte-identical whatever -parallel is) and reports wall-clock and
// events/sec. -cpuprofile/-memprofile write pprof profiles for either mode.
//
// Observability (both single and batch mode, on the experiments that
// support it — the fat-tree, coflow, and incast scenarios): `-series out/`
// writes one timeline artifact (JSONL) per run into out/, `-hist` records
// streaming latency histograms and prints their summaries, and
// `-watchdog 256m` arms an in-flight-bytes watchdog that stops a runaway
// run and dumps the last trace events from the flight recorder. The
// `report` subcommand renders artifacts back into a text report; see
// docs/OBSERVABILITY.md.
//
// Determinism tooling: `-fingerprint` folds every dispatched event into a
// per-run digest chain (checkpointed into -series artifacts), `-audit`
// runs the conservation auditor, and the `diff` subcommand bisects two
// fingerprinted executions down to their first divergent event. The `all`
// subcommand's -fp-out/-fp-check write and enforce the committed
// fingerprint manifest (testdata/fingerprints.json).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"prioplus/internal/exp"
	"prioplus/internal/obs"
	"prioplus/internal/obs/stream"
	"prioplus/internal/runner"
	"prioplus/internal/sim"
	"prioplus/internal/stats"
)

// experiments lists every experiment id in the order `all` runs them.
var experiments = []string{
	"fig2", "fig3a", "fig3b", "fig3c", "fig3d", "fig7", "fig8", "fig9",
	"fig10a", "fig10b", "fig10c", "fig10d", "fig11", "fig12ab", "fig12c",
	"fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
	"tab2", "appd", "ablation", "ext-ecn", "ext-weighted", "faultsweep",
}

// runOpts carries the per-run knobs shared by single and batch mode.
type runOpts struct {
	full   bool
	series bool // print inline time-series data where available
	seed   int64
	obs    obsOpts
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	expID := os.Args[1]
	switch expID {
	case "all":
		os.Exit(runAll(os.Args[2:]))
	case "report":
		os.Exit(runReport(os.Args[2:]))
	case "trace":
		os.Exit(runTrace(os.Args[2:]))
	case "watch":
		os.Exit(runWatch(os.Args[2:]))
	case "diff":
		os.Exit(runDiff(os.Args[2:]))
	}
	fs := flag.NewFlagSet(expID, flag.ExitOnError)
	full := fs.Bool("full", false, "run at the paper's full scale")
	seed := fs.Int64("seed", 1, "simulation seed")
	printSer := fs.Bool("print-series", false, "also print inline time-series data where available")
	obsFlags := addObsFlags(fs)
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Parse(os.Args[2:])

	if err := validExperiment(expID); err != nil {
		fmt.Fprintln(os.Stderr, err)
		usage()
		os.Exit(2)
	}
	obsOpt, err := obsFlags.resolve()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	stop, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var srv *stream.Server
	var st *runner.RunState
	if obsOpt.listen != "" {
		reg := &runner.Registry{}
		st = reg.Add(fmt.Sprintf("%s/seed=%d", expID, *seed), expID, *seed)
		srv = stream.NewServer(reg)
		if err := srv.Start(obsOpt.listen); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "live endpoints on http://%s (/metrics /runs /events)\n", srv.Addr())
		obsOpt.hub = srv.Hub
		obsOpt.live = st
	}
	if st != nil {
		st.Start()
	}
	runErr := runExperiment(expID, runOpts{full: *full, series: *printSer, seed: *seed, obs: obsOpt}, os.Stdout)
	if st != nil {
		msg := ""
		if runErr != nil {
			msg = runErr.Error()
		}
		st.Finish(msg)
	}
	if srv != nil {
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	if err := stop(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		os.Exit(1)
	}
}

// obsFlagSet is the raw observability flag values before validation.
type obsFlagSet struct {
	seriesDir  *string
	hist       *bool
	watchdog   *string
	wdEvents   *int64
	runtime    *bool
	cost       *bool
	listen     *string
	traceFlows *int
	traceMatch *string
	traceEvery *int
	tracePkts  *int
	fingerp    *bool
	audit      *bool
	perturb    *uint64
}

// addObsFlags registers the shared observability flags on fs.
func addObsFlags(fs *flag.FlagSet) obsFlagSet {
	return obsFlagSet{
		seriesDir:  fs.String("series", "", "write per-run timeline artifacts (JSONL) into this directory"),
		hist:       fs.Bool("hist", false, "record streaming histograms (FCT, fabric delay, ACK RTT) and print summaries"),
		watchdog:   fs.String("watchdog", "", "in-flight bytes ceiling (e.g. 256m); tripping stops the run and dumps the flight recorder"),
		wdEvents:   fs.Int64("watchdog-events", 0, "event-heap size ceiling for the watchdog (0 = off)"),
		runtime:    fs.Bool("runtime", false, "merge host-process gauges (RSS, GC, events/sec) into the series; makes artifacts wall-clock dependent"),
		cost:       fs.Bool("cost", false, "attribute sampled per-event execution cost by event kind (artifact metrics + /metrics)"),
		listen:     fs.String("listen", "", "serve live endpoints on this address (/metrics, /runs, /events SSE); e.g. :8080"),
		traceFlows: fs.Int("trace-flows", 0, "flow-trace up to N flows (packet journeys + CC decision audit; needs -series)"),
		traceMatch: fs.String("trace-match", "", "flow-trace exactly these comma-separated flow ids (needs -series)"),
		traceEvery: fs.Int("trace-every", 0, "with -trace-flows, admit only a 1-in-K hash sample of flow ids"),
		tracePkts:  fs.Int("trace-packets", 0, "journey-stamp every Kth data packet of a traced flow (default 16, 1 = all)"),
		fingerp:    fs.Bool("fingerprint", false, "fold every dispatched event into a digest chain and print the run fingerprint"),
		audit:      fs.Bool("audit", false, "run conservation audits on the sampler clock (packet, byte, PFC accounting); a violation stops the run"),
		perturb:    fs.Uint64("perturb", 0, "deliberately inflate the Nth delay-noise draw by 1us (micro experiments; for testing diff)"),
	}
}

// resolve validates the flag values and prepares the -series directory.
func (f obsFlagSet) resolve() (obsOpts, error) {
	var maxBytes int64
	if *f.watchdog != "" {
		var err error
		maxBytes, err = parseBytes(*f.watchdog)
		if err != nil {
			return obsOpts{}, fmt.Errorf("-watchdog: %w", err)
		}
	}
	match, err := parseFlowList(*f.traceMatch)
	if err != nil {
		return obsOpts{}, fmt.Errorf("-trace-match: %w", err)
	}
	o := obsOpts{
		dir: *f.seriesDir, hist: *f.hist,
		maxBytes: maxBytes, maxEvents: *f.wdEvents,
		runtime: *f.runtime, cost: *f.cost, listen: *f.listen,
		traceFlows: *f.traceFlows, traceMatch: match,
		traceEvery: *f.traceEvery, tracePackets: *f.tracePkts,
		fingerprint: *f.fingerp, audit: *f.audit, perturb: *f.perturb,
	}
	if o.tracing() && o.dir == "" {
		return obsOpts{}, fmt.Errorf("flow tracing needs -series DIR: trace spans are only delivered through the timeline artifact")
	}
	if o.runtime && o.dir == "" && o.listen == "" {
		return obsOpts{}, fmt.Errorf("-runtime needs -series DIR or -listen ADDR: runtime gauges are delivered as timeline series")
	}
	if o.dir != "" {
		if err := os.MkdirAll(o.dir, 0o755); err != nil {
			return obsOpts{}, err
		}
	}
	return o, nil
}

// parseFlowList parses a comma-separated flow-id list ("" = none).
func parseFlowList(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad flow id %q", p)
		}
		out = append(out, id)
	}
	return out, nil
}

// runExperiment executes one experiment and writes its report to w. It
// returns an error for an unknown id or a failed observability-artifact
// write; experiment output (including the batch runner's captured per-run
// output) goes to w. The obs sink, when enabled, is wired into the
// experiments that run full network scenarios (incast, fat-tree, coflow);
// the analytic and micro experiments ignore it.
func runExperiment(expID string, o runOpts, w io.Writer) error {
	return runExperimentWith(expID, o, newObsSink(o.obs, expID, o.seed), w)
}

// runExperimentWith is runExperiment with a caller-supplied sink, so the
// diff subcommand can rerun an experiment and inspect the recorders (and
// their digest chains) afterwards instead of only seeing flushed text.
func runExperimentWith(expID string, o runOpts, sink *obsSink, w io.Writer) error {
	switch expID {
	case "fig2":
		tb := stats.NewTable("chip", "year", "buffer(MB)", "bandwidth(Tbps)", "MB/Tbps")
		for _, r := range exp.Fig2() {
			tb.AddRow(r.Chip, r.Year, r.BufferMB, r.BandTbps, r.RatioMBpT)
		}
		tb.Render(w)

	case "fig3a":
		r := exp.Fig3a(8<<20, exp.Options{Perturb: o.obs.perturb})
		fmt.Fprintf(w, "D2TCP, deadlines 1x/2x ideal FCT on one queue\n")
		fmt.Fprintf(w, "  high-priority share during contention: %.2f (strict would be ~1.0)\n", r.HighShare)
		fmt.Fprintf(w, "  high-priority FCT vs ideal: %.2fx (strict would be ~1.0x)\n", r.HighFCTvsIdeal)
		printSeries(w, o.series, r.Series)

	case "fig3b":
		r := exp.Fig3b(exp.Options{Perturb: o.obs.perturb})
		fmt.Fprintf(w, "Swift + target scaling, targets base+15us vs base+5us\n")
		fmt.Fprintf(w, "  high-target share: %.2f (weighted sharing, violates O1)\n", r.HighShare)
		printSeries(w, o.series, r.Series)

	case "fig3c":
		n := 300
		if !o.full {
			n = 100
		}
		r := exp.Fig3c(n, exp.Options{Perturb: o.obs.perturb})
		fmt.Fprintf(w, "Swift w/o scaling, %d low flows + 1 high flow\n", n)
		fmt.Fprintf(w, "  utilization before high flow: %.2f (fluctuation causes waste, violates O2)\n", r.UtilBefore)
		fmt.Fprintf(w, "  delay above high target: %.0f%% of samples\n", r.OverLimitFrac*100)
		fmt.Fprintf(w, "  high flow share after start: %.2f (decelerates, violates O1)\n", r.HighShareAfter)

	case "fig3d":
		r := exp.Fig3d(exp.Options{Perturb: o.obs.perturb})
		fmt.Fprintf(w, "Swift w/o scaling trade-offs (§3.3)\n")
		fmt.Fprintf(w, "  extra queue from line-rate start: %d B\n", r.ExtraQueueOnStart)
		fmt.Fprintf(w, "  reclaim delay after high flows stop: %v\n", r.ReclaimDelay)

	case "fig7":
		cdf, st := exp.Fig7(200_000)
		fmt.Fprintf(w, "delay noise: mean %v, P99 %v, P99.85 %v, P(>1us) %.4f\n",
			st.Mean, st.P99, st.P9985, st.FracGt1)
		if o.series {
			for _, p := range cdf {
				fmt.Fprintf(w, "  %.3fus %.4f\n", p[0], p[1])
			}
		}

	case "fig8":
		interval := 4 * sim.Millisecond
		if !o.full {
			interval = 2 * sim.Millisecond
		}
		var ppRec, swRec *obs.Recorder
		if sink != nil {
			ppRec = sink.recorder("pp")
			swRec = sink.recorder("swift")
		}
		pp := exp.Fig8(true, interval, exp.Options{Recorder: ppRec, Perturb: o.obs.perturb})
		sw := exp.Fig8(false, interval, exp.Options{Recorder: swRec, Perturb: o.obs.perturb})
		tb := stats.NewTable("scheme", "dominance of newest priority")
		tb.AddRow(pp.Scheme, pp.DominanceFrac)
		tb.AddRow(sw.Scheme, sw.DominanceFrac)
		tb.Render(w)
		printSeries(w, o.series, pp.Series)

	case "fig9":
		pp := exp.Fig9(true, exp.Options{Perturb: o.obs.perturb})
		sw := exp.Fig9(false, exp.Options{Perturb: o.obs.perturb})
		tb := stats.NewTable("scheme", "frac of samples above D_limit")
		tb.AddRow(pp.Scheme, pp.OverLimitFrac)
		tb.AddRow(sw.Scheme, sw.OverLimitFrac)
		tb.Render(w)

	case "fig10a":
		// Adjacent-priority takeover needs a few ms (probe + one-packet
		// resume + capped adaptive increase), which is why the paper's
		// intervals are 5 ms.
		per, interval := 30, 5*sim.Millisecond
		if !o.full {
			per, interval = 6, 5*sim.Millisecond
		}
		shares := exp.Fig10a(per, interval, exp.Options{Perturb: o.obs.perturb})
		tb := stats.NewTable("priority", "share in own interval")
		for p, s := range shares {
			tb.AddRow(p, s)
		}
		tb.Render(w)

	case "fig10b":
		n := 300
		if !o.full {
			n = 80
		}
		var rec *obs.Recorder
		if sink != nil {
			rec = sink.recorder("incast")
		}
		r := exp.Fig10b(n, exp.Options{Recorder: rec, Perturb: o.obs.perturb})
		fmt.Fprintf(w, "%d-flow incast, D_target %v\n", n, r.Target)
		fmt.Fprintf(w, "  delay within channel: %.0f%% of samples; mean delay %v\n", r.WithinFrac*100, r.MeanDelay)

	case "fig10c":
		r := exp.Fig10c()
		tb := stats.NewTable("variant", "takeover time", "rate variance after")
		tb.AddRow("dual-RTT", r.DualRTT.TakeoverTime, r.DualRTT.RateStdev)
		tb.AddRow("every-RTT", r.EveryRTT.TakeoverTime, r.EveryRTT.RateStdev)
		tb.Render(w)

	case "fig10d":
		scales := []float64{1, 2, 4, 8}
		widths := []float64{1, 2, 4, 8, 12, 16}
		tb := stats.NewTable("noise scale", "channel width (us)", "utilization")
		for _, p := range exp.Fig10d(scales, widths) {
			tb.AddRow(p.NoiseScale, p.WidthUS, p.Util)
		}
		tb.Render(w)

	case "fig11":
		counts := []int{1, 2, 4, 6, 8, 12}
		base := exp.DefaultFlowSchedConfig(exp.PrioPlusSwift(), 8)
		base.Seed = o.seed
		if !o.full {
			base.K = 4
			base.Duration = 5 * sim.Millisecond
			base.Drain = 20 * sim.Millisecond
			counts = []int{2, 4, 8}
		}
		if sink != nil {
			base.ObsFor = sink.recorder
		}
		printFig11(w, exp.Fig11(counts, base))

	case "fig12ab":
		for _, load := range []float64{0.4, 0.7} {
			cfg := exp.DefaultCoflowConfig(exp.PrioPlusSwift(), load)
			cfg.Seed = o.seed
			if o.full {
				cfg = cfg.PaperScale()
				cfg.Duration = 100 * sim.Millisecond
				cfg.Drain = 400 * sim.Millisecond
			}
			if sink != nil {
				cfg.ObsFor = sink.recorder
			}
			fmt.Fprintf(w, "coflow CCT speedup vs Swift baseline, load %.0f%%\n", load*100)
			printCoflow(w, exp.Fig12Coflow(cfg, false))
		}

	case "fig15":
		cfg := exp.DefaultCoflowConfig(exp.PrioPlusSwift(), 0.7)
		cfg.Seed = o.seed
		if o.full {
			cfg = cfg.PaperScale()
			cfg.Duration = 100 * sim.Millisecond
			cfg.Drain = 400 * sim.Millisecond
		}
		if sink != nil {
			cfg.ObsFor = sink.recorder
		}
		fmt.Fprintln(w, "tail (p99) CCT speedup vs Swift baseline, load 70%")
		printCoflow(w, exp.Fig12Coflow(cfg, true))

	case "fig17":
		cfg := exp.DefaultCoflowConfig(exp.PrioPlusSwift(), 0.7)
		cfg.Seed = o.seed
		cfg.Lossy = true
		if o.full {
			cfg = cfg.PaperScale()
			cfg.Duration = 100 * sim.Millisecond
			cfg.Drain = 400 * sim.Millisecond
		}
		if sink != nil {
			cfg.ObsFor = sink.recorder
		}
		fmt.Fprintln(w, "coflow CCT speedup, lossy fabric (PFC off, IRN recovery), load 70%")
		printCoflow(w, exp.Fig12Coflow(cfg, false))

	case "fig18":
		cfg := exp.DefaultCoflowConfig(exp.PrioPlusSwift(), 0.7)
		cfg.Seed = o.seed
		// The "Physical* w/o CC" run is armed with an in-flight-bytes
		// watchdog: uncapped it materializes tens of GB of packets in
		// PFC-paused queues and never finishes (see CoflowConfig.MaxInflight).
		// Healthy schemes peak around 21 MB in flight at this scale, so the
		// ceiling only ever cuts the uncontrolled baseline.
		cfg.MaxInflight = 128 << 20
		if o.full {
			cfg = cfg.PaperScale()
			cfg.Duration = 100 * sim.Millisecond
			cfg.Drain = 400 * sim.Millisecond
			cfg.MaxInflight = 1 << 30
		}
		if sink != nil {
			cfg.ObsFor = sink.recorder
		}
		fmt.Fprintln(w, "coflow CCT speedup with HPCC and Physical w/o CC, load 70%")
		printCoflow(w, exp.Fig12Coflow(cfg, false, exp.HPCCPhysical(8), exp.NoCCPhysicalIdeal()))

	case "fig12c":
		cfg := exp.DefaultMLConfig(exp.PrioPlusSwift())
		cfg.Seed = o.seed
		if o.full {
			cfg.GradScale = 1
			cfg.Duration = sim.Second
		}
		tb := stats.NewTable("scheme", "ResNet speedup", "VGG speedup", "overall")
		for _, r := range exp.Fig12ML(cfg) {
			tb.AddRow(r.Scheme, r.ResNet, r.VGG, r.Overall)
		}
		tb.Render(w)

	case "fig13":
		tols := []float64{10, 20, 30}
		ranges := []float64{0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40}
		tb := stats.NewTable("tolerance(us)", "nc-delay range(us)", "normalized FCT gap")
		for _, p := range exp.Fig13(tols, ranges) {
			tb.AddRow(p.ToleranceUS, p.RangeUS, p.GapPerFlow)
		}
		tb.Render(w)

	case "fig14":
		base := exp.DefaultFlowSchedConfig(exp.PrioPlusSwift(), 12)
		base.Seed = o.seed
		base.Load = 0.5
		if !o.full {
			base.K = 4
			base.Duration = 5 * sim.Millisecond
			base.Drain = 20 * sim.Millisecond
		}
		if sink != nil {
			base.ObsFor = sink.recorder
		}
		rows := exp.Fig14(base, []exp.Scheme{exp.PrioPlusSwift(), exp.SwiftPhysicalIdeal(), exp.D2TCP(), exp.NoCCPhysicalIdeal()})
		tb := stats.NewTable("scheme", "priority band", "size class", "FCT / Physical*")
		for _, r := range rows {
			tb.AddRow(r.Scheme, r.Band, r.Class, r.Norm)
		}
		tb.Render(w)

	case "fig16":
		base := exp.DefaultFlowSchedConfig(exp.PrioPlusSwift(), 8)
		base.Seed = o.seed
		if !o.full {
			base.K = 4
			base.Duration = 5 * sim.Millisecond
			base.Drain = 20 * sim.Millisecond
		}
		if sink != nil {
			base.ObsFor = sink.recorder
		}
		printFig11(w, exp.Fig16(8, base))

	case "ablation":
		fmt.Fprintln(w, "== filter (two-consecutive) vs none, 2x noise ==")
		tb := stats.NewTable("consec limit", "spurious yields", "utilization")
		for _, r := range exp.AblationFilter() {
			tb.AddRow(r.ConsecLimit, r.Yields, r.Util)
		}
		tb.Render(w)
		fmt.Fprintln(w, "\n== flow-cardinality estimation on/off, 40-flow incast ==")
		tb = stats.NewTable("estimation", "frac above D_limit")
		for _, r := range exp.AblationCardinality(40) {
			tb.AddRow(r.Estimation, r.OverLimitFrac)
		}
		tb.Render(w)
		fmt.Fprintln(w, "\n== probe schedule: collision avoidance vs naive per-RTT ==")
		tb = stats.NewTable("schedule", "probe load (Gb/s)", "reclaim (us)")
		for _, r := range exp.AblationProbe() {
			tb.AddRow(r.Scheme, r.ProbeGbps, r.ReclaimUS)
		}
		tb.Render(w)

	case "ext-ecn":
		r := exp.ECNPrio()
		fmt.Fprintln(w, "Appendix B extension: per-virtual-priority ECN thresholds, DCTCP flows in one queue")
		fmt.Fprintf(w, "  high-vprio share %.2f, utilization %.2f\n", r.HighShare, r.Util)

	case "ext-weighted":
		r := exp.WeightedVP()
		fmt.Fprintln(w, "§7 extension: weighted sharing within one channel, strict across channels")
		fmt.Fprintf(w, "  weight-4 : weight-1 share ratio %.2f (ideal 4)\n", r.ShareRatio)
		fmt.Fprintf(w, "  higher-channel flow share while active %.2f (strictness preserved)\n", r.HighStrict)

	case "faultsweep":
		cfg := exp.DefaultFaultSweepConfig()
		cfg.Seed = o.seed
		if sink != nil {
			cfg.ObsFor = sink.recorder
		}
		rows := exp.FaultSweep(cfg, exp.Options{})
		fmt.Fprintf(w, "mid-transfer link flap (down %v at %v), fat-tree k=%d, %d cross-pod flows\n",
			cfg.FlapDur, cfg.FlapAt, cfg.K, cfg.K*cfg.K*cfg.K/4)
		tb := stats.NewTable("scheme", "done", "stuck", "mean-slow", "p99-slow",
			"retx", "rtos", "fault-drops", "no-route", "peak-q-kb", "yields")
		stuck := 0
		for _, r := range rows {
			tb.AddRow(r.Scheme, fmt.Sprintf("%d/%d", r.Completed, r.Launched), r.Stuck,
				r.MeanSlowdown, r.P99Slowdown, r.Retransmits, r.RTOs,
				r.FaultDrops, r.NoRouteDrops, r.PeakQueueKB, r.Yields)
			stuck += r.Stuck
		}
		tb.Render(w)
		if stuck == 0 {
			fmt.Fprintln(w, "all flows completed: every scheme recovered from the flap")
		} else {
			fmt.Fprintf(w, "WARNING: %d flows stuck at horizon\n", stuck)
		}

	case "tab2":
		tb := stats.NewTable("strategy", "bytes delayed (analytic)", "max extra buffer (analytic)", "measured extra buffer (BDP)")
		for _, r := range exp.Table2() {
			tb.AddRow(r.Strategy, r.BytesDelayed, r.MaxExtraBuffer, r.SimExtraBDP)
		}
		tb.Render(w)

	case "appd":
		ns := []int{10, 40, 150}
		if !o.full {
			ns = []int{10, 40}
		}
		tb := stats.NewTable("flows", "measured fluctuation (us)", "bound (us)", "within bound")
		for _, r := range exp.AppD(ns) {
			tb.AddRow(r.N, r.MeasuredUS, r.BoundUS, r.WithinBound)
		}
		tb.Render(w)

	default:
		return fmt.Errorf("unknown experiment %q", expID)
	}
	if sink != nil {
		return sink.flush(w)
	}
	return nil
}

func printSeries(w io.Writer, enabled bool, series []exp.Series) {
	if !enabled {
		return
	}
	for _, s := range series {
		fmt.Fprintf(w, "# %s\n", s.Label)
		for i := range s.T {
			fmt.Fprintf(w, "%.3f %.2f\n", s.T[i], s.V[i])
		}
	}
}

func printFig11(w io.Writer, rows []exp.Fig11Row) {
	tb := stats.NewTable("scheme", "prios", "avg", "p99", "avg-small", "p99-small", "avg-mid", "p99-mid", "avg-large", "p99-large")
	for _, r := range rows {
		tb.AddRow(r.Scheme, r.NPrios, r.AvgAll, r.P99All, r.AvgSmall, r.P99Small, r.AvgMid, r.P99Mid, r.AvgLarge, r.P99Large)
	}
	fmt.Fprintln(w, "FCT slowdown (x ideal) by scheme and priority count")
	tb.Render(w)
}

func printCoflow(w io.Writer, rows []exp.CoflowSpeedups) {
	tb := stats.NewTable("scheme", "high-4 groups", "low-4 groups", "overall")
	for _, r := range rows {
		name := r.Scheme
		if r.Watchdog != "" {
			name += " [watchdog: " + r.Watchdog + "]"
		}
		tb.AddRow(name, r.High4, r.Low4, r.Overall)
	}
	tb.Render(w)
	for _, r := range rows {
		if r.Watchdog != "" {
			fmt.Fprintf(w, "note: %s tripped the %s watchdog and was stopped early;\n"+
				"      its speedups cover only the coflows that finished before the stop\n",
				r.Scheme, r.Watchdog)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: prioplus-sim <experiment> [-full] [-seed N] [-print-series] [obs flags] [-cpuprofile f] [-memprofile f]
       prioplus-sim all [-parallel N] [-seeds a,b,c] [-only ids] [-json out.json] [-timeout d] [-full] [-fp-out f] [-fp-check f] [obs flags]
       prioplus-sim report [-width N] file.jsonl|dir...
       prioplus-sim trace [-flows a,b] [-journeys K] [-width N] file.jsonl|dir...
       prioplus-sim watch [-interval d] [-once] ADDR
       prioplus-sim diff A.jsonl B.jsonl
       prioplus-sim diff -exp ID [-seed N] [-full] [-perturb D] A.jsonl

obs flags (network experiments only; see docs/OBSERVABILITY.md):
  -series DIR       write one timeline artifact (JSONL) per run into DIR
  -hist             record streaming histograms (FCT, fabric delay, ACK RTT)
  -watchdog BYTES   in-flight-bytes ceiling; tripping stops the run and
                    dumps the flight recorder (e.g. -watchdog 256m)
  -watchdog-events N  event-heap ceiling for the watchdog
  -listen ADDR      serve live endpoints while running: /metrics (process
                    gauges + cost attribution), /runs (batch state), and
                    /events (artifact lines as SSE, byte-identical to the
                    -series files); watch renders them as a dashboard
  -runtime          merge host-process gauges (RSS, heap, GC, events/sec,
                    wall-vs-sim) into the series; artifacts become
                    wall-clock dependent, so keep it off when comparing
  -cost             sampled per-event-kind cost attribution (artifact
                    metrics cost/<kind>/{samples,ns} and /metrics)
  -trace-flows N    flow-trace up to N flows: per-packet hop journeys and
                    the CC decision audit, delivered via -series artifacts
                    and rendered by the trace subcommand
  -trace-match IDS  flow-trace exactly these comma-separated flow ids
  -trace-every K    with -trace-flows, admit a deterministic 1-in-K sample
  -trace-packets K  journey-stamp every Kth data packet (default 16)
  -fingerprint      fold every dispatched event into a per-run digest
                    chain; prints the run fingerprint and writes ckpt
                    lines into -series artifacts (for diff / -fp-check)
  -audit            conservation auditor on the sampler clock (packet
                    pool, shared-buffer sums, PFC symmetry); a violation
                    stops the run and dumps the flight recorder
  -perturb D        inflate the D-th delay-noise draw by 1us — a
                    controlled divergence for exercising diff

experiments:
  fig2     switch-chip buffer/bandwidth ratios
  fig3a-d  motivation micro-benchmarks (D2TCP, Swift variants)
  fig7     delay-noise CDF
  fig8     testbed ladder: PrioPlus vs multi-target Swift (10G)
  fig9     delay containment with inflated AI steps (10G)
  fig10a-d PrioPlus micro-benchmarks (ladder, incast, dual-RTT, noise)
  fig11    flow scheduling FCT vs #priorities (fat-tree)
  fig12ab  coflow CCT speedups at 40%/70% load
  fig12c   ML training speedups (ResNet/VGG)
  fig13    non-congestive delay tolerance
  fig14    per-priority FCT breakdown (12 priorities)
  fig15    tail CCT speedup
  fig16    HPCC and PrioPlus* comparison
  fig17    lossy fabric (IRN) coflow speedup
  fig18    coflow speedup with HPCC / no-CC baselines
  tab2     start-strategy comparison
  appd     Swift fluctuation bound check
  ablation     design-choice ablations (filter, cardinality, probe)
  ext-ecn      Appendix B extension: per-priority ECN marking
  ext-weighted §7 extension: weighted virtual priority
  faultsweep   mid-transfer link flap on a fat-tree: recovery and FCT
               tails per scheme (see docs/ARCHITECTURE.md, Fault layer)
  all          every experiment above, fanned across a worker pool
  report       render -series artifacts as a text report
  trace        render flow-trace artifacts as causal per-flow timelines
  watch        live terminal dashboard over a -listen ADDR endpoint
  diff         compare two fingerprinted artifacts, or an artifact vs a
               live rerun, and name the first divergent event (see
               docs/OBSERVABILITY.md, "Bisecting a divergence")`)
}
