package obs

import (
	"bufio"
	"io"
	"strconv"

	"prioplus/internal/sim"
)

// Kind identifies what a trace Event records.
type Kind uint8

// Event kinds. Enqueue/Dequeue/Drop/Mark are per-packet switch and port
// events; Pause/Resume are PFC state transitions on an egress queue;
// FlowDone is a transport-level flow completion.
const (
	Enqueue Kind = iota
	Dequeue
	Drop
	Mark
	Pause
	Resume
	FlowDone
)

var kindNames = [...]string{"enq", "deq", "drop", "mark", "pause", "resume", "fct"}

// String returns the trace record kind's artifact label (enq, deq, drop, ...).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one simulator occurrence. Field meaning varies slightly by
// kind; unused fields are zero and omitted from the JSONL encoding:
//
//   - Enqueue/Dequeue/Drop/Mark: Dev/Port/Queue locate the egress queue,
//     Flow/Seq/Bytes identify the packet, QLen is the queue occupancy in
//     bytes after the event took effect.
//   - Pause/Resume: Dev/Port/Queue locate the paused egress queue.
//   - FlowDone: Flow is the flow ID, Bytes its size, QLen its retransmit
//     count, and Seq its FCT in picoseconds.
type Event struct {
	T     sim.Time // simulated time, picoseconds
	Kind  Kind
	Dev   string // device name ("host3", "tor0/agg1/core2"...)
	Port  int    // port index within the device
	Queue int    // priority queue index
	Flow  int64
	Seq   int64
	Bytes int
	QLen  int
}

// Tracer receives trace events. Implementations are not safe for
// concurrent use; attach one tracer per run.
type Tracer interface {
	Trace(ev Event)
}

// TraceFunc adapts a function to the Tracer interface.
type TraceFunc func(ev Event)

// Trace implements Tracer.
func (f TraceFunc) Trace(ev Event) { f(ev) }

// JSONLSink streams events as one JSON object per line. Encoding is
// hand-rolled (no reflection) so tracing a multi-million-event run stays
// cheap; numeric fields that are zero are omitted. Call Flush before
// reading the output.
type JSONLSink struct {
	w   *bufio.Writer
	buf []byte

	// Events counts the records written.
	Events int64
}

// NewJSONLSink returns a sink writing JSONL records to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 1<<16)}
}

// Trace implements Tracer.
func (s *JSONLSink) Trace(ev Event) {
	b := s.buf[:0]
	b = append(b, `{"t_ps":`...)
	b = strconv.AppendInt(b, int64(ev.T), 10)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	if ev.Dev != "" {
		b = append(b, `,"dev":`...)
		b = appendJSONString(b, ev.Dev)
	}
	b = appendField(b, `,"port":`, int64(ev.Port))
	b = appendField(b, `,"q":`, int64(ev.Queue))
	b = appendField(b, `,"flow":`, ev.Flow)
	b = appendField(b, `,"seq":`, ev.Seq)
	b = appendField(b, `,"bytes":`, int64(ev.Bytes))
	b = appendField(b, `,"qlen":`, int64(ev.QLen))
	b = append(b, '}', '\n')
	s.buf = b
	s.w.Write(b)
	s.Events++
}

func appendField(b []byte, key string, v int64) []byte {
	if v == 0 {
		return b
	}
	b = append(b, key...)
	return strconv.AppendInt(b, v, 10)
}

// appendJSONString appends s as a quoted, escaped JSON string. Device names
// are plain ASCII in practice, so the common path is a straight copy, but
// arbitrary labels (quotes, backslashes, control bytes, non-ASCII) must
// still round-trip as valid JSON. Multi-byte UTF-8 sequences pass through
// untouched — JSON strings carry raw UTF-8.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c == '\t':
			b = append(b, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
	}
	return append(b, '"')
}

// Flush writes any buffered records to the underlying writer.
func (s *JSONLSink) Flush() error { return s.w.Flush() }
