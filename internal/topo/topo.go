// Package topo builds the network topologies used in the paper's
// evaluation: single-bottleneck stars for micro-benchmarks, the k=6
// fat-tree for the flow-scheduling scenario, a 5-pod non-blocking Clos for
// coflow scheduling, and a 2:1 oversubscribed spine-leaf for the ML
// training scenario. Routing tables (shortest path with ECMP) are computed
// automatically from the wired graph.
package topo

import (
	"fmt"
	"math/rand"

	"prioplus/internal/netsim"
	"prioplus/internal/sim"
)

// Config carries the parameters shared by every topology builder.
type Config struct {
	HostRate   netsim.Rate // host-to-edge link speed
	FabricRate netsim.Rate // switch-to-switch link speed (0 = HostRate)
	LinkDelay  sim.Time    // per-link propagation delay
	Queues     int         // physical priority queues per port
	Buffer     netsim.BufferConfig
	Seed       int64
}

// DefaultConfig matches the paper's micro-benchmark setup: 100 Gb/s links,
// priority queues on every port, lossless fabric.
func DefaultConfig() Config {
	return Config{
		HostRate:  100 * netsim.Gbps,
		LinkDelay: 1 * sim.Microsecond,
		Queues:    8,
		Buffer:    netsim.DefaultBufferConfig(),
		Seed:      1,
	}
}

func (c Config) fabricRate() netsim.Rate {
	if c.FabricRate != 0 {
		return c.FabricRate
	}
	return c.HostRate
}

// Network is a wired topology ready for traffic.
type Network struct {
	Eng      *sim.Engine
	Hosts    []*netsim.Host
	Switches []*netsim.Switch
	Cfg      Config

	// Routing state reused across computeRoutes/path calls: the
	// switch-to-node index is built once (the device set is fixed after
	// the builder returns), and the BFS scratch keeps its capacity so
	// RecomputeRoutes — called on every fault-plan link event — and the
	// per-flow BaseRTT path walks stop allocating in steady state.
	swIndex map[*netsim.Switch]int
	adj     [][]edge
	dist    []int
	queue   []int
	ports   []int32
}

// edge is one usable link out of a graph node: the peer's node index and,
// for switch nodes, the local egress port.
type edge struct {
	peer int
	port int32
}

// connectHost attaches host h to switch sw with the host-link parameters.
func (n *Network) connectHost(h *netsim.Host, sw *netsim.Switch) {
	p := sw.AddPort(n.Cfg.HostRate, n.Cfg.LinkDelay, n.Cfg.Queues)
	netsim.Connect(h.NIC, p)
}

// connectSwitches wires a fabric link between two switches.
func (n *Network) connectSwitches(a, b *netsim.Switch, rate netsim.Rate) {
	pa := a.AddPort(rate, n.Cfg.LinkDelay, n.Cfg.Queues)
	pb := b.AddPort(rate, n.Cfg.LinkDelay, n.Cfg.Queues)
	netsim.Connect(pa, pb)
}

// newHost appends a host with the next ID.
func (n *Network) newHost() *netsim.Host {
	h := netsim.NewHost(n.Eng, len(n.Hosts), n.Cfg.HostRate, n.Cfg.LinkDelay, n.Cfg.Queues)
	n.Hosts = append(n.Hosts, h)
	return h
}

func (n *Network) newSwitch(name string, rng *rand.Rand) *netsim.Switch {
	sw := netsim.NewSwitch(n.Eng, name, n.Cfg.Buffer, rng)
	n.Switches = append(n.Switches, sw)
	return sw
}

// finalize computes routing tables and buffer accounting. Must be called
// once after all wiring.
func (n *Network) finalize() {
	n.computeRoutes()
	for _, sw := range n.Switches {
		sw.Finalize()
	}
}

// ensureIndex builds the switch-to-node map once. Node numbering: hosts
// occupy 0..len(Hosts)-1 (their IDs), switches follow in Switches order.
func (n *Network) ensureIndex() {
	if len(n.swIndex) == len(n.Switches) && n.swIndex != nil {
		return
	}
	n.swIndex = make(map[*netsim.Switch]int, len(n.Switches))
	for i, sw := range n.Switches {
		n.swIndex[sw] = len(n.Hosts) + i
	}
}

// nodeOf maps a device to its graph node index in O(1) via the persistent
// switch index (replacing the former per-device linear scan and the
// per-call index rebuilds in computeRoutes and path).
func (n *Network) nodeOf(d netsim.Device) int {
	switch v := d.(type) {
	case *netsim.Host:
		return v.ID
	case *netsim.Switch:
		if i, ok := n.swIndex[v]; ok {
			return i
		}
	}
	panic("topo: unknown device")
}

// RecomputeRoutes rebuilds every switch's ECMP table from the current link
// state, skipping links with a downed end. This is the control-plane half
// of failure handling: the fault layer calls it on every link event so
// traffic converges onto surviving paths; between the event and the
// recompute, switches re-hash locally around downed next hops. Stale
// entries for now-unreachable destinations are removed.
func (n *Network) RecomputeRoutes() {
	n.computeRoutes()
}

// computeRoutes runs a BFS from every host and installs ECMP next-hop sets
// in every switch's dense route table. Links with a downed end are treated
// as absent. All scratch (adjacency, BFS arrays, the per-destination port
// set) and the switches' route arenas are reused across calls, so a
// recompute allocates nothing once capacities have grown.
func (n *Network) computeRoutes() {
	nh := len(n.Hosts)
	total := nh + len(n.Switches)
	n.ensureIndex()

	// Adjacency: for each node, its usable links under current link state.
	if cap(n.adj) < total {
		grown := make([][]edge, total)
		copy(grown, n.adj)
		n.adj = grown
	}
	adj := n.adj[:total]
	for i := range adj {
		adj[i] = adj[i][:0]
	}
	for i, sw := range n.Switches {
		si := nh + i
		for pi, p := range sw.Ports {
			if p.Peer == nil {
				panic(fmt.Sprintf("topo: switch %s port %d unwired", sw.Name, pi))
			}
			if p.IsDown() || p.Peer.IsDown() {
				continue
			}
			adj[si] = append(adj[si], edge{peer: n.nodeOf(p.Peer.Owner), port: int32(pi)})
		}
		// The rebuild covers every destination below; clearing up front
		// (keeping the arena's capacity) removes stale entries for
		// destinations that became unreachable, so forwarding fails fast
		// instead of spraying into a black hole.
		sw.ResetRoutes(nh)
	}
	// Host adjacency (for BFS traversal only).
	for _, h := range n.Hosts {
		if h.NIC.Peer == nil {
			panic(fmt.Sprintf("topo: host %d unwired", h.ID))
		}
		if h.NIC.IsDown() || h.NIC.Peer.IsDown() {
			continue
		}
		adj[h.ID] = append(adj[h.ID], edge{peer: n.nodeOf(h.NIC.Peer.Owner)})
	}

	if cap(n.dist) < total {
		n.dist = make([]int, total)
	}
	dist := n.dist[:total]
	queue, ports := n.queue, n.ports
	for dst := 0; dst < nh; dst++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue = append(queue[:0], dst)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, e := range adj[u] {
				if dist[e.peer] < 0 {
					dist[e.peer] = dist[u] + 1
					queue = append(queue, e.peer)
				}
			}
		}
		for i, sw := range n.Switches {
			si := nh + i
			if dist[si] < 0 {
				continue // unreachable: entry already cleared by ResetRoutes
			}
			ports = ports[:0]
			for _, e := range adj[si] {
				if dist[e.peer] == dist[si]-1 {
					ports = append(ports, e.port)
				}
			}
			if len(ports) > 0 {
				sw.SetRoute(dst, ports)
			}
		}
	}
	n.queue, n.ports = queue[:0], ports[:0]
}

// BaseRTT returns the unloaded round-trip time between two hosts for a
// full-MTU data packet acknowledged by a minimal ACK: per-hop propagation
// plus store-and-forward serialization in both directions.
func (n *Network) BaseRTT(src, dst int) sim.Time {
	path := n.path(src, dst)
	var rtt sim.Time
	wire := netsim.DefaultMTU + netsim.HeaderBytes
	for _, hop := range path {
		rtt += hop.rate.Serialize(wire) + hop.delay
		rtt += hop.rate.Serialize(netsim.AckBytes) + hop.delay
	}
	return rtt
}

type hop struct {
	rate  netsim.Rate
	delay sim.Time
}

// path returns the sequence of links on one shortest path src -> dst. It
// shares the persistent node index and BFS scratch with computeRoutes
// (path runs at flow-setup time, never while a recompute is in progress).
func (n *Network) path(src, dst int) []hop {
	if src == dst {
		return nil
	}
	// BFS from dst so we can walk downhill from src.
	nh := len(n.Hosts)
	total := nh + len(n.Switches)
	n.ensureIndex()
	if cap(n.dist) < total {
		n.dist = make([]int, total)
	}
	dist := n.dist[:total]
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	queue := append(n.queue[:0], dst)
	var hostPort [1]*netsim.Port
	neighbors := func(u int) []*netsim.Port {
		if u < nh {
			hostPort[0] = n.Hosts[u].NIC
			return hostPort[:]
		}
		return n.Switches[u-nh].Ports
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, p := range neighbors(u) {
			v := n.nodeOf(p.Peer.Owner)
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	n.queue = queue[:0]
	var hops []hop
	u := src
	for u != dst {
		advanced := false
		for _, p := range neighbors(u) {
			v := n.nodeOf(p.Peer.Owner)
			if dist[v] == dist[u]-1 {
				hops = append(hops, hop{rate: p.Rate, delay: p.PropDelay})
				u = v
				advanced = true
				break
			}
		}
		if !advanced {
			panic(fmt.Sprintf("topo: no path from %d to %d", src, dst))
		}
	}
	return hops
}

// Star builds nHosts hosts on a single switch. Host nHosts-1 is
// conventionally the receiver in the micro-benchmarks, making its access
// link the bottleneck.
func Star(eng *sim.Engine, nHosts int, cfg Config) *Network {
	n := &Network{Eng: eng, Cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sw := n.newSwitch("star", rng)
	for i := 0; i < nHosts; i++ {
		n.connectHost(n.newHost(), sw)
	}
	n.finalize()
	return n
}

// FatTree builds a standard k-ary fat-tree: k pods, each with k/2 edge and
// k/2 aggregation switches, (k/2)^2 cores, and k^3/4 hosts.
func FatTree(eng *sim.Engine, k int, cfg Config) *Network {
	if k%2 != 0 {
		panic("topo: fat-tree k must be even")
	}
	n := &Network{Eng: eng, Cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	half := k / 2
	cores := make([]*netsim.Switch, half*half)
	for i := range cores {
		cores[i] = n.newSwitch(fmt.Sprintf("core%d", i), rand.New(rand.NewSource(cfg.Seed+int64(i)+1)))
	}
	_ = rng
	for pod := 0; pod < k; pod++ {
		edges := make([]*netsim.Switch, half)
		aggs := make([]*netsim.Switch, half)
		for i := 0; i < half; i++ {
			edges[i] = n.newSwitch(fmt.Sprintf("p%de%d", pod, i), rand.New(rand.NewSource(cfg.Seed+int64(pod*100+i)+1000)))
			aggs[i] = n.newSwitch(fmt.Sprintf("p%da%d", pod, i), rand.New(rand.NewSource(cfg.Seed+int64(pod*100+i)+2000)))
		}
		for i, e := range edges {
			for j := 0; j < half; j++ {
				n.connectHost(n.newHost(), e)
				n.connectSwitches(e, aggs[j], cfg.fabricRate())
			}
			_ = i
		}
		for i, a := range aggs {
			for j := 0; j < half; j++ {
				n.connectSwitches(a, cores[i*half+j], cfg.fabricRate())
			}
		}
	}
	n.finalize()
	return n
}

// Clos builds a three-tier Clos/fat-tree with explicit dimensions: pods
// pods, each with edges edge switches of hostsPerEdge hosts and aggs
// aggregation switches; coreCount core switches each connected to every
// aggregation switch. fabricRate applies to edge-agg and agg-core links.
// With hostsPerEdge*HostRate == aggs*fabricRate the fabric is non-blocking.
func Clos(eng *sim.Engine, pods, edges, hostsPerEdge, aggs, coreCount int, cfg Config) *Network {
	n := &Network{Eng: eng, Cfg: cfg}
	cores := make([]*netsim.Switch, coreCount)
	for i := range cores {
		cores[i] = n.newSwitch(fmt.Sprintf("core%d", i), rand.New(rand.NewSource(cfg.Seed+int64(i)+1)))
	}
	for pod := 0; pod < pods; pod++ {
		aggSw := make([]*netsim.Switch, aggs)
		for i := range aggSw {
			aggSw[i] = n.newSwitch(fmt.Sprintf("p%da%d", pod, i), rand.New(rand.NewSource(cfg.Seed+int64(pod*100+i)+2000)))
			for _, c := range cores {
				n.connectSwitches(aggSw[i], c, cfg.fabricRate())
			}
		}
		for e := 0; e < edges; e++ {
			edge := n.newSwitch(fmt.Sprintf("p%de%d", pod, e), rand.New(rand.NewSource(cfg.Seed+int64(pod*100+e)+3000)))
			for i := 0; i < hostsPerEdge; i++ {
				n.connectHost(n.newHost(), edge)
			}
			for _, a := range aggSw {
				n.connectSwitches(edge, a, cfg.fabricRate())
			}
		}
	}
	n.finalize()
	return n
}

// CoflowClos builds the paper's coflow-scenario fabric: a non-blocking
// 5-pod fat-tree with 320 hosts, 100 Gb/s host links and 400 Gb/s fabric
// links (8 edge switches x 8 hosts per pod, 2 aggregation switches per
// pod, 8 cores).
func CoflowClos(eng *sim.Engine, cfg Config) *Network {
	cfg.FabricRate = 400 * netsim.Gbps
	return Clos(eng, 5, 8, 8, 2, 8, cfg)
}

// SpineLeaf builds a two-tier leaf-spine fabric: leaves leaf switches with
// hostsPerLeaf hosts each and spines spine switches, one link from every
// leaf to every spine. With 12 hosts x 100G down and 6 spines x 100G up
// this reproduces the paper's 2:1 oversubscribed ML-cluster fabric.
func SpineLeaf(eng *sim.Engine, leaves, spines, hostsPerLeaf int, cfg Config) *Network {
	n := &Network{Eng: eng, Cfg: cfg}
	spineSw := make([]*netsim.Switch, spines)
	for i := range spineSw {
		spineSw[i] = n.newSwitch(fmt.Sprintf("spine%d", i), rand.New(rand.NewSource(cfg.Seed+int64(i)+1)))
	}
	for l := 0; l < leaves; l++ {
		leaf := n.newSwitch(fmt.Sprintf("leaf%d", l), rand.New(rand.NewSource(cfg.Seed+int64(l)+5000)))
		for i := 0; i < hostsPerLeaf; i++ {
			n.connectHost(n.newHost(), leaf)
		}
		for _, sp := range spineSw {
			n.connectSwitches(leaf, sp, cfg.fabricRate())
		}
	}
	n.finalize()
	return n
}
