package cc

import "math"

// NoCC is the uncontrolled sender used for the "Physical* w/o CC"
// baseline: it transmits at line rate and relies entirely on PFC and
// priority queues. Its window is effectively unbounded.
type NoCC struct {
	drv Driver
}

// NewNoCC returns an uncontrolled sender.
func NewNoCC() *NoCC { return &NoCC{} }

// Name implements Algorithm.
func (n *NoCC) Name() string { return "nocc" }

// WantsECT implements Algorithm.
func (n *NoCC) WantsECT() bool { return false }

// Start implements Algorithm.
func (n *NoCC) Start(drv Driver) { n.drv = drv }

// OnAck implements Algorithm.
func (n *NoCC) OnAck(fb Feedback) {}

// OnProbeAck implements Algorithm.
func (n *NoCC) OnProbeAck(fb Feedback) {}

// OnRTO implements Algorithm.
func (n *NoCC) OnRTO() {}

// CwndBytes implements Algorithm: effectively unbounded, so the transport
// releases packets as fast as the NIC drains them.
func (n *NoCC) CwndBytes() float64 { return math.Inf(1) }
