// Package cc implements the congestion-control algorithms evaluated in the
// PrioPlus paper: Swift (with and without target scaling), DCTCP and
// D2TCP, LEDBAT, HPCC, and an uncontrolled line-rate sender. The PrioPlus
// enhancement itself lives in internal/core and wraps any algorithm here
// that implements DelayBased.
package cc

import (
	"math/rand"

	"prioplus/internal/netsim"
	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// Feedback carries everything an arriving ACK (or probe ACK) tells the
// congestion controller.
type Feedback struct {
	Now        sim.Time
	Delay      sim.Time // measured RTT, including measurement noise
	CE         bool     // ECN congestion-experienced echo
	AckedBytes int      // bytes newly acknowledged by this ACK
	Seq        int64    // data byte offset this ACK acknowledges
	CumAck     int64    // receiver's cumulative in-order byte count
	INT        []netsim.INTRecord
}

// Driver is the view a congestion controller has of its flow's transport.
// It provides the paper's Algorithm 1 primitives: StopSending,
// ResumeSending, SendProbeAfter, and RTO reset, plus static path facts.
type Driver interface {
	Now() sim.Time
	BaseRTT() sim.Time
	LineRate() netsim.Rate
	MTU() int
	SndNxt() int64
	RemainingBytes() int64
	StopSending()
	ResumeSending()
	SendProbeAfter(d sim.Time)
	ResetRTO()
	Rand() *rand.Rand
}

// Algorithm is a per-flow congestion controller. The transport calls
// Start once, then OnAck/OnProbeAck/OnRTO as events arrive, and reads
// CwndBytes before each send decision.
type Algorithm interface {
	// Start is called when the flow is ready to transmit. The algorithm
	// may immediately suspend transmission and probe first.
	Start(drv Driver)
	OnAck(fb Feedback)
	OnProbeAck(fb Feedback)
	OnRTO()
	// CwndBytes is the current congestion window in bytes; it may be a
	// fraction of one packet, in which case the transport paces.
	CwndBytes() float64
	// WantsECT reports whether data packets should be ECN-capable.
	WantsECT() bool
	Name() string
}

// DecisionLogger is the optional audit seam a Driver may implement: when it
// does (the transport's Sender, for flows sampled by an obs.FlowTracer),
// controllers report their structural decisions — multiplicative decreases,
// yields, probe schedules, resumes — as spans on the flow's causal
// timeline. delay is the sensed delay that triggered the decision; a and b
// are kind-specific (see the obs.SpanKind constants).
type DecisionLogger interface {
	LogDecision(kind obs.SpanKind, delay sim.Time, a, b float64)
}

// DecisionLoggerOf extracts the decision-audit seam from a driver, nil when
// the driver has none or the flow is not sampled. Drivers that can say
// per-flow whether auditing is on expose DecisionLog() (the transport
// returns nil for unsampled flows, so their controllers skip the audit with
// one nil check at Start); a driver that is itself a DecisionLogger (tests)
// is used directly. Controllers call this once in Start and nil-check the
// result per decision.
func DecisionLoggerOf(drv Driver) DecisionLogger {
	if p, ok := drv.(interface{ DecisionLog() DecisionLogger }); ok {
		return p.DecisionLog()
	}
	if dl, ok := drv.(DecisionLogger); ok {
		return dl
	}
	return nil
}

// DelayBased is the subset of delay-based algorithms PrioPlus can wrap: it
// exposes the window and additive-increase step for external adjustment and
// accepts a fixed target delay (disabling any target-scaling mechanism),
// exactly the integration points §4.1 of the paper requires.
type DelayBased interface {
	Algorithm
	CwndPackets() float64
	SetCwndPackets(w float64)
	// AIStep returns the current additive-increase step in packets/RTT.
	AIStep() float64
	SetAIStep(w float64)
	// BaseAIStep returns the algorithm's configured (unmodified) AI step.
	BaseAIStep() float64
	// SetTarget pins the target delay (absolute, including base RTT) and
	// disables target scaling.
	SetTarget(t sim.Time)
}
