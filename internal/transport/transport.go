// Package transport implements the end-host transport the congestion
// controllers drive: per-flow window/pacing-based senders with per-packet
// ACKs, RTT measurement with injectable noise, PrioPlus probe support,
// retransmission timeouts, and IRN-style selective loss recovery for the
// lossy experiments.
package transport

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"prioplus/internal/cc"
	"prioplus/internal/netsim"
	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// Stack is the per-host transport: it owns every sending and receiving
// flow terminating at its host and is installed as the host's packet sink.
type Stack struct {
	Eng  *sim.Engine
	Host *netsim.Host

	// AckPrio is the physical priority for ACKs. The paper's default is
	// the highest queue (reverse congestion avoidance, §4.4); set
	// AckPrioData to use the data packet's own priority (PrioPlus*).
	AckPrio     int
	AckPrioData bool

	// Noise, when non-nil, returns an additive delay-measurement noise
	// sample applied to every RTT measurement at this host.
	Noise func() sim.Time

	// OnFlowDone, when non-nil, is called with a summary of every flow
	// this stack completes, just before the flow's own OnComplete. It is
	// the transport's observability hook (harness.Net.Observe wires it to
	// an obs.Recorder); nil costs one branch per flow completion.
	OnFlowDone func(FlowStats)

	// RTTHist, when non-nil, records every sender-side data-ACK RTT sample
	// in nanoseconds (after Noise — the same value the CC sees). DelayHist
	// records the receiver-side one-way fabric delay of every delivered
	// data packet (SentAt to delivery, no noise) in nanoseconds. Installed
	// by harness.Net.Observe; nil costs one branch per sample.
	RTTHist   *obs.Histogram
	DelayHist *obs.Histogram

	// FlowTrace, when non-nil, samples flows for causal tracing: admitted
	// senders mark a stride of their packets Traced (hop journeys), record
	// transport events (acks, retransmissions, RTOs, delivery), and expose
	// the audit sink their congestion controller logs decisions to.
	// Installed on every stack of a run by harness.Net.Observe; nil costs
	// one branch per flow start.
	FlowTrace *obs.FlowTracer

	// Pool, when non-nil, is the run-wide packet pool: all packets this
	// stack emits are drawn from it and every packet it terminates
	// (delivered data once its ACK is built, ACKs and probe-acks once the
	// CC hook returns) is recycled into it. Install the same pool on every
	// stack of a run (internal/harness does); nil keeps the pool-free
	// allocate-and-GC behavior.
	Pool *netsim.PacketPool

	senders map[int64]*Sender
	recvs   map[int64]*recvState
	segfree []*segment // recycled segment records, shared by this host's flows

	// One-entry caches in front of the flow maps: consecutive packets
	// overwhelmingly belong to the same flow, so the per-packet lookup is
	// a pointer compare instead of a map hash. lastSender is invalidated
	// when its flow completes (the map entry is deleted there, and flow
	// IDs may be reused by a later flow); recvState entries are never
	// deleted, so lastRecv needs no invalidation.
	lastSender   *Sender
	lastSenderID int64
	lastRecv     *recvState
	lastRecvID   int64
}

// senderFor resolves the sending flow for an ACK, through the one-entry
// cache. Returns nil for unknown (completed) flows, like the map did.
func (st *Stack) senderFor(id int64) *Sender {
	if st.lastSender != nil && st.lastSenderID == id {
		return st.lastSender
	}
	s := st.senders[id]
	if s != nil {
		st.lastSender, st.lastSenderID = s, id
	}
	return s
}

// getSeg returns a zeroed segment, recycled when possible.
func (st *Stack) getSeg() *segment {
	if n := len(st.segfree); n > 0 {
		seg := st.segfree[n-1]
		st.segfree[n-1] = nil
		st.segfree = st.segfree[:n-1]
		return seg
	}
	return &segment{}
}

// putSeg recycles an acknowledged segment record.
func (st *Stack) putSeg(seg *segment) {
	*seg = segment{}
	st.segfree = append(st.segfree, seg)
}

// FlowStats summarizes a completed flow for observability: identity,
// completion time, and the loss-recovery counters accumulated while it ran.
type FlowStats struct {
	ID          int64
	Dst         int
	Size        int64
	FCT         sim.Time
	Retransmits int64
	RTOs        int64
	ProbesSent  int64
}

// NewStack creates a transport stack bound to host h and installs it as
// the host's sink. ACKs default to the highest priority queue.
func NewStack(eng *sim.Engine, h *netsim.Host) *Stack {
	st := &Stack{
		Eng:     eng,
		Host:    h,
		AckPrio: h.NIC.NumQueues() - 1,
		senders: make(map[int64]*Sender),
		recvs:   make(map[int64]*recvState),
	}
	h.Sink = st.handle
	return st
}

type recvState struct {
	cum int64
	ooo map[int64]int

	flog     *obs.FlowLog // receiver side of a traced flow (nil when unsampled)
	flogInit bool         // flog lookup performed
}

func (st *Stack) handle(pkt *netsim.Packet) {
	switch pkt.Type {
	case netsim.Data:
		st.onData(pkt) // recycles pkt once the ACK is built
	case netsim.Ack:
		if s := st.senderFor(pkt.FlowID); s != nil {
			s.onAck(pkt)
		}
		st.Pool.Put(pkt)
	case netsim.Probe:
		prio := st.AckPrio
		if st.AckPrioData {
			prio = pkt.Prio
		}
		st.Host.Send(st.Pool.ProbeAck(pkt, prio))
		st.Pool.Put(pkt)
	case netsim.ProbeAck:
		if s := st.senderFor(pkt.FlowID); s != nil {
			s.onProbeAck(pkt)
		}
		st.Pool.Put(pkt)
	}
}

func (st *Stack) onData(pkt *netsim.Packet) {
	r := st.lastRecv
	if r == nil || st.lastRecvID != pkt.FlowID {
		var ok bool
		r, ok = st.recvs[pkt.FlowID]
		if !ok {
			r = &recvState{}
			st.recvs[pkt.FlowID] = r
		}
		st.lastRecv, st.lastRecvID = r, pkt.FlowID
	}
	switch {
	case pkt.Seq == r.cum:
		r.cum += int64(pkt.Payload)
		for {
			n, ok := r.ooo[r.cum]
			if !ok {
				break
			}
			delete(r.ooo, r.cum)
			r.cum += int64(n)
		}
	case pkt.Seq > r.cum:
		if r.ooo == nil {
			r.ooo = make(map[int64]int)
		}
		r.ooo[pkt.Seq] = pkt.Payload
	}
	prio := st.AckPrio
	if st.AckPrioData {
		prio = pkt.Prio
	}
	if st.DelayHist != nil {
		st.DelayHist.Observe(int64((st.Eng.Now() - pkt.SentAt) / sim.Nanosecond))
	}
	if pkt.Traced && st.FlowTrace != nil {
		if !r.flogInit {
			r.flogInit = true
			r.flog = st.FlowTrace.Log(pkt.FlowID)
		}
		if r.flog != nil {
			r.flog.Add(obs.Span{
				T: st.Eng.Now(), Kind: obs.SpanDeliver, Seq: pkt.Seq,
				Delay: st.Eng.Now() - pkt.SentAt,
			})
		}
	}
	// The ACK takes ownership of the data packet's INT records; the data
	// packet itself is done and goes back to the pool.
	st.Host.Send(st.Pool.Ack(pkt, prio, r.cum))
	st.Pool.Put(pkt)
}

// measureRTT converts an echoed send timestamp into a (noisy) RTT sample.
func (st *Stack) measureRTT(sentAt sim.Time) sim.Time {
	rtt := st.Eng.Now() - sentAt
	if st.Noise != nil {
		rtt += st.Noise()
	}
	return rtt
}

// FlowSpec describes one sender-side flow.
type FlowSpec struct {
	ID      int64
	Dst     int
	Size    int64 // bytes; must be > 0
	Prio    int   // physical priority for data packets
	VPrio   int16 // virtual priority carried in the header (DSCP-like)
	MTU     int   // payload bytes per packet (0 = netsim.DefaultMTU)
	BaseRTT sim.Time
	Algo    cc.Algorithm
	// OnComplete fires when the last byte is cumulatively acknowledged.
	OnComplete func(fct sim.Time)
	// Rand seeds the flow's private randomness (probe jitter). Required.
	Rand *rand.Rand
	// RTOMin bounds the retransmission timer (0 = 100 us).
	RTOMin sim.Time
	// Paced spreads the whole window across the RTT instead of sending
	// ack-clocked bursts (sub-MTU windows are always paced).
	Paced bool
	// MinRateGap caps the pacing gap, implementing the minimum send rate
	// CCs keep so congestion signals arrive periodically (§3.3: 100 Mb/s,
	// one full packet every ~80 us). 0 uses the default; negative
	// disables the floor.
	MinRateGap sim.Time
}

// Sender is the sending half of one flow. It implements cc.Driver.
type Sender struct {
	st   *Stack
	spec FlowSpec
	mtu  int

	started  bool
	finished bool
	stopped  bool // CC-requested suspension (PrioPlus yield)

	sndNxt      int64
	sndUna      int64
	unacked     segTable // sent and not yet acknowledged, by segment start
	minOut      int64    // lower bound on the smallest unacked seq
	lossScanned int64    // high-water mark of the loss-detection walk
	retxq       []int64  // sequences to retransmit, FIFO
	inflight    int

	srtt        sim.Time
	nextPacedAt sim.Time

	paceEv      *sim.Event
	rtoEv       *sim.Event
	rtoDeadline sim.Time
	probeEv     *sim.Event

	startAt sim.Time

	// Flow tracing (nil flog for unsampled flows; see Stack.FlowTrace).
	flog       *obs.FlowLog
	pktCount   int64 // data packets emitted, for the journey stride
	traceEvery int64 // journey sampling stride (every Nth data packet)

	// Counters.
	Retransmits int64
	RTOs        int64
	ProbesSent  int64
}

// NewFlow registers a sender-side flow on the stack. Call Start to begin.
func (st *Stack) NewFlow(spec FlowSpec) *Sender {
	if spec.Size <= 0 {
		panic("transport: flow size must be positive")
	}
	if spec.MTU == 0 {
		spec.MTU = netsim.DefaultMTU
	}
	if spec.Rand == nil {
		panic("transport: FlowSpec.Rand is required for determinism")
	}
	if spec.RTOMin == 0 {
		spec.RTOMin = 100 * sim.Microsecond
	}
	if spec.MinRateGap == 0 {
		spec.MinRateGap = 80 * sim.Microsecond
	}
	if _, dup := st.senders[spec.ID]; dup {
		panic(fmt.Sprintf("transport: duplicate flow id %d", spec.ID))
	}
	s := &Sender{
		st:   st,
		spec: spec,
		mtu:  spec.MTU,
	}
	s.unacked.init(int64(s.mtu))
	st.senders[spec.ID] = s
	return s
}

// Start begins transmission (or probing, if the CC asks for it).
func (s *Sender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.startAt = s.st.Eng.Now()
	if s.st.FlowTrace != nil {
		// Admit before Algo.Start so the controller's start decision (and
		// PrioPlus's probe-first choice) lands on the timeline.
		s.flog = s.st.FlowTrace.Admit(s.spec.ID)
		s.traceEvery = s.st.FlowTrace.JourneyStride()
	}
	s.spec.Algo.Start(s)
	if !s.stopped {
		s.trySend()
	}
	s.armRTO()
}

// --- cc.Driver implementation ---

// Now implements cc.Driver.
func (s *Sender) Now() sim.Time { return s.st.Eng.Now() }

// BaseRTT implements cc.Driver.
func (s *Sender) BaseRTT() sim.Time { return s.spec.BaseRTT }

// LineRate implements cc.Driver.
func (s *Sender) LineRate() netsim.Rate { return s.st.Host.LineRate() }

// MTU implements cc.Driver.
func (s *Sender) MTU() int { return s.mtu }

// SndNxt implements cc.Driver.
func (s *Sender) SndNxt() int64 { return s.sndNxt }

// RemainingBytes implements cc.Driver.
func (s *Sender) RemainingBytes() int64 { return s.spec.Size - s.sndUna }

// StopSending implements cc.Driver: suspend data transmission.
func (s *Sender) StopSending() {
	s.stopped = true
	if s.paceEv != nil {
		s.st.Eng.Cancel(s.paceEv)
		s.paceEv = nil
	}
}

// ResumeSending implements cc.Driver.
func (s *Sender) ResumeSending() {
	if s.finished {
		return
	}
	s.stopped = false
	s.nextPacedAt = 0
	s.armRTO()
	s.trySend()
}

// SendProbeAfter implements cc.Driver: schedule a probe packet.
func (s *Sender) SendProbeAfter(d sim.Time) {
	if s.finished {
		return
	}
	if s.probeEv != nil {
		s.st.Eng.Cancel(s.probeEv)
	}
	s.probeEv = s.st.Eng.After(d, func() {
		s.probeEv = nil
		s.sendProbe()
	})
}

// ResetRTO implements cc.Driver.
func (s *Sender) ResetRTO() { s.armRTO() }

// Rand implements cc.Driver.
func (s *Sender) Rand() *rand.Rand { return s.spec.Rand }

// DecisionLog exposes the flow's audit sink to cc.DecisionLoggerOf: nil
// unless the flow was sampled by the run's FlowTracer, so controllers of
// untraced flows skip auditing with one nil check at Start.
func (s *Sender) DecisionLog() cc.DecisionLogger {
	if s.flog == nil {
		return nil
	}
	return s
}

// LogDecision implements cc.DecisionLogger: one span on the flow's
// timeline, stamped with the current simulated time.
func (s *Sender) LogDecision(kind obs.SpanKind, delay sim.Time, a, b float64) {
	s.flog.Add(obs.Span{T: s.st.Eng.Now(), Kind: kind, Delay: delay, A: a, B: b})
}

// --- sending machinery ---

func (s *Sender) sendProbe() {
	if s.finished {
		return
	}
	pkt := s.st.Pool.Probe(s.spec.ID, s.st.Host.ID, s.spec.Dst, s.spec.Prio)
	pkt.SentAt = s.st.Eng.Now()
	if s.flog != nil {
		pkt.Traced = true // probes are always journey-traced (they are sparse)
	}
	s.ProbesSent++
	s.st.Host.Send(pkt)
	s.armRTO()
}

// segment tracks one sent-but-unacknowledged payload. counted reports
// whether its bytes are currently included in the inflight total; a
// segment declared lost is uncounted until retransmitted.
type segment struct {
	seq     int64 // segment start, the segTable validation key
	length  int
	counted bool
	queued  bool // pending in the retransmit queue
}

// segTable maps MTU-strided segment starts to in-flight segment records,
// replacing the former map[int64]*segment on the per-ACK hot path (the
// map's hashing dominated ACK processing). Slot selection is
// (seq/mtu) & mask; because live starts are distinct multiples of the MTU
// spanning at most the largest window the flow has reached, the table
// stays collision-free once it covers that span — put grows it the first
// time two live segments would share a slot. Every record stores its own
// seq and lookups validate it, so an ACK for a long-retired sequence
// misses exactly like the map did.
//
// The seq/mtu divide is a multiply by the fixed-point reciprocal
// magic = ceil(2^64/mtu): with e = magic*mtu - 2^64 in [0, mtu), the
// error term seq*e/(mtu*2^64) stays below 1/mtu for every seq < 2^64/mtu,
// so hi64(seq*magic) == seq/mtu exactly for all sequence numbers below
// 2^64/mtu >= 2^50 bytes — far past any representable flow.
type segTable struct {
	slots  []*segment
	mask   int64
	n      int
	stride int64  // the flow's MTU; segment starts are multiples of it
	magic  uint64 // ceil(2^64/stride)
}

func (t *segTable) init(stride int64) {
	t.stride = stride
	t.magic = ^uint64(0)/uint64(stride) + 1
}

func (t *segTable) idx(seq int64) int64 {
	hi, _ := bits.Mul64(uint64(seq), t.magic)
	return int64(hi)
}

func (t *segTable) get(seq int64) *segment {
	if t.n == 0 {
		return nil
	}
	if seg := t.slots[t.idx(seq)&t.mask]; seg != nil && seg.seq == seq {
		return seg
	}
	return nil
}

func (t *segTable) put(seq int64, seg *segment) {
	if t.slots == nil {
		t.growTo(64)
	}
	for t.slots[t.idx(seq)&t.mask] != nil {
		// A live segment already sits here: the window outgrew the table.
		t.growTo(2 * len(t.slots))
	}
	t.slots[t.idx(seq)&t.mask] = seg
	t.n++
}

func (t *segTable) del(seq int64) {
	i := t.idx(seq) & t.mask
	if t.slots[i] != nil && t.slots[i].seq == seq {
		t.slots[i] = nil
		t.n--
	}
}

// growTo rehashes into a table of the given power-of-two size. Live
// indexes are distinct and span less than the new size, so reinsertion
// cannot collide.
func (t *segTable) growTo(size int) {
	old := t.slots
	t.slots = make([]*segment, size)
	t.mask = int64(size - 1)
	for _, seg := range old {
		if seg != nil {
			t.slots[t.idx(seg.seq)&t.mask] = seg
		}
	}
}

// nextSeq returns the next payload to transmit: retransmissions first,
// then new data. ok is false when nothing is pending.
func (s *Sender) nextSeq() (seq int64, length int, retx, ok bool) {
	for len(s.retxq) > 0 {
		seq = s.retxq[0]
		if seg := s.unacked.get(seq); seg != nil {
			return seq, seg.length, true, true
		}
		s.retxq = s.retxq[1:] // already acked meanwhile
	}
	if s.sndNxt < s.spec.Size {
		length = s.mtu
		if rest := s.spec.Size - s.sndNxt; rest < int64(length) {
			length = int(rest)
		}
		return s.sndNxt, length, false, true
	}
	return 0, 0, false, false
}

func (s *Sender) trySend() {
	if s.finished || s.stopped || !s.started {
		return
	}
	cwnd := s.spec.Algo.CwndBytes()
	for {
		seq, length, retx, ok := s.nextSeq()
		if !ok {
			return
		}
		if float64(s.inflight) >= cwnd {
			return
		}
		// Sub-packet windows are paced at cwnd/RTT; Paced flows always.
		if cwnd < float64(s.mtu) || s.spec.Paced {
			now := s.st.Eng.Now()
			if now < s.nextPacedAt {
				s.schedulePace(s.nextPacedAt - now)
				return
			}
			rtt := s.srtt
			if rtt == 0 {
				rtt = s.spec.BaseRTT
			}
			gap := sim.Time(float64(rtt) * float64(s.mtu) / math.Max(cwnd, 1))
			if s.spec.MinRateGap > 0 && gap > s.spec.MinRateGap {
				gap = s.spec.MinRateGap
			}
			s.nextPacedAt = now + gap
		}
		s.emit(seq, length, retx)
	}
}

func (s *Sender) schedulePace(d sim.Time) {
	if s.paceEv != nil {
		return
	}
	s.paceEv = s.st.Eng.After(d, func() {
		s.paceEv = nil
		s.trySend()
	})
}

func (s *Sender) emit(seq int64, length int, retx bool) {
	if retx {
		s.retxq = s.retxq[1:]
		s.Retransmits++
		if seg := s.unacked.get(seq); seg != nil {
			seg.queued = false
			if !seg.counted {
				seg.counted = true
				s.inflight += seg.length
			}
		}
	} else {
		seg := s.st.getSeg()
		seg.seq = seq
		seg.length = length
		seg.counted = true
		s.unacked.put(seq, seg)
		s.sndNxt = seq + int64(length)
		s.inflight += length
	}
	pkt := s.st.Pool.Data(s.spec.ID, s.st.Host.ID, s.spec.Dst, s.spec.Prio, seq, length)
	pkt.VPrio = s.spec.VPrio
	pkt.ECT = s.spec.Algo.WantsECT()
	pkt.SentAt = s.st.Eng.Now()
	if s.flog != nil {
		s.pktCount++
		if s.traceEvery <= 1 || s.pktCount%s.traceEvery == 0 {
			pkt.Traced = true
		}
		if retx {
			// Retransmissions always make the timeline, traced or not.
			s.flog.Add(obs.Span{T: pkt.SentAt, Kind: obs.SpanRetx, Seq: seq, A: float64(length)})
		}
	}
	s.st.Host.Send(pkt)
	s.armRTO()
}

// armRTO pushes the retransmission deadline forward. The timer is lazy:
// the pending event is never rescheduled (heap churn per packet would
// dominate the simulator); when it fires early it re-arms itself at the
// current deadline.
func (s *Sender) armRTO() {
	if s.finished {
		return
	}
	rto := 4 * s.srtt
	if rto < s.spec.RTOMin {
		rto = s.spec.RTOMin
	}
	s.rtoDeadline = s.st.Eng.Now() + rto
	if s.rtoEv == nil {
		s.rtoEv = s.st.Eng.AtK(s.rtoDeadline, s.onRTO, sim.EKRTO)
	}
}

func (s *Sender) onRTO() {
	s.rtoEv = nil
	if s.finished {
		return
	}
	if now := s.st.Eng.Now(); now < s.rtoDeadline {
		// The deadline moved while this event was pending: re-arm.
		s.rtoEv = s.st.Eng.AtK(s.rtoDeadline, s.onRTO, sim.EKRTO)
		return
	}
	s.RTOs++
	if s.flog != nil {
		s.flog.Add(obs.Span{T: s.st.Eng.Now(), Kind: obs.SpanRTO, A: float64(s.inflight)})
	}
	s.spec.Algo.OnRTO()
	if s.stopped {
		// A probe (or its ACK) was lost: retry immediately.
		if s.probeEv == nil {
			s.sendProbe()
		} else {
			s.armRTO()
		}
		return
	}
	// An RTO means the ACK clock is dead: everything outstanding is
	// presumed lost. Uncount and re-queue it all (in order) so the
	// collapsed window can admit the retransmissions, and reset the
	// loss-scan mark so future gap detection can rediscover this region.
	s.advanceMin()
	s.lossScanned = s.minOut
	for seq := s.minOut; seq < s.sndNxt; seq += int64(s.mtu) {
		if s.unacked.get(seq) != nil {
			s.queueRetx(seq)
		}
	}
	s.armRTO()
	s.trySend()
}

// queueRetx declares a segment lost: its bytes leave the inflight total so
// the window admits the retransmission.
func (s *Sender) queueRetx(seq int64) {
	seg := s.unacked.get(seq)
	if seg == nil || seg.queued {
		return
	}
	seg.queued = true
	if seg.counted {
		seg.counted = false
		s.inflight -= seg.length
	}
	s.retxq = append(s.retxq, seq)
}

// advanceMin moves the minimum-outstanding cursor past acknowledged
// sequences. Segment starts are multiples of the MTU, so the walk is exact
// and, being monotone, amortized O(1) per acknowledgment.
func (s *Sender) advanceMin() {
	for s.minOut < s.sndNxt {
		if s.unacked.get(s.minOut) != nil {
			return
		}
		s.minOut += int64(s.mtu)
	}
}

func (s *Sender) updateSRTT(rtt sim.Time) {
	if s.srtt == 0 {
		s.srtt = rtt
	} else {
		s.srtt = (7*s.srtt + rtt) / 8
	}
}

func (s *Sender) onAck(pkt *netsim.Packet) {
	if s.finished {
		return
	}
	rtt := s.st.measureRTT(pkt.SentAt)
	s.updateSRTT(rtt)
	if s.st.RTTHist != nil {
		s.st.RTTHist.Observe(int64(rtt / sim.Nanosecond))
	}

	newly := 0
	if seg := s.unacked.get(pkt.Seq); seg != nil {
		s.unacked.del(pkt.Seq)
		if seg.counted {
			s.inflight -= seg.length
		}
		newly += seg.length
		s.st.putSeg(seg)
	}
	if pkt.AckSeq > s.sndUna {
		// Cumulative advance: clear anything below it. Segment starts are
		// MTU-strided, so walking the cursor is amortized O(1) per ACK.
		for seq := s.minOut; seq < pkt.AckSeq; seq += int64(s.mtu) {
			seg := s.unacked.get(seq)
			if seg == nil {
				continue
			}
			s.unacked.del(seq)
			if seg.counted {
				s.inflight -= seg.length
			}
			newly += seg.length
			s.st.putSeg(seg)
		}
		s.sndUna = pkt.AckSeq
		if s.minOut < pkt.AckSeq {
			s.minOut = pkt.AckSeq
		}
	}
	s.advanceMin()

	// IRN-style selective repeat: an ACK for byte Seq with a cumulative
	// ACK below it means the receiver has holes. Any still-unacked segment
	// reordered past by at least three segments is declared lost and
	// retransmitted. The stride walk only runs while the receiver reports
	// a hole, so lossless runs never pay for it.
	if pkt.Seq > pkt.AckSeq && pkt.Seq-pkt.AckSeq >= int64(3*s.mtu) {
		threshold := pkt.Seq - int64(3*s.mtu)
		seq := max(s.minOut, s.lossScanned)
		for ; seq <= threshold; seq += int64(s.mtu) {
			if s.unacked.get(seq) != nil {
				s.queueRetx(seq)
			}
		}
		if seq > s.lossScanned {
			// Each region is walked once; re-lost retransmissions within
			// it are recovered by the RTO.
			s.lossScanned = seq
		}
	}

	traced := s.flog != nil && pkt.Traced
	if traced {
		// Pull the hop journey off the piggyback array and strip the trace
		// records before the CC sees the feedback: HPCC's utilization
		// computation requires fb.INT to hold INT-proper records only.
		s.recordJourney(pkt)
	}
	fb := cc.Feedback{
		Now:        s.st.Eng.Now(),
		Delay:      rtt,
		CE:         pkt.CE,
		AckedBytes: newly,
		Seq:        pkt.Seq,
		CumAck:     pkt.AckSeq,
		INT:        pkt.INT,
	}
	s.spec.Algo.OnAck(fb)
	if traced {
		// Post-decision window: together with the decision audit this gives
		// the sampled "sensed delay -> decision -> rate" timeline for every
		// controller, with no per-algorithm per-ACK hooks.
		s.flog.Add(obs.Span{
			T: fb.Now, Kind: obs.SpanAcked, Seq: pkt.Seq, Delay: rtt,
			A: s.spec.Algo.CwndBytes(), B: float64(s.inflight),
		})
	}

	if s.sndUna >= s.spec.Size {
		s.complete()
		return
	}
	s.armRTO()
	s.trySend()
}

// recordJourney converts the trace records a traced packet accumulated at
// each egress hop into SpanHop entries, filtering them out of pkt.INT in
// place (trace records have Dev set, INT-proper records do not).
func (s *Sender) recordJourney(pkt *netsim.Packet) {
	kept := pkt.INT[:0]
	for _, r := range pkt.INT {
		if r.Dev == "" {
			kept = append(kept, r)
			continue
		}
		s.flog.Add(obs.Span{
			T: r.TS, Kind: obs.SpanHop, Seq: pkt.Seq,
			Delay: r.QWait, Dev: r.Dev, A: float64(r.QLen),
		})
	}
	pkt.INT = kept
}

func (s *Sender) onProbeAck(pkt *netsim.Packet) {
	if s.finished {
		return
	}
	rtt := s.st.measureRTT(pkt.SentAt)
	if s.stopped {
		// A probe after an idle period restarts the RTT estimate: the
		// smoothed value predates the yield and would mis-pace the
		// resumed window (Karn-style restart).
		s.srtt = rtt
	} else {
		s.updateSRTT(rtt)
	}
	traced := s.flog != nil && pkt.Traced
	if traced {
		// The probe-ack carries the probe's forward-path journey (the pool
		// constructor hands the piggyback array across).
		s.recordJourney(pkt)
	}
	fb := cc.Feedback{
		Now:    s.st.Eng.Now(),
		Delay:  rtt,
		Seq:    pkt.Seq,
		CumAck: s.sndUna,
	}
	s.spec.Algo.OnProbeAck(fb)
	if traced {
		s.flog.Add(obs.Span{
			T: fb.Now, Kind: obs.SpanProbeAcked, Delay: rtt,
			A: s.spec.Algo.CwndBytes(),
		})
	}
	if !s.stopped && !s.finished {
		s.trySend()
	}
}

func (s *Sender) complete() {
	s.finished = true
	for _, ev := range []*sim.Event{s.paceEv, s.rtoEv, s.probeEv} {
		if ev != nil {
			s.st.Eng.Cancel(ev)
		}
	}
	s.paceEv, s.rtoEv, s.probeEv = nil, nil, nil
	delete(s.st.senders, s.spec.ID)
	if s.st.lastSender == s {
		s.st.lastSender = nil
	}
	if s.st.OnFlowDone != nil {
		s.st.OnFlowDone(FlowStats{
			ID:          s.spec.ID,
			Dst:         s.spec.Dst,
			Size:        s.spec.Size,
			FCT:         s.st.Eng.Now() - s.startAt,
			Retransmits: s.Retransmits,
			RTOs:        s.RTOs,
			ProbesSent:  s.ProbesSent,
		})
	}
	if s.spec.OnComplete != nil {
		s.spec.OnComplete(s.st.Eng.Now() - s.startAt)
	}
}

// Finished reports whether all bytes have been acknowledged.
func (s *Sender) Finished() bool { return s.finished }

// Inflight returns the bytes currently in flight.
func (s *Sender) Inflight() int { return s.inflight }

// SRTT returns the smoothed RTT estimate.
func (s *Sender) SRTT() sim.Time { return s.srtt }

// Algo returns the flow's congestion controller.
func (s *Sender) Algo() cc.Algorithm { return s.spec.Algo }
