// Package obs is the simulator's observability layer: a metrics registry
// for per-run counters and high-water marks, and an optional JSONL event
// trace (see trace.go). It is designed around the engine-per-run model used
// by internal/runner: every run owns a private Recorder alongside its
// private sim.Engine, so nothing here takes locks and nothing is shared
// across goroutines.
//
// The layer is zero-cost when disabled. Hot-path hooks in internal/netsim
// and internal/transport are guarded by a single nil check (`if Trace !=
// nil`, `if OnFlowDone != nil`); counter fields that are always maintained
// (drops, ECN marks, pause time, high-water marks) are plain integer
// updates the simulator was already paying for. The registry itself is
// only walked once, after the run, by harness.Net.CollectMetrics.
//
// docs/OBSERVABILITY.md lists every metric name the harness emits, its
// units, and which paper figure it validates.
package obs

import "prioplus/internal/sim"

// Counter is a monotonically increasing metric cell. The zero value is
// ready to use. Counters are not safe for concurrent use: one run, one
// goroutine, one registry.
type Counter struct {
	v float64
}

// Add increases the counter by n.
func (c *Counter) Add(n float64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v }

// Gauge tracks a current value together with its high-water mark. The zero
// value is ready to use.
type Gauge struct {
	v, max float64
}

// Observe sets the current value and raises the high-water mark if needed.
func (g *Gauge) Observe(v float64) {
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Value returns the most recently observed value.
func (g *Gauge) Value() float64 { return g.v }

// Max returns the high-water mark across all observations.
func (g *Gauge) Max() float64 { return g.max }

// Registry is an ordered collection of named counters and gauges. Names
// use a slash-separated hierarchy ("net/drops", "switch/tor0/ecn_marks");
// the canonical names are documented in docs/OBSERVABILITY.md. Cells are
// created on first use; creation order is preserved so reports are
// deterministic.
type Registry struct {
	order    []string
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the counter with the given name, creating it on first
// use. Registering a name as both a counter and a gauge panics: it always
// indicates a metric-name collision.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	if _, clash := r.gauges[name]; clash {
		panic("obs: metric " + name + " already registered as a gauge")
	}
	c := &Counter{}
	r.counters[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if _, clash := r.counters[name]; clash {
		panic("obs: metric " + name + " already registered as a counter")
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Names returns every registered metric name in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.order...)
}

// Value returns the current value of a metric (a counter's count, a
// gauge's high-water mark) and whether the name is registered.
func (r *Registry) Value(name string) (float64, bool) {
	if c, ok := r.counters[name]; ok {
		return c.Value(), true
	}
	if g, ok := r.gauges[name]; ok {
		return g.Max(), true
	}
	return 0, false
}

// Snapshot returns every metric by name. Counters report their count,
// gauges their high-water mark (the registry's gauges all track maxima:
// buffer and queue occupancy peaks).
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64, len(r.order))
	for _, name := range r.order {
		v, _ := r.Value(name)
		out[name] = v
	}
	return out
}

// Recorder bundles the per-run observability state: a metrics registry, an
// optional event-trace sink, and the second-generation instruments —
// time-series sampler, latency histograms, flight recorder, watchdog. A nil
// field disables that instrument entirely; harness.Net.Observe only
// installs hooks for the parts that are non-nil.
type Recorder struct {
	// Metrics collects the run's counters and high-water marks. Filled by
	// harness.Net.CollectMetrics after the run; flow-completion aggregates
	// are updated live as flows finish.
	Metrics *Registry
	// Trace, when non-nil, receives one Event per simulator occurrence
	// (enqueue, dequeue, drop, ECN mark, PFC pause/resume, flow
	// completion). Use NewJSONLSink to stream events to a file.
	Trace Tracer
	// Series, when non-nil, samples simulator gauges at a fixed simulated-
	// time interval; harness.Net.Observe registers the standard sources and
	// installs the engine clock hook.
	Series *SeriesSet
	// Hist, when non-nil, records fabric-delay, FCT, and ACK-RTT latency
	// distributions via zero-alloc streaming histograms.
	Hist *HistSet
	// Flight, when non-nil, keeps the most recent trace events in a ring
	// for post-mortem dumps. It is chained in front of Trace, so the two
	// compose.
	Flight *FlightRecorder
	// Watchdog, when non-nil, is checked against the run's in-flight-bytes
	// and event-heap gauges at every Series sampling tick — or, when Series
	// is nil, at harness.DefaultWatchdogInterval.
	Watchdog *Watchdog
	// FlowTrace, when non-nil, records causal timelines (packet journeys +
	// CC decision audit) for a deterministic sample of flows. Installed by
	// harness.Net.Observe on the transport stacks and, via SwitchTracer, in
	// front of the switch trace hook.
	FlowTrace *FlowTracer
	// Faults accumulates executed fault events (link flaps, reboots).
	// Always present — fault events are rare, so unlike the sampling
	// instruments there is nothing to disable.
	Faults *FaultLog
	// Cost, when non-nil, attributes sampled per-event execution cost by
	// event kind; harness.Net.Observe installs it as the engine's cost
	// sampler and CollectMetrics folds the buckets into Metrics.
	Cost *CostProfiler
	// Runtime, when non-nil, merges host-process gauges (RSS, GC, heap,
	// events/sec, wall-vs-sim ratio) into Series. Requires Series; the
	// values are wall-clock facts, so artifacts with Runtime enabled are
	// not byte-deterministic.
	Runtime *RuntimeSampler
	// Live, when non-nil, receives lock-free progress updates (events,
	// sim clock, in-flight bytes) at every sampling tick for the stream
	// server's /runs endpoint.
	Live *LiveRun
	// Digest, when non-nil, is the run's per-event execution fingerprint:
	// harness.Net.Observe installs it on the engine and every port, and
	// the chain's checkpoints land in the artifact as "ckpt" lines. Pure
	// observation — the chain is invariant across observability
	// configurations (see sim.Digest).
	Digest *sim.Digest
	// Audit, when non-nil, runs the harness's conservation invariants at
	// every sampler tick; a violation stops the run (unless KeepRunning)
	// and dumps the flight recorder.
	Audit *Auditor
}

// NewRecorder returns a recorder with an empty registry and no trace sink.
func NewRecorder() *Recorder {
	return &Recorder{Metrics: NewRegistry(), Faults: &FaultLog{}}
}

// Tracer resolves the trace sink the simulator hooks should see: the
// flight recorder chained in front of Trace when both are set, whichever
// one alone otherwise, or nil when tracing is fully disabled.
func (r *Recorder) Tracer() Tracer {
	if r.Flight != nil {
		r.Flight.Inner = r.Trace
		return r.Flight
	}
	return r.Trace
}

// SwitchTracer resolves the trace sink for switches: the flow tracer
// chained in front of Tracer() when flow tracing is on (switch drop and
// ECN-mark events feed sampled flows' journeys), plain Tracer() otherwise.
// Ports keep the plain Tracer() — their per-packet volume is covered by the
// INT piggyback, so the port hot path never pays the flow-tracer branch.
func (r *Recorder) SwitchTracer() Tracer {
	t := r.Tracer()
	if r.FlowTrace != nil {
		r.FlowTrace.Inner = t
		return r.FlowTrace
	}
	return t
}
