// Command prioplus-sim runs the paper's experiments from the command line:
//
//	prioplus-sim <experiment> [flags]
//	prioplus-sim all [-parallel N] [-seeds a,b,c] [-json out.json]
//	prioplus-sim report out/*.jsonl
//
// Experiments (ids match DESIGN.md and the paper's figures/tables):
//
//	fig2 fig3a fig3b fig3c fig3d fig7 fig8 fig9 fig10a fig10b fig10c
//	fig10d fig11 fig12ab fig12c fig13 fig14 fig15 fig16 fig17 fig18
//	tab2 appd ablation ext-ecn ext-weighted faultsweep
//
// Use -full for paper-scale runs (slower); the default scale preserves the
// comparisons at a fraction of the runtime. The `all` subcommand fans every
// experiment across a worker pool (one private engine per run, so results
// are byte-identical whatever -parallel is) and reports wall-clock and
// events/sec. -cpuprofile/-memprofile write pprof profiles for either mode.
//
// Observability (both single and batch mode, on the experiments that
// support it — the fat-tree, coflow, and incast scenarios): `-series out/`
// writes one timeline artifact (JSONL) per run into out/, `-hist` records
// streaming latency histograms and prints their summaries, and
// `-watchdog 256m` arms an in-flight-bytes watchdog that stops a runaway
// run and dumps the last trace events from the flight recorder. The
// `report` subcommand renders artifacts back into a text report; see
// docs/OBSERVABILITY.md.
//
// Determinism tooling: `-fingerprint` folds every dispatched event into a
// per-run digest chain (checkpointed into -series artifacts), `-audit`
// runs the conservation auditor, and the `diff` subcommand bisects two
// fingerprinted executions down to their first divergent event. The `all`
// subcommand's -fp-out/-fp-check write and enforce the committed
// fingerprint manifest (testdata/fingerprints.json).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"prioplus/internal/exp"
	"prioplus/internal/obs/stream"
	"prioplus/internal/runner"
)

// runOpts carries the per-run knobs shared by single and batch mode.
type runOpts struct {
	full   bool
	series bool // print inline time-series data where available
	seed   int64
	obs    obsOpts
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	expID := os.Args[1]
	switch expID {
	case "all":
		os.Exit(runAll(os.Args[2:]))
	case "report":
		os.Exit(runReport(os.Args[2:]))
	case "trace":
		os.Exit(runTrace(os.Args[2:]))
	case "watch":
		os.Exit(runWatch(os.Args[2:]))
	case "diff":
		os.Exit(runDiff(os.Args[2:]))
	case "serve":
		os.Exit(runServe(os.Args[2:]))
	}
	fs := flag.NewFlagSet(expID, flag.ExitOnError)
	full := fs.Bool("full", false, "run at the paper's full scale")
	seed := fs.Int64("seed", 1, "simulation seed")
	printSer := fs.Bool("print-series", false, "also print inline time-series data where available")
	obsFlags := addObsFlags(fs)
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Parse(os.Args[2:])

	if err := validExperiment(expID); err != nil {
		fmt.Fprintln(os.Stderr, err)
		usage()
		os.Exit(2)
	}
	obsOpt, err := obsFlags.resolve()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	stop, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var srv *stream.Server
	var st *runner.RunState
	if obsOpt.listen != "" {
		reg := &runner.Registry{}
		st = reg.Add(fmt.Sprintf("%s/seed=%d", expID, *seed), expID, *seed)
		srv = stream.NewServer(reg)
		if err := srv.Start(obsOpt.listen); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "live endpoints on http://%s (/metrics /runs /events)\n", srv.Addr())
		obsOpt.hub = srv.Hub
		obsOpt.live = st
	}
	if st != nil {
		st.Start()
	}
	runErr := runExperiment(expID, runOpts{full: *full, series: *printSer, seed: *seed, obs: obsOpt}, os.Stdout)
	if st != nil {
		msg := ""
		if runErr != nil {
			msg = runErr.Error()
		}
		st.Finish(msg)
	}
	if srv != nil {
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	if err := stop(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		os.Exit(1)
	}
}

// obsFlagSet is the raw observability flag values before validation.
type obsFlagSet struct {
	seriesDir  *string
	hist       *bool
	watchdog   *string
	wdEvents   *int64
	runtime    *bool
	cost       *bool
	listen     *string
	traceFlows *int
	traceMatch *string
	traceEvery *int
	tracePkts  *int
	fingerp    *bool
	audit      *bool
	perturb    *uint64
}

// addObsFlags registers the shared observability flags on fs.
func addObsFlags(fs *flag.FlagSet) obsFlagSet {
	return obsFlagSet{
		seriesDir:  fs.String("series", "", "write per-run timeline artifacts (JSONL) into this directory"),
		hist:       fs.Bool("hist", false, "record streaming histograms (FCT, fabric delay, ACK RTT) and print summaries"),
		watchdog:   fs.String("watchdog", "", "in-flight bytes ceiling (e.g. 256m); tripping stops the run and dumps the flight recorder"),
		wdEvents:   fs.Int64("watchdog-events", 0, "event-heap size ceiling for the watchdog (0 = off)"),
		runtime:    fs.Bool("runtime", false, "merge host-process gauges (RSS, GC, events/sec) into the series; makes artifacts wall-clock dependent"),
		cost:       fs.Bool("cost", false, "attribute sampled per-event execution cost by event kind (artifact metrics + /metrics)"),
		listen:     fs.String("listen", "", "serve live endpoints on this address (/metrics, /runs, /events SSE); e.g. :8080"),
		traceFlows: fs.Int("trace-flows", 0, "flow-trace up to N flows (packet journeys + CC decision audit; needs -series)"),
		traceMatch: fs.String("trace-match", "", "flow-trace exactly these comma-separated flow ids (needs -series)"),
		traceEvery: fs.Int("trace-every", 0, "with -trace-flows, admit only a 1-in-K hash sample of flow ids"),
		tracePkts:  fs.Int("trace-packets", 0, "journey-stamp every Kth data packet of a traced flow (default 16, 1 = all)"),
		fingerp:    fs.Bool("fingerprint", false, "fold every dispatched event into a digest chain and print the run fingerprint"),
		audit:      fs.Bool("audit", false, "run conservation audits on the sampler clock (packet, byte, PFC accounting); a violation stops the run"),
		perturb:    fs.Uint64("perturb", 0, "deliberately inflate the Nth delay-noise draw by 1us (micro experiments; for testing diff)"),
	}
}

// resolve validates the flag values and prepares the -series directory.
func (f obsFlagSet) resolve() (obsOpts, error) {
	var maxBytes int64
	if *f.watchdog != "" {
		var err error
		maxBytes, err = parseBytes(*f.watchdog)
		if err != nil {
			return obsOpts{}, fmt.Errorf("-watchdog: %w", err)
		}
	}
	match, err := parseFlowList(*f.traceMatch)
	if err != nil {
		return obsOpts{}, fmt.Errorf("-trace-match: %w", err)
	}
	o := obsOpts{
		dir: *f.seriesDir, hist: *f.hist,
		maxBytes: maxBytes, maxEvents: *f.wdEvents,
		runtime: *f.runtime, cost: *f.cost, listen: *f.listen,
		traceFlows: *f.traceFlows, traceMatch: match,
		traceEvery: *f.traceEvery, tracePackets: *f.tracePkts,
		fingerprint: *f.fingerp, audit: *f.audit, perturb: *f.perturb,
	}
	if o.tracing() && o.dir == "" {
		return obsOpts{}, fmt.Errorf("flow tracing needs -series DIR: trace spans are only delivered through the timeline artifact")
	}
	if o.runtime && o.dir == "" && o.listen == "" {
		return obsOpts{}, fmt.Errorf("-runtime needs -series DIR or -listen ADDR: runtime gauges are delivered as timeline series")
	}
	if o.dir != "" {
		if err := os.MkdirAll(o.dir, 0o755); err != nil {
			return obsOpts{}, err
		}
	}
	return o, nil
}

// parseFlowList parses a comma-separated flow-id list ("" = none).
func parseFlowList(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad flow id %q", p)
		}
		out = append(out, id)
	}
	return out, nil
}

// runExperiment executes one experiment and writes its report to w. It
// returns an error for an unknown id or a failed observability-artifact
// write; experiment output (including the batch runner's captured per-run
// output) goes to w. The obs sink, when enabled, is wired into the
// experiments that run full network scenarios (incast, fat-tree, coflow);
// the analytic and micro experiments ignore it.
func runExperiment(expID string, o runOpts, w io.Writer) error {
	return runExperimentWith(expID, o, newObsSink(o.obs, expID, o.seed), w)
}

// runExperimentWith is runExperiment with a caller-supplied sink, so the
// diff subcommand can rerun an experiment and inspect the recorders (and
// their digest chains) afterwards instead of only seeing flushed text. The
// experiment itself is resolved through the exp registry; this function
// only translates the CLI's flag bundle into exp.RunParams and flushes the
// sink afterwards.
func runExperimentWith(expID string, o runOpts, sink *obsSink, w io.Writer) error {
	spec, ok := exp.Lookup(expID)
	if !ok {
		return fmt.Errorf("unknown experiment %q", expID)
	}
	p := exp.RunParams{Seed: o.seed, Full: o.full, Series: o.series, Perturb: o.obs.perturb}
	// A nil *obsSink must become a nil interface, not a typed nil the
	// drivers would dereference.
	var s exp.Sink
	if sink != nil {
		s = sink
	}
	if err := spec.Run(p, s, w); err != nil {
		return err
	}
	if sink != nil {
		return sink.flush(w)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: prioplus-sim <experiment> [-full] [-seed N] [-print-series] [obs flags] [-cpuprofile f] [-memprofile f]
       prioplus-sim all [-parallel N] [-seeds a,b,c] [-only ids] [-json out.json] [-timeout d] [-full] [-fp-out f] [-fp-check f] [obs flags]
       prioplus-sim serve [-listen ADDR] [-workers N] [-queue N] [-job-timeout d] [-cache N] [-manifest f]
       prioplus-sim report [-width N] file.jsonl|dir...
       prioplus-sim trace [-flows a,b] [-journeys K] [-width N] file.jsonl|dir...
       prioplus-sim watch [-interval d] [-once] ADDR
       prioplus-sim diff A.jsonl B.jsonl
       prioplus-sim diff -exp ID [-seed N] [-full] [-perturb D] A.jsonl

obs flags (network experiments only; see docs/OBSERVABILITY.md):
  -series DIR       write one timeline artifact (JSONL) per run into DIR
  -hist             record streaming histograms (FCT, fabric delay, ACK RTT)
  -watchdog BYTES   in-flight-bytes ceiling; tripping stops the run and
                    dumps the flight recorder (e.g. -watchdog 256m)
  -watchdog-events N  event-heap ceiling for the watchdog
  -listen ADDR      serve live endpoints while running: /metrics (process
                    gauges + cost attribution), /runs (batch state), and
                    /events (artifact lines as SSE, byte-identical to the
                    -series files); watch renders them as a dashboard
  -runtime          merge host-process gauges (RSS, heap, GC, events/sec,
                    wall-vs-sim) into the series; artifacts become
                    wall-clock dependent, so keep it off when comparing
  -cost             sampled per-event-kind cost attribution (artifact
                    metrics cost/<kind>/{samples,ns} and /metrics)
  -trace-flows N    flow-trace up to N flows: per-packet hop journeys and
                    the CC decision audit, delivered via -series artifacts
                    and rendered by the trace subcommand
  -trace-match IDS  flow-trace exactly these comma-separated flow ids
  -trace-every K    with -trace-flows, admit a deterministic 1-in-K sample
  -trace-packets K  journey-stamp every Kth data packet (default 16)
  -fingerprint      fold every dispatched event into a per-run digest
                    chain; prints the run fingerprint and writes ckpt
                    lines into -series artifacts (for diff / -fp-check)
  -audit            conservation auditor on the sampler clock (packet
                    pool, shared-buffer sums, PFC symmetry); a violation
                    stops the run and dumps the flight recorder
  -perturb D        inflate the D-th delay-noise draw by 1us — a
                    controlled divergence for exercising diff

experiments (from the exp registry; suite order):`)
	for _, s := range exp.Specs() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", s.ID, s.Describe)
	}
	fmt.Fprintln(os.Stderr, `
subcommands:
  all          every experiment above, fanned across a worker pool
  serve        long-running job server: POST experiment specs to /jobs,
               poll status, fetch byte-stable results (deterministic
               result cache; see docs/API.md)
  report       render -series artifacts as a text report
  trace        render flow-trace artifacts as causal per-flow timelines
  watch        live terminal dashboard over a -listen ADDR endpoint
  diff         compare two fingerprinted artifacts, or an artifact vs a
               live rerun, and name the first divergent event (see
               docs/OBSERVABILITY.md, "Bisecting a divergence")`)
}
