package exp

import (
	"testing"

	"prioplus/internal/sim"
)

// TestRDMABaselineSchemes runs DCQCN and TIMELY through the small
// flow-scheduling scenario: they must complete the workload with sane
// slowdowns (they are extra baselines beyond the paper's set).
func TestRDMABaselineSchemes(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("flow-scheduling run in -short mode")
	}
	for _, s := range []Scheme{DCQCNPhysical(8), TIMELYPhysical(8)} {
		cfg := DefaultFlowSchedConfig(s, 4)
		cfg.K = 4
		cfg.Duration = 2 * sim.Millisecond
		cfg.Drain = 12 * sim.Millisecond
		r := RunFlowSched(cfg)
		if r.Flows.Count() < r.Launched*9/10 {
			t.Errorf("%s: only %d/%d flows completed", s.Name, r.Flows.Count(), r.Launched)
		}
		if sd := r.Flows.MeanSlowdown(); sd <= 1 || sd > 60 {
			t.Errorf("%s: mean slowdown %.1f out of sane range", s.Name, sd)
		}
	}
}
