package main

import (
	"fmt"
	"strings"
	"testing"

	"prioplus/internal/exp"
	"prioplus/internal/serve"
)

// TestRegistryMatchesManifest: the exp registry and the committed
// fingerprint manifest agree exactly — every registered experiment has a
// pinned seed=1 fingerprint and every manifest entry names a registered
// experiment. A new experiment must land with its manifest entry (run
// `all -fp-out`), and a removed one must take its entry along.
func TestRegistryMatchesManifest(t *testing.T) {
	m, err := serve.LoadManifest("../../testdata/fingerprints.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range exp.IDs() {
		name := fmt.Sprintf("%s/seed=1", id)
		if _, ok := m.Runs[name]; !ok {
			t.Errorf("experiment %q has no manifest entry %q", id, name)
		}
	}
	for name := range m.Runs {
		id, _, ok := strings.Cut(name, "/seed=")
		if !ok {
			t.Errorf("manifest run %q is not of the form <id>/seed=<n>", name)
			continue
		}
		if _, ok := exp.Lookup(id); !ok {
			t.Errorf("manifest run %q names unregistered experiment %q", name, id)
		}
	}
}

// TestValidExperimentUsesRegistry: the CLI's id validation is the registry
// lookup, with a clean error for unknown ids.
func TestValidExperimentUsesRegistry(t *testing.T) {
	for _, id := range exp.IDs() {
		if err := validExperiment(id); err != nil {
			t.Errorf("validExperiment(%q) = %v", id, err)
		}
	}
	err := validExperiment("fig99")
	if err == nil || !strings.Contains(err.Error(), `unknown experiment "fig99"`) {
		t.Errorf("validExperiment(fig99) = %v, want unknown-experiment error", err)
	}
}
