package netsim

// PacketPool is a per-engine free list of Packet objects. The engine is
// single-threaded, so the pool needs no locking; every simulated run owns
// exactly one pool, shared by all hosts, stacks, and switches of that run
// (internal/harness wires it), so a packet allocated at one host and
// retired at another returns to the same free list.
//
// Ownership rules (see also docs/ARCHITECTURE.md, "Hot path & memory
// discipline"):
//
//   - A packet belongs to exactly one owner at a time: the sender until
//     Host.Send, the network while in flight, and the receiving sink from
//     delivery on.
//   - The receiving sink must finish reading a packet before recycling it
//     with Put; anything that must outlive the packet (INT records echoed
//     on an ACK, CC feedback) is copied or handed off first.
//   - Ack transfers the data packet's INT records to the ACK by swapping
//     slices: after Ack returns, the data packet's INT field is a spare
//     backing array and must not be read.
//   - Dropped packets may simply be abandoned to the GC (Put is optional
//     for correctness, mandatory only for the zero-allocation guarantee).
//
// A nil *PacketPool is valid everywhere: constructors fall back to plain
// allocation and Put becomes a no-op, so pool-free code (tests, examples)
// keeps working unchanged.
//
// The `simdebug` build tag (go test -tags simdebug) turns on poison mode:
// Put stamps a generation counter and marks the object free, and the
// enqueue/receive paths panic on any use of a recycled packet, so pooling
// bugs surface as crashes in CI rather than as corrupted results.
type PacketPool struct {
	free []*Packet

	// Counters (not part of the simulation state).
	Gets int64 // packets handed out, recycled or fresh
	News int64 // fresh heap allocations (free list was empty)
	Puts int64 // packets returned

	liveBytes int64 // wire bytes of packets currently out of the pool

	// Conservation-audit gauges (see harness's -audit wiring). wire counts
	// packets posted for delivery and not yet received (in propagation);
	// ctrl counts PFC pause/resume frames in flight. Both are maintained by
	// Port regardless of whether an auditor is installed — two integer
	// adds per hop, cheaper than any conditional.
	wire int64
	ctrl int64
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool { return &PacketPool{} }

// FreeLen returns the current free-list length (for tests and stats).
func (p *PacketPool) FreeLen() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}

// LivePackets returns the number of packets currently out of the pool (the
// run's in-flight population: queued, on the wire, or held by a stack).
func (p *PacketPool) LivePackets() int64 {
	if p == nil {
		return 0
	}
	return p.Gets - p.Puts
}

// LiveBytes returns the wire bytes of packets currently out of the pool.
// This is the gauge the obs watchdog monitors: an uncontrolled sender shows
// up here long before the process feels it as RSS.
func (p *PacketPool) LiveBytes() int64 {
	if p == nil {
		return 0
	}
	return p.liveBytes
}

// InPropagation returns the number of packets currently on a wire: posted
// for delivery by a port transmitter and not yet received by the peer.
func (p *PacketPool) InPropagation() int64 {
	if p == nil {
		return 0
	}
	return p.wire
}

// CtrlInFlight returns the number of PFC pause/resume frames currently in
// flight. The PFC-symmetry audit is only sound when this is zero (a pause
// on the wire makes sender and receiver state legitimately disagree).
func (p *PacketPool) CtrlInFlight() int64 {
	if p == nil {
		return 0
	}
	return p.ctrl
}

// get hands out a zeroed packet, recycled when possible. The INT backing
// array survives recycling (length 0, capacity preserved), so INT-stamping
// runs stop allocating once the arrays have grown.
func (p *PacketPool) get() *Packet {
	if p == nil {
		return &Packet{}
	}
	p.Gets++
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		pkt.inPool = false
		return pkt
	}
	p.News++
	return &Packet{}
}

// Put recycles a packet. The caller must be the packet's sole owner; using
// the pointer after Put is a use-after-free (caught by the simdebug
// build). Put on a nil pool is a no-op.
func (p *PacketPool) Put(pkt *Packet) {
	if p == nil || pkt == nil {
		return
	}
	if poolDebug && pkt.inPool {
		panic("netsim: packet double-freed (Put on an already-recycled packet)")
	}
	p.liveBytes -= int64(pkt.Wire)
	*pkt = Packet{INT: pkt.INT[:0], gen: pkt.gen + 1, inPool: true}
	p.free = append(p.free, pkt)
	p.Puts++
}

// checkLive panics in the simdebug build when a recycled packet re-enters
// the simulation. The release build compiles the check away.
func checkLive(pkt *Packet, where string) {
	if poolDebug && pkt != nil && pkt.inPool {
		panic("netsim: use-after-free: " + where + " called with a recycled packet")
	}
}

// Data returns a data packet of the given payload size.
func (p *PacketPool) Data(flow int64, src, dst, prio int, seq int64, payload int) *Packet {
	pkt := p.get()
	pkt.Type = Data
	pkt.FlowID = flow
	pkt.Src = src
	pkt.Dst = dst
	pkt.Prio = prio
	pkt.Seq = seq
	pkt.Payload = payload
	pkt.Wire = payload + HeaderBytes
	pkt.Hash = flowHash(flow)
	if p != nil {
		p.liveBytes += int64(pkt.Wire)
	}
	return pkt
}

// Ack returns an ACK for the given data packet, addressed back to its
// sender at priority ackPrio. On a real pool the data packet's INT records
// are handed off to the ACK (the data packet keeps a spare backing array
// and must not have its INT read afterwards — it is about to be recycled);
// on a nil pool they are copied, leaving the data packet untouched.
func (p *PacketPool) Ack(data *Packet, ackPrio int, cum int64) *Packet {
	checkLive(data, "PacketPool.Ack")
	ack := p.get()
	if p != nil {
		ack.INT, data.INT = data.INT, ack.INT[:0]
	} else if len(data.INT) > 0 {
		ack.INT = append(ack.INT, data.INT...)
	}
	ack.Type = Ack
	ack.FlowID = data.FlowID
	ack.Src = data.Dst
	ack.Dst = data.Src
	ack.Prio = ackPrio
	ack.Seq = data.Seq
	ack.AckSeq = cum
	ack.Wire = AckBytes
	ack.SentAt = data.SentAt // echo the sender's hardware timestamp
	ack.CE = data.CE
	ack.Traced = data.Traced // journey stamps ride the INT records above
	ack.Hash = flowHash(data.FlowID) ^ 0x9e3779b9
	if p != nil {
		p.liveBytes += int64(ack.Wire)
	}
	return ack
}

// Probe returns a minimal probe packet used by PrioPlus to sample the path
// delay while transmission is suspended.
func (p *PacketPool) Probe(flow int64, src, dst, prio int) *Packet {
	pkt := p.get()
	pkt.Type = Probe
	pkt.FlowID = flow
	pkt.Src = src
	pkt.Dst = dst
	pkt.Prio = prio
	pkt.Wire = AckBytes
	pkt.Hash = flowHash(flow)
	if p != nil {
		p.liveBytes += int64(pkt.Wire)
	}
	return pkt
}

// ProbeAck returns the echo of a probe. Like Ack, it carries the probe's
// piggybacked records home: traced probes accumulate journey stamps on the
// forward path, and PrioPlus reads the probed delay at the sender. On a
// real pool the slices are swapped (the probe is about to be recycled); on
// a nil pool they are copied.
func (p *PacketPool) ProbeAck(probe *Packet, ackPrio int) *Packet {
	checkLive(probe, "PacketPool.ProbeAck")
	pkt := p.get()
	if p != nil {
		pkt.INT, probe.INT = probe.INT, pkt.INT[:0]
	} else if len(probe.INT) > 0 {
		pkt.INT = append(pkt.INT, probe.INT...)
	}
	pkt.Traced = probe.Traced
	pkt.Type = ProbeAck
	pkt.FlowID = probe.FlowID
	pkt.Src = probe.Dst
	pkt.Dst = probe.Src
	pkt.Prio = ackPrio
	pkt.Wire = AckBytes
	pkt.SentAt = probe.SentAt
	pkt.Hash = flowHash(probe.FlowID) ^ 0x9e3779b9
	if p != nil {
		p.liveBytes += int64(pkt.Wire)
	}
	return pkt
}
