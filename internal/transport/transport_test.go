package transport_test

import (
	"math"
	"testing"

	"prioplus/internal/cc"
	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
)

// microCfg is the paper's micro-benchmark fabric: 100G links, 3 us latency,
// ~12 us base RTT through one switch.
func microCfg() topo.Config {
	cfg := topo.DefaultConfig()
	cfg.LinkDelay = 3 * sim.Microsecond
	return cfg
}

func newStar(nHosts int, opts ...harness.Option) (*harness.Net, *sim.Engine) {
	eng := sim.NewEngine()
	net := harness.New(topo.Star(eng, nHosts, microCfg()), 7, opts...)
	return net, eng
}

func swiftFor(net *harness.Net, src, dst int) *cc.Swift {
	base := net.Topo.BaseRTT(src, dst)
	return cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(src, dst)))
}

func TestSingleFlowCompletes(t *testing.T) {
	net, eng := newStar(3)
	var fct sim.Time
	net.AddFlow(harness.Flow{
		Src: 0, Dst: 2, Size: 1 << 20, Prio: 0,
		Algo:       swiftFor(net, 0, 2),
		OnComplete: func(d sim.Time) { fct = d },
	})
	eng.RunUntil(20 * sim.Millisecond)
	if fct == 0 {
		t.Fatal("flow did not complete")
	}
	// Ideal FCT = size/rate + base RTT: ~84 us + 12.5 us. Allow 2x.
	ideal := sim.FromSeconds(float64(1<<20) / (100e9 / 8))
	if fct > 2*ideal+net.Topo.BaseRTT(0, 2) {
		t.Errorf("FCT = %v, want near ideal %v", fct, ideal)
	}
}

func TestFlowDeliversAllBytesInOrder(t *testing.T) {
	eng := sim.NewEngine()
	nw := topo.Star(eng, 3, microCfg())
	var got int64
	var lastSeq int64 = -1
	ooo := false
	nw.Hosts[2].Sink = func(pkt *netsim.Packet) {
		if pkt.Type == netsim.Data {
			if pkt.Seq < lastSeq {
				ooo = true
			}
			lastSeq = pkt.Seq
			got += int64(pkt.Payload)
		}
	}
	net := harness.New(nw, 1) // replaces sink; re-wrap below
	inner := nw.Hosts[2].Sink
	nw.Hosts[2].Sink = func(pkt *netsim.Packet) {
		if pkt.Type == netsim.Data {
			if pkt.Seq < lastSeq {
				ooo = true
			}
			lastSeq = pkt.Seq
			got += int64(pkt.Payload)
		}
		inner(pkt)
	}
	done := false
	net.AddFlow(harness.Flow{
		Src: 0, Dst: 2, Size: 123456, Prio: 0,
		Algo:       swiftFor(net, 0, 2),
		OnComplete: func(sim.Time) { done = true },
	})
	eng.RunUntil(10 * sim.Millisecond)
	if !done {
		t.Fatal("flow did not complete")
	}
	if got != 123456 {
		t.Errorf("delivered %d bytes, want 123456 (no loss on idle fabric)", got)
	}
	if ooo {
		t.Error("data arrived out of order on a single path")
	}
}

func TestTwoFlowsFairShare(t *testing.T) {
	net, eng := newStar(3)
	var fct [2]sim.Time
	size := int64(4 << 20)
	for i := 0; i < 2; i++ {
		i := i
		net.AddFlow(harness.Flow{
			Src: i, Dst: 2, Size: size, Prio: 0,
			Algo:       swiftFor(net, i, 2),
			OnComplete: func(d sim.Time) { fct[i] = d },
		})
	}
	eng.RunUntil(50 * sim.Millisecond)
	if fct[0] == 0 || fct[1] == 0 {
		t.Fatal("flows did not complete")
	}
	ratio := float64(fct[0]) / float64(fct[1])
	if ratio < 0.7 || ratio > 1.43 {
		t.Errorf("FCT ratio = %.2f, want ~1 (fair share)", ratio)
	}
	// Together they should take about 2x the single-flow ideal.
	ideal := sim.FromSeconds(float64(2*size) / (100e9 / 8))
	worst := max(fct[0], fct[1])
	if worst > ideal*3/2 {
		t.Errorf("combined completion %v, want near %v (work conservation)", worst, ideal)
	}
}

func TestSubPacketWindowIsPaced(t *testing.T) {
	// A fixed cwnd of 0.25 packets must send ~1 packet per 4 RTTs.
	net, eng := newStar(3)
	algo := &fixedWindow{cwndPkts: 0.25}
	var delivered int64
	nw := net.Topo
	inner := nw.Hosts[2].Sink
	nw.Hosts[2].Sink = func(pkt *netsim.Packet) {
		if pkt.Type == netsim.Data {
			delivered++
		}
		inner(pkt)
	}
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 20, Prio: 0, Algo: algo})
	dur := 2 * sim.Millisecond
	eng.RunUntil(dur)
	base := nw.BaseRTT(0, 2)
	expected := float64(dur) / float64(base) * 0.25
	if delivered < int64(expected/2) || delivered > int64(expected*2) {
		t.Errorf("delivered %d packets with cwnd=0.25, want ~%.0f", delivered, expected)
	}
}

// fixedWindow is a test controller with a constant window.
type fixedWindow struct {
	drv      cc.Driver
	cwndPkts float64
	acks     int
	probes   int
}

func (f *fixedWindow) Start(drv cc.Driver)       { f.drv = drv }
func (f *fixedWindow) OnAck(fb cc.Feedback)      { f.acks++ }
func (f *fixedWindow) OnProbeAck(fb cc.Feedback) { f.probes++ }
func (f *fixedWindow) OnRTO()                    {}
func (f *fixedWindow) CwndBytes() float64        { return f.cwndPkts * float64(f.drv.MTU()) }
func (f *fixedWindow) WantsECT() bool            { return false }
func (f *fixedWindow) Name() string              { return "fixed" }

func TestLossRecoveryLossyFabric(t *testing.T) {
	// Small lossy buffer under 2:1 incast (the Fig 17 configuration: PFC
	// off, IRN recovery): the line-rate start bursts overflow the buffer,
	// drops happen, and both flows still finish.
	eng := sim.NewEngine()
	cfg := microCfg()
	cfg.Buffer.PFCEnabled = false
	cfg.Buffer.TotalBytes = 100 * 1048
	cfg.Buffer.DTAlpha = 1
	nw := topo.Star(eng, 3, cfg)
	net := harness.New(nw, 3)
	done := 0
	for i := 0; i < 2; i++ {
		base := nw.BaseRTT(i, 2)
		net.AddFlow(harness.Flow{
			Src: i, Dst: 2, Size: 2 << 20, Prio: 0,
			Algo:       cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(i, 2))),
			OnComplete: func(sim.Time) { done++ },
		})
	}
	eng.RunUntil(100 * sim.Millisecond)
	if nw.Switches[0].Drops() == 0 {
		t.Error("expected drops from the line-rate start on a small lossy buffer")
	}
	if done != 2 {
		t.Fatalf("%d/2 flows completed; loss recovery failed", done)
	}
}

func TestProbeEchoPath(t *testing.T) {
	net, eng := newStar(3)
	probed := &probeOnce{}
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1000, Prio: 0, Algo: probed})
	eng.RunUntil(sim.Millisecond)
	if probed.probeAcks == 0 {
		t.Fatal("probe was not echoed")
	}
	// Probe RTT should be close to base RTT on an idle fabric (probe and
	// probe-ack are 64 B frames, slightly faster than the data base RTT).
	base := net.Topo.BaseRTT(0, 2)
	if probed.delay > base || probed.delay < base-2*sim.Microsecond {
		t.Errorf("probe RTT = %v, want just under base %v", probed.delay, base)
	}
	if !probed.completed {
		t.Error("flow did not complete after probe resume")
	}
}

// probeOnce probes before sending, then transmits with a 2-packet window.
type probeOnce struct {
	drv       cc.Driver
	probeAcks int
	delay     sim.Time
	completed bool
	resumed   bool
}

func (p *probeOnce) Start(drv cc.Driver) {
	p.drv = drv
	drv.StopSending()
	drv.SendProbeAfter(10 * sim.Microsecond)
}
func (p *probeOnce) OnAck(fb cc.Feedback) {
	if fb.CumAck >= 1000 {
		p.completed = true
	}
}
func (p *probeOnce) OnProbeAck(fb cc.Feedback) {
	p.probeAcks++
	p.delay = fb.Delay
	p.resumed = true
	p.drv.ResumeSending()
}
func (p *probeOnce) OnRTO() {}
func (p *probeOnce) CwndBytes() float64 {
	if !p.resumed {
		return 0
	}
	return 2 * float64(p.drv.MTU())
}
func (p *probeOnce) WantsECT() bool { return false }
func (p *probeOnce) Name() string   { return "probeonce" }

func TestMeasurementNoiseApplied(t *testing.T) {
	net, eng := newStar(3, harness.WithNoise(func() sim.Time { return 5 * sim.Microsecond }))
	fw := &delayRecorder{}
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 10000, Prio: 0, Algo: fw})
	eng.RunUntil(sim.Millisecond)
	base := net.Topo.BaseRTT(0, 2)
	if len(fw.delays) == 0 {
		t.Fatal("no delay samples")
	}
	for _, d := range fw.delays {
		if d < base+4*sim.Microsecond {
			t.Fatalf("delay %v missing the 5us injected noise (base %v)", d, base)
		}
	}
}

type delayRecorder struct {
	drv    cc.Driver
	delays []sim.Time
}

func (d *delayRecorder) Start(drv cc.Driver)  { d.drv = drv }
func (d *delayRecorder) OnAck(fb cc.Feedback) { d.delays = append(d.delays, fb.Delay) }
func (d *delayRecorder) OnProbeAck(cc.Feedback) {
}
func (d *delayRecorder) OnRTO()             {}
func (d *delayRecorder) CwndBytes() float64 { return 4 * float64(d.drv.MTU()) }
func (d *delayRecorder) WantsECT() bool     { return false }
func (d *delayRecorder) Name() string       { return "recorder" }

func TestRTOFiresOnSilence(t *testing.T) {
	// Break the fabric by dropping everything: RTO must fire.
	eng := sim.NewEngine()
	cfg := microCfg()
	cfg.Buffer.PFCEnabled = false
	cfg.Buffer.TotalBytes = 0 // admits nothing
	cfg.Buffer.PerQueueMin = 0
	nw := topo.Star(eng, 3, cfg)
	net := harness.New(nw, 1)
	fw := &fixedWindow{cwndPkts: 2}
	s := net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 10000, Prio: 0, Algo: fw})
	eng.RunUntil(2 * sim.Millisecond)
	if s.RTOs == 0 {
		t.Error("no RTOs despite a blackholed path")
	}
	if s.Retransmits == 0 {
		t.Error("no retransmissions attempted")
	}
}

func TestLastPacketPartialSize(t *testing.T) {
	net, eng := newStar(3)
	var sizes []int
	nw := net.Topo
	inner := nw.Hosts[2].Sink
	nw.Hosts[2].Sink = func(pkt *netsim.Packet) {
		if pkt.Type == netsim.Data {
			sizes = append(sizes, pkt.Payload)
		}
		inner(pkt)
	}
	done := false
	net.AddFlow(harness.Flow{
		Src: 0, Dst: 2, Size: 2500, Prio: 0,
		Algo:       swiftFor(net, 0, 2),
		OnComplete: func(sim.Time) { done = true },
	})
	eng.RunUntil(sim.Millisecond)
	if !done {
		t.Fatal("flow did not complete")
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 2500 {
		t.Errorf("delivered %d bytes, want 2500", total)
	}
	if sizes[len(sizes)-1] != 500 {
		t.Errorf("last packet payload = %d, want 500", sizes[len(sizes)-1])
	}
}

func TestManyFlowsAllComplete(t *testing.T) {
	net, eng := newStar(9)
	done := 0
	for i := 0; i < 8; i++ {
		net.AddFlow(harness.Flow{
			Src: i, Dst: 8, Size: 1 << 20, Prio: 0,
			Algo:       swiftFor(net, i, 8),
			OnComplete: func(sim.Time) { done++ },
			StartAt:    sim.Time(i) * 10 * sim.Microsecond,
		})
	}
	eng.RunUntil(100 * sim.Millisecond)
	if done != 8 {
		t.Errorf("%d/8 flows completed", done)
	}
}

func TestDeterministicRerun(t *testing.T) {
	run := func() []sim.Time {
		net, eng := newStar(5)
		var fcts []sim.Time
		for i := 0; i < 4; i++ {
			net.AddFlow(harness.Flow{
				Src: i, Dst: 4, Size: 1 << 20, Prio: 0,
				Algo:       swiftFor(net, i, 4),
				OnComplete: func(d sim.Time) { fcts = append(fcts, d) },
			})
		}
		eng.RunUntil(100 * sim.Millisecond)
		return fcts
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("rerun diverged at flow %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestInflightNeverNegative(t *testing.T) {
	net, eng := newStar(3)
	s := net.AddFlow(harness.Flow{
		Src: 0, Dst: 2, Size: 1 << 20, Prio: 0,
		Algo: swiftFor(net, 0, 2),
	})
	for i := 0; i < 100; i++ {
		i := i
		eng.At(sim.Time(i)*10*sim.Microsecond, func() {
			if s.Inflight() < 0 {
				t.Fatalf("inflight = %d at sample %d", s.Inflight(), i)
			}
		})
	}
	eng.RunUntil(2 * sim.Millisecond)
}

func TestThroughputNearLineRate(t *testing.T) {
	net, eng := newStar(3)
	m := harness.NewThroughputMeter()
	net.SinkCounter(2, m, func(pkt *netsim.Packet) int { return 0 })
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 64 << 20, Prio: 0, Algo: swiftFor(net, 0, 2)})
	dur := 4 * sim.Millisecond
	eng.RunUntil(dur)
	gbps := float64(m.Snapshot()[0]) * 8 / dur.Seconds() / 1e9
	if math.Abs(gbps-100) > 12 {
		t.Errorf("single Swift flow throughput = %.1f Gb/s, want ~100", gbps)
	}
}
