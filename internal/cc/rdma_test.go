package cc_test

import (
	"testing"

	"prioplus/internal/cc"
	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
)

func TestDCQCNConvergesUnderECN(t *testing.T) {
	net, eng := newStar(3, func(cfg *topo.Config) {
		cfg.Buffer.ECNKMin = 100_000
		cfg.Buffer.ECNKMax = 400_000
		cfg.Buffer.ECNPMax = 0.1
	})
	for i := 0; i < 2; i++ {
		d := cc.NewDCQCN(cc.DefaultDCQCNConfig(100 * netsim.Gbps))
		net.AddFlow(harness.Flow{Src: i, Dst: 2, Size: 1 << 30, Prio: 0, Algo: d, Paced: true})
	}
	tp := throughput(net, eng, 2, func(p *netsim.Packet) int { return p.Src }, 3*sim.Millisecond, 6*sim.Millisecond)
	total := tp[0] + tp[1]
	if total < 75 {
		t.Errorf("DCQCN aggregate %.1f Gb/s, want near line rate", total)
	}
	ratio := tp[0] / tp[1]
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("DCQCN share ratio %.2f, want roughly fair", ratio)
	}
	if net.Topo.Switches[0].ECNMarks == 0 {
		t.Error("no ECN marks: DCQCN ran without a congestion signal")
	}
}

func TestDCQCNBacksOffOnMarks(t *testing.T) {
	base := 12 * sim.Microsecond
	d := cc.NewDCQCN(cc.DefaultDCQCNConfig(100 * netsim.Gbps))
	d.Start(&stubDriver{base: base, rate: 100 * netsim.Gbps, mtu: 1000})
	start := d.RateBps()
	now := base
	for i := 0; i < 10; i++ {
		now += 60 * sim.Microsecond
		d.OnAck(cc.Feedback{Now: now, Delay: base, CE: true, AckedBytes: 1000})
	}
	if d.RateBps() >= start/2 {
		t.Errorf("rate %.2g after sustained marks, want well below line %.2g", d.RateBps(), start)
	}
}

func TestDCQCNRecoversAfterMarksStop(t *testing.T) {
	base := 12 * sim.Microsecond
	d := cc.NewDCQCN(cc.DefaultDCQCNConfig(100 * netsim.Gbps))
	d.Start(&stubDriver{base: base, rate: 100 * netsim.Gbps, mtu: 1000})
	now := base
	for i := 0; i < 10; i++ {
		now += 60 * sim.Microsecond
		d.OnAck(cc.Feedback{Now: now, Delay: base, CE: true, AckedBytes: 1000})
	}
	low := d.RateBps()
	for i := 0; i < 100; i++ {
		now += 60 * sim.Microsecond
		d.OnAck(cc.Feedback{Now: now, Delay: base, AckedBytes: 1000})
	}
	if d.RateBps() < low*4 {
		t.Errorf("rate %.2g did not recover (was %.2g); fast recovery + HAI broken", d.RateBps(), low)
	}
}

func TestTIMELYWorkConserving(t *testing.T) {
	net, eng := newStar(3, nil)
	base := net.Topo.BaseRTT(0, 2)
	tm := cc.NewTIMELY(cc.DefaultTIMELYConfig(base, 100e9))
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 30, Prio: 0, Algo: tm, Paced: true})
	tp := throughput(net, eng, 2, func(*netsim.Packet) int { return 0 }, 2*sim.Millisecond, 4*sim.Millisecond)
	if tp[0] < 80 {
		t.Errorf("TIMELY single flow %.1f Gb/s, want near line rate", tp[0])
	}
}

func TestTIMELYGradientReaction(t *testing.T) {
	base := 12 * sim.Microsecond
	tm := cc.NewTIMELY(cc.DefaultTIMELYConfig(base, 100e9))
	tm.Start(&stubDriver{base: base, rate: 100 * netsim.Gbps, mtu: 1000})
	start := tm.RateBps()
	// Rising RTT within the gradient band: rate must fall.
	now := base
	for i := 0; i < 20; i++ {
		now += 12 * sim.Microsecond
		tm.OnAck(cc.Feedback{Now: now, Delay: base + sim.Time(4+i)*sim.Microsecond, AckedBytes: 1000})
	}
	if tm.RateBps() >= start {
		t.Error("rate did not fall under a positive RTT gradient")
	}
	mid := tm.RateBps()
	// Falling RTT: rate must rise again.
	for i := 0; i < 40; i++ {
		now += 12 * sim.Microsecond
		d := base + sim.Time(max(0, 24-i))*sim.Microsecond
		tm.OnAck(cc.Feedback{Now: now, Delay: d, AckedBytes: 1000})
	}
	if tm.RateBps() <= mid {
		t.Error("rate did not recover under a negative gradient")
	}
}

func TestTIMELYHardThresholds(t *testing.T) {
	base := 12 * sim.Microsecond
	cfg := cc.DefaultTIMELYConfig(base, 100e9)
	tm := cc.NewTIMELY(cfg)
	tm.Start(&stubDriver{base: base, rate: 100 * netsim.Gbps, mtu: 1000})
	// Above THigh: always decrease, even with zero gradient.
	now := base
	tm.OnAck(cc.Feedback{Now: now, Delay: cfg.THigh + 10*sim.Microsecond, AckedBytes: 1000})
	before := tm.RateBps()
	now += 12 * sim.Microsecond
	tm.OnAck(cc.Feedback{Now: now, Delay: cfg.THigh + 10*sim.Microsecond, AckedBytes: 1000})
	if tm.RateBps() >= before {
		t.Error("no decrease above THigh with flat RTT")
	}
	// Below TLow: always increase, even with a positive gradient.
	tm2 := cc.NewTIMELY(cfg)
	tm2.Start(&stubDriver{base: base, rate: 100 * netsim.Gbps, mtu: 1000})
	tm2.OnRTO() // knock the rate down so increase is visible
	low := tm2.RateBps()
	now = base
	tm2.OnAck(cc.Feedback{Now: now, Delay: base, AckedBytes: 1000})
	now += 12 * sim.Microsecond
	tm2.OnAck(cc.Feedback{Now: now, Delay: base + sim.Microsecond, AckedBytes: 1000})
	if tm2.RateBps() <= low {
		t.Error("no increase below TLow")
	}
}
