package netsim

import (
	"math"

	"prioplus/internal/sim"
)

// BufferConfig sizes a switch's shared packet buffer and its admission
// policies. The defaults mirror the paper's setup: dynamic-threshold shared
// buffer [Choudhury-Hahne], PFC with per-(port,priority) headroom for
// lossless priorities.
type BufferConfig struct {
	// TotalBytes is the physical buffer size. The paper sets this either
	// from a buffer/bandwidth ratio (Fig 11: 4.4 MB/Tbps, Tomahawk4) or
	// directly (32 MB for the coflow and ML scenarios).
	TotalBytes int

	// DTAlpha is the dynamic-threshold coefficient: a queue may accept a
	// packet while its length is below DTAlpha * (free shared buffer).
	DTAlpha float64

	// PFCEnabled turns on lossless operation for the first LosslessPrios
	// priorities.
	PFCEnabled bool

	// LosslessPrios is the number of lossless priority classes. Headroom
	// is reserved per port per lossless priority.
	LosslessPrios int

	// HeadroomBytes is the PFC headroom reserved per (port, lossless
	// priority): enough buffer to absorb in-flight data after a pause is
	// sent (2x link BDP plus two MTU-sized frames is typical).
	HeadroomBytes int

	// PFCAlpha is the dynamic XOFF coefficient: an ingress (port,prio)
	// class is paused when its occupancy exceeds PFCAlpha * (free shared
	// buffer). Resume happens at half the pause point.
	PFCAlpha float64

	// PerQueueMin is a per-egress-queue minimum guarantee admitted even
	// when the shared pool is exhausted, as in real shared-buffer chips.
	// Without it, headroom reservations for many lossless priorities can
	// consume the entire shared pool and starve the (lossy) ACK queue,
	// deadlocking the network instead of merely degrading it.
	PerQueueMin int

	// HeadroomFree models the paper's ideal physical priority (Physical*):
	// PFC headroom still absorbs in-flight data but is not reserved out of
	// the shared pool, as if the switch had unlimited extra buffer for it.
	HeadroomFree bool

	// ECNKMin/ECNKMax/ECNPMax configure RED-style ECN marking on egress
	// queues. With KMin == KMax the marking is a step at KMin (DCTCP).
	// KMin <= 0 disables marking.
	ECNKMin int
	ECNKMax int
	ECNPMax float64

	// ECNKByVPrio, when non-nil, gives each virtual priority its own step
	// marking threshold, indexed by Packet.VPrio (out-of-range uses
	// ECNKMin). This is the paper's Appendix B direction: priority-
	// dependent ECN marking lets ECN-based CCs approximate virtual
	// priority in one queue — at the cost of a switch change, which is
	// why the paper leaves it as future work.
	ECNKByVPrio []int
}

// DefaultBufferConfig returns a lossless 32 MB shared-buffer configuration
// with 8 lossless priorities, matching the paper's coflow/ML scenarios.
func DefaultBufferConfig() BufferConfig {
	return BufferConfig{
		TotalBytes:    32 << 20,
		DTAlpha:       1,
		PFCEnabled:    true,
		LosslessPrios: 8,
		HeadroomBytes: 100 << 10,
		PFCAlpha:      1.0 / 8,
		PerQueueMin:   16 << 10,
		ECNKMin:       0,
		ECNKMax:       0,
		ECNPMax:       1,
	}
}

// sharedBuffer tracks switch buffer occupancy. Lossless traffic is
// accounted per ingress (port, priority) class; each class may spill into
// its reserved headroom after its pause threshold is crossed.
//
// The per-class state lives in flat arenas indexed port*nprios+prio — one
// cache-dense array per quantity instead of a slice-of-slices — so an
// admit/release touches one line per quantity with no pointer chase.
type sharedBuffer struct {
	cfg     BufferConfig
	nprios  int // arena stride: prios per port
	shared  int // bytes available to the shared pool
	used    int // shared pool occupancy
	UsedHWM int // highest shared-pool occupancy seen
	hdrUsed int // total headroom occupancy across all ingress classes
	HdrHWM  int // highest headroom occupancy seen

	// Per ingress (port, prio) class state, indexed port*nprios+prio.
	ing    []int // shared-pool + headroom bytes held by the class
	hdr    []int // headroom bytes held by the class
	paused []bool

	// Exact integer replacements for the threshold float math, valid when
	// the corresponding alpha is a power of two (the defaults are:
	// PFCAlpha 1/8, DTAlpha 1). See xoff and dtExceeds for the exactness
	// argument; pow2Exponent for the detection.
	xoffShift int
	xoffExact bool
	dtShift   int
	dtExact   bool

	Drops      int64
	DropBytes  int64
	PausesSent int64
}

func newSharedBuffer(cfg BufferConfig, nports, nprios int) *sharedBuffer {
	b := &sharedBuffer{cfg: cfg, nprios: nprios}
	reserved := 0
	if cfg.PFCEnabled && !cfg.HeadroomFree {
		lossless := min(cfg.LosslessPrios, nprios)
		reserved = nports * lossless * cfg.HeadroomBytes
	}
	b.shared = cfg.TotalBytes - reserved
	if b.shared < 0 {
		b.shared = 0
	}
	b.ing = make([]int, nports*nprios)
	b.hdr = make([]int, nports*nprios)
	b.paused = make([]bool, nports*nprios)
	b.xoffShift, b.xoffExact = pow2Exponent(cfg.PFCAlpha)
	b.dtShift, b.dtExact = pow2Exponent(cfg.DTAlpha)
	return b
}

// pow2Exponent reports whether a == 2^e exactly for some e in [-30, 30],
// returning that e. The range bound keeps the shift arithmetic in xoff and
// dtExceeds overflow-free for any byte count below 2^32.
func pow2Exponent(a float64) (int, bool) {
	for e := -30; e <= 30; e++ {
		if a == math.Ldexp(1, e) {
			return e, true
		}
	}
	return 0, false
}

// SharedFree returns the free bytes in the shared pool.
func (b *sharedBuffer) SharedFree() int { return b.shared - b.used }

// Used returns the shared-pool occupancy in bytes.
func (b *sharedBuffer) Used() int { return b.used }

// HeadroomUsed returns the total PFC headroom occupancy in bytes. Under
// heavy incast most queued bytes live here, not in the shared pool: once
// an ingress class crosses xoff, everything it receives spills into its
// headroom reservation until the upstream pause takes effect.
func (b *sharedBuffer) HeadroomUsed() int { return b.hdrUsed }

func (b *sharedBuffer) lossless(prio int) bool {
	return b.cfg.PFCEnabled && prio < b.cfg.LosslessPrios
}

// xoff returns the dynamic pause threshold for an ingress class. When
// PFCAlpha is an exact power of two (the default 1/8 is), the float
// multiply is replaced by an integer shift that provably computes the same
// value: alpha*float64(free) is exact for any |free| < 2^53 (both factors
// are dyadic rationals and the product needs no rounding), and truncating
// an exact non-negative dyadic equals free >> k. Negative free (possible
// transiently via the PerQueueMin guarantee pushing used past shared)
// keeps the float path, where int()'s truncation toward zero differs from
// a shift's floor — though both land below the floor clamp regardless.
func (b *sharedBuffer) xoff() int {
	var t int
	if free := b.shared - b.used; b.xoffExact && free >= 0 {
		if e := b.xoffShift; e >= 0 {
			t = free << uint(e)
		} else {
			t = free >> uint(-e)
		}
	} else {
		t = int(b.cfg.PFCAlpha * float64(free))
	}
	const floor = 2 * (DefaultMTU + HeaderBytes)
	if t < floor {
		t = floor
	}
	return t
}

// charge adds size bytes to the shared-pool occupancy, tracking the
// high-water mark.
func (b *sharedBuffer) charge(size int) {
	b.used += size
	if b.used > b.UsedHWM {
		b.UsedHWM = b.used
	}
}

// admitLossless charges an arriving packet to ingress class (port, prio).
// It returns whether the packet is admitted and whether a PFC pause should
// be sent upstream.
func (b *sharedBuffer) admitLossless(port, prio, size int) (admitted, sendPause bool) {
	i := port*b.nprios + prio
	ing := b.ing[i] + size
	if b.ing[i] <= b.xoff() && b.used+size <= b.shared {
		b.charge(size)
	} else {
		// Over threshold (or shared pool exhausted): spill into headroom.
		if b.hdr[i]+size > b.cfg.HeadroomBytes {
			b.Drops++
			b.DropBytes += int64(size)
			return false, false
		}
		b.hdr[i] += size
		b.hdrUsed += size
		if b.hdrUsed > b.HdrHWM {
			b.HdrHWM = b.hdrUsed
		}
	}
	b.ing[i] = ing
	if !b.paused[i] && ing > b.xoff() {
		b.paused[i] = true
		b.PausesSent++
		return true, true
	}
	return true, false
}

// dtExceeds reports whether an egress queue of q bytes exceeds the dynamic
// threshold DTAlpha * SharedFree(). With DTAlpha == 2^e (the default 1 is
// e == 0) the float comparison collapses to an exact integer one: both
// floats are exact (|values| < 2^53, the product only shifts the
// exponent), so `float64(q) > 2^e*float64(free)` is the rational
// comparison q > free*2^e, which cross-multiplies into shifts — exact for
// either sign of free, since q >= 0. Non-power-of-two alphas keep the
// original float math.
func (b *sharedBuffer) dtExceeds(q int) bool {
	free := b.shared - b.used
	if b.dtExact {
		if e := b.dtShift; e >= 0 {
			return int64(q) > int64(free)<<uint(e)
		} else {
			return int64(q)<<uint(-e) > int64(free)
		}
	}
	return float64(q) > b.cfg.DTAlpha*float64(free)
}

// admitLossy applies dynamic-threshold admission against the egress queue
// length, with a per-queue minimum guarantee below which packets are
// always admitted.
func (b *sharedBuffer) admitLossy(egressQLen, size int) bool {
	if egressQLen+size <= b.cfg.PerQueueMin {
		b.charge(size)
		return true
	}
	if b.used+size > b.shared || b.dtExceeds(egressQLen+size) {
		b.Drops++
		b.DropBytes += int64(size)
		return false
	}
	b.charge(size)
	return true
}

// release uncharges a departing packet and reports whether a PFC resume
// should be sent upstream for its ingress class.
func (b *sharedBuffer) release(port, prio, size int, lossless bool) (sendResume bool) {
	if !lossless {
		b.used -= size
		return false
	}
	i := port*b.nprios + prio
	b.ing[i] -= size
	// Headroom is drained first so the class re-enters the shared pool.
	if h := b.hdr[i]; h > 0 {
		if size <= h {
			b.hdr[i] -= size
			b.hdrUsed -= size
		} else {
			b.hdr[i] = 0
			b.hdrUsed -= h
			b.used -= size - h
		}
	} else {
		b.used -= size
	}
	if b.paused[i] && b.ing[i] <= b.xoff()/2 {
		b.paused[i] = false
		return true
	}
	return false
}

// ecnMark decides whether an ECT data packet should be CE-marked given the
// egress queue length after enqueue. rnd is a uniform [0,1) sample used for
// RED-style probabilistic marking.
func (cfg *BufferConfig) ecnMark(qlen int, vprio int16, rnd float64) bool {
	if cfg.ECNKByVPrio != nil && int(vprio) >= 0 && int(vprio) < len(cfg.ECNKByVPrio) {
		return qlen > cfg.ECNKByVPrio[vprio]
	}
	if cfg.ECNKMin <= 0 {
		return false
	}
	if qlen <= cfg.ECNKMin {
		return false
	}
	if qlen >= cfg.ECNKMax || cfg.ECNKMax <= cfg.ECNKMin {
		return true
	}
	p := cfg.ECNPMax * float64(qlen-cfg.ECNKMin) / float64(cfg.ECNKMax-cfg.ECNKMin)
	return rnd < p
}

// PauseDuration is unused by the simulator (pause/resume is explicit), but
// the quanta-based PFC watchdog interval is exposed for tests that verify
// pauses cannot deadlock silently.
const PauseDuration = 65535 * 512 * sim.Picosecond
