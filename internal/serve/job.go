package serve

import (
	"time"

	"prioplus/internal/exp"
	"prioplus/internal/runner"
)

// Job lifecycle states. A job is finished once it reaches done, failed, or
// canceled; only finished jobs have a result.
const (
	// JobQueued means admitted but not yet on a worker.
	JobQueued = "queued"
	// JobRunning means a worker is computing it.
	JobRunning = "running"
	// JobDone means it finished successfully; the result is available.
	JobDone = "done"
	// JobFailed means the run errored, panicked, timed out, or failed the
	// manifest cross-check.
	JobFailed = "failed"
	// JobCanceled means it was canceled while still queued.
	JobCanceled = "canceled"
)

// JobSpec is what a client submits: a registry experiment id, its
// serializable parameters, and whether to record a streaming artifact.
// The HTTP layer fills Params by strict-decoding the request's params
// object over the experiment's registered defaults (exp.DecodeParams), so
// an empty submission runs the spec's defaults and an unknown field is a
// 400, not a silent no-op.
type JobSpec struct {
	// Experiment is the exp registry id (e.g. "fig10b").
	Experiment string `json:"experiment"`
	// Params are the run parameters after defaulting.
	Params exp.RunParams `json:"params"`
	// Artifact, when set, arms the timeline series instrument and streams
	// the run's artifact lines to /events subscribers; the captured lines
	// also come back in the job result.
	Artifact bool `json:"artifact,omitempty"`
}

// job is the scheduler's internal record. All fields except state's
// atomics are guarded by Scheduler.mu.
type job struct {
	id        string
	spec      JobSpec
	key       string // cache key
	status    string
	cache     string // "hit" or "miss"
	output    string
	fp        string
	errMsg    string
	artifacts []Artifact
	wallMS    float64
	events    uint64

	submitted  time.Time
	finishedAt time.Time

	state     *runner.RunState // live gauges; non-nil for leaders
	followers []*job           // identical specs waiting on this leader
	runErr    error            // experiment-level error from compute
	skipped   bool             // compute skipped (canceled, no followers)
}

// finished reports whether the job reached a terminal state.
func (j *job) finished() bool {
	switch j.status {
	case JobDone, JobFailed, JobCanceled:
		return true
	}
	return false
}

// snapshot renders the job for /jobs. Caller holds Scheduler.mu.
func (j *job) snapshot() JobSnapshot {
	s := JobSnapshot{
		ID:              j.id,
		Experiment:      j.spec.Experiment,
		Params:          j.spec.Params,
		Artifact:        j.spec.Artifact,
		Status:          j.status,
		Cache:           j.cache,
		FP:              j.fp,
		Err:             j.errMsg,
		SubmittedUnixMS: j.submitted.UnixMilli(),
		WallMS:          j.wallMS,
		Events:          j.events,
	}
	return s
}

// JobSnapshot is one job's public state, as served by /jobs and returned
// from submission.
type JobSnapshot struct {
	// ID is the scheduler-assigned job id ("j1", "j2", ...).
	ID string `json:"id"`
	// Experiment and Params echo the submitted spec after defaulting.
	Experiment string        `json:"experiment"`
	Params     exp.RunParams `json:"params"`
	// Artifact echoes the spec's artifact flag.
	Artifact bool `json:"artifact,omitempty"`
	// Status is one of queued/running/done/failed/canceled.
	Status string `json:"status"`
	// Cache is "hit" (served from the cache or attached to an identical
	// in-flight job) or "miss" (this job computed).
	Cache string `json:"cache,omitempty"`
	// FP is the run fingerprint (%016x FNV-64a of the output), set once
	// done.
	FP string `json:"fp,omitempty"`
	// Err is the failure message for failed jobs.
	Err string `json:"error,omitempty"`
	// SubmittedUnixMS is the admission wall-clock in Unix milliseconds.
	SubmittedUnixMS int64 `json:"submitted_unix_ms"`
	// WallMS and Events are the compute cost (cached values for hits).
	WallMS float64 `json:"wall_ms,omitempty"`
	Events uint64  `json:"events,omitempty"`
}

// JobsSnapshot is the /jobs payload: every job in submission order plus
// aggregate counters. The watch dashboard decodes this struct.
type JobsSnapshot struct {
	// Jobs lists each job, oldest first.
	Jobs []JobSnapshot `json:"jobs"`
	// Counts tallies jobs by status.
	Counts JobCounts `json:"counts"`
	// Queue reports backpressure state.
	Queue QueueStats `json:"queue"`
	// Cache reports result-cache effectiveness.
	Cache CacheStats `json:"cache"`
}

// JobCounts tallies jobs by status.
type JobCounts struct {
	// Queued..Canceled count jobs currently in each state.
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
}

// QueueStats reports the bounded queue's occupancy.
type QueueStats struct {
	// Depth is the number of queued jobs; Capacity the configured bound
	// past which submissions get 429.
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
}

// CacheStats reports the result cache's counters.
type CacheStats struct {
	// Entries is the current cache population; Hits and Misses are
	// lifetime submission counters (a follower attach counts as a hit).
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// JobResult is the /jobs/{id}/result payload: the run's full output and
// everything needed to verify it.
type JobResult struct {
	// ID, Experiment, Params, Status, Cache mirror the snapshot.
	ID         string        `json:"id"`
	Experiment string        `json:"experiment"`
	Params     exp.RunParams `json:"params"`
	Status     string        `json:"status"`
	Cache      string        `json:"cache,omitempty"`
	// FP is the output fingerprint; byte-identical reruns produce the same
	// value, and cache hits return the stored one.
	FP string `json:"fp,omitempty"`
	// Output is the experiment's rendered text, byte-identical to the CLI
	// running the same spec with -fingerprint.
	Output string `json:"output"`
	// Err is the failure message for failed jobs.
	Err string `json:"error,omitempty"`
	// Metrics carries wall_ms and events for the computing run.
	Metrics map[string]float64 `json:"metrics"`
	// Artifacts holds the streamed artifact lines when the spec asked for
	// them, one entry per run tag.
	Artifacts []Artifact `json:"artifacts,omitempty"`
}

// Artifact is one run's captured artifact stream.
type Artifact struct {
	// Stem is the canonical artifact basename (obs.ArtifactStem), the same
	// id /events subscribers saw the lines under.
	Stem string `json:"stem"`
	// Lines is the raw JSONL artifact content.
	Lines string `json:"lines"`
}
