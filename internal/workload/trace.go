package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"prioplus/internal/sim"
)

// ParseCoflowTrace reads coflows from the text format used by the public
// Facebook Hadoop trace release (Chowdhury et al.):
//
//	<num machines> <num coflows>
//	<id> <arrival ms> <num mappers> <m1> <m2> ... <num reducers> <r1:sizeMB> <r2:sizeMB> ...
//
// Each mapper sends size/mappers to each reducer. Machine indexes are
// 1-based in the trace and mapped onto hosts modulo the host count.
func ParseCoflowTrace(r io.Reader, hosts int) ([]Coflow, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("workload: empty trace")
	}
	var out []Coflow
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cf, err := parseCoflowLine(fields, hosts)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		out = append(out, cf)
	}
	return out, sc.Err()
}

func parseCoflowLine(fields []string, hosts int) (Coflow, error) {
	var cf Coflow
	if len(fields) < 4 {
		return cf, fmt.Errorf("short line")
	}
	id, err := strconv.Atoi(fields[0])
	if err != nil {
		return cf, fmt.Errorf("bad id %q", fields[0])
	}
	cf.ID = id
	arrivalMS, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return cf, fmt.Errorf("bad arrival %q", fields[1])
	}
	cf.Arrival = sim.Time(arrivalMS * float64(sim.Millisecond))
	nm, err := strconv.Atoi(fields[2])
	if err != nil || nm <= 0 || len(fields) < 3+nm+1 {
		return cf, fmt.Errorf("bad mapper count")
	}
	mappers := make([]int, nm)
	for i := 0; i < nm; i++ {
		m, err := strconv.Atoi(fields[3+i])
		if err != nil {
			return cf, fmt.Errorf("bad mapper %q", fields[3+i])
		}
		mappers[i] = (m - 1 + hosts) % hosts
	}
	nrIdx := 3 + nm
	nr, err := strconv.Atoi(fields[nrIdx])
	if err != nil || nr <= 0 || len(fields) < nrIdx+1+nr {
		return cf, fmt.Errorf("bad reducer count")
	}
	for i := 0; i < nr; i++ {
		part := fields[nrIdx+1+i]
		sep := strings.IndexByte(part, ':')
		if sep < 0 {
			return cf, fmt.Errorf("bad reducer %q", part)
		}
		rm, err := strconv.Atoi(part[:sep])
		if err != nil {
			return cf, fmt.Errorf("bad reducer machine %q", part)
		}
		sizeMB, err := strconv.ParseFloat(part[sep+1:], 64)
		if err != nil || sizeMB < 0 {
			return cf, fmt.Errorf("bad reducer size %q", part)
		}
		dst := (rm - 1 + hosts) % hosts
		per := int64(sizeMB * 1e6 / float64(len(mappers)))
		if per <= 0 {
			per = 1
		}
		for _, src := range mappers {
			if src == dst {
				continue
			}
			cf.Flows = append(cf.Flows, CoflowFlow{Src: src, Dst: dst, Size: per})
			cf.Total += per
		}
	}
	if len(cf.Flows) == 0 {
		return cf, fmt.Errorf("coflow with no cross-host flows")
	}
	return cf, nil
}
