package runner

import (
	"runtime"
	"sync"
	"time"
)

// Pool is a long-lived worker pool for tasks that arrive over time — the
// execution engine behind the serve layer's job queue, where Run's
// all-at-once batch shape does not fit. Tasks submitted to a Pool get the
// same semantics as batch tasks: panic isolation (a panicking task fails
// only itself) and a per-task wall-clock timeout (a hung run is abandoned
// and reported as timed out), both via the shared execute step. The queue
// is bounded; TrySubmit refuses rather than blocks when it is full, which
// is how the job server turns overload into backpressure (HTTP 429)
// instead of unbounded memory growth.
type Pool struct {
	queue   chan poolItem
	timeout time.Duration
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

type poolItem struct {
	task Task
	done func(Result)
}

// NewPool starts a pool with the given number of worker goroutines
// (<= 0 means GOMAXPROCS) draining a queue of the given depth (<= 0 means
// one slot per worker). timeout bounds each task's wall clock (0 = none).
func NewPool(workers, depth int, timeout time.Duration) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = workers
	}
	p := &Pool{queue: make(chan poolItem, depth), timeout: timeout}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for it := range p.queue {
				r := execute(it.task, 0, p.timeout)
				if it.done != nil {
					it.done(r)
				}
			}
		}()
	}
	return p
}

// TrySubmit enqueues t without blocking and reports whether it was
// accepted: false means the queue is full (backpressure) or the pool is
// closed. done, when non-nil, is called on the worker goroutine with the
// task's result once it finishes.
func (p *Pool) TrySubmit(t Task, done func(Result)) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- poolItem{task: t, done: done}:
		return true
	default:
		return false
	}
}

// Close stops intake, drains already-queued tasks, and waits for the
// workers to finish. Tasks abandoned by a timeout may still be running on
// their own goroutines when Close returns — the same contract batch mode
// has (the process exit reaps them).
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
}
