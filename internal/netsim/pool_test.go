package netsim

import (
	"math"
	"testing"

	"prioplus/internal/sim"
)

func TestPoolRecyclesAndStampsGeneration(t *testing.T) {
	pool := NewPacketPool()
	pkt := pool.Data(1, 0, 1, 0, 0, 1000)
	if pkt.Generation() != 0 {
		t.Fatalf("fresh packet generation = %d, want 0", pkt.Generation())
	}
	pool.Put(pkt)
	again := pool.Data(2, 0, 1, 0, 0, 500)
	if again != pkt {
		t.Fatal("pool did not recycle the freed packet")
	}
	if again.Generation() != 1 {
		t.Errorf("recycled packet generation = %d, want 1", again.Generation())
	}
	if again.FlowID != 2 || again.Payload != 500 || again.Wire != 500+HeaderBytes {
		t.Errorf("recycled packet not reinitialized: %+v", again)
	}
	if again.CE || again.ECT || again.SentAt != 0 || len(again.INT) != 0 {
		t.Errorf("recycled packet carries stale state: %+v", again)
	}
	if pool.Gets != 2 || pool.Puts != 1 || pool.News != 1 {
		t.Errorf("pool counters = gets %d puts %d news %d, want 2/1/1",
			pool.Gets, pool.Puts, pool.News)
	}
}

func TestNilPoolFallsBackToAllocation(t *testing.T) {
	var pool *PacketPool
	pkt := pool.Data(1, 0, 1, 0, 0, 1000)
	if pkt == nil || pkt.Wire != 1000+HeaderBytes {
		t.Fatalf("nil pool Data broken: %+v", pkt)
	}
	pool.Put(pkt) // must be a no-op, not a crash
	if pool.FreeLen() != 0 {
		t.Error("nil pool grew a free list")
	}
}

// TestAckDoesNotAliasINT is the regression test for the NewAck INT-slice
// aliasing bug: with pooling, an ACK sharing the data packet's backing
// array would be corrupted as soon as the data packet is recycled and its
// INT records overwritten by the next incarnation.
func TestAckDoesNotAliasINT(t *testing.T) {
	// Pool-free path: NewAck copies, the caller keeps the data packet.
	data := NewData(1, 0, 1, 0, 0, 1000)
	data.INT = append(data.INT, INTRecord{QLen: 7, TxBytes: 42})
	ack := NewAck(data, 0, 1000)
	data.INT[0].QLen = 99
	if len(ack.INT) != 1 || ack.INT[0].QLen != 7 {
		t.Errorf("NewAck aliases the data packet's INT slice: ack.INT = %+v", ack.INT)
	}

	// Pooled path: ownership handoff. Recycle the data packet, reuse it,
	// and grow fresh INT records on the new incarnation — the in-flight
	// ACK must be unaffected.
	pool := NewPacketPool()
	d := pool.Data(1, 0, 1, 0, 0, 1000)
	d.INT = append(d.INT, INTRecord{QLen: 7, TxBytes: 42})
	ack2 := pool.Ack(d, 0, 1000)
	pool.Put(d)
	next := pool.Data(2, 0, 1, 0, 1000, 1000)
	for i := 0; i < 8; i++ {
		next.INT = append(next.INT, INTRecord{QLen: 1000 + i})
	}
	if len(ack2.INT) != 1 || ack2.INT[0].QLen != 7 || ack2.INT[0].TxBytes != 42 {
		t.Errorf("recycled data packet corrupted the in-flight ACK: ack.INT = %+v", ack2.INT)
	}
}

// TestPoolGetPutZeroAlloc pins the pool round-trip at zero allocations
// once the free list is warm.
func TestPoolGetPutZeroAlloc(t *testing.T) {
	pool := NewPacketPool()
	pool.Put(pool.Data(1, 0, 1, 0, 0, 1000))
	if avg := testing.AllocsPerRun(200, func() {
		pkt := pool.Data(1, 0, 1, 0, 0, 1000)
		pool.Put(pkt)
	}); avg != 0 {
		t.Errorf("pool Data/Put round trip: %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		data := pool.Data(1, 0, 1, 0, 0, 1000)
		ack := pool.Ack(data, 0, 1000)
		pool.Put(data)
		pool.Put(ack)
	}); avg != 0 {
		t.Errorf("pool Data/Ack/Put round trip: %v allocs/op, want 0", avg)
	}
}

// TestOneHopPacketPathZeroAlloc drives a full one-hop round trip — data
// packet serialized and propagated host-to-host, ACK built at the receiver
// from the pool, delivered back, and both recycled — and requires the
// steady state to be allocation-free.
func TestOneHopPacketPathZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	pool := NewPacketPool()
	a := NewHost(eng, 0, 100*Gbps, sim.Microsecond, 1)
	b := NewHost(eng, 1, 100*Gbps, sim.Microsecond, 1)
	Connect(a.NIC, b.NIC)
	b.Sink = func(pkt *Packet) {
		if pkt.Type == Data {
			ack := pool.Ack(pkt, 0, pkt.Seq+int64(pkt.Payload))
			pool.Put(pkt)
			b.Send(ack)
		}
	}
	acked := 0
	a.Sink = func(pkt *Packet) {
		acked++
		pool.Put(pkt)
	}
	seq := int64(0)
	send := func() {
		a.Send(pool.Data(1, 0, 1, 0, seq, 1000))
		seq += 1000
		eng.Run()
	}
	for i := 0; i < 64; i++ { // warm pools, queues, and the event free list
		send()
	}
	if avg := testing.AllocsPerRun(100, func() { send() }); avg != 0 {
		t.Errorf("one-hop packet path: %v allocs/op, want 0", avg)
	}
	// 64 warm-up sends + 101 from AllocsPerRun (it calls f once extra).
	if acked != 165 {
		t.Fatalf("acked %d packets, want 165", acked)
	}
}

func TestSerializeMultiGBNoOverflow(t *testing.T) {
	// 3 GiB at 1 Mb/s: the naive bits*Second product overflows int64; the
	// split path must stay exact (Mbps divides sim.Second evenly).
	bytes := 3 << 30
	got := Mbps.Serialize(bytes)
	if got <= 0 {
		t.Fatalf("Serialize(3GiB @ Mbps) = %v, overflowed", got)
	}
	want := sim.Time(int64(bytes) * 8 * (int64(sim.Second) / int64(Mbps)))
	if got != want {
		t.Errorf("Serialize(3GiB @ Mbps) = %v, want %v", got, want)
	}
	// Sanity in seconds: ~25770 s.
	if math.Abs(got.Seconds()-float64(bytes)*8/1e6) > 1e-6 {
		t.Errorf("Serialize(3GiB @ Mbps) = %v s, want %v s", got.Seconds(), float64(bytes)*8/1e6)
	}
	// Packet-sized inputs keep the exact fast path.
	if got := Gbps.Serialize(1000); got != 8*sim.Microsecond {
		t.Errorf("Serialize(1000B @ Gbps) = %v, want 8us", got)
	}
	if got := (100 * Gbps).Serialize(1); got != 80*sim.Picosecond {
		t.Errorf("Serialize(1B @ 100Gbps) = %v, want 80ps", got)
	}
}
