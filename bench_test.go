// Package prioplus_bench regenerates every table and figure of the paper
// as a testing.B benchmark. Each benchmark runs a reduced-scale version of
// the experiment (the CLI's -full flag runs paper scale) and reports the
// figure's headline quantity as a custom metric, so `go test -bench=.`
// doubles as a reproduction harness: the reported metrics should match the
// paper's *shape* — who wins, by roughly what factor, where crossovers
// fall. EXPERIMENTS.md records paper-vs-measured for each one.
package prioplus_bench

import (
	"testing"

	"prioplus/internal/exp"
	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// BenchmarkFig2ChipRatios regenerates the buffer/bandwidth ratio table.
func BenchmarkFig2ChipRatios(b *testing.B) {
	var t2, t4 float64
	for i := 0; i < b.N; i++ {
		for _, r := range exp.Fig2(exp.Options{}) {
			switch r.Chip {
			case "Trident2":
				t2 = r.RatioMBpT
			case "Tomahawk4":
				t4 = r.RatioMBpT
			}
		}
	}
	b.ReportMetric(t2, "Trident2_MB/Tbps")
	b.ReportMetric(t4, "Tomahawk4_MB/Tbps")
}

// BenchmarkFig3aD2TCP: D2TCP cannot give the tight-deadline flow strict
// priority (share ~0.6-0.8, not ~1.0).
func BenchmarkFig3aD2TCP(b *testing.B) {
	var r exp.Fig3aResult
	for i := 0; i < b.N; i++ {
		r = exp.Fig3a(8<<20, exp.Options{})
	}
	b.ReportMetric(r.HighShare, "high_share")
	b.ReportMetric(r.HighFCTvsIdeal, "high_fct_vs_ideal")
}

// BenchmarkFig3bSwiftScaling: Swift with target scaling converges to
// weighted, not strict, sharing.
func BenchmarkFig3bSwiftScaling(b *testing.B) {
	var r exp.Fig3bResult
	for i := 0; i < b.N; i++ {
		r = exp.Fig3b(exp.Options{})
	}
	b.ReportMetric(r.HighShare, "high_share")
}

// BenchmarkFig3cSwiftNoScaling: without scaling, many-flow fluctuations
// cross the high flow's threshold (O1+O2 violations).
func BenchmarkFig3cSwiftNoScaling(b *testing.B) {
	var r exp.Fig3cResult
	for i := 0; i < b.N; i++ {
		r = exp.Fig3c(100, exp.Options{})
	}
	b.ReportMetric(r.UtilBefore, "util_before")
	b.ReportMetric(r.OverLimitFrac, "over_limit_frac")
	b.ReportMetric(r.HighShareAfter, "high_share_after")
}

// BenchmarkFig3dTradeoffs: line-rate start buffer cost and min-rate
// reclaim stall.
func BenchmarkFig3dTradeoffs(b *testing.B) {
	var r exp.Fig3dResult
	for i := 0; i < b.N; i++ {
		r = exp.Fig3d(exp.Options{})
	}
	b.ReportMetric(float64(r.ExtraQueueOnStart)/1000, "start_extra_queue_KB")
	b.ReportMetric(r.ReclaimDelay.Millis(), "reclaim_ms")
}

// BenchmarkFig7NoiseCDF: the delay-noise model's summary statistics.
func BenchmarkFig7NoiseCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, st := exp.Fig7(exp.Fig7Config{Samples: 100_000}, exp.Options{})
		b.ReportMetric(st.Mean.Micros(), "mean_us")
		b.ReportMetric(st.P9985.Micros(), "p9985_us")
		b.ReportMetric(st.FracGt1*100, "pct_gt_1us")
	}
}

// BenchmarkFig8Testbed: the 4-priority staggered ladder; PrioPlus's
// dominance of the newest priority vs multi-target Swift's.
func BenchmarkFig8Testbed(b *testing.B) {
	var pp, sw exp.Fig8Result
	for i := 0; i < b.N; i++ {
		pp = exp.Fig8(true, 2*sim.Millisecond, exp.Options{})
		sw = exp.Fig8(false, 2*sim.Millisecond, exp.Options{})
	}
	b.ReportMetric(pp.DominanceFrac, "prioplus_dominance")
	b.ReportMetric(sw.DominanceFrac, "swift_dominance")
}

// BenchmarkFig9Fluctuation: delay containment with inflated AI steps.
func BenchmarkFig9Fluctuation(b *testing.B) {
	var pp, sw exp.Fig9Result
	for i := 0; i < b.N; i++ {
		pp = exp.Fig9(true, exp.Options{})
		sw = exp.Fig9(false, exp.Options{})
	}
	b.ReportMetric(pp.OverLimitFrac, "prioplus_over_limit")
	b.ReportMetric(sw.OverLimitFrac, "swift_over_limit")
}

// BenchmarkFig10aEightPrio: share held by each newly started priority in
// its own interval (all should be ~1).
func BenchmarkFig10aEightPrio(b *testing.B) {
	var shares []float64
	for i := 0; i < b.N; i++ {
		shares = exp.Fig10a(3, 3*sim.Millisecond, exp.Options{})
	}
	minShare := 1.0
	for _, s := range shares[1:] {
		if s < minShare {
			minShare = s
		}
	}
	b.ReportMetric(minShare, "min_interval_share")
}

// BenchmarkFig10bIncast: delay containment under synchronized incast.
func BenchmarkFig10bIncast(b *testing.B) {
	var r exp.Fig10bResult
	for i := 0; i < b.N; i++ {
		r = exp.Fig10b(80, exp.Options{})
	}
	b.ReportMetric(r.WithinFrac, "within_channel_frac")
	b.ReportMetric(r.MeanDelay.Micros(), "mean_delay_us")
}

// BenchmarkFig10bIncastObs: the same incast with the full telemetry stack
// enabled — 10us series sampling over the standard source catalogue plus
// latency histograms. The acceptance bar is < 10% over BenchmarkFig10bIncast.
func BenchmarkFig10bIncastObs(b *testing.B) {
	var r exp.Fig10bResult
	for i := 0; i < b.N; i++ {
		rec := obs.NewRecorder()
		rec.Series = obs.NewSeriesSet(10 * sim.Microsecond)
		rec.Hist = obs.NewHistSet()
		r = exp.Fig10b(80, exp.Options{Recorder: rec})
		if rec.Series.Ticks() == 0 {
			b.Fatal("sampler never fired")
		}
	}
	b.ReportMetric(r.WithinFrac, "within_channel_frac")
	b.ReportMetric(r.MeanDelay.Micros(), "mean_delay_us")
}

// BenchmarkFig10bIncastFullObs: the same incast with everything on —
// series, histograms, per-event-kind cost attribution, host runtime
// gauges, and the live-progress bridge. This is the `-series -hist -cost
// -runtime -listen` configuration; the acceptance bar is < 10% over
// BenchmarkFig10bIncast.
func BenchmarkFig10bIncastFullObs(b *testing.B) {
	var r exp.Fig10bResult
	for i := 0; i < b.N; i++ {
		rec := obs.NewRecorder()
		rec.Series = obs.NewSeriesSet(10 * sim.Microsecond)
		rec.Hist = obs.NewHistSet()
		rec.Cost = &obs.CostProfiler{}
		rec.Runtime = &obs.RuntimeSampler{}
		rec.Live = &obs.LiveRun{}
		r = exp.Fig10b(80, exp.Options{Recorder: rec})
		if rec.Series.Ticks() == 0 {
			b.Fatal("sampler never fired")
		}
		if rec.Cost.TotalNanos() == 0 {
			b.Fatal("cost profiler recorded nothing")
		}
		if rec.Live.Events.Load() == 0 {
			b.Fatal("live bridge never updated")
		}
	}
	b.ReportMetric(r.WithinFrac, "within_channel_frac")
	b.ReportMetric(r.MeanDelay.Micros(), "mean_delay_us")
}

// BenchmarkFig10bIncastFingerprint: the same incast with the digest chain
// folding every dispatched event (the `-fingerprint` configuration). The
// acceptance bar is <= 2% over BenchmarkFig10bIncast — one XOR-multiply
// fold per event plus the receiving ports' payload folds.
func BenchmarkFig10bIncastFingerprint(b *testing.B) {
	var r exp.Fig10bResult
	var dig *sim.Digest
	for i := 0; i < b.N; i++ {
		rec := obs.NewRecorder()
		dig = sim.NewDigest()
		rec.Digest = dig
		r = exp.Fig10b(80, exp.Options{Recorder: rec})
		if dig.Count == 0 {
			b.Fatal("digest folded nothing")
		}
	}
	b.ReportMetric(r.WithinFrac, "within_channel_frac")
	b.ReportMetric(float64(dig.Count), "events_folded")
}

// BenchmarkFig10bIncastTrace: the same incast with causal flow tracing on
// for four sampled flows — packet journeys at the default stride plus the
// full CC decision audit. The acceptance bar is < 10% over
// BenchmarkFig10bIncast; unsampled flows ride the zero-alloc path.
func BenchmarkFig10bIncastTrace(b *testing.B) {
	var r exp.Fig10bResult
	var spans int
	for i := 0; i < b.N; i++ {
		rec := obs.NewRecorder()
		rec.FlowTrace = obs.NewFlowTracer(4)
		r = exp.Fig10b(80, exp.Options{Recorder: rec})
		spans = 0
		for _, fl := range rec.FlowTrace.Logs() {
			spans += fl.Len()
		}
		if spans == 0 {
			b.Fatal("flow tracer recorded nothing")
		}
	}
	b.ReportMetric(r.WithinFrac, "within_channel_frac")
	b.ReportMetric(r.MeanDelay.Micros(), "mean_delay_us")
	b.ReportMetric(float64(spans), "trace_spans")
}

// BenchmarkFig10cDualRTT: dual-RTT vs every-RTT adaptive increase.
func BenchmarkFig10cDualRTT(b *testing.B) {
	var r exp.Fig10cResult
	for i := 0; i < b.N; i++ {
		r = exp.Fig10c(exp.Options{})
	}
	b.ReportMetric(r.DualRTT.RateStdev, "dualrtt_rate_var")
	b.ReportMetric(r.EveryRTT.RateStdev, "everyrtt_rate_var")
	b.ReportMetric(r.DualRTT.TakeoverTime.Millis(), "takeover_ms")
}

// BenchmarkFig10dNoise: utilization for narrow vs wide channels under
// scaled noise; the width needed grows with the noise.
func BenchmarkFig10dNoise(b *testing.B) {
	var pts []exp.Fig10dPoint
	for i := 0; i < b.N; i++ {
		pts = exp.Fig10d(exp.Fig10dConfig{Scales: []float64{1, 4}, WidthsUS: []float64{1, 8}}, exp.Options{})
	}
	for _, p := range pts {
		if p.NoiseScale == 4 && p.WidthUS == 1 {
			b.ReportMetric(p.Util, "util_scale4_width1")
		}
		if p.NoiseScale == 4 && p.WidthUS == 8 {
			b.ReportMetric(p.Util, "util_scale4_width8")
		}
	}
}

// BenchmarkFig11FlowSched: the flow-scheduling scenario at 8 priorities;
// the headline is PrioPlus's large-flow advantage with small+middle parity.
func BenchmarkFig11FlowSched(b *testing.B) {
	var phys, pp exp.FlowSchedResult
	for i := 0; i < b.N; i++ {
		cfg := exp.DefaultFlowSchedConfig(exp.SwiftPhysicalIdeal(), 8)
		cfg.K = 4
		cfg.Duration = 4 * sim.Millisecond
		cfg.Drain = 12 * sim.Millisecond
		phys = exp.RunFlowSched(cfg)
		cfg.Scheme = exp.PrioPlusSwift()
		pp = exp.RunFlowSched(cfg)
	}
	b.ReportMetric(phys.Flows.MeanSlowdown(), "phys_avg_slowdown")
	b.ReportMetric(pp.Flows.MeanSlowdown(), "pp_avg_slowdown")
	b.ReportMetric(float64(pp.Flows.Count()), "pp_flows_done")
}

// BenchmarkFig12Coflow: coflow CCT speedups vs the no-priority baseline.
func BenchmarkFig12Coflow(b *testing.B) {
	var rows []exp.CoflowSpeedups
	for i := 0; i < b.N; i++ {
		cfg := exp.DefaultCoflowConfig(exp.PrioPlusSwift(), 0.4)
		cfg.Duration = 6 * sim.Millisecond
		cfg.Drain = 30 * sim.Millisecond
		rows = exp.Fig12Coflow(cfg, false)
	}
	for _, r := range rows {
		switch r.Scheme {
		case "Physical+Swift":
			b.ReportMetric(r.Overall, "phys_speedup")
		case "PrioPlus+Swift":
			b.ReportMetric(r.Overall, "pp_speedup")
		}
	}
}

// BenchmarkFig12cTraining: ML training speedups from priority interleaving.
func BenchmarkFig12cTraining(b *testing.B) {
	var rows []exp.MLSpeedups
	for i := 0; i < b.N; i++ {
		cfg := exp.DefaultMLConfig(exp.PrioPlusSwift())
		cfg.Duration = 40 * sim.Millisecond
		rows = exp.Fig12ML(cfg)
	}
	for _, r := range rows {
		switch r.Scheme {
		case "Physical+Swift":
			b.ReportMetric(r.Overall, "phys_overall")
			b.ReportMetric(r.VGG, "phys_vgg")
		case "PrioPlus+Swift":
			b.ReportMetric(r.Overall, "pp_overall")
			b.ReportMetric(r.VGG, "pp_vgg")
		}
	}
}

// BenchmarkFig13NCDelay: the normalized FCT gap stays flat within the
// tolerance and rises beyond it.
func BenchmarkFig13NCDelay(b *testing.B) {
	var pts []exp.Fig13Point
	for i := 0; i < b.N; i++ {
		pts = exp.Fig13(exp.Fig13Config{TolerancesUS: []float64{10}, RangesUS: []float64{0, 8, 24}}, exp.Options{})
	}
	for _, p := range pts {
		switch p.RangeUS {
		case 0:
			b.ReportMetric(p.GapPerFlow, "gap_range0")
		case 8:
			b.ReportMetric(p.GapPerFlow, "gap_range8_in_tol")
		case 24:
			b.ReportMetric(p.GapPerFlow, "gap_range24_beyond")
		}
	}
}

// BenchmarkFig14PrioBreakdown: per-band FCT normalized by Physical*.
func BenchmarkFig14PrioBreakdown(b *testing.B) {
	var rows []exp.Fig14Row
	for i := 0; i < b.N; i++ {
		cfg := exp.DefaultFlowSchedConfig(exp.PrioPlusSwift(), 12)
		cfg.K = 4
		cfg.Load = 0.5
		cfg.Duration = 4 * sim.Millisecond
		cfg.Drain = 16 * sim.Millisecond
		rows = exp.Fig14(cfg, []exp.Scheme{exp.PrioPlusSwift()}, exp.Options{})
	}
	for _, r := range rows {
		if r.Class == "small" {
			switch r.Band {
			case "high":
				b.ReportMetric(r.Norm, "pp_high_small_norm")
			case "low":
				b.ReportMetric(r.Norm, "pp_low_small_norm")
			}
		}
	}
}

// BenchmarkFig15TailCCT: tail (p99) coflow speedups.
func BenchmarkFig15TailCCT(b *testing.B) {
	var rows []exp.CoflowSpeedups
	for i := 0; i < b.N; i++ {
		cfg := exp.DefaultCoflowConfig(exp.PrioPlusSwift(), 0.7)
		cfg.Duration = 6 * sim.Millisecond
		cfg.Drain = 30 * sim.Millisecond
		rows = exp.Fig12Coflow(cfg, true)
	}
	for _, r := range rows {
		if r.Scheme == "PrioPlus+Swift" {
			b.ReportMetric(r.Overall, "pp_tail_speedup")
		}
	}
}

// BenchmarkFig16HPCC: PrioPlus vs PrioPlus* (ACKs unprioritized) vs HPCC.
func BenchmarkFig16HPCC(b *testing.B) {
	var rows []exp.Fig11Row
	for i := 0; i < b.N; i++ {
		cfg := exp.DefaultFlowSchedConfig(exp.PrioPlusSwift(), 8)
		cfg.K = 4
		cfg.Duration = 4 * sim.Millisecond
		cfg.Drain = 16 * sim.Millisecond
		rows = exp.Fig16(8, cfg, exp.Options{})
	}
	for _, r := range rows {
		switch r.Scheme {
		case "PrioPlus+Swift":
			b.ReportMetric(r.AvgAll, "pp_avg_slowdown")
		case "PrioPlus*+Swift":
			b.ReportMetric(r.AvgAll, "ppstar_avg_slowdown")
		case "Physical+HPCC":
			b.ReportMetric(r.AvgAll, "hpcc_avg_slowdown")
		}
	}
}

// BenchmarkFig17Lossy: coflow speedups with PFC off (IRN recovery).
func BenchmarkFig17Lossy(b *testing.B) {
	var rows []exp.CoflowSpeedups
	for i := 0; i < b.N; i++ {
		cfg := exp.DefaultCoflowConfig(exp.PrioPlusSwift(), 0.7)
		cfg.Duration = 6 * sim.Millisecond
		cfg.Drain = 30 * sim.Millisecond
		cfg.Lossy = true
		rows = exp.Fig12Coflow(cfg, false)
	}
	for _, r := range rows {
		if r.Scheme == "PrioPlus+Swift" {
			b.ReportMetric(r.Overall, "pp_lossy_speedup")
		}
	}
}

// BenchmarkFig18CoflowBaselines: HPCC in the coflow scenario. The
// Physical-without-CC baseline of Fig 18 is CLI-only (`prioplus-sim
// fig18`): its uncontrolled injection causes minutes of simulated PFC
// churn, far beyond a benchmark's time budget — which is itself the
// figure's point ("extremely poor... because of no control"). The CLI run
// bounds it with the in-flight watchdog (CoflowConfig.MaxInflight), so the
// blowup ends in a stopped, annotated run instead of unbounded memory.
func BenchmarkFig18CoflowBaselines(b *testing.B) {
	var rows []exp.CoflowSpeedups
	for i := 0; i < b.N; i++ {
		cfg := exp.DefaultCoflowConfig(exp.PrioPlusSwift(), 0.7)
		cfg.Duration = 5 * sim.Millisecond
		cfg.Drain = 25 * sim.Millisecond
		rows = exp.Fig12Coflow(cfg, false, exp.HPCCPhysical(8))
	}
	for _, r := range rows {
		switch r.Scheme {
		case "PrioPlus+Swift":
			b.ReportMetric(r.Overall, "pp_speedup")
		case "Physical+HPCC":
			b.ReportMetric(r.Overall, "hpcc_speedup")
		}
	}
}

// BenchmarkTable2StartStrategies: measured extra buffer per start strategy.
func BenchmarkTable2StartStrategies(b *testing.B) {
	var rows []exp.Table2Row
	for i := 0; i < b.N; i++ {
		rows = exp.Table2(exp.Options{})
	}
	for _, r := range rows {
		switch r.Strategy {
		case "line-rate":
			b.ReportMetric(r.SimExtraBDP, "linerate_extra_BDP")
		case "exponential":
			b.ReportMetric(r.SimExtraBDP, "exp_extra_BDP")
		case "linear":
			b.ReportMetric(r.SimExtraBDP, "linear_extra_BDP")
		}
	}
}

// BenchmarkAppDFluctuationBound: measured Swift fluctuation vs the
// Appendix D analytic bound.
func BenchmarkAppDFluctuationBound(b *testing.B) {
	var rows []exp.AppDResult
	for i := 0; i < b.N; i++ {
		rows = exp.AppD([]int{40})
	}
	b.ReportMetric(rows[0].MeasuredUS, "measured_us")
	b.ReportMetric(rows[0].BoundUS, "bound_us")
}

// BenchmarkAblations: the §6.1 design-choice ablations (filter,
// cardinality estimation, probe schedule).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range exp.AblationFilter() {
			if r.ConsecLimit == 1 {
				b.ReportMetric(float64(r.Yields), "nofilter_yields")
			} else {
				b.ReportMetric(float64(r.Yields), "filter_yields")
			}
		}
		for _, r := range exp.AblationCardinality(40) {
			if r.Estimation {
				b.ReportMetric(r.OverLimitFrac, "est_over_limit")
			} else {
				b.ReportMetric(r.OverLimitFrac, "noest_over_limit")
			}
		}
		for _, r := range exp.AblationProbe() {
			if r.Scheme == "naive" {
				b.ReportMetric(r.ProbeGbps, "naive_probe_gbps")
			} else {
				b.ReportMetric(r.ProbeGbps, "ca_probe_gbps")
			}
		}
	}
}

// BenchmarkExtECNPrio: the Appendix B extension (per-virtual-priority ECN
// thresholds in one queue).
func BenchmarkExtECNPrio(b *testing.B) {
	var r exp.ECNPrioResult
	for i := 0; i < b.N; i++ {
		r = exp.ECNPrio()
	}
	b.ReportMetric(r.HighShare, "high_share")
	b.ReportMetric(r.Util, "utilization")
}

// BenchmarkExtWeightedVP: the §7 extension (weighted sharing within a
// channel, strict across channels).
func BenchmarkExtWeightedVP(b *testing.B) {
	var r exp.WeightedVPResult
	for i := 0; i < b.N; i++ {
		r = exp.WeightedVP()
	}
	b.ReportMetric(r.ShareRatio, "w4_w1_share_ratio")
	b.ReportMetric(r.HighStrict, "high_channel_strictness")
}

// BenchmarkFaultSweep: mid-transfer link flap on the fat-tree; every
// scheme must recover every flow (stuck == 0), and PrioPlus must keep
// yielding through the fault.
func BenchmarkFaultSweep(b *testing.B) {
	var rows []exp.FaultSweepRow
	for i := 0; i < b.N; i++ {
		rows = exp.FaultSweep(exp.DefaultFaultSweepConfig(), exp.Options{})
	}
	var stuck, rtos int64
	for _, r := range rows {
		stuck += int64(r.Stuck)
		rtos += r.RTOs
		if r.Scheme == "PrioPlus+Swift" {
			b.ReportMetric(r.P99Slowdown, "pp_p99_slowdown")
			b.ReportMetric(float64(r.Yields), "pp_yields")
		}
	}
	b.ReportMetric(float64(stuck), "stuck_flows")
	b.ReportMetric(float64(rtos), "total_rtos")
}
