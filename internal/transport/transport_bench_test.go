package transport_test

import (
	"math/rand"
	"testing"

	"prioplus/internal/cc"
	"prioplus/internal/netsim"
	"prioplus/internal/obs"
	"prioplus/internal/sim"
	"prioplus/internal/transport"
)

// pathRig is a minimal one-hop network: two hosts wired NIC-to-NIC, a
// transport stack on each, one shared packet pool — the smallest setting
// in which the full data->ACK round trip runs.
type pathRig struct {
	eng    *sim.Engine
	pool   *netsim.PacketPool
	ha, hb *netsim.Host
	a, b   *transport.Stack
	base   sim.Time
}

func newPathRig() *pathRig {
	eng := sim.NewEngine()
	ha := netsim.NewHost(eng, 0, 100*netsim.Gbps, sim.Microsecond, 2)
	hb := netsim.NewHost(eng, 1, 100*netsim.Gbps, sim.Microsecond, 2)
	netsim.Connect(ha.NIC, hb.NIC)
	pool := netsim.NewPacketPool()
	sa := transport.NewStack(eng, ha)
	sa.Pool = pool
	sb := transport.NewStack(eng, hb)
	sb.Pool = pool
	// One propagation + serialization each way.
	base := 2 * (sim.Microsecond + (100 * netsim.Gbps).Serialize(netsim.DefaultMTU+netsim.HeaderBytes))
	return &pathRig{eng: eng, pool: pool, ha: ha, hb: hb, a: sa, b: sb, base: base}
}

func (r *pathRig) flow(id, size int64) *transport.Sender {
	bdpPkts := (100 * netsim.Gbps).BDP(r.base) / netsim.DefaultMTU
	return r.a.NewFlow(transport.FlowSpec{
		ID: id, Dst: 1, Size: size, Prio: 0,
		BaseRTT: r.base,
		Algo:    cc.NewSwift(cc.DefaultSwiftConfig(r.base, bdpPkts)),
		Rand:    rand.New(rand.NewSource(id)),
	})
}

// BenchmarkPacketPath measures the full per-packet cost of the simulator's
// hot path — emit, serialize, propagate, deliver, ACK, deliver, CC hook,
// recycle — for one flow over one hop. One op is one data packet and its
// ACK; the steady state must report 0 allocs/op.
func BenchmarkPacketPath(b *testing.B) {
	rig := newPathRig()
	rig.flow(1, 1<<20).Start() // warm the pools, maps, and free lists
	rig.eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	s := rig.flow(2, int64(b.N)*netsim.DefaultMTU)
	s.Start()
	rig.eng.Run()
	b.StopTimer()
	if !s.Finished() {
		b.Fatal("flow did not complete")
	}
}

// TestPooledFlowDeliversEverything is the end-to-end sanity check for the
// pooled transport path: a flow large enough to recycle every packet many
// times over still delivers and acknowledges every byte.
func TestPooledFlowDeliversEverything(t *testing.T) {
	rig := newPathRig()
	s := rig.flow(1, 4<<20)
	s.Start()
	rig.eng.Run()
	if !s.Finished() {
		t.Fatal("pooled flow did not complete")
	}
	if rig.pool.News >= rig.pool.Gets/10 {
		t.Errorf("pool barely recycling: %d fresh allocations out of %d gets",
			rig.pool.News, rig.pool.Gets)
	}
}

// TestPacketPathZeroAllocTracerOff pins the instrumentation-off cost of
// the packet path at zero: with the hooks compiled in, the steady-state
// packet path (emit, serialize, deliver, ACK, CC hook, recycle) must not
// allocate — with no tracer installed, with a FlowTracer installed whose
// sampling policy skipped the flow (nil FlowLog, the common case), and
// with fault hooks armed on both NICs but no impairment active (link up,
// zero loss and corruption rates).
func TestPacketPathZeroAllocTracerOff(t *testing.T) {
	cases := []struct {
		name    string
		install func(r *pathRig)
	}{
		{"no-tracer", func(r *pathRig) {}},
		{"tracer-unsampled", func(r *pathRig) {
			ft := obs.NewFlowTracer(1)
			ft.PacketEvery = 1
			if ft.Admit(999) == nil { // exhaust the cap: later flows unsampled
				t.Fatal("sentinel flow not admitted")
			}
			r.a.FlowTrace = ft
			r.b.FlowTrace = ft
		}},
		{"fault-armed-quiescent", func(r *pathRig) {
			// Materializes the PortFault so every delivery takes the
			// fault branch, which must decline without allocating.
			r.ha.NIC.Fault()
			r.hb.NIC.Fault()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rig := newPathRig()
			tc.install(rig)
			s := rig.flow(2, 1<<40) // effectively unbounded: never finishes
			s.Start()
			now := sim.Time(0)
			advance := func() {
				now += 50 * sim.Microsecond
				rig.eng.RunUntil(now)
			}
			for i := 0; i < 50; i++ {
				advance() // reach steady state: pools warm, cwnd settled
			}
			if allocs := testing.AllocsPerRun(100, advance); allocs != 0 {
				t.Errorf("steady-state packet path allocates %v/op, want 0", allocs)
			}
			if s.Finished() {
				t.Fatal("flow finished during the measurement window")
			}
		})
	}
}
