package core_test

import (
	"testing"

	"prioplus/internal/cc"
	"prioplus/internal/core"
	"prioplus/internal/sim"
)

func newPP(cfg core.Config) (*core.PrioPlus, *stubDriver) {
	base := 12 * sim.Microsecond
	sw := cc.NewSwift(cc.DefaultSwiftConfig(base, 150))
	pp := core.New(sw, cfg)
	drv := newStubDriver(base)
	pp.Start(drv)
	return pp, drv
}

func baseCfg() core.Config {
	plan := core.DefaultPlan(12 * sim.Microsecond)
	return core.Config{
		Channel:     plan.Channel(2),
		WLSFraction: 0.25,
		BaseRTTEps:  time1us(),
		ConsecLimit: 2,
	}
}

func time1us() sim.Time { return sim.Microsecond }

func TestStoppedFlowIgnoresDataAcks(t *testing.T) {
	cfg := baseCfg()
	cfg.ProbeFirst = true
	pp, drv := newPP(cfg)
	if !pp.Stopped() {
		t.Fatal("not stopped after probe-first start")
	}
	before := pp.Inner().CwndPackets()
	// Residual data ACKs (from packets in flight before the yield) must
	// not change the window or re-trigger probing.
	probes := drv.probes
	for i := 0; i < 5; i++ {
		pp.OnAck(cc.Feedback{Now: drv.base, Delay: drv.base + 50*sim.Microsecond, AckedBytes: 1000, Seq: int64(i * 1000)})
	}
	if got := pp.Inner().CwndPackets(); got != before {
		t.Errorf("cwnd changed %v -> %v while stopped", before, got)
	}
	if drv.probes != probes {
		t.Errorf("extra probes scheduled from data ACKs while stopped")
	}
}

func TestCardinalityEstimateAndCountdown(t *testing.T) {
	cfg := baseCfg()
	pp, drv := newPP(cfg)
	pp.Inner().SetCwndPackets(10)
	// Two consecutive over-limit ACKs with huge delay: estimate #flow =
	// delay*rate/cwnd = 50us * 12.5 GB/s / 10 KB = 62.5.
	over := cfg.Channel.Limit + 8*sim.Microsecond
	_ = over
	delay := drv.base + 38*sim.Microsecond // 50us absolute
	pp.OnAck(cc.Feedback{Now: drv.base, Delay: delay, AckedBytes: 1000, Seq: 0})
	pp.OnAck(cc.Feedback{Now: drv.base, Delay: delay, AckedBytes: 1000, Seq: 1000})
	if !pp.Stopped() {
		t.Fatal("flow did not yield after two over-limit ACKs")
	}
	if est := pp.FlowEstimate(); est < 40 || est > 90 {
		t.Errorf("#flow estimate = %.1f, want ~62", est)
	}
	// Probe at base RTT resumes with W_LS/#flow and ticks the countdown.
	pp.OnProbeAck(cc.Feedback{Now: drv.base, Delay: drv.base})
	if pp.Stopped() {
		t.Fatal("did not resume")
	}
	wls := 0.25 * 150.0
	want := wls / pp.FlowEstimate()
	if got := pp.Inner().CwndPackets(); got < want*0.8 || got > want*1.2 {
		t.Errorf("resume cwnd = %.2f, want ~W_LS/#flow = %.2f", got, want)
	}
}

func TestCountdownHalvesEstimateOnIdle(t *testing.T) {
	cfg := baseCfg()
	pp, drv := newPP(cfg)
	pp.Inner().SetCwndPackets(2)
	// Yield with a big estimate.
	delay := drv.base + 38*sim.Microsecond
	pp.OnAck(cc.Feedback{Now: drv.base, Delay: delay, AckedBytes: 1000, Seq: 0})
	pp.OnAck(cc.Feedback{Now: drv.base, Delay: delay, AckedBytes: 1000, Seq: 1000})
	first := pp.FlowEstimate()
	if first < 100 {
		t.Fatalf("estimate %.0f, want large", first)
	}
	// Resume, then observe many base-RTT RTTs: the countdown runs out and
	// the estimate halves repeatedly (§4.3.1).
	pp.OnProbeAck(cc.Feedback{Now: drv.base, Delay: drv.base})
	seq := int64(10_000)
	for i := 0; i < 200; i++ {
		drv.sndNxt = seq + 1000
		pp.OnAck(cc.Feedback{Now: drv.base, Delay: drv.base, AckedBytes: 1000, Seq: seq})
		seq += 1000
	}
	if got := pp.FlowEstimate(); got > first/4 {
		t.Errorf("estimate after sustained idle = %.1f, want halved well below %.0f", got, first)
	}
}

func TestDisableCardinalityKeepsEstimateAtOne(t *testing.T) {
	cfg := baseCfg()
	cfg.DisableCardinality = true
	pp, drv := newPP(cfg)
	pp.Inner().SetCwndPackets(2)
	delay := drv.base + 38*sim.Microsecond
	pp.OnAck(cc.Feedback{Now: drv.base, Delay: delay, AckedBytes: 1000, Seq: 0})
	pp.OnAck(cc.Feedback{Now: drv.base, Delay: delay, AckedBytes: 1000, Seq: 1000})
	if got := pp.FlowEstimate(); got != 1 {
		t.Errorf("estimate = %.1f with estimation disabled, want 1", got)
	}
	if !pp.Stopped() {
		t.Error("yield behavior must be unaffected by the ablation flag")
	}
}

func TestNaiveProbeSchedulesPerBaseRTT(t *testing.T) {
	cfg := baseCfg()
	cfg.ProbeFirst = true
	cfg.NaiveProbe = true
	pp, drv := newPP(cfg)
	// Probe shows congestion: the naive schedule re-probes after exactly
	// one base RTT regardless of how far above target the delay is.
	pp.OnProbeAck(cc.Feedback{Now: drv.base, Delay: cfg.Channel.Limit + 100*sim.Microsecond})
	if drv.lastProbeAfter != drv.base {
		t.Errorf("naive re-probe after %v, want base RTT %v", drv.lastProbeAfter, drv.base)
	}
}

func TestCollisionAvoidanceWaitsOutDrain(t *testing.T) {
	cfg := baseCfg()
	cfg.ProbeFirst = true
	cfg.NoProbeJitter = true // deterministic for the assertion
	pp, drv := newPP(cfg)
	delay := cfg.Channel.Limit + 100*sim.Microsecond
	pp.OnProbeAck(cc.Feedback{Now: drv.base, Delay: delay})
	want := delay - cfg.Channel.Target
	if drv.lastProbeAfter != want {
		t.Errorf("re-probe after %v, want predicted drain time %v", drv.lastProbeAfter, want)
	}
}

func TestWeightDefaultsToOne(t *testing.T) {
	cfg := baseCfg()
	cfg.Weight = 0
	pp, _ := newPP(cfg)
	if pp.Stopped() {
		t.Error("zero weight misconfigured the flow")
	}
}

func TestAdaptiveIncreaseRaisesAIStep(t *testing.T) {
	cfg := baseCfg()
	pp, drv := newPP(cfg)
	pp.Inner().SetCwndPackets(50)
	baseAI := pp.Inner().AIStep()
	// Delay between base and target, after an RTT boundary with
	// dualRttPass true: the AI step must grow by (t-d)/d * cwnd.
	d := drv.base + 4*sim.Microsecond
	drv.sndNxt = 10_000
	pp.OnAck(cc.Feedback{Now: drv.base, Delay: d, AckedBytes: 1000, Seq: 0})
	if pp.AdaptiveInc == 0 {
		t.Fatal("adaptive increase never fired")
	}
	raised := pp.Inner().AIStep()
	if raised <= baseAI {
		t.Errorf("AI step %v not raised above base %v", raised, baseAI)
	}
	// The next RTT boundary ends the dual-RTT period and restores the
	// base AI step (Algorithm 1 lines 5-6).
	drv.sndNxt = 20_000
	pp.OnAck(cc.Feedback{Now: drv.base, Delay: d, AckedBytes: 1000, Seq: 10_000})
	if got := pp.Inner().AIStep(); got != baseAI {
		t.Errorf("AI step %v after the dual-RTT period, want restored base %v", got, baseAI)
	}
}

func TestYieldCounterAndProbeCounter(t *testing.T) {
	cfg := baseCfg()
	pp, drv := newPP(cfg)
	pp.Inner().SetCwndPackets(10)
	delay := cfg.Channel.Limit + sim.Microsecond
	pp.OnAck(cc.Feedback{Now: drv.base, Delay: delay, AckedBytes: 1000, Seq: 0})
	pp.OnAck(cc.Feedback{Now: drv.base, Delay: delay, AckedBytes: 1000, Seq: 1000})
	if pp.Yields != 1 {
		t.Errorf("Yields = %d, want 1", pp.Yields)
	}
	if pp.Probes == 0 {
		t.Error("no probe scheduled on yield")
	}
	if drv.stops != 1 {
		t.Errorf("StopSending called %d times, want 1", drv.stops)
	}
}
