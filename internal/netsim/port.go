package netsim

import (
	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// Device is anything that terminates a link: a Host or a Switch.
type Device interface {
	// HandlePacket is called when a packet fully arrives on local port in.
	HandlePacket(pkt *Packet, in *Port)
	// HandlePause is called when a PFC pause or resume frame arrives for
	// the given priority. on=true pauses the local egress queue.
	HandlePause(prio int, on bool, in *Port)
	// DeviceName identifies the device in diagnostics.
	DeviceName() string
}

// TxItem is a packet queued for transmission, together with the buffer
// accounting the owning switch must release at dequeue. Plain fields
// instead of a callback: one closure allocation per packet per hop would
// dominate large runs.
type TxItem struct {
	Pkt      *Packet
	Sw       *Switch // nil for host NICs
	InPort   int32
	QPrio    int16
	Lossless bool
}

type pktQueue struct {
	items []TxItem
	head  int
	bytes int
}

func (q *pktQueue) push(it TxItem) {
	q.items = append(q.items, it)
	q.bytes += it.Pkt.Wire
}

func (q *pktQueue) pop() TxItem {
	it := q.items[q.head]
	q.items[q.head] = TxItem{}
	q.head++
	q.bytes -= it.Pkt.Wire
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return it
}

func (q *pktQueue) empty() bool { return q.head == len(q.items) }
func (q *pktQueue) len() int    { return len(q.items) - q.head }

// Port is one side of a full-duplex cable. It transmits to Peer and
// receives whatever Peer transmits. Each port owns per-priority egress
// queues served in strict-priority order (higher index first), honoring
// per-priority PFC pause state.
type Port struct {
	Eng       *sim.Engine
	Owner     Device
	Peer      *Port
	Rate      Rate
	PropDelay sim.Time
	Index     int // position within Owner's port list

	// Jitter, when non-nil, adds per-packet non-congestive delay to the
	// propagation of every packet leaving this port (used for Fig 13).
	Jitter func() sim.Time

	// INTEnabled makes this port stamp telemetry on ECT data packets at
	// dequeue, for HPCC.
	INTEnabled bool

	// HWTimestamp makes this port overwrite SentAt on outgoing data and
	// probe packets at the start of serialization, modeling NIC hardware
	// TX timestamps that exclude the sender's own NIC backlog from the
	// measured RTT (§4.3.2). Enabled on host NICs; combined with paced
	// senders the hidden local backlog stays bounded.
	HWTimestamp bool

	// Trace, when non-nil, receives enqueue/dequeue/pause/resume events
	// for this port. Nil (the default) costs one predictable branch per
	// packet; install via harness.Net.Observe.
	Trace obs.Tracer

	queues    []pktQueue
	paused    []bool
	sending   bool
	startTxFn func() // preallocated; avoids a closure per transmission
	devName   string // lazily cached Owner.DeviceName() (hosts format it per call)

	// Counters.
	TxBytes   int64
	TxPackets int64
	QueueHWM  int      // largest single priority-queue occupancy seen, bytes
	PausedFor sim.Time // cumulative time with at least one priority paused
	pausedAt  sim.Time
	npaused   int
}

// NewPort creates a port with nqueues strict-priority egress queues.
func NewPort(eng *sim.Engine, owner Device, rate Rate, prop sim.Time, nqueues int) *Port {
	p := &Port{
		Eng:       eng,
		Owner:     owner,
		Rate:      rate,
		PropDelay: prop,
		queues:    make([]pktQueue, nqueues),
		paused:    make([]bool, nqueues),
	}
	p.startTxFn = p.startTx
	return p
}

// Connect wires two ports as the ends of one cable.
func Connect(a, b *Port) {
	a.Peer = b
	b.Peer = a
}

// NumQueues returns the number of priority queues on the port.
func (p *Port) NumQueues() int { return len(p.queues) }

// QueueBytes returns the occupancy of priority queue q in bytes.
func (p *Port) QueueBytes(q int) int { return p.queues[q].bytes }

// TotalQueuedBytes returns the occupancy across all priority queues.
func (p *Port) TotalQueuedBytes() int {
	total := 0
	for i := range p.queues {
		total += p.queues[i].bytes
	}
	return total
}

// name returns the owning device's name, computed once. Owners set their
// identity before creating ports, so the first call already sees it.
func (p *Port) name() string {
	if p.devName == "" {
		p.devName = p.Owner.DeviceName()
	}
	return p.devName
}

// clampPrio maps a packet priority onto the port's queue range. A host NIC
// with a single queue accepts packets of any priority.
func (p *Port) clampPrio(prio int) int {
	if prio >= len(p.queues) {
		return len(p.queues) - 1
	}
	if prio < 0 {
		return 0
	}
	return prio
}

// Enqueue places a packet on the egress queue for its priority and starts
// the transmitter if idle.
func (p *Port) Enqueue(it TxItem) {
	checkLive(it.Pkt, "Port.Enqueue")
	q := p.clampPrio(it.Pkt.Prio)
	p.queues[q].push(it)
	if it.Pkt.Traced {
		it.Pkt.hopEnqAt = p.Eng.Now()
	}
	if p.queues[q].bytes > p.QueueHWM {
		p.QueueHWM = p.queues[q].bytes
	}
	if p.Trace != nil {
		p.Trace.Trace(obs.Event{
			T: p.Eng.Now(), Kind: obs.Enqueue,
			Dev: p.name(), Port: p.Index, Queue: q,
			Flow: it.Pkt.FlowID, Seq: it.Pkt.Seq,
			Bytes: it.Pkt.Wire, QLen: p.queues[q].bytes,
		})
	}
	if !p.sending {
		p.startTx()
	}
}

// SetPaused updates PFC pause state for one priority queue.
func (p *Port) SetPaused(prio int, on bool) {
	q := p.clampPrio(prio)
	if p.paused[q] == on {
		return
	}
	p.paused[q] = on
	if p.Trace != nil {
		kind := obs.Resume
		if on {
			kind = obs.Pause
		}
		p.Trace.Trace(obs.Event{
			T: p.Eng.Now(), Kind: kind,
			Dev: p.name(), Port: p.Index, Queue: q,
		})
	}
	if on {
		if p.npaused == 0 {
			p.pausedAt = p.Eng.Now()
		}
		p.npaused++
	} else {
		p.npaused--
		if p.npaused == 0 {
			p.PausedFor += p.Eng.Now() - p.pausedAt
		}
		if !p.sending {
			p.startTx()
		}
	}
}

// Paused reports the pause state of one priority queue.
func (p *Port) Paused(prio int) bool { return p.paused[p.clampPrio(prio)] }

// PausedQueues returns how many of the port's priority queues are currently
// PFC-paused (a time-series sampling point).
func (p *Port) PausedQueues() int { return p.npaused }

func (p *Port) startTx() {
	// Strict priority: highest-index unpaused non-empty queue first.
	for q := len(p.queues) - 1; q >= 0; q-- {
		if p.paused[q] || p.queues[q].empty() {
			continue
		}
		it := p.queues[q].pop()
		p.sending = true
		p.transmit(it, q)
		return
	}
	p.sending = false
}

func (p *Port) transmit(it TxItem, q int) {
	pkt := it.Pkt
	ser := p.Rate.Serialize(pkt.Wire)
	p.TxBytes += int64(pkt.Wire)
	p.TxPackets++
	if it.Sw != nil {
		it.Sw.releaseItem(it)
	}
	if p.Trace != nil {
		p.Trace.Trace(obs.Event{
			T: p.Eng.Now(), Kind: obs.Dequeue,
			Dev: p.name(), Port: p.Index, Queue: q,
			Flow: pkt.FlowID, Seq: pkt.Seq,
			Bytes: pkt.Wire, QLen: p.queues[q].bytes,
		})
	}
	if p.HWTimestamp && (pkt.Type == Data || pkt.Type == Probe) {
		pkt.SentAt = p.Eng.Now()
	}
	if p.INTEnabled && pkt.Type == Data && pkt.ECT {
		pkt.INT = append(pkt.INT, INTRecord{
			QLen:    p.queues[q].bytes,
			TxBytes: p.TxBytes,
			TS:      p.Eng.Now(),
			Rate:    p.Rate,
		})
	}
	if pkt.Traced && (pkt.Type == Data || pkt.Type == Probe) {
		// Journey stamp for flow tracing, separate from INT proper: Dev is
		// set, so the transport can split trace records out of HPCC's
		// feedback. Appended on the forward path only; the pooled Ack /
		// ProbeAck constructors carry the array back to the sender.
		pkt.INT = append(pkt.INT, INTRecord{
			QLen:    p.queues[q].bytes,
			TxBytes: p.TxBytes,
			TS:      p.Eng.Now(),
			Rate:    p.Rate,
			Dev:     p.name(),
			QWait:   p.Eng.Now() - pkt.hopEnqAt,
		})
	}
	prop := p.PropDelay
	if p.Jitter != nil {
		prop += p.Jitter()
	}
	// Closure-free delivery: deliverPacket is a package-level function and
	// both arguments are pointers, so this schedules without allocating.
	p.Eng.Post2(ser+prop, deliverPacket, p.Peer, pkt)
	p.Eng.Post(ser, p.startTxFn)
}

// deliverPacket is the preallocated Post2 target for packet arrival at the
// far end of a cable: a is the receiving *Port, b the *Packet.
func deliverPacket(a, b any) {
	in := a.(*Port)
	in.Owner.HandlePacket(b.(*Packet), in)
}

// deliverPause is the preallocated Post2 target for PFC frame arrival: a
// is the receiving *Port, b packs prio<<1|on. The packed value stays below
// 256, so boxing it in any does not allocate.
func deliverPause(a, b any) {
	in := a.(*Port)
	code := b.(int)
	in.Owner.HandlePause(code>>1, code&1 == 1, in)
}

// SendPause delivers a PFC pause/resume frame to the peer device. PFC
// frames are generated by the MAC and bypass the egress queues; they are
// modeled as a fixed-size control frame that does not occupy the port.
func (p *Port) SendPause(prio int, on bool) {
	d := p.Rate.Serialize(AckBytes) + p.PropDelay
	code := prio << 1
	if on {
		code |= 1
	}
	p.Eng.Post2(d, deliverPause, p.Peer, code)
}
