package sim

import "testing"

// TestSamplerInterleavesWithEvents pins the ordering contract: every event
// with a timestamp <= a sampling instant executes before that sample fires,
// and the sample observes the clock set to the instant itself.
func TestSamplerInterleavesWithEvents(t *testing.T) {
	e := NewEngine()
	type step struct {
		kind string // "ev" or "smp"
		at   Time
	}
	var got []step
	for _, at := range []Time{10, 14, 20, 30} {
		at := at * Nanosecond
		e.At(at, func() { got = append(got, step{"ev", e.Now()}) })
	}
	e.SetSampler(7*Nanosecond, func() { got = append(got, step{"smp", e.Now()}) })
	e.RunUntil(30 * Nanosecond)

	want := []step{
		{"smp", 7 * Nanosecond},
		{"ev", 10 * Nanosecond},
		{"ev", 14 * Nanosecond}, // event AT the instant runs before the sample
		{"smp", 14 * Nanosecond},
		{"ev", 20 * Nanosecond},
		{"smp", 21 * Nanosecond},
		{"smp", 28 * Nanosecond},
		{"ev", 30 * Nanosecond},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d steps %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("step %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestSamplerEpilogueDrain: with no events at all, a finite-horizon run still
// fires every sampling instant up to the horizon and parks the clock there.
func TestSamplerEpilogueDrain(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.SetSampler(30*Nanosecond, func() { at = append(at, e.Now()) })
	e.RunUntil(100 * Nanosecond)
	if len(at) != 3 || at[0] != 30*Nanosecond || at[1] != 60*Nanosecond || at[2] != 90*Nanosecond {
		t.Errorf("sample instants = %v, want [30ns 60ns 90ns]", at)
	}
	if e.Now() != 100*Nanosecond {
		t.Errorf("Now() = %v, want horizon 100ns", e.Now())
	}
}

// TestSamplerRunTerminates: Run() (infinite horizon) must not spin draining
// sampling instants forever once the schedule is empty.
func TestSamplerRunTerminates(t *testing.T) {
	e := NewEngine()
	n := 0
	e.SetSampler(Nanosecond, func() { n++ })
	e.At(5*Nanosecond, func() {})
	e.Run()
	if n != 4 {
		t.Errorf("sampler fired %d times, want 4 (instants strictly before the last event)", n)
	}
	if e.Now() != 5*Nanosecond {
		t.Errorf("Now() = %v, want 5ns", e.Now())
	}
}

// TestSamplerStop: the hook may call Stop; the run ends at that instant and
// later events stay pending.
func TestSamplerStop(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(100*Nanosecond, func() { ran = true })
	e.SetSampler(8*Nanosecond, func() {
		if e.Now() >= 24*Nanosecond {
			e.Stop()
		}
	})
	e.RunUntil(Millisecond)
	if ran {
		t.Error("event after the Stop instant still executed")
	}
	if e.Now() != 24*Nanosecond {
		t.Errorf("Now() = %v, want 24ns (the stopping instant)", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want the unexecuted event", e.Pending())
	}
}

// TestSamplerStopDuringEpilogue: Stop from the post-event drain loop must
// also take effect immediately.
func TestSamplerStopDuringEpilogue(t *testing.T) {
	e := NewEngine()
	n := 0
	e.SetSampler(10*Nanosecond, func() {
		n++
		e.Stop()
	})
	e.RunUntil(Millisecond)
	if n != 1 {
		t.Errorf("sampler fired %d times after Stop, want 1", n)
	}
}

func TestSamplerDisable(t *testing.T) {
	e := NewEngine()
	n := 0
	e.SetSampler(Nanosecond, func() { n++ })
	e.SetSampler(0, nil)
	e.At(10*Nanosecond, func() {})
	e.RunUntil(100 * Nanosecond)
	if n != 0 {
		t.Errorf("removed sampler fired %d times", n)
	}
	// Re-arming starts from the current clock, not from zero.
	e.SetSampler(25*Nanosecond, func() { n++ })
	e.RunUntil(200 * Nanosecond)
	if n != 4 {
		t.Errorf("re-armed sampler fired %d times, want 4 (125..200ns)", n)
	}
}

// TestSamplerNoEventsConsumed: sampling rides the engine clock without
// touching the event heap, so Pending() and TotalProcessed stay untouched.
func TestSamplerNoEventsConsumed(t *testing.T) {
	e := NewEngine()
	before := TotalProcessed()
	e.SetSampler(Nanosecond, func() {})
	e.RunUntil(100 * Nanosecond)
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after pure-sampler run", e.Pending())
	}
	if got := TotalProcessed() - before; got != 0 {
		t.Errorf("sampling processed %d heap events, want 0", got)
	}
}

// TestSamplerZeroAlloc pins the hot-path contract: a run dominated by
// sampler firings performs no allocations.
func TestSamplerZeroAlloc(t *testing.T) {
	e := NewEngine()
	var sum int64
	e.SetSampler(Nanosecond, func() { sum++ })
	e.RunUntil(Microsecond) // warm
	if allocs := testing.AllocsPerRun(100, func() {
		end := e.Now() + 100*Nanosecond
		e.RunUntil(end)
	}); allocs != 0 {
		t.Errorf("sampler run allocates %v per op, want 0", allocs)
	}
	if sum == 0 {
		t.Fatal("sampler never fired")
	}
}
