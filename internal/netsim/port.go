package netsim

import (
	"math/rand"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// Device is anything that terminates a link: a Host or a Switch.
type Device interface {
	// HandlePacket is called when a packet fully arrives on local port in.
	HandlePacket(pkt *Packet, in *Port)
	// HandlePause is called when a PFC pause or resume frame arrives for
	// the given priority. on=true pauses the local egress queue.
	HandlePause(prio int, on bool, in *Port)
	// DeviceName identifies the device in diagnostics.
	DeviceName() string
}

// TxItem is a packet queued for transmission, together with the buffer
// accounting the owning switch must release at dequeue. Plain fields
// instead of a callback: one closure allocation per packet per hop would
// dominate large runs.
type TxItem struct {
	Pkt      *Packet
	Sw       *Switch // nil for host NICs
	InPort   int32
	QPrio    int16
	Lossless bool
}

type pktQueue struct {
	items []TxItem
	head  int
	bytes int
}

func (q *pktQueue) push(it TxItem) {
	q.items = append(q.items, it)
	q.bytes += it.Pkt.Wire
}

func (q *pktQueue) pop() TxItem {
	it := q.items[q.head]
	q.items[q.head] = TxItem{}
	q.head++
	q.bytes -= it.Pkt.Wire
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return it
}

func (q *pktQueue) empty() bool { return q.head == len(q.items) }
func (q *pktQueue) len() int    { return len(q.items) - q.head }

// PortFault is the per-port fault state installed by internal/fault (or
// directly by tests). A nil pointer — the default — keeps the delivery and
// transmit hot paths at a single predictable branch each; the subsystem
// costs nothing when no fault plan is installed.
type PortFault struct {
	// Down halts transmission and drops arriving in-flight packets; the
	// queued backlog is dropped when SetDown flips the flag.
	Down bool
	// LossRate drops arriving packets at random; CorruptRate additionally
	// models FCS-corrupted frames, counted separately and also dropped at
	// the receiving port. Both are per-delivery probabilities in [0, 1].
	LossRate    float64
	CorruptRate float64
	// Rng drives the loss/corruption draws. Seed it from the fault plan so
	// the drop pattern is deterministic for a given (plan seed, link).
	Rng *rand.Rand
}

// drop decides one arriving packet's fate under the port's fault state:
// a down link or a loss draw drops silently, a corruption draw drops with
// its own counter. It reports whether the packet was consumed (recycled).
func (f *PortFault) drop(p *Port, pkt *Packet) bool {
	if f.Down {
		p.dropFault(pkt, false)
		return true
	}
	if f.LossRate > 0 || f.CorruptRate > 0 {
		v := f.Rng.Float64()
		if v < f.LossRate {
			p.dropFault(pkt, false)
			return true
		}
		if v < f.LossRate+f.CorruptRate {
			p.dropFault(pkt, true)
			return true
		}
	}
	return false
}

// Port is one side of a full-duplex cable. It transmits to Peer and
// receives whatever Peer transmits. Each port owns per-priority egress
// queues served in strict-priority order (higher index first), honoring
// per-priority PFC pause state.
type Port struct {
	Eng       *sim.Engine
	Owner     Device
	Peer      *Port
	Rate      Rate
	PropDelay sim.Time
	Index     int // position within Owner's port list

	// Jitter, when non-nil, adds per-packet non-congestive delay to the
	// propagation of every packet leaving this port (used for Fig 13).
	Jitter func() sim.Time

	// INTEnabled makes this port stamp telemetry on ECT data packets at
	// dequeue, for HPCC.
	INTEnabled bool

	// HWTimestamp makes this port overwrite SentAt on outgoing data and
	// probe packets at the start of serialization, modeling NIC hardware
	// TX timestamps that exclude the sender's own NIC backlog from the
	// measured RTT (§4.3.2). Enabled on host NICs; combined with paced
	// senders the hidden local backlog stays bounded.
	HWTimestamp bool

	// Trace, when non-nil, receives enqueue/dequeue/pause/resume events
	// for this port. Nil (the default) costs one predictable branch per
	// packet; install via harness.Net.Observe.
	Trace obs.Tracer

	// Pool, when non-nil, receives packets this port drops under faults,
	// keeping faulted runs allocation-free. Installed by internal/harness.
	Pool *PacketPool

	queues    []pktQueue
	paused    []bool
	sending   bool
	fault     *PortFault // nil until a fault plan (or test) touches the port
	startTxFn func()     // preallocated; avoids a closure per transmission
	devName   string     // lazily cached Owner.DeviceName() (hosts format it per call)

	// Counters.
	TxBytes   int64
	TxPackets int64
	QueueHWM  int      // largest single priority-queue occupancy seen, bytes
	PausedFor sim.Time // cumulative time with at least one priority paused
	pausedAt  sim.Time
	npaused   int

	// Fault counters: down/loss drops and corruption drops, with the bytes
	// they carried. Zero unless a fault plan touches the port.
	FaultDrops     int64
	CorruptDrops   int64
	FaultDropBytes int64
}

// NewPort creates a port with nqueues strict-priority egress queues.
func NewPort(eng *sim.Engine, owner Device, rate Rate, prop sim.Time, nqueues int) *Port {
	p := &Port{
		Eng:       eng,
		Owner:     owner,
		Rate:      rate,
		PropDelay: prop,
		queues:    make([]pktQueue, nqueues),
		paused:    make([]bool, nqueues),
	}
	p.startTxFn = p.startTx
	return p
}

// Connect wires two ports as the ends of one cable.
func Connect(a, b *Port) {
	a.Peer = b
	b.Peer = a
}

// NumQueues returns the number of priority queues on the port.
func (p *Port) NumQueues() int { return len(p.queues) }

// QueueBytes returns the occupancy of priority queue q in bytes.
func (p *Port) QueueBytes(q int) int { return p.queues[q].bytes }

// TotalQueuedBytes returns the occupancy across all priority queues.
func (p *Port) TotalQueuedBytes() int {
	total := 0
	for i := range p.queues {
		total += p.queues[i].bytes
	}
	return total
}

// name returns the owning device's name, computed once. Owners set their
// identity before creating ports, so the first call already sees it.
func (p *Port) name() string {
	if p.devName == "" {
		p.devName = p.Owner.DeviceName()
	}
	return p.devName
}

// clampPrio maps a packet priority onto the port's queue range. A host NIC
// with a single queue accepts packets of any priority.
func (p *Port) clampPrio(prio int) int {
	if prio >= len(p.queues) {
		return len(p.queues) - 1
	}
	if prio < 0 {
		return 0
	}
	return prio
}

// Fault returns the port's fault state, creating it on first use. Only
// the fault layer and tests call this; an untouched port keeps fault nil
// and pays a single branch per packet.
func (p *Port) Fault() *PortFault {
	if p.fault == nil {
		p.fault = &PortFault{}
	}
	return p.fault
}

// IsDown reports whether the port is administratively down.
func (p *Port) IsDown() bool { return p.fault != nil && p.fault.Down }

// SetDown changes the port's link state. Going down drops the queued
// backlog back into the pool (releasing switch buffer accounting as if the
// packets had been transmitted) and halts the transmitter; packets already
// in flight are dropped on arrival by the receiving port's own down check.
// Coming back up re-arms the transmitter.
func (p *Port) SetDown(down bool) {
	f := p.Fault()
	if f.Down == down {
		return
	}
	f.Down = down
	if !down {
		if !p.sending {
			p.startTx()
		}
		return
	}
	p.dropQueued()
}

// dropQueued drops every queued packet back into the pool, with switch
// buffer accounting released as if each had been transmitted.
func (p *Port) dropQueued() {
	for q := range p.queues {
		for !p.queues[q].empty() {
			it := p.queues[q].pop()
			if it.Sw != nil {
				it.Sw.releaseItem(it)
			}
			p.dropFault(it.Pkt, false)
		}
	}
}

// dropFault counts and recycles a packet dropped by the fault layer.
func (p *Port) dropFault(pkt *Packet, corrupt bool) {
	if corrupt {
		p.CorruptDrops++
	} else {
		p.FaultDrops++
	}
	p.FaultDropBytes += int64(pkt.Wire)
	if p.Trace != nil {
		p.Trace.Trace(obs.Event{
			T: p.Eng.Now(), Kind: obs.Drop,
			Dev: p.name(), Port: p.Index,
			Flow: pkt.FlowID, Seq: pkt.Seq, Bytes: pkt.Wire,
		})
	}
	p.Pool.Put(pkt)
}

// Enqueue places a packet on the egress queue for its priority and starts
// the transmitter if idle.
func (p *Port) Enqueue(it TxItem) {
	checkLive(it.Pkt, "Port.Enqueue")
	if p.fault != nil && p.fault.Down {
		// A dead port refuses new work outright: the buffer charge just
		// taken by the owning switch is released and the packet recycled.
		if it.Sw != nil {
			it.Sw.releaseItem(it)
		}
		p.dropFault(it.Pkt, false)
		return
	}
	q := p.clampPrio(it.Pkt.Prio)
	p.queues[q].push(it)
	if it.Pkt.Traced {
		it.Pkt.hopEnqAt = p.Eng.Now()
	}
	if p.queues[q].bytes > p.QueueHWM {
		p.QueueHWM = p.queues[q].bytes
	}
	if p.Trace != nil {
		p.Trace.Trace(obs.Event{
			T: p.Eng.Now(), Kind: obs.Enqueue,
			Dev: p.name(), Port: p.Index, Queue: q,
			Flow: it.Pkt.FlowID, Seq: it.Pkt.Seq,
			Bytes: it.Pkt.Wire, QLen: p.queues[q].bytes,
		})
	}
	if !p.sending {
		p.startTx()
	}
}

// SetPaused updates PFC pause state for one priority queue.
func (p *Port) SetPaused(prio int, on bool) {
	q := p.clampPrio(prio)
	if p.paused[q] == on {
		return
	}
	p.paused[q] = on
	if p.Trace != nil {
		kind := obs.Resume
		if on {
			kind = obs.Pause
		}
		p.Trace.Trace(obs.Event{
			T: p.Eng.Now(), Kind: kind,
			Dev: p.name(), Port: p.Index, Queue: q,
		})
	}
	if on {
		if p.npaused == 0 {
			p.pausedAt = p.Eng.Now()
		}
		p.npaused++
	} else {
		p.npaused--
		if p.npaused == 0 {
			p.PausedFor += p.Eng.Now() - p.pausedAt
		}
		if !p.sending {
			p.startTx()
		}
	}
}

// Paused reports the pause state of one priority queue.
func (p *Port) Paused(prio int) bool { return p.paused[p.clampPrio(prio)] }

// PausedQueues returns how many of the port's priority queues are currently
// PFC-paused (a time-series sampling point).
func (p *Port) PausedQueues() int { return p.npaused }

func (p *Port) startTx() {
	if p.fault != nil && p.fault.Down {
		p.sending = false
		return
	}
	// Strict priority: highest-index unpaused non-empty queue first.
	for q := len(p.queues) - 1; q >= 0; q-- {
		if p.paused[q] || p.queues[q].empty() {
			continue
		}
		it := p.queues[q].pop()
		p.sending = true
		p.transmit(it, q)
		return
	}
	p.sending = false
}

func (p *Port) transmit(it TxItem, q int) {
	pkt := it.Pkt
	ser := p.Rate.Serialize(pkt.Wire)
	p.TxBytes += int64(pkt.Wire)
	p.TxPackets++
	if it.Sw != nil {
		it.Sw.releaseItem(it)
	}
	if p.Trace != nil {
		p.Trace.Trace(obs.Event{
			T: p.Eng.Now(), Kind: obs.Dequeue,
			Dev: p.name(), Port: p.Index, Queue: q,
			Flow: pkt.FlowID, Seq: pkt.Seq,
			Bytes: pkt.Wire, QLen: p.queues[q].bytes,
		})
	}
	if p.HWTimestamp && (pkt.Type == Data || pkt.Type == Probe) {
		pkt.SentAt = p.Eng.Now()
	}
	if p.INTEnabled && pkt.Type == Data && pkt.ECT {
		pkt.INT = append(pkt.INT, INTRecord{
			QLen:    p.queues[q].bytes,
			TxBytes: p.TxBytes,
			TS:      p.Eng.Now(),
			Rate:    p.Rate,
		})
	}
	if pkt.Traced && (pkt.Type == Data || pkt.Type == Probe) {
		// Journey stamp for flow tracing, separate from INT proper: Dev is
		// set, so the transport can split trace records out of HPCC's
		// feedback. Appended on the forward path only; the pooled Ack /
		// ProbeAck constructors carry the array back to the sender.
		pkt.INT = append(pkt.INT, INTRecord{
			QLen:    p.queues[q].bytes,
			TxBytes: p.TxBytes,
			TS:      p.Eng.Now(),
			Rate:    p.Rate,
			Dev:     p.name(),
			QWait:   p.Eng.Now() - pkt.hopEnqAt,
		})
	}
	prop := p.PropDelay
	if p.Jitter != nil {
		prop += p.Jitter()
	}
	// Closure-free delivery: deliverPacket is a package-level function and
	// both arguments are pointers, so this schedules without allocating.
	p.Eng.Post2(ser+prop, deliverPacket, p.Peer, pkt)
	p.Eng.Post(ser, p.startTxFn)
}

// deliverPacket is the preallocated Post2 target for packet arrival at the
// far end of a cable: a is the receiving *Port, b the *Packet. Delivery
// events cannot be cancelled per-packet (the heap is lazy-cancel only), so
// link faults are applied here: a downed or impaired receiving port
// consumes the packet instead of handing it to the device. The fault layer
// downs both ends of a cable, so in-flight packets of a flapped link are
// lost in both directions.
func deliverPacket(a, b any) {
	in := a.(*Port)
	pkt := b.(*Packet)
	if in.fault != nil && in.fault.drop(in, pkt) {
		return
	}
	in.Owner.HandlePacket(pkt, in)
}

// deliverPause is the preallocated Post2 target for PFC frame arrival: a
// is the receiving *Port, b packs prio<<1|on. The packed value stays below
// 256, so boxing it in any does not allocate.
func deliverPause(a, b any) {
	in := a.(*Port)
	code := b.(int)
	in.Owner.HandlePause(code>>1, code&1 == 1, in)
}

// SendPause delivers a PFC pause/resume frame to the peer device. PFC
// frames are generated by the MAC and bypass the egress queues; they are
// modeled as a fixed-size control frame that does not occupy the port.
func (p *Port) SendPause(prio int, on bool) {
	d := p.Rate.Serialize(AckBytes) + p.PropDelay
	code := prio << 1
	if on {
		code |= 1
	}
	p.Eng.Post2(d, deliverPause, p.Peer, code)
}
