// ML training with interleaved priorities: four ResNet-like and four
// VGG-like data-parallel jobs share a 2:1-oversubscribed spine-leaf
// fabric, each iterating compute + ring all-reduce. Giving every model's
// traffic its own PrioPlus virtual priority interleaves their
// communication phases and speeds up all jobs (the paper's Fig 12c,
// following the observation of Rajasekaran et al.).
//
// Run: go run ./examples/mltraining
package main

import (
	"fmt"
	"sort"

	"prioplus/internal/exp"
	"prioplus/internal/sim"
)

func main() {
	cfg := exp.DefaultMLConfig(exp.PrioPlusSwift())
	cfg.Duration = 100 * sim.Millisecond

	fmt.Println("running baseline (Swift, all jobs in one priority)...")
	bcfg := cfg
	bcfg.Scheme = exp.SwiftPhysical(8)
	bcfg.NoPriority = true
	base := exp.RunML(bcfg)

	fmt.Println("running PrioPlus+Swift, one virtual priority per model...")
	pp := exp.RunML(cfg)

	var names []string
	for name := range base.Iterations {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("\n%-12s %10s %10s\n", "model", "baseline", "prioplus")
	for _, name := range names {
		fmt.Printf("%-12s %10d %10d\n", name, base.Iterations[name], pp.Iterations[name])
	}
	tot := func(r exp.MLResult) int { return r.ResNetIter + r.VGGIter }
	fmt.Printf("\nResNet iterations: %d -> %d (%.2fx)\n", base.ResNetIter, pp.ResNetIter,
		float64(pp.ResNetIter)/float64(base.ResNetIter))
	fmt.Printf("VGG    iterations: %d -> %d (%.2fx)\n", base.VGGIter, pp.VGGIter,
		float64(pp.VGGIter)/float64(base.VGGIter))
	fmt.Printf("overall: %d -> %d (%.2fx)\n", tot(base), tot(pp), float64(tot(pp))/float64(tot(base)))
}
