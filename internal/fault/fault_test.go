package fault_test

import (
	"testing"

	"prioplus/internal/cc"
	"prioplus/internal/fault"
	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
	"prioplus/internal/transport"
)

func starCfg() topo.Config {
	cfg := topo.DefaultConfig()
	cfg.LinkDelay = 3 * sim.Microsecond
	return cfg
}

func swiftFor(net *harness.Net, src, dst int) cc.Algorithm {
	base := net.Topo.BaseRTT(src, dst)
	return cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(src, dst)))
}

// portTo finds sw's port wired to the given peer port.
func portTo(sw *netsim.Switch, peer *netsim.Port) *netsim.Port {
	for _, p := range sw.Ports {
		if p.Peer == peer {
			return p
		}
	}
	return nil
}

// TestFlapTakesBothEndsAndReroutes: a scheduled link flap must down both
// ends of the cable (so in-flight packets die in both directions), force a
// route recompute that steers around the dead link, and restore
// everything when the link comes back.
func TestFlapTakesBothEndsAndReroutes(t *testing.T) {
	eng := sim.NewEngine()
	tc := topo.DefaultConfig()
	tc.LinkDelay = 1 * sim.Microsecond
	nw := topo.FatTree(eng, 4, tc)
	plan := fault.NewPlan(1).Flap(100*sim.Microsecond, 100*sim.Microsecond,
		fault.Link("p0e0", "p0a0"))
	net := harness.New(nw, 1, harness.WithFaults(plan))

	var edge *netsim.Switch
	for _, sw := range nw.Switches {
		if sw.Name == "p0e0" {
			edge = sw
		}
	}
	if edge == nil {
		t.Fatal("no p0e0 in fat-tree")
	}

	eng.RunUntil(150 * sim.Microsecond)
	if got := net.Faults.DownLinks(); got != 1 {
		t.Fatalf("DownLinks = %d mid-flap, want 1", got)
	}
	var downPort *netsim.Port
	for _, p := range edge.Ports {
		if p.IsDown() {
			downPort = p
		}
	}
	if downPort == nil {
		t.Fatal("no port down on p0e0 mid-flap")
	}
	if !downPort.Peer.IsDown() {
		t.Error("peer end of the flapped cable is still up; in-flight packets toward it would survive")
	}
	// Routes must already avoid the dead uplink for every destination.
	for dst := 0; dst < edge.RouteDests(); dst++ {
		for _, pi := range edge.Route(dst) {
			if int(pi) == downPort.Index {
				t.Errorf("route to host %d still uses the downed uplink", dst)
			}
		}
	}

	eng.RunUntil(250 * sim.Microsecond)
	if got := net.Faults.DownLinks(); got != 0 {
		t.Fatalf("DownLinks = %d after flap, want 0", got)
	}
	if downPort.IsDown() || downPort.Peer.IsDown() {
		t.Error("link did not come back up")
	}
	evs := net.Faults.Events()
	if len(evs) != 2 || evs[0].Kind != "link_down" || evs[1].Kind != "link_up" {
		t.Errorf("events = %+v, want [link_down link_up]", evs)
	}
}

// TestForcedDropsRecoverViaRTO is the loss-recovery regression test: a
// mid-flow flap of the sender's access link force-drops both data packets
// (at the switch end) and ACKs (at the sender's NIC), and the flow must
// still complete via retransmission, with the recovery visible in its
// FlowStats.
func TestForcedDropsRecoverViaRTO(t *testing.T) {
	eng := sim.NewEngine()
	nw := topo.Star(eng, 3, starCfg())
	plan := fault.NewPlan(3).Flap(100*sim.Microsecond, 60*sim.Microsecond,
		fault.Link("star", "host0"))
	net := harness.New(nw, 7, harness.WithFaults(plan))

	var st transport.FlowStats
	net.Stacks[0].OnFlowDone = func(fs transport.FlowStats) { st = fs }
	done := false
	const size = 4 << 20
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: size, Prio: 0,
		Algo: swiftFor(net, 0, 2), OnComplete: func(sim.Time) { done = true }})
	eng.RunUntil(20 * sim.Millisecond)

	if !done {
		t.Fatal("flow did not complete after the flap")
	}
	if st.Size != size || st.Dst != 2 || st.FCT <= 0 {
		t.Errorf("FlowStats identity wrong: %+v", st)
	}
	if st.Retransmits == 0 {
		t.Error("flow completed without retransmits; the flap dropped nothing")
	}
	if st.RTOs == 0 {
		t.Error("no RTO fired; with the only path down, recovery must come from the timer")
	}
	swPort := portTo(nw.Switches[0], nw.Hosts[0].NIC)
	if swPort.FaultDrops == 0 {
		t.Error("no data packets dropped at the switch end of the flapped link")
	}
	if nw.Hosts[0].NIC.FaultDrops == 0 {
		t.Error("no ACKs dropped at the sender's NIC")
	}
}

// TestImpairedLinkDeterministic: random loss and corruption on a link come
// from a per-link RNG seeded by plan seed and stable link identity, so (a)
// two identical runs drop identically, and (b) the order impairments are
// declared in is irrelevant.
func TestImpairedLinkDeterministic(t *testing.T) {
	run := func(build func() *fault.Plan) (faultDrops, corruptDrops int64, fct sim.Time) {
		eng := sim.NewEngine()
		nw := topo.Star(eng, 4, starCfg())
		net := harness.New(nw, 7, harness.WithFaults(build()))
		net.AddFlow(harness.Flow{Src: 0, Dst: 3, Size: 1 << 20, Prio: 0,
			Algo: swiftFor(net, 0, 3), OnComplete: func(d sim.Time) { fct = d }})
		eng.RunUntil(20 * sim.Millisecond)
		swPort := portTo(nw.Switches[0], nw.Hosts[0].NIC)
		faultDrops = swPort.FaultDrops + nw.Hosts[0].NIC.FaultDrops
		corruptDrops = swPort.CorruptDrops + nw.Hosts[0].NIC.CorruptDrops
		return
	}
	l0, l1 := fault.Link("star", "host0"), fault.Link("star", "host1")
	ab := func() *fault.Plan { return fault.NewPlan(9).Impair(l0, 0.02, 0.02).Impair(l1, 0.1, 0) }
	ba := func() *fault.Plan { return fault.NewPlan(9).Impair(l1, 0.1, 0).Impair(l0, 0.02, 0.02) }

	f1, c1, fct1 := run(ab)
	f2, c2, fct2 := run(ab)
	f3, c3, fct3 := run(ba)
	if fct1 == 0 {
		t.Fatal("flow did not complete under 4% impairment")
	}
	if f1 == 0 || c1 == 0 {
		t.Fatalf("impairment inert: %d loss drops, %d corrupt drops", f1, c1)
	}
	if f1 != f2 || c1 != c2 || fct1 != fct2 {
		t.Errorf("identical runs diverged: drops %d/%d vs %d/%d, fct %v vs %v", f1, c1, f2, c2, fct1, fct2)
	}
	if f1 != f3 || c1 != c3 || fct1 != fct3 {
		t.Errorf("impairment declaration order changed the run: drops %d/%d vs %d/%d, fct %v vs %v",
			f1, c1, f3, c3, fct1, fct3)
	}
}

// TestRebootDrainsAndRecovers: a switch reboot drops every queued packet
// back to the pool and clears PFC pause state; traffic through it must
// recover and complete.
func TestRebootDrainsAndRecovers(t *testing.T) {
	eng := sim.NewEngine()
	nw := topo.Star(eng, 5, starCfg())
	plan := fault.NewPlan(11).Reboot(150*sim.Microsecond, "star")
	net := harness.New(nw, 7, harness.WithFaults(plan))

	completed := 0
	for src := 0; src < 4; src++ {
		net.AddFlow(harness.Flow{Src: src, Dst: 4, Size: 1 << 20, Prio: 0,
			Algo: swiftFor(net, src, 4), OnComplete: func(sim.Time) { completed++ }})
	}
	eng.RunUntil(20 * sim.Millisecond)
	if completed != 4 {
		t.Fatalf("%d/4 flows completed after reboot", completed)
	}
	evs := net.Faults.Events()
	if len(evs) != 1 || evs[0].Kind != "reboot" || evs[0].Dev != "star" {
		t.Errorf("events = %+v, want one reboot of star", evs)
	}
	// The incast must actually have had a backlog to drop: reboot-dropped
	// packets are counted as fault drops on the switch's ports.
	var dropped int64
	for _, p := range nw.Switches[0].Ports {
		dropped += p.FaultDrops
	}
	if dropped == 0 {
		t.Error("reboot dropped nothing; the drain path went untested")
	}
}

// TestEmptyPlanIsFree: WithFaults on a nil or empty plan must not install
// an injector, keeping the healthy path identical to a build without the
// option.
func TestEmptyPlanIsFree(t *testing.T) {
	eng := sim.NewEngine()
	net := harness.New(topo.Star(eng, 3, starCfg()), 7, harness.WithFaults(nil))
	if net.Faults != nil {
		t.Error("nil plan installed an injector")
	}
	eng2 := sim.NewEngine()
	net2 := harness.New(topo.Star(eng2, 3, starCfg()), 7, harness.WithFaults(fault.NewPlan(1)))
	if net2.Faults != nil {
		t.Error("empty plan installed an injector")
	}
}
