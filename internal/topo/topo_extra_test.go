package topo

import (
	"testing"

	"prioplus/internal/netsim"
	"prioplus/internal/sim"
)

// TestFatTreeNonBlocking checks the rearrangeable non-blocking property
// operationally: a full cross-pod permutation of simultaneous flows should
// complete in about the time of one flow, because ECMP spreads them over
// disjoint paths with no persistent oversubscription.
func TestFatTreeNonBlocking(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.LinkDelay = 1 * sim.Microsecond
	n := FatTree(eng, 4, cfg)
	nh := len(n.Hosts)
	received := make([]int64, nh)
	for i, h := range n.Hosts {
		i := i
		h.Sink = func(pkt *netsim.Packet) {
			if pkt.Type == netsim.Data {
				received[i] += int64(pkt.Payload)
			}
		}
	}
	// Shift-by-half permutation: every flow crosses pods.
	const pkts = 100
	for src := 0; src < nh; src++ {
		dst := (src + nh/2) % nh
		for k := 0; k < pkts; k++ {
			n.Hosts[src].Send(netsim.NewData(int64(src), src, dst, 0, int64(k)*1000, 1000))
		}
	}
	eng.Run()
	for i, r := range received {
		if r != pkts*1000 {
			t.Fatalf("host %d received %d bytes, want %d", i, r, pkts*1000)
		}
	}
	// One flow alone takes pkts * 83.84ns (serialization) + path. With a
	// non-blocking fabric and per-flow ECMP, hash collisions can stack a
	// few flows on one core link, but the finish time should stay within
	// a small multiple of the solo time, far below full serialization of
	// nh flows through one link.
	solo := (100 * netsim.Gbps).Serialize(1048 * pkts)
	if eng.Now() > 6*solo {
		t.Errorf("permutation finished at %v, want <= ~6x solo time %v", eng.Now(), solo)
	}
}

func TestCoflowClosFabricSpeeds(t *testing.T) {
	n := CoflowClos(sim.NewEngine(), DefaultConfig())
	// Host links 100G, fabric links 400G.
	hostPort := n.Hosts[0].NIC
	if hostPort.Rate != 100*netsim.Gbps {
		t.Errorf("host rate %v, want 100G", hostPort.Rate)
	}
	for _, sw := range n.Switches {
		for _, p := range sw.Ports {
			if _, isHost := p.Peer.Owner.(*netsim.Host); isHost {
				if p.Rate != 100*netsim.Gbps {
					t.Errorf("edge-to-host port at %v, want 100G", p.Rate)
				}
			} else if p.Rate != 400*netsim.Gbps {
				t.Errorf("fabric port at %v, want 400G", p.Rate)
			}
		}
	}
}

func TestSpineLeafOversubscription(t *testing.T) {
	n := SpineLeaf(sim.NewEngine(), 2, 6, 12, DefaultConfig())
	// Each leaf: 12 host ports down, 6 spine ports up -> 2:1.
	for _, sw := range n.Switches[6:] { // spines are created first (6)
		hostPorts, fabricPorts := 0, 0
		for _, p := range sw.Ports {
			if _, isHost := p.Peer.Owner.(*netsim.Host); isHost {
				hostPorts++
			} else {
				fabricPorts++
			}
		}
		if hostPorts != 12 || fabricPorts != 6 {
			t.Errorf("leaf %s has %d host / %d fabric ports, want 12/6", sw.Name, hostPorts, fabricPorts)
		}
	}
}

func TestRoutesCoverAllHostsOnAllSwitches(t *testing.T) {
	n := FatTree(sim.NewEngine(), 4, DefaultConfig())
	for _, sw := range n.Switches {
		for dst := range n.Hosts {
			if len(sw.Route(dst)) == 0 {
				t.Fatalf("switch %s has no route to host %d", sw.Name, dst)
			}
		}
	}
}

func TestStarHostCount(t *testing.T) {
	for _, nh := range []int{2, 5, 33} {
		n := Star(sim.NewEngine(), nh, DefaultConfig())
		if len(n.Hosts) != nh || len(n.Switches) != 1 {
			t.Errorf("Star(%d): %d hosts, %d switches", nh, len(n.Hosts), len(n.Switches))
		}
	}
}
