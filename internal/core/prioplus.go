// Package core implements PrioPlus, the paper's primary contribution: a
// congestion-control enhancement that emulates strict virtual priorities
// inside one physical switch queue by assigning each priority level a delay
// channel [D_target, D_limit] and gating transmission on the measured
// fabric delay (Algorithm 1 of the paper).
//
// PrioPlus wraps any delay-based congestion controller that implements
// cc.DelayBased (Swift and LEDBAT in this repository). Its mechanisms:
//
//   - Probe with collision avoidance (§4.2.1): when the delay exceeds
//     D_limit for two consecutive measurements, the flow stops sending and
//     probes after (delay - D_target) + random(BaseRTT).
//   - Linear start (§4.2.2): on an empty path (delay == base RTT), the
//     window grows by W_LS/#flow per RTT, the start strategy with provably
//     minimal potential buffer backlog (Theorem 4.1).
//   - Dual-RTT adaptive increase (§4.2.3): when only lower-priority flows
//     occupy the path, the AI step is raised once every two RTTs by
//     min(cwnd/2, (D_target-delay)/delay * cwnd) so the wrapped CC lifts
//     the delay to D_target within one RTT without overreacting.
//   - Delay-based flow-cardinality estimation (§4.3.1): #flow is estimated
//     as delay*LineRate/cwnd whenever the channel is overrun, and both the
//     AI step and the linear-start step are divided by it; a countdown
//     halves the estimate when the path stays idle.
//   - Filter mechanism (§4.3.1): bandwidth is relinquished only after the
//     delay exceeds D_limit twice in a row, absorbing long-tail
//     measurement noise.
package core

import (
	"fmt"
	"math"

	"prioplus/internal/cc"
	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// Channel is a priority's delay range. Flows of this priority keep the
// delay near Target and suspend transmission above Limit.
type Channel struct {
	Priority int
	Target   sim.Time // D_target, absolute (includes base RTT)
	Limit    sim.Time // D_limit, absolute
}

// ChannelPlan maps priority levels to delay channels following §4.3.2:
// D_target^i = BaseRTT + i*(A+B) and D_limit^i = D_target^i + A/2 + B,
// where A accommodates the wrapped CC's fluctuation and B the tolerable
// delay noise.
type ChannelPlan struct {
	BaseRTT     sim.Time
	Fluctuation sim.Time // A
	Noise       sim.Time // B
}

// DefaultPlan returns the paper's evaluation setting: A+B = 4 us spacing
// with A = 3.2 us (150 Swift flows) and B = 0.8 us (the 99.85th percentile
// of measured delay noise), giving D_target = base + 4i us and
// D_limit = D_target + 2.4 us.
func DefaultPlan(baseRTT sim.Time) ChannelPlan {
	return ChannelPlan{
		BaseRTT:     baseRTT,
		Fluctuation: 3200 * sim.Nanosecond,
		Noise:       800 * sim.Nanosecond,
	}
}

// Channel returns the delay channel for priority i (i >= 0; larger numbers
// are higher priorities, per Table 1 of the paper). The lowest priority's
// target sits one channel width above the base RTT — §6 assigns "target
// delays from 32 us to 4 us plus base RTT" for eight priorities — so even
// priority 0 has a workable queuing budget.
func (p ChannelPlan) Channel(i int) Channel {
	spacing := p.Fluctuation + p.Noise
	target := p.BaseRTT + sim.Time(i+1)*spacing
	return Channel{
		Priority: i,
		Target:   target,
		Limit:    target + p.Fluctuation/2 + p.Noise,
	}
}

// Width returns the per-priority channel spacing A+B.
func (p ChannelPlan) Width() sim.Time { return p.Fluctuation + p.Noise }

// Config parameterizes one PrioPlus flow.
type Config struct {
	Channel Channel
	// WLSFraction is the linear-start step W_LS as a fraction of the base
	// BDP (§4.4 recommends 1 for high, 0.25 for medium and 0.125 for low
	// priorities). The flow reaches line rate in 1/WLSFraction RTTs.
	WLSFraction float64
	// ProbeFirst makes the flow probe the path before its first data
	// packet (§4.4: enabled for medium and low priorities, disabled for
	// high or latency-sensitive ones).
	ProbeFirst bool
	// BaseRTTEps is the tolerance for treating a measured delay as "equal
	// to the base RTT" in the presence of noise.
	BaseRTTEps sim.Time
	// ConsecLimit is how many consecutive above-limit measurements are
	// required before yielding (the paper's filter uses 2).
	ConsecLimit int
	// AdaptiveEveryRTT disables the dual-RTT gating of the adaptive
	// increase, applying it every RTT instead. This is the ablation of
	// Fig 10c, which shows it overreacts; never enable it in production.
	AdaptiveEveryRTT bool
	// DisableCardinality turns off delay-based flow-cardinality
	// estimation (§4.3.1), for ablations: #flow stays at 1, so many-flow
	// scenarios fluctuate past D_limit.
	DisableCardinality bool
	// NoProbeJitter removes the random(BaseRTT) term from the probe
	// schedule (§4.2.1), for ablations: yielded flows probe in lockstep
	// and collide when the path frees up.
	NoProbeJitter bool
	// NaiveProbe probes once per base RTT instead of waiting out the
	// predicted drain time (delay - D_target), for ablations: detection
	// stays fast but yielded flows burn far more probe bandwidth, the
	// §4.2.1 trade-off.
	NaiveProbe bool
	// Weight scales the wrapped CC's additive-increase step for flows
	// sharing one channel (the §7 weighted-virtual-priority extension):
	// same-channel flows converge to bandwidth shares proportional to
	// their weights, while cross-channel strictness is unaffected.
	// 0 means 1.
	Weight float64
}

// DefaultConfig returns a PrioPlus configuration for the given channel
// with the paper's recommended W_LS for its position in the hierarchy:
// high (top quarter of nprios) gets 1.0, middle 0.25, low 0.125.
func DefaultConfig(ch Channel, nprios int) Config {
	frac := 0.125
	switch {
	case nprios <= 1 || ch.Priority >= nprios-(nprios+3)/4:
		frac = 1.0
	case ch.Priority >= nprios/2:
		frac = 0.25
	}
	return Config{
		Channel:     ch,
		WLSFraction: frac,
		ProbeFirst:  frac < 1.0, // high priorities start without probing
		BaseRTTEps:  1 * sim.Microsecond,
		ConsecLimit: 2,
	}
}

// PrioPlus implements cc.Algorithm by wrapping a delay-based controller.
type PrioPlus struct {
	cfg   Config
	inner cc.DelayBased
	drv   cc.Driver
	dlog  cc.DecisionLogger

	nflow     float64 // #flow: estimated same-priority flow cardinality
	countDown int
	wlsPkts   float64 // W_LS in packets
	bdpPkts   float64 // base BDP in packets

	rttEndSeq   int64
	rttPass     bool
	dualRttPass bool
	consec      int
	stopped     bool

	// Counters for tests and experiments.
	Yields      int64 // times the flow relinquished bandwidth
	Probes      int64 // probes scheduled
	LinearStart int64 // linear-start increments applied
	AdaptiveInc int64 // dual-RTT adaptive increases applied
}

// New wraps inner with PrioPlus. The inner CC's target is pinned to the
// channel's D_target and its target scaling disabled, per §4.1.
func New(inner cc.DelayBased, cfg Config) *PrioPlus {
	if cfg.ConsecLimit <= 0 {
		cfg.ConsecLimit = 2
	}
	if cfg.WLSFraction <= 0 {
		cfg.WLSFraction = 0.125
	}
	if cfg.Weight <= 0 {
		cfg.Weight = 1
	}
	inner.SetTarget(cfg.Channel.Target)
	return &PrioPlus{cfg: cfg, inner: inner, nflow: 1}
}

// baseAI returns the weighted base AI step W_AIorigin.
func (p *PrioPlus) baseAI() float64 {
	return p.inner.BaseAIStep() * p.cfg.Weight
}

// Name implements cc.Algorithm.
func (p *PrioPlus) Name() string {
	return fmt.Sprintf("prioplus[%d]+%s", p.cfg.Channel.Priority, p.inner.Name())
}

// WantsECT implements cc.Algorithm.
func (p *PrioPlus) WantsECT() bool { return p.inner.WantsECT() }

// Inner returns the wrapped delay-based controller.
func (p *PrioPlus) Inner() cc.DelayBased { return p.inner }

// Stopped reports whether the flow has relinquished bandwidth and is
// probing.
func (p *PrioPlus) Stopped() bool { return p.stopped }

// FlowEstimate returns the current cardinality estimate #flow.
func (p *PrioPlus) FlowEstimate() float64 { return p.nflow }

// Start implements cc.Algorithm. Low/medium priorities probe before
// transmitting; high priorities begin a linear start immediately (§4.4).
func (p *PrioPlus) Start(drv cc.Driver) {
	p.drv = drv
	p.dlog = cc.DecisionLoggerOf(drv)
	p.inner.Start(drv)
	p.bdpPkts = drv.LineRate().BDP(drv.BaseRTT()) / float64(drv.MTU())
	p.wlsPkts = math.Max(p.cfg.WLSFraction*p.bdpPkts, 1)
	p.countDown = p.resetCountdown()
	p.logDec(obs.SpanDecStart, 0, p.cfg.Channel.Target.Micros(), p.cfg.Channel.Limit.Micros())
	if p.cfg.ProbeFirst {
		p.stopped = true
		drv.StopSending()
		p.Probes++
		p.logDec(obs.SpanDecProbe, 0, 0, 0)
		drv.SendProbeAfter(0)
	} else {
		p.inner.SetCwndPackets(p.wlsPkts / p.nflow)
	}
}

// logDec records one decision on the flow's audit timeline; free (one nil
// check) for untraced flows.
func (p *PrioPlus) logDec(kind obs.SpanKind, delay sim.Time, a, b float64) {
	if p.dlog != nil {
		p.dlog.LogDecision(kind, delay, a, b)
	}
}

func (p *PrioPlus) resetCountdown() int {
	return int(math.Ceil(p.bdpPkts / p.wlsPkts))
}

// atBase reports whether the measured delay is indistinguishable from the
// base RTT.
func (p *PrioPlus) atBase(delay sim.Time) bool {
	return delay <= p.drv.BaseRTT()+p.cfg.BaseRTTEps
}

// estimateCardinality updates #flow from the inflight estimate
// delay*LineRate/cwnd (Algorithm 1 line 8) and scales the AI step.
func (p *PrioPlus) estimateCardinality(delay sim.Time) {
	if p.cfg.DisableCardinality {
		return
	}
	inflight := p.drv.LineRate().BytesPerSec() * delay.Seconds()
	est := inflight / math.Max(p.inner.CwndBytes(), 1)
	p.nflow = math.Max(p.nflow, est)
	p.inner.SetAIStep(p.baseAI() / p.nflow)
	p.countDown = p.resetCountdown()
	p.logDec(obs.SpanDecCardEst, delay, p.nflow, p.inner.AIStep())
}

// tickCountdown implements the idle-path countdown (§4.3.1): every RTT the
// path looks empty, decrement; at zero, halve #flow.
func (p *PrioPlus) tickCountdown() {
	if p.cfg.DisableCardinality {
		return
	}
	if p.countDown > 0 {
		p.countDown--
		return
	}
	p.nflow = math.Max(1, p.nflow/2)
	p.inner.SetAIStep(p.baseAI() / p.nflow)
	p.logDec(obs.SpanDecCardDecay, 0, p.nflow, float64(p.countDown))
}

// OnAck implements cc.Algorithm (Algorithm 1, procedure NewAck).
func (p *PrioPlus) OnAck(fb cc.Feedback) {
	if p.stopped {
		// Residual in-flight ACKs after yielding; the probe path owns
		// recovery.
		return
	}
	if fb.Seq >= p.rttEndSeq {
		p.rttPass = true
		p.rttEndSeq = p.drv.SndNxt()
		p.dualRttPass = !p.dualRttPass
		if !p.dualRttPass {
			// End of a dual-RTT adaptive-increase period: restore the AI
			// step (lines 5-6).
			p.inner.SetAIStep(p.baseAI() / p.nflow)
			p.logDec(obs.SpanDecAIRestore, fb.Delay, p.inner.AIStep(), 0)
		}
	}
	if fb.Delay >= p.cfg.Channel.Limit {
		p.consec++
	} else {
		p.consec = 0
	}
	if fb.Delay >= p.cfg.Channel.Limit && p.consec >= p.cfg.ConsecLimit {
		// Higher-priority traffic present: estimate cardinality, yield,
		// and probe (lines 7-10).
		p.estimateCardinality(fb.Delay)
		p.stopped = true
		p.Yields++
		p.logDec(obs.SpanDecYield, fb.Delay, p.nflow, float64(p.consec))
		p.drv.StopSending()
		p.scheduleProbe(fb.Delay)
		return
	}
	if fb.Delay <= p.cfg.Channel.Target && p.rttPass {
		p.rttPass = false // at most one structural action per RTT
		if p.atBase(fb.Delay) {
			// Empty path: linear start (lines 13-16).
			p.inner.SetCwndPackets(p.inner.CwndPackets() + p.wlsPkts/p.nflow)
			p.LinearStart++
			p.logDec(obs.SpanDecLinearStart, fb.Delay, p.inner.CwndPackets(), 0)
			p.tickCountdown()
		} else if p.dualRttPass || p.cfg.AdaptiveEveryRTT {
			// Only lower-priority flows present: raise the AI step so the
			// inner CC lifts the delay to D_target within one RTT
			// (lines 17-19).
			cwnd := p.inner.CwndPackets()
			step := float64(p.cfg.Channel.Target-fb.Delay) / float64(fb.Delay) * cwnd
			step = math.Min(cwnd/2, step)
			if step > 0 {
				p.inner.SetAIStep(p.inner.AIStep() + step)
				p.AdaptiveInc++
				p.logDec(obs.SpanDecAdaptiveInc, fb.Delay, p.inner.AIStep(), step)
			}
		}
	}
	p.inner.OnAck(fb) // line 21: OriginalCC(delay)
}

// scheduleProbe implements probe with collision avoidance (§4.2.1,
// lines 22-24): wait out the predicted queue-drain time plus a random
// slice of the base RTT.
func (p *PrioPlus) scheduleProbe(delay sim.Time) {
	if p.cfg.NaiveProbe {
		p.Probes++
		p.logDec(obs.SpanDecProbe, delay, p.drv.BaseRTT().Micros(), 0)
		p.drv.SendProbeAfter(p.drv.BaseRTT())
		return
	}
	wait := delay - p.cfg.Channel.Target
	if wait < 0 {
		wait = 0
	}
	if !p.cfg.NoProbeJitter {
		wait += sim.Time(p.drv.Rand().Int63n(int64(p.drv.BaseRTT()) + 1))
	}
	p.Probes++
	p.logDec(obs.SpanDecProbe, delay, wait.Micros(), 0)
	p.drv.SendProbeAfter(wait)
}

// Probe-answer outcome codes carried in the audit span's A field.
const (
	probeOutcomeReprobe     = 0 // still over D_limit: schedule another probe
	probeOutcomeLinearStart = 1 // path empty: resume at the linear-start window
	probeOutcomeOnePacket   = 2 // path busy but in channel: resume with one packet
)

// OnProbeAck implements cc.Algorithm (Algorithm 1, function NewProbeAck).
func (p *PrioPlus) OnProbeAck(fb cc.Feedback) {
	if !p.stopped {
		// A probe ACK races with resumed transmission: treat as a normal
		// delay sample.
		p.inner.OnAck(fb)
		return
	}
	p.drv.ResetRTO()
	if fb.Delay >= p.cfg.Channel.Limit {
		p.logDec(obs.SpanDecProbeAns, fb.Delay, probeOutcomeReprobe, 0)
		p.scheduleProbe(fb.Delay)
		return
	}
	if p.atBase(fb.Delay) {
		// Empty path: restart with the linear-start window (lines 28-31).
		p.logDec(obs.SpanDecProbeAns, fb.Delay, probeOutcomeLinearStart, 0)
		p.inner.SetCwndPackets(p.wlsPkts / p.nflow)
		p.LinearStart++
		p.tickCountdown()
	} else {
		// Between base RTT and D_limit: resume conservatively with one
		// packet (line 32, §4.4).
		p.logDec(obs.SpanDecProbeAns, fb.Delay, probeOutcomeOnePacket, 0)
		p.inner.SetCwndPackets(1)
	}
	p.stopped = false
	p.logDec(obs.SpanDecResume, fb.Delay, p.inner.CwndPackets(), 0)
	p.drv.ResumeSending()
	p.rttEndSeq = p.drv.SndNxt()
	p.dualRttPass = false
}

// OnRTO implements cc.Algorithm. While stopped, the transport retries the
// probe itself; otherwise defer to the inner CC.
func (p *PrioPlus) OnRTO() {
	if p.stopped {
		return
	}
	p.inner.OnRTO()
}

// CwndBytes implements cc.Algorithm.
func (p *PrioPlus) CwndBytes() float64 {
	if p.stopped {
		return 0
	}
	return p.inner.CwndBytes()
}
