package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{80 * Nanosecond, "80ns"},
		{12 * Microsecond, "12us"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Microsecond).Millis(); got != 1.5 {
		t.Errorf("Millis = %v, want 1.5", got)
	}
	if got := FromSeconds(0.5); got != 500*Millisecond {
		t.Errorf("FromSeconds(0.5) = %v, want 500ms", got)
	}
	if got := (250 * Nanosecond).Micros(); got != 0.25 {
		t.Errorf("Micros = %v, want 0.25", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*Nanosecond, func() { order = append(order, 3) })
	e.At(10*Nanosecond, func() { order = append(order, 1) })
	e.At(20*Nanosecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30*Nanosecond {
		t.Errorf("Now() = %v, want 30ns", e.Now())
	}
}

func TestEngineSimultaneousFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5*Microsecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: order[%d] = %d", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.After(Microsecond, tick)
		}
	}
	e.After(0, tick)
	e.Run()
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	if e.Now() != 9*Microsecond {
		t.Errorf("Now() = %v, want 9us", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(Microsecond, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
}

func TestEngineCancelFromEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	var victim *Event
	e.At(Microsecond, func() { e.Cancel(victim) })
	victim = e.At(2*Microsecond, func() { fired = true })
	e.Run()
	if fired {
		t.Error("event canceled mid-run still fired")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{Microsecond, 2 * Microsecond, 3 * Microsecond} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(2 * Microsecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 2*Microsecond {
		t.Errorf("Now() = %v, want 2us", e.Now())
	}
	e.RunUntil(10 * Microsecond)
	if len(fired) != 3 {
		t.Fatalf("fired %d events after second run, want 3", len(fired))
	}
	if e.Now() != 10*Microsecond {
		t.Errorf("Now() = %v, want 10us (clock advances to end)", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i)*Microsecond, func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Errorf("count = %d, want 2 (stopped after second event)", count)
	}
	// The remaining events are still pending and can be resumed.
	e.Run()
	if count != 5 {
		t.Errorf("count after resume = %d, want 5", count)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestEngineNegativeAfterClamped(t *testing.T) {
	e := NewEngine()
	e.At(Microsecond, func() {
		e.After(-5*Microsecond, func() {
			if e.Now() != Microsecond {
				t.Errorf("negative After fired at %v, want 1us", e.Now())
			}
		})
	})
	e.Run()
}

// Property: for any set of scheduled delays, events fire in nondecreasing
// time order and all events fire exactly once.
func TestEngineHeapProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			d := Time(d) * Nanosecond
			e.At(d, func() { fired = append(fired, d) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEnginePostRecycles(t *testing.T) {
	e := NewEngine()
	fired := 0
	// Interleave Post and Run so events recycle; all must fire exactly
	// once and in order.
	var last Time = -1
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			e.Post(Time(i)*Nanosecond, func() {
				fired++
				if e.Now() < last {
					t.Fatal("recycled event fired out of order")
				}
				last = e.Now()
			})
		}
		e.Run()
	}
	if fired != 1000 {
		t.Errorf("fired %d events, want 1000", fired)
	}
}

func TestEnginePostAndAtInterleaved(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Post(2*Nanosecond, func() { order = append(order, 2) })
	ev := e.At(1*Nanosecond, func() { order = append(order, 1) })
	e.Post(3*Nanosecond, func() { order = append(order, 3) })
	_ = ev
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

// refEvent is one event in the reference scheduler used to pin down the
// lazy-cancel engine's semantics: a plain list fired in (at, seq) order.
type refEvent struct {
	at       Time
	id       int
	canceled bool
	fired    bool
}

// TestEngineLazyCancelEquivalence drives random schedule / cancel /
// run-until sequences through the engine and a naive reference scheduler
// in lockstep: firing order and Pending() must match at every step.
func TestEngineLazyCancelEquivalence(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var ref []*refEvent
		handles := map[int]*Event{}
		var got, want []int

		refPending := func() int {
			n := 0
			for _, ev := range ref {
				if !ev.canceled && !ev.fired {
					n++
				}
			}
			return n
		}
		refFire := func(end Time) {
			var due []*refEvent
			for _, ev := range ref {
				if !ev.canceled && !ev.fired && ev.at <= end {
					due = append(due, ev)
				}
			}
			sort.SliceStable(due, func(i, j int) bool {
				if due[i].at != due[j].at {
					return due[i].at < due[j].at
				}
				return due[i].id < due[j].id // FIFO among simultaneous
			})
			for _, ev := range due {
				ev.fired = true
				want = append(want, ev.id)
			}
		}

		for op := 0; op < 500; op++ {
			switch r.Intn(5) {
			case 0, 1: // schedule
				at := e.Now() + Time(r.Intn(1000))*Nanosecond
				id := len(ref)
				ref = append(ref, &refEvent{at: at, id: id})
				handles[id] = e.At(at, func() { got = append(got, id) })
			case 2: // cancel a random live event
				var live []int
				for id, ev := range ref {
					if !ev.canceled && !ev.fired {
						live = append(live, id)
					}
				}
				if len(live) > 0 {
					sort.Ints(live)
					id := live[r.Intn(len(live))]
					e.Cancel(handles[id])
					delete(handles, id)
					ref[id].canceled = true
				}
			case 3, 4: // advance the clock
				end := e.Now() + Time(r.Intn(1500))*Nanosecond
				e.RunUntil(end)
				refFire(end)
			}
			if e.Pending() != refPending() {
				t.Fatalf("seed %d op %d: Pending() = %d, reference has %d",
					seed, op, e.Pending(), refPending())
			}
		}
		e.Run()
		refFire(Time(1<<63 - 1))
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing order diverges at %d: got %d, want %d",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestPost2ZeroAlloc pins the closure-free scheduling path at zero heap
// allocations once the free lists are warm.
func TestPost2ZeroAlloc(t *testing.T) {
	e := NewEngine()
	type obj struct{ n int }
	a, b := &obj{}, &obj{}
	fn := func(x, y any) { x.(*obj).n += y.(*obj).n }
	for i := 0; i < 64; i++ {
		e.Post2(Nanosecond, fn, a, b)
	}
	e.Run()
	if avg := testing.AllocsPerRun(200, func() {
		e.Post2(Nanosecond, fn, a, b)
		e.Run()
	}); avg != 0 {
		t.Errorf("Post2 with pointer args: %v allocs/op, want 0", avg)
	}
	// Small integers (< 256) box for free too — the PFC pause path relies
	// on this.
	fni := func(x, y any) { a.n += y.(int) }
	e.Post2(Nanosecond, fni, a, 7)
	e.Run()
	if avg := testing.AllocsPerRun(200, func() {
		e.Post2(Nanosecond, fni, a, 200)
		e.Run()
	}); avg != 0 {
		t.Errorf("Post2 with small int arg: %v allocs/op, want 0", avg)
	}
}

// TestAfterSteadyStateZeroAlloc: fired caller-held events are recycled, so
// a warm engine schedules At/After events without allocating.
func TestAfterSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(Nanosecond, fn)
	}
	e.Run()
	if avg := testing.AllocsPerRun(200, func() {
		e.After(Nanosecond, fn)
		e.Run()
	}); avg != 0 {
		t.Errorf("After steady state: %v allocs/op, want 0", avg)
	}
}

// TestCancelReclaimsCallerHeldEvents: a canceled-then-drained At event goes
// back to the free list, so a schedule/cancel loop allocates nothing.
func TestCancelReclaimsCallerHeldEvents(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Cancel(e.After(Nanosecond, fn))
	}
	e.Run()
	if avg := testing.AllocsPerRun(200, func() {
		e.Cancel(e.After(Nanosecond, fn))
		e.Run()
	}); avg != 0 {
		t.Errorf("schedule/cancel/run loop: %v allocs/op, want 0", avg)
	}
}

// TestCancelLoopBounded: a retransmit-timer-style loop that cancels
// far-future events over and over must not grow the heap or the free list
// unboundedly — lazy deletion compacts when canceled entries dominate.
func TestCancelLoopBounded(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 100000; i++ {
		// Far future: lazy removal never gets to drain these at the top of
		// the heap, so only compaction can reclaim them.
		e.Cancel(e.After(Second, fn))
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after canceling everything, want 0", e.Pending())
	}
	if n := e.queuedEntries(); n > 256 {
		t.Errorf("queue holds %d entries after 100k cancels, want compacted (<= 256)", n)
	}
	if len(e.free) > 256 {
		t.Errorf("free list holds %d events after 100k cancels, want bounded (<= 256)", len(e.free))
	}
	// The engine still works after heavy compaction.
	fired := false
	e.After(Nanosecond, func() { fired = true })
	e.Run()
	if !fired {
		t.Error("event scheduled after compaction did not fire")
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%64)*Nanosecond, fn)
		if e.Pending() > 1024 {
			e.RunUntil(e.Now() + 64*Nanosecond)
		}
	}
	e.Run()
}

func BenchmarkEnginePost2(b *testing.B) {
	e := NewEngine()
	type obj struct{ n int }
	x, y := &obj{}, &obj{}
	fn := func(a, b any) { a.(*obj).n++ }
	_ = y
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Post2(Time(i%64)*Nanosecond, fn, x, y)
		if e.Pending() > 1024 {
			e.RunUntil(e.Now() + 64*Nanosecond)
		}
	}
	e.Run()
}

func TestTotalProcessedAccumulates(t *testing.T) {
	before := TotalProcessed()
	e := NewEngine()
	const n = 100
	for i := 0; i < n; i++ {
		e.Post(Time(i), func() {})
	}
	e.RunUntil(Time(n))
	if e.Processed() != n {
		t.Fatalf("engine processed %d events, want %d", e.Processed(), n)
	}
	// Other tests may run engines concurrently, so the global can grow by
	// more than n — but never less.
	if got := TotalProcessed() - before; got < n {
		t.Errorf("TotalProcessed grew by %d, want >= %d", got, n)
	}
}

// TestReserveSeqOrdering: an event filed under a reserved seq dispatches
// exactly where an event scheduled at reservation time would have — ahead
// of same-timestamp events scheduled after the reservation, regardless of
// how late the reserved event is actually filed.
func TestReserveSeqOrdering(t *testing.T) {
	e := NewEngine()
	var order []string
	seq := e.ReserveSeq() // rank reserved before the rival exists
	e.At(50*Nanosecond, func() { order = append(order, "rival") })
	e.At(10*Nanosecond, func() {
		e.PostAtSeq(50*Nanosecond, func() { order = append(order, "reserved") }, seq)
	})
	e.Run()
	if len(order) != 2 || order[0] != "reserved" || order[1] != "rival" {
		t.Fatalf("order = %v, want [reserved rival]", order)
	}
}

// TestPostAtSeqSplicesRunningBatch: filing a reserved seq at the current
// timestamp from inside the running batch splices it in at its rank — the
// members scheduled after the reservation still run after it, exactly as
// if the reserved event had been in the queue when the batch was
// collected.
func TestPostAtSeqSplicesRunningBatch(t *testing.T) {
	e := NewEngine()
	var order []string
	var reserved uint64
	const at = 20 * Nanosecond
	e.At(at, func() {
		order = append(order, "a")
		// Runs while the batch at t=20ns is mid-dispatch; rank sits
		// between a and b.
		e.PostAtSeq(at, func() { order = append(order, "reserved") }, reserved)
	})
	reserved = e.ReserveSeq()
	e.At(at, func() { order = append(order, "b") })
	e.At(at, func() { order = append(order, "c") })
	e.Run()
	if len(order) != 4 || order[0] != "a" || order[1] != "reserved" ||
		order[2] != "b" || order[3] != "c" {
		t.Fatalf("order = %v, want [a reserved b c]", order)
	}
}

// TestReachedSeqTracksDispatch: ReachedSeq flips exactly when dispatch
// passes the reserved position — members of the same batch ranked before
// it still see it unreached, members after it see it reached even though
// no event was ever filed under it.
func TestReachedSeqTracksDispatch(t *testing.T) {
	e := NewEngine()
	const at = 30 * Nanosecond
	var reserved uint64
	var before, after bool
	e.At(at, func() { before = e.ReachedSeq(at, reserved) })
	reserved = e.ReserveSeq()
	e.At(at, func() { after = e.ReachedSeq(at, reserved) })
	e.Run()
	if before {
		t.Error("ReachedSeq true before dispatch passed the reserved rank")
	}
	if !after {
		t.Error("ReachedSeq false after dispatch passed the reserved rank")
	}
	if !e.ReachedSeq(at, reserved) {
		t.Error("ReachedSeq false after the batch completed")
	}
	if e.ReachedSeq(at+Nanosecond, e.ReserveSeq()) {
		t.Error("ReachedSeq true for a future position")
	}
}
