package runner

import (
	"sync"
	"sync/atomic"
	"time"

	"prioplus/internal/obs"
)

// Run states, in lifecycle order.
const (
	// StatusPending means the task has been registered but not started.
	StatusPending int32 = iota
	// StatusRunning means the task's Run function is executing.
	StatusRunning
	// StatusDone means the task completed successfully.
	StatusDone
	// StatusFailed means the task panicked, timed out, or errored.
	StatusFailed
)

// statusNames maps run states to their wire names.
var statusNames = [...]string{"pending", "running", "done", "failed"}

// StatusName returns the wire name of a run status.
func StatusName(s int32) string {
	if s < 0 || int(s) >= len(statusNames) {
		return "unknown"
	}
	return statusNames[s]
}

// RunState is the live, concurrently readable state of one batch run. The
// owning worker goroutine writes it (Start/SetPhase/Finish, plus the
// sampling hook storing into Live); HTTP handler goroutines read it via
// Snapshot. All mutable fields are atomics, so neither side blocks the
// other.
type RunState struct {
	// Name is the task name ("fig11/seed=3"); Experiment and Seed are its
	// parsed identity. Index is the task's position in the batch. All four
	// are immutable after Registry.Add.
	Name       string
	Experiment string
	Seed       int64
	Index      int

	// Live holds the in-run progress gauges, updated by the harness
	// sampling hook (wired via obs.Recorder.Live).
	Live obs.LiveRun

	status  atomic.Int32
	phase   atomic.Pointer[string]
	errMsg  atomic.Pointer[string]
	startNS atomic.Int64
	endNS   atomic.Int64
}

// Start marks the run as executing.
func (s *RunState) Start() {
	s.startNS.Store(time.Now().UnixNano())
	s.status.Store(StatusRunning)
}

// SetPhase publishes a short label of what the run is currently doing
// (e.g. the recorder tag of the sub-experiment in flight).
func (s *RunState) SetPhase(phase string) {
	s.phase.Store(&phase)
}

// Finish marks the run complete; errMsg empty means success.
func (s *RunState) Finish(errMsg string) {
	s.endNS.Store(time.Now().UnixNano())
	if errMsg != "" {
		s.errMsg.Store(&errMsg)
		s.status.Store(StatusFailed)
		return
	}
	s.status.Store(StatusDone)
}

// Status returns the current lifecycle state.
func (s *RunState) Status() int32 { return s.status.Load() }

// RunSnapshot is a point-in-time JSON-ready copy of a RunState.
type RunSnapshot struct {
	// Name, Experiment, Seed, Index echo the task identity.
	Name       string `json:"name"`
	Experiment string `json:"experiment"`
	Seed       int64  `json:"seed"`
	Index      int    `json:"index"`
	// Status is the lifecycle state name; Phase the last SetPhase label;
	// Err the failure message for failed runs.
	Status string `json:"status"`
	Phase  string `json:"phase,omitempty"`
	Err    string `json:"err,omitempty"`
	// Events is the engine events dispatched so far; EventsPerSec is that
	// averaged over the run's wall time so far. SimUS is the simulated
	// clock in microseconds, WallMS the wall-clock run time so far.
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	SimUS        float64 `json:"sim_us"`
	WallMS       float64 `json:"wall_ms"`
	// InflightBytes / HeapEvents / WatchdogLimit expose the flight gauges;
	// WatchdogPct is InflightBytes as a share of WatchdogLimit (0 when no
	// watchdog is armed).
	InflightBytes int64   `json:"inflight_bytes"`
	HeapEvents    int64   `json:"heap_events"`
	WatchdogLimit int64   `json:"watchdog_limit,omitempty"`
	WatchdogPct   float64 `json:"watchdog_pct,omitempty"`
}

// Snapshot copies the state at one instant.
func (s *RunState) Snapshot() RunSnapshot {
	snap := RunSnapshot{
		Name:       s.Name,
		Experiment: s.Experiment,
		Seed:       s.Seed,
		Index:      s.Index,
		Status:     StatusName(s.status.Load()),
		Events:     s.Live.Events.Load(),
		SimUS:      float64(s.Live.SimPS.Load()) / 1e6,
	}
	if p := s.phase.Load(); p != nil {
		snap.Phase = *p
	}
	if e := s.errMsg.Load(); e != nil {
		snap.Err = *e
	}
	if start := s.startNS.Load(); start > 0 {
		end := s.endNS.Load()
		if end == 0 {
			end = time.Now().UnixNano()
		}
		if wall := end - start; wall > 0 {
			snap.WallMS = float64(wall) / 1e6
			snap.EventsPerSec = float64(snap.Events) / (float64(wall) / 1e9)
		}
	}
	snap.InflightBytes = s.Live.InflightBytes.Load()
	snap.HeapEvents = s.Live.HeapEvents.Load()
	if limit := s.Live.WatchdogLimit.Load(); limit > 0 {
		snap.WatchdogLimit = limit
		snap.WatchdogPct = 100 * float64(snap.InflightBytes) / float64(limit)
	}
	return snap
}

// Registry tracks every run of a batch for the live endpoints. Adding is
// done up front by the batch builder; the slice itself is append-only under
// the mutex, and the states it points to are individually thread-safe.
type Registry struct {
	mu   sync.Mutex
	runs []*RunState
}

// Add registers a run and returns its state handle.
func (g *Registry) Add(name, experiment string, seed int64) *RunState {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := &RunState{Name: name, Experiment: experiment, Seed: seed, Index: len(g.runs)}
	g.runs = append(g.runs, st)
	return st
}

// Runs returns the registered run states in registration order.
func (g *Registry) Runs() []*RunState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*RunState(nil), g.runs...)
}

// Snapshot copies every run's state at one instant, in registration order.
func (g *Registry) Snapshot() []RunSnapshot {
	runs := g.Runs()
	out := make([]RunSnapshot, len(runs))
	for i, r := range runs {
		out[i] = r.Snapshot()
	}
	return out
}
