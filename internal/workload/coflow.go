package workload

import (
	"math"
	"math/rand"

	"prioplus/internal/sim"
)

// CoflowFlow is one flow within a coflow.
type CoflowFlow struct {
	Src, Dst int
	Size     int64
}

// Coflow is a set of flows that complete together; the metric is coflow
// completion time (CCT), the time from arrival until the last flow ends.
type Coflow struct {
	ID      int
	Arrival sim.Time
	Flows   []CoflowFlow
	Total   int64 // sum of flow sizes, used for size-based grouping
}

// CoflowConfig drives the synthetic Hadoop-style coflow generator. The
// shape follows the published Facebook trace's structure: most coflows are
// narrow (few flows) and small, a heavy tail is wide and large, with
// per-coflow totals spanning ~five orders of magnitude.
type CoflowConfig struct {
	Hosts     int
	Load      float64 // utilization of host links by coflow traffic
	LinkBps   float64
	Duration  sim.Time
	Rng       *rand.Rand
	FileLoad  float64 // additional load from 20-to-1 file-request traffic
	FileFanIn int     // senders per file request (paper: 20)
	FileSize  int64   // total bytes per file request
}

// DefaultCoflowConfig matches the paper's coflow scenario: coflow and
// file-request traffic in a 1:1 load ratio, 20 random senders per request.
func DefaultCoflowConfig(hosts int, load float64, linkBps float64, dur sim.Time, rng *rand.Rand) CoflowConfig {
	return CoflowConfig{
		Hosts:     hosts,
		Load:      load / 2,
		LinkBps:   linkBps,
		Duration:  dur,
		Rng:       rng,
		FileLoad:  load / 2,
		FileFanIn: 20,
		FileSize:  20 << 20,
	}
}

// sampleWidth draws a coflow width: P(w) ~ w^-1.8 over [1, maxW], matching
// the narrow-heavy shape of the Facebook trace.
func sampleWidth(rng *rand.Rand, maxW int) int {
	u := rng.Float64()
	// Inverse transform for a bounded Pareto with alpha=0.8 on [1, maxW].
	alpha := 0.8
	lo, hi := 1.0, float64(maxW)
	x := math.Pow(u*(math.Pow(hi, -alpha)-math.Pow(lo, -alpha))+math.Pow(lo, -alpha), -1/alpha)
	return int(x)
}

// sampleFlowSize draws one flow's bytes: log-uniform over [100 KB, 64 MB],
// giving coflow totals spanning several orders of magnitude.
func sampleFlowSize(rng *rand.Rand) int64 {
	lo, hi := math.Log(100e3), math.Log(64e6)
	return int64(math.Exp(lo + rng.Float64()*(hi-lo)))
}

// meanCoflowBytes estimates the generator's mean total size empirically
// (cached per config call; the generator is cheap).
func meanCoflowBytes(rng *rand.Rand, maxW int) float64 {
	var total float64
	const n = 2000
	for i := 0; i < n; i++ {
		w := sampleWidth(rng, maxW)
		for j := 0; j < w; j++ {
			total += float64(sampleFlowSize(rng))
		}
	}
	return total / n
}

// Coflows generates the coflow arrivals (Poisson) plus file-request
// coflows for the configured duration.
func Coflows(cfg CoflowConfig) []Coflow {
	maxW := min(cfg.Hosts/2, 50)
	mean := meanCoflowBytes(rand.New(rand.NewSource(99)), maxW)
	ratePerSec := float64(cfg.Hosts) * cfg.Load * cfg.LinkBps / 8 / mean
	var out []Coflow
	id := 0
	t := 0.0
	end := cfg.Duration.Seconds()
	for {
		t += cfg.Rng.ExpFloat64() / ratePerSec
		if t >= end {
			break
		}
		w := sampleWidth(cfg.Rng, maxW)
		cf := Coflow{ID: id, Arrival: sim.FromSeconds(t)}
		id++
		perm := cfg.Rng.Perm(cfg.Hosts)
		for j := 0; j < w; j++ {
			src := perm[(2*j)%cfg.Hosts]
			dst := perm[(2*j+1)%cfg.Hosts]
			if src == dst {
				dst = (dst + 1) % cfg.Hosts
			}
			size := sampleFlowSize(cfg.Rng)
			cf.Flows = append(cf.Flows, CoflowFlow{Src: src, Dst: dst, Size: size})
			cf.Total += size
		}
		out = append(out, cf)
	}
	if cfg.FileLoad > 0 {
		out = append(out, fileRequests(cfg, id)...)
	}
	return out
}

// fileRequests generates the paper's file-request traffic: for each
// request, FileFanIn random nodes each send a piece of the file to one
// randomly selected node (incast into distributed-storage readers).
func fileRequests(cfg CoflowConfig, firstID int) []Coflow {
	ratePerSec := float64(cfg.Hosts) * cfg.FileLoad * cfg.LinkBps / 8 / float64(cfg.FileSize)
	var out []Coflow
	id := firstID
	t := 0.0
	end := cfg.Duration.Seconds()
	piece := cfg.FileSize / int64(cfg.FileFanIn)
	for {
		t += cfg.Rng.ExpFloat64() / ratePerSec
		if t >= end {
			return out
		}
		dst := cfg.Rng.Intn(cfg.Hosts)
		cf := Coflow{ID: id, Arrival: sim.FromSeconds(t)}
		id++
		for j := 0; j < cfg.FileFanIn; j++ {
			src := cfg.Rng.Intn(cfg.Hosts - 1)
			if src >= dst {
				src++
			}
			cf.Flows = append(cf.Flows, CoflowFlow{Src: src, Dst: dst, Size: piece})
			cf.Total += piece
		}
		out = append(out, cf)
	}
}
