package sim

import "math/bits"

// digestPrime is the FNV-64a prime, reused for every mixing step of the
// digest chain. The chain is not cryptographic — it is a cheap, stable
// fold whose only job is to make two event streams that differ anywhere
// keep differing from the first divergent event onward.
const digestPrime = 1099511628211

// digestOffset is the FNV-64a offset basis, the chain's starting value.
const digestOffset = 14695981039346656037

// DigestCheckpointEvery is the initial checkpoint interval: a Ckpt record
// is cut every this many dispatched events. When the checkpoint buffer
// fills, Digest compacts it (keeps every second record, doubles the
// interval), so memory stays bounded and long runs self-coarsen.
const DigestCheckpointEvery = 1024

// digestCkptCap bounds the checkpoint buffer. The capacity is fixed at
// construction so the fold path never grows a slice (0 allocs per event).
const digestCkptCap = 2048

// DigestMaxRecs caps the full-event window recording (SetWindow). A window
// wider than this is truncated — Truncated reports it — so a careless
// window cannot balloon memory.
const DigestMaxRecs = 1 << 21

// Ckpt is one digest checkpoint: the chain value after exactly Count
// dispatched events, with the simulated clock at that moment. Two runs of
// the same experiment diverge strictly after the last checkpoint whose
// (Count, Chain) pair matches in both.
type Ckpt struct {
	Count uint64 // dispatched events folded so far
	Clock Time   // simulated time of the Count-th event
	Chain uint64 // chain hash after folding it
}

// EventRec is one fully recorded event from a digest window: everything
// the diff subcommand needs to name the first divergent event — dispatch
// position, clock, FIFO seq, kind tag, the payload digest folded by the
// instrumented device hooks, and the chain value after the fold.
type EventRec struct {
	Count uint64
	Clock Time
	Seq   uint64
	Kind  uint8
	Pay   uint64 // accumulated payload digest (0 if no hook fired)
	Chain uint64

	// Raw first payload triple of the event (see FoldPayload): PayTag
	// names the device, PayA/PayB carry packet identity in the encoding
	// documented at netsim's digest hooks. Valid when PayN > 0; PayN
	// counts how many payload folds the event made in total.
	PayTag, PayA, PayB uint64
	PayN               uint32
}

// Digest is a rolling execution fingerprint: each dispatched event folds
// (time, seq, kind) plus an optional payload digest into an FNV-style
// chain. Install it on an engine with SetDigest; instrumented devices
// (ports, hosts) call FoldPayload during their callbacks to mix packet
// identity in, and the engine folds the accumulated payload with the
// event frame when the callback returns.
//
// The chain is a pure observation: it depends only on the dispatched
// event stream, which is invariant across observability configurations
// (samplers consume no seq numbers and the lazy transmitter wake-up posts
// identical events either way), so the same binary, experiment, and seed
// produce the same chain whether or not any other instrument is on.
type Digest struct {
	Chain uint64 // rolling chain hash
	Count uint64 // events folded
	pay   uint64 // payload accumulator for the event in flight

	// Raw capture of the event's first payload triple, for EventRec
	// context (the chain itself only sees the hash).
	payTag, payA, payB uint64
	payN               uint32

	every uint64 // current checkpoint interval
	Ckpts []Ckpt // bounded checkpoint buffer (see compaction note above)

	// Full-event window recording for divergence pinpointing: events with
	// Count in [recLo, recHi) are recorded verbatim, up to DigestMaxRecs.
	recLo, recHi uint64
	Recs         []EventRec
	truncated    bool

	// Names maps payload tags (see FoldPayload) to human-readable device
	// names, so EventRecs can be rendered with device context. Filled by
	// the harness at install time; never touched on the fold path.
	Names map[uint64]string
}

// NewDigest returns a digest with checkpointing enabled at the default
// interval and no recording window.
func NewDigest() *Digest {
	return &Digest{
		Chain: digestOffset,
		every: DigestCheckpointEvery,
		Ckpts: make([]Ckpt, 0, digestCkptCap),
		recLo: ^uint64(0),
	}
}

// SetWindow arms full-event recording for dispatch counts in [lo, hi).
// Recording is capped at DigestMaxRecs events; Truncated reports whether
// the cap was hit. Call before the run starts.
func (d *Digest) SetWindow(lo, hi uint64) {
	if hi < lo {
		hi = lo
	}
	n := hi - lo
	if n > DigestMaxRecs {
		n = DigestMaxRecs
	}
	d.recLo, d.recHi = lo, hi
	d.Recs = make([]EventRec, 0, n)
	d.truncated = false
}

// Truncated reports whether the recording window overflowed DigestMaxRecs
// and later events in the window were dropped.
func (d *Digest) Truncated() bool { return d.truncated }

// FoldPayload mixes a payload triple into the accumulator for the event
// currently being dispatched: tag identifies the device (see Names), and
// a/b carry event-specific identity (packet id and flow, byte counts,
// pause codes). Multiple calls during one callback accumulate in call
// order; the engine folds the result with the event frame and resets the
// accumulator when the callback returns. Zero allocations.
func (d *Digest) FoldPayload(tag, a, b uint64) {
	h := d.pay
	h = (h ^ tag) * digestPrime
	h = (h ^ bits.RotateLeft64(a, 16)) * digestPrime
	h = (h ^ bits.RotateLeft64(b, 40)) * digestPrime
	d.pay = h
	if d.payN == 0 {
		d.payTag, d.payA, d.payB = tag, a, b
	}
	d.payN++
}

// fold advances the chain over one dispatched event. Called by the engine
// after the event's callback returns, so any FoldPayload calls the
// callback made are already accumulated in pay.
func (d *Digest) fold(at Time, seq uint64, kind uint8) {
	v := uint64(at) ^ bits.RotateLeft64(seq, 24) ^ uint64(kind)<<56 ^ d.pay
	pay := d.pay
	d.pay = 0
	d.Chain = (d.Chain ^ v) * digestPrime
	d.Count++
	if d.Count >= d.recLo && d.Count < d.recHi && !d.truncated {
		if len(d.Recs) < cap(d.Recs) {
			d.Recs = append(d.Recs, EventRec{
				Count: d.Count, Clock: at, Seq: seq, Kind: kind,
				Pay: pay, Chain: d.Chain,
				PayTag: d.payTag, PayA: d.payA, PayB: d.payB, PayN: d.payN,
			})
		} else {
			d.truncated = true
		}
	}
	d.payN = 0
	if d.Count%d.every == 0 {
		if len(d.Ckpts) == cap(d.Ckpts) {
			d.compactCkpts()
		}
		d.Ckpts = append(d.Ckpts, Ckpt{Count: d.Count, Clock: at, Chain: d.Chain})
	}
}

// compactCkpts halves the checkpoint buffer by keeping every second
// record and doubles the interval, preserving the invariant that kept
// records fall on multiples of the (new) interval. Amortized O(1) per
// checkpoint; never allocates (the buffer is reused in place).
func (d *Digest) compactCkpts() {
	n := 0
	for i := 1; i < len(d.Ckpts); i += 2 {
		d.Ckpts[n] = d.Ckpts[i]
		n++
	}
	d.Ckpts = d.Ckpts[:n]
	d.every *= 2
}

// CheckpointEvery returns the current checkpoint interval (doubles on
// each compaction).
func (d *Digest) CheckpointEvery() uint64 { return d.every }

// SetDigest installs (or, with nil, removes) a per-event digest chain on
// the engine: after each dispatched event's callback returns, the engine
// folds (time, seq, kind) plus the accumulated payload digest into the
// chain. Sampler firings are not folded — they are clock-driven
// observations, not events, and folding them would make the chain depend
// on the observability configuration.
func (e *Engine) SetDigest(d *Digest) { e.dig = d }

// Digest returns the installed digest chain, or nil.
func (e *Engine) Digest() *Digest { return e.dig }
