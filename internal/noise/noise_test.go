package noise

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prioplus/internal/sim"
)

func TestLongTailMatchesPaperStatistics(t *testing.T) {
	// The paper's Fig 7: mean ~0.3 us, <0.1% above 1 us, P99.85 ~0.8 us.
	m := NewLongTail(rand.New(rand.NewSource(1)), 1)
	st := Measure(m, 200_000)
	if st.Mean < 200*sim.Nanosecond || st.Mean > 400*sim.Nanosecond {
		t.Errorf("mean = %v, want ~0.3us", st.Mean)
	}
	if st.FracGt1 > 0.002 {
		t.Errorf("P(noise > 1us) = %.4f, want < 0.002", st.FracGt1)
	}
	if st.P9985 < 500*sim.Nanosecond || st.P9985 > 1200*sim.Nanosecond {
		t.Errorf("P99.85 = %v, want ~0.8us", st.P9985)
	}
}

func TestLongTailScales(t *testing.T) {
	m1 := Measure(NewLongTail(rand.New(rand.NewSource(2)), 1), 50_000)
	m4 := Measure(NewLongTail(rand.New(rand.NewSource(2)), 4), 50_000)
	ratio := float64(m4.Mean) / float64(m1.Mean)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("scale-4 mean ratio = %.2f, want ~4", ratio)
	}
}

func TestUniformBounds(t *testing.T) {
	width := 14 * sim.Microsecond
	m := NewUniform(rand.New(rand.NewSource(3)), width)
	for i := 0; i < 10_000; i++ {
		s := m.Sample()
		if s < 0 || s >= width {
			t.Fatalf("uniform sample %v out of [0, %v)", s, width)
		}
	}
}

func TestUniformZeroWidth(t *testing.T) {
	m := NewUniform(rand.New(rand.NewSource(4)), 0)
	if got := m.Sample(); got != 0 {
		t.Errorf("zero-width uniform sample = %v, want 0", got)
	}
}

func TestNoneIsZero(t *testing.T) {
	if None.Sample() != 0 {
		t.Error("None model returned nonzero noise")
	}
}

func TestCDFMonotone(t *testing.T) {
	pts := CDF(NewLongTail(rand.New(rand.NewSource(5)), 1), 20_000, 50)
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] <= pts[i-1][1] {
			t.Fatalf("CDF not monotone at %d: %v -> %v", i, pts[i-1], pts[i])
		}
	}
	if pts[len(pts)-1][1] != 1 {
		t.Errorf("CDF does not reach 1: %v", pts[len(pts)-1][1])
	}
}

// Property: noise is always non-negative (it is additive: measured delay
// can only exceed true delay, §4.3.2).
func TestNoiseNonNegativeProperty(t *testing.T) {
	f := func(seed int64, scale uint8) bool {
		m := NewLongTail(rand.New(rand.NewSource(seed)), float64(scale%8)+1)
		for i := 0; i < 100; i++ {
			if m.Sample() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
