package cc_test

import (
	"math"
	"testing"
	"testing/quick"

	"prioplus/internal/cc"
	"prioplus/internal/netsim"
	"prioplus/internal/sim"
)

func TestSwiftRTOBacksOff(t *testing.T) {
	base := 12 * sim.Microsecond
	sw := cc.NewSwift(cc.DefaultSwiftConfig(base, 150))
	sw.Start(&stubDriver{base: base, rate: 100 * netsim.Gbps, mtu: 1000})
	sw.SetCwndPackets(100)
	sw.OnRTO()
	if got := sw.CwndPackets(); got != 50 {
		t.Errorf("cwnd after RTO = %v, want 50 (MaxMDF backoff)", got)
	}
}

func TestSwiftSubPacketAIRegime(t *testing.T) {
	// Below one packet, Swift's increase is ai*acked (not ai/cwnd), so
	// recovery from the floor is linear, not hyperbolic.
	base := 12 * sim.Microsecond
	cfg := cc.DefaultSwiftConfig(base, 150)
	sw := cc.NewSwift(cfg)
	sw.Start(&stubDriver{base: base, rate: 100 * netsim.Gbps, mtu: 1000})
	sw.SetCwndPackets(0.1)
	sw.OnAck(cc.Feedback{Now: base, Delay: base, AckedBytes: 1000})
	want := 0.1 + cfg.AI
	if got := sw.CwndPackets(); math.Abs(got-want) > 1e-9 {
		t.Errorf("sub-packet AI: cwnd = %v, want %v", got, want)
	}
}

func TestSwiftNameAndECT(t *testing.T) {
	sw := cc.NewSwift(cc.DefaultSwiftConfig(sim.Microsecond, 10))
	if sw.Name() != "swift" || sw.WantsECT() {
		t.Error("Swift identity wrong")
	}
	d := cc.NewDCTCP(cc.DefaultDCTCPConfig(10))
	if d.Name() != "dctcp" || !d.WantsECT() {
		t.Error("DCTCP identity wrong")
	}
	d2cfg := cc.DefaultDCTCPConfig(10)
	d2cfg.Deadline = sim.Millisecond
	if cc.NewDCTCP(d2cfg).Name() != "d2tcp" {
		t.Error("D2TCP identity wrong")
	}
	if cc.NewNoCC().Name() != "nocc" {
		t.Error("NoCC identity wrong")
	}
	h := cc.NewHPCC(cc.DefaultHPCCConfig(10))
	if h.Name() != "hpcc" || !h.WantsECT() {
		t.Error("HPCC identity wrong")
	}
	l := cc.NewLEDBAT(cc.DefaultLEDBATConfig(sim.Microsecond, 10))
	if l.Name() != "ledbat" || l.WantsECT() {
		t.Error("LEDBAT identity wrong")
	}
}

func TestDCTCPAlphaTracksMarkingFraction(t *testing.T) {
	base := 12 * sim.Microsecond
	drv := &stubDriver{base: base, rate: 100 * netsim.Gbps, mtu: 1000}
	d := cc.NewDCTCP(cc.DefaultDCTCPConfig(150))
	d.Start(drv)
	// Feed 50 windows, each fully marked: alpha -> 1, window -> floor.
	seq := int64(0)
	for w := 0; w < 50; w++ {
		drv.sndNxt = seq + 10_000
		for i := 0; i < 10; i++ {
			d.OnAck(cc.Feedback{Now: base, Delay: base, CE: true, AckedBytes: 1000, Seq: seq, CumAck: seq + 1000})
			seq += 1000
		}
	}
	if got := d.CwndBytes() / 1000; got > 2 {
		t.Errorf("cwnd = %.1f packets under 100%% marking, want near floor", got)
	}
}

func TestHPCCIgnoresAcksWithoutINT(t *testing.T) {
	base := 12 * sim.Microsecond
	drv := &stubDriver{base: base, rate: 100 * netsim.Gbps, mtu: 1000}
	h := cc.NewHPCC(cc.DefaultHPCCConfig(150))
	h.Start(drv)
	before := h.CwndBytes()
	h.OnAck(cc.Feedback{Now: base, Delay: base, AckedBytes: 1000})
	if h.CwndBytes() != before {
		t.Error("HPCC reacted to an ACK without telemetry")
	}
}

func TestHPCCUtilizationControl(t *testing.T) {
	base := 12 * sim.Microsecond
	drv := &stubDriver{base: base, rate: 100 * netsim.Gbps, mtu: 1000}
	h := cc.NewHPCC(cc.DefaultHPCCConfig(150))
	h.Start(drv)
	mkINT := func(ts sim.Time, tx int64, qlen int) []netsim.INTRecord {
		return []netsim.INTRecord{{QLen: qlen, TxBytes: tx, TS: ts, Rate: 100 * netsim.Gbps}}
	}
	// First ACK establishes the reference; the second reports a link at
	// ~2x the target utilization with a standing queue: HPCC must cut.
	h.OnAck(cc.Feedback{Now: base, Delay: base, AckedBytes: 1000, Seq: 0, INT: mkINT(0, 0, 300_000)})
	before := h.CwndBytes()
	h.OnAck(cc.Feedback{Now: base + sim.Microsecond, Delay: base, AckedBytes: 1000, Seq: 1000,
		INT: mkINT(10*sim.Microsecond, 250_000, 300_000)}) // 25 GB/s on a 12.5 GB/s link
	if h.CwndBytes() >= before {
		t.Errorf("HPCC did not cut under 2x utilization: %v -> %v", before, h.CwndBytes())
	}
}

func TestLEDBATDecreasesAboveTarget(t *testing.T) {
	base := 12 * sim.Microsecond
	cfg := cc.DefaultLEDBATConfig(base, 150)
	l := cc.NewLEDBAT(cfg)
	l.Start(&stubDriver{base: base, rate: 100 * netsim.Gbps, mtu: 1000})
	l.SetCwndPackets(50)
	l.OnAck(cc.Feedback{Now: base, Delay: cfg.Target + 8*sim.Microsecond, AckedBytes: 1000})
	if got := l.CwndPackets(); got >= 50 {
		t.Errorf("LEDBAT cwnd %v did not decrease above target", got)
	}
	l.SetCwndPackets(50)
	l.OnAck(cc.Feedback{Now: base, Delay: base, AckedBytes: 1000})
	if got := l.CwndPackets(); got <= 50 {
		t.Errorf("LEDBAT cwnd %v did not increase below target", got)
	}
}

// Property: Swift's window stays within [MinCwnd, MaxCwnd] for arbitrary
// feedback sequences.
func TestSwiftBoundsProperty(t *testing.T) {
	base := 12 * sim.Microsecond
	f := func(delaysUS []uint8, acked []uint8) bool {
		cfg := cc.DefaultSwiftConfig(base, 150)
		sw := cc.NewSwift(cfg)
		sw.Start(&stubDriver{base: base, rate: 100 * netsim.Gbps, mtu: 1000})
		now := base
		for i, d := range delaysUS {
			bytes := 1000
			if i < len(acked) {
				bytes = int(acked[i]) * 100
			}
			now += sim.Microsecond
			sw.OnAck(cc.Feedback{Now: now, Delay: base + sim.Time(d)*sim.Microsecond, AckedBytes: bytes})
			if w := sw.CwndPackets(); w < cfg.MinCwnd || w > cfg.MaxCwnd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: LEDBAT's window stays within bounds too.
func TestLEDBATBoundsProperty(t *testing.T) {
	base := 12 * sim.Microsecond
	f := func(delaysUS []uint8) bool {
		cfg := cc.DefaultLEDBATConfig(base, 150)
		l := cc.NewLEDBAT(cfg)
		l.Start(&stubDriver{base: base, rate: 100 * netsim.Gbps, mtu: 1000})
		for _, d := range delaysUS {
			l.OnAck(cc.Feedback{Now: base, Delay: base + sim.Time(d)*sim.Microsecond, AckedBytes: 1000})
			if w := l.CwndPackets(); w < cfg.MinCwnd || w > cfg.MaxCwnd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
