// Package serve turns the simulator into a long-running job service: a
// bounded scheduler that accepts experiment specs (an exp registry id plus
// serializable RunParams), multiplexes them over the runner pool with
// panic isolation and per-job timeouts, and memoizes finished runs in a
// deterministic result cache. The HTTP surface (see http.go and
// docs/API.md) mounts on the PR 8 streaming server, so /metrics, /runs,
// and /events keep working unchanged for server-run jobs — a job is just
// a batch run somebody POSTed.
//
// Determinism is the load-bearing property: every job arms the event
// digest chain, so a job's captured output is byte-identical to the CLI's
// `prioplus-sim <id> -fingerprint` run of the same spec, the cache can
// return stored bytes as if the run had happened, and results for specs
// covered by the committed fingerprint manifest are cross-checked against
// it before they are declared done.
package serve

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"prioplus/internal/exp"
	"prioplus/internal/obs"
	"prioplus/internal/obs/stream"
	"prioplus/internal/runner"
)

// Default sizing for the scheduler's bounded structures.
const (
	// DefaultQueueDepth is the job queue bound when Config leaves it zero.
	DefaultQueueDepth = 64
	// DefaultCacheSize is the result cache entry bound when Config leaves
	// it zero.
	DefaultCacheSize = 64
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrUnknownExperiment rejects a spec whose id is not in the registry.
	ErrUnknownExperiment = errors.New("unknown experiment")
	// ErrQueueFull reports backpressure: the bounded job queue is at
	// capacity (HTTP 429).
	ErrQueueFull = errors.New("job queue full")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("no such job")
	// ErrNotCancelable reports a cancel on a job that already left the
	// queue: running jobs are uninterruptible simulation loops, finished
	// jobs are history.
	ErrNotCancelable = errors.New("job is not queued; only queued jobs can be canceled")
	// ErrNotFinished reports a result fetch on a job still queued/running.
	ErrNotFinished = errors.New("job has not finished")
)

// Config sizes a Scheduler.
type Config struct {
	// Workers is the number of concurrent runs (<= 0 means GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued-not-yet-running jobs;
	// submissions beyond it fail with ErrQueueFull (<= 0 means
	// DefaultQueueDepth).
	QueueDepth int
	// Timeout bounds each job's wall clock (0 = none). A job that exceeds
	// it is abandoned and reported failed.
	Timeout time.Duration
	// CacheSize bounds the result cache (entries, FIFO eviction; <= 0
	// means DefaultCacheSize).
	CacheSize int
	// Manifest, when non-nil, cross-checks finished runs covered by the
	// committed fingerprint manifest and folds the manifest identity into
	// cache keys.
	Manifest *Manifest
	// Registry, when non-nil, receives a RunState per computed job so the
	// streaming server's /runs endpoint and the watch dashboard see
	// server-run jobs exactly like batch runs.
	Registry *runner.Registry
	// Hub, when non-nil, receives artifact lines of jobs submitted with
	// Artifact set, for /events subscribers.
	Hub *stream.Hub
}

// Scheduler owns the job table, the worker pool, and the result cache.
// All exported methods are safe for concurrent use.
type Scheduler struct {
	cfg  Config
	pool *runner.Pool

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	inflight map[string]*job // cache key -> computing leader
	cache    *resultCache
	seq      int
	hits     uint64
	misses   uint64
}

// New builds a scheduler and starts its worker pool.
func New(cfg Config) *Scheduler {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	return &Scheduler{
		cfg:      cfg,
		pool:     runner.NewPool(cfg.Workers, cfg.QueueDepth, cfg.Timeout),
		jobs:     map[string]*job{},
		inflight: map[string]*job{},
		cache:    newResultCache(cfg.CacheSize),
	}
}

// Close stops intake and waits for in-flight jobs to finish (or time out).
func (s *Scheduler) Close() {
	s.pool.Close()
}

// Submit validates and enqueues one job. The returned snapshot reflects
// the job's state at admission: a cache hit is already done, a follower of
// an identical in-flight job is queued behind it without a second compute,
// and a fresh spec is queued for the pool. ErrQueueFull reports
// backpressure; ErrUnknownExperiment a bad id.
func (s *Scheduler) Submit(spec JobSpec) (JobSnapshot, error) {
	if _, ok := exp.Lookup(spec.Experiment); !ok {
		return JobSnapshot{}, fmt.Errorf("%w %q", ErrUnknownExperiment, spec.Experiment)
	}
	key := cacheKey(spec, s.cfg.Manifest)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j%d", s.seq),
		spec:      spec,
		key:       key,
		status:    JobQueued,
		submitted: time.Now(),
	}

	// Deterministic runs memoize: an identical finished spec is returned
	// from the cache byte-for-byte, with no recompute.
	if e, ok := s.cache.get(key); ok {
		s.hits++
		j.cache = "hit"
		j.status = JobDone
		j.output, j.fp, j.artifacts = e.output, e.fp, e.artifacts
		j.wallMS, j.events = e.wallMS, e.events
		j.finishedAt = time.Now()
		s.admit(j)
		return j.snapshot(), nil
	}

	// An identical spec already computing: attach as a follower — one
	// compute serves both, and the follower finishes when the leader does.
	if leader, ok := s.inflight[key]; ok {
		s.hits++
		j.cache = "hit"
		leader.followers = append(leader.followers, j)
		s.admit(j)
		return j.snapshot(), nil
	}

	// Fresh spec: this job leads the computation.
	s.misses++
	j.cache = "miss"
	name := fmt.Sprintf("%s:%s/seed=%d", j.id, spec.Experiment, spec.Params.Seed)
	if s.cfg.Registry != nil {
		j.state = s.cfg.Registry.Add(name, spec.Experiment, spec.Params.Seed)
	} else {
		j.state = &runner.RunState{Name: name, Experiment: spec.Experiment, Seed: spec.Params.Seed}
	}
	task := runner.Task{Name: name, Run: func() (string, map[string]float64) {
		return s.compute(j)
	}}
	if !s.pool.TrySubmit(task, func(r runner.Result) { s.complete(j, r) }) {
		return JobSnapshot{}, ErrQueueFull
	}
	s.inflight[key] = j
	s.admit(j)
	return j.snapshot(), nil
}

// admit records an accepted job in the table. Caller holds s.mu.
func (s *Scheduler) admit(j *job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
}

// compute runs the experiment for a leader job on a pool worker. The
// rendered output travels back through the runner result; artifacts and
// the experiment-level error ride on the job under the lock.
func (s *Scheduler) compute(j *job) (string, map[string]float64) {
	s.mu.Lock()
	if j.status == JobCanceled && len(j.followers) == 0 {
		// Canceled while queued with nobody waiting: skip the work. (A
		// canceled leader with followers still computes — the followers
		// paid for the result.)
		j.skipped = true
		s.mu.Unlock()
		return "", nil
	}
	if j.status == JobQueued {
		j.status = JobRunning
	}
	sink := &jobSink{
		exp:      j.spec.Experiment,
		seed:     j.spec.Params.Seed,
		artifact: j.spec.Artifact,
		hub:      s.cfg.Hub,
		live:     j.state,
	}
	s.mu.Unlock()
	j.state.Start()

	spec, _ := exp.Lookup(j.spec.Experiment)
	var buf bytes.Buffer
	err := spec.Run(j.spec.Params, sink, &buf)
	var arts []Artifact
	if err == nil {
		arts, err = sink.flush(&buf)
	}

	s.mu.Lock()
	if !j.finished() {
		j.artifacts = arts
		j.runErr = err
	}
	s.mu.Unlock()
	return buf.String(), nil
}

// complete finalizes a leader job from its pool result: classify the
// outcome, cross-check the manifest, populate the cache, and release any
// followers.
func (s *Scheduler) complete(j *job, r runner.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.finished() && j.status != JobCanceled {
		return // already finalized (defensive; the pool calls once)
	}

	errMsg := ""
	switch {
	case r.Err != nil:
		errMsg = r.Err.Error()
	case j.runErr != nil:
		errMsg = j.runErr.Error()
	}

	success := errMsg == "" && !j.skipped
	var fp string
	if success {
		fp = OutputFingerprint(r.Output)
		// Manifest cross-check: a quick, unperturbed run covered by the
		// committed manifest must reproduce its recorded fingerprint —
		// the determinism contract, enforced at serve time.
		if s.cfg.Manifest != nil && j.spec.Params.Full == false &&
			j.spec.Params.Series == false && j.spec.Params.Perturb == 0 {
			name := fmt.Sprintf("%s/seed=%d", j.spec.Experiment, j.spec.Params.Seed)
			if want, ok := s.cfg.Manifest.Runs[name]; ok && want != fp {
				success = false
				errMsg = fmt.Sprintf("determinism violation: run %s produced fp=%s, manifest has %s", name, fp, want)
			}
		}
	}

	j.wallMS = float64(r.Wall.Microseconds()) / 1000
	j.events = j.state.Live.Events.Load()
	if success {
		j.output, j.fp = r.Output, fp
		s.cache.put(j.key, cacheEntry{
			output: j.output, fp: j.fp, artifacts: j.artifacts,
			wallMS: j.wallMS, events: j.events,
		})
	} else {
		j.artifacts = nil
	}

	finalize := func(target *job) {
		if target.status == JobCanceled {
			return
		}
		if success {
			target.status = JobDone
		} else {
			target.status = JobFailed
			target.errMsg = errMsg
		}
		target.finishedAt = time.Now()
	}
	finalize(j)
	if j.status != JobCanceled {
		// A canceled leader's RunState was already finished ("canceled")
		// by Cancel; don't overwrite that with the compute outcome.
		j.state.Finish(errMsg)
	}

	// Followers inherit the leader's outcome, bytes included.
	for _, f := range j.followers {
		if f.status == JobCanceled {
			continue
		}
		if success {
			f.output, f.fp, f.artifacts = j.output, j.fp, j.artifacts
			f.wallMS, f.events = j.wallMS, j.events
		}
		finalize(f)
	}
	j.followers = nil
	delete(s.inflight, j.key)
}

// Cancel cancels a queued job. Running jobs are uninterruptible
// (simulation loops do not preempt) and finished jobs are immutable; both
// return ErrNotCancelable.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrNotFound
	}
	if j.status != JobQueued {
		return ErrNotCancelable
	}
	j.status = JobCanceled
	j.finishedAt = time.Now()
	if j.state != nil {
		j.state.Finish("canceled")
	}
	return nil
}

// Job returns one job's snapshot.
func (s *Scheduler) Job(id string) (JobSnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobSnapshot{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// Result returns a finished job's full result (output, artifacts, metrics,
// fingerprint). ErrNotFinished reports a job still queued or running.
func (s *Scheduler) Result(id string) (JobResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobResult{}, ErrNotFound
	}
	if !j.finished() {
		return JobResult{}, ErrNotFinished
	}
	res := JobResult{
		ID:         j.id,
		Experiment: j.spec.Experiment,
		Params:     j.spec.Params,
		Status:     j.status,
		Cache:      j.cache,
		FP:         j.fp,
		Output:     j.output,
		Err:        j.errMsg,
		Artifacts:  j.artifacts,
		Metrics:    map[string]float64{"wall_ms": j.wallMS, "events": float64(j.events)},
	}
	return res, nil
}

// Jobs returns the full job table with aggregate counters, submission
// order preserved — the /jobs payload the watch dashboard renders.
func (s *Scheduler) Jobs() JobsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := JobsSnapshot{Queue: QueueStats{Capacity: s.cfg.QueueDepth}}
	out.Cache = CacheStats{Entries: s.cache.len(), Hits: s.hits, Misses: s.misses}
	for _, id := range s.order {
		j := s.jobs[id]
		out.Jobs = append(out.Jobs, j.snapshot())
		switch j.status {
		case JobQueued:
			out.Counts.Queued++
			out.Queue.Depth++
		case JobRunning:
			out.Counts.Running++
		case JobDone:
			out.Counts.Done++
		case JobFailed:
			out.Counts.Failed++
		case JobCanceled:
			out.Counts.Canceled++
		}
	}
	return out
}

// Experiments enumerates the registry for the /experiments endpoint.
func Experiments() []ExperimentInfo {
	specs := exp.Specs()
	out := make([]ExperimentInfo, 0, len(specs))
	for _, sp := range specs {
		out = append(out, ExperimentInfo{ID: sp.ID, Describe: sp.Describe, Defaults: sp.Defaults})
	}
	return out
}

// ExperimentInfo is one /experiments entry.
type ExperimentInfo struct {
	// ID and Describe echo the registered spec; Defaults are the params an
	// empty submission gets.
	ID       string        `json:"id"`
	Describe string        `json:"describe"`
	Defaults exp.RunParams `json:"defaults"`
}

// cacheKey binds a result to everything that determines its bytes: the
// experiment id, the canonicalized parameters, whether an artifact was
// recorded, the artifact schema version, and the identity of the
// fingerprint manifest the run was checked against. Canonical() makes the
// key invariant under JSON field order and explicitly-spelled defaults.
func cacheKey(spec JobSpec, m *Manifest) string {
	mh := "none"
	if m != nil {
		mh = m.Hash()
	}
	return fmt.Sprintf("%s|%s|artifact=%t|av=%d|manifest=%s",
		spec.Experiment, spec.Params.Canonical(), spec.Artifact, obs.ArtifactVersion, mh)
}
