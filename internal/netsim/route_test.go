package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prioplus/internal/sim"
)

// TestECMPModMatchesModulo proves the magic-multiply reciprocal equals the
// hardware modulo for every ECMP fan-out the simulator can produce.
// Divisors 1..64 are checked exhaustively against the boundary hashes
// where a fixed-point reciprocal would first go wrong: 0, 1, the top of
// the 32-bit range, every multiple of the divisor +/-1 near both ends,
// and a large prime-stride sweep across the middle.
func TestECMPModMatchesModulo(t *testing.T) {
	check := func(x, d uint32) {
		magic := ecmpMagic(d)
		if got, want := ecmpMod(x, magic, d), x%d; got != want {
			t.Fatalf("ecmpMod(%d, %d) = %d, want %d", x, d, got, want)
		}
	}
	for d := uint32(1); d <= 64; d++ {
		for _, x := range []uint32{0, 1, d - 1, d, d + 1, 1<<31 - 1, 1 << 31, ^uint32(0) - d, ^uint32(0) - 1, ^uint32(0)} {
			check(x, d)
		}
		// Multiples of d near both ends of the range, +/-1.
		top := (^uint32(0) / d) * d
		for _, base := range []uint32{d * 2, d * 3, top - d, top} {
			check(base-1, d)
			check(base, d)
			check(base+1, d)
		}
		// Prime stride sweep: ~2^12 points spread over the full range.
		const stride = 1048583 // prime > 2^20
		for x := uint32(0); x <= ^uint32(0)-stride; x += stride {
			check(x, d)
		}
	}
}

// TestECMPModQuick is the randomized counterpart: any (hash, fan-out)
// pair, fan-out up to 2^16.
func TestECMPModQuick(t *testing.T) {
	f := func(x uint32, dRaw uint16) bool {
		d := uint32(dRaw)%(1<<16) + 1
		return ecmpMod(x, ecmpMagic(d), d) == x%d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// TestRouteTableSetClearReset exercises the dense-table API directly:
// growth past the initial sizing, clearing, the read-only view, and the
// rebuild contract.
func TestRouteTableSetClearReset(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, "sw", DefaultBufferConfig(), rand.New(rand.NewSource(1)))
	sw.ResetRoutes(2)
	sw.SetRoute(0, []int32{3})
	sw.SetRoute(1, []int32{1, 2})
	sw.SetRoute(7, []int32{5}) // beyond the ResetRoutes sizing: must grow
	if got := sw.RouteDests(); got != 8 {
		t.Fatalf("RouteDests = %d, want 8", got)
	}
	if r := sw.Route(1); len(r) != 2 || r[0] != 1 || r[1] != 2 {
		t.Errorf("Route(1) = %v, want [1 2]", r)
	}
	if r := sw.Route(7); len(r) != 1 || r[0] != 5 {
		t.Errorf("Route(7) = %v, want [5]", r)
	}
	if r := sw.Route(3); r != nil {
		t.Errorf("Route(3) = %v, want nil (never set)", r)
	}
	if r := sw.Route(100); r != nil {
		t.Errorf("Route(100) = %v, want nil (out of table)", r)
	}
	sw.ClearRoute(1)
	if r := sw.Route(1); r != nil {
		t.Errorf("Route(1) after ClearRoute = %v, want nil", r)
	}
	// Rebuild: ResetRoutes empties everything, old entries must not leak.
	sw.ResetRoutes(8)
	if r := sw.Route(0); r != nil {
		t.Errorf("Route(0) after ResetRoutes = %v, want nil", r)
	}
	sw.SetRoute(0, []int32{9})
	if r := sw.Route(0); len(r) != 1 || r[0] != 9 {
		t.Errorf("Route(0) after rebuild = %v, want [9]", r)
	}
}

// TestRouteRebuildZeroAlloc pins the rebuild contract: once the arena and
// table have grown, a same-shape ResetRoutes+SetRoute cycle (what
// RecomputeRoutes does on every fault event) allocates nothing.
func TestRouteRebuildZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, "sw", DefaultBufferConfig(), rand.New(rand.NewSource(1)))
	ports := []int32{0, 1, 2, 3}
	rebuild := func() {
		sw.ResetRoutes(64)
		for dst := 0; dst < 64; dst++ {
			sw.SetRoute(dst, ports[:1+dst%4])
		}
	}
	rebuild()
	if allocs := testing.AllocsPerRun(100, rebuild); allocs != 0 {
		t.Errorf("route rebuild allocates %.1f objects/run, want 0", allocs)
	}
}

// TestNilPoolDropPaths: a switch without a harness-installed pool must
// take every drop class without panicking — no-route (under
// AllowNoRoute), buffer admission refusal, and fault drops — leaving the
// packets to the GC.
func TestNilPoolDropPaths(t *testing.T) {
	t.Run("no-route", func(t *testing.T) {
		eng := sim.NewEngine()
		sw, hosts := star(eng, 2, 100*Gbps, sim.Microsecond, 2, lossyConfig())
		sw.AllowNoRoute = true
		hosts[0].Send(NewData(1, 0, 99, 0, 0, 1000)) // host 99 does not exist
		eng.Run()
		if sw.NoRouteDrop != 1 {
			t.Errorf("NoRouteDrop = %d, want 1", sw.NoRouteDrop)
		}
	})
	t.Run("all-next-hops-down", func(t *testing.T) {
		eng := sim.NewEngine()
		sw, hosts := star(eng, 2, 100*Gbps, sim.Microsecond, 2, lossyConfig())
		sw.Ports[1].SetDown(true) // the only path to host 1
		hosts[0].Send(NewData(1, 0, 1, 0, 0, 1000))
		eng.Run()
		if sw.NoRouteDrop != 1 {
			t.Errorf("NoRouteDrop = %d, want 1 (ECMP exclusion exhausted)", sw.NoRouteDrop)
		}
	})
	t.Run("buffer-admission", func(t *testing.T) {
		eng := sim.NewEngine()
		cfg := lossyConfig()
		cfg.TotalBytes = 4 * 1048 // room for ~4 packets
		sw, hosts := star(eng, 3, 100*Gbps, sim.Microsecond, 2, cfg)
		for i := 0; i < 64; i++ {
			hosts[0].Send(NewData(1, 0, 2, 0, int64(i)*1000, 1000))
			hosts[1].Send(NewData(2, 1, 2, 0, int64(i)*1000, 1000))
		}
		eng.Run()
		if sw.Drops() == 0 {
			t.Error("no admission drops under 128-packet burst into a 4-packet buffer")
		}
	})
	t.Run("fault-drop-queued", func(t *testing.T) {
		eng := sim.NewEngine()
		sw, hosts := star(eng, 3, 100*Gbps, sim.Microsecond, 2, lossyConfig())
		// 2:1 incast so the egress queue to host 2 builds a backlog.
		for i := 0; i < 32; i++ {
			hosts[0].Send(NewData(1, 0, 2, 0, int64(i)*1000, 1000))
			hosts[1].Send(NewData(2, 1, 2, 0, int64(i)*1000, 1000))
		}
		// Let the burst land in the egress queue, then kill the link:
		// SetDown drops the backlog through the fault path, pool-less.
		eng.RunUntil(2 * sim.Microsecond)
		sw.Ports[2].SetDown(true)
		eng.Run()
		if sw.Ports[2].FaultDrops == 0 {
			t.Error("SetDown dropped nothing; fault drop path went untested")
		}
	})
}
