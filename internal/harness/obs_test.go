package harness_test

import (
	"bytes"
	"strings"
	"testing"

	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// TestSinkCounterChains is the regression test for the stacked-sink bug:
// attaching a second SinkCounter to the same host must chain to the first,
// so both meters see every delivered packet.
func TestSinkCounterChains(t *testing.T) {
	net, eng := newNet(3)
	byPrio := harness.NewThroughputMeter()
	bySrc := harness.NewThroughputMeter()
	net.SinkCounter(2, byPrio, func(p *netsim.Packet) int { return p.Prio })
	net.SinkCounter(2, bySrc, func(p *netsim.Packet) int { return p.Src })
	size := int64(50_000)
	done := 0
	for src := 0; src < 2; src++ {
		net.AddFlow(harness.Flow{Src: src, Dst: 2, Size: size, Prio: 0,
			Algo: swift(net, src, 2), OnComplete: func(sim.Time) { done++ }})
	}
	eng.RunUntil(5 * sim.Millisecond)
	if done != 2 {
		t.Fatalf("%d/2 flows completed: second SinkCounter broke delivery", done)
	}
	if got := bySrc.Snapshot(); got[0] != size || got[1] != size {
		t.Errorf("outer counter = %v, want %d per source", got, size)
	}
	if got := byPrio.Snapshot(); got[0] != 2*size {
		t.Errorf("inner counter = %v, want %d on prio 0: chain dropped the first sink", got, 2*size)
	}
}

// netAggregates is every net/ metric CollectMetrics emits — the list in
// docs/OBSERVABILITY.md. The test below fails if any goes missing.
var netAggregates = []string{
	"net/flows_completed", "net/retransmits", "net/rtos",
	"net/probes_sent", "net/fct_sum_us",
	"net/tx_packets", "net/tx_bytes", "net/rx_packets",
	"net/drops", "net/drop_bytes", "net/ecn_marks",
	"net/pfc_pauses", "net/pfc_pause_us",
	"net/buffer_hwm_bytes", "net/headroom_hwm_bytes", "net/queue_hwm_bytes",
	"net/fault_drops", "net/corrupt_drops", "net/no_route_drops",
}

// perEntitySuffixes maps a name prefix to the metrics every entity of that
// kind must report (also the docs/OBSERVABILITY.md list).
var perEntitySuffixes = map[string][]string{
	"switch/star/": {"rx_packets", "drops", "drop_bytes", "ecn_marks",
		"pfc_pauses", "buffer_hwm_bytes", "headroom_hwm_bytes"},
	"port/star:0/":  {"tx_packets", "tx_bytes", "paused_us", "queue_hwm_bytes"},
	"port/host0:0/": {"tx_packets", "tx_bytes", "paused_us", "queue_hwm_bytes"},
	"host/2/":       {"rx_packets"},
}

func TestObserveAndCollectMetrics(t *testing.T) {
	net, eng := newNet(3)
	var traceBuf bytes.Buffer
	rec := obs.NewRecorder()
	sink := obs.NewJSONLSink(&traceBuf)
	rec.Trace = sink
	net.Observe(rec)

	size := int64(100_000)
	for src := 0; src < 2; src++ {
		net.AddFlow(harness.Flow{Src: src, Dst: 2, Size: size, Prio: 0, Algo: swift(net, src, 2)})
	}
	eng.RunUntil(5 * sim.Millisecond)
	net.CollectMetrics(rec)

	m := rec.Metrics
	for _, name := range netAggregates {
		if _, ok := m.Value(name); !ok {
			t.Errorf("metric %q not emitted", name)
		}
	}
	for prefix, suffixes := range perEntitySuffixes {
		for _, s := range suffixes {
			if _, ok := m.Value(prefix + s); !ok {
				t.Errorf("metric %q not emitted", prefix+s)
			}
		}
	}

	snap := m.Snapshot()
	if snap["net/flows_completed"] != 2 {
		t.Errorf("net/flows_completed = %v, want 2", snap["net/flows_completed"])
	}
	if snap["net/fct_sum_us"] <= 0 {
		t.Errorf("net/fct_sum_us = %v, want > 0", snap["net/fct_sum_us"])
	}
	if snap["net/tx_packets"] <= 0 || snap["net/tx_bytes"] < float64(2*size) {
		t.Errorf("tx aggregates = %v pkts / %v bytes, want traffic", snap["net/tx_packets"], snap["net/tx_bytes"])
	}
	if snap["net/rx_packets"] <= 0 {
		t.Errorf("net/rx_packets = %v, want > 0", snap["net/rx_packets"])
	}
	if snap["net/queue_hwm_bytes"] <= 0 {
		t.Errorf("net/queue_hwm_bytes = %v, want > 0 (two senders share one egress)", snap["net/queue_hwm_bytes"])
	}
	// The host's own view must agree with the aggregate.
	if snap["host/2/rx_packets"] <= 0 {
		t.Errorf("host/2/rx_packets = %v, want > 0", snap["host/2/rx_packets"])
	}

	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	trace := traceBuf.String()
	for _, kind := range []string{`"kind":"enq"`, `"kind":"deq"`, `"kind":"fct"`} {
		if !strings.Contains(trace, kind) {
			t.Errorf("trace has no %s events", kind)
		}
	}
	if sink.Events < 10 {
		t.Errorf("trace recorded only %d events", sink.Events)
	}
}

// TestCollectMetricsWithoutObserve: the documented flow aggregates must
// exist (at zero) even when Observe was never attached, so reports always
// have the full metric set.
func TestCollectMetricsWithoutObserve(t *testing.T) {
	net, eng := newNet(3)
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 10_000, Prio: 0, Algo: swift(net, 0, 2)})
	eng.RunUntil(5 * sim.Millisecond)
	rec := obs.NewRecorder()
	net.CollectMetrics(rec)
	for _, name := range netAggregates {
		if _, ok := rec.Metrics.Value(name); !ok {
			t.Errorf("metric %q missing without Observe", name)
		}
	}
	if v, _ := rec.Metrics.Value("net/flows_completed"); v != 0 {
		t.Errorf("net/flows_completed = %v without Observe, want 0", v)
	}
	if v, _ := rec.Metrics.Value("net/tx_packets"); v <= 0 {
		t.Errorf("net/tx_packets = %v, want > 0: device counters are always on", v)
	}
}

// TestObserveSeriesAndHists: the full telemetry stack on a real run — the
// standard source catalogue is registered, the engine-clock sampler fills
// every series in lockstep, and the latency histograms are populated.
func TestObserveSeriesAndHists(t *testing.T) {
	net, eng := newNet(3)
	rec := obs.NewRecorder()
	rec.Series = obs.NewSeriesSet(10 * sim.Microsecond)
	rec.Hist = obs.NewHistSet()
	net.Observe(rec)

	done := 0
	for src := 0; src < 2; src++ {
		net.AddFlow(harness.Flow{Src: src, Dst: 2, Size: 100_000, Prio: 0,
			Algo: swift(net, src, 2), OnComplete: func(sim.Time) { done++ }})
	}
	eng.RunUntil(5 * sim.Millisecond)
	if done != 2 {
		t.Fatalf("%d/2 flows completed under full telemetry", done)
	}

	ss := rec.Series
	if ss.Ticks() == 0 {
		t.Fatal("sampler never fired")
	}
	byName := map[string]*obs.Series{}
	for _, s := range ss.All() {
		if s.Len() != ss.Ticks() {
			t.Errorf("series %q has %d samples, want %d: columns out of lockstep", s.Name, s.Len(), ss.Ticks())
		}
		byName[s.Name] = s
	}
	for _, name := range []string{
		"net/inflight_bytes", "net/inflight_packets", "net/event_heap",
		"net/paused_queues", "net/prio0/queued_bytes",
		"switch/star/buffer_bytes", "switch/star/headroom_bytes",
		"port/star:0/queue_bytes",
		"port/star:0/paused", "port/host0:0/queue_bytes",
	} {
		if byName[name] == nil {
			t.Errorf("standard series %q not registered", name)
		}
	}
	peak := 0.0
	for _, v := range byName["net/inflight_bytes"].V {
		if v > peak {
			peak = v
		}
	}
	if peak <= 0 {
		t.Error("net/inflight_bytes never rose above zero during a 200KB transfer")
	}

	if n := rec.Hist.FCT.Count(); n != 2 {
		t.Errorf("FCT histogram has %d observations, want 2", n)
	}
	if rec.Hist.AckRTT.Count() == 0 || rec.Hist.FabricDelay.Count() == 0 {
		t.Error("RTT/delay histograms empty after a full run")
	}
	if rec.Hist.FabricDelay.Min() <= 0 {
		t.Errorf("fabric delay min = %dns, want > 0", rec.Hist.FabricDelay.Min())
	}
}

// TestObserveWatchdogStopsEngine: an in-flight ceiling the traffic is sure
// to cross stops the run at a sampling tick, latches the reason, and shows
// up as net/watchdog_trips in the collected metrics.
func TestObserveWatchdogStopsEngine(t *testing.T) {
	net, eng := newNet(3)
	rec := obs.NewRecorder()
	rec.Watchdog = &obs.Watchdog{MaxInflightBytes: 1}
	net.Observe(rec)
	done := 0
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1_000_000, Prio: 0,
		Algo: swift(net, 0, 2), OnComplete: func(sim.Time) { done++ }})
	horizon := 50 * sim.Millisecond
	eng.RunUntil(horizon)
	if rec.Watchdog.Tripped() != "inflight_bytes" {
		t.Fatalf("Tripped = %q, want inflight_bytes", rec.Watchdog.Tripped())
	}
	if done != 0 {
		t.Error("flow completed despite the engine being stopped at the first tick")
	}
	if eng.Now() >= horizon {
		t.Errorf("engine ran to the horizon (%v) instead of stopping at the trip", eng.Now())
	}
	net.CollectMetrics(rec)
	if v, _ := rec.Metrics.Value("net/watchdog_trips"); v != 1 {
		t.Errorf("net/watchdog_trips = %v, want 1", v)
	}
}

// TestObserveWatchdogKeepRunning: diagnosis mode records the trip but lets
// the run finish.
func TestObserveWatchdogKeepRunning(t *testing.T) {
	net, eng := newNet(3)
	rec := obs.NewRecorder()
	rec.Watchdog = &obs.Watchdog{MaxInflightBytes: 1, KeepRunning: true}
	net.Observe(rec)
	done := 0
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 100_000, Prio: 0,
		Algo: swift(net, 0, 2), OnComplete: func(sim.Time) { done++ }})
	eng.RunUntil(50 * sim.Millisecond)
	if rec.Watchdog.Tripped() != "inflight_bytes" {
		t.Errorf("Tripped = %q, want inflight_bytes", rec.Watchdog.Tripped())
	}
	if done != 1 {
		t.Error("KeepRunning watchdog still stopped the run")
	}
}

// TestObserveCostLiveRuntime exercises the third-generation wiring in one
// run: the cost profiler is installed as the engine's cost sampler (and
// folded into metrics by CollectMetrics), live progress atomics advance at
// sampling ticks, and the runtime series land in the artifact series set
// after the deterministic catalogue.
func TestObserveCostLiveRuntime(t *testing.T) {
	net, eng := newNet(3)
	rec := obs.NewRecorder()
	rec.Series = obs.NewSeriesSet(10 * sim.Microsecond)
	rec.Cost = &obs.CostProfiler{Every: 8}
	rec.Runtime = &obs.RuntimeSampler{Every: 4}
	rec.Live = &obs.LiveRun{}
	net.Observe(rec)

	for src := 0; src < 2; src++ {
		net.AddFlow(harness.Flow{Src: src, Dst: 2, Size: 100_000, Prio: 0, Algo: swift(net, src, 2)})
	}
	eng.RunUntil(5 * sim.Millisecond)
	net.CollectMetrics(rec)

	// Cost attribution: a traffic-bearing run must stamp transmit and
	// delivery events, and the buckets must surface as metrics.
	if rec.Cost.Bucket(sim.EKTransmit).Samples == 0 && rec.Cost.Bucket(sim.EKDeliverHost).Samples == 0 {
		t.Error("cost profiler saw no transmit/delivery stamps")
	}
	if _, ok := rec.Metrics.Value("cost/deliver_switch/ns"); !ok {
		t.Error("cost/deliver_switch/ns metric not emitted")
	}

	// Live progress advanced.
	if ev := rec.Live.Events.Load(); ev == 0 {
		t.Error("live event counter never advanced")
	}
	if rec.Live.SimPS.Load() == 0 {
		t.Error("live sim clock never advanced")
	}

	// Runtime series registered after the simulated catalogue.
	all := rec.Series.All()
	if len(all) == 0 || all[0].Name != "net/inflight_bytes" {
		t.Fatal("deterministic catalogue no longer leads the series set")
	}
	last := all[len(all)-1]
	if last.Name != "runtime/wall_per_sim" {
		t.Errorf("last series = %s, want runtime/wall_per_sim", last.Name)
	}
	if last.Len() != all[0].Len() {
		t.Errorf("runtime series has %d samples, catalogue has %d", last.Len(), all[0].Len())
	}
}

// TestObserveLiveOnly pins that a Live recorder without series or watchdog
// still gets a clock hook (the all -listen path with telemetry off).
func TestObserveLiveOnly(t *testing.T) {
	net, eng := newNet(3)
	rec := obs.NewRecorder()
	rec.Live = &obs.LiveRun{}
	net.Observe(rec)
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 100_000, Prio: 0, Algo: swift(net, 0, 2)})
	eng.RunUntil(5 * sim.Millisecond)
	if rec.Live.Events.Load() == 0 {
		t.Error("live-only recorder never ticked")
	}
}
