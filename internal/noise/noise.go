// Package noise models delay-measurement noise. The paper measures the
// noise of NIC hardware timestamping in its testbed (Fig 7): a long-tail
// additive distribution with mean ~0.3 us, 99.85th percentile ~0.8 us, and
// under 0.1% probability of exceeding 1 us. PrioPlus sizes its channel
// width from a high percentile of this distribution (§4.3.2).
package noise

import (
	"math"
	"math/rand"
	"sort"

	"prioplus/internal/sim"
)

// Model is a source of additive delay-noise samples. Implementations are
// not safe for concurrent use; the simulator is single-threaded.
type Model interface {
	Sample() sim.Time
}

// Func adapts a function to the Model interface.
type Func func() sim.Time

// Sample implements Model.
func (f Func) Sample() sim.Time { return f() }

// LongTail reproduces the paper's measured hardware-timestamp noise,
// optionally scaled (Fig 10d scales it 1x-8x). The body is a folded
// normal (mean 0.25 us, sigma 0.18 us) and a rare (0.05%) tail uniform in
// [1 us, 4 us], giving mean ~0.26 us, P99.85 ~0.8 us, P(>1 us) < 0.1%.
type LongTail struct {
	rng   *rand.Rand
	scale float64
}

// NewLongTail returns a long-tail noise model with the given scale factor
// (1 = the paper's measured distribution).
func NewLongTail(rng *rand.Rand, scale float64) *LongTail {
	return &LongTail{rng: rng, scale: scale}
}

// Sample implements Model.
func (l *LongTail) Sample() sim.Time {
	var us float64
	if l.rng.Float64() < 0.0005 {
		us = 1 + 3*l.rng.Float64()
	} else {
		us = math.Abs(0.25 + 0.18*l.rng.NormFloat64())
	}
	return sim.Time(us * l.scale * float64(sim.Microsecond))
}

// Uniform returns noise uniform in [0, rangeWidth), the model used for
// non-congestive delay in Fig 13.
type Uniform struct {
	rng   *rand.Rand
	width sim.Time
}

// NewUniform returns a uniform noise model over [0, width).
func NewUniform(rng *rand.Rand, width sim.Time) *Uniform {
	return &Uniform{rng: rng, width: width}
}

// Sample implements Model.
func (u *Uniform) Sample() sim.Time {
	if u.width <= 0 {
		return 0
	}
	return sim.Time(u.rng.Int63n(int64(u.width)))
}

// None is a zero-noise model.
var None = Func(func() sim.Time { return 0 })

// Stats summarizes a noise distribution empirically.
type Stats struct {
	Mean    sim.Time
	P50     sim.Time
	P99     sim.Time
	P9985   sim.Time
	FracGt1 float64 // fraction of samples above 1 us
}

// Measure draws n samples and summarizes them, reproducing the paper's
// noise characterization methodology (§4.3.2): in a real data center the
// same numbers come from idle-network ping-pong measurements.
func Measure(m Model, n int) Stats {
	samples := make([]sim.Time, n)
	var sum, gt1 int64
	for i := range samples {
		s := m.Sample()
		samples[i] = s
		sum += int64(s)
		if s > sim.Microsecond {
			gt1++
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pct := func(p float64) sim.Time {
		idx := int(p * float64(n-1))
		return samples[idx]
	}
	return Stats{
		Mean:    sim.Time(sum / int64(n)),
		P50:     pct(0.50),
		P99:     pct(0.99),
		P9985:   pct(0.9985),
		FracGt1: float64(gt1) / float64(n),
	}
}

// CDF returns (value, cumulative probability) points of the empirical
// distribution of n samples, for reproducing Fig 7.
func CDF(m Model, n, points int) [][2]float64 {
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = m.Sample().Micros()
	}
	sort.Float64s(samples)
	out := make([][2]float64, 0, points)
	for i := 0; i < points; i++ {
		q := float64(i) / float64(points-1)
		idx := int(q * float64(n-1))
		out = append(out, [2]float64{samples[idx], q})
	}
	return out
}
