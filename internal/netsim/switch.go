package netsim

import (
	"fmt"
	"math/rand"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// Switch is a shared-buffer, output-queued switch with strict-priority
// scheduling per port, dynamic-threshold buffer admission, optional PFC,
// and optional ECN marking and INT stamping.
type Switch struct {
	Eng    *sim.Engine
	Name   string
	Ports  []*Port
	Buffer BufferConfig

	// Trace, when non-nil, receives drop and ECN-mark events for this
	// switch (enqueue/dequeue events come from the ports). Install via
	// harness.Net.Observe.
	Trace obs.Tracer

	// Pool, when non-nil, receives packets this switch drops, so lossy
	// runs stay allocation-free. Installed by internal/harness; a nil pool
	// is always safe (Put on a nil pool is a no-op) and just leaves
	// dropped packets to the GC.
	Pool *PacketPool

	// AllowNoRoute turns the no-route invariant panic into a counted drop.
	// The fault layer sets it when a plan is installed: link failures can
	// legitimately partition a destination, and packets already in flight
	// toward the partition must die quietly, not crash the run.
	AllowNoRoute bool

	// Dense route table: per-destination ECMP sets in one flat arena,
	// indexed by the contiguous host ID. See route.go for the install API
	// (ResetRoutes/SetRoute/Route), built by internal/topo.
	routes     []routeEntry
	routeArena []int32

	buf *sharedBuffer
	rng *rand.Rand

	// ecnOff short-circuits the marking check when the configuration can
	// never mark (no per-VPrio thresholds, KMin disabled), skipping the
	// per-packet RNG draw. Computed at Finalize; the rng has no other
	// consumer, so skipping draws is output-invariant.
	ecnOff bool

	// Counters.
	RxPackets   int64
	NoRouteDrop int64
	ECNMarks    int64
}

// NewSwitch creates a switch; ports are added with AddPort before Finalize.
func NewSwitch(eng *sim.Engine, name string, cfg BufferConfig, rng *rand.Rand) *Switch {
	return &Switch{
		Eng:    eng,
		Name:   name,
		Buffer: cfg,
		rng:    rng,
	}
}

// AddPort creates and registers an egress port with nqueues priority
// queues, returning it for wiring with Connect.
func (s *Switch) AddPort(rate Rate, prop sim.Time, nqueues int) *Port {
	p := NewPort(s.Eng, s, rate, prop, nqueues)
	p.Index = len(s.Ports)
	s.Ports = append(s.Ports, p)
	return p
}

// Finalize allocates buffer accounting once all ports exist. It must be
// called before traffic flows.
func (s *Switch) Finalize() {
	nprios := 1
	for _, p := range s.Ports {
		nprios = max(nprios, p.NumQueues())
	}
	s.buf = newSharedBuffer(s.Buffer, len(s.Ports), nprios)
	s.ecnOff = s.Buffer.ECNKByVPrio == nil && s.Buffer.ECNKMin <= 0
}

// DeviceName implements Device.
func (s *Switch) DeviceName() string { return s.Name }

// Drops returns the number of packets dropped for buffer exhaustion.
func (s *Switch) Drops() int64 { return s.buf.Drops }

// DropBytes returns the bytes dropped for buffer exhaustion.
func (s *Switch) DropBytes() int64 { return s.buf.DropBytes }

// BufferHWM returns the shared-pool occupancy high-water mark in bytes.
func (s *Switch) BufferHWM() int { return s.buf.UsedHWM }

// PausesSent returns the number of PFC pause transitions generated.
func (s *Switch) PausesSent() int64 { return s.buf.PausesSent }

// BufferUsed returns the shared-pool occupancy in bytes.
func (s *Switch) BufferUsed() int { return s.buf.Used() }

// HeadroomUsed returns the PFC headroom occupancy in bytes; under incast
// this, not the shared pool, is where most queued bytes live.
func (s *Switch) HeadroomUsed() int { return s.buf.HeadroomUsed() }

// HeadroomHWM returns the peak PFC headroom occupancy seen.
func (s *Switch) HeadroomHWM() int { return s.buf.HdrHWM }

// HandlePause implements Device: pause/resume our egress queue on the port
// the frame arrived on.
func (s *Switch) HandlePause(prio int, on bool, in *Port) {
	in.SetPaused(prio, on)
}

// HandlePacket implements Device: route, admit, mark, enqueue. The common
// case — route present, next hop up, admitted, no marking — runs straight
// through with the drop paths outlined into noinline helpers; every
// decision (ECMP selection, admission, marking) is bit-identical to the
// pre-dense-table implementation.
func (s *Switch) HandlePacket(pkt *Packet, in *Port) {
	checkLive(pkt, "Switch.HandlePacket")
	s.RxPackets++
	dst := pkt.Dst
	if uint(dst) >= uint(len(s.routes)) {
		s.dropNoRoute(pkt)
		return
	}
	e := &s.routes[dst]
	if e.n == 0 {
		s.dropNoRoute(pkt)
		return
	}
	out := s.Ports[s.routeArena[e.off+int32(ecmpMod(pkt.Hash, e.magic, uint32(e.n)))]]
	if out.fault != nil && out.fault.Down {
		// ECMP next-hop exclusion: re-hash over the live subset so flows
		// route around a downed link without waiting for the control plane.
		out = s.liveNextHop(s.routeArena[e.off:e.off+e.n], int(pkt.Hash))
		if out == nil {
			s.NoRouteDrop++
			s.Pool.Put(pkt)
			return
		}
	}
	prio := out.clampPrio(pkt.Prio)
	size := pkt.Wire

	lossless := s.buf.lossless(prio)
	if lossless {
		admitted, sendPause := s.buf.admitLossless(in.Index, prio, size)
		if sendPause {
			in.SendPause(prio, true)
		}
		if !admitted {
			s.dropAdmission(pkt, out, prio)
			return
		}
	} else if !s.buf.admitLossy(out.queues[prio].bytes, size) {
		s.dropAdmission(pkt, out, prio)
		return
	}

	if pkt.Type == Data && pkt.ECT && !pkt.CE && !s.ecnOff {
		s.maybeMark(pkt, out, prio, size)
	}

	// The egress port is known up (checked at route selection, and link
	// state cannot change within this event), so enqueue skips the public
	// Enqueue wrapper's down-check and priority re-clamp.
	out.enqueue(TxItem{
		Pkt:      pkt,
		Sw:       s,
		InPort:   int32(in.Index),
		QPrio:    int16(prio),
		Lossless: lossless,
	}, prio)
}

// dropNoRoute is the routeless-destination cold path: count, panic unless
// the fault layer legitimized partitions, recycle.
//
//go:noinline
func (s *Switch) dropNoRoute(pkt *Packet) {
	s.NoRouteDrop++
	if !s.AllowNoRoute {
		panic(fmt.Sprintf("netsim: switch %s has no route to host %d", s.Name, pkt.Dst))
	}
	s.Pool.Put(pkt)
}

// dropAdmission is the buffer-refusal cold path: trace and recycle.
//
//go:noinline
func (s *Switch) dropAdmission(pkt *Packet, out *Port, prio int) {
	s.traceDrop(pkt, out, prio)
	s.Pool.Put(pkt)
}

// maybeMark applies ECN marking to an admitted ECT data packet. The RNG
// draw happens here, exactly as often as the pre-flattening code drew it
// for a marking-capable configuration.
func (s *Switch) maybeMark(pkt *Packet, out *Port, prio, size int) {
	if s.Buffer.ecnMark(out.queues[prio].bytes+size, pkt.VPrio, s.rng.Float64()) {
		pkt.CE = true
		s.ECNMarks++
		if s.Trace != nil {
			s.Trace.Trace(obs.Event{
				T: s.Eng.Now(), Kind: obs.Mark,
				Dev: s.Name, Port: out.Index, Queue: prio,
				Flow: pkt.FlowID, Seq: pkt.Seq,
				Bytes: size, QLen: out.queues[prio].bytes + size,
			})
		}
	}
}

// traceDrop emits a Drop event for a packet refused by buffer admission.
func (s *Switch) traceDrop(pkt *Packet, out *Port, prio int) {
	if s.Trace == nil {
		return
	}
	s.Trace.Trace(obs.Event{
		T: s.Eng.Now(), Kind: obs.Drop,
		Dev: s.Name, Port: out.Index, Queue: prio,
		Flow: pkt.FlowID, Seq: pkt.Seq,
		Bytes: pkt.Wire, QLen: out.QueueBytes(prio),
	})
}

// liveNextHop scans the ECMP set from the hashed candidate onward and
// returns the first port whose link is up, or nil when every next hop is
// down. The scan order is a pure function of (hash, set), so re-routing is
// deterministic.
func (s *Switch) liveNextHop(ports []int32, hash int) *Port {
	n := len(ports)
	start := hash % n
	for i := 1; i < n; i++ {
		p := s.Ports[ports[(start+i)%n]]
		if !p.IsDown() {
			return p
		}
	}
	return nil
}

// Reboot models an instantaneous switch restart: every egress queue is
// drained (packets recycled into the pool, shared-buffer accounting
// released, with PFC resumes sent upstream as ingress classes empty) and
// any pause state received from downstream is forgotten. Packets in flight
// toward the switch are admitted fresh on arrival. Dropped packets count
// as fault drops on their egress port.
func (s *Switch) Reboot() {
	for _, p := range s.Ports {
		p.dropQueued()
		for q := 0; q < p.NumQueues(); q++ {
			p.SetPaused(q, false)
		}
	}
}

// releaseItem returns a departing packet's bytes to the shared buffer and
// sends a PFC resume if its ingress class dropped below the XON point.
func (s *Switch) releaseItem(it TxItem) {
	if s.buf.release(int(it.InPort), int(it.QPrio), it.Pkt.Wire, it.Lossless) {
		s.Ports[it.InPort].SendPause(int(it.QPrio), false)
	}
}

// AuditBuffer checks the switch's conservation invariants between events:
// shared-pool and headroom occupancy must be non-negative, the headroom
// total must equal the per-class sum, and occupancy must equal the bytes
// actually sitting in the egress queues (admission charges on arrival,
// release happens at dequeue, and both stay within one event — so between
// events the books must balance exactly). It returns "" when every
// invariant holds, else a description of the first violation. Only sound
// from a sampler hook: mid-event the charge and the enqueue are
// legitimately out of step.
func (s *Switch) AuditBuffer() string {
	b := s.buf
	if b.used < 0 {
		return fmt.Sprintf("%s: shared-pool occupancy negative (%d bytes)", s.Name, b.used)
	}
	if b.hdrUsed < 0 {
		return fmt.Sprintf("%s: headroom occupancy negative (%d bytes)", s.Name, b.hdrUsed)
	}
	hdrSum := 0
	for i, h := range b.hdr {
		if h < 0 {
			return fmt.Sprintf("%s: class %d headroom negative (%d bytes)", s.Name, i, h)
		}
		if b.ing[i] < 0 {
			return fmt.Sprintf("%s: class %d ingress occupancy negative (%d bytes)", s.Name, i, b.ing[i])
		}
		hdrSum += h
	}
	if hdrSum != b.hdrUsed {
		return fmt.Sprintf("%s: headroom total %d != per-class sum %d", s.Name, b.hdrUsed, hdrSum)
	}
	queued := 0
	for _, p := range s.Ports {
		queued += p.TotalQueuedBytes()
	}
	if b.used+b.hdrUsed != queued {
		return fmt.Sprintf("%s: buffer accounting %d (shared %d + headroom %d) != queued bytes %d",
			s.Name, b.used+b.hdrUsed, b.used, b.hdrUsed, queued)
	}
	return ""
}

// AuditPFC checks PFC pause symmetry: with no pause/resume frames in
// flight (the caller gates on PacketPool.CtrlInFlight() == 0), every
// ingress class this switch has paused must be seen as paused by the
// upstream peer's egress queue, and vice versa. Peers with fewer queues
// than the class width are skipped — their clampPrio folds several
// priorities onto one queue, making per-priority symmetry ill-defined
// (host NICs are the in-tree case). Returns "" when symmetric, else a
// description of the first asymmetry.
func (s *Switch) AuditPFC() string {
	b := s.buf
	lossless := min(s.Buffer.LosslessPrios, b.nprios)
	for _, p := range s.Ports {
		peer := p.Peer
		if peer == nil || peer.NumQueues() < lossless {
			continue
		}
		for prio := 0; prio < lossless; prio++ {
			want := b.paused[p.Index*b.nprios+prio]
			if got := peer.Paused(prio); got != want {
				return fmt.Sprintf("%s: port %d prio %d pause asymmetry: ingress paused=%v, upstream %s egress paused=%v",
					s.Name, p.Index, prio, want, peer.name(), got)
			}
		}
	}
	return ""
}
