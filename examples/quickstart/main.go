// Quickstart: two PrioPlus flows on one physical queue.
//
// A low-priority flow owns a 100 Gb/s link; a high-priority flow starts
// 1 ms later and must take the whole link (strict virtual priority, O1);
// when it finishes, the low-priority flow must reclaim the bandwidth
// quickly (work conservation, O2). Both flows share physical queue 0 —
// the prioritization comes entirely from PrioPlus's delay channels.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"prioplus/internal/cc"
	"prioplus/internal/core"
	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
)

func main() {
	eng := sim.NewEngine()

	// A 3-host star: hosts 0 and 1 send to host 2 through one switch.
	// 100 Gb/s links with 3 us latency give the paper's ~12 us base RTT.
	cfg := topo.DefaultConfig()
	cfg.LinkDelay = 3 * sim.Microsecond
	nw := topo.Star(eng, 3, cfg)
	net := harness.New(nw, 42)

	// PrioPlus channel plan: priority i keeps the fabric delay in
	// [base + 4(i+1) us, +2.4 us more]. Higher priority = larger budget.
	base := nw.BaseRTT(0, 2)
	plan := core.DefaultPlan(base)
	newFlow := func(prio int) *core.PrioPlus {
		swift := cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(0, 2)))
		return core.New(swift, core.DefaultConfig(plan.Channel(prio), 8))
	}

	low := newFlow(1)
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 30, Prio: 0, Algo: low})

	var highDone sim.Time
	net.AddFlow(harness.Flow{
		Src: 1, Dst: 2, Size: 12 << 20, Prio: 0,
		Algo:       newFlow(6),
		StartAt:    sim.Millisecond,
		OnComplete: func(fct sim.Time) { highDone = eng.Now(); fmt.Printf("high-priority flow done: FCT %v\n", fct) },
	})

	rs := net.SampleRates(2, func(p *netsim.Packet) int { return p.Src }, 100*sim.Microsecond, 4*sim.Millisecond)
	eng.RunUntil(4 * sim.Millisecond)

	fmt.Println("\n   time     low (Gb/s)  high (Gb/s)")
	for i, t := range rs.Times {
		fmt.Printf("%7.1f ms %9.1f %12.1f\n", t.Millis(), rs.Rates[i][0], rs.Rates[i][1])
	}
	fmt.Printf("\nlow-priority yields at 1 ms (yields=%d, probes=%d) and reclaims after %v\n",
		low.Yields, low.Probes, highDone)
	ideal := sim.FromSeconds(float64(12<<20) / (100e9 / 8))
	fmt.Printf("high-priority ideal FCT %v — strict priority means it finishes close to that\n", ideal)
}
