package exp

import (
	"math/rand"
	"strconv"

	"prioplus/internal/fault"
	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/noise"
	"prioplus/internal/obs"
	"prioplus/internal/sched"
	"prioplus/internal/sim"
	"prioplus/internal/stats"
	"prioplus/internal/topo"
	"prioplus/internal/workload"
)

// FlowSchedConfig drives the generic flow-scheduling scenario (§6.2,
// Figs 11, 14, 16): WebSearch traffic on a fat-tree, flows grouped into
// priorities by size.
type FlowSchedConfig struct {
	Scheme   Scheme
	K        int     // fat-tree arity (paper: 6)
	NPrios   int     // virtual priorities
	Load     float64 // per-host-link load (paper: 0.7)
	Duration sim.Time
	Drain    sim.Time // extra time for in-flight flows to finish
	Seed     int64
	// AckPrioData is the PrioPlus* ablation: ACKs share the data queue.
	AckPrioData bool
	// PerPrioWorkload is the Fig 14 mode: instead of size-based grouping,
	// every flow draws a uniform-random priority so each priority level
	// carries a full WebSearch workload.
	PerPrioWorkload bool
	// NoiseScale scales the injected delay-measurement noise (1 = paper).
	NoiseScale float64
	// Obs, when non-nil, is attached to the run's network (trace sink and
	// live flow counters) and filled with the final device metrics; see
	// docs/OBSERVABILITY.md for the metric namespace.
	Obs *obs.Recorder
	// ObsFor, when non-nil and Obs is nil, supplies a fresh recorder per
	// run, keyed by the run's tag ("<scheme>/np=<n>"). Multi-run figures
	// (Fig11's sweep) need this: a Recorder is strictly per-engine, so one
	// shared Obs cannot serve them.
	ObsFor func(tag string) *obs.Recorder
	// Faults, when non-nil and non-empty, is installed on each run's
	// topology before traffic starts. A Plan is immutable, so the same
	// plan serves every run of a sweep.
	Faults *fault.Plan
}

// runTag identifies one flow-scheduling run within a figure's sweep.
func (cfg FlowSchedConfig) runTag() string {
	tag := cfg.Scheme.Name + "/np=" + strconv.Itoa(cfg.NPrios)
	if cfg.AckPrioData {
		tag += "/ackdata"
	}
	return tag
}

// DefaultFlowSchedConfig returns the paper's configuration at a reduced
// duration suitable for interactive runs.
func DefaultFlowSchedConfig(s Scheme, nprios int) FlowSchedConfig {
	return FlowSchedConfig{
		Scheme:     s,
		K:          6,
		NPrios:     nprios,
		Load:       0.7,
		Duration:   20 * sim.Millisecond,
		Drain:      30 * sim.Millisecond,
		Seed:       1,
		NoiseScale: 1,
	}
}

// FlowSchedResult is the outcome of one flow-scheduling run.
type FlowSchedResult struct {
	Scheme     string
	NPrios     int
	Flows      *stats.Collector
	Launched   int
	Unfinished int
	Pauses     int64 // total PFC pause transitions across the fabric
	Drops      int64
}

// RunFlowSched runs one scheme at one priority count.
func RunFlowSched(cfg FlowSchedConfig) FlowSchedResult {
	eng := sim.NewEngine()
	tc := topo.DefaultConfig()
	tc.LinkDelay = 1 * sim.Microsecond
	tc.Seed = cfg.Seed
	// Buffer per the paper's Fig 11 setting: 4.4 MB/Tbps of switch
	// capacity (Tomahawk4 ratio). A k-port 100G switch has k*100G. PFC
	// headroom is sized from the link parameters (2 link BDPs plus a few
	// MTUs of response time), so its total reservation scales with the
	// number of lossless priorities — the cliff beyond ~6 priorities that
	// motivates the paper.
	tc.Buffer = netsim.DefaultBufferConfig()
	tc.Buffer.TotalBytes = int(4.4e6 * float64(cfg.K) * 100 / 1000)
	linkBDP := tc.HostRate.BDP(2 * tc.LinkDelay)
	tc.Buffer.HeadroomBytes = int(2*linkBDP) + 8*(netsim.DefaultMTU+netsim.HeaderBytes)
	cfg.Scheme.Fabric(&tc, cfg.NPrios)
	nw := topo.FatTree(eng, cfg.K, tc)
	opts := cfg.Scheme.NetOptions()
	if cfg.AckPrioData {
		opts = append(opts, harness.WithAckPrioData())
	}
	if cfg.NoiseScale > 0 {
		nm := noise.NewLongTail(rand.New(rand.NewSource(cfg.Seed+7)), cfg.NoiseScale)
		opts = append(opts, harness.WithNoise(nm.Sample))
	}
	opts = append(opts, harness.WithFaults(cfg.Faults))
	net := harness.New(nw, cfg.Seed, opts...)
	rec := cfg.Obs
	if rec == nil && cfg.ObsFor != nil {
		rec = cfg.ObsFor(cfg.runTag())
	}
	if rec != nil {
		net.Observe(rec)
		if rec.Series != nil {
			rec.Series.ReserveUntil(cfg.Duration + cfg.Drain)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	dist := workload.WebSearch()
	events := workload.Poisson(workload.PoissonConfig{
		Hosts:    len(nw.Hosts),
		Load:     cfg.Load,
		LinkBps:  float64(tc.HostRate),
		Dist:     dist,
		Duration: cfg.Duration,
		Rng:      rng,
	})

	// Size-based priority assignment from a workload sample (the paper's
	// stand-in for flow-scheduling algorithms). Byte-balanced boundaries
	// put the many small (latency-sensitive) flows into the top no-probe
	// priorities (§4.4) and give each priority a similar byte load.
	sampleRng := rand.New(rand.NewSource(cfg.Seed + 29))
	sizeSample := make([]int64, 20000)
	for i := range sizeSample {
		sizeSample[i] = dist.Sample(sampleRng)
	}
	groups := sched.NewByteGroups(cfg.NPrios, sizeSample)

	res := FlowSchedResult{Scheme: cfg.Scheme.Name, NPrios: cfg.NPrios, Flows: &stats.Collector{}}
	prioRng := rand.New(rand.NewSource(cfg.Seed + 31))
	for _, ev := range events {
		ev := ev
		prio := groups.PriorityFor(ev.Size)
		if cfg.PerPrioWorkload {
			prio = prioRng.Intn(cfg.NPrios)
		}
		base := nw.BaseRTT(ev.Src, ev.Dst)
		env := FlowEnv{
			Prio:    prio,
			NPrios:  cfg.NPrios,
			BaseRTT: base,
			BDPPkts: tc.HostRate.BDP(base) / netsim.DefaultMTU,
			Size:    ev.Size,
			Ideal:   IdealFCT(ev.Size, tc.HostRate, base),
			Now:     ev.At,
		}
		queue := cfg.Scheme.QueueFor(prio, cfg.NPrios, tc.Queues)
		res.Launched++
		net.AddFlow(harness.Flow{
			Src: ev.Src, Dst: ev.Dst, Size: ev.Size, Prio: queue,
			Algo:    cfg.Scheme.NewAlgo(env),
			StartAt: ev.At,
			OnComplete: func(fct sim.Time) {
				res.Flows.Add(stats.FlowRecord{Size: ev.Size, FCT: fct, Ideal: env.Ideal, Prio: prio})
			},
		})
	}
	eng.RunUntil(cfg.Duration + cfg.Drain)
	res.Unfinished = res.Launched - res.Flows.Count()
	for _, sw := range nw.Switches {
		res.Pauses += sw.PausesSent()
		res.Drops += sw.Drops()
	}
	if rec != nil {
		net.CollectMetrics(rec)
	}
	return res
}

// Fig11Row is one (scheme, nprios) cell of Fig 11's sweep.
type Fig11Row struct {
	Scheme   string
	NPrios   int
	AvgAll   float64 // mean slowdown, all flows
	P99All   float64
	AvgSmall float64
	P99Small float64
	AvgMid   float64
	P99Mid   float64
	AvgLarge float64
	P99Large float64
}

func rowFrom(r FlowSchedResult) Fig11Row {
	c := r.Flows
	return Fig11Row{
		Scheme:   r.Scheme,
		NPrios:   r.NPrios,
		AvgAll:   c.MeanSlowdown(),
		P99All:   c.PercentileSlowdown(0.99),
		AvgSmall: c.ByClass(stats.Small).MeanSlowdown(),
		P99Small: c.ByClass(stats.Small).PercentileSlowdown(0.99),
		AvgMid:   c.ByClass(stats.Middle).MeanSlowdown(),
		P99Mid:   c.ByClass(stats.Middle).PercentileSlowdown(0.99),
		AvgLarge: c.ByClass(stats.Large).MeanSlowdown(),
		P99Large: c.ByClass(stats.Large).PercentileSlowdown(0.99),
	}
}

// applyOptions folds the cross-cutting Options knobs into a sweep's base
// config: a non-zero Seed overrides base.Seed and a non-nil fault plan
// overrides base.Faults. A Recorder is not applied — sweeps own several
// runs, so per-run recorders arrive through ObsFor — and Perturb does not
// apply (the flow-scheduling noise model is seeded from the config).
func (cfg FlowSchedConfig) applyOptions(o Options) FlowSchedConfig {
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	if o.Faults != nil {
		cfg.Faults = o.Faults
	}
	return cfg
}

// Fig11 sweeps priority counts for the schemes of Fig 11a-d: Physical
// (max 8 queues), Physical*, and PrioPlus, all with Swift.
func Fig11(prioCounts []int, base FlowSchedConfig, o Options) []Fig11Row {
	base = base.applyOptions(o)
	var rows []Fig11Row
	for _, np := range prioCounts {
		for _, s := range []Scheme{SwiftPhysical(8), SwiftPhysicalIdeal(), PrioPlusSwift()} {
			cfg := base
			cfg.Scheme = s
			cfg.NPrios = np
			rows = append(rows, rowFrom(RunFlowSched(cfg)))
		}
	}
	return rows
}

// Fig16 compares PrioPlus, PrioPlus* (ACKs in the data queue), and HPCC in
// the flow-scheduling scenario (Appendix A.3).
func Fig16(nprios int, base FlowSchedConfig, o Options) []Fig11Row {
	base = base.applyOptions(o)
	var rows []Fig11Row
	for _, v := range []struct {
		s       Scheme
		ackData bool
		name    string
	}{
		{PrioPlusSwift(), false, "PrioPlus+Swift"},
		{PrioPlusSwift(), true, "PrioPlus*+Swift"},
		{HPCCPhysical(8), false, "Physical+HPCC"},
	} {
		cfg := base
		cfg.Scheme = v.s
		cfg.NPrios = nprios
		cfg.AckPrioData = v.ackData
		r := RunFlowSched(cfg)
		row := rowFrom(r)
		row.Scheme = v.name
		rows = append(rows, row)
	}
	return rows
}

// Fig14Row is one (priority band, size class) cell of Fig 14: FCT
// normalized against Physical*+Swift.
type Fig14Row struct {
	Scheme string
	Band   string // "high" (11), "middle" (6-10), "low" (0-5)
	Class  string
	Norm   float64 // mean FCT / Physical* mean FCT
}

// Fig14 runs the per-priority workload mode with 12 priorities and
// normalizes each scheme's per-band, per-class FCT by Physical*+Swift.
func Fig14(base FlowSchedConfig, schemes []Scheme, o Options) []Fig14Row {
	base = base.applyOptions(o)
	const nprios = 12
	run := func(s Scheme, ackData bool) FlowSchedResult {
		cfg := base
		cfg.Scheme = s
		cfg.NPrios = nprios
		cfg.PerPrioWorkload = true
		cfg.AckPrioData = ackData
		return RunFlowSched(cfg)
	}
	ref := run(SwiftPhysicalIdeal(), false)
	bands := []struct {
		name   string
		lo, hi int
	}{{"high", 11, 11}, {"middle", 6, 10}, {"low", 0, 5}}
	classes := []stats.SizeClass{stats.Small, stats.Middle, stats.Large}
	var rows []Fig14Row
	for _, s := range schemes {
		r := run(s, false)
		for _, b := range bands {
			for _, cl := range classes {
				sel := func(c *stats.Collector) *stats.Collector {
					return c.Filter(func(f stats.FlowRecord) bool {
						return f.Prio >= b.lo && f.Prio <= b.hi && stats.ClassOf(f.Size) == cl
					})
				}
				den := sel(ref.Flows).MeanFCT()
				num := sel(r.Flows).MeanFCT()
				norm := 0.0
				if den > 0 {
					norm = float64(num) / float64(den)
				}
				rows = append(rows, Fig14Row{Scheme: s.Name, Band: b.name, Class: cl.String(), Norm: norm})
			}
		}
	}
	return rows
}
