// Package exp contains one driver per table and figure of the paper's
// evaluation. Each driver builds the scenario's topology and workload,
// runs the schemes under comparison, and returns printable rows whose
// shape can be checked against the paper (EXPERIMENTS.md records both).
package exp

import (
	"prioplus/internal/cc"
	"prioplus/internal/core"
	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/sched"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
)

// FlowEnv is everything a Scheme needs to build one flow's controller.
type FlowEnv struct {
	Prio    int // virtual priority, 0 = lowest
	NPrios  int
	BaseRTT sim.Time
	BDPPkts float64
	Size    int64
	Ideal   sim.Time // ideal FCT (size/line rate + base RTT)
	Now     sim.Time // flow arrival time (for D2TCP deadlines)
}

// Scheme is one transport configuration under comparison: which CC a flow
// runs, which physical queue its data uses, and how the fabric must be
// configured.
type Scheme struct {
	Name string
	// Queues returns the number of physical priority queues the fabric
	// needs for nprios virtual priorities (including the ACK queue).
	Queues func(nprios int) int
	// LosslessPrios returns how many of those queues are PFC-lossless.
	LosslessPrios func(nprios int) int
	// QueueFor maps a virtual priority to the physical data queue.
	QueueFor func(prio, nprios, queues int) int
	// NewAlgo builds the flow's congestion controller.
	NewAlgo func(env FlowEnv) cc.Algorithm
	// HeadroomFree marks the ideal-physical (Physical*) buffer model.
	HeadroomFree bool
	// ECNK enables ECN marking at this byte threshold (0 = off).
	ECNK int
	// INT enables in-network telemetry stamping (HPCC).
	INT bool
}

// swiftFor builds the paper's default Swift for a path.
func swiftFor(env FlowEnv, scaling bool) *cc.Swift {
	cfg := cc.DefaultSwiftConfig(env.BaseRTT, env.BDPPkts)
	cfg.TargetScaling = scaling
	return cc.NewSwift(cfg)
}

// SwiftPhysical is Swift (original, with target scaling) on real physical
// priority queues, the paper's main baseline. With more virtual priorities
// than queues, priorities are squashed onto the available queues.
func SwiftPhysical(maxQueues int) Scheme {
	return Scheme{
		Name:          "Physical+Swift",
		Queues:        func(nprios int) int { return min(nprios, maxQueues) + 1 },
		LosslessPrios: func(nprios int) int { return min(nprios, maxQueues) },
		QueueFor: func(prio, nprios, queues int) int {
			return sched.PhysicalQueueFor(prio, nprios, queues-1)
		},
		NewAlgo: func(env FlowEnv) cc.Algorithm { return swiftFor(env, true) },
	}
}

// SwiftPhysicalIdeal is Physical*: unlimited lossless priority queues whose
// PFC headroom does not consume shared buffer.
func SwiftPhysicalIdeal() Scheme {
	s := SwiftPhysical(1 << 20)
	s.Name = "Physical*+Swift"
	s.HeadroomFree = true
	return s
}

// NoCCPhysicalIdeal is Physical* without congestion control: flows blast
// at line rate and rely on priority queues plus PFC. The sender's
// outstanding data is capped at 8 BDP — the finite TX resources a real
// NIC has — so a PFC-paused fabric holds a bounded number of in-flight
// packets instead of the flow's entire remaining size (uncapped, the
// quick-scale fig18 run grew to tens of GB of RSS; see CHANGES.md PR 3).
// The scheme stays uncontrolled: it never reacts to delay, loss, or marks.
func NoCCPhysicalIdeal() Scheme {
	s := SwiftPhysicalIdeal()
	s.Name = "Physical* w/o CC"
	s.NewAlgo = func(env FlowEnv) cc.Algorithm {
		return cc.NewNoCCWindow(8 * env.BDPPkts * netsim.DefaultMTU)
	}
	return s
}

// PrioPlusSwift runs every flow in one physical queue (plus the ACK
// queue), with PrioPlus channels providing the virtual priorities.
func PrioPlusSwift() Scheme {
	return Scheme{
		Name:          "PrioPlus+Swift",
		Queues:        func(int) int { return 2 },
		LosslessPrios: func(int) int { return 1 },
		QueueFor:      func(prio, nprios, queues int) int { return 0 },
		NewAlgo: func(env FlowEnv) cc.Algorithm {
			plan := core.DefaultPlan(env.BaseRTT)
			return core.New(swiftFor(env, false), core.DefaultConfig(plan.Channel(env.Prio), env.NPrios))
		},
	}
}

// PrioPlusLEDBAT is PrioPlus wrapped around LEDBAT (§6.2).
func PrioPlusLEDBAT() Scheme {
	s := PrioPlusSwift()
	s.Name = "PrioPlus+LEDBAT"
	s.NewAlgo = func(env FlowEnv) cc.Algorithm {
		plan := core.DefaultPlan(env.BaseRTT)
		l := cc.NewLEDBAT(cc.DefaultLEDBATConfig(env.BaseRTT, env.BDPPkts))
		return core.New(l, core.DefaultConfig(plan.Channel(env.Prio), env.NPrios))
	}
	return s
}

// SwiftVirtual is the paper's §3.2 strawman: Swift in a single queue with
// per-priority target delays (base RTT + 4 us .. 32 us, higher priority =
// larger target), with or without target scaling.
func SwiftVirtual(scaling bool) Scheme {
	name := "Swift-multi-target"
	if scaling {
		name += "+scaling"
	}
	return Scheme{
		Name:          name,
		Queues:        func(int) int { return 2 },
		LosslessPrios: func(int) int { return 1 },
		QueueFor:      func(prio, nprios, queues int) int { return 0 },
		NewAlgo: func(env FlowEnv) cc.Algorithm {
			cfg := cc.DefaultSwiftConfig(env.BaseRTT, env.BDPPkts)
			cfg.TargetScaling = scaling
			// Targets 4..32 us above base, ascending with priority.
			span := 28 * sim.Microsecond
			var off sim.Time
			if env.NPrios > 1 {
				off = sim.Time(env.Prio) * span / sim.Time(env.NPrios-1)
			}
			cfg.Target = env.BaseRTT + 4*sim.Microsecond + off
			return cc.NewSwift(cfg)
		},
	}
}

// D2TCP runs all flows in one queue with ECN marking; deadlines scale from
// 1.5x ideal FCT (highest priority) to 12x (lowest), per §6.
func D2TCP() Scheme {
	return Scheme{
		Name:          "D2TCP",
		Queues:        func(int) int { return 2 },
		LosslessPrios: func(int) int { return 1 },
		QueueFor:      func(prio, nprios, queues int) int { return 0 },
		ECNK:          100_000,
		NewAlgo: func(env FlowEnv) cc.Algorithm {
			cfg := cc.DefaultDCTCPConfig(env.BDPPkts)
			mult := 12.0
			if env.NPrios > 1 {
				mult = 1.5 + (12-1.5)*float64(env.NPrios-1-env.Prio)/float64(env.NPrios-1)
			}
			cfg.Deadline = env.Now + sim.Time(mult*float64(env.Ideal))
			return cc.NewDCTCP(cfg)
		},
	}
}

// DCQCNPhysical is DCQCN on physical priority queues with ECN marking —
// the standard RoCEv2 deployment, provided as an extra baseline beyond the
// paper's comparison set.
func DCQCNPhysical(maxQueues int) Scheme {
	s := SwiftPhysical(maxQueues)
	s.Name = "Physical+DCQCN"
	s.ECNK = 100_000
	s.NewAlgo = func(env FlowEnv) cc.Algorithm {
		rate := netsim.Rate(float64(env.BDPPkts*netsim.DefaultMTU*8) / env.BaseRTT.Seconds())
		return cc.NewDCQCN(cc.DefaultDCQCNConfig(rate))
	}
	return s
}

// TIMELYPhysical is TIMELY on physical priority queues — the RTT-gradient
// baseline, provided beyond the paper's comparison set.
func TIMELYPhysical(maxQueues int) Scheme {
	s := SwiftPhysical(maxQueues)
	s.Name = "Physical+TIMELY"
	s.NewAlgo = func(env FlowEnv) cc.Algorithm {
		lineBps := env.BDPPkts * netsim.DefaultMTU * 8 / env.BaseRTT.Seconds()
		return cc.NewTIMELY(cc.DefaultTIMELYConfig(env.BaseRTT, lineBps))
	}
	return s
}

// HPCCPhysical is HPCC on physical priority queues with INT telemetry.
func HPCCPhysical(maxQueues int) Scheme {
	s := SwiftPhysical(maxQueues)
	s.Name = "Physical+HPCC"
	s.INT = true
	s.NewAlgo = func(env FlowEnv) cc.Algorithm {
		return cc.NewHPCC(cc.DefaultHPCCConfig(env.BDPPkts))
	}
	return s
}

// Fabric applies a scheme's switch-side requirements to a topology config.
func (s Scheme) Fabric(cfg *topo.Config, nprios int) {
	cfg.Queues = s.Queues(nprios)
	cfg.Buffer.LosslessPrios = s.LosslessPrios(nprios)
	cfg.Buffer.HeadroomFree = s.HeadroomFree
	if s.ECNK > 0 {
		cfg.Buffer.ECNKMin = s.ECNK
		cfg.Buffer.ECNKMax = s.ECNK
	}
}

// NetOptions returns the harness options the scheme's hosts and fabric
// need (INT stamping for HPCC). Pass them to harness.New.
func (s Scheme) NetOptions() []harness.Option {
	var opts []harness.Option
	if s.INT {
		opts = append(opts, harness.WithINT())
	}
	return opts
}

// IdealFCT returns a flow's unloaded completion time on a path.
func IdealFCT(size int64, rate netsim.Rate, baseRTT sim.Time) sim.Time {
	return sim.FromSeconds(float64(size)/rate.BytesPerSec()) + baseRTT
}
