package cc

import (
	"math"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// DCTCPConfig parameterizes DCTCP [Alizadeh et al., SIGCOMM'10] and its
// deadline-aware extension D2TCP [Vamanan et al., SIGCOMM'12].
type DCTCPConfig struct {
	// G is the EWMA gain for the marked fraction (DCTCP recommends 1/16).
	G float64
	// MinCwnd/MaxCwnd bound the window in packets.
	MinCwnd float64
	MaxCwnd float64
	// Deadline, when nonzero, turns the controller into D2TCP: the window
	// reduction becomes alpha^d/2 where d is the deadline-imminence
	// factor, so urgent flows back off less.
	Deadline sim.Time // absolute completion deadline
}

// DefaultDCTCPConfig returns standard DCTCP parameters for a path with the
// given BDP in packets.
func DefaultDCTCPConfig(bdpPkts float64) DCTCPConfig {
	return DCTCPConfig{
		G:       1.0 / 16,
		MinCwnd: 1,
		MaxCwnd: math.Max(bdpPkts*1.2, 4),
	}
}

// DCTCP implements DCTCP, and D2TCP when a deadline is set.
type DCTCP struct {
	cfg  DCTCPConfig
	drv  Driver
	dlog DecisionLogger
	cwnd float64

	alpha       float64
	ackedBytes  int64
	markedBytes int64
	windowEnd   int64 // alpha update boundary (snd.nxt at window start)
	srtt        sim.Time
	ceSeen      bool // CE observed in the current window
	start       sim.Time
}

// NewDCTCP returns a DCTCP (or D2TCP, if cfg.Deadline is set) instance.
func NewDCTCP(cfg DCTCPConfig) *DCTCP { return &DCTCP{cfg: cfg} }

// Name implements Algorithm.
func (d *DCTCP) Name() string {
	if d.cfg.Deadline > 0 {
		return "d2tcp"
	}
	return "dctcp"
}

// WantsECT implements Algorithm.
func (d *DCTCP) WantsECT() bool { return true }

// Start implements Algorithm: slow-start from one BDP like the paper's
// RDMA-style configuration (the evaluation compares steady-state
// prioritization, not ramp-up).
func (d *DCTCP) Start(drv Driver) {
	d.drv = drv
	d.dlog = DecisionLoggerOf(drv)
	if d.cwnd == 0 {
		bdp := drv.LineRate().BDP(drv.BaseRTT()) / float64(drv.MTU())
		d.cwnd = d.clamp(bdp)
	}
	d.srtt = drv.BaseRTT()
	d.start = drv.Now()
	d.windowEnd = drv.SndNxt()
}

func (d *DCTCP) clamp(w float64) float64 {
	return math.Min(math.Max(w, d.cfg.MinCwnd), d.cfg.MaxCwnd)
}

// penalty returns the window-reduction fraction: alpha/2 for DCTCP,
// alpha^d/2 for D2TCP where d is the deadline-imminence factor in [0.5, 2].
func (d *DCTCP) penalty(now sim.Time) float64 {
	if d.cfg.Deadline <= 0 {
		return d.alpha / 2
	}
	remaining := float64(d.drv.RemainingBytes())
	rate := d.cwnd * float64(d.drv.MTU()) / math.Max(d.srtt.Seconds(), 1e-9)
	need := remaining / math.Max(rate, 1)
	left := (d.cfg.Deadline - now).Seconds()
	var imm float64
	if left <= 0 {
		imm = 2
	} else {
		imm = need / left
	}
	imm = math.Min(math.Max(imm, 0.5), 2)
	return math.Pow(d.alpha, imm) / 2
}

// OnAck implements Algorithm.
func (d *DCTCP) OnAck(fb Feedback) {
	if fb.Delay > 0 {
		if d.srtt == 0 {
			d.srtt = fb.Delay
		} else {
			d.srtt = (7*d.srtt + fb.Delay) / 8
		}
	}
	d.ackedBytes += int64(fb.AckedBytes)
	if fb.CE {
		d.markedBytes += int64(fb.AckedBytes)
		d.ceSeen = true
	}
	if fb.CumAck >= d.windowEnd {
		// One window's worth of data acknowledged: fold the marked
		// fraction into alpha and apply at most one reduction.
		var f float64
		if d.ackedBytes > 0 {
			f = float64(d.markedBytes) / float64(d.ackedBytes)
		}
		d.alpha = (1-d.cfg.G)*d.alpha + d.cfg.G*f
		if d.ceSeen {
			d.cwnd *= 1 - d.penalty(fb.Now)
			if d.dlog != nil {
				d.dlog.LogDecision(obs.SpanDecCut, fb.Delay, d.clamp(d.cwnd), d.alpha)
			}
		}
		d.ackedBytes, d.markedBytes, d.ceSeen = 0, 0, false
		d.windowEnd = d.drv.SndNxt()
	}
	if !fb.CE {
		ackedPkts := float64(fb.AckedBytes) / float64(d.drv.MTU())
		d.cwnd += ackedPkts / math.Max(d.cwnd, 1)
	}
	d.cwnd = d.clamp(d.cwnd)
}

// OnProbeAck implements Algorithm.
func (d *DCTCP) OnProbeAck(fb Feedback) {}

// OnRTO implements Algorithm.
func (d *DCTCP) OnRTO() { d.cwnd = d.clamp(d.cwnd / 2) }

// CwndBytes implements Algorithm.
func (d *DCTCP) CwndBytes() float64 { return d.cwnd * float64(d.drv.MTU()) }
