package stream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"prioplus/internal/runner"
)

func TestHubFanOutOrder(t *testing.T) {
	h := NewHub()
	a := h.Subscribe(16)
	b := h.Subscribe(16)
	for i := 0; i < 10; i++ {
		h.Publish("run1", []byte(fmt.Sprintf(`{"i":%d}`, i)))
	}
	h.Close()
	for _, sub := range []*Subscriber{a, b} {
		i := 0
		for msg := range sub.C() {
			want := fmt.Sprintf(`{"i":%d}`, i)
			if msg.Run != "run1" || string(msg.Line) != want {
				t.Fatalf("msg %d = %q (run %q), want %q", i, msg.Line, msg.Run, want)
			}
			i++
		}
		if i != 10 {
			t.Fatalf("subscriber got %d lines, want 10", i)
		}
		if sub.Dropped() != 0 {
			t.Fatalf("fast subscriber dropped %d", sub.Dropped())
		}
	}
}

// TestHubSlowConsumerDrops pins the backpressure contract: a full
// subscriber buffer drops with a counter and never blocks the publisher.
// Run under -race in CI, with a consumer that reads nothing until the
// publisher has finished.
func TestHubSlowConsumerDrops(t *testing.T) {
	h := NewHub()
	slow := h.Subscribe(4)
	const n = 100
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			h.Publish("r", []byte("line"))
		}
	}()
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("publisher blocked for %v on a slow consumer", elapsed)
	}
	h.Close()
	got := 0
	for range slow.C() {
		got++
	}
	if got != 4 {
		t.Errorf("slow consumer received %d lines, want 4 (buffer size)", got)
	}
	if slow.Dropped() != n-4 {
		t.Errorf("dropped = %d, want %d", slow.Dropped(), n-4)
	}
	_, published, dropped := h.Stats()
	if published != n || dropped != n-4 {
		t.Errorf("hub stats published=%d dropped=%d, want %d/%d", published, dropped, n, n-4)
	}
}

func TestHubUnsubscribe(t *testing.T) {
	h := NewHub()
	s := h.Subscribe(4)
	h.Publish("r", []byte("a"))
	h.Unsubscribe(s)
	h.Publish("r", []byte("b"))
	var lines []string
	for msg := range s.C() {
		lines = append(lines, string(msg.Line))
	}
	if len(lines) != 1 || lines[0] != "a" {
		t.Errorf("lines after unsubscribe = %v, want [a]", lines)
	}
	// Double unsubscribe must not panic.
	h.Unsubscribe(s)
}

func TestLineWriterSplitsExactly(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(64)
	lw := h.ArtifactWriter("run7")
	// Write in awkward chunks straddling line boundaries.
	payload := "{\"type\":\"meta\",\"v\":1}\n{\"type\":\"sample\",\"v\":[1,2]}\n{\"type\":\"metric\"}\n"
	for i := 0; i < len(payload); i += 7 {
		end := i + 7
		if end > len(payload) {
			end = len(payload)
		}
		if _, err := lw.Write([]byte(payload[i:end])); err != nil {
			t.Fatal(err)
		}
	}
	lw.Close()
	h.Close()
	var got []string
	for msg := range sub.C() {
		if msg.Run != "run7" {
			t.Fatalf("run = %q", msg.Run)
		}
		got = append(got, string(msg.Line))
	}
	want := strings.Split(strings.TrimSuffix(payload, "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("got %d lines, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestServerEndpoints(t *testing.T) {
	var reg runner.Registry
	st := reg.Add("fig10b/seed=1", "fig10b", 1)
	st.Start()
	st.Live.Events.Add(500)

	srv := NewServer(&reg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	// /events: subscribe first so published lines reach us.
	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/events content-type = %q", ct)
	}

	// Give the handler a moment to subscribe before publishing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n, _, _ := srv.Hub.Stats(); n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SSE handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	lines := []string{`{"type":"meta","v":1,"run":"fig10b"}`, `{"type":"metric","metric":{"name":"net/drops","v":0}}`}
	for _, l := range lines {
		srv.Hub.Publish("fig10b", []byte(l))
	}

	// /metrics while the stream is live.
	var metrics MetricsSnapshot
	getJSON(t, base+"/metrics", &metrics)
	if metrics.Runtime.Goroutines < 1 || metrics.Runtime.HeapBytes <= 0 {
		t.Errorf("implausible runtime gauges: %+v", metrics.Runtime)
	}
	if metrics.Stream.Subscribers != 1 || metrics.Stream.Published != 2 {
		t.Errorf("stream stats = %+v", metrics.Stream)
	}

	// /runs reflects the registry.
	var runs RunsSnapshot
	getJSON(t, base+"/runs", &runs)
	if runs.Batch.Total != 1 || runs.Batch.Running != 1 || runs.Batch.Events != 500 {
		t.Errorf("batch = %+v", runs.Batch)
	}
	if len(runs.Runs) != 1 || runs.Runs[0].Name != "fig10b/seed=1" {
		t.Errorf("runs = %+v", runs.Runs)
	}

	// Close drains: the SSE body must contain both lines, byte-identical,
	// then terminate.
	done := make(chan error, 1)
	var body bytes.Buffer
	go func() {
		_, err := body.ReadFrom(resp.Body)
		done <- err
	}()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE connection did not terminate on Close")
	}
	var data []string
	sc := bufio.NewScanner(&body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			data = append(data, strings.TrimPrefix(sc.Text(), "data: "))
		}
	}
	if len(data) < 2 {
		t.Fatalf("SSE data lines = %v, want at least the 2 published", data)
	}
	for i, want := range lines {
		if data[i] != want {
			t.Errorf("SSE line %d = %q, want %q", i, data[i], want)
		}
	}
}

// getJSON fetches url and decodes its JSON body into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
}
