package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"prioplus/internal/obs"
)

// RunParams is the JSON-serializable part of a run request: the knobs a
// remote caller may set when submitting an experiment by id. It is the
// wire-facing sibling of Options — Options carries runtime wiring
// (recorders, fault plans) that cannot travel over HTTP, RunParams carries
// only data. Seed is the config-driven experiments' simulation seed; the
// micro experiments keep their published baked-in seeds regardless (the
// same contract the CLI's -seed flag has always had), which is what keeps
// the fingerprint manifest stable across callers.
type RunParams struct {
	// Seed seeds the config-driven experiments (fig11..fig18, faultsweep).
	Seed int64 `json:"seed"`
	// Full runs at the paper's full scale (slower).
	Full bool `json:"full,omitempty"`
	// Series also prints inline time-series data where available.
	Series bool `json:"series,omitempty"`
	// Perturb inflates the Nth delay-noise draw by 1us (micro experiments;
	// a controlled divergence for the diff tooling).
	Perturb uint64 `json:"perturb,omitempty"`
}

// Canonical returns the canonical JSON encoding of p: fixed field order,
// zero-valued optional fields omitted. Two RunParams that decode equal
// always canonicalize to the same bytes, whatever field order or explicit
// defaults the caller's JSON used — the property the serve layer's result
// cache keys depend on.
func (p RunParams) Canonical() string {
	b, err := json.Marshal(p)
	if err != nil {
		// RunParams holds only scalars; Marshal cannot fail.
		panic(err)
	}
	return string(b)
}

// DecodeParams strictly parses a JSON params object into a copy of base:
// absent fields keep base's (typically the spec's default) values, unknown
// fields are an error rather than silently ignored. An empty or null
// payload returns base unchanged.
func DecodeParams(data []byte, base RunParams) (RunParams, error) {
	p := base
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 || bytes.Equal(trimmed, []byte("null")) {
		return p, nil
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return base, fmt.Errorf("bad params: %w", err)
	}
	return p, nil
}

// Sink hands out per-run observability recorders during one experiment
// invocation. The CLI's flag-driven sink and the serve layer's job sink
// both implement it; drivers see only the factory. A nil Sink disables
// instrumentation entirely.
type Sink interface {
	// Recorder returns the recorder for the run identified by tag,
	// retaining it so the caller can flush artifacts and digests after the
	// experiment finishes.
	Recorder(tag string) *obs.Recorder
}

// Spec is one registered experiment: everything a front end (CLI, batch
// runner, job server) needs to enumerate, describe, validate, and run it.
type Spec struct {
	// ID is the experiment id ("fig10b"); unique within the registry.
	ID string
	// Describe is a one-line human description for usage text and the
	// /experiments endpoint.
	Describe string
	// Defaults are the parameter values a run gets when the caller leaves
	// them unset.
	Defaults RunParams
	// Run executes the experiment with the given parameters, wiring any
	// network runs through sink (which may be nil), and writes the figure
	// output to w.
	Run func(p RunParams, sink Sink, w io.Writer) error
}

var (
	registry = map[string]Spec{}
	regOrder []string
)

// Register adds s to the package registry. It panics on a duplicate or
// empty id or a nil Run — registration happens in init, so a bad spec is a
// programming error, not a runtime condition.
func Register(s Spec) {
	if s.ID == "" || s.Run == nil {
		panic("exp.Register: spec needs an ID and a Run func")
	}
	if _, dup := registry[s.ID]; dup {
		panic("exp.Register: duplicate experiment id " + s.ID)
	}
	registry[s.ID] = s
	regOrder = append(regOrder, s.ID)
}

// Lookup returns the spec registered under id.
func Lookup(id string) (Spec, bool) {
	s, ok := registry[id]
	return s, ok
}

// IDs returns every registered experiment id in registration order — the
// order the suite runs and the manifest lists them.
func IDs() []string {
	out := make([]string, len(regOrder))
	copy(out, regOrder)
	return out
}

// Specs returns every registered spec in registration order.
func Specs() []Spec {
	out := make([]Spec, 0, len(regOrder))
	for _, id := range regOrder {
		out = append(out, registry[id])
	}
	return out
}

// SortedIDs returns every registered id in lexical order, for displays
// that want a stable alphabetical listing rather than suite order.
func SortedIDs() []string {
	out := IDs()
	sort.Strings(out)
	return out
}
