package workload

import (
	"strings"
	"testing"

	"prioplus/internal/sim"
)

const sampleTrace = `150 3
1 0 2 1 2 2 3:100 4:50
2 250 1 5 1 6:10
3 1000 3 1 2 3 1 4:300
`

func TestParseCoflowTrace(t *testing.T) {
	cfs, err := ParseCoflowTrace(strings.NewReader(sampleTrace), 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfs) != 3 {
		t.Fatalf("parsed %d coflows, want 3", len(cfs))
	}
	cf := cfs[0]
	if cf.ID != 1 || cf.Arrival != 0 {
		t.Errorf("coflow 1 header wrong: %+v", cf)
	}
	// 2 mappers x 2 reducers = 4 flows; sizes 100MB/2 and 50MB/2.
	if len(cf.Flows) != 4 {
		t.Fatalf("coflow 1 has %d flows, want 4", len(cf.Flows))
	}
	var total int64
	for _, f := range cf.Flows {
		total += f.Size
	}
	if total != 2*50e6+2*25e6 {
		t.Errorf("coflow 1 total = %d, want 150 MB", total)
	}
	if cfs[1].Arrival != 250*sim.Millisecond {
		t.Errorf("coflow 2 arrival = %v, want 250ms", cfs[1].Arrival)
	}
	// Coflow 3: mapper 4? no — mappers {1,2,3}, reducer 4: 3 flows.
	if len(cfs[2].Flows) != 3 {
		t.Errorf("coflow 3 has %d flows, want 3", len(cfs[2].Flows))
	}
}

func TestParseCoflowTraceHostWrap(t *testing.T) {
	// Machine indexes beyond the host count wrap modulo hosts.
	cfs, err := ParseCoflowTrace(strings.NewReader("10 1\n1 0 1 9 1 10:1\n"), 4)
	if err != nil {
		t.Fatal(err)
	}
	f := cfs[0].Flows[0]
	if f.Src != (9-1)%4 || f.Dst != (10-1)%4 {
		t.Errorf("wrapped src/dst = %d/%d", f.Src, f.Dst)
	}
}

func TestParseCoflowTraceSelfFlowsDropped(t *testing.T) {
	// Mapper == reducer machines produce no flow; an all-local coflow is
	// an error.
	_, err := ParseCoflowTrace(strings.NewReader("10 1\n1 0 1 3 1 3:5\n"), 10)
	if err == nil {
		t.Error("all-local coflow did not error")
	}
}

func TestParseCoflowTraceErrors(t *testing.T) {
	cases := []string{
		"",                        // empty
		"10 1\n1 0\n",             // short line
		"10 1\n1 x 1 1 1 2:5\n",   // bad arrival
		"10 1\n1 0 1 1 1 2-5\n",   // bad reducer separator
		"10 1\n1 0 9 1 1 2:5\n",   // mapper count beyond fields
		"10 1\n1 0 1 1 1 2:abc\n", // bad size
	}
	for i, c := range cases {
		if _, err := ParseCoflowTrace(strings.NewReader(c), 10); err == nil {
			t.Errorf("case %d: no error for %q", i, c)
		}
	}
}
