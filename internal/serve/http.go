package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"prioplus/internal/exp"
	"prioplus/internal/obs/stream"
)

// API adapts a Scheduler to HTTP. Mount it on the streaming server so one
// listener carries both the observability endpoints (/metrics, /runs,
// /events) and the job endpoints:
//
//	POST   /jobs             submit a spec -> 202 + job snapshot
//	GET    /jobs             job table + queue/cache counters
//	GET    /jobs/{id}        one job's snapshot
//	DELETE /jobs/{id}        cancel a queued job
//	GET    /jobs/{id}/result finished job's output (+ ?format=text for raw bytes)
//	GET    /experiments      the registry: ids, descriptions, defaults
//
// Errors come back as JSON {"error": "..."} with 400 (bad spec), 404
// (unknown job), 409 (wrong state), or 429 (queue full).
type API struct {
	sched *Scheduler
}

// NewAPI wraps a scheduler.
func NewAPI(s *Scheduler) *API {
	return &API{sched: s}
}

// Mount registers the job endpoints on the streaming server. Call before
// srv.Start.
func (a *API) Mount(srv *stream.Server) {
	srv.Handle("/jobs", "job queue: POST a spec, GET the table (JSON)", http.HandlerFunc(a.handleJobs))
	srv.Handle("/jobs/", "", http.HandlerFunc(a.handleJob))
	srv.Handle("/experiments", "experiment registry: ids, descriptions, defaults (JSON)", http.HandlerFunc(a.handleExperiments))
}

// submitRequest is the POST /jobs body. Params stays raw so it can be
// strict-decoded over the experiment's registered defaults.
type submitRequest struct {
	Experiment string          `json:"experiment"`
	Params     json.RawMessage `json:"params"`
	Artifact   bool            `json:"artifact"`
}

func (a *API) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeAPIJSON(w, http.StatusOK, a.sched.Jobs())
	case http.MethodPost:
		a.handleSubmit(w, r)
	default:
		apiError(w, http.StatusMethodNotAllowed, "method %s not allowed on /jobs", r.Method)
	}
}

func (a *API) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		apiError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req submitRequest
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		apiError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	reg, ok := exp.Lookup(req.Experiment)
	if !ok {
		apiError(w, http.StatusBadRequest, "unknown experiment %q", req.Experiment)
		return
	}
	params, err := exp.DecodeParams(req.Params, reg.Defaults)
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap, err := a.sched.Submit(JobSpec{Experiment: req.Experiment, Params: params, Artifact: req.Artifact})
	switch {
	case errors.Is(err, ErrQueueFull):
		apiError(w, http.StatusTooManyRequests, "%v", err)
	case err != nil:
		apiError(w, http.StatusBadRequest, "%v", err)
	default:
		writeAPIJSON(w, http.StatusAccepted, snap)
	}
}

// handleJob routes /jobs/{id} and /jobs/{id}/result.
func (a *API) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		apiError(w, http.StatusNotFound, "missing job id")
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		snap, err := a.sched.Job(id)
		if err != nil {
			apiError(w, http.StatusNotFound, "%v %q", err, id)
			return
		}
		writeAPIJSON(w, http.StatusOK, snap)
	case sub == "" && r.Method == http.MethodDelete:
		a.handleCancel(w, id)
	case sub == "result" && r.Method == http.MethodGet:
		a.handleResult(w, r, id)
	default:
		apiError(w, http.StatusNotFound, "no route %s %s", r.Method, r.URL.Path)
	}
}

func (a *API) handleCancel(w http.ResponseWriter, id string) {
	switch err := a.sched.Cancel(id); {
	case errors.Is(err, ErrNotFound):
		apiError(w, http.StatusNotFound, "%v %q", err, id)
	case errors.Is(err, ErrNotCancelable):
		apiError(w, http.StatusConflict, "%v", err)
	case err != nil:
		apiError(w, http.StatusInternalServerError, "%v", err)
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

func (a *API) handleResult(w http.ResponseWriter, r *http.Request, id string) {
	res, err := a.sched.Result(id)
	switch {
	case errors.Is(err, ErrNotFound):
		apiError(w, http.StatusNotFound, "%v %q", err, id)
		return
	case errors.Is(err, ErrNotFinished):
		apiError(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		apiError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// format=text returns the raw output bytes, so shell clients can
	// byte-compare against a CLI run without a JSON decoder.
	if r.URL.Query().Get("format") == "text" {
		if res.Status != JobDone {
			apiError(w, http.StatusConflict, "job %s %s: %s", id, res.Status, res.Err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, res.Output)
		return
	}
	writeAPIJSON(w, http.StatusOK, res)
}

func (a *API) handleExperiments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		apiError(w, http.StatusMethodNotAllowed, "method %s not allowed on /experiments", r.Method)
		return
	}
	writeAPIJSON(w, http.StatusOK, struct {
		Experiments []ExperimentInfo `json:"experiments"`
	}{Experiments: Experiments()})
}

// writeAPIJSON renders v as indented JSON with an explicit status code.
func writeAPIJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError renders a JSON error body with the given status code.
func apiError(w http.ResponseWriter, code int, format string, args ...any) {
	writeAPIJSON(w, code, struct {
		Error string `json:"error"`
	}{Error: fmt.Sprintf(format, args...)})
}
