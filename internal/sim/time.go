package sim

import "fmt"

// Time is a simulated point in time or duration, in picoseconds.
//
// Picosecond resolution keeps packet serialization times exact: one byte at
// 100 Gb/s is 80 ps, so no link speed used in the experiments accumulates
// rounding drift. An int64 of picoseconds covers about 106 days of simulated
// time, far beyond any experiment in this repository.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns the duration in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the duration in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the duration in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with a unit chosen by magnitude.
func (t Time) String() string {
	switch abs := max(t, -t); {
	case abs < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case abs < Microsecond:
		return fmt.Sprintf("%.3gns", float64(t)/float64(Nanosecond))
	case abs < Millisecond:
		return fmt.Sprintf("%.4gus", t.Micros())
	case abs < Second:
		return fmt.Sprintf("%.4gms", t.Millis())
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// FromSeconds converts a float duration in seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }
