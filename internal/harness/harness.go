// Package harness wires topologies, transport stacks, and congestion
// controllers into runnable scenarios. Experiments and tests build on it.
package harness

import (
	"math/rand"

	"prioplus/internal/cc"
	"prioplus/internal/fault"
	"prioplus/internal/netsim"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
	"prioplus/internal/transport"
)

// Net is a topology with a transport stack on every host.
type Net struct {
	Eng    *sim.Engine
	Topo   *topo.Network
	Stacks []*transport.Stack

	// Pool is the run-wide packet pool: every stack draws its packets from
	// it and every switch recycles drops into it, so the steady-state
	// packet path allocates nothing.
	Pool *netsim.PacketPool

	// Faults is the live fault injector when the Net was built with
	// WithFaults; nil on a healthy fabric.
	Faults *fault.Injector

	nextFlow int64
	seed     int64
}

// An Option configures a Net at construction time. Options replace the old
// setter methods (SetNoise, SetAckPrioData, EnableINT): a Net's shape is
// fixed at New, which keeps mid-run reconfiguration — a determinism hazard
// — out of the API.
type Option func(*Net)

// WithNoise installs a delay-measurement noise source on every stack.
func WithNoise(f func() sim.Time) Option {
	return func(n *Net) {
		for _, st := range n.Stacks {
			st.Noise = f
		}
	}
}

// WithAckPrioData makes ACKs share the data packet's priority (the paper's
// PrioPlus* ablation) instead of the default highest queue.
func WithAckPrioData() Option {
	return func(n *Net) {
		for _, st := range n.Stacks {
			st.AckPrioData = true
		}
	}
}

// WithINT turns on INT stamping on every fabric port (for HPCC).
func WithINT() Option {
	return func(n *Net) {
		for _, sw := range n.Topo.Switches {
			for _, p := range sw.Ports {
				p.INTEnabled = true
			}
		}
		for _, h := range n.Topo.Hosts {
			h.NIC.INTEnabled = true
		}
	}
}

// WithFaults resolves a fault plan against the topology and schedules its
// events on the engine; the live injector is exposed as Net.Faults. A nil
// or empty plan is a no-op, so callers can thread an optional plan through
// unconditionally.
func WithFaults(plan *fault.Plan) Option {
	return func(n *Net) {
		if plan.Empty() {
			return
		}
		n.Faults = plan.Install(n.Topo)
	}
}

// New installs transport stacks on every host of the topology, wires one
// shared packet pool through stacks, switches, and ports (fault drops
// recycle through it too), then applies the options in order.
func New(t *topo.Network, seed int64, opts ...Option) *Net {
	n := &Net{Eng: t.Eng, Topo: t, seed: seed, Pool: netsim.NewPacketPool()}
	for _, h := range t.Hosts {
		st := transport.NewStack(t.Eng, h)
		st.Pool = n.Pool
		h.NIC.Pool = n.Pool
		n.Stacks = append(n.Stacks, st)
	}
	for _, sw := range t.Switches {
		sw.Pool = n.Pool
		for _, p := range sw.Ports {
			p.Pool = n.Pool
		}
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Flow describes a flow to launch.
type Flow struct {
	Src, Dst   int
	Size       int64
	Prio       int // physical priority for data packets
	Algo       cc.Algorithm
	StartAt    sim.Time
	OnComplete func(fct sim.Time)
	// Paced spreads the window across the RTT instead of ack-clocked
	// bursts. Default off: the paper's ns-3 senders are window-based, and
	// the validated dynamics (blast -> cardinality estimation -> settle)
	// assume it.
	Paced bool
	VPrio int16
}

// AddFlow registers and schedules a flow; it returns the sender for
// inspection. The flow's base RTT is computed from the topology.
func (n *Net) AddFlow(f Flow) *transport.Sender {
	n.nextFlow++
	id := n.nextFlow
	st := n.Stacks[f.Src]
	s := st.NewFlow(transport.FlowSpec{
		ID:         id,
		Dst:        f.Dst,
		Size:       f.Size,
		Prio:       f.Prio,
		BaseRTT:    n.Topo.BaseRTT(f.Src, f.Dst),
		Algo:       f.Algo,
		OnComplete: f.OnComplete,
		Rand:       rand.New(rand.NewSource(n.seed ^ id<<17 ^ 0x5bd1e995)),
		Paced:      f.Paced,
		VPrio:      f.VPrio,
	})
	n.Eng.At(max(f.StartAt, n.Eng.Now()), s.Start)
	return s
}

// BDPPackets returns the line-rate bandwidth-delay product between two
// hosts, in MTU packets.
func (n *Net) BDPPackets(src, dst int) float64 {
	return n.Topo.Cfg.HostRate.BDP(n.Topo.BaseRTT(src, dst)) / netsim.DefaultMTU
}

// ThroughputMeter samples the cumulative bytes delivered for a set of
// flows, for rate-over-time plots.
type ThroughputMeter struct {
	bytes map[int]*int64 // key -> cumulative bytes
	order []int
}

// NewThroughputMeter returns an empty meter.
func NewThroughputMeter() *ThroughputMeter {
	return &ThroughputMeter{bytes: make(map[int]*int64)}
}

// Counter returns the cumulative-bytes cell for a key, creating it on
// first use. Wire it into a flow by adding the payload of every delivered
// packet.
func (m *ThroughputMeter) Counter(key int) *int64 {
	if c, ok := m.bytes[key]; ok {
		return c
	}
	c := new(int64)
	m.bytes[key] = c
	m.order = append(m.order, key)
	return c
}

// Keys returns the keys in creation order.
func (m *ThroughputMeter) Keys() []int { return m.order }

// Snapshot returns the current cumulative byte counts by key.
func (m *ThroughputMeter) Snapshot() map[int]int64 {
	out := make(map[int]int64, len(m.bytes))
	for k, c := range m.bytes {
		out[k] = *c
	}
	return out
}

// RateSampler periodically converts a ThroughputMeter's cumulative counts
// into per-window rates, for rate-over-time analyses.
type RateSampler struct {
	window sim.Time
	last   map[int]int64
	meter  *ThroughputMeter
	Times  []sim.Time
	Rates  []map[int]float64 // Gb/s per key per window
}

// SampleRates arranges periodic rate sampling of traffic delivered to one
// host, keyed by the given function, until the given time.
func (n *Net) SampleRates(recv int, key func(pkt *netsim.Packet) int, window, until sim.Time) *RateSampler {
	rs := &RateSampler{window: window, last: map[int]int64{}, meter: NewThroughputMeter()}
	n.SinkCounter(recv, rs.meter, key)
	var tick func()
	tick = func() {
		snap := rs.meter.Snapshot()
		rates := make(map[int]float64)
		for k, v := range snap {
			rates[k] = float64(v-rs.last[k]) * 8 / window.Seconds() / 1e9
			rs.last[k] = v
		}
		rs.Rates = append(rs.Rates, rates)
		rs.Times = append(rs.Times, n.Eng.Now())
		if n.Eng.Now()+window <= until {
			n.Eng.After(window, tick)
		}
	}
	n.Eng.After(window, tick)
	return rs
}

// Between returns the mean rate of key over (from, to].
func (rs *RateSampler) Between(from, to sim.Time, key int) float64 {
	var avg float64
	n := 0
	for i, t := range rs.Times {
		if t > from && t <= to {
			avg += rs.Rates[i][key]
			n++
		}
	}
	if n > 0 {
		avg /= float64(n)
	}
	return avg
}

// SinkCounter attaches a delivered-bytes counter for a host: every data
// packet arriving at the host adds its payload to the counter keyed by the
// packet's priority (or flow, if byFlow).
func (n *Net) SinkCounter(host int, m *ThroughputMeter, key func(pkt *netsim.Packet) int) {
	h := n.Topo.Hosts[host]
	inner := h.Sink
	h.Sink = func(pkt *netsim.Packet) {
		if pkt.Type == netsim.Data {
			*m.Counter(key(pkt)) += int64(pkt.Payload)
		}
		inner(pkt)
	}
}
