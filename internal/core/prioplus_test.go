package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prioplus/internal/cc"
	"prioplus/internal/core"
	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
)

func microCfg() topo.Config {
	cfg := topo.DefaultConfig()
	cfg.LinkDelay = 3 * sim.Microsecond
	return cfg
}

func newStar(nHosts int, opts ...harness.Option) (*harness.Net, *sim.Engine) {
	eng := sim.NewEngine()
	net := harness.New(topo.Star(eng, nHosts, microCfg()), 23, opts...)
	return net, eng
}

// prioPlusFor builds a PrioPlus+Swift controller for the given virtual
// priority out of nprios, on the src->dst path.
func prioPlusFor(net *harness.Net, src, dst, prio, nprios int) *core.PrioPlus {
	base := net.Topo.BaseRTT(src, dst)
	plan := core.DefaultPlan(base)
	sw := cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(src, dst)))
	return core.New(sw, core.DefaultConfig(plan.Channel(prio), nprios))
}

// rateSampler measures per-key throughput over windows of the given width.
type rateSampler struct {
	m      *harness.ThroughputMeter
	window sim.Time
	last   map[int]int64
	Rates  []map[int]float64 // Gb/s per key, one entry per window
	Times  []sim.Time
}

func sampleRates(net *harness.Net, eng *sim.Engine, recv int, key func(*netsim.Packet) int,
	window sim.Time, until sim.Time) *rateSampler {
	rs := &rateSampler{m: harness.NewThroughputMeter(), window: window, last: map[int]int64{}}
	net.SinkCounter(recv, rs.m, key)
	var tick func()
	tick = func() {
		snap := rs.m.Snapshot()
		rates := make(map[int]float64)
		for k, v := range snap {
			rates[k] = float64(v-rs.last[k]) * 8 / window.Seconds() / 1e9
			rs.last[k] = v
		}
		rs.Rates = append(rs.Rates, rates)
		rs.Times = append(rs.Times, eng.Now())
		if eng.Now()+window <= until {
			eng.After(window, tick)
		}
	}
	eng.After(window, tick)
	return rs
}

func (rs *rateSampler) between(from, to sim.Time, key int) (avg float64) {
	n := 0
	for i, t := range rs.Times {
		if t > from && t <= to {
			avg += rs.Rates[i][key]
			n++
		}
	}
	if n > 0 {
		avg /= float64(n)
	}
	return avg
}

func TestChannelPlanMatchesPaper(t *testing.T) {
	base := 12 * sim.Microsecond
	plan := core.DefaultPlan(base)
	// §6: "target delays are set from 32 us to 4 us plus base RTT" for
	// eight priorities, i.e. priority index i gets base + (i+1)*4 us.
	for i := 0; i < 12; i++ {
		ch := plan.Channel(i)
		wantTarget := base + sim.Time(i+1)*4*sim.Microsecond
		wantLimit := wantTarget + 2400*sim.Nanosecond
		if ch.Target != wantTarget {
			t.Errorf("priority %d: D_target = %v, want %v", i, ch.Target, wantTarget)
		}
		if ch.Limit != wantLimit {
			t.Errorf("priority %d: D_limit = %v, want %v", i, ch.Limit, wantLimit)
		}
	}
}

// Property: for any plan with positive A and B, channels are properly
// ordered: D_limit^(i-1) < D_target^i < D_limit^i (§4.1's invariant).
func TestChannelOrderingProperty(t *testing.T) {
	f := func(a, b uint16, base uint32) bool {
		plan := core.ChannelPlan{
			BaseRTT:     sim.Time(base)*sim.Nanosecond + sim.Microsecond,
			Fluctuation: sim.Time(a)*sim.Nanosecond + sim.Nanosecond,
			Noise:       sim.Time(b)*sim.Nanosecond + sim.Nanosecond,
		}
		for i := 1; i < 16; i++ {
			lo, hi := plan.Channel(i-1), plan.Channel(i)
			if !(lo.Limit < hi.Target && hi.Target < hi.Limit) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDefaultConfigWLSBands(t *testing.T) {
	plan := core.DefaultPlan(12 * sim.Microsecond)
	// With 8 priorities: 6,7 high (W_LS=1.0, no probe); 4,5 middle (0.25);
	// 0-3 low (0.125).
	for i, want := range []float64{0.125, 0.125, 0.125, 0.125, 0.25, 0.25, 1.0, 1.0} {
		cfg := core.DefaultConfig(plan.Channel(i), 8)
		if cfg.WLSFraction != want {
			t.Errorf("priority %d/8: WLSFraction = %v, want %v", i, cfg.WLSFraction, want)
		}
		if (cfg.WLSFraction == 1.0) != !cfg.ProbeFirst {
			t.Errorf("priority %d/8: ProbeFirst = %v inconsistent with band", i, cfg.ProbeFirst)
		}
	}
}

func TestHighPreemptsLowStrictly(t *testing.T) {
	// O1: a long-running low-priority flow must fully yield to a
	// high-priority flow, then reclaim the bandwidth afterwards (O2).
	net, eng := newStar(3)
	low := prioPlusFor(net, 0, 2, 1, 8)
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 30, Prio: 0, Algo: low})

	high := prioPlusFor(net, 1, 2, 6, 8)
	highDone := sim.Time(0)
	net.AddFlow(harness.Flow{
		Src: 1, Dst: 2, Size: 12 << 20, Prio: 0, Algo: high,
		StartAt:    sim.Millisecond,
		OnComplete: func(sim.Time) { highDone = eng.Now() },
	})

	rs := sampleRates(net, eng, 2, func(p *netsim.Packet) int { return p.Src }, 50*sim.Microsecond, 5*sim.Millisecond)
	eng.RunUntil(5 * sim.Millisecond)

	if highDone == 0 {
		t.Fatal("high-priority flow did not finish")
	}
	// Before the high flow: low uses the full link.
	if got := rs.between(500*sim.Microsecond, sim.Millisecond, 0); got < 85 {
		t.Errorf("low flow before contention: %.1f Gb/s, want ~100", got)
	}
	// During contention (after a short takeover transient): high gets
	// nearly everything, low nearly nothing.
	mid0, mid1 := sim.Millisecond+200*sim.Microsecond, highDone-100*sim.Microsecond
	if got := rs.between(mid0, mid1, 1); got < 85 {
		t.Errorf("high flow during contention: %.1f Gb/s, want ~100 (strict priority)", got)
	}
	if got := rs.between(mid0, mid1, 0); got > 8 {
		t.Errorf("low flow during contention: %.1f Gb/s, want ~0 (must fully yield)", got)
	}
	// The high flow should finish close to its ideal FCT (12 MiB at
	// 100 Gb/s is ~1.007 ms) despite starting into a busy link.
	ideal := sim.FromSeconds(float64(12<<20) / (100e9 / 8))
	if fct := highDone - sim.Millisecond; fct > ideal*13/10 {
		t.Errorf("high-priority FCT = %v, want <= 1.3x ideal %v", fct, ideal)
	}
	// After the high flow ends: low reclaims the link quickly (O2).
	if got := rs.between(highDone+300*sim.Microsecond, highDone+800*sim.Microsecond, 0); got < 80 {
		t.Errorf("low flow after contention: %.1f Gb/s, want ~100 (work conservation)", got)
	}
	if low.Yields == 0 {
		t.Error("low flow never yielded")
	}
	if low.Probes == 0 {
		t.Error("low flow never probed")
	}
}

func TestLowYieldsAndStops(t *testing.T) {
	net, eng := newStar(3)
	low := prioPlusFor(net, 0, 2, 0, 8)
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 30, Prio: 0, Algo: low})
	high := prioPlusFor(net, 1, 2, 7, 8)
	net.AddFlow(harness.Flow{Src: 1, Dst: 2, Size: 1 << 30, Prio: 0, Algo: high, StartAt: sim.Millisecond})
	eng.RunUntil(2 * sim.Millisecond)
	if !low.Stopped() {
		t.Error("low-priority flow not in stopped state while high flow persists")
	}
	if high.Stopped() {
		t.Error("high-priority flow should never stop")
	}
}

func TestProbeBandwidthTiny(t *testing.T) {
	// While yielded, a flow's probe traffic must be negligible (§4.2.1:
	// one 64 B probe per ~base RTT at most, here further reduced by
	// collision avoidance).
	net, eng := newStar(4)
	for i := 0; i < 2; i++ {
		net.AddFlow(harness.Flow{Src: 0, Dst: 3, Size: 1 << 30, Prio: 0,
			Algo: prioPlusFor(net, 0, 3, 0, 8)})
	}
	high := prioPlusFor(net, 1, 3, 7, 8)
	net.AddFlow(harness.Flow{Src: 1, Dst: 3, Size: 1 << 30, Prio: 0, Algo: high, StartAt: 200 * sim.Microsecond})
	var probeBytes int64
	inner := net.Topo.Hosts[3].Sink
	net.Topo.Hosts[3].Sink = func(pkt *netsim.Packet) {
		if pkt.Type == netsim.Probe && eng.Now() > sim.Millisecond {
			probeBytes += int64(pkt.Wire)
		}
		inner(pkt)
	}
	eng.RunUntil(3 * sim.Millisecond)
	gbps := float64(probeBytes) * 8 / (2 * sim.Millisecond).Seconds() / 1e9
	if gbps > 0.1 {
		t.Errorf("probe traffic while yielded: %.3f Gb/s, want < 0.1 (paper: ~42 Mb/s per flow)", gbps)
	}
	if probeBytes == 0 {
		t.Error("no probes at all: yielded flows would never detect the idle link")
	}
}

func TestFilterAbsorbsSingleSpike(t *testing.T) {
	// One above-limit noise spike must not make the flow yield; the
	// paper's filter requires two consecutive measurements (§4.3.1).
	spike := false
	net, eng := newStar(3, harness.WithNoise(func() sim.Time {
		if spike {
			spike = false
			return 30 * sim.Microsecond
		}
		return 0
	}))
	pp := prioPlusFor(net, 0, 2, 2, 8)
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 30, Prio: 0, Algo: pp})
	for i := 1; i <= 5; i++ {
		eng.At(sim.Time(i)*200*sim.Microsecond, func() { spike = true })
	}
	eng.RunUntil(2 * sim.Millisecond)
	if pp.Yields != 0 {
		t.Errorf("flow yielded %d times on isolated noise spikes; filter should absorb them", pp.Yields)
	}
}

func TestTwoConsecutiveSpikesTriggerYield(t *testing.T) {
	spikes := 0
	net, eng := newStar(3, harness.WithNoise(func() sim.Time {
		if spikes > 0 {
			spikes--
			return 30 * sim.Microsecond
		}
		return 0
	}))
	pp := prioPlusFor(net, 0, 2, 2, 8)
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 30, Prio: 0, Algo: pp})
	eng.At(500*sim.Microsecond, func() { spikes = 5 })
	eng.RunUntil(sim.Millisecond)
	if pp.Yields == 0 {
		t.Error("sustained above-limit delay did not trigger a yield")
	}
}

func TestLinearStartBoundsQueue(t *testing.T) {
	// A PrioPlus flow entering a busy link (probe + linear start /
	// adaptive increase) must cause a much smaller queue transient than a
	// line-rate-start newcomer would in the identical scenario (Table 2,
	// Theorem 4.1).
	run := func(lineRate bool) int {
		net, eng := newStar(3)
		net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 30, Prio: 0,
			Algo: prioPlusFor(net, 0, 2, 3, 8)})
		var algo cc.Algorithm
		if lineRate {
			// RDMA-style: a full-BDP window immediately.
			base := net.Topo.BaseRTT(1, 2)
			scfg := cc.DefaultSwiftConfig(base, net.BDPPackets(1, 2))
			scfg.Target = core.DefaultPlan(base).Channel(3).Target
			algo = cc.NewSwift(scfg)
		} else {
			algo = prioPlusFor(net, 1, 2, 3, 8)
		}
		net.AddFlow(harness.Flow{Src: 1, Dst: 2, Size: 1 << 30, Prio: 0,
			Algo: algo, StartAt: sim.Millisecond})
		maxq := 0
		for i := 0; i < 100; i++ {
			eng.At(sim.Millisecond+sim.Time(i)*2*sim.Microsecond, func() {
				if q := net.Topo.Switches[0].Ports[2].TotalQueuedBytes(); q > maxq {
					maxq = q
				}
			})
		}
		eng.RunUntil(sim.Millisecond + 200*sim.Microsecond)
		return maxq
	}
	linear, blast := run(false), run(true)
	if linear >= blast {
		t.Errorf("linear-start peak queue %d B >= line-rate-start peak %d B", linear, blast)
	}
	// The transient above the incumbent's standing queue must be well
	// below the +1 BDP a line-rate start injects.
	standing := 200_000 // prio-3 target is base+16us = 200 KB at 100G
	if linear-standing > 100_000 {
		t.Errorf("linear-start transient %d B above standing queue, want < 100 KB", linear-standing)
	}
}

func TestCardinalityEstimationContainsIncast(t *testing.T) {
	// Fig 10b in miniature: many same-priority flows start at once. After
	// the initial transient, the delay must stay near D_target and the
	// flows must estimate a cardinality well above 1.
	net, eng := newStar(41)
	flows := make([]*core.PrioPlus, 40)
	for i := range flows {
		flows[i] = prioPlusFor(net, i, 40, 5, 8)
		net.AddFlow(harness.Flow{Src: i, Dst: 40, Size: 1 << 30, Prio: 0, Algo: flows[i]})
	}
	base := net.Topo.BaseRTT(0, 40)
	plan := core.DefaultPlan(base)
	ch := plan.Channel(5)
	var over, samples int
	for i := 0; i < 300; i++ {
		eng.At(sim.Millisecond+sim.Time(i)*5*sim.Microsecond, func() {
			q := net.Topo.Switches[0].Ports[40].TotalQueuedBytes()
			delay := base + sim.Time(float64(q)/(100e9/8)*1e12)
			samples++
			if delay > ch.Limit+2*sim.Microsecond {
				over++
			}
		})
	}
	eng.RunUntil(sim.Millisecond + 1600*sim.Microsecond)
	if frac := float64(over) / float64(samples); frac > 0.25 {
		t.Errorf("delay above D_limit in %.0f%% of steady-state samples, want mostly contained", frac*100)
	}
	maxEst := 0.0
	for _, f := range flows {
		if f.FlowEstimate() > maxEst {
			maxEst = f.FlowEstimate()
		}
	}
	if maxEst < 4 {
		t.Errorf("max cardinality estimate %.1f, want >> 1 with 40 flows", maxEst)
	}
}

func TestDualRTTTakeoverFast(t *testing.T) {
	// Fig 10c in miniature: 10 high-priority flows preempt 10 low-priority
	// flows and should own the link within ~1 ms via adaptive increase.
	net, eng := newStar(21)
	for i := 0; i < 10; i++ {
		net.AddFlow(harness.Flow{Src: i, Dst: 20, Size: 1 << 30, Prio: 0,
			Algo: prioPlusFor(net, i, 20, 1, 8)})
	}
	for i := 10; i < 20; i++ {
		net.AddFlow(harness.Flow{Src: i, Dst: 20, Size: 1 << 30, Prio: 0,
			Algo: prioPlusFor(net, i, 20, 6, 8), StartAt: sim.Millisecond})
	}
	rs := sampleRates(net, eng, 20, func(p *netsim.Packet) int {
		if p.Src >= 10 {
			return 1
		}
		return 0
	}, 100*sim.Microsecond, 4*sim.Millisecond)
	eng.RunUntil(4 * sim.Millisecond)
	if got := rs.between(2*sim.Millisecond, 4*sim.Millisecond, 1); got < 85 {
		t.Errorf("high-priority group holds %.1f Gb/s after takeover, want ~100", got)
	}
	if got := rs.between(2*sim.Millisecond, 4*sim.Millisecond, 0); got > 8 {
		t.Errorf("low-priority group still at %.1f Gb/s after takeover, want ~0", got)
	}
}

func TestEightPrioritiesLadder(t *testing.T) {
	// Fig 10a in miniature: 8 priorities (3 flows each) starting
	// low-to-high at 300 us intervals. At any instant the highest active
	// priority should hold the link.
	// Displacing an adjacent-priority incumbent takes a few ms: the
	// newcomer's start burst can trip its own channel limit (the standing
	// queue plus its W_LS already exceeds D_limit), after which it
	// re-enters through probe + one-packet resume and grows by
	// (D_target-delay)/delay per two RTTs. The paper's Fig 10a uses 5 ms
	// intervals, which is what this test uses.
	net, eng := newStar(25)
	interval := 5 * sim.Millisecond
	perPrio := 3
	for prio := 0; prio < 8; prio++ {
		for j := 0; j < perPrio; j++ {
			src := prio*perPrio + j
			net.AddFlow(harness.Flow{
				Src: src, Dst: 24, Size: 1 << 30, Prio: 0,
				Algo:    prioPlusFor(net, src, 24, prio, 8),
				StartAt: sim.Time(prio) * interval,
			})
		}
	}
	end := sim.Time(8) * interval
	rs := sampleRates(net, eng, 24, func(p *netsim.Packet) int { return p.Src / perPrio }, 50*sim.Microsecond, end)
	eng.RunUntil(end)
	// In the settled tail of each interval, the newest (= highest)
	// priority should dominate.
	for prio := 1; prio < 8; prio++ {
		from := sim.Time(prio)*interval + interval*3/4
		to := sim.Time(prio+1) * interval
		hi := rs.between(from, to, prio)
		var rest float64
		for p := 0; p < prio; p++ {
			rest += rs.between(from, to, p)
		}
		if hi < 70 {
			t.Errorf("priority %d holds %.1f Gb/s in its interval, want ~100", prio, hi)
		}
		if rest > 25 {
			t.Errorf("lower priorities still at %.1f Gb/s during priority %d's interval", rest, prio)
		}
	}
}

func TestPrioPlusWithLEDBAT(t *testing.T) {
	// §4.4/§6.2: PrioPlus integrates with LEDBAT too. High preempts low.
	net, eng := newStar(3)
	base := net.Topo.BaseRTT(0, 2)
	plan := core.DefaultPlan(base)
	mk := func(src, prio int) *core.PrioPlus {
		l := cc.NewLEDBAT(cc.DefaultLEDBATConfig(base, net.BDPPackets(src, 2)))
		return core.New(l, core.DefaultConfig(plan.Channel(prio), 8))
	}
	low := mk(0, 1)
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 30, Prio: 0, Algo: low})
	net.AddFlow(harness.Flow{Src: 1, Dst: 2, Size: 1 << 30, Prio: 0, Algo: mk(1, 6), StartAt: sim.Millisecond})
	rs := sampleRates(net, eng, 2, func(p *netsim.Packet) int { return p.Src }, 100*sim.Microsecond, 3*sim.Millisecond)
	eng.RunUntil(3 * sim.Millisecond)
	if got := rs.between(2*sim.Millisecond, 3*sim.Millisecond, 1); got < 80 {
		t.Errorf("high LEDBAT flow at %.1f Gb/s, want ~100", got)
	}
	if got := rs.between(2*sim.Millisecond, 3*sim.Millisecond, 0); got > 10 {
		t.Errorf("low LEDBAT flow at %.1f Gb/s, want ~0", got)
	}
}

func TestDeterministicPrioPlusRerun(t *testing.T) {
	run := func() sim.Time {
		net, eng := newStar(3)
		var fct sim.Time
		net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 30, Prio: 0,
			Algo: prioPlusFor(net, 0, 2, 0, 8)})
		net.AddFlow(harness.Flow{Src: 1, Dst: 2, Size: 8 << 20, Prio: 0,
			Algo: prioPlusFor(net, 1, 2, 7, 8), StartAt: 200 * sim.Microsecond,
			OnComplete: func(d sim.Time) { fct = d }})
		eng.RunUntil(4 * sim.Millisecond)
		return fct
	}
	if a, b := run(), run(); a != b || a == 0 {
		t.Errorf("reruns diverged: %v vs %v", a, b)
	}
}

func TestStoppedFlowReportsZeroWindow(t *testing.T) {
	base := 12 * sim.Microsecond
	plan := core.DefaultPlan(base)
	sw := cc.NewSwift(cc.DefaultSwiftConfig(base, 150))
	pp := core.New(sw, core.Config{Channel: plan.Channel(0), WLSFraction: 0.125, ProbeFirst: true, BaseRTTEps: 500 * sim.Nanosecond, ConsecLimit: 2})
	drv := newStubDriver(base)
	pp.Start(drv)
	if !pp.Stopped() {
		t.Fatal("ProbeFirst flow should start stopped")
	}
	if pp.CwndBytes() != 0 {
		t.Errorf("stopped flow CwndBytes = %v, want 0", pp.CwndBytes())
	}
	if drv.probes != 1 {
		t.Errorf("probes scheduled = %d, want 1", drv.probes)
	}
	// Probe ACK at base RTT: resume with W_LS window.
	pp.OnProbeAck(cc.Feedback{Now: base, Delay: base})
	if pp.Stopped() {
		t.Error("flow still stopped after clean probe")
	}
	if pp.CwndBytes() <= 0 {
		t.Error("resumed flow has no window")
	}
}

func TestProbeAboveLimitKeepsProbing(t *testing.T) {
	base := 12 * sim.Microsecond
	plan := core.DefaultPlan(base)
	sw := cc.NewSwift(cc.DefaultSwiftConfig(base, 150))
	pp := core.New(sw, core.Config{Channel: plan.Channel(0), WLSFraction: 0.125, ProbeFirst: true, BaseRTTEps: 500 * sim.Nanosecond, ConsecLimit: 2})
	drv := newStubDriver(base)
	pp.Start(drv)
	pp.OnProbeAck(cc.Feedback{Now: base, Delay: plan.Channel(0).Limit + 10*sim.Microsecond})
	if !pp.Stopped() {
		t.Error("flow resumed despite probe showing congestion")
	}
	if drv.probes != 2 {
		t.Errorf("probes = %d, want 2 (re-probe scheduled)", drv.probes)
	}
	// Probe between base and target: resume with a one-packet window.
	pp.OnProbeAck(cc.Feedback{Now: base, Delay: base + 2*sim.Microsecond})
	if pp.Stopped() {
		t.Error("flow did not resume")
	}
	if got := pp.Inner().CwndPackets(); got != 1 {
		t.Errorf("resume cwnd = %v packets, want 1 (conservative, §4.4)", got)
	}
}

// stubDriver for direct algorithm tests.
type stubDriver struct {
	base           sim.Time
	now            sim.Time
	probes         int
	stops          int
	lastProbeAfter sim.Time
	sndNxt         int64
	rng            *rand.Rand
}

func newStubDriver(base sim.Time) *stubDriver {
	return &stubDriver{base: base, rng: rand.New(rand.NewSource(5))}
}

func (d *stubDriver) Now() sim.Time         { return d.now }
func (d *stubDriver) BaseRTT() sim.Time     { return d.base }
func (d *stubDriver) LineRate() netsim.Rate { return 100 * netsim.Gbps }
func (d *stubDriver) MTU() int              { return 1000 }
func (d *stubDriver) SndNxt() int64         { return d.sndNxt }
func (d *stubDriver) RemainingBytes() int64 { return 1 << 20 }
func (d *stubDriver) StopSending()          { d.stops++ }
func (d *stubDriver) ResumeSending()        {}
func (d *stubDriver) SendProbeAfter(t sim.Time) {
	d.probes++
	d.lastProbeAfter = t
}
func (d *stubDriver) ResetRTO()        {}
func (d *stubDriver) Rand() *rand.Rand { return d.rng }
