package stats

import (
	"sort"
	"strings"
	"testing"

	"prioplus/internal/sim"
)

func TestClassOf(t *testing.T) {
	cases := []struct {
		size int64
		want SizeClass
	}{
		{0, Small}, {299_999, Small}, {300_000, Middle},
		{5_999_999, Middle}, {6_000_000, Large}, {30_000_000, Large},
	}
	for _, c := range cases {
		if got := ClassOf(c.size); got != c.want {
			t.Errorf("ClassOf(%d) = %v, want %v", c.size, got, c.want)
		}
	}
}

func collector() *Collector {
	c := &Collector{}
	for i := 1; i <= 100; i++ {
		c.Add(FlowRecord{
			Size:  int64(i) * 100_000,
			FCT:   sim.Time(i) * sim.Microsecond,
			Ideal: sim.Microsecond,
			Prio:  i % 4,
		})
	}
	return c
}

func TestMeanAndPercentiles(t *testing.T) {
	c := collector()
	if got := c.MeanFCT(); got != 50500*sim.Nanosecond {
		t.Errorf("MeanFCT = %v, want 50.5us", got)
	}
	if got := c.PercentileFCT(0.99); got < 98*sim.Microsecond {
		t.Errorf("P99 = %v, want ~99us", got)
	}
	if got := c.PercentileFCT(0); got != sim.Microsecond {
		t.Errorf("P0 = %v, want 1us", got)
	}
}

func TestSlowdown(t *testing.T) {
	r := FlowRecord{FCT: 30 * sim.Microsecond, Ideal: 10 * sim.Microsecond}
	if got := r.Slowdown(); got != 3 {
		t.Errorf("Slowdown = %v, want 3", got)
	}
	if got := (FlowRecord{FCT: sim.Microsecond}).Slowdown(); got != 1 {
		t.Errorf("zero-ideal slowdown = %v, want 1", got)
	}
}

func TestFilters(t *testing.T) {
	c := collector()
	small := c.ByClass(Small)
	for _, f := range small.Flows {
		if f.Size >= 300_000 {
			t.Fatal("ByClass(Small) returned a non-small flow")
		}
	}
	if small.Count()+c.ByClass(Middle).Count()+c.ByClass(Large).Count() != c.Count() {
		t.Error("size classes do not partition the flows")
	}
	p2 := c.ByPrio(2)
	if p2.Count() != 25 {
		t.Errorf("ByPrio(2) = %d flows, want 25", p2.Count())
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(200*sim.Microsecond, 100*sim.Microsecond); got != 2 {
		t.Errorf("Speedup = %v, want 2", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("scheme", "fct", "speedup")
	tb.AddRow("swift", 123*sim.Microsecond, 1.5)
	tb.AddRow("prioplus", 100*sim.Microsecond, 2.0)
	var b strings.Builder
	tb.Render(&b)
	out := b.String()
	for _, want := range []string{"scheme", "swift", "prioplus", "123us", "1.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("table has %d lines, want 3", lines)
	}
}

func TestMeanSlowdownAndPercentile(t *testing.T) {
	c := &Collector{}
	for i := 1; i <= 10; i++ {
		c.Add(FlowRecord{FCT: sim.Time(i) * sim.Microsecond, Ideal: sim.Microsecond})
	}
	if got := c.MeanSlowdown(); got != 5.5 {
		t.Errorf("MeanSlowdown = %v, want 5.5", got)
	}
	if got := c.PercentileSlowdown(1); got != 10 {
		t.Errorf("P100 slowdown = %v, want 10", got)
	}
}

func TestEmptyCollectorSafe(t *testing.T) {
	c := &Collector{}
	if c.MeanFCT() != 0 || c.PercentileFCT(0.99) != 0 || c.MeanSlowdown() != 0 {
		t.Error("empty collector should return zeros")
	}
}

// TestPercentileCacheInvalidation: the sorted caches are exact and rebuild
// when flows are appended after a percentile query — answers must always
// match a from-scratch sort.
func TestPercentileCacheInvalidation(t *testing.T) {
	c := &Collector{}
	// Descending insert so the cache has real sorting work to do.
	for i := 100; i >= 1; i-- {
		c.Add(FlowRecord{FCT: sim.Time(i) * sim.Microsecond, Ideal: sim.Microsecond})
	}
	if got := c.PercentileFCT(0.5); got != 50*sim.Microsecond {
		t.Errorf("P50 = %v, want 50us", got)
	}
	if got := c.PercentileSlowdown(0.5); got != 50 {
		t.Errorf("P50 slowdown = %v, want 50", got)
	}
	// Append past the cached snapshot: a flow faster than everything seen.
	c.Add(FlowRecord{FCT: 500 * sim.Nanosecond, Ideal: sim.Microsecond})
	if got := c.PercentileFCT(0); got != 500*sim.Nanosecond {
		t.Errorf("P0 after append = %v, want 500ns: cache went stale", got)
	}
	if got := c.PercentileSlowdown(0); got != 0.5 {
		t.Errorf("P0 slowdown after append = %v, want 0.5: cache went stale", got)
	}
	// Repeated queries at the same length reuse the cache and stay exact.
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
		idx := int(p * float64(c.Count()-1))
		want := make([]sim.Time, 0, c.Count())
		for _, f := range c.Flows {
			want = append(want, f.FCT)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if got := c.PercentileFCT(p); got != want[idx] {
			t.Errorf("PercentileFCT(%v) = %v, want exact %v", p, got, want[idx])
		}
	}
}
