// Package netsim models a packet-switched data-center network: hosts,
// links, and switches with multi-queue ports, shared buffers with dynamic
// thresholds, per-priority PFC flow control, ECN marking, and optional INT
// telemetry. It is the substrate on which the congestion-control algorithms
// in internal/cc and internal/core are evaluated, standing in for the ns-3
// simulator used by the PrioPlus paper.
package netsim

import (
	"prioplus/internal/sim"
)

// Rate is a link speed in bits per second.
type Rate int64

// Common link speeds.
const (
	Gbps Rate = 1e9
	Mbps Rate = 1e6
)

// Serialize returns the time to put the given number of bytes on the wire.
func (r Rate) Serialize(bytes int) sim.Time {
	bits := int64(bytes) * 8
	if bits <= (1<<63-1)/int64(sim.Second) {
		// Every packet-sized input takes this exact path.
		return sim.Time(bits * int64(sim.Second) / int64(r))
	}
	// Multi-gigabyte inputs (whole-flow transfer times) would overflow
	// bits*Second; split out the whole picoseconds-per-bit first. All
	// standard rates divide sim.Second evenly, so rem is normally zero and
	// the result stays exact.
	q := int64(sim.Second) / int64(r)
	rem := int64(sim.Second) % int64(r)
	t := bits * q
	if rem != 0 {
		t += int64(float64(bits) * float64(rem) / float64(r))
	}
	return sim.Time(t)
}

// BytesPerSec returns the rate in bytes per second.
func (r Rate) BytesPerSec() float64 { return float64(r) / 8 }

// BDP returns the bandwidth-delay product in bytes for a round-trip time.
func (r Rate) BDP(rtt sim.Time) float64 {
	return float64(r) / 8 * rtt.Seconds()
}

// PacketType distinguishes the packet kinds the simulator forwards.
type PacketType uint8

// Packet kinds.
const (
	Data PacketType = iota
	Ack
	Probe
	ProbeAck
)

// String returns the packet type's short name (data, ack, probe, probe-ack).
func (t PacketType) String() string {
	switch t {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case Probe:
		return "probe"
	case ProbeAck:
		return "probeack"
	}
	return "unknown"
}

// Standard sizes, following the paper's setup (1 KB MTU, per-packet ACKs).
const (
	DefaultMTU  = 1000 // application payload bytes per full data packet
	HeaderBytes = 48   // L2..L4 header overhead on data packets
	AckBytes    = 64   // ACK and probe wire size

	// wireFull is the wire size of a full-MTU data packet — with AckBytes,
	// one of the two sizes whose serialization time every port precomputes.
	wireFull = DefaultMTU + HeaderBytes
)

// INTRecord is one hop's in-band network telemetry, stamped at dequeue by
// switches with INT enabled. HPCC uses it to compute per-link utilization.
// Flow tracing reuses the same piggyback array for journey stamps on traced
// packets; those records carry a non-empty Dev (plus the queue wait) and are
// filtered out before HPCC sees the feedback, so INT-proper semantics are
// unchanged.
type INTRecord struct {
	QLen    int      // egress queue length after this packet left, bytes
	TxBytes int64    // cumulative bytes transmitted by the egress port
	TS      sim.Time // dequeue timestamp
	Rate    Rate     // egress link rate
	Dev     string   // trace-only: stamping device name ("" for INT proper)
	QWait   sim.Time // trace-only: time spent in the egress queue
}

// Packet is a simulated packet. One Packet object travels hop by hop;
// switches never copy it. Packets are normally drawn from a PacketPool and
// recycled at the end of their life (see pool.go for the ownership rules);
// the New* constructors below allocate pool-free packets for tests and
// direct netsim use.
// Field order is deliberate: the fields every hop touches — Type, the
// ECN/trace flags, VPrio, Hash, Dst, Prio, Wire — pack into the first
// cache line (offsets 0..40 with FlowID and Seq rounding it out), so a
// switch hop's route lookup, ECMP hash, admission, and enqueue read one
// line instead of three. Endpoint-only and pool-bookkeeping fields follow.
type Packet struct {
	Type PacketType
	ECT  bool // ECN-capable transport
	CE   bool // congestion experienced mark
	// Traced marks a packet whose hop journey is being recorded by an
	// obs.FlowTracer: every egress port appends a trace INTRecord (Dev set)
	// at dequeue. Set by the transport on a sampled subset of a traced
	// flow's packets; false everywhere else, costing one branch per hop.
	Traced bool
	// VPrio is the flow's virtual priority, carried in the header (as a
	// DSCP-like tag) but not used for queueing. The ECN-based PrioPlus
	// extension (Appendix B) marks by VPrio within one physical queue.
	VPrio  int16
	Hash   uint32
	Dst    int // destination host ID
	Prio   int // physical priority queue index; larger = higher priority
	Wire   int // total bytes on the wire
	FlowID int64
	Seq    int64

	Src     int   // source host ID
	AckSeq  int64 // cumulative bytes received, on ACKs
	Payload int   // application payload bytes (data packets)
	SentAt  sim.Time
	INT     []INTRecord

	// hopEnqAt is the enqueue timestamp at the current hop, consumed at
	// dequeue to compute the trace records' QWait. Only maintained for
	// Traced packets.
	hopEnqAt sim.Time

	// Pool bookkeeping: gen counts recycles (stamped at every Put) and
	// inPool marks packets currently on a free list, so the simdebug build
	// can panic on use-after-free instead of corrupting results.
	gen    uint32
	inPool bool
}

// Generation returns the packet object's pool generation: the number of
// times it has been recycled. Code that (illegally) holds a packet past a
// handoff can snapshot it to detect reuse.
func (pkt *Packet) Generation() uint32 { return pkt.gen }

// NewData returns a freshly allocated data packet of the given payload
// size. Hot paths should use PacketPool.Data instead.
func NewData(flow int64, src, dst, prio int, seq int64, payload int) *Packet {
	return (*PacketPool)(nil).Data(flow, src, dst, prio, seq, payload)
}

// NewAck returns a freshly allocated ACK for the given data packet,
// addressed back to its sender at priority ackPrio. The ACK carries a copy
// of the data packet's INT records, so the caller keeps full ownership of
// the data packet. Hot paths should use PacketPool.Ack, which hands the
// records off instead of copying.
func NewAck(data *Packet, ackPrio int, cum int64) *Packet {
	return (*PacketPool)(nil).Ack(data, ackPrio, cum)
}

// NewProbe returns a freshly allocated probe packet used by PrioPlus to
// sample the path delay while transmission is suspended.
func NewProbe(flow int64, src, dst, prio int) *Packet {
	return (*PacketPool)(nil).Probe(flow, src, dst, prio)
}

// NewProbeAck returns a freshly allocated echo of a probe.
func NewProbeAck(probe *Packet, ackPrio int) *Packet {
	return (*PacketPool)(nil).ProbeAck(probe, ackPrio)
}

// flowHash is a 64-to-32-bit mix used for ECMP path selection, so that a
// flow's packets always take the same path.
func flowHash(flow int64) uint32 {
	x := uint64(flow)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return uint32(x)
}
