package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"prioplus/internal/netsim"
	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// runDiff is the `prioplus-sim diff` subcommand: divergence diagnosis over
// digest-chain fingerprints (see -fingerprint and docs/OBSERVABILITY.md).
//
//	prioplus-sim diff A.jsonl B.jsonl
//	prioplus-sim diff -exp fig10b -seed 1 -perturb 10 A.jsonl
//
// The two-artifact form compares recorded checkpoint ladders and localizes
// the first divergent checkpoint window. The rerun form re-executes the
// experiment live against a recorded artifact, localizes the window the
// same way, then re-executes the window with full event recording on both
// sides and names the exact first divergent event — kind, device, packet,
// and clock. Returns 0 when the runs are identical, 1 when they diverge,
// 2 on usage errors.
func runDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	expID := fs.String("exp", "", "rerun mode: re-execute this experiment against the recorded artifact")
	seed := fs.Int64("seed", 1, "rerun mode: simulation seed (must match the recorded run)")
	perturb := fs.Uint64("perturb", 0, "rerun mode: inflate the Nth delay-noise draw by 1us in the rerun")
	full := fs.Bool("full", false, "rerun mode: rerun at the paper's full scale (must match the recorded run)")
	fs.Parse(args)

	switch {
	case *expID == "" && fs.NArg() == 2:
		res, err := diffArtifacts(fs.Arg(0), fs.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "diff:", err)
			return 2
		}
		res.render(os.Stdout)
		if res.identical {
			return 0
		}
		return 1
	case *expID != "" && fs.NArg() == 1:
		res, err := diffRerun(fs.Arg(0), *expID, *seed, *full, *perturb)
		if err != nil {
			fmt.Fprintln(os.Stderr, "diff:", err)
			return 2
		}
		res.render(os.Stdout)
		if res.identical {
			return 0
		}
		return 1
	}
	fmt.Fprintln(os.Stderr, "usage: prioplus-sim diff A.jsonl B.jsonl\n"+
		"       prioplus-sim diff -exp ID [-seed N] [-full] [-perturb D] A.jsonl")
	return 2
}

// ckptRef is one checkpoint in either a recorded artifact or a live
// digest, normalized for comparison.
type ckptRef struct {
	n     uint64  // dispatched-event count
	tUS   float64 // simulated clock at the checkpoint, microseconds
	chain uint64
}

// fpSide is one side of a diff: its label, fingerprint, and checkpoints.
type fpSide struct {
	label  string
	run    string
	chain  uint64
	events uint64
	ckpts  []ckptRef
}

// diffResult is the outcome of a diff, rendered by render. The rerun mode
// additionally pins the exact first divergent event (rec fields non-nil).
type diffResult struct {
	a, b      fpSide
	identical bool

	// Checkpoint window localization: the first divergent event e has
	// winLo < e.Count <= winHi. haveLo/haveHi distinguish "window open at
	// this end" (divergence before the first or after the last comparable
	// checkpoint) from a real bound.
	winLo, winHi     uint64
	haveLo, haveHi   bool
	winLoUS, winHiUS float64

	// Rerun mode only: the exact first divergent event on each side, and
	// the digests that recorded them (for device names).
	recA, recB *sim.EventRec
	digA, digB *sim.Digest
	baseNote   string // non-empty when the base rerun did not reproduce the artifact
}

// artifactSide loads one artifact and normalizes its fingerprint data.
func artifactSide(path string) (fpSide, error) {
	f, err := os.Open(path)
	if err != nil {
		return fpSide{}, err
	}
	defer f.Close()
	a, err := obs.ReadArtifact(f)
	if err != nil {
		return fpSide{}, fmt.Errorf("%s: %w", path, err)
	}
	if a.Fingerprint == "" {
		return fpSide{}, fmt.Errorf("%s has no fingerprint; record it with -fingerprint -series DIR", path)
	}
	chain, err := strconv.ParseUint(a.Fingerprint, 16, 64)
	if err != nil {
		return fpSide{}, fmt.Errorf("%s: bad fingerprint %q", path, a.Fingerprint)
	}
	s := fpSide{label: path, run: a.Run, chain: chain, events: a.FPEvents}
	for _, c := range a.Ckpts {
		h, err := strconv.ParseUint(c.Chain, 16, 64)
		if err != nil {
			return fpSide{}, fmt.Errorf("%s: bad ckpt chain %q", path, c.Chain)
		}
		s.ckpts = append(s.ckpts, ckptRef{n: c.N, tUS: c.TUS, chain: h})
	}
	return s, nil
}

// digestSide normalizes a live digest for comparison.
func digestSide(label string, d *sim.Digest) fpSide {
	s := fpSide{label: label, chain: d.Chain, events: d.Count}
	for _, c := range d.Ckpts {
		s.ckpts = append(s.ckpts, ckptRef{n: c.Count, tUS: c.Clock.Micros(), chain: c.Chain})
	}
	return s
}

// localize walks both checkpoint ladders, comparing chains at equal event
// counts (the ladders may have different intervals after compaction), and
// fills the divergence window on res.
func (res *diffResult) localize() {
	i, j := 0, 0
	a, b := res.a.ckpts, res.b.ckpts
	for i < len(a) && j < len(b) {
		switch {
		case a[i].n < b[j].n:
			i++
		case a[i].n > b[j].n:
			j++
		case a[i].chain == b[j].chain:
			res.winLo, res.winLoUS, res.haveLo = a[i].n, a[i].tUS, true
			i++
			j++
		default:
			res.winHi, res.winHiUS, res.haveHi = a[i].n, a[i].tUS, true
			return
		}
	}
}

// diffArtifacts compares two recorded artifacts.
func diffArtifacts(pathA, pathB string) (*diffResult, error) {
	a, err := artifactSide(pathA)
	if err != nil {
		return nil, err
	}
	b, err := artifactSide(pathB)
	if err != nil {
		return nil, err
	}
	res := &diffResult{a: a, b: b}
	if a.chain == b.chain && a.events == b.events {
		res.identical = true
		return res, nil
	}
	res.localize()
	return res, nil
}

// diffRerun re-executes expID live against the recorded artifact: phase 1
// reruns with a digest to localize the divergent checkpoint window, phase 2
// reruns both configurations with full event recording over that window and
// pins the exact first divergent event.
func diffRerun(path, expID string, seed int64, full bool, perturb uint64) (*diffResult, error) {
	art, err := artifactSide(path)
	if err != nil {
		return nil, err
	}
	live, err := rerunDigest(expID, seed, full, perturb, 0, 0, art.run)
	if err != nil {
		return nil, err
	}
	label := fmt.Sprintf("rerun %s/seed=%d", expID, seed)
	if perturb != 0 {
		label += fmt.Sprintf("/perturb=%d", perturb)
	}
	res := &diffResult{a: art, b: digestSide(label, live)}
	if art.chain == live.Chain && art.events == live.Count {
		res.identical = true
		return res, nil
	}
	res.localize()

	// Phase 2: re-execute the window on both sides with full event
	// recording. The window is (winLo, winHi] in dispatch counts; an open
	// end falls back to the run edge.
	lo, hi := res.winLo, res.winHi
	if !res.haveHi {
		hi = maxU64(art.events, live.Count)
	}
	baseDig, err := rerunDigest(expID, seed, full, 0, lo+1, hi+1, art.run)
	if err != nil {
		return nil, err
	}
	pertDig, err := rerunDigest(expID, seed, full, perturb, lo+1, hi+1, art.run)
	if err != nil {
		return nil, err
	}
	if baseDig.Chain != art.chain {
		res.baseNote = fmt.Sprintf("base rerun fingerprint %016x does not reproduce the artifact's %016x "+
			"(different binary, scale, or seed?); the event pinpointed below separates the two reruns",
			baseDig.Chain, art.chain)
	}
	res.digA, res.digB = baseDig, pertDig
	res.recA, res.recB = firstDivergentRec(baseDig.Recs, pertDig.Recs)
	return res, nil
}

// rerunDigest runs one experiment with a digest installed (and, when hi>0,
// a full-event recording window) and returns the digest of the run whose
// tag matches the artifact's.
func rerunDigest(expID string, seed int64, full bool, perturb, lo, hi uint64, tag string) (*sim.Digest, error) {
	if err := validExperiment(expID); err != nil {
		return nil, err
	}
	o := obsOpts{fingerprint: true, perturb: perturb, windowLo: lo, windowHi: hi}
	sink := newObsSink(o, expID, seed)
	if err := runExperimentWith(expID, runOpts{full: full, seed: seed, obs: o}, sink, io.Discard); err != nil {
		return nil, err
	}
	if len(sink.runs) == 0 {
		return nil, fmt.Errorf("experiment %q does not wire the observability sink; rerun mode needs one of the instrumented experiments", expID)
	}
	for _, r := range sink.runs {
		if r.tag == tag && r.rec.Digest != nil {
			return r.rec.Digest, nil
		}
	}
	if len(sink.runs) == 1 && sink.runs[0].rec.Digest != nil {
		return sink.runs[0].rec.Digest, nil
	}
	tags := make([]string, 0, len(sink.runs))
	for _, r := range sink.runs {
		tags = append(tags, r.tag)
	}
	return nil, fmt.Errorf("experiment %q has no run tagged %q (runs: %v)", expID, tag, tags)
}

// firstDivergentRec returns the first pair of recorded events that differ,
// or (nil, nil) when the recorded windows are identical. A side that ends
// early returns a nil rec for that side only.
func firstDivergentRec(a, b []sim.EventRec) (*sim.EventRec, *sim.EventRec) {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i].Clock != b[i].Clock || a[i].Seq != b[i].Seq ||
			a[i].Kind != b[i].Kind || a[i].Pay != b[i].Pay {
			return &a[i], &b[i]
		}
	}
	if len(a) > n {
		return &a[n], nil
	}
	if len(b) > n {
		return nil, &b[n]
	}
	return nil, nil
}

// render writes the human-readable diff report.
func (res *diffResult) render(w io.Writer) {
	for i, s := range []fpSide{res.a, res.b} {
		run := ""
		if s.run != "" {
			run = fmt.Sprintf(" (run %q)", s.run)
		}
		fmt.Fprintf(w, "%c: %s%s: fingerprint %016x over %d events, %d checkpoints\n",
			'A'+i, s.label, run, s.chain, s.events, len(s.ckpts))
	}
	if res.identical {
		fmt.Fprintln(w, "identical: fingerprints and event counts match")
		return
	}
	fmt.Fprintln(w, "DIVERGED")
	switch {
	case res.haveLo && res.haveHi:
		fmt.Fprintf(w, "last matching checkpoint:   event %d @ %.3fus\n", res.winLo, res.winLoUS)
		fmt.Fprintf(w, "first divergent checkpoint: event %d @ %.3fus\n", res.winHi, res.winHiUS)
		fmt.Fprintf(w, "first divergent event lies in window (%d, %d]\n", res.winLo, res.winHi)
	case res.haveHi:
		fmt.Fprintf(w, "first divergent checkpoint: event %d @ %.3fus (the very first comparable checkpoint)\n", res.winHi, res.winHiUS)
		fmt.Fprintf(w, "first divergent event lies in window (0, %d]\n", res.winHi)
	case res.haveLo:
		fmt.Fprintf(w, "last matching checkpoint:   event %d @ %.3fus; divergence is after it\n", res.winLo, res.winLoUS)
	default:
		fmt.Fprintln(w, "no comparable checkpoints; the runs differ from the start or use disjoint ladders")
	}
	if res.baseNote != "" {
		fmt.Fprintf(w, "note: %s\n", res.baseNote)
	}
	switch {
	case res.recA != nil && res.recB != nil:
		fmt.Fprintf(w, "first divergent event: dispatch #%d\n", res.recA.Count)
		fmt.Fprintf(w, "  base:      %s\n", renderRec(res.digA, *res.recA))
		fmt.Fprintf(w, "  perturbed: %s\n", renderRec(res.digB, *res.recB))
	case res.recA != nil:
		fmt.Fprintf(w, "first divergent event: dispatch #%d — only the base run reaches it\n", res.recA.Count)
		fmt.Fprintf(w, "  base:      %s\n", renderRec(res.digA, *res.recA))
	case res.recB != nil:
		fmt.Fprintf(w, "first divergent event: dispatch #%d — only the perturbed run reaches it\n", res.recB.Count)
		fmt.Fprintf(w, "  perturbed: %s\n", renderRec(res.digB, *res.recB))
	case res.digA != nil:
		fmt.Fprintln(w, "recorded windows are identical; divergence is outside the localized window")
	default:
		fmt.Fprintf(w, "rerun with: prioplus-sim diff -exp ID -seed N [-perturb D] %s to pinpoint the exact event\n", res.a.label)
	}
	if res.digA != nil && (res.digA.Truncated() || res.digB.Truncated()) {
		fmt.Fprintln(w, "note: the recording window overflowed and was truncated; the pinpointed event is the first divergence within the recorded prefix")
	}
}

// renderRec formats one recorded event with kind, clock, and decoded
// payload context.
func renderRec(d *sim.Digest, r sim.EventRec) string {
	s := fmt.Sprintf("t=%.3fus seq=%d kind=%s", r.Clock.Micros(), r.Seq, sim.EventKindName(r.Kind))
	if r.PayN == 0 {
		return s + " (no instrumented payload)"
	}
	dev := ""
	if d != nil && d.Names != nil {
		dev = d.Names[r.PayTag]
	}
	if dev == "" {
		dev = fmt.Sprintf("tag%d", r.PayTag)
	}
	s += fmt.Sprintf(" dev=%s %s", dev, netsim.DescribeDigestPayload(r.PayA, r.PayB))
	if r.PayN > 1 {
		s += fmt.Sprintf(" (+%d more payload folds)", r.PayN-1)
	}
	return s
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
