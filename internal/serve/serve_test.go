package serve

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"prioplus/internal/exp"
)

// The shared test experiment: deterministic output, an atomic compute
// counter, and a recorder request so its output carries a fingerprint
// line like a real network experiment. Tests that need to observe a job
// mid-compute register their own gated variant (registerGatedSpec).
var testComputes atomic.Int64

func init() {
	exp.Register(exp.Spec{
		ID:       "testblock",
		Describe: "serve test fixture: counts computes",
		Defaults: exp.RunParams{Seed: 1},
		Run: func(p exp.RunParams, sink exp.Sink, w io.Writer) error {
			testComputes.Add(1)
			if sink != nil {
				sink.Recorder("t")
			}
			fmt.Fprintf(w, "testblock seed=%d full=%v\n", p.Seed, p.Full)
			return nil
		},
	})
}

// registerGatedSpec registers a one-off experiment whose runs block on the
// returned gate, so a test can hold a job in the running state.
func registerGatedSpec(id string) (gate chan struct{}, computes *atomic.Int64) {
	gate = make(chan struct{})
	computes = &atomic.Int64{}
	exp.Register(exp.Spec{
		ID:       id,
		Describe: "serve test fixture: blocks on a private gate",
		Defaults: exp.RunParams{Seed: 1},
		Run: func(p exp.RunParams, sink exp.Sink, w io.Writer) error {
			computes.Add(1)
			<-gate
			if sink != nil {
				sink.Recorder("t")
			}
			fmt.Fprintf(w, "%s seed=%d full=%v\n", id, p.Seed, p.Full)
			return nil
		},
	})
	return gate, computes
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, s *Scheduler, id string) JobSnapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		switch snap.Status {
		case JobDone, JobFailed, JobCanceled:
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobSnapshot{}
}

// waitStatus polls until the job reaches the given state.
func waitStatus(t *testing.T, s *Scheduler, id, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Status == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

// TestConcurrentIdenticalDedup is the determinism contract under -race:
// two identical specs submitted while the first is still computing yield
// ONE compute (the second attaches as a follower), byte-identical outputs,
// and the same fingerprint; a third submission after completion is a pure
// cache hit with the same bytes again.
func TestConcurrentIdenticalDedup(t *testing.T) {
	gate, computes := registerGatedSpec("testdedup")
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Close()

	spec := JobSpec{Experiment: "testdedup", Params: exp.RunParams{Seed: 100}}
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the leader is actually computing so the second submission
	// must take the follower path, not the cache path.
	waitStatus(t, s, j1.ID, JobRunning)
	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Cache != "hit" {
		t.Errorf("concurrent identical submission cache=%q, want hit", j2.Cache)
	}
	close(gate)

	f1, f2 := waitJob(t, s, j1.ID), waitJob(t, s, j2.ID)
	if f1.Status != JobDone || f2.Status != JobDone {
		t.Fatalf("statuses %s/%s, want done/done (%s %s)", f1.Status, f2.Status, f1.Err, f2.Err)
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("%d computes for two identical jobs, want 1", got)
	}
	r1, _ := s.Result(j1.ID)
	r2, _ := s.Result(j2.ID)
	if r1.Output == "" || r1.Output != r2.Output {
		t.Errorf("outputs differ:\n%q\n%q", r1.Output, r2.Output)
	}
	if f1.FP == "" || f1.FP != f2.FP {
		t.Errorf("fingerprints differ: %q vs %q", f1.FP, f2.FP)
	}

	j3, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j3.Status != JobDone || j3.Cache != "hit" || j3.FP != f1.FP {
		t.Errorf("post-completion resubmit: status=%s cache=%s fp=%s, want immediate hit with fp %s",
			j3.Status, j3.Cache, j3.FP, f1.FP)
	}
	r3, _ := s.Result(j3.ID)
	if r3.Output != r1.Output {
		t.Error("cache hit returned different bytes")
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("%d computes after cache hit, want still 1", got)
	}
}

// TestCacheKeyInvariance: params decoded from reordered JSON with defaults
// spelled out hit the cache entry created by the terse spelling.
func TestCacheKeyInvariance(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Close()

	p1, err := exp.DecodeParams([]byte(`{"seed": 200}`), exp.RunParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := s.Submit(JobSpec{Experiment: "testblock", Params: p1})
	if err != nil {
		t.Fatal(err)
	}
	f1 := waitJob(t, s, j1.ID)

	p2, err := exp.DecodeParams([]byte(`{"perturb": 0, "full": false, "seed": 200, "series": false}`), exp.RunParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(JobSpec{Experiment: "testblock", Params: p2})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Status != JobDone || j2.Cache != "hit" || j2.FP != f1.FP {
		t.Errorf("reordered-params resubmit: status=%s cache=%s, want immediate hit", j2.Status, j2.Cache)
	}
}

// TestBackpressure: with one worker occupied and a one-slot queue filled,
// the next submission is refused with ErrQueueFull — and succeeds again
// once the queue drains.
func TestBackpressure(t *testing.T) {
	block, _ := registerGatedSpec("testblock2")
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()

	j1, err := s.Submit(JobSpec{Experiment: "testblock2", Params: exp.RunParams{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, j1.ID, JobRunning) // worker occupied, queue empty
	j2, err := s.Submit(JobSpec{Experiment: "testblock2", Params: exp.RunParams{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Experiment: "testblock2", Params: exp.RunParams{Seed: 3}}); err != ErrQueueFull {
		t.Errorf("submit into full queue: err=%v, want ErrQueueFull", err)
	}
	snap := s.Jobs()
	if snap.Queue.Depth != 1 || snap.Queue.Capacity != 1 {
		t.Errorf("queue stats %+v, want depth 1/1", snap.Queue)
	}
	close(block)
	waitJob(t, s, j1.ID)
	waitJob(t, s, j2.ID)
	if j4, err := s.Submit(JobSpec{Experiment: "testblock2", Params: exp.RunParams{Seed: 4}}); err != nil {
		t.Errorf("submit after drain refused: %v", err)
	} else {
		waitJob(t, s, j4.ID)
	}
}

// TestUnknownExperiment: submission of an unregistered id fails up front.
func TestUnknownExperiment(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(JobSpec{Experiment: "fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestCancel: queued jobs cancel; running and finished ones refuse; the
// canceled job never computes.
func TestCancel(t *testing.T) {
	block, computes := registerGatedSpec("testblock3")
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()

	j1, _ := s.Submit(JobSpec{Experiment: "testblock3", Params: exp.RunParams{Seed: 1}})
	waitStatus(t, s, j1.ID, JobRunning)
	j2, _ := s.Submit(JobSpec{Experiment: "testblock3", Params: exp.RunParams{Seed: 2}})

	if err := s.Cancel(j2.ID); err != nil {
		t.Fatalf("cancel queued job: %v", err)
	}
	if snap, _ := s.Job(j2.ID); snap.Status != JobCanceled {
		t.Errorf("canceled job status %s", snap.Status)
	}
	if err := s.Cancel(j1.ID); err != ErrNotCancelable {
		t.Errorf("cancel running job: err=%v, want ErrNotCancelable", err)
	}
	if err := s.Cancel("nope"); err != ErrNotFound {
		t.Errorf("cancel unknown job: err=%v, want ErrNotFound", err)
	}
	close(block)
	waitJob(t, s, j1.ID)
	if err := s.Cancel(j1.ID); err != ErrNotCancelable {
		t.Errorf("cancel finished job: err=%v, want ErrNotCancelable", err)
	}
	// The canceled job's compute was skipped: exactly one compute (j1).
	s.Close()
	if got := computes.Load(); got != 1 {
		t.Errorf("%d computes, want 1 (canceled job must not run)", got)
	}
	// A canceled job is terminal: Result returns it with status canceled
	// and empty output rather than an error.
	res, rerr := s.Result(j2.ID)
	if rerr != nil || res.Status != JobCanceled || res.Output != "" {
		t.Errorf("result of canceled job: %+v, %v", res, rerr)
	}
}

// TestManifestCrossCheck: a manifest-covered run whose fingerprint
// disagrees with the manifest fails the job with a determinism-violation
// error; an agreeing manifest lets it pass, and the two schedulers use
// distinct cache keys (manifest identity is part of the key).
func TestManifestCrossCheck(t *testing.T) {
	// First learn the true fingerprint.
	s0 := New(Config{Workers: 1})
	j0, _ := s0.Submit(JobSpec{Experiment: "testblock", Params: exp.RunParams{Seed: 300}})
	f0 := waitJob(t, s0, j0.ID)
	s0.Close()
	if f0.Status != JobDone {
		t.Fatalf("probe run failed: %s", f0.Err)
	}

	good := &Manifest{Runs: map[string]string{"testblock/seed=300": f0.FP}}
	sGood := New(Config{Workers: 1, Manifest: good})
	jg, _ := sGood.Submit(JobSpec{Experiment: "testblock", Params: exp.RunParams{Seed: 300}})
	fg := waitJob(t, sGood, jg.ID)
	sGood.Close()
	if fg.Status != JobDone {
		t.Errorf("run under agreeing manifest failed: %s", fg.Err)
	}

	bad := &Manifest{Runs: map[string]string{"testblock/seed=300": "deadbeefdeadbeef"}}
	sBad := New(Config{Workers: 1, Manifest: bad})
	jb, _ := sBad.Submit(JobSpec{Experiment: "testblock", Params: exp.RunParams{Seed: 300}})
	fb := waitJob(t, sBad, jb.ID)
	sBad.Close()
	if fb.Status != JobFailed {
		t.Fatalf("run under disagreeing manifest: status=%s, want failed", fb.Status)
	}
	if want := "determinism violation"; !strings.Contains(fb.Err, want) {
		t.Errorf("failure message %q lacks %q", fb.Err, want)
	}
}

// TestTimeout: a job exceeding the per-job wall-clock ceiling fails with a
// timeout error; the abandoned run goroutine is released at gate close.
func TestTimeout(t *testing.T) {
	block, _ := registerGatedSpec("testblock4")
	defer close(block)
	s := New(Config{Workers: 1, Timeout: 20 * time.Millisecond})
	defer s.Close()
	j, _ := s.Submit(JobSpec{Experiment: "testblock4", Params: exp.RunParams{Seed: 1}})
	f := waitJob(t, s, j.ID)
	if f.Status != JobFailed || !strings.Contains(f.Err, "exceeded timeout") {
		t.Errorf("timed-out job: status=%s err=%q, want failed/timeout", f.Status, f.Err)
	}
}

// TestFig2AgainstCommittedManifest: a real registered experiment run
// through the job server reproduces the committed manifest fingerprint —
// i.e. server bytes == the CLI bytes the manifest was generated from.
func TestFig2AgainstCommittedManifest(t *testing.T) {
	m, err := LoadManifest("../../testdata/fingerprints.json")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Manifest: m})
	defer s.Close()
	j, err := s.Submit(JobSpec{Experiment: "fig2", Params: exp.RunParams{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	f := waitJob(t, s, j.ID)
	if f.Status != JobDone {
		t.Fatalf("fig2 job failed: %s", f.Err)
	}
	if want := m.Runs["fig2/seed=1"]; f.FP != want {
		t.Errorf("fig2 fp=%s, manifest has %s", f.FP, want)
	}
	res, err := s.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output == "" || OutputFingerprint(res.Output) != f.FP {
		t.Error("result output does not hash to the reported fingerprint")
	}
}

// TestCacheEviction: the FIFO cache holds at most CacheSize entries and
// evicts the oldest.
func TestCacheEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", cacheEntry{fp: "1"})
	c.put("b", cacheEntry{fp: "2"})
	c.put("c", cacheEntry{fp: "3"})
	if c.len() != 2 {
		t.Fatalf("cache len %d, want 2", c.len())
	}
	if _, ok := c.get("a"); ok {
		t.Error("oldest entry not evicted")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("entry %q missing", k)
		}
	}
	// Re-put of an existing key updates in place, no eviction.
	c.put("b", cacheEntry{fp: "2x"})
	if e, _ := c.get("c"); c.len() != 2 || e.fp != "3" {
		t.Error("update evicted a live entry")
	}
}
