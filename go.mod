module prioplus

go 1.22
