// Package workload generates the traffic the paper evaluates on: the
// WebSearch flow-size distribution under Poisson arrivals, incast bursts,
// synthetic Hadoop-style coflows with file-request traffic, and ring
// all-reduce traffic for ML training jobs.
package workload

import (
	"math/rand"
	"sort"

	"prioplus/internal/sim"
)

// SizeDist is an empirical flow-size CDF sampled by inverse transform with
// linear interpolation between knots.
type SizeDist struct {
	sizes []float64 // bytes, ascending
	cdf   []float64 // cumulative probability at each size
}

// NewSizeDist builds a distribution from (bytes, cumulative probability)
// knots. The first knot's probability may exceed 0 (atom at the minimum
// size); the last must be 1.
func NewSizeDist(points [][2]float64) *SizeDist {
	d := &SizeDist{}
	for _, p := range points {
		d.sizes = append(d.sizes, p[0])
		d.cdf = append(d.cdf, p[1])
	}
	if d.cdf[len(d.cdf)-1] != 1 {
		panic("workload: CDF must end at 1")
	}
	return d
}

// WebSearch returns the DCTCP web-search flow-size distribution, the
// standard workload the paper generates traffic from (mean ~1.6 MB, max
// 30 MB, ~50% of flows under 100 KB).
func WebSearch() *SizeDist {
	return NewSizeDist([][2]float64{
		{6e3, 0.00},
		{6e3, 0.15},
		{13e3, 0.20},
		{19e3, 0.30},
		{33e3, 0.40},
		{53e3, 0.53},
		{133e3, 0.60},
		{667e3, 0.70},
		{1467e3, 0.80},
		{3333e3, 0.90},
		{6667e3, 0.97},
		{20e6, 1.00},
	})
}

// Sample draws a flow size in bytes.
func (d *SizeDist) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(d.cdf, u)
	if i == 0 {
		return int64(d.sizes[0])
	}
	if i >= len(d.cdf) {
		i = len(d.cdf) - 1
	}
	lo, hi := d.sizes[i-1], d.sizes[i]
	clo, chi := d.cdf[i-1], d.cdf[i]
	if chi == clo {
		return int64(hi)
	}
	frac := (u - clo) / (chi - clo)
	return int64(lo + frac*(hi-lo))
}

// Mean returns the distribution mean in bytes.
func (d *SizeDist) Mean() float64 {
	mean := 0.0
	prev := 0.0
	for i := range d.sizes {
		p := d.cdf[i] - prev
		prev = d.cdf[i]
		if i == 0 {
			mean += p * d.sizes[i]
		} else {
			mean += p * (d.sizes[i-1] + d.sizes[i]) / 2
		}
	}
	return mean
}

// Quantile returns the size at cumulative probability q.
func (d *SizeDist) Quantile(q float64) int64 {
	i := sort.SearchFloat64s(d.cdf, q)
	if i >= len(d.sizes) {
		i = len(d.sizes) - 1
	}
	return int64(d.sizes[i])
}

// FlowEvent is one generated flow arrival.
type FlowEvent struct {
	At   sim.Time
	Src  int
	Dst  int
	Size int64
}

// PoissonConfig drives the open-loop flow generator used in the flow
// scheduling scenario: flows arrive Poisson at a rate that loads every
// host's access link to Load.
type PoissonConfig struct {
	Hosts    int     // number of hosts; src/dst drawn uniformly, src != dst
	Load     float64 // target utilization of each host link (0..1)
	LinkBps  float64 // host link speed, bits/s
	Dist     *SizeDist
	Duration sim.Time
	Rng      *rand.Rand
}

// Poisson generates flow arrivals for the configured duration. The
// aggregate arrival rate is hosts * load * linkRate / meanSize, so each
// host's outgoing link carries Load on average.
func Poisson(cfg PoissonConfig) []FlowEvent {
	mean := cfg.Dist.Mean()
	ratePerSec := float64(cfg.Hosts) * cfg.Load * cfg.LinkBps / 8 / mean
	var out []FlowEvent
	t := 0.0
	end := cfg.Duration.Seconds()
	for {
		t += cfg.Rng.ExpFloat64() / ratePerSec
		if t >= end {
			return out
		}
		src := cfg.Rng.Intn(cfg.Hosts)
		dst := cfg.Rng.Intn(cfg.Hosts - 1)
		if dst >= src {
			dst++
		}
		out = append(out, FlowEvent{
			At:   sim.FromSeconds(t),
			Src:  src,
			Dst:  dst,
			Size: cfg.Dist.Sample(cfg.Rng),
		})
	}
}

// Incast returns n synchronized flows of the given size from distinct
// senders to one receiver, the paper's Fig 10b stress pattern.
func Incast(n int, size int64, dst int, at sim.Time) []FlowEvent {
	out := make([]FlowEvent, 0, n)
	src := 0
	for len(out) < n {
		if src == dst {
			src++
			continue
		}
		out = append(out, FlowEvent{At: at, Src: src, Dst: dst, Size: size})
		src++
	}
	return out
}
