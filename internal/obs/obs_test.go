package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("net/drops")
	c.Add(3)
	c.Add(2)
	if got := c.Value(); got != 5 {
		t.Errorf("counter value = %v, want 5", got)
	}
	if c2 := r.Counter("net/drops"); c2 != c {
		t.Error("Counter did not return the existing counter")
	}

	g := r.Gauge("net/buffer_hwm_bytes")
	g.Observe(10)
	g.Observe(40)
	g.Observe(25)
	if g.Value() != 25 || g.Max() != 40 {
		t.Errorf("gauge value/max = %v/%v, want 25/40", g.Value(), g.Max())
	}

	if names := r.Names(); len(names) != 2 || names[0] != "net/drops" || names[1] != "net/buffer_hwm_bytes" {
		t.Errorf("Names() = %v, want registration order", names)
	}
	if v, ok := r.Value("net/drops"); !ok || v != 5 {
		t.Errorf("Value(net/drops) = %v,%v", v, ok)
	}
	// Gauges report their high-water mark through Value/Snapshot.
	if v, ok := r.Value("net/buffer_hwm_bytes"); !ok || v != 40 {
		t.Errorf("Value(gauge) = %v,%v, want max 40", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Error("Value(missing) reported ok")
	}
	snap := r.Snapshot()
	if snap["net/drops"] != 5 || snap["net/buffer_hwm_bytes"] != 40 {
		t.Errorf("Snapshot = %v", snap)
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("Gauge on a counter name did not panic")
		}
	}()
	r.Gauge("x")
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	sink.Trace(obs.Event{T: 1500, Kind: obs.Enqueue, Dev: "tor0", Port: 2, Queue: 1, Flow: 7, Seq: 3, Bytes: 1000, QLen: 4000})
	sink.Trace(obs.Event{T: 2000, Kind: obs.Drop, Dev: "tor0", Port: 2, Bytes: 1000})
	sink.Trace(obs.Event{T: sim.Time(3000), Kind: obs.FlowDone, Flow: 7, Bytes: 50_000, Seq: 123_456})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Events != 3 {
		t.Errorf("Events = %d, want 3", sink.Events)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	// Every line must be valid JSON with the documented field names.
	var rec map[string]any
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("line 0 is not JSON: %v\n%s", err, lines[0])
	}
	want := map[string]any{
		"t_ps": 1500.0, "kind": "enq", "dev": "tor0", "port": 2.0,
		"q": 1.0, "flow": 7.0, "seq": 3.0, "bytes": 1000.0, "qlen": 4000.0,
	}
	for k, v := range want {
		if rec[k] != v {
			t.Errorf("line 0 %s = %v, want %v", k, rec[k], v)
		}
	}
	// Zero-valued fields are omitted to keep traces compact.
	rec = nil
	if err := json.Unmarshal(lines[1], &rec); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if rec["kind"] != "drop" {
		t.Errorf("line 1 kind = %v", rec["kind"])
	}
	for _, k := range []string{"q", "flow", "seq", "qlen"} {
		if _, present := rec[k]; present {
			t.Errorf("line 1 kept zero field %q: %s", k, lines[1])
		}
	}
	rec = nil
	if err := json.Unmarshal(lines[2], &rec); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if rec["kind"] != "fct" || rec["seq"] != 123456.0 {
		t.Errorf("line 2 = %v", rec)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[obs.Kind]string{
		obs.Enqueue: "enq", obs.Dequeue: "deq", obs.Drop: "drop",
		obs.Mark: "mark", obs.Pause: "pause", obs.Resume: "resume",
		obs.FlowDone: "fct",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestTraceFunc(t *testing.T) {
	var got []obs.Event
	var tr obs.Tracer = obs.TraceFunc(func(e obs.Event) { got = append(got, e) })
	tr.Trace(obs.Event{Kind: obs.Mark})
	if len(got) != 1 || got[0].Kind != obs.Mark {
		t.Errorf("TraceFunc delivered %v", got)
	}
}

func TestRecorder(t *testing.T) {
	rec := obs.NewRecorder()
	if rec.Metrics == nil {
		t.Fatal("NewRecorder left Metrics nil")
	}
	if rec.Trace != nil {
		t.Error("NewRecorder should leave Trace nil (tracing is opt-in)")
	}
}
