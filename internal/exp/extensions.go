package exp

import (
	"math/rand"

	"prioplus/internal/cc"
	"prioplus/internal/core"
	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/noise"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
)

// This file contains the ablations of §6.1 beyond Fig 10c and the two
// extensions the paper sketches as future work: ECN-based virtual priority
// via priority-dependent marking (Appendix B) and weighted virtual
// priority (§7).

// AblationFilterResult compares the two-consecutive filter against
// reacting to a single above-limit measurement.
type AblationFilterResult struct {
	ConsecLimit int
	Yields      int64   // spurious yields under pure measurement noise
	Util        float64 // achieved utilization
}

// AblationFilter runs five same-priority flows under 2x-scaled delay noise
// with a tight channel, with ConsecLimit 1 (no filter) and 2 (paper).
// Without the filter, long-tail noise spikes trigger spurious yields.
func AblationFilter() []AblationFilterResult {
	run := func(consec int) AblationFilterResult {
		// 2x-scaled noise replaces microNet's standard model, so the star is
		// built directly with the scaled sampler installed up front.
		eng := sim.NewEngine()
		cfg := topo.DefaultConfig()
		cfg.LinkDelay = 3 * sim.Microsecond
		cfg.Seed = 51
		net := harness.New(topo.Star(eng, 7, cfg), 51, harness.WithNoise(noiseScaled(53, 2)))
		recv := 6
		base := net.Topo.BaseRTT(0, recv)
		plan := core.DefaultPlan(base)
		flows := make([]*core.PrioPlus, 5)
		for i := range flows {
			sw := cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(i, recv)))
			ppc := core.DefaultConfig(plan.Channel(1), 8)
			ppc.ConsecLimit = consec
			flows[i] = core.New(sw, ppc)
			net.AddFlow(harness.Flow{Src: i, Dst: recv, Size: 1 << 30, Prio: 0, Algo: flows[i]})
		}
		dur := 4 * sim.Millisecond
		rs := net.SampleRates(recv, func(*netsim.Packet) int { return 0 }, 100*sim.Microsecond, dur)
		eng.RunUntil(dur)
		var yields int64
		for _, f := range flows {
			yields += f.Yields
		}
		return AblationFilterResult{
			ConsecLimit: consec,
			Yields:      yields,
			Util:        rs.Between(sim.Millisecond, dur, 0) / 100,
		}
	}
	return []AblationFilterResult{run(1), run(2)}
}

// AblationCardinalityResult compares incast delay containment with and
// without flow-cardinality estimation.
type AblationCardinalityResult struct {
	Estimation    bool
	OverLimitFrac float64
}

// AblationCardinality reruns the Fig 10b incast with the estimator off:
// every flow keeps #flow = 1 and linear-starts at full W_LS, so the
// aggregate repeatedly overshoots D_limit (§4.3.1's "problematic cycle").
func AblationCardinality(n int) []AblationCardinalityResult {
	run := func(enabled bool) AblationCardinalityResult {
		net, eng := microNet(n+2, 57, nil, Options{})
		recv := n + 1
		base := net.Topo.BaseRTT(0, recv)
		plan := core.DefaultPlan(base)
		ch := plan.Channel(4)
		for i := 0; i < n; i++ {
			sw := cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(i, recv)))
			ppc := core.DefaultConfig(ch, 8)
			ppc.DisableCardinality = !enabled
			net.AddFlow(harness.Flow{Src: i, Dst: recv, Size: 1 << 30, Prio: 0,
				Algo: core.New(sw, ppc)})
		}
		var over, samples int
		for i := 0; i < 600; i++ {
			eng.At(sim.Millisecond+sim.Time(i)*5*sim.Microsecond, func() {
				q := net.Topo.Switches[0].Ports[recv].TotalQueuedBytes()
				delay := base + sim.Time(float64(q)/(100e9/8)*1e12)
				samples++
				if delay > ch.Limit {
					over++
				}
			})
		}
		eng.RunUntil(4 * sim.Millisecond)
		return AblationCardinalityResult{Estimation: enabled, OverLimitFrac: float64(over) / float64(samples)}
	}
	return []AblationCardinalityResult{run(true), run(false)}
}

// AblationProbeResult compares probe behavior between the paper's
// collision-avoidance schedule and naive once-per-RTT probing.
type AblationProbeResult struct {
	Scheme    string  // "collision-avoidance" or "naive"
	ProbeGbps float64 // total probe bandwidth at the bottleneck while yielded
	// ProbeRateByPrio is the per-flow probe rate (probes/ms) for yielded
	// flows at priorities 0..3. Collision avoidance waits out
	// (delay - D_target), so deeper priorities probe less; naive probing
	// is uniform (§4.2.1: "keeps the probing frequency of higher-priority
	// flows while decreasing the bandwidth usage of lower-priority ones").
	ProbeRateByPrio [4]float64
	ReclaimUS       float64 // time for lows to reach 80% after highs end
}

// AblationProbe yields 40 low-priority flows (10 each at priorities 0-3)
// under ten high-priority flows and measures per-priority probe rates,
// total probe load, and reclaim latency.
func AblationProbe() []AblationProbeResult {
	run := func(naive bool) AblationProbeResult {
		const perPrio, nHigh = 10, 10
		const nLow = 4 * perPrio
		net, eng := microNet(nLow+nHigh+2, 61, nil, Options{})
		recv := nLow + nHigh
		base := net.Topo.BaseRTT(0, recv)
		plan := core.DefaultPlan(base)
		for i := 0; i < nLow; i++ {
			sw := cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(i, recv)))
			ppc := core.DefaultConfig(plan.Channel(i/perPrio), 8)
			ppc.NaiveProbe = naive
			ppc.NoProbeJitter = naive
			net.AddFlow(harness.Flow{Src: i, Dst: recv, Size: 1 << 30, Prio: 0,
				Algo: core.New(sw, ppc)})
		}
		// Ten high-priority flows preempt the lows for ~4 ms.
		var highEnd sim.Time
		remaining := nHigh
		for i := 0; i < nHigh; i++ {
			src := nLow + i
			hi := core.New(
				cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(src, recv))),
				core.DefaultConfig(plan.Channel(6), 8))
			net.AddFlow(harness.Flow{Src: src, Dst: recv, Size: 5 << 20, Prio: 0, Algo: hi,
				StartAt: sim.Millisecond,
				OnComplete: func(sim.Time) {
					remaining--
					if remaining == 0 {
						highEnd = eng.Now()
					}
				}})
		}
		var probeBytes int64
		var probesByPrio [4]int64
		winFrom, winTo := 2500*sim.Microsecond, 4500*sim.Microsecond
		inner := net.Topo.Hosts[recv].Sink
		net.Topo.Hosts[recv].Sink = func(pkt *netsim.Packet) {
			if pkt.Type == netsim.Probe && eng.Now() > winFrom && eng.Now() <= winTo {
				probeBytes += int64(pkt.Wire)
				if pkt.Src < nLow {
					probesByPrio[pkt.Src/perPrio]++
				}
			}
			inner(pkt)
		}
		dur := 9 * sim.Millisecond
		rs := net.SampleRates(recv, func(p *netsim.Packet) int {
			if p.Src >= nLow {
				return 1
			}
			return 0
		}, 25*sim.Microsecond, dur)
		eng.RunUntil(dur)
		res := AblationProbeResult{
			Scheme:    map[bool]string{true: "naive", false: "collision-avoidance"}[naive],
			ProbeGbps: float64(probeBytes) * 8 / (winTo - winFrom).Seconds() / 1e9,
		}
		winMS := (winTo - winFrom).Millis()
		for p := 0; p < 4; p++ {
			res.ProbeRateByPrio[p] = float64(probesByPrio[p]) / float64(perPrio) / winMS
		}
		res.ReclaimUS = (dur - highEnd).Micros()
		for i, t := range rs.Times {
			if highEnd > 0 && t > highEnd && rs.Rates[i][0] >= 80 {
				res.ReclaimUS = (t - highEnd).Micros()
				break
			}
		}
		return res
	}
	return []AblationProbeResult{run(false), run(true)}
}

// noiseScaled builds a seeded long-tail noise sampler at the given scale.
func noiseScaled(seed int64, scale float64) func() sim.Time {
	return noise.NewLongTail(rand.New(rand.NewSource(seed)), scale).Sample
}

// ECNPrioResult is the Appendix B extension: DCTCP flows with priority-
// dependent ECN thresholds in one queue.
type ECNPrioResult struct {
	HighShare float64 // share of the high-vprio group in steady state
	Util      float64
}

// ECNPrio runs 2 high-vprio and 2 low-vprio DCTCP flows through one
// physical queue; the switch marks low-vprio packets at a low threshold
// (25 KB) and high-vprio packets at a high one (150 KB). The low flows see
// congestion first and back off, approximating priority — weighted, not
// strict, which is why the paper leaves ECN support as future work.
func ECNPrio() ECNPrioResult {
	net, eng := microNet(5, 67, func(cfg *topo.Config) {
		cfg.Buffer.ECNKByVPrio = []int{25_000, 150_000}
	}, Options{})
	recv := 4
	for i := 0; i < 4; i++ {
		d := cc.NewDCTCP(cc.DefaultDCTCPConfig(net.BDPPackets(i, recv)))
		net.AddFlow(harness.Flow{Src: i, Dst: recv, Size: 1 << 30, Prio: 0,
			VPrio: int16(i / 2), Algo: d})
	}
	dur := 4 * sim.Millisecond
	rs := net.SampleRates(recv, func(p *netsim.Packet) int { return int(p.VPrio) }, 50*sim.Microsecond, dur)
	eng.RunUntil(dur)
	hi := rs.Between(dur/2, dur, 1)
	lo := rs.Between(dur/2, dur, 0)
	return ECNPrioResult{HighShare: hi / (hi + lo), Util: (hi + lo) / 100}
}

// WeightedVPResult is the §7 extension: weighted sharing inside one
// channel combined with strict priority across channels.
type WeightedVPResult struct {
	// ShareRatio is the in-channel bandwidth ratio of the weight-4 flow
	// to the weight-1 flow (ideal: 4).
	ShareRatio float64
	// HighStrict is the higher-channel flow's share while active (ideal:
	// ~1, strictness is preserved).
	HighStrict float64
}

// WeightedVP runs two flows in one channel with AI weights 1 and 4, plus a
// strictly higher-priority flow that preempts both for part of the run.
func WeightedVP() WeightedVPResult {
	net, eng := microNet(4, 71, nil, Options{})
	recv := 3
	base := net.Topo.BaseRTT(0, recv)
	plan := core.DefaultPlan(base)
	mk := func(src int, weight float64, prio int) *core.PrioPlus {
		sw := cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(src, recv)))
		ppc := core.DefaultConfig(plan.Channel(prio), 8)
		ppc.Weight = weight
		return core.New(sw, ppc)
	}
	// Paced senders: in-channel sharing is then governed by the window
	// ratio (arrival rate = cwnd/RTT), which the AI weighting controls.
	net.AddFlow(harness.Flow{Src: 0, Dst: recv, Size: 1 << 30, Prio: 0, Algo: mk(0, 1, 1), Paced: true})
	net.AddFlow(harness.Flow{Src: 1, Dst: recv, Size: 1 << 30, Prio: 0, Algo: mk(1, 4, 1), Paced: true})
	// Weighted AIMD converges with a time constant of several hundred
	// RTTs (the per-RTT decrease fraction at equilibrium is small), so
	// shares are measured late in a 20 ms run. A strictly higher channel
	// preempts both in [20 ms, ~21 ms).
	var highEnd sim.Time
	net.AddFlow(harness.Flow{Src: 2, Dst: recv, Size: 12 << 20, Prio: 0, Algo: mk(2, 1, 6), Paced: true,
		StartAt:    20 * sim.Millisecond,
		OnComplete: func(sim.Time) { highEnd = eng.Now() }})
	dur := 22 * sim.Millisecond
	rs := net.SampleRates(recv, func(p *netsim.Packet) int { return p.Src }, 50*sim.Microsecond, dur)
	eng.RunUntil(dur)
	w1 := rs.Between(14*sim.Millisecond, 20*sim.Millisecond, 0)
	w4 := rs.Between(14*sim.Millisecond, 20*sim.Millisecond, 1)
	hiFrom, hiTo := 20*sim.Millisecond+300*sim.Microsecond, highEnd-100*sim.Microsecond
	hi := rs.Between(hiFrom, hiTo, 2)
	all := hi + rs.Between(hiFrom, hiTo, 0) + rs.Between(hiFrom, hiTo, 1)
	return WeightedVPResult{
		ShareRatio: w4 / w1,
		HighStrict: hi / all,
	}
}
