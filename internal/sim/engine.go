package sim

import (
	"container/heap"
	"sync/atomic"
)

// totalProcessed accumulates events executed across every engine in the
// process, for batch-level events/sec reporting (internal/runner fans
// engines across goroutines, so the counter is atomic). It is updated once
// per RunUntil call, not per event, so the hot loop stays free of atomics.
var totalProcessed atomic.Uint64

// TotalProcessed returns the number of events executed by all engines in
// this process since it started. Sample it before and after a batch to
// compute an events/sec rate.
func TotalProcessed() uint64 { return totalProcessed.Load() }

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it; a zero Event must not be constructed directly.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // position in the heap, -1 once popped
	canceled bool
	recycle  bool // fire-and-forget: no caller holds a reference
}

// At returns the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. The zero value is
// not usable; create one with NewEngine.
type Engine struct {
	now       Time
	seq       uint64
	events    eventHeap
	stopped   bool
	processed uint64
	free      []*Event // recycled fire-and-forget events
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a logic error in the caller.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d after the current time. A negative d is
// treated as zero.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Post schedules fn to run d after the current time without returning the
// event, allowing the engine to recycle it. Use for fire-and-forget
// scheduling on hot paths (per-packet events); events scheduled this way
// cannot be canceled.
func (e *Engine) Post(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
		*ev = Event{at: e.now + d, seq: e.seq, fn: fn, recycle: true}
	} else {
		ev = &Event{at: e.now + d, seq: e.seq, fn: fn, recycle: true}
	}
	e.seq++
	heap.Push(&e.events, ev)
}

// Cancel removes ev from the schedule. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.events, ev.index)
	}
}

// Stop makes the current Run or RunUntil return after the executing event
// completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the schedule is empty or Stop is called.
func (e *Engine) Run() { e.RunUntil(Time(1<<63 - 1)) }

// RunUntil executes events with timestamps <= end, then sets the clock to
// end (unless the run was stopped early or ran out of events beyond end).
func (e *Engine) RunUntil(end Time) {
	start := e.processed
	defer func() { totalProcessed.Add(e.processed - start) }()
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > end {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		e.processed++
		fn := next.fn
		if next.recycle {
			next.fn = nil
			e.free = append(e.free, next)
		}
		fn()
	}
	if !e.stopped && e.now < end && end < Time(1<<63-1) {
		e.now = end
	}
}
