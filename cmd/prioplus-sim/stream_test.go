package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prioplus/internal/obs"
	"prioplus/internal/obs/stream"
	"prioplus/internal/runner"
)

// TestStreamingDeterminism pins the live-streaming contract: a run with a
// hub attached produces byte-identical figure output to a plain run, the
// streamed line sequence is byte-identical to the on-disk artifact, and a
// slow subscriber drops lines (with a counter) instead of stalling the
// run. CI runs this under -race.
func TestStreamingDeterminism(t *testing.T) {
	var plain bytes.Buffer
	if err := runExperiment("fig10b", runOpts{seed: 1}, &plain); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	hub := stream.NewHub()
	sub := hub.Subscribe(1 << 20)
	slow := hub.Subscribe(2) // never read until the run ends
	var live bytes.Buffer
	err := runExperiment("fig10b", runOpts{seed: 1, obs: obsOpts{dir: dir, hub: hub}}, &live)
	if err != nil {
		t.Fatal(err)
	}
	hub.Close()

	if plain.String() != live.String() {
		t.Errorf("figure output changed with streaming enabled:\nplain:\n%s\nlive:\n%s",
			plain.String(), live.String())
	}

	var streamed bytes.Buffer
	for msg := range sub.C() {
		if msg.Run != "fig10b__incast__seed1" {
			t.Fatalf("streamed run stem = %q", msg.Run)
		}
		streamed.Write(msg.Line)
		streamed.WriteByte('\n')
	}
	disk, err := os.ReadFile(filepath.Join(dir, "fig10b__incast__seed1.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), disk) {
		t.Errorf("streamed lines differ from on-disk artifact: %d vs %d bytes",
			streamed.Len(), len(disk))
	}
	if sub.Dropped() != 0 {
		t.Errorf("large subscriber dropped %d lines", sub.Dropped())
	}

	got := 0
	for range slow.C() {
		got++
	}
	if got != 2 || slow.Dropped() == 0 {
		t.Errorf("slow subscriber: got %d lines, dropped %d; want 2 kept and the rest counted",
			got, slow.Dropped())
	}
}

// TestStreamOnlyRun: -listen without -series still produces a full artifact
// stream (the hub is the only sink).
func TestStreamOnlyRun(t *testing.T) {
	hub := stream.NewHub()
	sub := hub.Subscribe(1 << 20)
	if err := runExperiment("fig10b", runOpts{seed: 1, obs: obsOpts{hub: hub}}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	hub.Close()
	var first string
	n := 0
	for msg := range sub.C() {
		if n == 0 {
			first = string(msg.Line)
		}
		n++
	}
	if n < 2 {
		t.Fatalf("stream-only run published %d lines", n)
	}
	if !strings.Contains(first, `"type":"meta"`) ||
		!strings.Contains(first, fmt.Sprintf(`"v":%d`, obs.ArtifactVersion)) {
		t.Errorf("first streamed line = %q, want a versioned meta line", first)
	}
}

// TestCostRuntimeDeterminism pins the self-observability contract: cost
// attribution and runtime gauges must not perturb figure bytes, and their
// series/metrics land in the artifact.
func TestCostRuntimeDeterminism(t *testing.T) {
	var plain bytes.Buffer
	if err := runExperiment("fig10b", runOpts{seed: 1}, &plain); err != nil {
		t.Fatal(err)
	}

	// Cost alone (no artifact sink): output identical.
	var costOnly bytes.Buffer
	if err := runExperiment("fig10b", runOpts{seed: 1, obs: obsOpts{cost: true}}, &costOnly); err != nil {
		t.Fatal(err)
	}
	if plain.String() != costOnly.String() {
		t.Errorf("figure output changed with -cost:\nplain:\n%s\ncost:\n%s",
			plain.String(), costOnly.String())
	}

	// Cost + runtime with an artifact: output identical, artifact carries
	// the new series and metrics.
	dir := t.TempDir()
	var full bytes.Buffer
	err := runExperiment("fig10b", runOpts{seed: 1,
		obs: obsOpts{dir: dir, cost: true, runtime: true}}, &full)
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != full.String() {
		t.Errorf("figure output changed with -cost -runtime:\nplain:\n%s\nfull:\n%s",
			plain.String(), full.String())
	}
	art, err := os.ReadFile(filepath.Join(dir, "fig10b__incast__seed1.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`runtime/heap_bytes`, `runtime/events_per_sec`, `cost/`} {
		if !strings.Contains(string(art), want) {
			t.Errorf("artifact missing %q", want)
		}
	}
}

// TestWatchRender drives the dashboard's pure render path with fabricated
// snapshots: the frame must carry the rate (computed across two polls), the
// run table, and the cost bars.
func TestWatchRender(t *testing.T) {
	var st watchState
	m1 := stream.MetricsSnapshot{WallUnixMS: 1000}
	m1.Sim.Events = 0
	m1.Runtime.HeapBytes = 32 << 20
	m1.Runtime.Goroutines = 9
	renderWatch(&st, "http://x", m1, stream.RunsSnapshot{}, nil)

	m2 := m1
	m2.WallUnixMS = 2000
	m2.Sim.Events = 1_000_000
	m2.Cost = []stream.CostMetric{
		{Kind: "deliver_host", Samples: 100, Nanos: 9000, Share: 0.9},
		{Kind: "transmit", Samples: 10, Nanos: 1000, Share: 0.1},
	}
	runs := stream.RunsSnapshot{
		Runs: []runner.RunSnapshot{{
			Name: "fig10b/seed=1", Status: "running", Phase: "incast",
			Events: 1_000_000, EventsPerSec: 1e6, SimUS: 1234,
			WatchdogLimit: 1000, WatchdogPct: 25,
		}},
	}
	runs.Batch.Total, runs.Batch.Running, runs.Batch.Events = 1, 1, 1_000_000
	frame := renderWatch(&st, "http://x", m2, runs, nil)

	for _, want := range []string{
		"1.00M ev/s",    // rate from the poll delta
		"fig10b/seed=1", // run table row
		"running",       // status column
		"incast",        // phase column
		"25%",           // watchdog proximity
		"deliver_host",  // top cost bucket
		"90%",           // its share
		"32.0MiB",       // heap gauge
		"1 running",     // batch aggregate
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	if len(st.rates) != 1 {
		t.Errorf("rate history = %v, want one sample", st.rates)
	}
}
