// Package sim provides a deterministic discrete-event simulation engine
// with a picosecond clock.
//
// The engine drives every other component of the simulator: network ports
// schedule packet serialization and propagation, transports schedule
// pacing and retransmission timers, and experiments schedule flow
// arrivals. Reading this doc top to bottom is the engine's contract; the
// tests in engine_test.go, sampler_test.go, and wheel_test.go pin every
// clause.
//
// # Scheduling
//
// An Engine is single-threaded; batch parallelism is achieved by running
// one engine per (experiment, seed) run (see internal/runner). Callbacks
// are scheduled with At (absolute time, returns a cancelable *Event),
// After/Post (relative time), or Post2 (relative time, closure-free: a
// preallocated func(a, b any) plus two pre-boxed arguments — the
// zero-allocation primitive of the packet hot path). Scheduling in the
// past panics; a negative relative delay is clamped to zero.
//
// # Ordering and determinism
//
// Events are dispatched in strict (time, sequence) order: timestamps
// ascending, and FIFO among events that share a timestamp. Because the
// sequence number is assigned at scheduling time, a run's dispatch order
// is a pure function of its schedule calls, which makes every run
// bit-for-bit reproducible for a fixed seed — the property all figure
// reproductions and the parallel batch runner rely on.
//
// Events that share a timestamp are dispatched as one batch: the engine
// collects the whole same-timestamp cohort from the queue up front and
// invokes the callbacks back to back without re-consulting the queue.
// Events a callback schedules at the current timestamp join the order
// after the running batch (their sequence numbers are higher); canceling
// a not-yet-dispatched member of the running batch takes effect.
//
// # The event queue
//
// The queue is a hierarchical timing wheel (wheel.go): four levels of 256
// slots, a level-0 slot spanning 8.192 ns, each higher level 256× coarser,
// for a ~35 s horizon; a small heap in front restores exact (time, seq)
// order within a slot, and an overflow heap behind accepts any timestamp
// beyond the horizon. Insertion for the short-horizon events that dominate
// simulation (serialization, propagation, pacing) is O(1) — one compare,
// one append, one bitmap OR — and cursor advance skips empty time via
// occupancy bitmaps. Cancel is lazy: O(1) marking with reclamation when
// the event's slot drains, plus a compaction sweep when canceled entries
// dominate the queue, so cancel/re-arm patterns (RTO timers) cannot hold
// memory proportional to history.
//
// # Event ownership
//
// Every dispatched event — fired or canceled — is recycled through a
// per-engine free list, so steady-state scheduling allocates nothing. A
// caller holding an *Event handle for cancellation must drop the handle
// once the event has fired or been canceled; calling Cancel on a stale
// handle may cancel an unrelated future event. The idiomatic pattern is
// to nil the field as the first statement of the callback and right after
// Cancel.
//
// # Running and sampling
//
// Run executes until the schedule is empty or Stop is called; RunUntil
// executes events with timestamps <= end and then parks the clock at end.
// SetSampler installs a clock-driven hook that fires every fixed interval
// of simulated time, interleaved deterministically with the event stream
// (all events at or before an instant run first) without consuming queue
// events. TotalProcessed exposes a process-wide executed-event counter,
// updated once per RunUntil, which `prioplus-sim all` samples to report
// batch events/sec.
package sim
