package harness_test

import (
	"testing"

	"prioplus/internal/cc"
	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
)

func newNet(nHosts int, opts ...harness.Option) (*harness.Net, *sim.Engine) {
	eng := sim.NewEngine()
	cfg := topo.DefaultConfig()
	cfg.LinkDelay = 3 * sim.Microsecond
	return harness.New(topo.Star(eng, nHosts, cfg), 5, opts...), eng
}

func swift(net *harness.Net, src, dst int) cc.Algorithm {
	base := net.Topo.BaseRTT(src, dst)
	return cc.NewSwift(cc.DefaultSwiftConfig(base, net.BDPPackets(src, dst)))
}

func TestAddFlowCompletes(t *testing.T) {
	net, eng := newNet(3)
	done := false
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 100_000, Prio: 0,
		Algo: swift(net, 0, 2), OnComplete: func(sim.Time) { done = true }})
	eng.RunUntil(5 * sim.Millisecond)
	if !done {
		t.Fatal("flow did not complete")
	}
}

func TestAddFlowPastStartClamped(t *testing.T) {
	// Scheduling a flow with StartAt in the past (relative to Now) must
	// clamp to now rather than panic — completion callbacks launch
	// follow-up flows this way (the ML scenario).
	net, eng := newNet(3)
	done := 0
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 10_000, Prio: 0,
		Algo: swift(net, 0, 2),
		OnComplete: func(sim.Time) {
			done++
			net.AddFlow(harness.Flow{Src: 1, Dst: 2, Size: 10_000, Prio: 0,
				Algo: swift(net, 1, 2), StartAt: 0, // in the past now
				OnComplete: func(sim.Time) { done++ }})
		}})
	eng.RunUntil(5 * sim.Millisecond)
	if done != 2 {
		t.Fatalf("%d/2 flows completed", done)
	}
}

func TestBDPPackets(t *testing.T) {
	net, _ := newNet(3)
	// 100 Gb/s, ~12.3 us base RTT -> ~153 packets of 1000 B.
	got := net.BDPPackets(0, 2)
	if got < 140 || got > 165 {
		t.Errorf("BDPPackets = %.1f, want ~153", got)
	}
}

func TestThroughputMeterAndSinkCounter(t *testing.T) {
	net, eng := newNet(3)
	m := harness.NewThroughputMeter()
	net.SinkCounter(2, m, func(p *netsim.Packet) int { return p.Src })
	size := int64(50_000)
	for src := 0; src < 2; src++ {
		net.AddFlow(harness.Flow{Src: src, Dst: 2, Size: size, Prio: 0, Algo: swift(net, src, 2)})
	}
	eng.RunUntil(5 * sim.Millisecond)
	snap := m.Snapshot()
	for src := 0; src < 2; src++ {
		if snap[src] != size {
			t.Errorf("counter[%d] = %d, want %d", src, snap[src], size)
		}
	}
	if len(m.Keys()) != 2 {
		t.Errorf("Keys() = %v, want 2 entries", m.Keys())
	}
}

func TestSampleRatesWindows(t *testing.T) {
	net, eng := newNet(3)
	rs := net.SampleRates(2, func(*netsim.Packet) int { return 0 }, 100*sim.Microsecond, sim.Millisecond)
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 1 << 30, Prio: 0, Algo: swift(net, 0, 2)})
	eng.RunUntil(sim.Millisecond)
	if len(rs.Times) != 10 {
		t.Fatalf("got %d windows, want 10", len(rs.Times))
	}
	// Steady-state windows should be near line rate.
	if got := rs.Between(500*sim.Microsecond, sim.Millisecond, 0); got < 85 {
		t.Errorf("steady rate %.1f Gb/s, want ~100", got)
	}
	// Between() outside the sampled span returns 0.
	if got := rs.Between(2*sim.Millisecond, 3*sim.Millisecond, 0); got != 0 {
		t.Errorf("out-of-span Between = %v, want 0", got)
	}
}

func TestWithNoiseReachesAllStacks(t *testing.T) {
	net, eng := newNet(4, harness.WithNoise(func() sim.Time { return 7 * sim.Microsecond }))
	rec := &delayRecorder{}
	net.AddFlow(harness.Flow{Src: 1, Dst: 3, Size: 20_000, Prio: 0, Algo: rec})
	eng.RunUntil(sim.Millisecond)
	if len(rec.delays) == 0 {
		t.Fatal("no samples")
	}
	base := net.Topo.BaseRTT(1, 3)
	for _, d := range rec.delays {
		if d < base+6*sim.Microsecond {
			t.Fatalf("delay %v missing injected noise", d)
		}
	}
}

func TestVPrioPropagates(t *testing.T) {
	net, eng := newNet(3)
	seen := int16(-1)
	inner := net.Topo.Hosts[2].Sink
	net.Topo.Hosts[2].Sink = func(p *netsim.Packet) {
		if p.Type == netsim.Data {
			seen = p.VPrio
		}
		inner(p)
	}
	net.AddFlow(harness.Flow{Src: 0, Dst: 2, Size: 5000, Prio: 0, VPrio: 3, Algo: swift(net, 0, 2)})
	eng.RunUntil(sim.Millisecond)
	if seen != 3 {
		t.Errorf("VPrio on the wire = %d, want 3", seen)
	}
}

type delayRecorder struct {
	drv    cc.Driver
	delays []sim.Time
}

func (d *delayRecorder) Start(drv cc.Driver)    { d.drv = drv }
func (d *delayRecorder) OnAck(fb cc.Feedback)   { d.delays = append(d.delays, fb.Delay) }
func (d *delayRecorder) OnProbeAck(cc.Feedback) {}
func (d *delayRecorder) OnRTO()                 {}
func (d *delayRecorder) CwndBytes() float64     { return 4000 }
func (d *delayRecorder) WantsECT() bool         { return false }
func (d *delayRecorder) Name() string           { return "rec" }
