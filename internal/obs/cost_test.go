package obs_test

import (
	"testing"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

func TestCostProfilerObserve(t *testing.T) {
	before := obs.CostTotals()
	p := &obs.CostProfiler{}
	p.Observe(sim.EKTransmit, 100)
	p.Observe(sim.EKTransmit, 50)
	p.Observe(sim.EKDeliverHost, 25)
	p.Observe(255, 10) // out-of-range folds into EKOther

	if b := p.Bucket(sim.EKTransmit); b.Samples != 2 || b.Nanos != 150 {
		t.Errorf("transmit bucket = %+v", b)
	}
	if b := p.Bucket(sim.EKDeliverHost); b.Samples != 1 || b.Nanos != 25 {
		t.Errorf("deliver_host bucket = %+v", b)
	}
	if b := p.Bucket(sim.EKOther); b.Samples != 1 || b.Nanos != 10 {
		t.Errorf("other bucket = %+v", b)
	}
	if got := p.TotalNanos(); got != 185 {
		t.Errorf("TotalNanos = %d, want 185", got)
	}

	// The process-wide table advanced by the same amounts.
	after := obs.CostTotals()
	if d := after[sim.EKTransmit].Nanos - before[sim.EKTransmit].Nanos; d != 150 {
		t.Errorf("global transmit nanos delta = %d, want 150", d)
	}
	if d := after[sim.EKOther].Samples - before[sim.EKOther].Samples; d != 1 {
		t.Errorf("global other samples delta = %d, want 1", d)
	}
}

func TestCostProfilerRecord(t *testing.T) {
	p := &obs.CostProfiler{}
	p.Observe(sim.EKRTO, 40)
	r := obs.NewRegistry()
	p.Record(r)
	if v, ok := r.Value("cost/rto/ns"); !ok || v != 40 {
		t.Errorf("cost/rto/ns = %v (registered %v)", v, ok)
	}
	if v, ok := r.Value("cost/rto/samples"); !ok || v != 1 {
		t.Errorf("cost/rto/samples = %v (registered %v)", v, ok)
	}
	// Kinds without samples stay unregistered.
	if _, ok := r.Value("cost/pause/ns"); ok {
		t.Error("empty bucket was recorded")
	}
}

func TestCostProfilerStride(t *testing.T) {
	if s := (&obs.CostProfiler{}).Stride(); s != obs.DefaultCostEvery {
		t.Errorf("default stride = %d, want %d", s, obs.DefaultCostEvery)
	}
	if s := (&obs.CostProfiler{Every: 8}).Stride(); s != 8 {
		t.Errorf("explicit stride = %d, want 8", s)
	}
}
