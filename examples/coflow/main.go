// Coflow scheduling with virtual priorities: Hadoop-style coflows plus
// file-request incast share a Clos fabric. Grouping coflows into eight
// size-based priorities — carried entirely by PrioPlus channels in a
// single switch queue — shortens coflow completion times versus unmanaged
// Swift, reproducing the shape of the paper's Fig 12a/b.
//
// Run: go run ./examples/coflow
package main

import (
	"fmt"

	"prioplus/internal/exp"
	"prioplus/internal/sim"
)

func main() {
	cfg := exp.DefaultCoflowConfig(exp.PrioPlusSwift(), 0.7)
	cfg.Duration = 20 * sim.Millisecond
	cfg.Drain = 80 * sim.Millisecond

	fmt.Println("running baseline (Swift, no priorities)...")
	bcfg := cfg
	bcfg.Scheme = exp.SwiftPhysical(8)
	bcfg.NoPriority = true
	base := exp.RunCoflow(bcfg)

	fmt.Println("running PrioPlus+Swift with 8 virtual priority groups...")
	pp := exp.RunCoflow(cfg)

	fmt.Printf("\n%-22s %10s %10s\n", "", "baseline", "prioplus")
	fmt.Printf("%-22s %10d %10d\n", "coflows completed", base.Completed, pp.Completed)
	fmt.Printf("%-22s %10.2f %10.2f\n", "mean CCT (ms)", base.Mean.Millis(), pp.Mean.Millis())
	fmt.Printf("%-22s %10.2f %10.2f\n", "p99 CCT (ms)", base.P99.Millis(), pp.P99.Millis())
	fmt.Printf("\nper priority group (7 = smallest coflows = highest priority):\n")
	for p := len(pp.GroupMean) - 1; p >= 0; p-- {
		if pp.GroupMean[p] == 0 && base.GroupMean[p] == 0 {
			continue
		}
		speedup := 0.0
		if pp.GroupMean[p] > 0 && base.GroupMean[p] > 0 {
			speedup = float64(base.GroupMean[p]) / float64(pp.GroupMean[p])
		}
		fmt.Printf("  group %d: baseline %8.2f ms  prioplus %8.2f ms  speedup %.2fx\n",
			p, base.GroupMean[p].Millis(), pp.GroupMean[p].Millis(), speedup)
	}
	fmt.Printf("\noverall mean-CCT speedup: %.2fx\n", float64(base.Mean)/float64(pp.Mean))
}
