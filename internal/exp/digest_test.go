package exp

import (
	"testing"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// fig10bDigest runs a reduced Fig10b with the given extra instruments and
// returns the digest.
func fig10bDigest(t *testing.T, full bool, perturb uint64) (*sim.Digest, Fig10bResult) {
	t.Helper()
	rec := obs.NewRecorder()
	rec.Digest = sim.NewDigest()
	if full {
		rec.Series = obs.NewSeriesSet(10 * sim.Microsecond)
		rec.Hist = obs.NewHistSet()
		rec.Audit = &obs.Auditor{}
	}
	r := Fig10b(16, Options{Recorder: rec, Perturb: perturb})
	if rec.Digest.Count == 0 {
		t.Fatal("digest folded no events")
	}
	if full {
		if rec.Audit.Checks == 0 {
			t.Fatal("auditor never ran")
		}
		if v := rec.Audit.Violation(); v != "" {
			t.Fatalf("conservation violation: %s", v)
		}
	}
	return rec.Digest, r
}

// TestFingerprintInvariantAcrossObs is the determinism contract: the digest
// chain depends only on (binary, experiment, seed), not on which other
// instruments are installed — a digest-only run and a full-telemetry run
// (series + hist + auditor) fold the identical event stream.
func TestFingerprintInvariantAcrossObs(t *testing.T) {
	plain, rp := fig10bDigest(t, false, 0)
	full, rf := fig10bDigest(t, true, 0)
	if plain.Chain != full.Chain || plain.Count != full.Count {
		t.Fatalf("chain differs across obs configs: %016x/%d vs %016x/%d",
			plain.Chain, plain.Count, full.Chain, full.Count)
	}
	if rp.WithinFrac != rf.WithinFrac || rp.MeanDelay != rf.MeanDelay {
		t.Fatalf("figure output differs across obs configs: %+v vs %+v", rp, rf)
	}
}

// TestPerturbDivergesChain: a single 1µs inflation of one noise draw must
// change the chain, and the checkpoint ladder must localize where.
func TestPerturbDivergesChain(t *testing.T) {
	base, _ := fig10bDigest(t, false, 0)
	pert, _ := fig10bDigest(t, false, 10)
	if base.Chain == pert.Chain {
		t.Fatal("perturbed run produced the same chain")
	}
	// The checkpoint ladders must localize the divergence to one window:
	// every checkpoint before the first divergent one agrees, and at least
	// one checkpoint disagrees (the ladders can't be identical when the
	// final chains differ, unless the divergence is after the last
	// checkpoint — Fig10b's draws all land early, so it never is).
	n := min(len(base.Ckpts), len(pert.Ckpts))
	if n == 0 {
		t.Fatal("no checkpoints recorded; localization impossible")
	}
	first := -1
	for i := 0; i < n; i++ {
		if base.Ckpts[i].Chain != pert.Ckpts[i].Chain {
			first = i
			break
		}
	}
	if first < 0 {
		t.Fatal("all checkpoints match yet final chains differ: divergence after last checkpoint only")
	}
	for i := 0; i < first; i++ {
		if base.Ckpts[i].Count != pert.Ckpts[i].Count {
			t.Fatalf("pre-divergence checkpoint %d at different event counts: %d vs %d",
				i, base.Ckpts[i].Count, pert.Ckpts[i].Count)
		}
	}
	t.Logf("first divergent checkpoint: index %d, window ends at event %d",
		first, base.Ckpts[first].Count)
}

// TestAuditCleanUnderFaults: the conservation invariants must hold through
// link flaps and reroutes, where packets die on wires and queues drain
// abnormally.
func TestAuditCleanUnderFaults(t *testing.T) {
	rec := obs.NewRecorder()
	rec.Audit = &obs.Auditor{}
	rows := FaultSweep(DefaultFaultSweepConfig(), Options{Recorder: rec})
	if len(rows) == 0 {
		t.Fatal("faultsweep produced no rows")
	}
	if rec.Audit.Checks == 0 {
		t.Fatal("auditor never ran")
	}
	if v := rec.Audit.Violation(); v != "" {
		t.Fatalf("conservation violation under faults: %s", v)
	}
}
