// Package sched implements the priority-assignment policies the paper uses
// to approximate size-based scheduling algorithms: flows (or coflows) are
// split into N groups by size, with smaller sizes mapped to higher
// priorities (§6.2: "we categorize all flows into groups by size,
// assigning higher priority to the smaller-sized flow group").
package sched

import "sort"

// SizeGroups maps sizes to priorities using fixed boundaries: a size below
// Bounds[i] gets priority NPrios-1-i (smaller size -> higher priority).
type SizeGroups struct {
	NPrios int
	Bounds []int64 // ascending, length NPrios-1
}

// NewSizeGroups derives group boundaries from quantiles of an observed
// size sample so each group carries roughly equal flow count.
func NewSizeGroups(nprios int, sample []int64) SizeGroups {
	sorted := append([]int64(nil), sample...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	g := SizeGroups{NPrios: nprios}
	for i := 1; i < nprios; i++ {
		idx := i * len(sorted) / nprios
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		g.Bounds = append(g.Bounds, sorted[idx])
	}
	return g
}

// NewByteGroups derives boundaries so each group carries roughly equal
// bytes, which keeps per-priority load balanced (large flows get their own
// low priorities).
func NewByteGroups(nprios int, sample []int64) SizeGroups {
	sorted := append([]int64(nil), sample...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total int64
	for _, s := range sorted {
		total += s
	}
	g := SizeGroups{NPrios: nprios}
	var acc int64
	next := 1
	for _, s := range sorted {
		acc += s
		for next < nprios && acc >= int64(next)*total/int64(nprios) {
			g.Bounds = append(g.Bounds, s)
			next++
		}
	}
	for len(g.Bounds) < nprios-1 {
		g.Bounds = append(g.Bounds, sorted[len(sorted)-1])
	}
	return g
}

// PriorityFor returns the priority for a flow of the given size: the
// smallest-size group gets NPrios-1 (highest), the largest gets 0.
func (g SizeGroups) PriorityFor(size int64) int {
	i := sort.Search(len(g.Bounds), func(i int) bool { return size <= g.Bounds[i] })
	return g.NPrios - 1 - i
}

// PhysicalQueueFor maps a virtual priority in [0, NPrios) onto one of
// nQueues physical queues, squashing evenly when NPrios > nQueues. This is
// how the "Physical" baselines run when the scheduler wants more
// priorities than the switch offers.
func PhysicalQueueFor(prio, nprios, nQueues int) int {
	if nprios <= nQueues {
		return prio
	}
	q := prio * nQueues / nprios
	if q >= nQueues {
		q = nQueues - 1
	}
	return q
}
