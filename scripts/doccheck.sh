#!/bin/sh
# doccheck.sh — fails CI when godoc coverage regresses.
#
# Two gates:
#   1. Every package under internal/ and cmd/ must carry a package-level
#      doc comment ("// Package <name> ...") in at least one non-test file.
#   2. No exported top-level declaration anywhere under internal/ may lack
#      a preceding doc comment (a cheap grep-grade approximation of
#      revive's exported rule; it catches the common case of an exported
#      func/type/var/const added without any comment).
#
# Run from the repository root: sh scripts/doccheck.sh
set -eu

fail=0

for dir in internal/*/ cmd/*/; do
    name=$(basename "$dir")
    # Library packages document "Package <name> ..."; main packages
    # document "Command <name> ...".
    if ! grep -qs "^// \(Package\|Command\) $name " "$dir"*.go; then
        echo "doccheck: package $dir has no '// Package|Command $name ...' doc comment" >&2
        fail=1
    fi
done

undocumented=$(find internal -name '*.go' ! -name '*_test.go' -print0 | xargs -0 awk '
/^\/\// { prevcomment=1; next }
/^func [A-Z]/ || /^func \([a-z]+ \*?[A-Z][A-Za-z]*\) [A-Z]/ || /^type [A-Z]/ || /^var [A-Z]/ || /^const [A-Z]/ {
    if (!prevcomment) print FILENAME ":" FNR ": undocumented exported declaration: " $0
}
{ prevcomment=0 }
')
if [ -n "$undocumented" ]; then
    echo "$undocumented" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "doccheck: FAIL" >&2
    exit 1
fi
echo "doccheck: ok"
