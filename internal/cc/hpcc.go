package cc

import (
	"math"

	"prioplus/internal/netsim"
	"prioplus/internal/obs"
)

// HPCCConfig parameterizes HPCC [Li et al., SIGCOMM'19], the INT-based
// controller used as a baseline in the paper's Appendix A.3/A.4.
type HPCCConfig struct {
	Eta      float64 // target utilization (0.95)
	MaxStage int     // additive-increase stages before forced MI
	WAI      float64 // additive increase in packets
	MinCwnd  float64
	MaxCwnd  float64
}

// DefaultHPCCConfig returns the HPCC paper's recommended parameters for a
// path with the given BDP in packets.
func DefaultHPCCConfig(bdpPkts float64) HPCCConfig {
	return HPCCConfig{
		Eta:      0.95,
		MaxStage: 5,
		WAI:      math.Max(bdpPkts*(1-0.95)/8, 0.05),
		MinCwnd:  0.1,
		MaxCwnd:  math.Max(bdpPkts*1.2, 4),
	}
}

// HPCC implements the HPCC controller using per-hop INT stamped by the
// switches (enable Port.INTEnabled on the fabric).
type HPCC struct {
	cfg  HPCCConfig
	drv  Driver
	dlog DecisionLogger
	cwnd float64 // current window, packets
	wc   float64 // reference window, packets

	prev      []netsim.INTRecord
	incStage  int
	lastWcSeq int64 // update Wc once per RTT, tracked by sequence
}

// NewHPCC returns an HPCC instance.
func NewHPCC(cfg HPCCConfig) *HPCC { return &HPCC{cfg: cfg} }

// Name implements Algorithm.
func (h *HPCC) Name() string { return "hpcc" }

// WantsECT implements Algorithm: INT is stamped on ECT packets.
func (h *HPCC) WantsECT() bool { return true }

// Start implements Algorithm: HPCC starts at line rate (one BDP).
func (h *HPCC) Start(drv Driver) {
	h.drv = drv
	h.dlog = DecisionLoggerOf(drv)
	bdp := drv.LineRate().BDP(drv.BaseRTT()) / float64(drv.MTU())
	if h.cwnd == 0 {
		h.cwnd = h.clamp(bdp)
		h.wc = h.cwnd
	}
}

func (h *HPCC) clamp(w float64) float64 {
	return math.Min(math.Max(w, h.cfg.MinCwnd), h.cfg.MaxCwnd)
}

// utilization computes the max normalized in-flight share across hops,
// HPCC's U, from consecutive INT vectors.
func (h *HPCC) utilization(cur []netsim.INTRecord) (float64, bool) {
	if len(h.prev) != len(cur) {
		return 0, false
	}
	base := h.drv.BaseRTT().Seconds()
	u := 0.0
	for i := range cur {
		dt := (cur[i].TS - h.prev[i].TS).Seconds()
		if dt <= 0 {
			continue
		}
		txRate := float64(cur[i].TxBytes-h.prev[i].TxBytes) / dt // bytes/s
		bps := cur[i].Rate.BytesPerSec()
		qlen := math.Min(float64(cur[i].QLen), float64(h.prev[i].QLen))
		uj := qlen/(bps*base) + txRate/bps
		u = math.Max(u, uj)
	}
	return u, true
}

// OnAck implements Algorithm, following the HPCC paper's pseudocode with a
// per-RTT reference-window update.
func (h *HPCC) OnAck(fb Feedback) {
	if len(fb.INT) == 0 {
		return
	}
	u, ok := h.utilization(fb.INT)
	h.prev = append(h.prev[:0], fb.INT...)
	if !ok {
		return
	}
	updateWc := fb.Seq >= h.lastWcSeq
	if u >= h.cfg.Eta || h.incStage >= h.cfg.MaxStage {
		h.cwnd = h.clamp(h.wc/(u/h.cfg.Eta) + h.cfg.WAI)
		if updateWc {
			h.wc = h.cwnd
			h.incStage = 0
			h.lastWcSeq = h.drv.SndNxt()
			if h.dlog != nil && u >= h.cfg.Eta {
				h.dlog.LogDecision(obs.SpanDecCut, fb.Delay, h.cwnd, u)
			}
		}
	} else {
		h.cwnd = h.clamp(h.wc + h.cfg.WAI)
		if updateWc {
			h.wc = h.cwnd
			h.incStage++
			h.lastWcSeq = h.drv.SndNxt()
		}
	}
}

// OnProbeAck implements Algorithm.
func (h *HPCC) OnProbeAck(fb Feedback) {}

// OnRTO implements Algorithm.
func (h *HPCC) OnRTO() {
	h.cwnd = h.clamp(h.cwnd / 2)
	h.wc = h.cwnd
}

// CwndBytes implements Algorithm.
func (h *HPCC) CwndBytes() float64 { return h.cwnd * float64(h.drv.MTU()) }
