package exp

import (
	"prioplus/internal/fault"
	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// Options bundles the cross-cutting per-run knobs every figure driver
// accepts, replacing the old FigX/FigXObs split: one entry point per
// figure, with instrumentation and fault plans as optional inputs. The
// zero value reproduces the paper's plain run exactly.
type Options struct {
	// Seed overrides the driver's baked-in seed when non-zero. The paper
	// figures keep their published seeds by default, so batch tooling that
	// doesn't set Seed gets byte-identical reference output.
	Seed int64
	// Recorder, when non-nil, is attached to the run via harness.Observe
	// before traffic starts, and the driver fills in CollectMetrics after
	// the run. Instrumentation never changes figure output.
	Recorder *obs.Recorder
	// Faults, when non-nil and non-empty, is installed on the topology
	// before traffic starts (harness.WithFaults).
	Faults *fault.Plan
	// Perturb, when non-zero, deliberately diverges the run for testing
	// the divergence-diagnosis tooling (prioplus-sim diff): the Perturb-th
	// delay-noise draw is inflated by one microsecond — one RNG draw
	// nudged, everything else identical — and the digest chain must
	// localize the butterfly effect to its exact first divergent event.
	// (A nanosecond would be subtler still, but measured-delay noise is
	// quantized by CC decision thresholds, so 1ns does not reliably change
	// any event.) Applies to the micro-fabric experiments (the ones built
	// on the star topology).
	Perturb uint64
}

// seedOr returns the override seed when set, the driver default otherwise.
func (o Options) seedOr(def int64) int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return def
}

// noiseFn wraps a delay-noise sampler with the Perturb injection: draw
// number Perturb (1-based) is inflated by one microsecond. With Perturb
// zero the sampler is returned unwrapped, so normal runs pay nothing.
func (o Options) noiseFn(sample func() sim.Time) func() sim.Time {
	if o.Perturb == 0 {
		return sample
	}
	var n uint64
	return func() sim.Time {
		v := sample()
		n++
		if n == o.Perturb {
			v += sim.Microsecond
		}
		return v
	}
}
