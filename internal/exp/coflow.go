package exp

import (
	"math/rand"
	"sort"

	"prioplus/internal/fault"
	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/noise"
	"prioplus/internal/obs"
	"prioplus/internal/sched"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
	"prioplus/internal/workload"
)

// CoflowConfig drives the coflow-scheduling scenario (§6.2, Figs 12a/b,
// 15, 17, 18): Hadoop-style coflows plus file-request incast on a
// non-blocking Clos, coflows grouped into 8 priorities by total size.
type CoflowConfig struct {
	Scheme   Scheme
	Load     float64
	Duration sim.Time
	Drain    sim.Time
	Seed     int64
	NPrios   int
	// Topology dimensions; zero values give the paper's 5-pod, 320-host
	// fabric. Scale down for tests and benches.
	Pods, Edges, HostsPerEdge, Aggs, Cores int
	// Lossy disables PFC and relies on IRN loss recovery (Fig 17).
	Lossy bool
	// NoPriority runs the scheme with a single priority group (the
	// speedup baseline: Swift with default parameters, no scheduling).
	NoPriority bool
	// Trace, when non-nil, replaces the synthetic workload with explicit
	// coflows (e.g. parsed from the public Facebook trace format with
	// workload.ParseCoflowTrace).
	Trace []workload.Coflow
	// ObsFor, when non-nil, supplies a fresh observability recorder per
	// run, keyed by the run's tag (the scheme name, "baseline/"-prefixed
	// for the no-priority baseline). Fig12Coflow runs several engines, so a
	// single shared Recorder cannot serve it.
	ObsFor func(tag string) *obs.Recorder
	// Faults, when non-nil and non-empty, is installed on each run's
	// topology before traffic starts.
	Faults *fault.Plan
	// MaxInflight, when > 0, arms an in-flight-bytes watchdog on every run:
	// a run whose live packet bytes exceed the ceiling is stopped early and
	// reported with CoflowResult.Watchdog set. This is how fig18's quick
	// scale stays runnable — the "Physical* w/o CC" scheme otherwise
	// materializes tens of GB of packets in PFC-paused queues (every
	// arriving flow blasts its full TX window into a fabric that never
	// drains, and spurious RTOs duplicate what is already queued). The
	// ceiling is independent of any ObsFor recorder, so figure output is
	// identical whether or not observability flags are set.
	MaxInflight int64
}

// DefaultCoflowConfig returns a reduced-scale version of the paper's
// coflow scenario.
func DefaultCoflowConfig(s Scheme, load float64) CoflowConfig {
	return CoflowConfig{
		Scheme:   s,
		Load:     load,
		Duration: 30 * sim.Millisecond,
		Drain:    100 * sim.Millisecond,
		Seed:     1,
		NPrios:   8,
		Pods:     2, Edges: 4, HostsPerEdge: 4, Aggs: 2, Cores: 4,
	}
}

// PaperScale switches the config to the paper's full 320-host fabric.
func (c CoflowConfig) PaperScale() CoflowConfig {
	c.Pods, c.Edges, c.HostsPerEdge, c.Aggs, c.Cores = 5, 8, 8, 2, 8
	return c
}

// CoflowResult summarizes one run: per-priority-group mean and P99 CCT.
type CoflowResult struct {
	Scheme    string
	GroupMean []sim.Time // indexed by priority (0 = lowest = largest)
	GroupP99  []sim.Time
	Mean      sim.Time
	P99       sim.Time
	Completed int
	Launched  int
	// Watchdog is the trip reason ("inflight_bytes") when the run was
	// stopped early by CoflowConfig.MaxInflight, "" when it ran to the end.
	// Stats from a tripped run cover only the coflows that finished before
	// the stop, so they are biased toward the early survivors.
	Watchdog string
}

// RunCoflow runs one scheme over the coflow workload.
func RunCoflow(cfg CoflowConfig) CoflowResult {
	eng := sim.NewEngine()
	tc := topo.DefaultConfig()
	tc.LinkDelay = 1 * sim.Microsecond
	tc.Seed = cfg.Seed
	tc.FabricRate = 400 * netsim.Gbps
	// The paper sets the buffer directly to 32 MB in this scenario.
	tc.Buffer = netsim.DefaultBufferConfig()
	tc.Buffer.TotalBytes = 32 << 20
	cfg.Scheme.Fabric(&tc, cfg.NPrios)
	if cfg.Lossy {
		tc.Buffer.PFCEnabled = false
	}
	nw := topo.Clos(eng, cfg.Pods, cfg.Edges, cfg.HostsPerEdge, cfg.Aggs, cfg.Cores, tc)
	nm := noise.NewLongTail(rand.New(rand.NewSource(cfg.Seed+7)), 1)
	opts := append(cfg.Scheme.NetOptions(),
		harness.WithNoise(nm.Sample), harness.WithFaults(cfg.Faults))
	net := harness.New(nw, cfg.Seed, opts...)
	var rec *obs.Recorder
	if cfg.ObsFor != nil {
		tag := cfg.Scheme.Name
		if cfg.NoPriority {
			tag = "baseline/" + tag
		}
		rec = cfg.ObsFor(tag)
	}
	if cfg.MaxInflight > 0 {
		if rec == nil {
			rec = obs.NewRecorder()
		}
		if rec.Watchdog == nil {
			rec.Watchdog = &obs.Watchdog{MaxInflightBytes: cfg.MaxInflight}
		}
	}
	if rec != nil {
		net.Observe(rec)
		if rec.Series != nil {
			rec.Series.ReserveUntil(cfg.Duration + cfg.Drain)
		}
	}
	coflows := cfg.Trace
	if coflows == nil {
		rng := rand.New(rand.NewSource(cfg.Seed + 13))
		wcfg := workload.DefaultCoflowConfig(len(nw.Hosts), cfg.Load, float64(tc.HostRate), cfg.Duration, rng)
		coflows = workload.Coflows(wcfg)
	}

	totals := make([]int64, len(coflows))
	for i, cf := range coflows {
		totals[i] = cf.Total
	}
	groups := sched.NewSizeGroups(cfg.NPrios, totals)

	type cfState struct {
		remaining int
		arrival   sim.Time
		prio      int
		cct       sim.Time
	}
	states := make([]*cfState, len(coflows))
	res := CoflowResult{Scheme: cfg.Scheme.Name}
	for i, cf := range coflows {
		cf := cf
		// Group assignment is recorded for stats regardless of scheme;
		// the no-priority baseline transmits everything at priority 0.
		group := groups.PriorityFor(cf.Total)
		prio := group
		if cfg.NoPriority {
			prio = 0
		}
		st := &cfState{remaining: len(cf.Flows), arrival: cf.Arrival, prio: group}
		states[i] = st
		queue := cfg.Scheme.QueueFor(prio, cfg.NPrios, tc.Queues)
		res.Launched++
		for _, f := range cf.Flows {
			f := f
			base := nw.BaseRTT(f.Src, f.Dst)
			env := FlowEnv{
				Prio: prio, NPrios: cfg.NPrios, BaseRTT: base,
				BDPPkts: tc.HostRate.BDP(base) / netsim.DefaultMTU,
				Size:    f.Size, Ideal: IdealFCT(f.Size, tc.HostRate, base), Now: cf.Arrival,
			}
			net.AddFlow(harness.Flow{
				Src: f.Src, Dst: f.Dst, Size: f.Size, Prio: queue,
				Algo:    cfg.Scheme.NewAlgo(env),
				StartAt: cf.Arrival,
				OnComplete: func(sim.Time) {
					st.remaining--
					if st.remaining == 0 {
						st.cct = eng.Now() - st.arrival
					}
				},
			})
		}
	}
	eng.RunUntil(cfg.Duration + cfg.Drain)
	if rec != nil {
		net.CollectMetrics(rec)
		if rec.Watchdog != nil {
			res.Watchdog = rec.Watchdog.Tripped()
		}
	}

	perGroup := make([][]sim.Time, cfg.NPrios)
	var all []sim.Time
	for _, st := range states {
		if st.remaining > 0 {
			continue
		}
		res.Completed++
		perGroup[st.prio] = append(perGroup[st.prio], st.cct)
		all = append(all, st.cct)
	}
	res.GroupMean = make([]sim.Time, cfg.NPrios)
	res.GroupP99 = make([]sim.Time, cfg.NPrios)
	for p, ccts := range perGroup {
		if len(ccts) == 0 {
			continue
		}
		sort.Slice(ccts, func(i, j int) bool { return ccts[i] < ccts[j] })
		var sum sim.Time
		for _, c := range ccts {
			sum += c
		}
		res.GroupMean[p] = sum / sim.Time(len(ccts))
		res.GroupP99[p] = ccts[int(0.99*float64(len(ccts)-1))]
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		var sum sim.Time
		for _, c := range all {
			sum += c
		}
		res.Mean = sum / sim.Time(len(all))
		res.P99 = all[int(0.99*float64(len(all)-1))]
	}
	return res
}

// CoflowSpeedups compares schemes against the no-priority Swift baseline,
// reporting mean (or P99, for Fig 15) CCT speedups for the high four
// priority groups, the low four, and overall — the shape of Figs 12a/b.
type CoflowSpeedups struct {
	Scheme  string
	High4   float64
	Low4    float64
	Overall float64
	// Watchdog carries the scheme run's trip reason (see CoflowResult).
	Watchdog string
}

func speedupOf(base, r CoflowResult, tail bool) CoflowSpeedups {
	pick := func(res CoflowResult, lo, hi int) sim.Time {
		var sum sim.Time
		var n int
		src := res.GroupMean
		if tail {
			src = res.GroupP99
		}
		for p := lo; p <= hi; p++ {
			if src[p] > 0 {
				sum += src[p]
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / sim.Time(n)
	}
	np := len(r.GroupMean)
	ratio := func(b, v sim.Time) float64 {
		if v <= 0 || b <= 0 {
			return 0
		}
		return float64(b) / float64(v)
	}
	baseAll, rAll := base.Mean, r.Mean
	if tail {
		baseAll, rAll = base.P99, r.P99
	}
	return CoflowSpeedups{
		Scheme:   r.Scheme,
		High4:    ratio(pick(base, np/2, np-1), pick(r, np/2, np-1)),
		Low4:     ratio(pick(base, 0, np/2-1), pick(r, 0, np/2-1)),
		Overall:  ratio(baseAll, rAll),
		Watchdog: r.Watchdog,
	}
}

// Fig12Coflow runs the coflow comparison at one load: baseline Swift (no
// priorities), Physical+Swift, and PrioPlus+Swift. With lossy=true it
// reproduces Fig 17. extra appends further schemes (Fig 18: HPCC,
// Physical w/o CC).
func Fig12Coflow(base CoflowConfig, tail bool, extra ...Scheme) []CoflowSpeedups {
	bcfg := base
	bcfg.Scheme = SwiftPhysical(8)
	bcfg.NoPriority = true
	baseline := RunCoflow(bcfg)

	schemes := append([]Scheme{SwiftPhysical(8), PrioPlusSwift()}, extra...)
	var out []CoflowSpeedups
	for _, s := range schemes {
		cfg := base
		cfg.Scheme = s
		out = append(out, speedupOf(baseline, RunCoflow(cfg), tail))
	}
	return out
}
