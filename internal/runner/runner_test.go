package runner_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"prioplus/internal/cc"
	"prioplus/internal/core"
	"prioplus/internal/harness"
	"prioplus/internal/obs"
	"prioplus/internal/runner"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
)

// simTask builds a task running a real simulation — its own engine, star
// topology, and two Swift flows — so parallel execution exercises the
// engine-per-run isolation the pool depends on. The output is a rendering
// of the flows' completion times, deterministic for a given seed.
func simTask(name string, seed int64) runner.Task {
	return runner.Task{
		Name: name,
		Run: func() (string, map[string]float64) {
			eng := sim.NewEngine()
			cfg := topo.DefaultConfig()
			net := harness.New(topo.Star(eng, 3, cfg), seed)
			var fcts []sim.Time
			for src := 0; src < 2; src++ {
				algo := cc.NewSwift(cc.DefaultSwiftConfig(
					net.Topo.BaseRTT(src, 2), net.BDPPackets(src, 2)))
				net.AddFlow(harness.Flow{
					Src: src, Dst: 2, Size: 200_000, Algo: algo,
					OnComplete: func(f sim.Time) { fcts = append(fcts, f) },
				})
			}
			eng.RunUntil(10 * sim.Millisecond)
			return fmt.Sprintf("fcts=%v", fcts), map[string]float64{"flows": float64(len(fcts))}
		},
	}
}

func simTasks(n int) []runner.Task {
	tasks := make([]runner.Task, n)
	for i := range tasks {
		tasks[i] = simTask(fmt.Sprintf("run%d", i), int64(i+1))
	}
	return tasks
}

// TestDeterministicAcrossWorkers is the batch-runner contract: the result
// slice for -parallel 8 must be byte-identical to -parallel 1. Run with
// -race this also drives eight concurrent engines to prove per-run
// isolation.
func TestDeterministicAcrossWorkers(t *testing.T) {
	tasks := simTasks(8)
	serial := runner.Run(tasks, runner.Options{Workers: 1})
	parallel := runner.Run(tasks, runner.Options{Workers: 8})
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Name != p.Name || s.Index != p.Index {
			t.Errorf("result %d identity differs: %q/%d vs %q/%d", i, s.Name, s.Index, p.Name, p.Index)
		}
		if s.Output != p.Output {
			t.Errorf("result %d output differs:\n serial:   %q\n parallel: %q", i, s.Output, p.Output)
		}
		if !reflect.DeepEqual(s.Metrics, p.Metrics) {
			t.Errorf("result %d metrics differ: %v vs %v", i, s.Metrics, p.Metrics)
		}
		if s.Output == "" || s.Output == "fcts=[]" {
			t.Errorf("result %d produced no completions: %q", i, s.Output)
		}
	}
}

// TestEnginePerRunIsolation drives two simulations concurrently; under
// `go test -race` any sharing between their engines would be reported.
func TestEnginePerRunIsolation(t *testing.T) {
	tasks := []runner.Task{simTask("a", 1), simTask("b", 2)}
	results := runner.Run(tasks, runner.Options{Workers: 2})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("run %q failed: %v", r.Name, r.Err)
		}
		if r.Metrics["flows"] != 2 {
			t.Errorf("run %q completed %v flows, want 2", r.Name, r.Metrics["flows"])
		}
	}
}

// TestPanicIsolation: a panicking run fails only its own result; the rest
// of the batch completes and ordering is preserved.
func TestPanicIsolation(t *testing.T) {
	tasks := simTasks(4)
	tasks[1] = runner.Task{
		Name: "boom",
		Run:  func() (string, map[string]float64) { panic("seed exploded") },
	}
	results := runner.Run(tasks, runner.Options{Workers: 4})
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "seed exploded") {
		t.Errorf("panicking run error = %v, want panic value", results[1].Err)
	}
	if results[1].Output != "" {
		t.Errorf("panicking run kept output %q", results[1].Output)
	}
	for _, i := range []int{0, 2, 3} {
		if results[i].Err != nil {
			t.Errorf("run %d failed alongside the panic: %v", i, results[i].Err)
		}
		if results[i].Output == "" {
			t.Errorf("run %d lost its output", i)
		}
	}
}

// TestTimeout: a hung run is abandoned and reported; the batch completes.
func TestTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	tasks := []runner.Task{
		simTask("fast", 1),
		{Name: "hung", Run: func() (string, map[string]float64) {
			<-release
			return "late", nil
		}},
	}
	results := runner.Run(tasks, runner.Options{Workers: 2, Timeout: 50 * time.Millisecond})
	if results[0].Err != nil {
		t.Errorf("fast run failed: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, runner.ErrTimeout) {
		t.Errorf("hung run error = %v, want ErrTimeout", results[1].Err)
	}
}

// TestDefaultWorkers: Workers <= 0 picks a sane pool and still works.
func TestDefaultWorkers(t *testing.T) {
	results := runner.Run(simTasks(3), runner.Options{})
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("run %q failed: %v", r.Name, r.Err)
		}
		if r.Wall <= 0 {
			t.Errorf("run %q has no wall-clock measurement", r.Name)
		}
	}
}

// obsTask is simTask with the full telemetry stack enabled — series sampler,
// histograms, watchdog, metrics — and the serialized artifact as its output,
// so byte-level comparison covers every instrument.
func obsTask(name string, seed int64) runner.Task {
	return runner.Task{
		Name: name,
		Run: func() (string, map[string]float64) {
			eng := sim.NewEngine()
			cfg := topo.DefaultConfig()
			net := harness.New(topo.Star(eng, 3, cfg), seed)
			rec := obs.NewRecorder()
			rec.Series = obs.NewSeriesSet(10 * sim.Microsecond)
			rec.Hist = obs.NewHistSet()
			rec.Watchdog = &obs.Watchdog{MaxInflightBytes: 1 << 30}
			net.Observe(rec)
			for src := 0; src < 2; src++ {
				algo := cc.NewSwift(cc.DefaultSwiftConfig(
					net.Topo.BaseRTT(src, 2), net.BDPPackets(src, 2)))
				net.AddFlow(harness.Flow{Src: src, Dst: 2, Size: 200_000, Algo: algo})
			}
			eng.RunUntil(10 * sim.Millisecond)
			net.CollectMetrics(rec)
			var buf bytes.Buffer
			if err := obs.WriteArtifact(&buf, name, rec); err != nil {
				panic(err)
			}
			return buf.String(), nil
		},
	}
}

// TestObsArtifactsDeterministicAcrossWorkers extends the batch-runner
// contract to telemetry: with series, histograms, and metrics all enabled,
// the serialized artifact for every run must be byte-identical between
// -parallel 1 and -parallel 8.
func TestObsArtifactsDeterministicAcrossWorkers(t *testing.T) {
	tasks := make([]runner.Task, 8)
	for i := range tasks {
		tasks[i] = obsTask(fmt.Sprintf("run%d", i), int64(i+1))
	}
	serial := runner.Run(tasks, runner.Options{Workers: 1})
	parallel := runner.Run(tasks, runner.Options{Workers: 8})
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("run %d errored: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Output != parallel[i].Output {
			t.Errorf("run %d artifact differs between -parallel 1 and 8", i)
		}
		if !strings.Contains(serial[i].Output, `"type":"sample"`) {
			t.Errorf("run %d artifact has no samples", i)
		}
	}
}

// TestOnResult: the completion callback fires exactly once per task, in
// completion order, with the final result values.
func TestOnResult(t *testing.T) {
	tasks := simTasks(6)
	var mu sync.Mutex
	seen := map[int]int{}
	var names []string
	results := runner.Run(tasks, runner.Options{
		Workers: 3,
		OnResult: func(r runner.Result) {
			mu.Lock()
			defer mu.Unlock()
			seen[r.Index]++
			names = append(names, r.Name)
			if r.Output == "" {
				t.Errorf("OnResult for %q before output was set", r.Name)
			}
		},
	})
	if len(names) != len(tasks) {
		t.Fatalf("OnResult fired %d times, want %d", len(names), len(tasks))
	}
	for i := range tasks {
		if seen[i] != 1 {
			t.Errorf("task %d notified %d times, want 1", i, seen[i])
		}
	}
	if len(results) != len(tasks) {
		t.Fatalf("got %d results", len(results))
	}
}

// traceTask is obsTask with flow tracing on: two PrioPlus-wrapped flows on
// different channels, every flow admitted, every packet journey-stamped.
// The serialized artifact (flow + span lines included) is the output, so
// byte-level comparison covers the causal-tracing layer end to end.
func traceTask(name string, seed int64) runner.Task {
	return runner.Task{
		Name: name,
		Run: func() (string, map[string]float64) {
			eng := sim.NewEngine()
			cfg := topo.DefaultConfig()
			net := harness.New(topo.Star(eng, 3, cfg), seed)
			rec := obs.NewRecorder()
			ft := obs.NewFlowTracer(4)
			ft.PacketEvery = 1
			rec.FlowTrace = ft
			net.Observe(rec)
			base := net.Topo.BaseRTT(0, 2)
			plan := core.DefaultPlan(base)
			for src := 0; src < 2; src++ {
				scfg := cc.DefaultSwiftConfig(base, net.BDPPackets(src, 2))
				algo := core.New(cc.NewSwift(scfg), core.DefaultConfig(plan.Channel(2+src), 8))
				net.AddFlow(harness.Flow{Src: src, Dst: 2, Size: 200_000, Algo: algo})
			}
			eng.RunUntil(10 * sim.Millisecond)
			net.CollectMetrics(rec)
			var buf bytes.Buffer
			if err := obs.WriteArtifact(&buf, name, rec); err != nil {
				panic(err)
			}
			return buf.String(), nil
		},
	}
}

// TestTraceArtifactsDeterministicAcrossWorkers extends the batch-runner
// contract to flow tracing: with packet journeys and the CC decision audit
// recorded for every flow, the serialized artifact of every run must be
// byte-identical between -parallel 1 and -parallel 8, across seeds.
func TestTraceArtifactsDeterministicAcrossWorkers(t *testing.T) {
	tasks := make([]runner.Task, 8)
	for i := range tasks {
		tasks[i] = traceTask(fmt.Sprintf("run%d", i), int64(i+1))
	}
	serial := runner.Run(tasks, runner.Options{Workers: 1})
	parallel := runner.Run(tasks, runner.Options{Workers: 8})
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("run %d errored: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Output != parallel[i].Output {
			t.Errorf("run %d trace artifact differs between -parallel 1 and 8", i)
		}
		for _, want := range []string{`"type":"flow"`, `"type":"span"`, `"kind":"start"`, `"kind":"hop"`} {
			if !strings.Contains(serial[i].Output, want) {
				t.Errorf("run %d artifact missing %s", i, want)
			}
		}
	}
}
