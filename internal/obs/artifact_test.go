package obs_test

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// TestJSONLSinkEscapesStrings is the round-trip contract for string fields
// in trace output: arbitrary device labels — quotes, backslashes, control
// characters, non-ASCII — must come back intact through a JSON decoder.
func TestJSONLSinkEscapesStrings(t *testing.T) {
	devs := []string{
		`plain`,
		`quo"te`,
		`back\slash`,
		"tab\there",
		"new\nline",
		"cr\rreturn",
		"ctrl\x01\x1f",
		"utf8-Ω-切替",
		`both"\and` + "\n\x02",
	}
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	for i, dev := range devs {
		sink.Trace(obs.Event{T: sim.Time(i + 1), Kind: obs.Enqueue, Dev: dev, Bytes: 1})
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != len(devs) {
		t.Fatalf("got %d lines, want %d", len(lines), len(devs))
	}
	for i, line := range lines {
		var rec struct {
			Dev string `json:"dev"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Errorf("line %d is not valid JSON: %v\n%s", i, err, line)
			continue
		}
		if rec.Dev != devs[i] {
			t.Errorf("line %d dev = %q, want %q", i, rec.Dev, devs[i])
		}
	}
}

func sampleRecorder(t *testing.T) *obs.Recorder {
	t.Helper()
	rec := obs.NewRecorder()
	rec.Series = obs.NewSeriesSet(10 * sim.Microsecond)
	rec.Series.Start = 2 * sim.Microsecond
	v := 0.0
	rec.Series.Add("net/inflight_bytes", "bytes", func() float64 { return v })
	rec.Series.Add("net/paused_queues", "queues", func() float64 { return 2 * v })
	for i := 0; i < 5; i++ {
		v = float64(i * 100)
		rec.Series.Sample()
	}
	rec.Hist = obs.NewHistSet()
	for _, d := range []int64{100, 200, 400, 100000} {
		rec.Hist.FabricDelay.Observe(d)
	}
	rec.Metrics.Counter("net/drops").Add(7)
	rec.Metrics.Gauge("net/buffer_hwm_bytes").Observe(1234)
	rec.Watchdog = &obs.Watchdog{MaxInflightBytes: 1}
	rec.Watchdog.Check(2, 0) // trip it, so the artifact carries the reason
	return rec
}

func TestArtifactRoundTrip(t *testing.T) {
	rec := sampleRecorder(t)
	var buf bytes.Buffer
	if err := obs.WriteArtifact(&buf, `run "A"/np=8`, rec); err != nil {
		t.Fatal(err)
	}
	a, err := obs.ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a.Run != `run "A"/np=8` {
		t.Errorf("Run = %q", a.Run)
	}
	if a.Watchdog != "inflight_bytes" {
		t.Errorf("Watchdog = %q, want inflight_bytes", a.Watchdog)
	}
	if a.IntervalUS != 10 || a.StartUS != 2 {
		t.Errorf("IntervalUS/StartUS = %v/%v, want 10/2", a.IntervalUS, a.StartUS)
	}
	if len(a.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(a.Series))
	}
	if a.Series[0].Name != "net/inflight_bytes" || a.Series[0].Unit != "bytes" {
		t.Errorf("series 0 identity = %q/%q", a.Series[0].Name, a.Series[0].Unit)
	}
	want0 := []float64{0, 100, 200, 300, 400}
	want1 := []float64{0, 200, 400, 600, 800}
	if !reflect.DeepEqual(a.Series[0].V, want0) || !reflect.DeepEqual(a.Series[1].V, want1) {
		t.Errorf("series values = %v / %v, want %v / %v", a.Series[0].V, a.Series[1].V, want0, want1)
	}
	if got := a.TimeAtUS(0); got != 12 {
		t.Errorf("TimeAtUS(0) = %v, want 12", got)
	}

	if len(a.Hists) != 3 {
		t.Fatalf("got %d hists, want 3", len(a.Hists))
	}
	fd := a.Hists[1]
	if fd.Name != "transport/fabric_delay" || fd.Count != 4 || fd.Min != 100 || fd.Max != 100000 {
		t.Errorf("fabric_delay summary = %+v", fd)
	}
	if math.Abs(fd.Mean-25175) > 1e-9 {
		t.Errorf("fabric_delay mean = %v, want 25175", fd.Mean)
	}
	if len(fd.Buckets) == 0 {
		t.Error("fabric_delay has no buckets in the artifact")
	}
	var n int64
	for _, b := range fd.Buckets {
		n += b[2]
	}
	if n != 4 {
		t.Errorf("bucket counts sum to %d, want 4", n)
	}

	if len(a.Metrics) != 2 {
		t.Fatalf("got %d metrics, want 2", len(a.Metrics))
	}
	if a.Metrics[0].Name != "net/drops" || a.Metrics[0].V != 7 {
		t.Errorf("metric 0 = %+v", a.Metrics[0])
	}
	if a.Metrics[1].Name != "net/buffer_hwm_bytes" || a.Metrics[1].V != 1234 {
		t.Errorf("metric 1 = %+v", a.Metrics[1])
	}
}

func TestArtifactDeterministicBytes(t *testing.T) {
	// The artifact encoding itself must be byte-stable: two identical
	// recorders produce identical files (this is what lets the batch runner
	// promise byte-identical artifacts for any -parallel).
	var a, b bytes.Buffer
	if err := obs.WriteArtifact(&a, "x", sampleRecorder(t)); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteArtifact(&b, "x", sampleRecorder(t)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical recorders produced different artifact bytes")
	}
}

func TestReadArtifactRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad json":       "{not json}\n",
		"column mm":      `{"type":"meta","series":[{"name":"a","unit":"x"}]}` + "\n" + `{"type":"sample","i":0,"v":[1,2]}` + "\n",
		"sample no meta": `{"type":"sample","i":0,"v":[1]}` + "\n",
	}
	for name, in := range cases {
		if _, err := obs.ReadArtifact(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadArtifact accepted malformed input", name)
		}
	}
}

func TestReadArtifactForwardCompatible(t *testing.T) {
	// Artifacts from a newer writer must still load: unknown line types
	// are skipped (and counted), unknown fields on known line types are
	// ignored, and the meta version is surfaced. The "v" key on unknown
	// lines may even have a foreign shape.
	in := `{"type":"meta","v":7,"run":"future","series":[{"name":"a","unit":"x"}],"novel_field":true}` + "\n" +
		`{"type":"sample","i":0,"t_us":1,"v":[42],"extra":"ignored"}` + "\n" +
		`{"type":"mystery","v":3.5,"payload":{"nested":[1,2,3]}}` + "\n" +
		`{"type":"metric","metric":{"name":"net/drops","v":7}}` + "\n"
	a, err := obs.ReadArtifact(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadArtifact: %v", err)
	}
	if a.Version != 7 {
		t.Errorf("Version = %d, want 7", a.Version)
	}
	if a.Unknown != 1 {
		t.Errorf("Unknown = %d, want 1", a.Unknown)
	}
	if a.Run != "future" || len(a.Series) != 1 || len(a.Series[0].V) != 1 || a.Series[0].V[0] != 42 {
		t.Errorf("known lines misparsed: %+v", a)
	}
	if len(a.Metrics) != 1 || a.Metrics[0].V != 7 {
		t.Errorf("metric line misparsed: %+v", a.Metrics)
	}
}

func TestArtifactVersionRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.WriteArtifact(&buf, "x", sampleRecorder(t)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"type":"meta","v":2`) {
		t.Error("meta line missing schema version")
	}
	a, err := obs.ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a.Version != obs.ArtifactVersion {
		t.Errorf("Version = %d, want %d", a.Version, obs.ArtifactVersion)
	}
}

func TestArtifactCkptRoundTrip(t *testing.T) {
	rec := obs.NewRecorder()
	rec.Digest = sim.NewDigest()
	// Drive a tiny engine so the digest has a real chain and checkpoints.
	e := sim.NewEngine()
	e.SetDigest(rec.Digest)
	var tick func()
	tick = func() {
		if rec.Digest.Count < 3*sim.DigestCheckpointEvery {
			e.Post(1, tick)
		}
	}
	e.Post(0, tick)
	e.Run()
	var buf bytes.Buffer
	if err := obs.WriteArtifact(&buf, "fp", rec); err != nil {
		t.Fatal(err)
	}
	a, err := obs.ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == "" || a.FPEvents != rec.Digest.Count {
		t.Fatalf("fingerprint meta missing: fp=%q events=%d (want %d)",
			a.Fingerprint, a.FPEvents, rec.Digest.Count)
	}
	if len(a.Ckpts) != len(rec.Digest.Ckpts) || len(a.Ckpts) == 0 {
		t.Fatalf("got %d ckpt lines, want %d", len(a.Ckpts), len(rec.Digest.Ckpts))
	}
	for i, c := range a.Ckpts {
		want := rec.Digest.Ckpts[i]
		if c.N != want.Count || len(c.Chain) != 16 {
			t.Fatalf("ckpt %d = %+v, want count %d", i, c, want.Count)
		}
	}
}

func TestReadArtifactEmptySeries(t *testing.T) {
	// A run shorter than one sampling interval emits a meta line with
	// series declared but zero sample lines; that must read back cleanly.
	rec := obs.NewRecorder()
	rec.Series = obs.NewSeriesSet(sim.Second)
	rec.Series.Add("a", "x", func() float64 { return 0 })
	var buf bytes.Buffer
	if err := obs.WriteArtifact(&buf, "short", rec); err != nil {
		t.Fatal(err)
	}
	a, err := obs.ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) != 1 || len(a.Series[0].V) != 0 {
		t.Errorf("empty-series artifact read back as %+v", a.Series)
	}
}
