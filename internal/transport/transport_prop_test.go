package transport_test

import (
	"math/rand"
	"testing"

	"prioplus/internal/harness"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
)

// TestRandomScenarioInvariants runs randomized flow mixes on a star and
// checks the end-to-end invariants: every flow completes, the delivered
// byte counts match the flow sizes exactly, and the run is deterministic.
func TestRandomScenarioInvariants(t *testing.T) {
	run := func(seed int64) (fcts []sim.Time, totalBytes int64) {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		cfg := topo.DefaultConfig()
		cfg.LinkDelay = 3 * sim.Microsecond
		nHosts := 3 + rng.Intn(6)
		nw := topo.Star(eng, nHosts, cfg)
		net := harness.New(nw, seed)
		nFlows := 2 + rng.Intn(10)
		done := 0
		fcts = make([]sim.Time, nFlows)
		for i := 0; i < nFlows; i++ {
			i := i
			src := rng.Intn(nHosts - 1)
			size := int64(1000 + rng.Intn(2_000_000))
			totalBytes += size
			net.AddFlow(harness.Flow{
				Src: src, Dst: nHosts - 1, Size: size, Prio: 0,
				Algo:       swiftFor(net, src, nHosts-1),
				StartAt:    sim.Time(rng.Intn(2000)) * sim.Microsecond,
				OnComplete: func(d sim.Time) { fcts[i] = d; done++ },
			})
		}
		eng.RunUntil(200 * sim.Millisecond)
		if done != nFlows {
			t.Fatalf("seed %d: %d/%d flows completed", seed, done, nFlows)
		}
		return fcts, totalBytes
	}
	for seed := int64(1); seed <= 12; seed++ {
		a, _ := run(seed)
		b, _ := run(seed)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: nondeterministic FCT for flow %d: %v vs %v", seed, i, a[i], b[i])
			}
			if a[i] <= 0 {
				t.Fatalf("seed %d: flow %d has nonpositive FCT", seed, i)
			}
		}
	}
}
