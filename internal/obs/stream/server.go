package stream

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"prioplus/internal/obs"
	"prioplus/internal/runner"
	"prioplus/internal/sim"
)

// MetricsSnapshot is the /metrics payload: host-process gauges, simulator
// totals, per-kind cost attribution, and hub statistics, as one JSON
// object. The watch dashboard decodes the same struct.
type MetricsSnapshot struct {
	// WallUnixMS is the server's wall clock, for client-side rate math.
	WallUnixMS int64 `json:"wall_unix_ms"`
	// Runtime holds the host gauges (see obs.HostGauges).
	Runtime RuntimeMetrics `json:"runtime"`
	// Sim holds the process-wide event counters.
	Sim SimMetrics `json:"sim"`
	// Cost lists per-event-kind cost attribution, kinds with samples only.
	Cost []CostMetric `json:"cost"`
	// Stream holds the hub's fan-out counters.
	Stream StreamMetrics `json:"stream"`
}

// RuntimeMetrics is the host-process gauge section of /metrics.
type RuntimeMetrics struct {
	// RSSBytes..Goroutines mirror obs.HostGauges.
	RSSBytes   float64 `json:"rss_bytes"`
	HeapBytes  float64 `json:"heap_bytes"`
	GCCycles   float64 `json:"gc_cycles"`
	GCPauseUS  float64 `json:"gc_pause_us"`
	Goroutines float64 `json:"goroutines"`
}

// SimMetrics is the simulator-totals section of /metrics.
type SimMetrics struct {
	// Events is the logical event count (build-independent basis);
	// EventsDispatched the raw dispatch count. See sim.TotalEvents.
	Events           uint64 `json:"events"`
	EventsDispatched uint64 `json:"events_dispatched"`
}

// CostMetric is one event kind's process-wide cost attribution.
type CostMetric struct {
	// Kind is the event kind name; Samples/Nanos the accumulated stamped
	// dispatches; Share is this kind's fraction of all stamped nanoseconds.
	Kind    string  `json:"kind"`
	Samples int64   `json:"samples"`
	Nanos   int64   `json:"ns"`
	Share   float64 `json:"share"`
}

// StreamMetrics is the hub section of /metrics.
type StreamMetrics struct {
	// Subscribers is the current /events consumer count; Published and
	// Dropped are lifetime line counters.
	Subscribers int    `json:"subscribers"`
	Published   uint64 `json:"published"`
	Dropped     uint64 `json:"dropped"`
}

// RunsSnapshot is the /runs payload: every run's live state plus batch
// aggregates.
type RunsSnapshot struct {
	// Runs lists each run in registration order.
	Runs []runner.RunSnapshot `json:"runs"`
	// Batch aggregates the run states.
	Batch BatchMetrics `json:"batch"`
}

// BatchMetrics aggregates a batch's run states.
type BatchMetrics struct {
	// Total/Pending/Running/Done/Failed count runs by status.
	Total   int `json:"total"`
	Pending int `json:"pending"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	// Events sums per-run dispatched events (live, mid-run included).
	Events uint64 `json:"events"`
}

// Server exposes a batch's live state over HTTP. Create with NewServer,
// start with Start, stop with Close (which drains /events subscribers
// before the listener goes away).
type Server struct {
	// Hub is the artifact line fan-out; publishers tee into it via
	// Hub.ArtifactWriter.
	Hub *Hub
	// Reg is the batch run registry backing /runs; may be nil (endpoint
	// then reports an empty batch).
	Reg *runner.Registry

	hostMu sync.Mutex
	host   func() obs.HostGauges
	ln     net.Listener
	srv    *http.Server

	extras []extraRoute
}

// extraRoute is one caller-registered endpoint (the serve layer's /jobs
// and /experiments), installed on the mux when Start builds it.
type extraRoute struct {
	pattern string
	desc    string
	handler http.Handler
}

// NewServer returns a server with a fresh hub.
func NewServer(reg *runner.Registry) *Server {
	return &Server{Hub: NewHub(), Reg: reg}
}

// Addr returns the bound listen address once Start has succeeded.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Handle registers an extra endpoint on the server's mux, with a one-line
// description for the index page. Call before Start; routes registered
// afterwards are ignored. The serve layer uses this to mount /jobs and
// /experiments next to the streaming endpoints so one listener carries
// both.
func (s *Server) Handle(pattern, desc string, h http.Handler) {
	s.extras = append(s.extras, extraRoute{pattern: pattern, desc: desc, handler: h})
}

// Start binds addr (e.g. ":8080", "127.0.0.1:0") and serves in the
// background until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.host = obs.NewHostGaugeReader()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/events", s.handleEvents)
	for _, e := range s.extras {
		mux.Handle(e.pattern, e.handler)
	}
	mux.HandleFunc("/", s.handleIndex)
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return nil
}

// Close shuts the server down: the hub closes first so /events handlers
// drain every already-published line to their clients, then the HTTP
// server waits for in-flight handlers before releasing the listener.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	s.Hub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// Metrics assembles the /metrics payload.
func (s *Server) Metrics() MetricsSnapshot {
	s.hostMu.Lock()
	if s.host == nil {
		s.host = obs.NewHostGaugeReader()
	}
	g := s.host()
	s.hostMu.Unlock()
	subs, pub, drop := s.Hub.Stats()
	snap := MetricsSnapshot{
		WallUnixMS: time.Now().UnixMilli(),
		Runtime: RuntimeMetrics{
			RSSBytes:   g.RSSBytes,
			HeapBytes:  g.HeapBytes,
			GCCycles:   g.GCCycles,
			GCPauseUS:  g.GCPauseUS,
			Goroutines: g.Goroutines,
		},
		Sim: SimMetrics{
			Events:           sim.TotalEvents(),
			EventsDispatched: sim.TotalProcessed(),
		},
		Stream: StreamMetrics{Subscribers: subs, Published: pub, Dropped: drop},
	}
	totals := obs.CostTotals()
	var totalNS int64
	for _, b := range totals {
		totalNS += b.Nanos
	}
	for k, b := range totals {
		if b.Samples == 0 {
			continue
		}
		m := CostMetric{Kind: sim.EventKindName(uint8(k)), Samples: b.Samples, Nanos: b.Nanos}
		if totalNS > 0 {
			m.Share = float64(b.Nanos) / float64(totalNS)
		}
		snap.Cost = append(snap.Cost, m)
	}
	return snap
}

// Runs assembles the /runs payload.
func (s *Server) Runs() RunsSnapshot {
	out := RunsSnapshot{}
	if s.Reg != nil {
		out.Runs = s.Reg.Snapshot()
	}
	out.Batch.Total = len(out.Runs)
	for _, r := range out.Runs {
		switch r.Status {
		case "pending":
			out.Batch.Pending++
		case "running":
			out.Batch.Running++
		case "done":
			out.Batch.Done++
		case "failed":
			out.Batch.Failed++
		}
		out.Batch.Events += r.Events
	}
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Metrics())
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Runs())
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "prioplus-sim live endpoints:\n  /metrics  process gauges + cost attribution (JSON)\n  /runs     batch run state (JSON)\n  /events   artifact line stream (SSE)\n")
	for _, e := range s.extras {
		if e.desc != "" {
			fmt.Fprintf(w, "  %-9s %s\n", e.pattern, e.desc)
		}
	}
}

// handleEvents serves the SSE stream: one event per artifact line, with
// the run stem as the SSE id and the raw JSONL line as data. A trailing
// "event: dropped" message reports lines this subscriber lost, so
// consumers can tell a complete stream from a truncated one.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": stream open\n\n")
	fl.Flush()

	sub := s.Hub.Subscribe(0)
	defer s.Hub.Unsubscribe(sub)
	heartbeat := time.NewTicker(5 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case msg, open := <-sub.C():
			if !open {
				fmt.Fprintf(w, "event: dropped\ndata: %d\n\n", sub.Dropped())
				fl.Flush()
				return
			}
			fmt.Fprintf(w, "id: %s\ndata: %s\n\n", msg.Run, msg.Line)
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprintf(w, ": ping\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeJSON renders v as indented JSON (these payloads are small and often
// read by humans with curl).
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
