package exp

import (
	"strings"
	"testing"

	"prioplus/internal/sim"
	"prioplus/internal/workload"
)

// TestCoflowFromTrace drives the coflow scenario from an explicit trace in
// the public Facebook format instead of the synthetic generator.
func TestCoflowFromTrace(t *testing.T) {
	t.Parallel()
	trace := `16 4
1 0 2 1 2 2 3:2 4:1
2 1 2 5 6 1 7:4
3 2 1 8 2 9:1 10:2
4 3 3 11 12 13 1 14:6
`
	cfs, err := workload.ParseCoflowTrace(strings.NewReader(trace), 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultCoflowConfig(PrioPlusSwift(), 0.4)
	cfg.Trace = cfs
	cfg.Duration = 5 * sim.Millisecond
	cfg.Drain = 60 * sim.Millisecond
	r := RunCoflow(cfg)
	if r.Launched != 4 || r.Completed != 4 {
		t.Fatalf("completed %d/%d trace coflows", r.Completed, r.Launched)
	}
	if r.Mean <= 0 {
		t.Error("no CCT measured")
	}
}
