package cc

import (
	"math"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// SwiftConfig parameterizes the Swift delay-based controller [Kumar et al.,
// SIGCOMM'20], in the simplified form the PrioPlus paper analyzes
// (Appendix D): additive increase of AI packets per RTT, once-per-RTT
// multiplicative decrease of beta*(delay-target)/delay capped at MaxMDF,
// and optional flow-based target scaling.
type SwiftConfig struct {
	// Target is the absolute target delay (base RTT + queuing budget).
	Target sim.Time
	// AI is the additive-increase step in packets per RTT.
	AI float64
	// Beta scales the multiplicative decrease.
	Beta float64
	// MaxMDF caps a single multiplicative decrease.
	MaxMDF float64
	// MinCwnd/MaxCwnd bound the window, in packets. MinCwnd below one
	// packet makes the transport pace (the paper's 100 Mb/s minimum rate
	// corresponds to ~0.15 packets at a 12 us RTT).
	MinCwnd float64
	MaxCwnd float64
	// TargetScaling enables Swift's flow-based scaling: as cwnd shrinks
	// (more competing flows), the target grows by up to FSRange.
	TargetScaling bool
	FSRange       sim.Time
	FSMinCwnd     float64
	FSMaxCwnd     float64
}

// DefaultSwiftConfig returns the parameters used throughout the paper's
// experiments for a path with the given base RTT and line-rate BDP
// (in packets).
func DefaultSwiftConfig(baseRTT sim.Time, bdpPkts float64) SwiftConfig {
	return SwiftConfig{
		Target:  baseRTT + 4*sim.Microsecond,
		AI:      0.125, // ~125 B per RTT: keeps 150-flow fluctuation within the paper's 3.2 us budget
		Beta:    0.8,
		MaxMDF:  0.5,
		MinCwnd: 0.1,
		// The ceiling must admit windows well beyond one BDP: a flow
		// holding the delay at a high PrioPlus channel needs BDP plus the
		// channel's queue (up to several BDP for 8-12 priorities). The
		// target-delay regulation, not this cap, bounds the queue.
		MaxCwnd:       math.Max(bdpPkts*8, 8),
		TargetScaling: false,
		FSRange:       20 * sim.Microsecond,
		FSMinCwnd:     0.1,
		FSMaxCwnd:     math.Max(bdpPkts, 1),
	}
}

// Swift implements the Swift congestion controller.
type Swift struct {
	cfg  SwiftConfig
	drv  Driver
	dlog DecisionLogger
	cwnd float64 // packets

	ai           float64
	lastDecrease sim.Time
	srtt         sim.Time

	// Precomputed flow-scaling coefficients.
	fsAlpha, fsBeta float64
}

// NewSwift returns a Swift instance. The initial window is one BDP (set at
// Start); RDMA-style line-rate start is approximated by starting at
// MaxCwnd when LineRateStart is used via SetCwndPackets.
func NewSwift(cfg SwiftConfig) *Swift {
	s := &Swift{cfg: cfg, ai: cfg.AI}
	if cfg.TargetScaling {
		den := 1/math.Sqrt(cfg.FSMinCwnd) - 1/math.Sqrt(cfg.FSMaxCwnd)
		if den > 0 {
			s.fsAlpha = float64(cfg.FSRange) / den
			s.fsBeta = s.fsAlpha / math.Sqrt(cfg.FSMaxCwnd)
		}
	}
	return s
}

// Name implements Algorithm.
func (s *Swift) Name() string { return "swift" }

// WantsECT implements Algorithm: Swift is delay-based and ignores ECN.
func (s *Swift) WantsECT() bool { return false }

// Start implements Algorithm: Swift starts at line rate for one base RTT
// (one BDP window), the common RDMA-CC choice the paper's §3.3 discusses.
func (s *Swift) Start(drv Driver) {
	s.drv = drv
	s.dlog = DecisionLoggerOf(drv)
	if s.cwnd == 0 {
		bdp := drv.LineRate().BDP(drv.BaseRTT()) / float64(drv.MTU())
		s.cwnd = s.clamp(bdp)
	}
	s.srtt = drv.BaseRTT()
}

// TargetNow returns the effective target delay for the current window,
// including flow scaling if enabled.
func (s *Swift) TargetNow() sim.Time {
	t := s.cfg.Target
	if s.cfg.TargetScaling && s.fsAlpha > 0 {
		fs := s.fsAlpha/math.Sqrt(math.Max(s.cwnd, s.cfg.FSMinCwnd)) - s.fsBeta
		fs = math.Min(math.Max(fs, 0), float64(s.cfg.FSRange))
		t += sim.Time(fs)
	}
	return t
}

func (s *Swift) clamp(w float64) float64 {
	return math.Min(math.Max(w, s.cfg.MinCwnd), s.cfg.MaxCwnd)
}

// OnAck implements Algorithm.
func (s *Swift) OnAck(fb Feedback) {
	if fb.Delay > 0 {
		if s.srtt == 0 {
			s.srtt = fb.Delay
		} else {
			s.srtt = (7*s.srtt + fb.Delay) / 8
		}
	}
	target := s.TargetNow()
	ackedPkts := float64(fb.AckedBytes) / float64(s.drv.MTU())
	if ackedPkts <= 0 {
		ackedPkts = 1
	}
	if fb.Delay < target {
		if s.cwnd >= 1 {
			s.cwnd += s.ai / s.cwnd * ackedPkts
		} else {
			s.cwnd += s.ai * ackedPkts
		}
	} else if fb.Now-s.lastDecrease >= s.srtt {
		md := s.cfg.Beta * float64(fb.Delay-target) / float64(fb.Delay)
		if md > s.cfg.MaxMDF {
			md = s.cfg.MaxMDF
		}
		s.cwnd *= 1 - md
		s.lastDecrease = fb.Now
		if s.dlog != nil {
			s.dlog.LogDecision(obs.SpanDecCut, fb.Delay, s.clamp(s.cwnd), md)
		}
	}
	s.cwnd = s.clamp(s.cwnd)
}

// OnProbeAck implements Algorithm. Plain Swift treats a probe ACK as a
// delay sample.
func (s *Swift) OnProbeAck(fb Feedback) { s.OnAck(fb) }

// OnRTO implements Algorithm.
func (s *Swift) OnRTO() {
	s.cwnd = s.clamp(s.cwnd * (1 - s.cfg.MaxMDF))
}

// CwndBytes implements Algorithm.
func (s *Swift) CwndBytes() float64 { return s.cwnd * float64(s.drv.MTU()) }

// CwndPackets implements DelayBased.
func (s *Swift) CwndPackets() float64 { return s.cwnd }

// SetCwndPackets implements DelayBased.
func (s *Swift) SetCwndPackets(w float64) { s.cwnd = s.clamp(w) }

// AIStep implements DelayBased.
func (s *Swift) AIStep() float64 { return s.ai }

// SetAIStep implements DelayBased.
func (s *Swift) SetAIStep(w float64) { s.ai = w }

// BaseAIStep implements DelayBased.
func (s *Swift) BaseAIStep() float64 { return s.cfg.AI }

// SetTarget implements DelayBased: pins the target and disables scaling.
func (s *Swift) SetTarget(t sim.Time) {
	s.cfg.Target = t
	s.cfg.TargetScaling = false
}
