package obs_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

func TestFlowLogRingBound(t *testing.T) {
	ft := obs.NewFlowTracer(1)
	ft.MaxSpans = 4
	fl := ft.Admit(1)
	if fl == nil {
		t.Fatal("flow 1 not admitted")
	}
	for i := 0; i < 10; i++ {
		fl.Add(obs.Span{T: sim.Time(i), Kind: obs.SpanHop, Seq: int64(i)})
	}
	if fl.Len() != 4 {
		t.Fatalf("ring holds %d spans, want 4", fl.Len())
	}
	if fl.Dropped != 6 {
		t.Errorf("Dropped = %d, want 6", fl.Dropped)
	}
	var seqs []int64
	fl.Spans(func(sp obs.Span) { seqs = append(seqs, sp.Seq) })
	if want := []int64{6, 7, 8, 9}; !reflect.DeepEqual(seqs, want) {
		t.Errorf("ring kept %v, want the newest %v", seqs, want)
	}
}

func TestFlowTracerAdmission(t *testing.T) {
	ft := obs.NewFlowTracer(2)
	if ft.Admit(10) == nil || ft.Admit(11) == nil {
		t.Fatal("first two flows not admitted")
	}
	if ft.Admit(12) != nil {
		t.Error("flow admitted past MaxFlows")
	}
	if ft.Admit(10) != ft.Log(10) {
		t.Error("re-admission returned a different log")
	}
	if ft.Log(12) != nil {
		t.Error("Log returned a log for an unadmitted flow")
	}
	logs := ft.Logs()
	if len(logs) != 2 || logs[0].Flow != 10 || logs[1].Flow != 11 {
		t.Errorf("Logs() not in admission order: %+v", logs)
	}
	// The zero cap admits nothing, and a nil tracer is inert.
	if obs.NewFlowTracer(0).Admit(1) != nil {
		t.Error("zero-cap tracer admitted a flow")
	}
	var nilFT *obs.FlowTracer
	if nilFT.Admit(1) != nil || nilFT.Log(1) != nil || nilFT.Logs() != nil {
		t.Error("nil tracer not inert")
	}
	if nilFT.JourneyStride() != 1 {
		t.Error("nil tracer journey stride != 1")
	}
}

func TestFlowTracerMatch(t *testing.T) {
	ft := obs.NewFlowTracer(8)
	ft.Match = []int64{3, 5}
	for id := int64(1); id <= 6; id++ {
		ft.Admit(id)
	}
	logs := ft.Logs()
	if len(logs) != 2 || logs[0].Flow != 3 || logs[1].Flow != 5 {
		t.Errorf("Match admitted %+v, want flows 3 and 5", logs)
	}
}

func TestFlowTracerEveryDeterministic(t *testing.T) {
	admit := func() []int64 {
		ft := obs.NewFlowTracer(1000)
		ft.Every = 4
		var got []int64
		for id := int64(0); id < 256; id++ {
			if ft.Admit(id) != nil {
				got = append(got, id)
			}
		}
		return got
	}
	a, b := admit(), admit()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Every-stride admission not deterministic")
	}
	if len(a) == 0 || len(a) > 256/2 {
		t.Errorf("Every=4 admitted %d of 256 flows, want a thinned sample", len(a))
	}
}

// recordingTracer captures forwarded events, standing in for the flight
// recorder / JSONL sink behind the flow tracer.
type recordingTracer struct{ evs []obs.Event }

func (r *recordingTracer) Trace(ev obs.Event) { r.evs = append(r.evs, ev) }

func TestFlowTracerTraceChaining(t *testing.T) {
	ft := obs.NewFlowTracer(1)
	fl := ft.Admit(7)
	inner := &recordingTracer{}
	ft.Inner = inner

	ft.Trace(obs.Event{T: 10, Kind: obs.Drop, Dev: "tor0", Flow: 7, Seq: 1500, Bytes: 1000})
	ft.Trace(obs.Event{T: 20, Kind: obs.Mark, Dev: "tor0", Flow: 7, Seq: 3000, QLen: 4096})
	ft.Trace(obs.Event{T: 30, Kind: obs.Drop, Dev: "tor0", Flow: 8, Seq: 0, Bytes: 500}) // unsampled
	ft.Trace(obs.Event{T: 40, Kind: obs.Enqueue, Dev: "tor0", Flow: 7})                  // not a journey kind

	var got []obs.Span
	fl.Spans(func(sp obs.Span) { got = append(got, sp) })
	want := []obs.Span{
		{T: 10, Kind: obs.SpanDrop, Seq: 1500, Dev: "tor0", A: 1000},
		{T: 20, Kind: obs.SpanMark, Seq: 3000, Dev: "tor0", A: 4096},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("spans = %+v, want %+v", got, want)
	}
	if len(inner.evs) != 4 {
		t.Errorf("inner tracer saw %d events, want all 4", len(inner.evs))
	}
}

func TestSpanKindNamesRoundTrip(t *testing.T) {
	kinds := []obs.SpanKind{
		obs.SpanHop, obs.SpanDeliver, obs.SpanAcked, obs.SpanProbeAcked,
		obs.SpanRetx, obs.SpanRTO, obs.SpanDrop, obs.SpanMark, obs.SpanDone,
		obs.SpanDecStart, obs.SpanDecYield, obs.SpanDecProbe, obs.SpanDecProbeAns,
		obs.SpanDecResume, obs.SpanDecCardEst, obs.SpanDecCardDecay,
		obs.SpanDecLinearStart, obs.SpanDecAdaptiveInc, obs.SpanDecAIRestore,
		obs.SpanDecCut, obs.SpanDecGrow,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		name := k.String()
		if name == "unknown" || seen[name] {
			t.Errorf("kind %d has bad or duplicate name %q", k, name)
		}
		seen[name] = true
		back, ok := obs.SpanKindByName(name)
		if !ok || back != k {
			t.Errorf("SpanKindByName(%q) = %v, %v; want %v", name, back, ok, k)
		}
		if wantDec := k >= obs.SpanDecStart; k.Decision() != wantDec {
			t.Errorf("kind %q Decision() = %v, want %v", name, k.Decision(), wantDec)
		}
	}
	if _, ok := obs.SpanKindByName("no-such-kind"); ok {
		t.Error("SpanKindByName accepted an unknown name")
	}
}

// TestArtifactFlowSpansRoundTrip: flow logs serialize into the artifact and
// read back span-for-span, including the ring's drop counter.
func TestArtifactFlowSpansRoundTrip(t *testing.T) {
	rec := obs.NewRecorder()
	ft := obs.NewFlowTracer(2)
	ft.MaxSpans = 2
	rec.FlowTrace = ft

	a := ft.Admit(1)
	a.Add(obs.Span{T: 1000, Kind: obs.SpanDecStart, A: 25.8, B: 28.2})
	a.Add(obs.Span{T: 2000, Kind: obs.SpanHop, Seq: 1500, Delay: 500, Dev: "star", A: 4096})
	a.Add(obs.Span{T: 3000, Kind: obs.SpanDecYield, Delay: 28500, A: 2.25, B: 2}) // overwrites T=1000
	b := ft.Admit(2)
	b.Add(obs.Span{T: 1500, Kind: obs.SpanAcked, Seq: 3000, Delay: 17140, A: 9027, B: 9000})

	var buf bytes.Buffer
	if err := obs.WriteArtifact(&buf, "trace-test", rec); err != nil {
		t.Fatal(err)
	}
	art, err := obs.ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Flows) != 2 {
		t.Fatalf("artifact has %d flows, want 2", len(art.Flows))
	}
	f1 := art.Flows[0]
	if f1.ID != 1 || f1.Dropped != 1 || len(f1.Spans) != 2 {
		t.Fatalf("flow 1 = id %d dropped %d spans %d, want 1/1/2", f1.ID, f1.Dropped, len(f1.Spans))
	}
	hop := f1.Spans[0]
	if hop.Kind != "hop" || hop.Seq != 1500 || hop.Dev != "star" || hop.A != 4096 {
		t.Errorf("hop span mangled: %+v", hop)
	}
	if hop.TUS != sim.Time(2000).Micros() || hop.DelayUS != sim.Time(500).Micros() {
		t.Errorf("hop span times mangled: %+v", hop)
	}
	if f1.Spans[1].Kind != "yield" {
		t.Errorf("second surviving span = %q, want the yield", f1.Spans[1].Kind)
	}
	f2 := art.Flows[1]
	if f2.ID != 2 || len(f2.Spans) != 1 || f2.Spans[0].Kind != "acked" || f2.Spans[0].B != 9000 {
		t.Errorf("flow 2 mangled: %+v", f2)
	}
}

// TestArtifactSpanUndeclaredFlow: a span line without its flow declaration
// is a corrupt artifact, not a silent skip.
func TestArtifactSpanUndeclaredFlow(t *testing.T) {
	lines := `{"type":"meta","run":"x","interval_us":0}
{"type":"span","flow":9,"t_us":1,"kind":"hop"}
`
	_, err := obs.ReadArtifact(strings.NewReader(lines))
	if err == nil || !strings.Contains(err.Error(), "undeclared flow") {
		t.Fatalf("err = %v, want undeclared-flow error", err)
	}
}
