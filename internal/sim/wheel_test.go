package sim

import (
	"math/rand"
	"testing"
)

// heapSched is the binary-heap scheduler the engine used before the timing
// wheel (PR 2's lazy-cancel heap), kept verbatim-in-spirit as the reference
// implementation: a single min-heap over (time, seq) with lazy cancel. The
// wheel must be observationally equivalent to it — same firing order, same
// pending counts — for any schedule/cancel/run sequence.
type heapSched struct {
	now  Time
	seq  uint64
	heap []refEntry
}

type refEntry struct {
	at       Time
	seq      uint64
	canceled *bool
	fire     func()
}

func (a refEntry) less(b refEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *heapSched) schedule(at Time, fire func()) *bool {
	canceled := new(bool)
	h.heap = append(h.heap, refEntry{at: at, seq: h.seq, canceled: canceled, fire: fire})
	h.seq++
	for i := len(h.heap) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.heap[i].less(h.heap[parent]) {
			break
		}
		h.heap[i], h.heap[parent] = h.heap[parent], h.heap[i]
		i = parent
	}
	return canceled
}

func (h *heapSched) pending() int {
	n := 0
	for _, ent := range h.heap {
		if !*ent.canceled {
			n++
		}
	}
	return n
}

func (h *heapSched) runUntil(end Time) {
	for len(h.heap) > 0 {
		top := h.heap[0]
		if !*top.canceled && top.at > end {
			break
		}
		n := len(h.heap) - 1
		h.heap[0] = h.heap[n]
		h.heap = h.heap[:n]
		for i := 0; ; {
			child := 2*i + 1
			if child >= n {
				break
			}
			if r := child + 1; r < n && h.heap[r].less(h.heap[child]) {
				child = r
			}
			if !h.heap[child].less(h.heap[i]) {
				break
			}
			h.heap[i], h.heap[child] = h.heap[child], h.heap[i]
			i = child
		}
		if *top.canceled {
			continue
		}
		h.now = top.at
		top.fire()
	}
	if h.now < end && end < maxTime {
		h.now = end
	}
}

// TestEngineHeapEquivalence drives random schedule / cancel / run-until
// sequences through the wheel engine and the reference binary heap in
// lockstep. It is the complement of TestEngineLazyCancelEquivalence (which
// compares against a naive sorted list): together they pin the wheel to
// both prior queue implementations. Delays are drawn across every wheel
// regime — same-tick, level 0, cascades from levels 1-3, and the overflow
// heap — so level boundaries and cursor jumps are all exercised.
func TestEngineHeapEquivalence(t *testing.T) {
	// Delay magnitudes chosen to land in each wheel structure (slot width
	// is 8.192 ns, level horizons 2.1 us / 537 us / 137 ms / 35 s).
	scales := []Time{Nanosecond, 100 * Nanosecond, 10 * Microsecond,
		10 * Millisecond, Second, 100 * Second}
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		ref := &heapSched{}
		var got, want []int
		handles := map[int]*Event{}
		flags := map[int]*bool{}
		nextID := 0

		for op := 0; op < 400; op++ {
			switch r.Intn(5) {
			case 0, 1: // schedule
				d := Time(r.Int63n(int64(scales[r.Intn(len(scales))])))
				at := e.Now() + d
				id := nextID
				nextID++
				handles[id] = e.At(at, func() { got = append(got, id) })
				flags[id] = ref.schedule(at, func() { want = append(want, id) })
			case 2: // cancel a random live event
				if len(handles) == 0 {
					continue
				}
				// Deterministic victim choice: lowest id >= a random probe.
				probe := r.Intn(nextID)
				for id := probe; id < probe+nextID; id++ {
					if h, ok := handles[id%nextID]; ok {
						e.Cancel(h)
						*flags[id%nextID] = true
						delete(handles, id%nextID)
						delete(flags, id%nextID)
						break
					}
				}
			case 3, 4: // advance the clock
				d := Time(r.Int63n(int64(scales[r.Intn(len(scales))])))
				end := e.Now() + d
				e.RunUntil(end)
				ref.runUntil(end)
				// Fired events are recycled by the engine; their handles are
				// stale and must be dropped before the next cancel op.
				for id := range handles {
					if fired(want, id) {
						delete(handles, id)
						delete(flags, id)
					}
				}
			}
			if e.Pending() != ref.pending() {
				t.Fatalf("seed %d op %d: Pending() = %d, heap reference has %d",
					seed, op, e.Pending(), ref.pending())
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d op %d: fired %d events, reference fired %d",
					seed, op, len(got), len(want))
			}
		}
		e.Run()
		ref.runUntil(maxTime)
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing order diverges at %d: got %d, want %d",
					seed, i, got[i], want[i])
			}
		}
		if e.Now() != ref.now {
			t.Fatalf("seed %d: clock diverges: engine %v, reference %v", seed, e.Now(), ref.now)
		}
	}
}

func fired(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// TestEngineBatchSameTickOrder pins the batched same-timestamp dispatch
// contract: N events at one tick fire in scheduling (seq) order; events a
// callback schedules at the same tick fire after the whole batch, also in
// seq order.
func TestEngineBatchSameTickOrder(t *testing.T) {
	e := NewEngine()
	const at = 5 * Microsecond
	var order []int
	for i := 0; i < 200; i++ {
		i := i
		e.At(at, func() {
			order = append(order, i)
			if i == 50 {
				// Scheduled mid-batch at the same timestamp: must fire after
				// every original batch member, in scheduling order.
				e.At(at, func() { order = append(order, 1000) })
				e.At(at, func() { order = append(order, 1001) })
			}
		})
	}
	e.Run()
	if len(order) != 202 {
		t.Fatalf("fired %d events, want 202", len(order))
	}
	for i := 0; i < 200; i++ {
		if order[i] != i {
			t.Fatalf("batch order[%d] = %d, want %d", i, order[i], i)
		}
	}
	if order[200] != 1000 || order[201] != 1001 {
		t.Fatalf("same-tick events scheduled mid-batch fired as %v, want [1000 1001]", order[200:])
	}
	if e.Now() != at {
		t.Errorf("Now() = %v, want %v", e.Now(), at)
	}
}

// TestEngineBatchCancelWithin: a batch member canceling a later member of
// the same batch must prevent it from firing — lazy cancel applies inside
// a same-timestamp batch, not just across queue pops.
func TestEngineBatchCancelWithin(t *testing.T) {
	e := NewEngine()
	var fired []int
	var victim *Event
	e.At(Microsecond, func() {
		fired = append(fired, 0)
		e.Cancel(victim)
		victim = nil
	})
	victim = e.At(Microsecond, func() { fired = append(fired, 1) })
	e.At(Microsecond, func() { fired = append(fired, 2) })
	e.Run()
	if len(fired) != 2 || fired[0] != 0 || fired[1] != 2 {
		t.Fatalf("fired = %v, want [0 2] (member 1 canceled mid-batch)", fired)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", e.Pending())
	}
}

// TestEngineStopMidBatch: Stop from inside a batch returns immediately;
// the undispatched same-timestamp remainder stays pending and resumes in
// order on the next run.
func TestEngineStopMidBatch(t *testing.T) {
	e := NewEngine()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Microsecond, func() {
			fired = append(fired, i)
			if i == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d events before Stop, want 4", len(fired))
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending = %d after mid-batch Stop, want 6", e.Pending())
	}
	e.Run()
	if len(fired) != 10 {
		t.Fatalf("fired %d events after resume, want 10", len(fired))
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("fired[%d] = %d, want %d (order must survive a mid-batch Stop)", i, v, i)
		}
	}
}

// TestEngineWheelLevels schedules one event per wheel regime — same slot,
// level 0, levels 1-3, and the overflow heap — and checks global firing
// order plus exact timestamps as the cursor cascades across level
// boundaries.
func TestEngineWheelLevels(t *testing.T) {
	e := NewEngine()
	delays := []Time{
		3 * Nanosecond,    // inside the first slot (due heap directly)
		500 * Nanosecond,  // level 0
		100 * Microsecond, // level 1
		50 * Millisecond,  // level 2
		10 * Second,       // level 3
		60 * Second,       // overflow (beyond the ~35 s horizon)
		200 * Second,      // overflow, a later top-level window
	}
	var fired []Time
	// Schedule in shuffled order so placement order differs from fire order.
	for _, i := range []int{4, 1, 6, 0, 3, 5, 2} {
		d := delays[i]
		e.At(d, func() { fired = append(fired, e.Now()) })
	}
	e.Run()
	if len(fired) != len(delays) {
		t.Fatalf("fired %d events, want %d", len(fired), len(delays))
	}
	for i, d := range delays {
		if fired[i] != d {
			t.Errorf("fired[%d] at %v, want %v", i, fired[i], d)
		}
	}
}

// TestEngineWheelRTORearm models the retransmit-timer stress case the
// wheel must absorb: a far-future RTO armed and canceled on every "ACK",
// with the occasional timer allowed to fire. The timer crosses level
// boundaries as the clock advances toward it.
func TestEngineWheelRTORearm(t *testing.T) {
	e := NewEngine()
	rtoFired := 0
	var rto *Event
	arm := func() {
		rto = e.After(5*Millisecond, func() { rto = nil; rtoFired++ })
	}
	acks := 0
	var onAck func()
	onAck = func() {
		// ACK clock: cancel and re-arm the RTO, as transport does.
		e.Cancel(rto)
		arm()
		acks++
		if acks < 2000 {
			e.After(10*Microsecond, onAck)
		}
	}
	arm()
	e.After(10*Microsecond, onAck)
	e.Run()
	if acks != 2000 {
		t.Fatalf("acks = %d, want 2000", acks)
	}
	if rtoFired != 1 {
		t.Errorf("RTO fired %d times, want exactly 1 (the final armed timer)", rtoFired)
	}
	// The cancel/re-arm loop must not accumulate canceled entries: 2000
	// cancels against a queue of ~2 live events must have compacted.
	if n := e.queuedEntries(); n > 256 {
		t.Errorf("queue holds %d entries after the re-arm loop, want <= 256", n)
	}
}

// TestEngineWheelSparseJump: the cursor must skip long empty stretches in
// O(levels) rather than slot-by-slot; with events 30 s apart this would
// time out if advancing were linear in elapsed slots.
func TestEngineWheelSparseJump(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 1; i <= 20; i++ {
		e.At(Time(i)*30*Second, func() { fired++ })
	}
	e.Run()
	if fired != 20 {
		t.Fatalf("fired %d events, want 20", fired)
	}
	if e.Now() != 600*Second {
		t.Errorf("Now() = %v, want 600s", e.Now())
	}
}

// TestEngineWheelOverflowCancel: canceling events parked in the overflow
// heap reclaims them via compaction and never fires them.
func TestEngineWheelOverflowCancel(t *testing.T) {
	e := NewEngine()
	fired := 0
	var evs []*Event
	for i := 0; i < 1000; i++ {
		evs = append(evs, e.At(100*Second+Time(i), func() { fired++ }))
	}
	keep := e.At(100*Second+Time(len(evs)), func() { fired++ })
	_ = keep
	for _, ev := range evs {
		e.Cancel(ev)
	}
	e.Run()
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (only the uncanceled overflow event)", fired)
	}
	if n := e.queuedEntries(); n != 0 {
		t.Errorf("queue holds %d entries after the run, want 0", n)
	}
}

// TestEngineBatchZeroAlloc: batched same-tick dispatch must stay on the
// zero-allocation path once the batch buffer and free list are warm.
func TestEngineBatchZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	warm := func() {
		for i := 0; i < 32; i++ {
			e.After(Microsecond, fn) // 32 events at one tick
		}
		e.Run()
	}
	// Advancing 1 us per run lands each batch in a different wheel slot;
	// run enough rounds that every slot in the cycle has grown capacity.
	for i := 0; i < 512; i++ {
		warm()
	}
	if avg := testing.AllocsPerRun(200, warm); avg != 0 {
		t.Errorf("same-tick batch dispatch: %v allocs/op, want 0", avg)
	}
}
