package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prioplus/internal/workload"
)

func sample(n int) []int64 {
	d := workload.WebSearch()
	rng := rand.New(rand.NewSource(1))
	out := make([]int64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

func TestSizeGroupsSmallerIsHigher(t *testing.T) {
	g := NewSizeGroups(8, sample(10_000))
	if got := g.PriorityFor(6000); got != 7 {
		t.Errorf("smallest flow priority = %d, want 7 (highest)", got)
	}
	if got := g.PriorityFor(30_000_000); got != 0 {
		t.Errorf("largest flow priority = %d, want 0 (lowest)", got)
	}
	prev := g.PriorityFor(1)
	for _, s := range []int64{1e4, 1e5, 1e6, 1e7, 3e7} {
		p := g.PriorityFor(s)
		if p > prev {
			t.Errorf("priority increased with size at %d", s)
		}
		prev = p
	}
}

func TestSizeGroupsRoughlyBalancedCounts(t *testing.T) {
	s := sample(50_000)
	g := NewSizeGroups(8, s)
	counts := make([]int, 8)
	for _, size := range s {
		counts[g.PriorityFor(size)]++
	}
	for p, c := range counts {
		frac := float64(c) / float64(len(s))
		if frac < 0.02 || frac > 0.35 {
			t.Errorf("priority %d holds %.0f%% of flows; grouping degenerate", p, frac*100)
		}
	}
}

func TestByteGroupsBalanceBytes(t *testing.T) {
	s := sample(50_000)
	g := NewByteGroups(4, s)
	bytes := make([]int64, 4)
	var total int64
	for _, size := range s {
		bytes[g.PriorityFor(size)] += size
		total += size
	}
	for p, b := range bytes {
		frac := float64(b) / float64(total)
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("priority %d carries %.0f%% of bytes, want ~25%%", p, frac*100)
		}
	}
}

func TestPhysicalQueueFor(t *testing.T) {
	// 12 virtual priorities on 8 queues: order-preserving squash.
	prev := -1
	for p := 0; p < 12; p++ {
		q := PhysicalQueueFor(p, 12, 8)
		if q < prev {
			t.Errorf("queue mapping not monotone at %d", p)
		}
		if q < 0 || q > 7 {
			t.Errorf("queue %d out of range", q)
		}
		prev = q
	}
	// Fewer priorities than queues: identity.
	for p := 0; p < 4; p++ {
		if PhysicalQueueFor(p, 4, 8) != p {
			t.Error("identity mapping expected when nprios <= nqueues")
		}
	}
}

// Property: PriorityFor is monotone nonincreasing in size and always in
// range, for any sample set.
func TestPriorityMonotoneProperty(t *testing.T) {
	f := func(seed int64, nprios uint8) bool {
		n := int(nprios%12) + 2
		g := NewSizeGroups(n, sample(500))
		rng := rand.New(rand.NewSource(seed))
		prevSize := int64(0)
		prevPrio := n
		for i := 0; i < 50; i++ {
			prevSize += rng.Int63n(1 << 20)
			p := g.PriorityFor(prevSize)
			if p < 0 || p >= n || p > prevPrio {
				return false
			}
			prevPrio = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
