//go:build simdebug

package netsim

import (
	"testing"

	"prioplus/internal/sim"
)

// These tests exercise the poison mode itself and only build with
// -tags simdebug (the same pass CI runs the full suite under).

func TestSimdebugDoublePutPanics(t *testing.T) {
	pool := NewPacketPool()
	pkt := pool.Data(1, 0, 1, 0, 0, 1000)
	pool.Put(pkt)
	defer func() {
		if recover() == nil {
			t.Error("double Put did not panic under simdebug")
		}
	}()
	pool.Put(pkt)
}

func TestSimdebugUseAfterFreePanics(t *testing.T) {
	eng := sim.NewEngine()
	pool := NewPacketPool()
	a := NewHost(eng, 0, 100*Gbps, sim.Microsecond, 1)
	b := NewHost(eng, 1, 100*Gbps, sim.Microsecond, 1)
	Connect(a.NIC, b.NIC)
	pkt := pool.Data(1, 0, 1, 0, 0, 1000)
	pool.Put(pkt)
	defer func() {
		if recover() == nil {
			t.Error("sending a recycled packet did not panic under simdebug")
		}
	}()
	a.Send(pkt)
}

func TestSimdebugAckFromRecycledPanics(t *testing.T) {
	pool := NewPacketPool()
	pkt := pool.Data(1, 0, 1, 0, 0, 1000)
	pool.Put(pkt)
	defer func() {
		if recover() == nil {
			t.Error("building an ACK from a recycled packet did not panic under simdebug")
		}
	}()
	pool.Ack(pkt, 0, 1000)
}
