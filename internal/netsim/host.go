package netsim

import (
	"fmt"

	"prioplus/internal/sim"
)

// Host is an end host with a single NIC. Received packets are handed to
// the Sink (the transport layer); outgoing packets are enqueued on the NIC,
// which honors PFC pauses from the top-of-rack switch.
type Host struct {
	Eng  *sim.Engine
	ID   int
	NIC  *Port
	Sink func(pkt *Packet)

	RxPackets int64
}

// NewHost creates a host with the given NIC speed and cable propagation
// delay. nqueues is the number of NIC priority queues (match the fabric).
func NewHost(eng *sim.Engine, id int, rate Rate, prop sim.Time, nqueues int) *Host {
	h := &Host{Eng: eng, ID: id}
	h.NIC = NewPort(eng, h, rate, prop, nqueues)
	// Timestamps are taken when the transport emits the packet (see
	// Port.HWTimestamp): a sender must feel its own NIC backlog, or a
	// flow whose window exceeds what its NIC can carry hides the excess
	// from its own congestion signal and can deadlock a takeover.
	return h
}

// DeviceName implements Device.
func (h *Host) DeviceName() string { return fmt.Sprintf("host%d", h.ID) }

// HandlePacket implements Device.
func (h *Host) HandlePacket(pkt *Packet, in *Port) {
	checkLive(pkt, "Host.HandlePacket")
	h.RxPackets++
	if pkt.Dst != h.ID {
		panic(fmt.Sprintf("netsim: host %d received packet for host %d", h.ID, pkt.Dst))
	}
	if h.Sink != nil {
		h.Sink(pkt)
	}
}

// HandlePause implements Device.
func (h *Host) HandlePause(prio int, on bool, in *Port) {
	in.SetPaused(prio, on)
}

// Send enqueues a packet on the NIC. The caller owns the SentAt timestamp:
// senders stamp it, ACKs echo the original.
func (h *Host) Send(pkt *Packet) {
	h.NIC.Enqueue(TxItem{Pkt: pkt})
}

// LineRate returns the NIC speed.
func (h *Host) LineRate() Rate { return h.NIC.Rate }
