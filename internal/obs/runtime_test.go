package obs_test

import (
	"testing"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

func TestRuntimeSamplerSeries(t *testing.T) {
	eng := sim.NewEngine()
	ss := obs.NewSeriesSet(sim.Microsecond)
	rt := &obs.RuntimeSampler{Every: 2}
	rt.Register(ss, eng)

	names := map[string]bool{}
	for _, s := range ss.All() {
		names[s.Name] = true
	}
	for _, want := range []string{
		"runtime/rss_bytes", "runtime/heap_bytes", "runtime/gc_cycles",
		"runtime/gc_pause_us", "runtime/goroutines",
		"runtime/events_per_sec", "runtime/wall_per_sim",
	} {
		if !names[want] {
			t.Errorf("series %s not registered", want)
		}
	}

	// Drive a few ticks the way the harness does.
	for i := 0; i < 6; i++ {
		rt.Tick(eng)
		ss.Sample()
	}

	get := func(name string) *obs.Series {
		for _, s := range ss.All() {
			if s.Name == name {
				return s
			}
		}
		t.Fatalf("series %s missing", name)
		return nil
	}
	// A live Go process always has a nonzero heap and at least one
	// goroutine; the gauges must reflect that on every tick (held values
	// between refreshes).
	for _, v := range get("runtime/heap_bytes").V {
		if v <= 0 {
			t.Fatalf("heap_bytes sample %v, want > 0", v)
		}
	}
	for _, v := range get("runtime/goroutines").V {
		if v < 1 {
			t.Fatalf("goroutines sample %v, want >= 1", v)
		}
	}
	for _, v := range get("runtime/events_per_sec").V {
		if v < 0 {
			t.Fatalf("events_per_sec sample %v, want >= 0", v)
		}
	}
	if got := get("runtime/rss_bytes").Len(); got != 6 {
		t.Fatalf("rss series has %d samples, want 6", got)
	}
}

func TestRuntimeSamplerRefreshStride(t *testing.T) {
	// With a large stride the held snapshot must not change between
	// refreshes, even if the process state does.
	eng := sim.NewEngine()
	ss := obs.NewSeriesSet(sim.Microsecond)
	rt := &obs.RuntimeSampler{Every: 1000}
	rt.Register(ss, eng)
	rt.Tick(eng)
	ss.Sample()
	// Churn the heap between ticks.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1<<12))
	}
	_ = sink
	rt.Tick(eng)
	ss.Sample()
	for _, s := range ss.All() {
		if s.Name == "runtime/heap_bytes" && s.V[0] != s.V[1] {
			t.Errorf("heap gauge changed between refreshes: %v vs %v", s.V[0], s.V[1])
		}
	}
}
