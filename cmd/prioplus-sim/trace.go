package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"prioplus/internal/obs"
)

// runTrace is the `prioplus-sim trace` subcommand: it renders the flow
// traces recorded by -trace-flows/-trace-match back into causal per-flow
// timelines — sampled packet journeys with hop-by-hop delay accrual, and
// the CC decision audit (yield/probe/resume instants with the sensed
// delays that caused them). With two or more flows selected via -flows it
// also prints an interleaved decision view, the lens for the paper's
// Fig 8 yield/reclaim story. Returns the process exit code.
func runTrace(args []string) int {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	flowsArg := fs.String("flows", "", "comma-separated flow ids to render (default: every traced flow); 2+ ids add an interleaved decision view")
	journeys := fs.Int("journeys", 3, "packet journeys to render per flow (-1 = all, 0 = none)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: prioplus-sim trace [-flows a,b] [-journeys K] file.jsonl|dir...")
		return 2
	}
	want, err := parseFlowList(*flowsArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace: -flows:", err)
		return 2
	}
	paths, err := expandArtifactArgs(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		return 1
	}
	code := 0
	for i, path := range paths {
		if i > 0 {
			fmt.Println()
		}
		if err := traceFile(os.Stdout, path, want, *journeys); err != nil {
			fmt.Fprintf(os.Stderr, "trace %s: %v\n", path, err)
			code = 1
		}
	}
	return code
}

// expandArtifactArgs resolves report/trace path arguments: a directory
// expands to its *.jsonl artifacts (sorted), a plain file passes through.
// Missing paths and directories with no artifacts are errors, so the
// subcommands fail loudly instead of rendering an empty report.
func expandArtifactArgs(args []string) ([]string, error) {
	var out []string
	for _, arg := range args {
		fi, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			out = append(out, arg)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(arg, "*.jsonl"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("%s: no artifacts (*.jsonl) — record some with -series %s first", arg, arg)
		}
		sort.Strings(matches)
		out = append(out, matches...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no artifact files given")
	}
	return out, nil
}

func traceFile(w io.Writer, path string, want []int64, journeys int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	a, err := obs.ReadArtifact(f)
	if err != nil {
		return err
	}
	if len(a.Flows) == 0 {
		return fmt.Errorf("no flow traces in artifact (run %q) — record with -trace-flows or -trace-match", a.Run)
	}
	flows, err := selectFlows(a.Flows, want)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== %s (run %q): %d flow(s) traced\n", path, a.Run, len(a.Flows))
	for i := range flows {
		traceFlow(w, &flows[i], journeys)
	}
	if len(flows) > 1 && len(want) > 1 {
		traceInterleaved(w, flows)
	}
	return nil
}

// selectFlows filters the artifact's flows to the requested ids, keeping
// request order; with no request every traced flow renders in artifact
// (admission) order.
func selectFlows(all []obs.ArtifactFlow, want []int64) ([]obs.ArtifactFlow, error) {
	if len(want) == 0 {
		return all, nil
	}
	out := make([]obs.ArtifactFlow, 0, len(want))
	for _, id := range want {
		found := false
		for i := range all {
			if all[i].ID == id {
				out = append(out, all[i])
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("flow %d is not traced in this artifact (traced: %s)", id, flowIDs(all))
		}
	}
	return out, nil
}

func flowIDs(flows []obs.ArtifactFlow) string {
	var b strings.Builder
	for i := range flows {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%d", flows[i].ID)
	}
	return b.String()
}

// traceFlow renders one flow: a summary (span volume, lifetime, stopped
// intervals), up to `journeys` sampled packet journeys with per-hop delay
// accrual, then the chronological decision timeline.
func traceFlow(w io.Writer, fl *obs.ArtifactFlow, journeys int) {
	spans := append([]obs.ArtifactSpan(nil), fl.Spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].TUS < spans[j].TUS })

	fmt.Fprintf(w, "\nflow %d: %d spans", fl.ID, len(fl.Spans))
	if fl.Dropped > 0 {
		fmt.Fprintf(w, " (%d overwritten: oldest spans lost to the ring bound)", fl.Dropped)
	}
	if len(spans) > 0 {
		fmt.Fprintf(w, ", t=%.1fus..%.1fus", spans[0].TUS, spans[len(spans)-1].TUS)
	}
	fmt.Fprintln(w)
	if stops, stopped := stoppedTime(spans); stops > 0 {
		fmt.Fprintf(w, "  yielded %d time(s), %.1fus total outside the channel\n", stops, stopped)
	}

	renderJourneys(w, spans, journeys)

	first := true
	for _, sp := range spans {
		switch sp.Kind {
		case "hop", "deliver", "acked", "probe-acked":
			continue // journey volume, rendered above
		}
		if first {
			fmt.Fprintf(w, "  decisions:\n")
			first = false
		}
		fmt.Fprintf(w, "    t=%10.1fus  %-12s %s\n", sp.TUS, sp.Kind, describeSpan(sp))
	}
	if first {
		fmt.Fprintf(w, "  decisions: none recorded\n")
	}
}

// stoppedTime pairs yield spans with the following resume to measure the
// flow's total time outside its delay channel (the paper's Fig 8 yield →
// reclaim gap).
func stoppedTime(spans []obs.ArtifactSpan) (stops int, totalUS float64) {
	yieldAt := -1.0
	for _, sp := range spans {
		switch sp.Kind {
		case "yield":
			if yieldAt < 0 {
				yieldAt = sp.TUS
			}
		case "resume":
			if yieldAt >= 0 {
				stops++
				totalUS += sp.TUS - yieldAt
				yieldAt = -1
			}
		}
	}
	if yieldAt >= 0 {
		stops++ // yielded and never resumed before the run ended
	}
	return stops, totalUS
}

// renderJourneys groups hop/deliver/acked spans by sequence number and
// renders the first K complete journeys: each hop's queue wait accrues
// into the one-way delay the receiver observed, making "where did the
// delay come from" readable per packet.
func renderJourneys(w io.Writer, spans []obs.ArtifactSpan, limit int) {
	if limit == 0 {
		return
	}
	bySeq := map[int64][]obs.ArtifactSpan{}
	var order []int64
	for _, sp := range spans {
		switch sp.Kind {
		case "hop", "deliver", "acked":
			if _, ok := bySeq[sp.Seq]; !ok {
				order = append(order, sp.Seq)
			}
			bySeq[sp.Seq] = append(bySeq[sp.Seq], sp)
		}
	}
	shown := 0
	for _, seq := range order {
		js := bySeq[seq]
		complete := false
		for _, sp := range js {
			if sp.Kind == "acked" {
				complete = true
			}
		}
		if !complete {
			continue
		}
		if limit > 0 && shown >= limit {
			break
		}
		shown++
		fmt.Fprintf(w, "  journey seq=%d:\n", seq)
		accrued := 0.0
		for _, sp := range js {
			switch sp.Kind {
			case "hop":
				accrued += sp.DelayUS
				fmt.Fprintf(w, "    t=%10.1fus  hop %-12s qwait=%7.2fus qlen=%7.0fB  accrued=%7.2fus\n",
					sp.TUS, sp.Dev, sp.DelayUS, sp.A, accrued)
			case "deliver":
				fmt.Fprintf(w, "    t=%10.1fus  delivered        one-way=%.2fus (queueing %.2fus of it)\n",
					sp.TUS, sp.DelayUS, accrued)
			case "acked":
				fmt.Fprintf(w, "    t=%10.1fus  acked            rtt=%.2fus cwnd=%.0fB inflight=%.0fB\n",
					sp.TUS, sp.DelayUS, sp.A, sp.B)
			}
		}
	}
	if shown > 0 && limit > 0 && len(order) > shown {
		fmt.Fprintf(w, "  (%d more sampled journeys; -journeys -1 shows all)\n", countComplete(bySeq)-shown)
	}
}

func countComplete(bySeq map[int64][]obs.ArtifactSpan) int {
	n := 0
	for _, js := range bySeq {
		for _, sp := range js {
			if sp.Kind == "acked" {
				n++
				break
			}
		}
	}
	return n
}

// traceInterleaved merges the selected flows' decision timelines into one
// chronological view — with a low- and a high-priority flow selected this
// reproduces the paper's Fig 8 story: the high flow's start and linear
// start, the low flow's sensed-delay climb and yield, then the reclaim
// probe/resume after the high flow finishes.
func traceInterleaved(w io.Writer, flows []obs.ArtifactFlow) {
	type ev struct {
		flow int64
		sp   obs.ArtifactSpan
	}
	var evs []ev
	for i := range flows {
		for _, sp := range flows[i].Spans {
			if k, ok := obs.SpanKindByName(sp.Kind); ok && k.Decision() || sp.Kind == "done" {
				evs = append(evs, ev{flows[i].ID, sp})
			}
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].sp.TUS < evs[j].sp.TUS })
	fmt.Fprintf(w, "\ninterleaved decisions (flows %s):\n", flowIDs(flows))
	for _, e := range evs {
		fmt.Fprintf(w, "  t=%10.1fus  flow %-4d %-12s %s\n", e.sp.TUS, e.flow, e.sp.Kind, describeSpan(e.sp))
	}
}

// describeSpan renders a span's kind-specific payload (the A/B field
// meanings documented on the obs.SpanKind constants).
func describeSpan(sp obs.ArtifactSpan) string {
	switch sp.Kind {
	case "start":
		if sp.A != 0 || sp.B != 0 {
			return fmt.Sprintf("channel [%.1fus, %.1fus]", sp.A, sp.B)
		}
		return ""
	case "yield":
		return fmt.Sprintf("sensed=%.1fus over limit, consec=%.0f, #flow=%.2f -> stop sending", sp.DelayUS, sp.B, sp.A)
	case "probe":
		return fmt.Sprintf("sensed=%.1fus -> wait %.1fus before probing", sp.DelayUS, sp.A)
	case "probe-ans":
		outcome := "re-probe (still above target)"
		switch sp.A {
		case 1:
			outcome = "resume at linear-start window"
		case 2:
			outcome = "resume with one packet (near target)"
		}
		return fmt.Sprintf("probed delay=%.1fus -> %s", sp.DelayUS, outcome)
	case "resume":
		return fmt.Sprintf("probed delay=%.1fus -> back in channel, cwnd=%.2fpkts", sp.DelayUS, sp.A)
	case "card-est":
		return fmt.Sprintf("sensed=%.1fus -> #flow=%.2f, ai-step=%.3f", sp.DelayUS, sp.A, sp.B)
	case "card-decay":
		return fmt.Sprintf("idle countdown halved #flow to %.2f (countdown=%.0f)", sp.A, sp.B)
	case "linear-start":
		return fmt.Sprintf("sensed=%.1fus, cwnd=%.2fpkts (W_LS ramp)", sp.DelayUS, sp.A)
	case "adaptive-inc":
		return fmt.Sprintf("sensed=%.1fus below target twice -> ai-step=%.3f (+%.3f)", sp.DelayUS, sp.A, sp.B)
	case "ai-restore":
		return fmt.Sprintf("sensed=%.1fus, dual-RTT over -> ai-step=%.3f", sp.DelayUS, sp.A)
	case "cc-cut":
		return fmt.Sprintf("delay=%.1fus -> cwnd/rate %.4g (factor %.4g)", sp.DelayUS, sp.A, sp.B)
	case "cc-grow":
		return fmt.Sprintf("delay=%.1fus -> cwnd/rate %.4g (aux %.4g)", sp.DelayUS, sp.A, sp.B)
	case "retx":
		return fmt.Sprintf("seq=%d, %.0f bytes resent", sp.Seq, sp.A)
	case "rto":
		return fmt.Sprintf("timer fired with %.0fB in flight", sp.A)
	case "drop":
		return fmt.Sprintf("seq=%d dropped at %s (%.0fB)", sp.Seq, sp.Dev, sp.A)
	case "mark":
		return fmt.Sprintf("seq=%d ECN-marked at %s (qlen=%.0fB)", sp.Seq, sp.Dev, sp.A)
	case "done":
		return fmt.Sprintf("flow complete: %.0fB, %.0f retransmits", sp.A, sp.B)
	}
	return ""
}
