package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prioplus/internal/sim"
)

func TestWebSearchShape(t *testing.T) {
	d := WebSearch()
	mean := d.Mean()
	if mean < 1.0e6 || mean > 2.5e6 {
		t.Errorf("WebSearch mean = %.3g bytes, want ~1.6 MB", mean)
	}
	rng := rand.New(rand.NewSource(1))
	small := 0
	const n = 100_000
	var maxSize int64
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		if s < 100_000 {
			small++
		}
		if s > maxSize {
			maxSize = s
		}
		if s < 6000 || s > 20_000_000 {
			t.Fatalf("sample %d outside [6 KB, 20 MB]", s)
		}
	}
	// ~58% of flows are under 100 KB in the web-search distribution.
	frac := float64(small) / n
	if frac < 0.45 || frac > 0.70 {
		t.Errorf("fraction under 100 KB = %.2f, want ~0.58", frac)
	}
}

func TestSampleMeanMatchesAnalyticMean(t *testing.T) {
	d := WebSearch()
	rng := rand.New(rand.NewSource(2))
	var sum float64
	const n = 200_000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	got := sum / n
	want := d.Mean()
	if got < want*0.95 || got > want*1.05 {
		t.Errorf("empirical mean %.4g vs analytic %.4g", got, want)
	}
}

func TestPoissonLoad(t *testing.T) {
	d := WebSearch()
	cfg := PoissonConfig{
		Hosts:    16,
		Load:     0.7,
		LinkBps:  100e9,
		Dist:     d,
		Duration: 50 * sim.Millisecond,
		Rng:      rand.New(rand.NewSource(3)),
	}
	evs := Poisson(cfg)
	var bytes float64
	for _, e := range evs {
		if e.Src == e.Dst {
			t.Fatal("flow with src == dst")
		}
		if e.At < 0 || e.At >= cfg.Duration {
			t.Fatalf("arrival %v outside duration", e.At)
		}
		bytes += float64(e.Size)
	}
	offered := bytes * 8 / cfg.Duration.Seconds() // bits/s across the fabric
	want := 0.7 * 100e9 * 16
	if offered < want*0.85 || offered > want*1.15 {
		t.Errorf("offered load %.3g b/s, want ~%.3g", offered, want)
	}
	// Arrivals must be time-sorted.
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("arrivals not sorted")
		}
	}
}

func TestIncast(t *testing.T) {
	evs := Incast(300, 64000, 5, sim.Millisecond)
	if len(evs) != 300 {
		t.Fatalf("got %d flows, want 300", len(evs))
	}
	seen := map[int]bool{}
	for _, e := range evs {
		if e.Dst != 5 || e.Src == 5 {
			t.Fatal("bad incast addressing")
		}
		if seen[e.Src] {
			t.Fatal("duplicate sender")
		}
		seen[e.Src] = true
		if e.At != sim.Millisecond {
			t.Fatal("incast must be synchronized")
		}
	}
}

func TestCoflowGeneratorShape(t *testing.T) {
	cfg := DefaultCoflowConfig(64, 0.7, 100e9, 20*sim.Millisecond, rand.New(rand.NewSource(4)))
	cfs := Coflows(cfg)
	if len(cfs) < 10 {
		t.Fatalf("only %d coflows generated", len(cfs))
	}
	var minTotal, maxTotal int64 = 1 << 62, 0
	fileReqs := 0
	for _, cf := range cfs {
		if len(cf.Flows) == 0 {
			t.Fatal("empty coflow")
		}
		var sum int64
		for _, f := range cf.Flows {
			if f.Src == f.Dst {
				t.Fatal("coflow flow with src == dst")
			}
			if f.Size <= 0 {
				t.Fatal("non-positive flow size")
			}
			sum += f.Size
		}
		if sum != cf.Total {
			t.Fatal("coflow Total mismatch")
		}
		if cf.Total < minTotal {
			minTotal = cf.Total
		}
		if cf.Total > maxTotal {
			maxTotal = cf.Total
		}
		if len(cf.Flows) == cfg.FileFanIn && cf.Flows[0].Size == cfg.FileSize/int64(cfg.FileFanIn) {
			fileReqs++
		}
	}
	if maxTotal < 20*minTotal {
		t.Errorf("coflow totals span %.1fx, want orders of magnitude (heavy tail)", float64(maxTotal)/float64(minTotal))
	}
	if fileReqs == 0 {
		t.Error("no file-request coflows generated")
	}
}

func TestRingAllReduce(t *testing.T) {
	m := ResNet("r0", []int{0, 1, 2, 3})
	steps := m.RingAllReduce()
	if len(steps) != 6 { // 2*(4-1)
		t.Fatalf("got %d steps, want 6", len(steps))
	}
	chunk := m.GradBytes / 4
	for _, st := range steps {
		if len(st.Flows) != 4 {
			t.Fatalf("step has %d flows, want 4", len(st.Flows))
		}
		for i, f := range st.Flows {
			if f.Size != chunk {
				t.Errorf("chunk size %d, want %d", f.Size, chunk)
			}
			if f.Dst != m.Hosts[(i+1)%4] {
				t.Error("ring successor wrong")
			}
		}
	}
	want := 2 * 3 * chunk
	if got := m.CommBytesPerIteration(); got != want {
		t.Errorf("CommBytesPerIteration = %d, want %d", got, want)
	}
}

func TestVGGIsCommBound(t *testing.T) {
	// At 100 Gb/s, VGG's per-iteration communication exceeds its compute
	// time (communication-bound), while ResNet's does not. This asymmetry
	// is what makes priority interleaving profitable (§6.2).
	hosts := []int{0, 1, 2}
	vgg := VGG("v", hosts)
	res := ResNet("r", hosts)
	wire := func(m Model) sim.Time {
		return sim.FromSeconds(float64(m.CommBytesPerIteration()) / (100e9 / 8))
	}
	if wire(vgg) < vgg.Compute {
		t.Errorf("VGG comm %v < compute %v; should be communication-bound", wire(vgg), vgg.Compute)
	}
	if wire(res) > res.Compute {
		t.Errorf("ResNet comm %v > compute %v; should be compute-bound", wire(res), res.Compute)
	}
}

// Property: SizeDist.Sample always returns a size within the distribution
// support.
func TestSizeDistSupportProperty(t *testing.T) {
	d := WebSearch()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			s := d.Sample(rng)
			if s < 6000 || s > 20_000_000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
