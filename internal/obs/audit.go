package obs

// Auditor is the conservation auditor's trip state. The harness installs
// the actual invariant checks (pool-vs-inflight packet accounting, shared-
// buffer byte sums, PFC pause symmetry — it owns the network objects) and
// runs them on the sampler clock; the auditor records the first violation
// and decides whether the run stops.
//
// Like the Watchdog, checks ride the simulated clock, so a violation trips
// at a deterministic simulated instant regardless of wall clock or worker
// count. A violation means the simulator's books are wrong — a conservation
// bug, not a workload property — so the default action is to stop the
// engine and dump the flight recorder for post-mortem.
type Auditor struct {
	// OnViolation, when non-nil, runs once at the first violation (dump
	// the flight recorder, write a note). The run is stopped after it
	// returns unless KeepRunning is set.
	OnViolation func(detail string)
	// KeepRunning makes a violation record-and-continue instead of
	// stopping the run.
	KeepRunning bool

	// Checks counts audit passes executed (one per sampler tick).
	Checks int64

	violation string
}

// Violate records the first violation, firing the trip logic. It returns
// true while the auditor is tripped (the first call and all later ones).
func (a *Auditor) Violate(detail string) bool {
	if a.violation != "" {
		return true
	}
	if detail == "" {
		return false
	}
	a.violation = detail
	if a.OnViolation != nil {
		a.OnViolation(detail)
	}
	return true
}

// Violation returns the first recorded violation, or "" while every audit
// pass has been clean.
func (a *Auditor) Violation() string { return a.violation }
