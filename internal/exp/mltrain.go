package exp

import (
	"math/rand"

	"prioplus/internal/fault"
	"prioplus/internal/harness"
	"prioplus/internal/netsim"
	"prioplus/internal/noise"
	"prioplus/internal/sim"
	"prioplus/internal/topo"
	"prioplus/internal/workload"
)

// MLConfig drives the model-training scenario (§6.2, Fig 12c): eight
// data-parallel jobs (four ResNet, four VGG) on a 2:1-oversubscribed
// spine-leaf fabric, each iterating compute + ring all-reduce. Assigning a
// distinct priority to each model's traffic interleaves communication.
type MLConfig struct {
	Scheme   Scheme
	Duration sim.Time
	Seed     int64
	// NoPriority is the speedup baseline: all jobs share one priority.
	NoPriority bool
	// GradScale divides gradient sizes (and compute time) to shrink the
	// simulation; relative speedups are preserved because both phases
	// scale together.
	GradScale int
	// Faults, when non-nil and non-empty, is installed on the topology
	// before training traffic starts.
	Faults *fault.Plan
}

// DefaultMLConfig returns a 1/8-scale version of the paper's scenario.
func DefaultMLConfig(s Scheme) MLConfig {
	return MLConfig{Scheme: s, Duration: 120 * sim.Millisecond, Seed: 1, GradScale: 8}
}

// MLResult reports iterations completed per model.
type MLResult struct {
	Scheme     string
	Iterations map[string]int
	ResNetIter int
	VGGIter    int
}

// RunML runs the training scenario: 24 hosts on 2 leaves with 6 spines;
// model i trains on hosts {i, i+8, i+16} so every ring crosses the
// oversubscribed leaf uplinks.
func RunML(cfg MLConfig) MLResult {
	const nprios = 8
	if cfg.GradScale <= 0 {
		cfg.GradScale = 1
	}
	eng := sim.NewEngine()
	tc := topo.DefaultConfig()
	tc.LinkDelay = 1 * sim.Microsecond
	tc.Seed = cfg.Seed
	tc.Buffer = netsim.DefaultBufferConfig()
	tc.Buffer.TotalBytes = 32 << 20
	cfg.Scheme.Fabric(&tc, nprios)
	nw := topo.SpineLeaf(eng, 2, 6, 12, tc)
	nm := noise.NewLongTail(rand.New(rand.NewSource(cfg.Seed+7)), 1)
	opts := append(cfg.Scheme.NetOptions(),
		harness.WithNoise(nm.Sample), harness.WithFaults(cfg.Faults))
	net := harness.New(nw, cfg.Seed, opts...)

	models := make([]workload.Model, 0, 8)
	for i := 0; i < 4; i++ {
		models = append(models, workload.ResNet("resnet", []int{i, i + 8, i + 16}))
	}
	for i := 4; i < 8; i++ {
		models = append(models, workload.VGG("vgg", []int{i, i + 8, i + 16}))
	}
	res := MLResult{Scheme: cfg.Scheme.Name, Iterations: map[string]int{}}

	// ResNet jobs get the four higher priorities, VGG the four lower
	// (§6.2). The baseline collapses everything to one priority.
	prioOf := func(i int) int {
		if cfg.NoPriority {
			return 0
		}
		if i < 4 {
			return 4 + i // ResNet: 4..7
		}
		return i - 4 // VGG: 0..3
	}

	for mi, m := range models {
		mi, m := mi, m
		m.GradBytes /= int64(cfg.GradScale)
		m.Compute /= sim.Time(cfg.GradScale)
		prio := prioOf(mi)
		queue := cfg.Scheme.QueueFor(prio, nprios, tc.Queues)
		steps := m.RingAllReduce()
		var startIteration func()
		runStep := func(si int, next func()) {
			remaining := len(steps[si].Flows)
			for _, f := range steps[si].Flows {
				f := f
				base := nw.BaseRTT(f.Src, f.Dst)
				env := FlowEnv{
					Prio: prio, NPrios: nprios, BaseRTT: base,
					BDPPkts: tc.HostRate.BDP(base) / netsim.DefaultMTU,
					Size:    f.Size, Ideal: IdealFCT(f.Size, tc.HostRate, base), Now: eng.Now(),
				}
				net.AddFlow(harness.Flow{
					Src: f.Src, Dst: f.Dst, Size: f.Size, Prio: queue,
					Algo: cfg.Scheme.NewAlgo(env),
					OnComplete: func(sim.Time) {
						remaining--
						if remaining == 0 {
							next()
						}
					},
				})
			}
		}
		var allReduce func(si int)
		allReduce = func(si int) {
			if si == len(steps) {
				res.Iterations[m.Name+string(rune('0'+mi))]++
				if mi < 4 {
					res.ResNetIter++
				} else {
					res.VGGIter++
				}
				startIteration()
				return
			}
			runStep(si, func() { allReduce(si + 1) })
		}
		startIteration = func() {
			eng.After(m.Compute, func() { allReduce(0) })
		}
		startIteration()
	}
	eng.RunUntil(cfg.Duration)
	return res
}

// MLSpeedups compares schemes against the no-priority Swift baseline,
// reporting per-model-type and overall training-speed ratios (Fig 12c).
type MLSpeedups struct {
	Scheme  string
	ResNet  float64
	VGG     float64
	Overall float64
}

// Fig12ML runs the comparison: Physical+Swift and PrioPlus+Swift against
// Swift without priorities.
func Fig12ML(base MLConfig) []MLSpeedups {
	bcfg := base
	bcfg.Scheme = SwiftPhysical(8)
	bcfg.NoPriority = true
	b := RunML(bcfg)
	ratio := func(x, y int) float64 {
		if y == 0 {
			return 0
		}
		return float64(x) / float64(y)
	}
	var out []MLSpeedups
	for _, s := range []Scheme{SwiftPhysical(8), PrioPlusSwift()} {
		cfg := base
		cfg.Scheme = s
		r := RunML(cfg)
		out = append(out, MLSpeedups{
			Scheme:  s.Name,
			ResNet:  ratio(r.ResNetIter, b.ResNetIter),
			VGG:     ratio(r.VGGIter, b.VGGIter),
			Overall: ratio(r.ResNetIter+r.VGGIter, b.ResNetIter+b.VGGIter),
		})
	}
	return out
}
