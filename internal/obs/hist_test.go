package obs_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"prioplus/internal/obs"
)

func TestHistogramBasics(t *testing.T) {
	h := obs.NewHistogram("test/latency", "ns")
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram reports non-zero stats")
	}
	for _, v := range []int64{5, 10, 15, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 1130 {
		t.Errorf("Sum = %d, want 1130", h.Sum())
	}
	if h.Mean() != 226 {
		t.Errorf("Mean = %v, want 226", h.Mean())
	}
	if h.Min() != 5 || h.Max() != 1000 {
		t.Errorf("Min/Max = %d/%d, want 5/1000", h.Min(), h.Max())
	}
	h.Observe(-7) // clamps to 0
	if h.Min() != 0 {
		t.Errorf("Min after negative observe = %d, want 0", h.Min())
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Values below 16 land in exact unit buckets: quantiles are precise.
	h := obs.NewHistogram("t", "ns")
	for v := int64(0); v < 16; v++ {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 7 {
		t.Errorf("Quantile(0.5) = %d, want 7", got)
	}
	if got := h.Quantile(1.0); got != 15 {
		t.Errorf("Quantile(1.0) = %d, want 15", got)
	}
	var seen []int64
	h.Buckets(func(lo, hi, count int64) {
		if lo != hi || count != 1 {
			t.Errorf("small-value bucket [%d,%d]x%d, want unit buckets of 1", lo, hi, count)
		}
		seen = append(seen, lo)
	})
	if len(seen) != 16 {
		t.Errorf("got %d non-empty buckets, want 16", len(seen))
	}
	if !sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] < seen[j] }) {
		t.Error("Buckets not in ascending order")
	}
}

// TestHistogramQuantileError checks the documented accuracy contract: the
// returned quantile is an upper bound within one sub-bucket width (~1/16
// relative) of the true nearest-rank quantile.
func TestHistogramQuantileError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := obs.NewHistogram("t", "ns")
	vals := make([]int64, 10000)
	for i := range vals {
		// Log-uniform over ~6 decades, like latency data.
		v := int64(1) << uint(rng.Intn(40))
		v += rng.Int63n(v)
		vals[i] = v
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		rank := int(q * float64(len(vals)))
		if rank < 1 {
			rank = 1
		}
		exact := vals[rank-1]
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("Quantile(%v) = %d below exact %d: must be an upper bound", q, got, exact)
		}
		// Upper bucket edge is at most (1+1/16)x the true value (plus the
		// bucket's rounding to integer edges).
		if float64(got) > float64(exact)*(1+1.0/16)+1 {
			t.Errorf("Quantile(%v) = %d, exact %d: error beyond one bucket width", q, got, exact)
		}
	}
}

func TestHistogramBucketsRoundTrip(t *testing.T) {
	// Every observed value must be covered by exactly the bucket count
	// reported, and bucket bounds must be consistent (lo <= hi, contiguous
	// ordering, value within [lo, hi]).
	h := obs.NewHistogram("t", "ns")
	vals := []int64{0, 1, 15, 16, 17, 31, 32, 1000, 1 << 20, 1<<40 + 12345}
	for _, v := range vals {
		h.Observe(v)
	}
	var total int64
	prevHi := int64(-1)
	h.Buckets(func(lo, hi, count int64) {
		if lo > hi {
			t.Errorf("bucket [%d,%d] inverted", lo, hi)
		}
		if lo <= prevHi {
			t.Errorf("bucket [%d,%d] overlaps previous hi %d", lo, hi, prevHi)
		}
		covered := 0
		for _, v := range vals {
			if v >= lo && v <= hi {
				covered++
			}
		}
		if int64(covered) != count {
			t.Errorf("bucket [%d,%d] count %d, but %d values fall in it", lo, hi, count, covered)
		}
		total += count
		prevHi = hi
	})
	if total != int64(len(vals)) {
		t.Errorf("bucket counts sum to %d, want %d", total, len(vals))
	}
}

func TestHistogramReset(t *testing.T) {
	h := obs.NewHistogram("keep/name", "us")
	h.Observe(123)
	h.Reset()
	if h.Name != "keep/name" || h.Unit != "us" {
		t.Error("Reset dropped identity")
	}
	if h.Count() != 0 || h.Max() != 0 || h.Quantile(1) != 0 {
		t.Error("Reset did not clear stats")
	}
}

func TestHistSetCanonical(t *testing.T) {
	s := obs.NewHistSet()
	all := s.All()
	want := []string{"transport/ack_rtt", "transport/fabric_delay", "transport/fct"}
	if len(all) != len(want) {
		t.Fatalf("All() returned %d histograms, want %d", len(all), len(want))
	}
	for i, h := range all {
		if h.Name != want[i] || h.Unit != "ns" {
			t.Errorf("hist %d = %q/%q, want %q/ns", i, h.Name, h.Unit, want[i])
		}
	}
	// The All() pointers alias the set's fields, so hot-path holders and
	// artifact writers see the same data.
	s.AckRTT.Observe(42)
	if all[0].Count() != 1 {
		t.Error("All()[0] does not alias HistSet.AckRTT")
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := obs.NewHistogram("t", "ns")
	v := int64(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v += 997
	}); allocs != 0 {
		t.Errorf("Observe allocates %v per op, want 0", allocs)
	}
}

// TestHistogramEmptyQuantile pins the zero-count contract: every quantile
// of an empty histogram is 0 (the "no data" value shared by Mean/Min/Max),
// so renderers may query quantiles without guarding on Count().
func TestHistogramEmptyQuantile(t *testing.T) {
	h := obs.NewHistogram("empty", "ns")
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2, math.NaN()} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Error("empty histogram accessors not all zero")
	}
	// One observation flips every quantile to that value's bucket.
	h.Observe(7)
	for _, q := range []float64{0, 0.5, 1, math.NaN()} {
		if got := h.Quantile(q); got != 7 {
			t.Errorf("single-value Quantile(%v) = %d, want 7", q, got)
		}
	}
}
