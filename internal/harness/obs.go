package harness

import (
	"strconv"

	"prioplus/internal/netsim"
	"prioplus/internal/obs"
	"prioplus/internal/transport"
)

// Observe attaches an observability recorder to the network: the
// recorder's trace sink (if any) is installed on every switch, fabric
// port, and host NIC, and a flow-completion hook keeps the recorder's
// aggregate flow counters (net/flows_completed, net/retransmits, net/rtos,
// net/probes_sent, net/fct_sum_us) up to date as flows finish. Observe
// owns each stack's OnFlowDone hook. Call CollectMetrics after the run to
// fill in the switch/port counters; docs/OBSERVABILITY.md documents every
// metric name.
//
// Call Observe before traffic starts. With a nil rec.Trace the per-packet
// hot path is untouched; the per-flow hook is a handful of counter adds.
func (n *Net) Observe(rec *obs.Recorder) {
	if rec.Trace != nil {
		for _, sw := range n.Topo.Switches {
			sw.Trace = rec.Trace
			for _, p := range sw.Ports {
				p.Trace = rec.Trace
			}
		}
		for _, h := range n.Topo.Hosts {
			h.NIC.Trace = rec.Trace
		}
	}
	flows := rec.Metrics.Counter("net/flows_completed")
	retx := rec.Metrics.Counter("net/retransmits")
	rtos := rec.Metrics.Counter("net/rtos")
	probes := rec.Metrics.Counter("net/probes_sent")
	fctSum := rec.Metrics.Counter("net/fct_sum_us")
	trace := rec.Trace
	for _, st := range n.Stacks {
		st.OnFlowDone = func(fs transport.FlowStats) {
			flows.Add(1)
			retx.Add(float64(fs.Retransmits))
			rtos.Add(float64(fs.RTOs))
			probes.Add(float64(fs.ProbesSent))
			fctSum.Add(fs.FCT.Micros())
			if trace != nil {
				trace.Trace(obs.Event{
					T: n.Eng.Now(), Kind: obs.FlowDone,
					Flow: fs.ID, Bytes: int(fs.Size),
					Seq: int64(fs.FCT), QLen: int(fs.Retransmits),
				})
			}
		}
	}
}

// CollectMetrics walks the network and records every device counter and
// high-water mark into the recorder's registry. Call it once, after the
// run; calling it again would double-count the counters. The metric
// namespace — net/ aggregates, switch/<name>/, port/<dev>:<idx>/, and
// host/<id>/ — is documented in docs/OBSERVABILITY.md.
func (n *Net) CollectMetrics(rec *obs.Recorder) {
	m := rec.Metrics
	// The flow aggregates exist even if Observe was never called (they
	// read zero then), so the documented metric set is always complete.
	m.Counter("net/flows_completed")
	m.Counter("net/retransmits")
	m.Counter("net/rtos")
	m.Counter("net/probes_sent")
	m.Counter("net/fct_sum_us")

	txPkts := m.Counter("net/tx_packets")
	txBytes := m.Counter("net/tx_bytes")
	rxPkts := m.Counter("net/rx_packets")
	drops := m.Counter("net/drops")
	dropBytes := m.Counter("net/drop_bytes")
	marks := m.Counter("net/ecn_marks")
	pauses := m.Counter("net/pfc_pauses")
	pauseUS := m.Counter("net/pfc_pause_us")
	bufHWM := m.Gauge("net/buffer_hwm_bytes")
	queueHWM := m.Gauge("net/queue_hwm_bytes")

	collectPort := func(dev string, p *netsim.Port) {
		prefix := "port/" + dev + ":" + itoa(p.Index) + "/"
		m.Counter(prefix + "tx_packets").Add(float64(p.TxPackets))
		m.Counter(prefix + "tx_bytes").Add(float64(p.TxBytes))
		m.Counter(prefix + "paused_us").Add(p.PausedFor.Micros())
		m.Gauge(prefix + "queue_hwm_bytes").Observe(float64(p.QueueHWM))
		txPkts.Add(float64(p.TxPackets))
		txBytes.Add(float64(p.TxBytes))
		pauseUS.Add(p.PausedFor.Micros())
		queueHWM.Observe(float64(p.QueueHWM))
	}
	for _, sw := range n.Topo.Switches {
		prefix := "switch/" + sw.Name + "/"
		m.Counter(prefix + "rx_packets").Add(float64(sw.RxPackets))
		m.Counter(prefix + "drops").Add(float64(sw.Drops()))
		m.Counter(prefix + "drop_bytes").Add(float64(sw.DropBytes()))
		m.Counter(prefix + "ecn_marks").Add(float64(sw.ECNMarks))
		m.Counter(prefix + "pfc_pauses").Add(float64(sw.PausesSent()))
		m.Gauge(prefix + "buffer_hwm_bytes").Observe(float64(sw.BufferHWM()))
		drops.Add(float64(sw.Drops()))
		dropBytes.Add(float64(sw.DropBytes()))
		marks.Add(float64(sw.ECNMarks))
		pauses.Add(float64(sw.PausesSent()))
		bufHWM.Observe(float64(sw.BufferHWM()))
		for _, p := range sw.Ports {
			collectPort(sw.Name, p)
		}
	}
	for _, h := range n.Topo.Hosts {
		m.Counter("host/" + itoa(h.ID) + "/rx_packets").Add(float64(h.RxPackets))
		rxPkts.Add(float64(h.RxPackets))
		collectPort(h.DeviceName(), h.NIC)
	}
}

func itoa(i int) string { return strconv.Itoa(i) }
