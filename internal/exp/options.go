package exp

import (
	"prioplus/internal/fault"
	"prioplus/internal/obs"
)

// Options bundles the cross-cutting per-run knobs every figure driver
// accepts, replacing the old FigX/FigXObs split: one entry point per
// figure, with instrumentation and fault plans as optional inputs. The
// zero value reproduces the paper's plain run exactly.
type Options struct {
	// Seed overrides the driver's baked-in seed when non-zero. The paper
	// figures keep their published seeds by default, so batch tooling that
	// doesn't set Seed gets byte-identical reference output.
	Seed int64
	// Recorder, when non-nil, is attached to the run via harness.Observe
	// before traffic starts, and the driver fills in CollectMetrics after
	// the run. Instrumentation never changes figure output.
	Recorder *obs.Recorder
	// Faults, when non-nil and non-empty, is installed on the topology
	// before traffic starts (harness.WithFaults).
	Faults *fault.Plan
}

// seedOr returns the override seed when set, the driver default otherwise.
func (o Options) seedOr(def int64) int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return def
}
