package obs

import (
	"sync/atomic"

	"prioplus/internal/sim"
)

// DefaultCostEvery is the default cost-sampling stride: one in this many
// dispatched events is wall-clock stamped. At the simulator's ~60 ns/event
// dispatch cost, a stride of 64 amortizes the two monotonic clock reads
// (~40 ns) to well under 1 ns/event.
const DefaultCostEvery = 64

// CostBucket is one event kind's accumulated cost sample.
type CostBucket struct {
	// Samples is how many dispatches of this kind were stamped.
	Samples int64
	// Nanos is the summed wall-clock nanoseconds of the stamped dispatches.
	Nanos int64
}

// CostProfiler attributes simulated-event execution cost by event kind via
// the engine's sampled dispatch stamps (sim.Engine.SetCostSampler). One
// profiler belongs to one run (no locks, engine-per-run model); Observe
// additionally feeds a process-wide atomic table so a live /metrics
// endpoint can report cost shares while runs are in flight.
//
// Shares are unbiased: the engine uses a single 1-in-N countdown across
// every dispatch path, so a kind's share of stamped nanoseconds estimates
// its share of total dispatch time. Stamps never feed back into simulation
// state — enabling the profiler cannot perturb figure output.
type CostProfiler struct {
	// Every is the sampling stride handed to the engine; 0 means
	// DefaultCostEvery.
	Every int64

	buckets [sim.NumEventKinds]CostBucket
}

// Stride returns the effective sampling stride.
func (p *CostProfiler) Stride() int64 {
	if p.Every > 0 {
		return p.Every
	}
	return DefaultCostEvery
}

// Observe records one stamped dispatch. It is the engine cost-sampler
// callback: kind is the event's tag, nanos its measured wall time.
func (p *CostProfiler) Observe(kind uint8, nanos int64) {
	if kind >= sim.NumEventKinds {
		kind = sim.EKOther
	}
	b := &p.buckets[kind]
	b.Samples++
	b.Nanos += nanos
	globalCost[kind].samples.Add(1)
	globalCost[kind].nanos.Add(nanos)
}

// Bucket returns the accumulated sample for one kind.
func (p *CostProfiler) Bucket(kind uint8) CostBucket {
	if kind >= sim.NumEventKinds {
		return CostBucket{}
	}
	return p.buckets[kind]
}

// TotalNanos returns the summed stamped nanoseconds across all kinds.
func (p *CostProfiler) TotalNanos() int64 {
	var t int64
	for i := range p.buckets {
		t += p.buckets[i].Nanos
	}
	return t
}

// Record writes the profile into a metrics registry as cost/<kind>/samples
// and cost/<kind>/ns counters (kinds with no samples are omitted), making
// cost attribution part of the run's artifact.
func (p *CostProfiler) Record(r *Registry) {
	for k := uint8(0); k < sim.NumEventKinds; k++ {
		b := p.buckets[k]
		if b.Samples == 0 {
			continue
		}
		name := sim.EventKindName(k)
		r.Counter("cost/" + name + "/samples").Add(float64(b.Samples))
		r.Counter("cost/" + name + "/ns").Add(float64(b.Nanos))
	}
}

// globalCost is the process-wide cost table fed by every run's Observe, so
// live endpoints can report attribution across a whole batch without
// touching per-run state.
var globalCost [sim.NumEventKinds]struct {
	samples atomic.Int64
	nanos   atomic.Int64
}

// CostTotals returns the process-wide accumulated cost table, indexed by
// event kind (sim.EventKindName names each slot).
func CostTotals() [sim.NumEventKinds]CostBucket {
	var out [sim.NumEventKinds]CostBucket
	for i := range out {
		out[i] = CostBucket{
			Samples: globalCost[i].samples.Load(),
			Nanos:   globalCost[i].nanos.Load(),
		}
	}
	return out
}
