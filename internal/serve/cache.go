package serve

import (
	"encoding/json"
	"fmt"
	"os"
)

// cacheEntry is one memoized run: everything a hit needs to reproduce the
// original response byte-for-byte.
type cacheEntry struct {
	output    string
	fp        string
	artifacts []Artifact
	wallMS    float64
	events    uint64
}

// resultCache memoizes finished runs keyed by the full determinism tuple
// (see cacheKey). Eviction is FIFO — runs are equally cheap to recompute,
// so recency bookkeeping buys nothing. Guarded by Scheduler.mu.
type resultCache struct {
	max     int
	entries map[string]cacheEntry
	order   []string // insertion order, for eviction
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, entries: map[string]cacheEntry{}}
}

func (c *resultCache) get(key string) (cacheEntry, bool) {
	e, ok := c.entries[key]
	return e, ok
}

func (c *resultCache) put(key string, e cacheEntry) {
	if _, ok := c.entries[key]; !ok {
		for len(c.order) >= c.max {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, evict)
		}
		c.order = append(c.order, key)
	}
	c.entries[key] = e
}

func (c *resultCache) len() int {
	return len(c.entries)
}

// Manifest is the committed fingerprint manifest (testdata/fingerprints.json):
// the expected %016x output fingerprint per "<experiment>/seed=<seed>" run.
// The scheduler cross-checks finished quick runs against it and folds its
// identity into cache keys, so results cached against one manifest never
// satisfy a server running another.
type Manifest struct {
	// Note is the manifest's free-text provenance line.
	Note string `json:"note"`
	// Runs maps "<experiment>/seed=<seed>" to the expected fingerprint.
	Runs map[string]string `json:"runs"`

	hash string // fnv64a over the raw file bytes
}

// LoadManifest reads and parses a fingerprint manifest file.
func LoadManifest(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("bad manifest %s: %w", path, err)
	}
	m.hash = OutputFingerprint(string(raw))
	return &m, nil
}

// Hash returns the manifest's identity: the fingerprint of its raw file
// bytes. Zero-value manifests (built in tests) hash their encoded runs.
func (m *Manifest) Hash() string {
	if m.hash == "" {
		enc, _ := json.Marshal(m.Runs)
		m.hash = OutputFingerprint(string(enc))
	}
	return m.hash
}

// OutputFingerprint is the repo-wide run fingerprint: FNV-64a over the
// output bytes, rendered %016x. The batch runner's fp= column, the
// manifest gate, and the job server all use this one function, so their
// values are directly comparable.
func OutputFingerprint(s string) string {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}
