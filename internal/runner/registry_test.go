package runner

import (
	"sync"
	"testing"
)

func TestRegistryLifecycle(t *testing.T) {
	var g Registry
	st := g.Add("fig11/seed=3", "fig11", 3)
	if got := st.Snapshot(); got.Status != "pending" || got.Name != "fig11/seed=3" {
		t.Fatalf("fresh snapshot = %+v", got)
	}

	st.Start()
	st.SetPhase("fig11")
	st.Live.Events.Add(1000)
	st.Live.SimPS.Store(2_000_000) // 2 µs
	snap := st.Snapshot()
	if snap.Status != "running" || snap.Phase != "fig11" {
		t.Errorf("running snapshot = %+v", snap)
	}
	if snap.Events != 1000 || snap.SimUS != 2 {
		t.Errorf("progress snapshot = %+v", snap)
	}
	if snap.EventsPerSec <= 0 {
		t.Errorf("EventsPerSec = %v, want > 0 for a started run", snap.EventsPerSec)
	}

	st.Finish("")
	if got := st.Snapshot().Status; got != "done" {
		t.Errorf("status after Finish = %q", got)
	}

	st2 := g.Add("fig11/seed=4", "fig11", 4)
	st2.Start()
	st2.Finish("boom")
	snap2 := st2.Snapshot()
	if snap2.Status != "failed" || snap2.Err != "boom" {
		t.Errorf("failed snapshot = %+v", snap2)
	}

	all := g.Snapshot()
	if len(all) != 2 || all[0].Index != 0 || all[1].Index != 1 {
		t.Errorf("registry snapshot = %+v", all)
	}
}

func TestRegistryWatchdogProximity(t *testing.T) {
	var g Registry
	st := g.Add("x", "x", 1)
	st.Live.InflightBytes.Store(250)
	st.Live.WatchdogLimit.Store(1000)
	snap := st.Snapshot()
	if snap.WatchdogPct != 25 {
		t.Errorf("WatchdogPct = %v, want 25", snap.WatchdogPct)
	}
}

// TestRegistryConcurrent exercises the reader/writer split under the race
// detector: workers mutate their runs while a reader snapshots the batch.
func TestRegistryConcurrent(t *testing.T) {
	var g Registry
	const n = 8
	states := make([]*RunState, n)
	for i := range states {
		states[i] = g.Add("run", "run", int64(i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				g.Snapshot()
			}
		}
	}()
	for _, st := range states {
		wg.Add(1)
		go func(st *RunState) {
			defer wg.Done()
			st.Start()
			for i := 0; i < 1000; i++ {
				st.Live.Events.Add(1)
				st.Live.SimPS.Store(int64(i))
				st.SetPhase("tick")
			}
			st.Finish("")
		}(st)
	}
	for _, st := range states {
		_ = st // workers joined below
	}
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	// Let workers finish, then stop the reader.
	for _, st := range states {
		for st.Status() != StatusDone {
			g.Snapshot()
		}
	}
	close(stop)
	<-wgDone
}
