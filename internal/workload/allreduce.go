package workload

import "prioplus/internal/sim"

// Model describes one training job in the ML-cluster scenario (§6.2): a
// data-parallel model synchronizing gradients with a ring all-reduce each
// iteration, separated by a compute phase.
type Model struct {
	Name      string
	Hosts     []int    // workers, in ring order
	GradBytes int64    // gradient size per worker
	Compute   sim.Time // forward+backward time per iteration
}

// ResNet returns a ResNet-50-like job: ~100 MB of gradients and a
// relatively long compute phase, making it compute-bound.
func ResNet(name string, hosts []int) Model {
	return Model{Name: name, Hosts: hosts, GradBytes: 100 << 20, Compute: 30 * sim.Millisecond}
}

// VGG returns a VGG-16-like job: ~550 MB of gradients and a short compute
// phase, making it communication-bound.
func VGG(name string, hosts []int) Model {
	return Model{Name: name, Hosts: hosts, GradBytes: 550 << 20, Compute: 15 * sim.Millisecond}
}

// RingStep describes the flows of one all-reduce step: every worker sends
// one chunk to its ring successor simultaneously; the step completes when
// all its flows complete.
type RingStep struct {
	Flows []CoflowFlow
}

// RingAllReduce expands one all-reduce into its 2*(n-1) steps: n-1
// reduce-scatter steps plus n-1 all-gather steps, each moving
// GradBytes/n per worker to its successor.
func (m Model) RingAllReduce() []RingStep {
	n := len(m.Hosts)
	if n < 2 {
		return nil
	}
	chunk := m.GradBytes / int64(n)
	if chunk == 0 {
		chunk = 1
	}
	steps := make([]RingStep, 0, 2*(n-1))
	for s := 0; s < 2*(n-1); s++ {
		st := RingStep{}
		for i, src := range m.Hosts {
			dst := m.Hosts[(i+1)%n]
			st.Flows = append(st.Flows, CoflowFlow{Src: src, Dst: dst, Size: chunk})
		}
		steps = append(steps, st)
	}
	return steps
}

// CommBytesPerIteration returns the total bytes each worker transmits per
// iteration: 2*(n-1)/n * GradBytes.
func (m Model) CommBytesPerIteration() int64 {
	n := int64(len(m.Hosts))
	if n < 2 {
		return 0
	}
	return 2 * (n - 1) * (m.GradBytes / n)
}
