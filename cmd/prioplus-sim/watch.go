package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"flag"

	"prioplus/internal/obs/stream"
	"prioplus/internal/serve"
)

// runWatch is the `prioplus-sim watch` subcommand: a live terminal
// dashboard over the /metrics and /runs endpoints of a simulator started
// with -listen. It polls, computes an events/sec rate from successive
// snapshots, and redraws; -once renders a single frame (no screen
// clearing) for scripts and tests. Against a job server (`serve`) it also
// polls /jobs and adds a jobs/cache line; against an older server without
// that endpoint the line is simply omitted.
func runWatch(args []string) int {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	interval := fs.Duration("interval", time.Second, "poll and redraw period")
	once := fs.Bool("once", false, "render one frame and exit (no screen clearing)")
	fs.Parse(args)
	addr := fs.Arg(0)
	if addr == "" {
		fmt.Fprintln(os.Stderr, "usage: prioplus-sim watch [-interval d] [-once] ADDR")
		return 2
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}

	var st watchState
	failures := 0
	for {
		var m stream.MetricsSnapshot
		var runs stream.RunsSnapshot
		err := fetchJSON(addr+"/metrics", &m)
		if err == nil {
			err = fetchJSON(addr+"/runs", &runs)
		}
		// /jobs only exists on a job server; a failure here (older server,
		// batch -listen) degrades to a frame without the jobs line.
		var jobs *serve.JobsSnapshot
		if err == nil {
			var js serve.JobsSnapshot
			if jerr := fetchJSON(addr+"/jobs", &js); jerr == nil {
				jobs = &js
			}
		}
		switch {
		case err != nil:
			failures++
			// A few failures are tolerated mid-run (server restart, blip);
			// persistent ones mean the run is gone.
			if *once || failures >= 5 {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		default:
			failures = 0
			frame := renderWatch(&st, addr, m, runs, jobs)
			if *once {
				fmt.Print(frame)
				return 0
			}
			// Home + clear-to-end redraw keeps the frame flicker-free.
			fmt.Print("\033[H\033[2J" + frame)
		}
		time.Sleep(*interval)
	}
}

// fetchJSON GETs url and decodes the JSON body into out.
func fetchJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// watchState carries poll-to-poll context: the previous metrics snapshot
// for rate math and the events/sec history behind the sparkline.
type watchState struct {
	prevSet    bool
	prevEvents uint64
	prevWallMS int64
	rates      []float64
}

// watchSparkMax bounds the sparkline history (one rune per poll).
const watchSparkMax = 32

// renderWatch builds one dashboard frame. It is deterministic given the
// state and the snapshots, so tests can pin frames. jobs is nil when the
// server has no /jobs endpoint (pre-serve builds, batch -listen).
func renderWatch(st *watchState, addr string, m stream.MetricsSnapshot, runs stream.RunsSnapshot, jobs *serve.JobsSnapshot) string {
	// Events/sec over the poll window, from the per-run live counters
	// (process totals only flush between run phases, so they lag mid-run).
	if st.prevSet && m.WallUnixMS > st.prevWallMS && runs.Batch.Events >= st.prevEvents {
		dt := float64(m.WallUnixMS-st.prevWallMS) / 1e3
		st.rates = append(st.rates, float64(runs.Batch.Events-st.prevEvents)/dt)
		if len(st.rates) > watchSparkMax {
			st.rates = st.rates[len(st.rates)-watchSparkMax:]
		}
	}
	st.prevSet, st.prevEvents, st.prevWallMS = true, runs.Batch.Events, m.WallUnixMS

	var b strings.Builder
	fmt.Fprintf(&b, "prioplus-sim watch — %s — %s\n", addr,
		time.UnixMilli(m.WallUnixMS).UTC().Format("15:04:05Z"))
	fmt.Fprintf(&b, "batch   %d runs: %d done, %d running, %d pending, %d failed · %s events\n",
		runs.Batch.Total, runs.Batch.Done, runs.Batch.Running, runs.Batch.Pending,
		runs.Batch.Failed, fmtCount(float64(runs.Batch.Events)))
	fmt.Fprintf(&b, "runtime rss %s · heap %s · gc %.0f (%.1fms paused) · %.0f goroutines\n",
		fmtBytes(m.Runtime.RSSBytes), fmtBytes(m.Runtime.HeapBytes),
		m.Runtime.GCCycles, m.Runtime.GCPauseUS/1e3, m.Runtime.Goroutines)
	fmt.Fprintf(&b, "stream  %d subscribers · %d lines published · %d dropped\n",
		m.Stream.Subscribers, m.Stream.Published, m.Stream.Dropped)
	if jobs != nil {
		c := jobs.Counts
		fmt.Fprintf(&b, "jobs    %d total: %d queued, %d running, %d done, %d failed, %d canceled · queue %d/%d · cache %d entries, %d hits / %d misses\n",
			len(jobs.Jobs), c.Queued, c.Running, c.Done, c.Failed, c.Canceled,
			jobs.Queue.Depth, jobs.Queue.Capacity,
			jobs.Cache.Entries, jobs.Cache.Hits, jobs.Cache.Misses)
	}

	rate := 0.0
	if len(st.rates) > 0 {
		rate = st.rates[len(st.rates)-1]
	}
	fmt.Fprintf(&b, "rate    %s ev/s %s\n", fmtCount(rate), sparkline(st.rates, watchSparkMax))

	if len(m.Cost) > 0 {
		cost := append([]stream.CostMetric(nil), m.Cost...)
		sort.Slice(cost, func(i, j int) bool { return cost[i].Nanos > cost[j].Nanos })
		if len(cost) > 5 {
			cost = cost[:5]
		}
		b.WriteString("cost    ")
		for i, c := range cost {
			if i > 0 {
				b.WriteString(" · ")
			}
			fmt.Fprintf(&b, "%s %s %.0f%%", c.Kind, costBar(c.Share), c.Share*100)
		}
		b.WriteByte('\n')
	}

	if len(runs.Runs) > 0 {
		fmt.Fprintf(&b, "\n  %-24s %-8s %-26s %10s %9s %12s %5s\n",
			"RUN", "STATUS", "PHASE", "EVENTS", "EV/S", "SIM(us)", "WD%")
		for _, r := range runs.Runs {
			wd := "-"
			if r.WatchdogLimit > 0 {
				wd = fmt.Sprintf("%.0f%%", r.WatchdogPct)
			}
			fmt.Fprintf(&b, "  %-24s %-8s %-26s %10s %9s %12.0f %5s\n",
				r.Name, r.Status, r.Phase, fmtCount(float64(r.Events)),
				fmtCount(r.EventsPerSec), r.SimUS, wd)
		}
	}
	return b.String()
}

// costBar renders a share in [0,1] as a fixed-width bar.
func costBar(share float64) string {
	const width = 10
	n := int(share*width + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("█", n) + strings.Repeat("░", width-n)
}

// fmtCount renders an event count / rate with a k/M/G suffix.
func fmtCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// fmtBytes renders a byte count with a binary suffix.
func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}
