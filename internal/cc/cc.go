// Package cc implements the congestion-control algorithms evaluated in the
// PrioPlus paper: Swift (with and without target scaling), DCTCP and
// D2TCP, LEDBAT, HPCC, and an uncontrolled line-rate sender. The PrioPlus
// enhancement itself lives in internal/core and wraps any algorithm here
// that implements DelayBased.
package cc

import (
	"math/rand"

	"prioplus/internal/netsim"
	"prioplus/internal/sim"
)

// Feedback carries everything an arriving ACK (or probe ACK) tells the
// congestion controller.
type Feedback struct {
	Now        sim.Time
	Delay      sim.Time // measured RTT, including measurement noise
	CE         bool     // ECN congestion-experienced echo
	AckedBytes int      // bytes newly acknowledged by this ACK
	Seq        int64    // data byte offset this ACK acknowledges
	CumAck     int64    // receiver's cumulative in-order byte count
	INT        []netsim.INTRecord
}

// Driver is the view a congestion controller has of its flow's transport.
// It provides the paper's Algorithm 1 primitives: StopSending,
// ResumeSending, SendProbeAfter, and RTO reset, plus static path facts.
type Driver interface {
	Now() sim.Time
	BaseRTT() sim.Time
	LineRate() netsim.Rate
	MTU() int
	SndNxt() int64
	RemainingBytes() int64
	StopSending()
	ResumeSending()
	SendProbeAfter(d sim.Time)
	ResetRTO()
	Rand() *rand.Rand
}

// Algorithm is a per-flow congestion controller. The transport calls
// Start once, then OnAck/OnProbeAck/OnRTO as events arrive, and reads
// CwndBytes before each send decision.
type Algorithm interface {
	// Start is called when the flow is ready to transmit. The algorithm
	// may immediately suspend transmission and probe first.
	Start(drv Driver)
	OnAck(fb Feedback)
	OnProbeAck(fb Feedback)
	OnRTO()
	// CwndBytes is the current congestion window in bytes; it may be a
	// fraction of one packet, in which case the transport paces.
	CwndBytes() float64
	// WantsECT reports whether data packets should be ECN-capable.
	WantsECT() bool
	Name() string
}

// DelayBased is the subset of delay-based algorithms PrioPlus can wrap: it
// exposes the window and additive-increase step for external adjustment and
// accepts a fixed target delay (disabling any target-scaling mechanism),
// exactly the integration points §4.1 of the paper requires.
type DelayBased interface {
	Algorithm
	CwndPackets() float64
	SetCwndPackets(w float64)
	// AIStep returns the current additive-increase step in packets/RTT.
	AIStep() float64
	SetAIStep(w float64)
	// BaseAIStep returns the algorithm's configured (unmodified) AI step.
	BaseAIStep() float64
	// SetTarget pins the target delay (absolute, including base RTT) and
	// disables target scaling.
	SetTarget(t sim.Time)
}
