package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"prioplus/internal/obs"
	"prioplus/internal/stats"
)

// runReport is the `prioplus-sim report` subcommand: it renders artifact
// JSONL files written by -series back into a human-readable text report
// (metrics table, histogram quantiles, per-series summary + sparkline).
// Returns the process exit code.
func runReport(args []string) int {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	width := fs.Int("width", 60, "sparkline width in columns")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: prioplus-sim report [-width N] file.jsonl|dir...")
		return 2
	}
	paths, err := expandArtifactArgs(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 1
	}
	code := 0
	for i, path := range paths {
		if i > 0 {
			fmt.Println()
		}
		if err := reportFile(os.Stdout, path, *width); err != nil {
			fmt.Fprintf(os.Stderr, "report %s: %v\n", path, err)
			code = 1
		}
	}
	return code
}

func reportFile(w io.Writer, path string, width int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	a, err := obs.ReadArtifact(f)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "== %s (run %q, schema v%d)\n", path, a.Run, a.Version)
	if a.Version > obs.ArtifactVersion {
		fmt.Fprintf(w, "NOTE: artifact schema v%d is newer than this binary understands (v%d);\n"+
			"      unknown line types were skipped — upgrade to render everything\n",
			a.Version, obs.ArtifactVersion)
	}
	if a.Unknown > 0 {
		fmt.Fprintf(w, "skipped %d unknown line(s) from a newer writer\n", a.Unknown)
	}
	if a.Watchdog != "" {
		fmt.Fprintf(w, "WATCHDOG TRIPPED: %s — the run was stopped early\n", a.Watchdog)
	}
	if a.Fingerprint != "" {
		fmt.Fprintf(w, "fingerprint %s over %d events, %d checkpoint(s) — compare with the diff subcommand\n",
			a.Fingerprint, a.FPEvents, len(a.Ckpts))
	}

	if len(a.Hists) > 0 {
		fmt.Fprintln(w, "\nhistograms:")
		tb := stats.NewTable("name", "unit", "n", "mean", "p50", "p90", "p99", "p99.9", "max")
		for _, h := range a.Hists {
			tb.AddRow(h.Name, h.Unit, h.Count, h.Mean, h.P50, h.P90, h.P99, h.P999, h.Max)
		}
		tb.Render(w)
	}

	if n := samples(a); n > 0 {
		fmt.Fprintf(w, "\nseries: %d samples every %gus, %gus .. %gus\n",
			n, a.IntervalUS, a.TimeAtUS(0), a.TimeAtUS(n-1))
		for _, s := range a.Series {
			lo, mean, hi := summarize(s.V)
			fmt.Fprintf(w, "  %-34s min %14.6g  mean %14.6g  max %14.6g  %s\n",
				s.Name+" ("+s.Unit+")", lo, mean, hi, sparkline(s.V, width))
		}
	} else if len(a.Series) > 0 {
		fmt.Fprintf(w, "\nseries: %d declared, 0 samples (run shorter than the sampling interval)\n", len(a.Series))
	}

	if len(a.Metrics) > 0 {
		fmt.Fprintln(w, "\nmetrics:")
		for _, m := range a.Metrics {
			fmt.Fprintf(w, "  %-44s %g\n", m.Name, m.V)
		}
	}
	return nil
}

// samples returns the artifact's sample count (every series has the same
// length by construction).
func samples(a *obs.Artifact) int {
	if len(a.Series) == 0 {
		return 0
	}
	return len(a.Series[0].V)
}

func summarize(v []float64) (lo, mean, hi float64) {
	if len(v) == 0 {
		return 0, 0, 0
	}
	lo, hi = v[0], v[0]
	sum := 0.0
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
		sum += x
	}
	return lo, sum / float64(len(v)), hi
}

// sparkline renders v as a fixed-width unicode bar strip; each column is
// the max over its chunk of samples (max, not mean, so short spikes —
// exactly what one looks for in a queue-depth timeline — stay visible).
func sparkline(v []float64, width int) string {
	if len(v) == 0 || width <= 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	if width > len(v) {
		width = len(v)
	}
	lo, _, hi := summarize(v)
	var b strings.Builder
	for i := 0; i < width; i++ {
		from := i * len(v) / width
		to := (i + 1) * len(v) / width
		if to <= from {
			to = from + 1
		}
		m := v[from]
		for _, x := range v[from:to] {
			if x > m {
				m = x
			}
		}
		idx := 0
		if hi > lo {
			idx = int((m - lo) / (hi - lo) * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
