// Package stats collects and summarizes flow-level metrics: FCT, slowdown
// against the ideal completion time, per-size-class breakdowns matching the
// paper's figures (small < 300 KB, middle 300 KB-6 MB, large >= 6 MB), and
// coflow completion times.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"

	"prioplus/internal/sim"
)

// SizeClass buckets flows the way Fig 11 and Fig 14 do.
type SizeClass int

// Size classes from the paper's flow-scheduling breakdown.
const (
	Small  SizeClass = iota // [0, 300 KB)
	Middle                  // [300 KB, 6 MB)
	Large                   // [6 MB, ...)
)

// String returns the paper's name for the size class (small/middle/large).
func (c SizeClass) String() string {
	switch c {
	case Small:
		return "small"
	case Middle:
		return "middle"
	case Large:
		return "large"
	}
	return "?"
}

// ClassOf returns the paper's size class for a flow size.
func ClassOf(size int64) SizeClass {
	switch {
	case size < 300_000:
		return Small
	case size < 6_000_000:
		return Middle
	default:
		return Large
	}
}

// FlowRecord is one completed flow.
type FlowRecord struct {
	Size  int64
	FCT   sim.Time
	Ideal sim.Time // size/bandwidth + base RTT
	Prio  int
}

// Slowdown is FCT normalized by the ideal FCT.
func (r FlowRecord) Slowdown() float64 {
	if r.Ideal <= 0 {
		return 1
	}
	return float64(r.FCT) / float64(r.Ideal)
}

// Collector accumulates completed flows.
type Collector struct {
	Flows []FlowRecord

	// Percentile caches: Flows sorted by FCT / slowdown, built lazily on
	// the first percentile query and reused until Flows grows, so a report
	// asking for p50/p90/p99/p999 sorts once instead of once per quantile.
	// Values are exact — the cache changes cost, not results.
	sortedFCT  []sim.Time
	sortedSlow []float64
}

// Add records a completed flow.
func (c *Collector) Add(r FlowRecord) { c.Flows = append(c.Flows, r) }

// Filter returns the subset of flows matching the predicate.
func (c *Collector) Filter(keep func(FlowRecord) bool) *Collector {
	out := &Collector{}
	for _, f := range c.Flows {
		if keep(f) {
			out.Flows = append(out.Flows, f)
		}
	}
	return out
}

// ByClass returns flows in the given size class.
func (c *Collector) ByClass(cl SizeClass) *Collector {
	return c.Filter(func(f FlowRecord) bool { return ClassOf(f.Size) == cl })
}

// ByPrio returns flows with the given priority.
func (c *Collector) ByPrio(p int) *Collector {
	return c.Filter(func(f FlowRecord) bool { return f.Prio == p })
}

// Count returns the number of flows collected.
func (c *Collector) Count() int { return len(c.Flows) }

// MeanFCT returns the mean flow completion time.
func (c *Collector) MeanFCT() sim.Time {
	if len(c.Flows) == 0 {
		return 0
	}
	var sum sim.Time
	for _, f := range c.Flows {
		sum += f.FCT
	}
	return sum / sim.Time(len(c.Flows))
}

// PercentileFCT returns the p-quantile (0..1) of FCT.
func (c *Collector) PercentileFCT(p float64) sim.Time {
	if len(c.Flows) == 0 {
		return 0
	}
	fcts := c.fctSorted()
	idx := int(p * float64(len(fcts)-1))
	return fcts[idx]
}

// fctSorted returns the FCTs in ascending order, cached; the cache is
// rebuilt whenever Flows has grown since it was taken (flows are only ever
// appended, so a length check suffices).
func (c *Collector) fctSorted() []sim.Time {
	if len(c.sortedFCT) != len(c.Flows) {
		c.sortedFCT = make([]sim.Time, len(c.Flows))
		for i, f := range c.Flows {
			c.sortedFCT[i] = f.FCT
		}
		sort.Slice(c.sortedFCT, func(i, j int) bool { return c.sortedFCT[i] < c.sortedFCT[j] })
	}
	return c.sortedFCT
}

// MeanSlowdown returns the mean FCT slowdown.
func (c *Collector) MeanSlowdown() float64 {
	if len(c.Flows) == 0 {
		return 0
	}
	sum := 0.0
	for _, f := range c.Flows {
		sum += f.Slowdown()
	}
	return sum / float64(len(c.Flows))
}

// PercentileSlowdown returns the p-quantile (0..1) of slowdown.
func (c *Collector) PercentileSlowdown(p float64) float64 {
	if len(c.Flows) == 0 {
		return 0
	}
	s := c.slowSorted()
	return s[int(p*float64(len(s)-1))]
}

// slowSorted returns the slowdowns in ascending order, cached like
// fctSorted.
func (c *Collector) slowSorted() []float64 {
	if len(c.sortedSlow) != len(c.Flows) {
		c.sortedSlow = make([]float64, len(c.Flows))
		for i, f := range c.Flows {
			c.sortedSlow[i] = f.Slowdown()
		}
		sort.Float64s(c.sortedSlow)
	}
	return c.sortedSlow
}

// Speedup returns how much faster this collector's mean FCT is than the
// baseline's: baseline/this (>1 means faster).
func Speedup(baseline, this sim.Time) float64 {
	if this <= 0 {
		return math.NaN()
	}
	return float64(baseline) / float64(this)
}

// Table renders aligned rows for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; values are formatted with %v, floats with %.3g.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range t.header {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, row := range t.rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
