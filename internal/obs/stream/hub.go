// Package stream is the live side of the observability layer: an SSE hub
// that fans artifact JSONL lines out to subscribers as they are produced,
// and an HTTP server exposing process gauges (/metrics), batch run state
// (/runs), and the line stream itself (/events).
//
// The wire format of /events is exactly the artifact file format — each SSE
// data field is one artifact JSONL line, byte-identical to what lands on
// disk — so every consumer of artifacts (report, trace, future services)
// can consume the stream with the same parser. This is the transport the
// ROADMAP's simulation-as-a-service item builds on.
//
// Publishing never blocks the simulation: each subscriber has a bounded
// buffer and a slow consumer loses lines, counted per subscriber, rather
// than stalling the publisher.
package stream

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// DefaultSubscriberBuffer is the per-subscriber line buffer; a consumer
// that falls this many lines behind starts dropping.
const DefaultSubscriberBuffer = 4096

// Msg is one published artifact line. Run identifies the producing run
// (the artifact file stem); Line is the JSONL line without its trailing
// newline, byte-identical to the on-disk artifact line.
type Msg struct {
	Run  string
	Line []byte
}

// Subscriber is one /events consumer's queue.
type Subscriber struct {
	ch      chan Msg
	dropped atomic.Uint64
	once    sync.Once
}

// C returns the receive channel. It is closed when the hub shuts down,
// after all published lines have been enqueued.
func (s *Subscriber) C() <-chan Msg { return s.ch }

// Dropped returns how many lines this subscriber lost to backpressure.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Hub fans published lines out to the current subscribers. Publishing is
// serialized (one lock) so every subscriber observes lines in publish
// order; sends are non-blocking so a full subscriber drops instead of
// stalling the publisher.
type Hub struct {
	mu        sync.Mutex
	subs      map[*Subscriber]struct{}
	closed    bool
	published atomic.Uint64
	dropped   atomic.Uint64
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[*Subscriber]struct{})}
}

// Subscribe registers a consumer with the given buffer (<=0 means
// DefaultSubscriberBuffer). On a closed hub the returned subscriber's
// channel is already closed.
func (h *Hub) Subscribe(buf int) *Subscriber {
	if buf <= 0 {
		buf = DefaultSubscriberBuffer
	}
	s := &Subscriber{ch: make(chan Msg, buf)}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(s.ch)
		return s
	}
	h.subs[s] = struct{}{}
	return s
}

// Unsubscribe removes a consumer; its channel is closed.
func (h *Hub) Unsubscribe(s *Subscriber) {
	h.mu.Lock()
	if _, ok := h.subs[s]; ok {
		delete(h.subs, s)
	}
	h.mu.Unlock()
	s.once.Do(func() { close(s.ch) })
}

// Publish fans one line out to every subscriber. The line is copied once
// (the caller may reuse its buffer); a subscriber whose queue is full
// loses the line, counted on both the subscriber and the hub. Publish on a
// closed hub is a no-op.
func (h *Hub) Publish(run string, line []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.published.Add(1)
	if len(h.subs) == 0 {
		return
	}
	msg := Msg{Run: run, Line: append([]byte(nil), line...)}
	for s := range h.subs {
		select {
		case s.ch <- msg:
		default:
			s.dropped.Add(1)
			h.dropped.Add(1)
		}
	}
}

// Close shuts the hub down: every subscriber channel is closed after its
// already-enqueued lines, and further Publish/Subscribe calls are no-ops.
// Consumers drain their channels to the close, so no accepted line is lost
// on shutdown.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		s.once.Do(func() { close(s.ch) })
	}
}

// Stats returns the hub's lifetime counters: subscribers now connected,
// lines fanned out, and lines lost to slow consumers.
func (h *Hub) Stats() (subscribers int, published, dropped uint64) {
	h.mu.Lock()
	subscribers = len(h.subs)
	h.mu.Unlock()
	return subscribers, h.published.Load(), h.dropped.Load()
}

// LineWriter splits a byte stream into newline-terminated lines and
// publishes each to the hub. It implements io.Writer so artifact encoder
// output can be teed into it alongside the file writer.
type LineWriter struct {
	hub *Hub
	run string
	buf []byte
}

// ArtifactWriter returns a writer that publishes every complete line
// written to it under the given run name. Tee it alongside the artifact
// file writer so the stream carries the exact bytes that land on disk.
// Call Close to flush a trailing unterminated line, if any.
func (h *Hub) ArtifactWriter(run string) *LineWriter {
	return &LineWriter{hub: h, run: run}
}

// Write buffers p, publishing each completed line (newline excluded).
func (l *LineWriter) Write(p []byte) (int, error) {
	l.buf = append(l.buf, p...)
	for {
		i := bytes.IndexByte(l.buf, '\n')
		if i < 0 {
			break
		}
		l.hub.Publish(l.run, l.buf[:i])
		l.buf = l.buf[i+1:]
	}
	return len(p), nil
}

// Close publishes any trailing line that lacked a newline.
func (l *LineWriter) Close() error {
	if len(l.buf) > 0 {
		l.hub.Publish(l.run, l.buf)
		l.buf = l.buf[:0]
	}
	return nil
}
