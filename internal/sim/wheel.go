package sim

import "math/bits"

// This file implements the engine's event queue: a hierarchical timing
// wheel with a small "due" heap in front of it and an overflow heap behind
// it. It replaced the single binary heap of PR 2 (kept as the reference
// scheduler in engine_test.go) because most simulator events are
// short-horizon — serialization completions, propagation arrivals, pacing
// ticks — exactly the regime where O(1) slot insertion beats an O(log n)
// sift. See docs/ARCHITECTURE.md ("Event-loop lifecycle") for the design
// discussion and docs/PERFORMANCE.md for the measured effect.
//
// Layout
//
//	due heap   events with slot tick <= cursor: everything inside (or
//	           behind) the current level-0 slot window, ordered by
//	           (time, seq). This is the only structure consulted per pop,
//	           and it only ever holds about one slot's worth of events.
//	wheel      numLevels levels of 1<<levelBits slots. A slot is an
//	           unordered []entry; per-level bitmaps mark occupied slots so
//	           advancing across empty time is a TrailingZeros scan, not a
//	           slot walk. Level 0 slots are slotWidth wide; each higher
//	           level is 1<<levelBits times coarser.
//	overflow   min-heap for events beyond the top level's horizon
//	           (~141 s of simulated time). Effectively never used by the
//	           experiments (the longest timers are millisecond RTOs), but
//	           it makes the engine total: any int64 timestamp schedules.
//
// Placement discipline (no-wrap): an event is filed at the lowest level l
// whose parent slot (level l+1) currently contains the cursor. This keeps
// every occupied slot index strictly ahead of the cursor index at its
// level, so level bitmaps never wrap and "next occupied slot" is a single
// masked scan. The cost is that an event can cascade through at most
// numLevels-1 re-files as the cursor approaches it — amortized O(1), and
// only paid by long-horizon events (RTO timers, samplers, far-future
// arrivals).
//
// Ordering guarantee: the wheel alone orders events only to slotWidth
// granularity, so whole slots are decanted into the due heap, which
// restores the strict (time, seq) total order before anything fires.
// Determinism is therefore identical to the old global heap: simultaneous
// events fire in scheduling order, and all figure outputs are
// byte-for-byte what they were (TestEngineHeapEquivalence pins this
// against the retained reference heap).

const (
	// slotBits sets the level-0 slot width: 1<<13 ps = 8.192 ns — fine
	// enough that a slot rarely holds more than one serialization event
	// at 100 Gb/s. Wider slots (32.768 ns was tried) let µs-scale
	// delivery events file at level 0 instead of cascading from level 1,
	// buying ~8% on the packet path — but they collapse dense sub-slot
	// timestamp streams into a few slots, doubling EngineScheduleRun as
	// the due heap takes over the ordering work. The due heap restores
	// exact (time, seq) order at any slot width, so this constant is
	// pure performance tuning; keep it where the scheduling floor stays
	// flat.
	slotBits = 13
	// slotWidth is the level-0 slot span in picoseconds.
	slotWidth = Time(1) << slotBits
	// levelBits gives 256 slots per level; a level spans 256× its slot
	// width: L0 ≈ 2.1 us, L1 ≈ 537 us, L2 ≈ 137 ms, L3 ≈ 35 s.
	levelBits = 8
	numSlots  = 1 << levelBits
	slotMask  = numSlots - 1
	numLevels = 4
	// bitmapWords is the per-level occupancy bitmap size.
	bitmapWords = numSlots / 64
)

// wheelLevel is one ring of slots plus its occupancy bitmap. Slot slices
// are never freed: entries are moved out and the slice reset to length
// zero, so a warm wheel inserts and drains without allocating.
type wheelLevel struct {
	slots  [numSlots][]entry
	bitmap [bitmapWords]uint64
}

// slotSlabCap is the capacity pre-carved for every wheel slot at engine
// construction. Without it, the first append into each slot allocates as
// the cursor sweeps into virgin slots — a slow trickle that breaks the
// steady-state zero-allocation pins (the old heap was one array that
// reached max size and stayed). Four entries covers typical slot
// occupancy; a busier slot grows once and keeps its capacity.
const slotSlabCap = 4

// initWheel carves every slot's initial capacity out of one backing
// slab: a single ~100 KB allocation per engine instead of up to 1024
// per-slot allocations spread across the run.
func (e *Engine) initWheel() {
	slab := make([]entry, numLevels*numSlots*slotSlabCap)
	for l := range e.levels {
		for j := range e.levels[l].slots {
			e.levels[l].slots[j] = slab[:0:slotSlabCap]
			slab = slab[slotSlabCap:]
		}
	}
}

// nextSlot returns the smallest occupied slot index strictly greater than
// after, or -1. The no-wrap placement discipline guarantees occupied
// slots never sit at or behind the cursor, so a forward scan is complete.
func (lv *wheelLevel) nextSlot(after int) int {
	i := after + 1
	if i >= numSlots {
		return -1
	}
	w := i >> 6
	b := lv.bitmap[w] &^ (1<<(uint(i)&63) - 1)
	for {
		if b != 0 {
			return w<<6 + bits.TrailingZeros64(b)
		}
		w++
		if w >= bitmapWords {
			return -1
		}
		b = lv.bitmap[w]
	}
}

// place files an entry into the due heap, a wheel slot, or the overflow
// heap. The caller guarantees ent.at >= the engine clock; the wheel cursor
// may be ahead of the clock (it advances speculatively to the next
// occupied slot), in which case the event lands in the due heap and the
// heap's (time, seq) order keeps it correctly interleaved.
func (e *Engine) place(ent entry) {
	tick := uint64(ent.at) >> slotBits
	if tick <= e.wheelTick {
		e.due.push(ent)
		return
	}
	for l := 0; l < numLevels; l++ {
		if tick>>uint((l+1)*levelBits) == e.wheelTick>>uint((l+1)*levelBits) {
			// Same parent slot as the cursor: file at level l. The index
			// is strictly ahead of the cursor's index at this level (see
			// the no-wrap note above).
			idx := int(tick>>uint(l*levelBits)) & slotMask
			lv := &e.levels[l]
			lv.slots[idx] = append(lv.slots[idx], ent)
			lv.bitmap[idx>>6] |= 1 << (uint(idx) & 63)
			e.nwheel++
			return
		}
	}
	e.overflow.push(ent)
}

// refillDue makes the due heap nonempty if any event exists anywhere,
// advancing the wheel cursor (and draining the overflow heap) as needed.
// Reports whether there is a next event.
func (e *Engine) refillDue() bool {
	for {
		if len(e.due) > 0 {
			return true
		}
		if e.nwheel > 0 {
			e.advanceWheel()
			continue
		}
		if len(e.overflow) > 0 {
			e.jumpToOverflow()
			continue
		}
		return false
	}
}

// advanceWheel moves the cursor forward to the next occupied slot and
// decants it. Events at level l always precede events at level l+1 (level
// l covers the cursor's current parent slot; level l+1 only holds events
// beyond it), so scanning levels lowest-first finds the earliest slot.
func (e *Engine) advanceWheel() {
	for l := 0; l < numLevels; l++ {
		cur := int(e.wheelTick>>uint(l*levelBits)) & slotMask
		j := e.levels[l].nextSlot(cur)
		if j < 0 {
			continue
		}
		// Enter slot j at level l: cursor indices below level l reset to
		// the slot's start.
		tickL := e.wheelTick >> uint(l*levelBits)
		e.wheelTick = ((tickL &^ slotMask) | uint64(j)) << uint(l*levelBits)
		e.drainSlot(l, j)
		return
	}
	panic("sim: wheel occupancy count does not match bitmaps")
}

// drainSlot empties slot j of level l: canceled entries are reclaimed on
// the spot, level-0 entries decant into the due heap, and higher-level
// entries cascade down through place (they re-file at a lower level or in
// the due heap, never at the same level — the cursor now sits inside
// their parent slot).
func (e *Engine) drainSlot(l, j int) {
	lv := &e.levels[l]
	s := lv.slots[j]
	lv.slots[j] = s[:0]
	lv.bitmap[j>>6] &^= 1 << (uint(j) & 63)
	e.nwheel -= len(s)
	for _, ent := range s {
		switch {
		case ent.ev.state == evCanceled:
			e.ncanceled--
			e.recycle(ent.ev)
		case l == 0:
			e.due.push(ent)
		default:
			e.place(ent)
		}
	}
}

// jumpToOverflow teleports the cursor to the earliest overflow event and
// drains every overflow entry that now falls inside the top level's
// window back through place. Only reached when the due heap and all wheel
// levels are empty, so the jump is always forward.
func (e *Engine) jumpToOverflow() {
	const topShift = numLevels * levelBits
	e.wheelTick = uint64(e.overflow[0].at) >> slotBits
	for len(e.overflow) > 0 &&
		uint64(e.overflow[0].at)>>slotBits>>topShift == e.wheelTick>>topShift {
		ent := e.overflow.pop()
		if ent.ev.state == evCanceled {
			e.ncanceled--
			e.recycle(ent.ev)
			continue
		}
		e.place(ent)
	}
}

// queuedEntries returns the number of entries resident in the queue
// structures, canceled ones included (events popped into an in-flight
// dispatch batch are not counted). It is the denominator of the
// compaction trigger.
func (e *Engine) queuedEntries() int {
	return len(e.due) + e.nwheel + len(e.overflow)
}

// compact sweeps canceled entries out of every structure, recycling their
// events, so a pathological cancel/re-schedule loop cannot hold memory
// proportional to history. Triggered from Cancel when canceled entries
// dominate; amortized O(1) per Cancel.
func (e *Engine) compact() {
	removed := 0
	keepHeap := func(h *entryHeap) {
		kept := (*h)[:0]
		for _, ent := range *h {
			if ent.ev.state == evCanceled {
				e.recycle(ent.ev)
				removed++
				continue
			}
			kept = append(kept, ent)
		}
		for i := len(kept); i < len(*h); i++ {
			(*h)[i] = entry{}
		}
		*h = kept
		h.reinit()
	}
	keepHeap(&e.due)
	keepHeap(&e.overflow)
	for l := range e.levels {
		lv := &e.levels[l]
		for w := range lv.bitmap {
			for bm := lv.bitmap[w]; bm != 0; bm &= bm - 1 {
				j := w<<6 + bits.TrailingZeros64(bm)
				s := lv.slots[j]
				kept := s[:0]
				for _, ent := range s {
					if ent.ev.state == evCanceled {
						e.recycle(ent.ev)
						removed++
						e.nwheel--
						continue
					}
					kept = append(kept, ent)
				}
				for i := len(kept); i < len(s); i++ {
					s[i] = entry{}
				}
				lv.slots[j] = kept
				if len(kept) == 0 {
					lv.bitmap[j>>6] &^= 1 << (uint(j) & 63)
				}
			}
		}
	}
	// Canceled entries sitting in an in-flight dispatch batch are not
	// swept here; the batch loop reclaims them, so only subtract what this
	// sweep actually removed.
	e.ncanceled -= removed
}

// --- entryHeap: a hand-rolled binary min-heap over (time, seq) entries ---
//
// Two instances exist per engine: the due heap (small — one slot window's
// worth of events) and the overflow heap (far-future events, near-empty in
// practice). Value entries, no interface calls, no index bookkeeping.

type entryHeap []entry

func (h *entryHeap) push(ent entry) {
	*h = append(*h, ent)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !ent.less(s[parent]) {
			break
		}
		s[i] = s[parent]
		i = parent
	}
	s[i] = ent
}

func (h *entryHeap) pop() entry {
	s := *h
	top := s[0]
	n := len(s) - 1
	last := s[n]
	s[n] = entry{}
	s = s[:n]
	*h = s
	if n > 0 {
		s.siftDown(0, last)
	}
	return top
}

// siftDown places ent at index i, restoring heap order below it.
func (h entryHeap) siftDown(i int, ent entry) {
	n := len(h)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h[r].less(h[child]) {
			child = r
		}
		if !h[child].less(ent) {
			break
		}
		h[i] = h[child]
		i = child
	}
	h[i] = ent
}

// reinit re-establishes the heap property after in-place filtering.
func (h entryHeap) reinit() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i, h[i])
	}
}
