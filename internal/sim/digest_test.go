package sim

import "testing"

// runLadder schedules a deterministic mix of events (staggered times,
// same-timestamp batches, payload folds, a cancellation) and returns the
// digest. perturb shifts one event's delay by 1ns to model a divergence.
func runLadder(d *Digest, n int, perturb bool) {
	e := NewEngine()
	e.SetDigest(d)
	for i := 0; i < n; i++ {
		t := Time(i * 10)
		if perturb && i == n/2 {
			t++
		}
		i := i
		e.AtK(t, func() {
			if d := e.Digest(); d != nil && i%3 == 0 {
				d.FoldPayload(uint64(i), uint64(i*7), uint64(i*13))
			}
		}, uint8(i%int(NumEventKinds)))
	}
	ev := e.At(Time(n*10+5), func() {})
	e.Cancel(ev)
	e.Run()
}

func TestDigestDeterministic(t *testing.T) {
	a, b := NewDigest(), NewDigest()
	runLadder(a, 500, false)
	runLadder(b, 500, false)
	if a.Chain != b.Chain || a.Count != b.Count {
		t.Fatalf("identical runs diverged: %x/%d vs %x/%d", a.Chain, a.Count, b.Chain, b.Count)
	}
	if a.Count != 500 {
		t.Fatalf("Count = %d, want 500 (canceled event must not fold)", a.Count)
	}
}

func TestDigestDetectsPerturbation(t *testing.T) {
	a, b := NewDigest(), NewDigest()
	runLadder(a, 500, false)
	runLadder(b, 500, true)
	if a.Chain == b.Chain {
		t.Fatal("1ns perturbation did not change the chain")
	}
	// Checkpoints localize the divergence: the first mismatching
	// checkpoint must be at or after the perturbed event (count ~250).
	for i := range a.Ckpts {
		if i >= len(b.Ckpts) {
			break
		}
		if a.Ckpts[i].Count != b.Ckpts[i].Count {
			t.Fatalf("checkpoint counts misaligned: %d vs %d", a.Ckpts[i].Count, b.Ckpts[i].Count)
		}
		if (a.Ckpts[i].Chain == b.Ckpts[i].Chain) != (a.Ckpts[i].Count < 250) {
			t.Fatalf("checkpoint %d (count %d): match=%v, want divergence from count 250",
				i, a.Ckpts[i].Count, a.Ckpts[i].Chain == b.Ckpts[i].Chain)
		}
	}
}

func TestDigestPayloadSensitivity(t *testing.T) {
	fold := func(tag, x, y uint64) uint64 {
		d := NewDigest()
		e := NewEngine()
		e.SetDigest(d)
		e.At(0, func() { d.FoldPayload(tag, x, y) })
		e.Run()
		return d.Chain
	}
	base := fold(1, 2, 3)
	for _, alt := range []uint64{fold(9, 2, 3), fold(1, 9, 3), fold(1, 2, 9)} {
		if alt == base {
			t.Fatal("payload component did not affect the chain")
		}
	}
	// Argument positions must not be interchangeable.
	if fold(1, 2, 3) == fold(1, 3, 2) {
		t.Fatal("payload fold is symmetric in a/b")
	}
}

func TestDigestCheckpointCompaction(t *testing.T) {
	d := NewDigest()
	e := NewEngine()
	e.SetDigest(d)
	// Enough events to force at least one compaction.
	n := (digestCkptCap + 10) * DigestCheckpointEvery
	var step func()
	i := 0
	step = func() {
		i++
		if i < n {
			e.Post(1, step)
		}
	}
	e.Post(0, step)
	e.Run()
	if d.CheckpointEvery() <= DigestCheckpointEvery {
		t.Fatalf("interval %d: compaction never ran", d.CheckpointEvery())
	}
	if len(d.Ckpts) > digestCkptCap {
		t.Fatalf("checkpoint buffer grew past cap: %d", len(d.Ckpts))
	}
	// Invariants: counts strictly increase, fall on interval multiples,
	// and chains are consistent with a fresh replay's checkpoints.
	every := d.CheckpointEvery()
	var prev uint64
	for _, c := range d.Ckpts {
		if c.Count <= prev {
			t.Fatalf("checkpoint counts not increasing: %d after %d", c.Count, prev)
		}
		if c.Count%every != 0 && c.Count != d.Ckpts[len(d.Ckpts)-1].Count {
			// All but possibly trailing records (appended after the last
			// compaction at a smaller interval) sit on multiples of a
			// power-of-two fraction of every; just require the original grid.
			if c.Count%DigestCheckpointEvery != 0 {
				t.Fatalf("checkpoint count %d off the base grid", c.Count)
			}
		}
		prev = c.Count
	}
}

func TestDigestWindowRecording(t *testing.T) {
	d := NewDigest()
	d.SetWindow(100, 110)
	runLadder(d, 500, false)
	if len(d.Recs) != 10 {
		t.Fatalf("recorded %d events, want 10", len(d.Recs))
	}
	for i, r := range d.Recs {
		if r.Count != uint64(100+i) {
			t.Fatalf("rec %d has count %d", i, r.Count)
		}
	}
	if d.Truncated() {
		t.Fatal("10-event window reported truncated")
	}
}

func TestDigestFoldAllocs(t *testing.T) {
	d := NewDigest()
	e := NewEngine()
	e.SetDigest(d)
	var tick func()
	tick = func() {
		d.FoldPayload(1, 2, 3)
		e.Post(1, tick)
	}
	e.Post(0, tick)
	e.RunUntil(100) // warm the event free list
	allocs := testing.AllocsPerRun(200, func() {
		end := e.Now() + 50
		e.RunUntil(end)
	})
	if allocs > 0 {
		t.Fatalf("digest fold path allocates: %v allocs/run", allocs)
	}
}
