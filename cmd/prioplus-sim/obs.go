package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"prioplus/internal/exp"
	"prioplus/internal/obs"
	"prioplus/internal/obs/stream"
	"prioplus/internal/runner"
	"prioplus/internal/sim"
)

// flightSize is the flight recorder's ring capacity: the most recent trace
// events kept for the post-mortem dump when a watchdog trips.
const flightSize = 4096

// obsOpts carries the observability flags shared by single and batch mode.
// The zero value disables everything.
type obsOpts struct {
	dir       string // -series: artifact JSONL directory ("" = off)
	hist      bool   // -hist: streaming histograms plus printed summaries
	maxBytes  int64  // -watchdog: in-flight bytes ceiling (0 = off)
	maxEvents int64  // -watchdog-events: event-heap ceiling (0 = off)
	runtime   bool   // -runtime: merge host-process gauges into the series
	cost      bool   // -cost: sampled per-event-kind cost attribution
	listen    string // -listen: live HTTP endpoint address ("" = off)

	traceFlows   int     // -trace-flows: flow-trace cap (0 = off)
	traceMatch   []int64 // -trace-match: explicit flow ids to trace
	traceEvery   int     // -trace-every: 1-in-K hash sample of flow ids
	tracePackets int     // -trace-packets: journey stride (0 = default 16)

	fingerprint bool   // -fingerprint: per-event digest chain + run fingerprint
	audit       bool   // -audit: conservation auditor on the sampler clock
	perturb     uint64 // -perturb: inflate the Nth delay-noise draw (0 = off)

	// windowLo/windowHi arm full-event window recording on the digest
	// ([lo, hi) in dispatch counts). Set by the diff subcommand's rerun
	// phase, not by flags.
	windowLo, windowHi uint64

	// hub and live are wired by main/runAll after resolve, not by flags:
	// hub tees artifact lines to /events subscribers, live receives this
	// run's progress gauges for /runs.
	hub  *stream.Hub
	live *runner.RunState
}

func (o obsOpts) enabled() bool {
	return o.dir != "" || o.hist || o.maxBytes > 0 || o.maxEvents > 0 ||
		o.runtime || o.cost || o.hub != nil || o.live != nil || o.tracing() ||
		o.fingerprint || o.audit
}

// tracing reports whether flow tracing was requested.
func (o obsOpts) tracing() bool {
	return o.traceFlows > 0 || len(o.traceMatch) > 0
}

// obsSink hands out per-run recorders during one experiment invocation
// and, at flush time, writes their artifacts and prints their summaries.
// One experiment may own several runs (a figure's sweep of schemes and
// priority counts), so recorders are keyed by run tag. A sink belongs to a
// single runExperiment call and needs no locking.
type obsSink struct {
	opts obsOpts
	exp  string
	seed int64
	runs []obsRun
	seen map[string]int // filename stems already issued, for dedupe
}

// obsSink implements exp.Sink, so the registry's Run funcs can pull
// recorders from it without depending on the CLI's flag types.
var _ exp.Sink = (*obsSink)(nil)

type obsRun struct {
	tag string
	rec *obs.Recorder
}

// newObsSink returns nil when every observability flag is off, so callers
// can gate wiring on a single nil check.
func newObsSink(opts obsOpts, exp string, seed int64) *obsSink {
	if !opts.enabled() {
		return nil
	}
	return &obsSink{opts: opts, exp: exp, seed: seed, seen: map[string]int{}}
}

// Recorder builds the recorder for one run, enabling only the instruments
// the flags asked for. It implements exp.Sink — the factory shape the exp
// drivers and configs expect (FlowSchedConfig.ObsFor and friends); the
// sink keeps every recorder it hands out so flush can write them after the
// experiment finishes.
func (s *obsSink) Recorder(tag string) *obs.Recorder {
	rec := obs.NewRecorder()
	if s.opts.dir != "" || s.opts.hub != nil {
		rec.Series = obs.NewSeriesSet(obs.DefaultSeriesInterval)
	}
	if s.opts.runtime && rec.Series != nil {
		rec.Runtime = &obs.RuntimeSampler{}
	}
	if s.opts.cost {
		rec.Cost = &obs.CostProfiler{}
	}
	if s.opts.live != nil {
		rec.Live = &s.opts.live.Live
		s.opts.live.SetPhase(tag)
	}
	if s.opts.hist {
		rec.Hist = obs.NewHistSet()
	}
	if s.opts.maxBytes > 0 || s.opts.maxEvents > 0 {
		rec.Watchdog = &obs.Watchdog{
			MaxInflightBytes: s.opts.maxBytes,
			MaxHeapEvents:    s.opts.maxEvents,
		}
		rec.Flight = obs.NewFlightRecorder(flightSize)
	}
	if s.opts.tracing() {
		n := s.opts.traceFlows
		if n < len(s.opts.traceMatch) {
			n = len(s.opts.traceMatch) // -trace-match alone sizes its own cap
		}
		ft := obs.NewFlowTracer(n)
		ft.Match = s.opts.traceMatch
		ft.Every = s.opts.traceEvery
		ft.PacketEvery = s.opts.tracePackets
		rec.FlowTrace = ft
	}
	if s.opts.fingerprint {
		rec.Digest = sim.NewDigest()
		if s.opts.windowHi > 0 {
			rec.Digest.SetWindow(s.opts.windowLo, s.opts.windowHi)
		}
	}
	if s.opts.audit {
		rec.Audit = &obs.Auditor{}
		if rec.Flight == nil {
			rec.Flight = obs.NewFlightRecorder(flightSize)
		}
	}
	s.runs = append(s.runs, obsRun{tag: tag, rec: rec})
	return rec
}

// stem returns a unique filesystem-safe basename for one run's artifacts.
func (s *obsSink) stem(tag string) string {
	base := obs.ArtifactStem(s.exp, tag, s.seed)
	s.seen[base]++
	if n := s.seen[base]; n > 1 {
		base += "-" + strconv.Itoa(n)
	}
	return base
}

// flush writes one artifact JSONL per run into the -series directory,
// dumps the flight recorder for any run whose watchdog tripped or auditor
// violated, and prints -hist summaries and -fingerprint lines to w (so
// batch mode captures them with the run output). A conservation violation
// is returned as an error after everything is written: unlike a watchdog
// trip (a configured resource ceiling doing its job) a violation means the
// simulator itself miscounted, so the run must fail.
func (s *obsSink) flush(w io.Writer) error {
	var violation error
	for _, r := range s.runs {
		stem := s.stem(r.tag)
		if wd := r.rec.Watchdog; wd != nil && wd.Tripped() != "" {
			path := filepath.Join(s.dumpDir(), stem+".flight.jsonl")
			n, err := dumpFlight(path, r.rec.Flight)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "# watchdog tripped (%s) in run %q: engine stopped, last %d trace events in %s\n",
				wd.Tripped(), r.tag, n, path)
		}
		if aud := r.rec.Audit; aud != nil && aud.Violation() != "" {
			path := filepath.Join(s.dumpDir(), stem+".flight.jsonl")
			n, err := dumpFlight(path, r.rec.Flight)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "# AUDIT VIOLATION in run %q: %s — engine stopped, last %d trace events in %s\n",
				r.tag, aud.Violation(), n, path)
			if violation == nil {
				violation = fmt.Errorf("conservation audit violation in run %q: %s", r.tag, aud.Violation())
			}
		}
		if s.opts.dir != "" || s.opts.hub != nil {
			if err := s.writeArtifact(stem, r.tag, r.rec); err != nil {
				return err
			}
		}
		if s.opts.hist && r.rec.Hist != nil {
			for _, h := range r.rec.Hist.All() {
				if h.Count() == 0 {
					continue
				}
				fmt.Fprintf(w, "# hist %s %s (%s): n=%d mean=%.0f p50=%d p90=%d p99=%d p99.9=%d max=%d\n",
					r.tag, h.Name, h.Unit, h.Count(), h.Mean(),
					h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Quantile(0.999), h.Max())
			}
		}
		if d := r.rec.Digest; d != nil {
			fmt.Fprintf(w, "# fingerprint %s chain=%016x events=%d\n", r.tag, d.Chain, d.Count)
		}
	}
	return violation
}

// dumpDir is where flight-recorder post-mortems land: the -series
// directory when one is configured, the working directory otherwise.
func (s *obsSink) dumpDir() string {
	if s.opts.dir != "" {
		return s.opts.dir
	}
	return "."
}

// writeArtifact emits one run's artifact to the -series file and/or the
// live hub. Both sinks see the same encoder output, so streamed lines are
// byte-identical to the on-disk artifact.
func (s *obsSink) writeArtifact(stem, tag string, rec *obs.Recorder) error {
	var ws []io.Writer
	var f *os.File
	if s.opts.dir != "" {
		var err error
		f, err = os.Create(filepath.Join(s.opts.dir, stem+".jsonl"))
		if err != nil {
			return err
		}
		ws = append(ws, f)
	}
	var lw *stream.LineWriter
	if s.opts.hub != nil {
		lw = s.opts.hub.ArtifactWriter(stem)
		ws = append(ws, lw)
	}
	err := obs.WriteArtifact(io.MultiWriter(ws...), tag, rec)
	if lw != nil {
		lw.Close()
	}
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func dumpFlight(path string, fr *obs.FlightRecorder) (int, error) {
	if fr == nil {
		return 0, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := fr.Dump(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// parseBytes parses a human-readable byte count: a plain integer with an
// optional k/m/g suffix (binary multiples), e.g. "64m", "2g", "65536".
func parseBytes(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty byte count")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad byte count %q", s)
	}
	return v * mult, nil
}
