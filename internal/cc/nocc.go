package cc

import "math"

// NoCC is the uncontrolled sender used for the "Physical* w/o CC"
// baseline: it transmits at line rate and relies entirely on PFC and
// priority queues. Its window is effectively unbounded.
type NoCC struct {
	drv Driver
	wnd float64 // 0 = unbounded
}

// NewNoCC returns an uncontrolled sender with an unbounded window.
func NewNoCC() *NoCC { return &NoCC{} }

// NewNoCCWindow returns an uncontrolled sender whose outstanding data is
// capped at wndBytes. The cap does not add congestion control — the sender
// still never reacts to delay, loss, or marks — it models the finite TX
// resources a real NIC has (send queue, retransmission buffer): even an
// uncontrolled host cannot materialize a whole multi-megabyte flow into the
// fabric at once. Simulations of "w/o CC" baselines need the cap so a
// PFC-paused fabric holds a bounded number of in-flight packets instead of
// the entire offered load.
func NewNoCCWindow(wndBytes float64) *NoCC {
	if wndBytes <= 0 {
		return NewNoCC()
	}
	return &NoCC{wnd: wndBytes}
}

// Name implements Algorithm.
func (n *NoCC) Name() string { return "nocc" }

// WantsECT implements Algorithm.
func (n *NoCC) WantsECT() bool { return false }

// Start implements Algorithm.
func (n *NoCC) Start(drv Driver) { n.drv = drv }

// OnAck implements Algorithm.
func (n *NoCC) OnAck(fb Feedback) {}

// OnProbeAck implements Algorithm.
func (n *NoCC) OnProbeAck(fb Feedback) {}

// OnRTO implements Algorithm.
func (n *NoCC) OnRTO() {}

// CwndBytes implements Algorithm: unbounded by default (the transport
// releases packets as fast as the NIC drains them), or the fixed TX cap
// when built with NewNoCCWindow.
func (n *NoCC) CwndBytes() float64 {
	if n.wnd > 0 {
		return n.wnd
	}
	return math.Inf(1)
}
