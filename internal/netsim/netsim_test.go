package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prioplus/internal/sim"
)

func TestRateSerialize(t *testing.T) {
	cases := []struct {
		rate  Rate
		bytes int
		want  sim.Time
	}{
		{100 * Gbps, 1000, 80 * sim.Nanosecond},
		{100 * Gbps, 1048, 83840 * sim.Picosecond},
		{10 * Gbps, 1000, 800 * sim.Nanosecond},
		{400 * Gbps, 1048, 20960 * sim.Picosecond},
		{100 * Mbps, 64, 5120 * sim.Nanosecond},
	}
	for _, c := range cases {
		if got := c.rate.Serialize(c.bytes); got != c.want {
			t.Errorf("Rate(%d).Serialize(%d) = %v, want %v", c.rate, c.bytes, got, c.want)
		}
	}
}

func TestRateBDP(t *testing.T) {
	// 100 Gb/s, 12 us RTT -> 150 KB.
	if got := (100 * Gbps).BDP(12 * sim.Microsecond); got != 150000 {
		t.Errorf("BDP = %v, want 150000", got)
	}
}

// twoHosts wires two hosts back to back (no switch) for link-level tests.
func twoHosts(eng *sim.Engine, rate Rate, prop sim.Time) (*Host, *Host) {
	a := NewHost(eng, 0, rate, prop, 1)
	b := NewHost(eng, 1, rate, prop, 1)
	Connect(a.NIC, b.NIC)
	return a, b
}

func TestLinkDeliveryTiming(t *testing.T) {
	eng := sim.NewEngine()
	a, b := twoHosts(eng, 100*Gbps, 1*sim.Microsecond)
	var arrived sim.Time
	b.Sink = func(pkt *Packet) { arrived = eng.Now() }
	pkt := NewData(1, 0, 1, 0, 0, 1000)
	a.Send(pkt)
	eng.Run()
	want := (100 * Gbps).Serialize(1048) + 1*sim.Microsecond
	if arrived != want {
		t.Errorf("arrival = %v, want %v", arrived, want)
	}
}

func TestLinkBackToBackSerialization(t *testing.T) {
	eng := sim.NewEngine()
	a, b := twoHosts(eng, 10*Gbps, 0)
	var arrivals []sim.Time
	b.Sink = func(pkt *Packet) { arrivals = append(arrivals, eng.Now()) }
	for i := 0; i < 3; i++ {
		a.Send(NewData(1, 0, 1, 0, int64(i)*1000, 1000))
	}
	eng.Run()
	ser := (10 * Gbps).Serialize(1048)
	for i, at := range arrivals {
		want := ser * sim.Time(i+1)
		if at != want {
			t.Errorf("arrival[%d] = %v, want %v (back-to-back serialization)", i, at, want)
		}
	}
}

// star builds a one-switch star: n hosts attached to one switch.
func star(eng *sim.Engine, n int, rate Rate, prop sim.Time, nq int, cfg BufferConfig) (*Switch, []*Host) {
	sw := NewSwitch(eng, "sw", cfg, rand.New(rand.NewSource(1)))
	hosts := make([]*Host, n)
	for i := 0; i < n; i++ {
		hosts[i] = NewHost(eng, i, rate, prop, nq)
		p := sw.AddPort(rate, prop, nq)
		Connect(hosts[i].NIC, p)
		sw.SetRoute(i, []int32{int32(i)})
	}
	sw.Finalize()
	return sw, hosts
}

func lossyConfig() BufferConfig {
	cfg := DefaultBufferConfig()
	cfg.PFCEnabled = false
	return cfg
}

func TestSwitchForwarding(t *testing.T) {
	eng := sim.NewEngine()
	_, hosts := star(eng, 3, 100*Gbps, 1*sim.Microsecond, 2, lossyConfig())
	got := 0
	hosts[2].Sink = func(pkt *Packet) {
		got++
		if pkt.Src != 0 || pkt.Dst != 2 {
			t.Errorf("packet src/dst = %d/%d, want 0/2", pkt.Src, pkt.Dst)
		}
	}
	hosts[0].Send(NewData(7, 0, 2, 0, 0, 1000))
	eng.Run()
	if got != 1 {
		t.Fatalf("delivered %d packets, want 1", got)
	}
}

func TestStrictPriorityScheduling(t *testing.T) {
	eng := sim.NewEngine()
	sw, hosts := star(eng, 3, 10*Gbps, 0, 4, lossyConfig())
	_ = sw
	var order []int64
	hosts[2].Sink = func(pkt *Packet) { order = append(order, pkt.FlowID) }
	// Two senders converge on host 2. Host 0 floods priority 0; host 1
	// sends one priority-3 packet slightly later. The high-priority packet
	// must overtake all low-priority packets still queued at the switch.
	for i := 0; i < 10; i++ {
		hosts[0].Send(NewData(100, 0, 2, 0, int64(i)*1000, 1000))
	}
	eng.At(200*sim.Nanosecond, func() {
		hosts[1].Send(NewData(200, 1, 2, 3, 0, 1000))
	})
	eng.Run()
	if len(order) != 11 {
		t.Fatalf("delivered %d packets, want 11", len(order))
	}
	pos := -1
	for i, f := range order {
		if f == 200 {
			pos = i
		}
	}
	if pos < 0 || pos > 2 {
		t.Errorf("high-priority packet delivered at position %d, want near front", pos)
	}
}

func TestECNStepMarking(t *testing.T) {
	eng := sim.NewEngine()
	cfg := lossyConfig()
	cfg.ECNKMin = 3000
	cfg.ECNKMax = 3000
	sw, hosts := star(eng, 3, 10*Gbps, 0, 1, cfg)
	var marked, unmarked int
	hosts[2].Sink = func(pkt *Packet) {
		if pkt.CE {
			marked++
		} else {
			unmarked++
		}
	}
	// Two senders at line rate into one port: queue builds beyond K.
	for i := 0; i < 20; i++ {
		d0 := NewData(1, 0, 2, 0, int64(i)*1000, 1000)
		d0.ECT = true
		hosts[0].Send(d0)
		d1 := NewData(2, 1, 2, 0, int64(i)*1000, 1000)
		d1.ECT = true
		hosts[1].Send(d1)
	}
	eng.Run()
	if marked == 0 {
		t.Error("no packets ECN-marked despite standing queue above K")
	}
	if unmarked == 0 {
		t.Error("all packets marked; early packets below K should be clean")
	}
	if sw.ECNMarks != int64(marked) {
		t.Errorf("switch counted %d marks, receivers saw %d", sw.ECNMarks, marked)
	}
}

func TestECNNotMarkedWithoutECT(t *testing.T) {
	eng := sim.NewEngine()
	cfg := lossyConfig()
	cfg.ECNKMin = 1000
	cfg.ECNKMax = 1000
	_, hosts := star(eng, 3, 10*Gbps, 0, 1, cfg)
	hosts[2].Sink = func(pkt *Packet) {
		if pkt.CE {
			t.Error("non-ECT packet was CE-marked")
		}
	}
	for i := 0; i < 10; i++ {
		hosts[0].Send(NewData(1, 0, 2, 0, int64(i)*1000, 1000))
		hosts[1].Send(NewData(2, 1, 2, 0, int64(i)*1000, 1000))
	}
	eng.Run()
}

func TestDynamicThresholdDrop(t *testing.T) {
	eng := sim.NewEngine()
	cfg := lossyConfig()
	cfg.TotalBytes = 20 * 1048
	cfg.DTAlpha = 0.5
	sw, hosts := star(eng, 3, 10*Gbps, 0, 1, cfg)
	received := 0
	hosts[2].Sink = func(pkt *Packet) { received++ }
	// Flood far beyond the buffer: drops must occur and accounting must
	// recover so late packets still flow.
	for i := 0; i < 100; i++ {
		hosts[0].Send(NewData(1, 0, 2, 0, int64(i)*1000, 1000))
		hosts[1].Send(NewData(2, 1, 2, 0, int64(i)*1000, 1000))
	}
	eng.Run()
	if sw.Drops() == 0 {
		t.Error("no drops despite 2x overload on a tiny buffer")
	}
	if received+int(sw.Drops()) != 200 {
		t.Errorf("received %d + dropped %d != 200 sent", received, sw.Drops())
	}
	if sw.BufferUsed() != 0 {
		t.Errorf("buffer not drained: %d bytes still accounted", sw.BufferUsed())
	}
}

func TestPFCPauseAndResume(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultBufferConfig()
	cfg.TotalBytes = 64 * 1048
	cfg.LosslessPrios = 2
	cfg.HeadroomBytes = 8 * 1048
	cfg.PFCAlpha = 0.125
	sw, hosts := star(eng, 3, 10*Gbps, 100*sim.Nanosecond, 2, cfg)
	received := 0
	hosts[2].Sink = func(pkt *Packet) { received++ }
	for i := 0; i < 60; i++ {
		hosts[0].Send(NewData(1, 0, 2, 0, int64(i)*1000, 1000))
		hosts[1].Send(NewData(2, 1, 2, 0, int64(i)*1000, 1000))
	}
	eng.Run()
	if sw.PausesSent() == 0 {
		t.Error("no PFC pauses under 2x incast on a small lossless buffer")
	}
	if sw.Drops() != 0 {
		t.Errorf("%d drops in lossless mode; headroom must absorb in-flight data", sw.Drops())
	}
	if received != 120 {
		t.Errorf("received %d packets, want all 120 (lossless)", received)
	}
	if sw.BufferUsed() != 0 {
		t.Errorf("buffer not drained: %d bytes", sw.BufferUsed())
	}
	// Senders must have been paused at some point.
	if hosts[0].NIC.PausedFor == 0 && hosts[1].NIC.PausedFor == 0 {
		t.Error("no sender NIC was ever paused")
	}
}

func TestPFCDoesNotPauseOtherPriority(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultBufferConfig()
	cfg.TotalBytes = 64 * 1048
	cfg.LosslessPrios = 1 // only priority 0 is lossless
	cfg.HeadroomBytes = 8 * 1048
	cfg.PFCAlpha = 0.125
	_, hosts := star(eng, 3, 10*Gbps, 100*sim.Nanosecond, 2, cfg)
	var arrivalsHigh []sim.Time
	hosts[2].Sink = func(pkt *Packet) {
		if pkt.Prio == 1 {
			arrivalsHigh = append(arrivalsHigh, eng.Now())
		}
	}
	for i := 0; i < 60; i++ {
		hosts[0].Send(NewData(1, 0, 2, 0, int64(i)*1000, 1000)) // lossless prio 0 floods
		hosts[1].Send(NewData(2, 1, 2, 1, int64(i)*1000, 1000)) // lossy prio 1
	}
	eng.Run()
	if len(arrivalsHigh) == 0 {
		t.Fatal("priority-1 traffic starved")
	}
	// Priority 1 is strict-higher: it should finish around its own
	// serialization time, unaffected by priority-0 pauses.
	ser := (10 * Gbps).Serialize(1048)
	lastHigh := arrivalsHigh[len(arrivalsHigh)-1]
	budget := ser*62 + 2*sim.Microsecond
	if lastHigh > budget {
		t.Errorf("high priority finished at %v, want <= %v", lastHigh, budget)
	}
}

func TestECMPStablePerFlow(t *testing.T) {
	// Two equal-cost paths: dst routed via two ports. All packets of one
	// flow must take the same port; different flows should spread.
	eng := sim.NewEngine()
	sw := NewSwitch(eng, "sw", lossyConfig(), rand.New(rand.NewSource(1)))
	counts := make([]int, 2)
	sinks := make([]*Host, 2)
	for i := 0; i < 2; i++ {
		i := i
		h := NewHost(eng, 5, 100*Gbps, 0, 1) // both "paths" end at host 5
		h.Sink = func(pkt *Packet) { counts[i]++ }
		p := sw.AddPort(100*Gbps, 0, 1)
		Connect(h.NIC, p)
		sinks[i] = h
	}
	src := NewHost(eng, 9, 100*Gbps, 0, 1)
	p := sw.AddPort(100*Gbps, 0, 1)
	Connect(src.NIC, p)
	sw.SetRoute(5, []int32{0, 1})
	sw.Finalize()
	for i := 0; i < 10; i++ {
		src.Send(NewData(42, 9, 5, 0, int64(i)*1000, 1000))
	}
	for f := int64(0); f < 64; f++ {
		src.Send(NewData(f+100, 9, 5, 0, 0, 1000))
	}
	eng.Run()
	if counts[0]+counts[1] != 74 {
		t.Fatalf("delivered %d, want 74", counts[0]+counts[1])
	}
	// Flow 42's 10 packets all on one path: one counter >= 10+something,
	// check spread exists for the 64 distinct flows.
	if counts[0] < 10 && counts[1] < 10 {
		t.Error("flow 42 split across paths: ECMP not flow-stable")
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Error("64 distinct flows all hashed to one path")
	}
}

func TestPortJitterAddsDelay(t *testing.T) {
	eng := sim.NewEngine()
	a, b := twoHosts(eng, 100*Gbps, 1*sim.Microsecond)
	a.NIC.Jitter = func() sim.Time { return 5 * sim.Microsecond }
	var arrived sim.Time
	b.Sink = func(pkt *Packet) { arrived = eng.Now() }
	a.Send(NewData(1, 0, 1, 0, 0, 1000))
	eng.Run()
	want := (100 * Gbps).Serialize(1048) + 6*sim.Microsecond
	if arrived != want {
		t.Errorf("arrival = %v, want %v with jitter", arrived, want)
	}
}

func TestFlowHashDeterministic(t *testing.T) {
	f := func(flow int64) bool { return flowHash(flow) == flowHash(flow) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: shared-buffer accounting stays consistent under random
// admit/release sequences: used never negative, never above capacity, and
// returns to zero when all packets released.
func TestSharedBufferAccountingProperty(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		cfg := DefaultBufferConfig()
		cfg.TotalBytes = 100 * 1048
		cfg.LosslessPrios = 2
		cfg.HeadroomBytes = 10 * 1048
		b := newSharedBuffer(cfg, 4, 4)
		rng := rand.New(rand.NewSource(seed))
		type held struct{ port, prio, size int }
		var inFlight []held
		for _, op := range ops {
			if op%2 == 0 || len(inFlight) == 0 {
				port, prio, size := rng.Intn(4), rng.Intn(2), 64+rng.Intn(1024)
				adm, _ := b.admitLossless(port, prio, size)
				if adm {
					inFlight = append(inFlight, held{port, prio, size})
				}
			} else {
				i := rng.Intn(len(inFlight))
				h := inFlight[i]
				inFlight[i] = inFlight[len(inFlight)-1]
				inFlight = inFlight[:len(inFlight)-1]
				b.release(h.port, h.prio, h.size, true)
			}
			if b.used < 0 || b.used > b.shared {
				return false
			}
		}
		for _, h := range inFlight {
			b.release(h.port, h.prio, h.size, true)
		}
		return b.used == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPausedForAccounting(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPort(eng, nil, 10*Gbps, 0, 2)
	eng.At(sim.Microsecond, func() { p.SetPaused(0, true) })
	eng.At(3*sim.Microsecond, func() { p.SetPaused(0, false) })
	eng.Run()
	if p.PausedFor != 2*sim.Microsecond {
		t.Errorf("PausedFor = %v, want 2us", p.PausedFor)
	}
}
