package netsim

import (
	"fmt"
	"math/bits"
	"math/rand"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

// Device is anything that terminates a link: a Host or a Switch.
type Device interface {
	// HandlePacket is called when a packet fully arrives on local port in.
	HandlePacket(pkt *Packet, in *Port)
	// HandlePause is called when a PFC pause or resume frame arrives for
	// the given priority. on=true pauses the local egress queue.
	HandlePause(prio int, on bool, in *Port)
	// DeviceName identifies the device in diagnostics.
	DeviceName() string
}

// TxItem is a packet queued for transmission, together with the buffer
// accounting the owning switch must release at dequeue. Plain fields
// instead of a callback: one closure allocation per packet per hop would
// dominate large runs.
type TxItem struct {
	Pkt      *Packet
	Sw       *Switch // nil for host NICs
	InPort   int32
	QPrio    int16
	Lossless bool
}

type pktQueue struct {
	items []TxItem
	head  int
	bytes int
}

func (q *pktQueue) push(it TxItem) {
	q.items = append(q.items, it)
	q.bytes += it.Pkt.Wire
}

func (q *pktQueue) pop() TxItem {
	it := q.items[q.head]
	q.items[q.head] = TxItem{}
	q.head++
	q.bytes -= it.Pkt.Wire
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return it
}

func (q *pktQueue) empty() bool { return q.head == len(q.items) }
func (q *pktQueue) len() int    { return len(q.items) - q.head }

// PortFault is the per-port fault state installed by internal/fault (or
// directly by tests). A nil pointer — the default — keeps the delivery and
// transmit hot paths at a single predictable branch each; the subsystem
// costs nothing when no fault plan is installed.
type PortFault struct {
	// Down halts transmission and drops arriving in-flight packets; the
	// queued backlog is dropped when SetDown flips the flag.
	Down bool
	// LossRate drops arriving packets at random; CorruptRate additionally
	// models FCS-corrupted frames, counted separately and also dropped at
	// the receiving port. Both are per-delivery probabilities in [0, 1].
	LossRate    float64
	CorruptRate float64
	// Rng drives the loss/corruption draws. Seed it from the fault plan so
	// the drop pattern is deterministic for a given (plan seed, link).
	Rng *rand.Rand
}

// drop decides one arriving packet's fate under the port's fault state:
// a down link or a loss draw drops silently, a corruption draw drops with
// its own counter. It reports whether the packet was consumed (recycled).
func (f *PortFault) drop(p *Port, pkt *Packet) bool {
	if f.Down {
		p.dropFault(pkt, false)
		return true
	}
	if f.LossRate > 0 || f.CorruptRate > 0 {
		v := f.Rng.Float64()
		if v < f.LossRate {
			p.dropFault(pkt, false)
			return true
		}
		if v < f.LossRate+f.CorruptRate {
			p.dropFault(pkt, true)
			return true
		}
	}
	return false
}

// Port is one side of a full-duplex cable. It transmits to Peer and
// receives whatever Peer transmits. Each port owns per-priority egress
// queues served in strict-priority order (higher index first), honoring
// per-priority PFC pause state.
//
// Rate is fixed at construction: NewPort precomputes the serialization
// times for the two dominant wire sizes from it, so mutating Rate on a
// live port would desynchronize them.
type Port struct {
	Eng       *sim.Engine
	Owner     Device
	Peer      *Port
	Rate      Rate
	PropDelay sim.Time
	Index     int // position within Owner's port list

	// Jitter, when non-nil, adds per-packet non-congestive delay to the
	// propagation of every packet leaving this port (used for Fig 13).
	Jitter func() sim.Time

	// INTEnabled makes this port stamp telemetry on ECT data packets at
	// dequeue, for HPCC.
	INTEnabled bool

	// HWTimestamp makes this port overwrite SentAt on outgoing data and
	// probe packets at the start of serialization, modeling NIC hardware
	// TX timestamps that exclude the sender's own NIC backlog from the
	// measured RTT (§4.3.2). Enabled on host NICs; combined with paced
	// senders the hidden local backlog stays bounded.
	HWTimestamp bool

	// Trace, when non-nil, receives enqueue/dequeue/pause/resume events
	// for this port. Nil (the default) costs one predictable branch per
	// packet; install via harness.Net.Observe.
	Trace obs.Tracer

	// Pool, when non-nil, receives packets this port drops under faults,
	// keeping faulted runs allocation-free. Installed by internal/harness;
	// a nil pool is always safe (Put on a nil pool is a no-op) and just
	// leaves dropped packets to the GC.
	Pool *PacketPool

	// Per-event digest chain (harness -fingerprint wiring): when non-nil,
	// packet and pause deliveries into this port fold the receiving device
	// and packet identity into the run digest. Nil costs one predictable
	// branch per delivery; digTag names this port in the digest's Names map.
	dig    *sim.Digest
	digTag uint64

	// Devirtualized owner: exactly one of ownerSw/ownerHost is set when
	// the owner is a concrete Switch or Host (the only in-tree devices),
	// letting delivery branch to the concrete HandlePacket instead of
	// going through the Device interface. Custom Device implementations
	// (both nil) still dispatch through Owner.
	ownerSw   *Switch
	ownerHost *Host

	// deliverKind is the cost-attribution tag for deliveries INTO the
	// peer port, precomputed by Connect from the peer's owner class so
	// transmit tags packets without a per-packet branch.
	deliverKind uint8

	// Precomputed serialization times for the two wire sizes that
	// dominate every run (full-MTU data and minimal ACK/probe/PFC
	// frames), so the hot path skips Rate.Serialize's 64-bit divide.
	// Zero when Rate is zero (serialize falls through, preserving the
	// pre-cache divide-by-zero behavior).
	serFull sim.Time
	serAck  sim.Time

	queues []pktQueue
	paused []bool

	// occMask/pausedMask mirror queue occupancy and PFC pause state for
	// queues 0..63, so strict-priority selection is a single Len64 on
	// occMask &^ pausedMask instead of a scan. Ports with more than 64
	// queues fall back to the scan (the 1<<q updates degrade to no-ops:
	// Go shifts >= 64 yield 0).
	occMask    uint64
	pausedMask uint64

	// busyUntil/wakeSeq/wakeArmed replace the former per-transmission
	// completion event. The transmitter is busy until dispatch position
	// (busyUntil, wakeSeq) — wakeSeq is reserved (sim.Engine.ReserveSeq)
	// at transmit time, exactly where the old scheme allocated its
	// completion event, so every same-timestamp tie-break is identical.
	// The wake event itself is filed under that reserved seq only when
	// one is needed (backlog behind the packet on the wire, or an
	// enqueue/resume landing mid-serialization); a port whose queue
	// drains empty — the common case on host NICs and uncongested
	// fabric — posts one engine event per packet, not two.
	busyUntil sim.Time
	wakeSeq   uint64
	wakeArmed bool
	fault     *PortFault // nil until a fault plan (or test) touches the port
	startTxFn func()     // preallocated; avoids a closure per wake
	devName   string     // lazily cached Owner.DeviceName() (hosts format it per call)

	// Counters.
	TxBytes   int64
	TxPackets int64
	QueueHWM  int      // largest single priority-queue occupancy seen, bytes
	PausedFor sim.Time // cumulative time with at least one priority paused
	pausedAt  sim.Time
	npaused   int

	// Fault counters: down/loss drops and corruption drops, with the bytes
	// they carried. Zero unless a fault plan touches the port.
	FaultDrops     int64
	CorruptDrops   int64
	FaultDropBytes int64
}

// NewPort creates a port with nqueues strict-priority egress queues.
func NewPort(eng *sim.Engine, owner Device, rate Rate, prop sim.Time, nqueues int) *Port {
	p := &Port{
		Eng:       eng,
		Owner:     owner,
		Rate:      rate,
		PropDelay: prop,
		queues:    make([]pktQueue, nqueues),
		paused:    make([]bool, nqueues),
	}
	switch o := owner.(type) {
	case *Switch:
		p.ownerSw = o
	case *Host:
		p.ownerHost = o
	}
	if rate != 0 {
		p.serFull = rate.Serialize(wireFull)
		p.serAck = rate.Serialize(AckBytes)
	}
	p.startTxFn = p.startTx
	return p
}

// Connect wires two ports as the ends of one cable.
func Connect(a, b *Port) {
	a.Peer = b
	b.Peer = a
	a.deliverKind = deliverKindOf(b)
	b.deliverKind = deliverKindOf(a)
}

// deliverKindOf classifies deliveries into p by its owner's device class.
func deliverKindOf(p *Port) uint8 {
	if p.ownerSw != nil {
		return sim.EKDeliverSwitch
	}
	return sim.EKDeliverHost
}

// SetDigest installs the run digest on this port for payload folding (see
// the dig field); tag is the port's identity in the digest's Names map.
// Pass nil to remove.
func (p *Port) SetDigest(d *sim.Digest, tag uint64) {
	p.dig = d
	p.digTag = tag
}

// Digest payload encoding for packet deliveries: a carries the flow id,
// b packs seq<<20 | type<<16 | wire. Pause deliveries set digPauseBit in a
// and carry the prio<<1|on code in the low bits. The diff subcommand
// decodes these to print packet context for a divergent event.
const digPauseBit = uint64(1) << 63

// DescribeDigestPayload renders an (a, b) payload pair recorded by the
// delivery hooks (see SetDigest and the encoding note above) back into
// human-readable packet context for divergence reports.
func DescribeDigestPayload(a, b uint64) string {
	if a&digPauseBit != 0 {
		code := a &^ digPauseBit
		state := "resume"
		if code&1 != 0 {
			state = "pause"
		}
		return fmt.Sprintf("PFC %s prio=%d", state, code>>1)
	}
	return fmt.Sprintf("flow=%d seq=%d type=%s wire=%dB",
		a, b>>20, PacketType((b>>16)&0xF), b&0xFFFF)
}

// NumQueues returns the number of priority queues on the port.
func (p *Port) NumQueues() int { return len(p.queues) }

// QueuedPackets returns the packet count across all priority queues (the
// byte-independent companion of TotalQueuedBytes, used by the
// conservation auditor).
func (p *Port) QueuedPackets() int {
	total := 0
	for i := range p.queues {
		total += p.queues[i].len()
	}
	return total
}

// QueueBytes returns the occupancy of priority queue q in bytes.
func (p *Port) QueueBytes(q int) int { return p.queues[q].bytes }

// TotalQueuedBytes returns the occupancy across all priority queues.
func (p *Port) TotalQueuedBytes() int {
	total := 0
	for i := range p.queues {
		total += p.queues[i].bytes
	}
	return total
}

// name returns the owning device's name, computed once. Owners set their
// identity before creating ports, so the first call already sees it.
func (p *Port) name() string {
	if p.devName == "" {
		p.devName = p.Owner.DeviceName()
	}
	return p.devName
}

// serialize returns the wire time for a packet of the given size,
// answering the two dominant sizes from the constructor-computed cache and
// falling back to the exact Rate.Serialize divide for everything else.
func (p *Port) serialize(wire int) sim.Time {
	if wire == wireFull && p.serFull != 0 {
		return p.serFull
	}
	if wire == AckBytes && p.serAck != 0 {
		return p.serAck
	}
	return p.Rate.Serialize(wire)
}

// clampPrio maps a packet priority onto the port's queue range. A host NIC
// with a single queue accepts packets of any priority.
func (p *Port) clampPrio(prio int) int {
	if prio >= len(p.queues) {
		return len(p.queues) - 1
	}
	if prio < 0 {
		return 0
	}
	return prio
}

// Fault returns the port's fault state, creating it on first use. Only
// the fault layer and tests call this; an untouched port keeps fault nil
// and pays a single branch per packet.
func (p *Port) Fault() *PortFault {
	if p.fault == nil {
		p.fault = &PortFault{}
	}
	return p.fault
}

// IsDown reports whether the port is administratively down.
func (p *Port) IsDown() bool { return p.fault != nil && p.fault.Down }

// SetDown changes the port's link state. Going down drops the queued
// backlog back into the pool (releasing switch buffer accounting as if the
// packets had been transmitted) and halts the transmitter; packets already
// in flight are dropped on arrival by the receiving port's own down check.
// Coming back up re-arms the transmitter.
func (p *Port) SetDown(down bool) {
	f := p.Fault()
	if f.Down == down {
		return
	}
	f.Down = down
	if !down {
		p.kick()
		return
	}
	p.dropQueued()
}

// popQueue pops the head of priority queue q, keeping occMask in sync.
func (p *Port) popQueue(q int) TxItem {
	it := p.queues[q].pop()
	if p.queues[q].empty() {
		p.occMask &^= 1 << uint(q)
	}
	return it
}

// dropQueued drops every queued packet back into the pool, with switch
// buffer accounting released as if each had been transmitted.
func (p *Port) dropQueued() {
	for q := range p.queues {
		for !p.queues[q].empty() {
			it := p.popQueue(q)
			if it.Sw != nil {
				it.Sw.releaseItem(it)
			}
			p.dropFault(it.Pkt, false)
		}
	}
}

// dropFault counts and recycles a packet dropped by the fault layer.
func (p *Port) dropFault(pkt *Packet, corrupt bool) {
	if corrupt {
		p.CorruptDrops++
	} else {
		p.FaultDrops++
	}
	p.FaultDropBytes += int64(pkt.Wire)
	if p.Trace != nil {
		p.Trace.Trace(obs.Event{
			T: p.Eng.Now(), Kind: obs.Drop,
			Dev: p.name(), Port: p.Index,
			Flow: pkt.FlowID, Seq: pkt.Seq, Bytes: pkt.Wire,
		})
	}
	p.Pool.Put(pkt)
}

// Enqueue places a packet on the egress queue for its priority and starts
// the transmitter if idle.
func (p *Port) Enqueue(it TxItem) {
	checkLive(it.Pkt, "Port.Enqueue")
	if p.fault != nil && p.fault.Down {
		p.refuseDead(it)
		return
	}
	p.enqueue(it, p.clampPrio(it.Pkt.Prio))
}

// refuseDead is the dead-port cold path: a down link refuses new work
// outright — the buffer charge just taken by the owning switch is released
// and the packet recycled.
//
//go:noinline
func (p *Port) refuseDead(it TxItem) {
	if it.Sw != nil {
		it.Sw.releaseItem(it)
	}
	p.dropFault(it.Pkt, false)
}

// enqueue is the admitted fast path behind Enqueue: the link is known up
// and q is the already-clamped queue index, so the common case (untraced
// packet, no tracer, transmitter busy or queue immediately serviceable)
// runs straight-line.
func (p *Port) enqueue(it TxItem, q int) {
	checkLive(it.Pkt, "Port.Enqueue")
	// Empty-idle bypass: with the wire free, no wake pending, no other
	// available work, and queue q itself empty and unpaused, the strict-
	// priority pick is this packet, so it goes straight to the transmitter
	// without touching the queue. State updates (HWM, Traced stamp) match
	// what push-then-pop would have done in this same event; transmit then
	// observes the queue exactly as it would post-pop. Tracer-installed
	// ports take the full path so enqueue/dequeue events still fire.
	if p.Trace == nil && !p.wakeArmed && len(p.queues) <= 64 &&
		p.occMask&^p.pausedMask == 0 && (p.pausedMask>>uint(q))&1 == 0 &&
		p.wireFree() {
		if it.Pkt.Traced {
			it.Pkt.hopEnqAt = p.Eng.Now()
		}
		if it.Pkt.Wire > p.QueueHWM {
			p.QueueHWM = it.Pkt.Wire
		}
		p.transmit(it, q)
		return
	}
	p.queues[q].push(it)
	p.occMask |= 1 << uint(q)
	if it.Pkt.Traced {
		it.Pkt.hopEnqAt = p.Eng.Now()
	}
	if b := p.queues[q].bytes; b > p.QueueHWM {
		p.QueueHWM = b
	}
	if p.Trace != nil {
		p.traceEnqueue(it.Pkt, q)
	}
	if !p.wakeArmed {
		if p.wireFree() {
			p.startTxLive()
		} else {
			p.armWake()
		}
	}
}

// wireFree reports whether the transmitter has passed its completion
// point: beyond busyUntil, or at it but with dispatch already past the
// reserved wake position — the exact instant the former eager completion
// event fired. The seq comparison at the boundary is what keeps
// same-timestamp behavior identical to the eager scheme: a callback
// running at busyUntil but ordered before the reserved seq must still see
// the wire busy, exactly as it saw the completion event still pending.
func (p *Port) wireFree() bool {
	if now := p.Eng.Now(); now != p.busyUntil {
		return now > p.busyUntil
	}
	return p.Eng.ReachedSeq(p.busyUntil, p.wakeSeq)
}

// armWake files the transmitter's wake at (busyUntil, wakeSeq) — the seq
// reserved by the transmission occupying the wire. At most one wake is
// pending at a time (wakeArmed); startTx clears it when it fires.
func (p *Port) armWake() {
	p.wakeArmed = true
	p.Eng.PostAtSeqK(p.busyUntil, p.startTxFn, p.wakeSeq, sim.EKTransmit)
}

// kick restarts an idle transmitter after an external state change (PFC
// resume, link back up): if a wake is already pending it will handle the
// change; mid-serialization the wake is armed for when the wire frees;
// otherwise the port is idle and can transmit immediately.
func (p *Port) kick() {
	if p.wakeArmed {
		return
	}
	if p.wireFree() {
		p.startTx()
	} else {
		p.armWake()
	}
}

// traceEnqueue is the tracer-installed cold path of enqueue.
//
//go:noinline
func (p *Port) traceEnqueue(pkt *Packet, q int) {
	p.Trace.Trace(obs.Event{
		T: p.Eng.Now(), Kind: obs.Enqueue,
		Dev: p.name(), Port: p.Index, Queue: q,
		Flow: pkt.FlowID, Seq: pkt.Seq,
		Bytes: pkt.Wire, QLen: p.queues[q].bytes,
	})
}

// SetPaused updates PFC pause state for one priority queue.
func (p *Port) SetPaused(prio int, on bool) {
	q := p.clampPrio(prio)
	if p.paused[q] == on {
		return
	}
	p.paused[q] = on
	if on {
		p.pausedMask |= 1 << uint(q)
	} else {
		p.pausedMask &^= 1 << uint(q)
	}
	if p.Trace != nil {
		kind := obs.Resume
		if on {
			kind = obs.Pause
		}
		p.Trace.Trace(obs.Event{
			T: p.Eng.Now(), Kind: kind,
			Dev: p.name(), Port: p.Index, Queue: q,
		})
	}
	if on {
		if p.npaused == 0 {
			p.pausedAt = p.Eng.Now()
		}
		p.npaused++
	} else {
		p.npaused--
		if p.npaused == 0 {
			p.PausedFor += p.Eng.Now() - p.pausedAt
		}
		p.kick()
	}
}

// Paused reports the pause state of one priority queue.
func (p *Port) Paused(prio int) bool { return p.paused[p.clampPrio(prio)] }

// PausedQueues returns how many of the port's priority queues are currently
// PFC-paused (a time-series sampling point).
func (p *Port) PausedQueues() int { return p.npaused }

// startTx is the transmitter entry for scheduled wake events and link-up
// re-arms: the link may have gone down since the event was filed.
func (p *Port) startTx() {
	p.wakeArmed = false
	if p.fault != nil && p.fault.Down {
		return
	}
	p.startTxLive()
}

// startTxLive picks the next packet under strict priority — the
// highest-index unpaused non-empty queue — and transmits it. The caller
// guarantees the link is up and the wire free. Ports with at most 64
// queues (all real configurations) resolve the choice with one bitmask
// operation; wider ports scan.
func (p *Port) startTxLive() {
	if len(p.queues) <= 64 {
		avail := p.occMask &^ p.pausedMask
		if avail == 0 {
			return
		}
		q := bits.Len64(avail) - 1
		p.transmit(p.popQueue(q), q)
		return
	}
	for q := len(p.queues) - 1; q >= 0; q-- {
		if p.paused[q] || p.queues[q].empty() {
			continue
		}
		p.transmit(p.popQueue(q), q)
		return
	}
}

func (p *Port) transmit(it TxItem, q int) {
	pkt := it.Pkt
	ser := p.serialize(pkt.Wire)
	p.TxBytes += int64(pkt.Wire)
	p.TxPackets++
	if it.Sw != nil {
		it.Sw.releaseItem(it)
	}
	if p.Trace != nil {
		p.traceDequeue(pkt, q)
	}
	if p.HWTimestamp && (pkt.Type == Data || pkt.Type == Probe) {
		pkt.SentAt = p.Eng.Now()
	}
	if p.INTEnabled && pkt.Type == Data && pkt.ECT {
		p.stampINT(pkt, q)
	}
	if pkt.Traced && (pkt.Type == Data || pkt.Type == Probe) {
		p.stampTrace(pkt, q)
	}
	prop := p.PropDelay
	if p.Jitter != nil {
		prop += p.Jitter()
	}
	// Closure-free delivery: deliverPacket is a package-level function and
	// both arguments are pointers, so this schedules without allocating.
	p.Eng.Post2K(ser+prop, deliverPacket, p.Peer, pkt, p.deliverKind)
	if p.Pool != nil {
		p.Pool.wire++
	}
	// Reserve the wake's dispatch position now — the exact point the old
	// scheme allocated its unconditional completion event — so a wake
	// armed later (or not at all) leaves every other event's tie-break
	// unchanged.
	p.wakeSeq = p.Eng.ReserveSeq()
	p.busyUntil = p.Eng.Now() + ser
	// Chain the next transmission only when backlog remains; an enqueue
	// landing mid-serialization arms its own wake at busyUntil. Wider
	// ports always chain rather than scanning for available work here.
	if len(p.queues) <= 64 {
		if p.occMask&^p.pausedMask != 0 {
			p.armWake()
		}
	} else {
		p.armWake()
	}
}

// traceDequeue is the tracer-installed cold path of transmit.
//
//go:noinline
func (p *Port) traceDequeue(pkt *Packet, q int) {
	p.Trace.Trace(obs.Event{
		T: p.Eng.Now(), Kind: obs.Dequeue,
		Dev: p.name(), Port: p.Index, Queue: q,
		Flow: pkt.FlowID, Seq: pkt.Seq,
		Bytes: pkt.Wire, QLen: p.queues[q].bytes,
	})
}

// stampINT appends INT-proper telemetry at dequeue, for HPCC.
//
//go:noinline
func (p *Port) stampINT(pkt *Packet, q int) {
	pkt.INT = append(pkt.INT, INTRecord{
		QLen:    p.queues[q].bytes,
		TxBytes: p.TxBytes,
		TS:      p.Eng.Now(),
		Rate:    p.Rate,
	})
}

// stampTrace appends a journey stamp for flow tracing, separate from INT
// proper: Dev is set, so the transport can split trace records out of
// HPCC's feedback. Appended on the forward path only; the pooled Ack /
// ProbeAck constructors carry the array back to the sender.
//
//go:noinline
func (p *Port) stampTrace(pkt *Packet, q int) {
	pkt.INT = append(pkt.INT, INTRecord{
		QLen:    p.queues[q].bytes,
		TxBytes: p.TxBytes,
		TS:      p.Eng.Now(),
		Rate:    p.Rate,
		Dev:     p.name(),
		QWait:   p.Eng.Now() - pkt.hopEnqAt,
	})
}

// deliverPacket is the preallocated Post2 target for packet arrival at the
// far end of a cable: a is the receiving *Port, b the *Packet. Delivery
// events cannot be cancelled per-packet (the heap is lazy-cancel only), so
// link faults are applied here: a downed or impaired receiving port
// consumes the packet instead of handing it to the device. The fault layer
// downs both ends of a cable, so in-flight packets of a flapped link are
// lost in both directions. Dispatch goes through the port's concrete
// owner-kind fields — (*Switch).HandlePacket / (*Host).HandlePacket called
// directly — with the Device interface as the fallback for custom owners.
func deliverPacket(a, b any) {
	in := a.(*Port)
	pkt := b.(*Packet)
	if in.Pool != nil {
		in.Pool.wire--
	}
	if in.dig != nil {
		in.dig.FoldPayload(in.digTag, uint64(pkt.FlowID),
			uint64(pkt.Seq)<<20|uint64(pkt.Type)<<16|uint64(pkt.Wire))
	}
	if in.fault != nil && in.fault.drop(in, pkt) {
		return
	}
	if sw := in.ownerSw; sw != nil {
		sw.HandlePacket(pkt, in)
		return
	}
	if h := in.ownerHost; h != nil {
		h.HandlePacket(pkt, in)
		return
	}
	in.Owner.HandlePacket(pkt, in)
}

// deliverPause is the preallocated Post2 target for PFC frame arrival: a
// is the receiving *Port, b packs prio<<1|on. The packed value stays below
// 256, so boxing it in any does not allocate. Like deliverPacket, dispatch
// branches on the concrete owner kind before falling back to the Device
// interface.
func deliverPause(a, b any) {
	in := a.(*Port)
	code := b.(int)
	if in.Pool != nil {
		in.Pool.ctrl--
	}
	if in.dig != nil {
		in.dig.FoldPayload(in.digTag, digPauseBit|uint64(code), 0)
	}
	if sw := in.ownerSw; sw != nil {
		sw.HandlePause(code>>1, code&1 == 1, in)
		return
	}
	if h := in.ownerHost; h != nil {
		h.HandlePause(code>>1, code&1 == 1, in)
		return
	}
	in.Owner.HandlePause(code>>1, code&1 == 1, in)
}

// SendPause delivers a PFC pause/resume frame to the peer device. PFC
// frames are generated by the MAC and bypass the egress queues; they are
// modeled as a fixed-size control frame that does not occupy the port.
func (p *Port) SendPause(prio int, on bool) {
	d := p.serialize(AckBytes) + p.PropDelay
	code := prio << 1
	if on {
		code |= 1
	}
	p.Eng.Post2K(d, deliverPause, p.Peer, code, sim.EKPause)
	if p.Pool != nil {
		p.Pool.ctrl++
	}
}
