package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"prioplus/internal/obs"
	"prioplus/internal/sim"
)

func flightEvent(i int) obs.Event {
	return obs.Event{T: sim.Time(i) * sim.Microsecond, Kind: obs.Enqueue, Dev: "tor0", Flow: int64(i)}
}

func TestFlightRecorderPartialRing(t *testing.T) {
	f := obs.NewFlightRecorder(8)
	for i := 0; i < 3; i++ {
		f.Trace(flightEvent(i))
	}
	if f.Total() != 3 {
		t.Errorf("Total = %d, want 3", f.Total())
	}
	evs := f.Events()
	if len(evs) != 3 {
		t.Fatalf("Events() returned %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Flow != int64(i) {
			t.Errorf("event %d has flow %d, want %d", i, ev.Flow, i)
		}
	}
}

func TestFlightRecorderWrapOldestFirst(t *testing.T) {
	f := obs.NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Trace(flightEvent(i))
	}
	if f.Total() != 10 {
		t.Errorf("Total = %d, want 10", f.Total())
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() returned %d, want ring size 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Flow != want {
			t.Errorf("event %d has flow %d, want %d (oldest-first of last 4)", i, ev.Flow, want)
		}
	}
}

func TestFlightRecorderChainsInner(t *testing.T) {
	var got []int64
	f := obs.NewFlightRecorder(2)
	f.Inner = obs.TraceFunc(func(ev obs.Event) { got = append(got, ev.Flow) })
	for i := 0; i < 5; i++ {
		f.Trace(flightEvent(i))
	}
	if len(got) != 5 {
		t.Errorf("inner tracer saw %d events, want all 5", len(got))
	}
}

func TestFlightRecorderDump(t *testing.T) {
	f := obs.NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		f.Trace(flightEvent(i))
	}
	var buf bytes.Buffer
	n, err := f.Dump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("Dump wrote %d events, want 4", n)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("dump has %d lines, want 4", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("dump line is not valid JSON: %v\n%s", err, lines[0])
	}
	if rec["flow"] != float64(2) {
		t.Errorf("first dumped event flow = %v, want 2 (oldest retained)", rec["flow"])
	}
}

func TestFlightRecorderBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFlightRecorder(0) did not panic")
		}
	}()
	obs.NewFlightRecorder(0)
}

func TestFlightRecorderTraceZeroAlloc(t *testing.T) {
	f := obs.NewFlightRecorder(64)
	ev := flightEvent(1)
	if allocs := testing.AllocsPerRun(1000, func() { f.Trace(ev) }); allocs != 0 {
		t.Errorf("Trace allocates %v per op, want 0", allocs)
	}
}

func TestWatchdogTripOnce(t *testing.T) {
	var calls int
	var gotReason string
	var gotValue, gotLimit int64
	w := &obs.Watchdog{
		MaxInflightBytes: 100,
		OnTrip: func(reason string, value, limit int64) {
			calls++
			gotReason, gotValue, gotLimit = reason, value, limit
		},
	}
	if w.Check(50, 0) {
		t.Error("Check below ceiling reported tripped")
	}
	if w.Tripped() != "" {
		t.Error("Tripped before any trip")
	}
	if !w.Check(150, 0) {
		t.Error("Check above ceiling did not trip")
	}
	if !w.Check(10, 0) {
		t.Error("watchdog un-tripped: trips must latch")
	}
	if calls != 1 {
		t.Errorf("OnTrip called %d times, want exactly 1", calls)
	}
	if gotReason != "inflight_bytes" || gotValue != 150 || gotLimit != 100 {
		t.Errorf("OnTrip(%q, %d, %d), want (inflight_bytes, 150, 100)", gotReason, gotValue, gotLimit)
	}
	if w.Tripped() != "inflight_bytes" {
		t.Errorf("Tripped = %q, want inflight_bytes", w.Tripped())
	}
}

func TestWatchdogHeapEvents(t *testing.T) {
	w := &obs.Watchdog{MaxHeapEvents: 10}
	if w.Check(1<<40, 5) {
		t.Error("tripped on inflight bytes with no byte ceiling configured")
	}
	if !w.Check(0, 11) {
		t.Error("did not trip on heap events")
	}
	if w.Tripped() != "heap_events" {
		t.Errorf("Tripped = %q, want heap_events", w.Tripped())
	}
}

func TestWatchdogInflightTakesPriority(t *testing.T) {
	w := &obs.Watchdog{MaxInflightBytes: 10, MaxHeapEvents: 10}
	w.Check(11, 11)
	if w.Tripped() != "inflight_bytes" {
		t.Errorf("Tripped = %q, want inflight_bytes checked first", w.Tripped())
	}
}

func TestRecorderTracerChaining(t *testing.T) {
	// No flight, no trace: nil tracer.
	r := obs.NewRecorder()
	if r.Tracer() != nil {
		t.Error("Tracer() non-nil with nothing configured")
	}
	// Trace only: the sink itself.
	var seen []obs.Event
	sink := obs.TraceFunc(func(ev obs.Event) { seen = append(seen, ev) })
	r.Trace = sink
	tr := r.Tracer()
	tr.Trace(flightEvent(1))
	if len(seen) != 1 {
		t.Fatal("Trace-only Tracer() did not reach the sink")
	}
	// Flight + trace: ring in front, events reach both.
	r.Flight = obs.NewFlightRecorder(4)
	tr = r.Tracer()
	tr.Trace(flightEvent(2))
	if len(seen) != 2 {
		t.Error("chained Tracer() did not forward to the inner sink")
	}
	if r.Flight.Total() != 1 {
		t.Errorf("flight recorder saw %d events, want 1", r.Flight.Total())
	}
}
